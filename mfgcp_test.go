package mfgcp_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	mfgcp "repro"
)

// The public facade is exercised end-to-end: parameters → equilibrium →
// strategy/price/rollout → market comparison, exactly like the README's
// quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	params := mfgcp.DefaultParams()
	if err := params.Validate(); err != nil {
		t.Fatalf("default params: %v", err)
	}
	cfg := mfgcp.DefaultSolverConfig(params)
	cfg.NH, cfg.NQ, cfg.Steps = 5, 21, 30

	eq, err := mfgcp.SolveEquilibrium(cfg, mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2})
	if err != nil {
		t.Fatalf("SolveEquilibrium: %v", err)
	}
	if !eq.Converged {
		t.Fatal("equilibrium did not converge")
	}
	x, err := eq.HJB.ControlAt(0, params.ChMean, 50)
	if err != nil {
		t.Fatal(err)
	}
	if x < 0 || x > 1 {
		t.Fatalf("control %g outside [0,1]", x)
	}
	s := eq.SnapshotAt(0.5)
	if s.Price <= 0 || s.Price > params.PHat {
		t.Fatalf("price %g outside (0, p̂]", s.Price)
	}
	roll, err := eq.EnsembleRollout(params.ChMean, 70, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if u, _ := roll.Final(); math.IsNaN(u) {
		t.Fatal("rollout utility is NaN")
	}
}

func TestPublicAPIPaperParams(t *testing.T) {
	if err := mfgcp.PaperParams().Validate(); err != nil {
		t.Fatalf("paper params: %v", err)
	}
}

func TestPublicAPIOptimalControl(t *testing.T) {
	p := mfgcp.DefaultParams()
	if got := mfgcp.OptimalControl(p, -1e12); got != 1 {
		t.Errorf("control should clamp to 1, got %g", got)
	}
	if got := mfgcp.OptimalControl(p, 1e12); got != 0 {
		t.Errorf("control should clamp to 0, got %g", got)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	names := map[string]bool{}
	for _, pol := range []mfgcp.Policy{
		mfgcp.NewMFGCPPolicy(), mfgcp.NewMFGPolicy(), mfgcp.NewRRPolicy(),
		mfgcp.NewMPCPolicy(), mfgcp.NewUDCSPolicy(),
	} {
		names[pol.Name()] = true
	}
	for _, want := range []string{"MFG-CP", "MFG", "RR", "MPC", "UDCS"} {
		if !names[want] {
			t.Errorf("policy %q missing from the public API", want)
		}
	}
}

func TestPublicAPIMarket(t *testing.T) {
	params := mfgcp.DefaultParams()
	params.M = 10
	params.K = 3
	cfg := mfgcp.DefaultMarketConfig(params, mfgcp.NewRRPolicy())
	cfg.Epochs = 1
	cfg.StepsPerEpoch = 10
	res, err := mfgcp.RunMarket(cfg)
	if err != nil {
		t.Fatalf("RunMarket: %v", err)
	}
	if len(res.Ledgers) != 10 {
		t.Fatalf("expected 10 ledgers, got %d", len(res.Ledgers))
	}
	l := res.MeanLedger()
	wantU := l.Trading + l.Sharing - l.Placement - l.Staleness - l.ShareCost
	if math.Abs(res.MeanUtility()-wantU) > 1e-9 {
		t.Error("MeanUtility disagrees with the ledger identity")
	}
}

func TestPublicAPITrace(t *testing.T) {
	cfg := mfgcp.DefaultTraceGenConfig()
	cfg.Days = 2
	cfg.VideosPerDay = 10
	ds, err := mfgcp.GenerateTrace(cfg)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	if ds.K != cfg.K {
		t.Errorf("trace has %d categories, want %d", ds.K, cfg.K)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := mfgcp.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("expected 16 experiments, got %d: %v", len(ids), ids)
	}
	rep, err := mfgcp.RunExperiment("fig3", mfgcp.ExperimentOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig3") {
		t.Error("render missing experiment id")
	}
	if _, err := mfgcp.RunExperiment("nope", mfgcp.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestPublicAPIKnapsack(t *testing.T) {
	items := []mfgcp.KnapsackItem{
		{Content: 0, Weight: 4, Value: 8},
		{Content: 1, Weight: 6, Value: 6},
	}
	frac, err := mfgcp.AllocateFractional(items, 7)
	if err != nil {
		t.Fatal(err)
	}
	if frac[0] != 1 || math.Abs(frac[1]-0.5) > 1e-12 {
		t.Errorf("fractional allocation wrong: %v", frac)
	}
	take, val, err := mfgcp.Allocate01(items, 7, 700)
	if err != nil {
		t.Fatal(err)
	}
	if !take[0] || take[1] || val != 8 {
		t.Errorf("0/1 allocation wrong: take=%v val=%g", take, val)
	}
}

func TestPublicAPIExactGame(t *testing.T) {
	params := mfgcp.DefaultParams()
	cfg := mfgcp.DefaultExactGameConfig(params)
	cfg.NH, cfg.NQ, cfg.Steps = 5, 21, 30
	sol, err := mfgcp.SolveExactGame(cfg,
		mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2},
		[]mfgcp.ExactGameAgentInit{{MeanQ: 70, StdQ: 10}, {MeanQ: 50, StdQ: 10}},
	)
	if err != nil {
		t.Fatalf("SolveExactGame: %v", err)
	}
	if len(sol.Agents) != 2 {
		t.Fatalf("expected 2 agents, got %d", len(sol.Agents))
	}
}

func TestPublicAPIEquilibriumArchive(t *testing.T) {
	params := mfgcp.DefaultParams()
	cfg := mfgcp.DefaultSolverConfig(params)
	cfg.NH, cfg.NQ, cfg.Steps = 5, 21, 30
	eq, err := mfgcp.SolveEquilibrium(cfg, mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eq.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := mfgcp.ReadEquilibrium(&buf)
	if err != nil {
		t.Fatalf("ReadEquilibrium: %v", err)
	}
	// The archive round-trips into a usable warm start.
	cfg.WarmStart = back
	warm, err := mfgcp.SolveEquilibrium(cfg, mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2})
	if err != nil {
		t.Fatalf("warm solve from archive: %v", err)
	}
	if warm.Iterations >= eq.Iterations {
		t.Errorf("archive warm start used %d iterations, cold used %d", warm.Iterations, eq.Iterations)
	}
}

func TestPublicAPITelemetry(t *testing.T) {
	rec := mfgcp.NewRecorder(nil)
	cfg := mfgcp.DefaultSolverConfig(mfgcp.DefaultParams())
	cfg.NH, cfg.NQ, cfg.Steps = 5, 21, 30
	cfg.Obs = rec
	if _, err := mfgcp.SolveEquilibrium(cfg, mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}); err != nil {
		t.Fatalf("SolveEquilibrium: %v", err)
	}
	snap := rec.Snapshot()
	if snap.Counters["core.solver.solves"] != 1 {
		t.Errorf("facade recorder saw no solve: %+v", snap.Counters)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "core.solver.iterations") {
		t.Error("snapshot JSON missing iteration counter")
	}
	// The no-op recorder is exported and inert.
	mfgcp.NopRecorder.Add("x", 1)
	if mfgcp.NopRecorder.Enabled() {
		t.Error("NopRecorder must report disabled")
	}
}

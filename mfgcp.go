// Package mfgcp is the public API of this reproduction of "Joint Mobile Edge
// Caching and Pricing: A Mean-Field Game Approach" (ICDE 2024). It re-exports
// the stable surface of the internal packages:
//
//   - model parameters and workloads (internal/mec, internal/core);
//   - the mean-field equilibrium solver implementing Algorithm 2
//     (internal/core): coupled backward-HJB / forward-FPK iteration with the
//     closed-form optimal caching control of Theorem 1;
//   - the five caching policies of the evaluation (internal/policy);
//   - the agent-based MEC market simulator implementing Algorithm 1
//     (internal/sim);
//   - the synthetic trending-video trace generator and Kaggle-schema loader
//     (internal/trace);
//   - the experiment runners regenerating every figure and table of the
//     paper (internal/experiments).
//
// Quick start:
//
//	params := mfgcp.DefaultParams()
//	cfg := mfgcp.DefaultSolverConfig(params)
//	eq, err := mfgcp.SolveEquilibrium(cfg, mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2})
//	if err != nil { ... }
//	x, _ := eq.HJB.ControlAt(0, params.ChMean, 50) // optimal caching rate
package mfgcp

import (
	"context"
	"log/slog"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Params holds every model constant of the MEC system (see mec.Params).
type Params = mec.Params

// DefaultParams returns the calibrated parameter set used by the experiments
// (the paper's Section-V constants mapped onto a coherent MB/$-unit system).
func DefaultParams() Params { return mec.Default() }

// PaperParams returns the literal Section-V constants of the paper, kept for
// reference; the mixed units make them unsuitable for direct simulation.
func PaperParams() Params { return mec.Paper() }

// Workload describes one content's per-epoch demand: request count |I_k|,
// popularity Π_k and timeliness L_k.
type Workload = core.Workload

// SolverConfig controls one mean-field equilibrium computation
// (grid resolution, best-response iteration limits, damping, FPK form).
type SolverConfig = core.Config

// KernelConfig tunes how the PDE sweeps execute without changing the model:
// Workers bounds the parallel line-sweep fan-out (the default float64 path
// is bit-exact at every worker count), Precision opts into the float32 fast
// kernel (implicit scheme only). The zero value is the serial float64
// kernel.
type KernelConfig = core.KernelConfig

// Kernel precision names accepted by KernelConfig.Precision and the
// -precision CLI flags.
const (
	PrecisionFloat64 = core.PrecisionFloat64
	PrecisionFloat32 = core.PrecisionFloat32
)

// SurrogateConfig points a solve at a precomputed surrogate table (built by
// `mfgcp precompute`) and bounds the interpolation error it will accept:
// Path names the table file and MaxErrorBound rejects in-region answers whose
// declared per-cell bound exceeds it (0 accepts any in-region bound). It is
// routing configuration, like KernelConfig — it never changes which
// equilibrium a workload maps to, only where the answer may come from, so it
// is excluded from cache keys.
type SurrogateConfig = core.SurrogateConfig

// DefaultSolverConfig returns the solver settings used by the experiments.
func DefaultSolverConfig(p Params) SolverConfig { return core.DefaultConfig(p) }

// Equilibrium is a solved mean-field equilibrium: value function and optimal
// strategy (HJB), mean-field density path (FPK), estimator snapshots and
// convergence diagnostics.
type Equilibrium = core.Equilibrium

// Snapshot carries the mean-field estimator outputs at one time node: the
// dynamic price, the mean peer cache level, and the sharing-market terms.
type Snapshot = core.Snapshot

// Rollout is a representative EDP's trajectory under the equilibrium
// strategy, with the full income/cost decomposition.
type Rollout = core.Rollout

// ErrNotConverged is wrapped by SolveEquilibrium when the best-response
// iteration exhausts its iteration budget; the partial equilibrium is still
// returned for inspection.
var ErrNotConverged = core.ErrNotConverged

// SolveEquilibrium runs the iterative best-response learning scheme
// (Algorithm 2) to the unique mean-field equilibrium (Theorem 2). It is
// SolveEquilibriumContext under context.Background(); prefer the context form
// in servers and long-running jobs so deadlines and cancellation reach the
// solver.
func SolveEquilibrium(cfg SolverConfig, w Workload) (*Equilibrium, error) {
	return SolveEquilibriumContext(context.Background(), cfg, w)
}

// SolveEquilibriumContext is the context-first equilibrium solve: ctx is
// checked at best-response-iteration granularity, so cancellation and
// deadlines abort the computation promptly. On non-convergence the partial
// equilibrium is returned with ErrNotConverged; on cancellation the error
// wraps ctx.Err().
func SolveEquilibriumContext(ctx context.Context, cfg SolverConfig, w Workload) (*Equilibrium, error) {
	s, err := core.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return s.SolveContext(ctx, w, nil)
}

// OptimalControl is the closed-form caching rate of Theorem 1 (Eq. 21) as a
// function of the model constants and the local value-function gradient ∂qV.
func OptimalControl(p Params, dVdq float64) float64 {
	return core.OptimalControl(p, dVdq)
}

// EquilibriumCache is a bounded, concurrency-safe store of solved equilibria
// keyed by the canonical (params, workload, grid, scheme) hash. Install one
// on an MFG policy (policy.MFGCP.SetEquilibriumCache) or set
// MarketConfig.EqCacheSize to let repeated epochs reuse fixed points.
type EquilibriumCache = core.EquilibriumCache

// NewEquilibriumCache returns an equilibrium cache bounded to capacity
// entries with least-recently-used eviction.
func NewEquilibriumCache(capacity int) (*EquilibriumCache, error) {
	return core.NewEquilibriumCache(capacity)
}

// Policy is a per-epoch caching strategy (MFG-CP or a baseline).
type Policy = policy.Policy

// NewMFGCPPolicy returns the proposed MFG-CP strategy.
func NewMFGCPPolicy() Policy { return policy.NewMFGCP() }

// NewMFGPolicy returns the MFG baseline (MFG-CP without peer sharing).
func NewMFGPolicy() Policy { return policy.NewMFG() }

// NewRRPolicy returns the Random Replacement baseline.
func NewRRPolicy() Policy { return policy.NewRR() }

// NewMPCPolicy returns the Most Popular Caching baseline.
func NewMPCPolicy() Policy { return policy.NewMPC() }

// NewUDCSPolicy returns the Ultra-Dense Caching Strategy baseline.
func NewUDCSPolicy() Policy { return policy.NewUDCS() }

// PolicyByName returns a fresh policy for its canonical (case-insensitive)
// name: "mfg-cp", "mfg", "rr", "mpc" or "udcs". It is the single name→policy
// mapping shared by the CLI flags, the market-config JSON codec and the
// serving daemon.
func PolicyByName(name string) (Policy, error) { return policy.ByName(name) }

// MarketConfig parametrises an agent-based market simulation (Algorithm 1).
type MarketConfig = sim.Config

// MarketResult is the outcome of a market run: per-EDP ledgers, per-epoch
// statistics and the strategy-computation timing of Table II.
type MarketResult = sim.Result

// Ledger is one EDP's economic account (Eq. 10 decomposition).
type Ledger = sim.Ledger

// DefaultMarketConfig returns the market-simulation settings used by the
// experiments.
func DefaultMarketConfig(p Params, pol Policy) MarketConfig { return sim.DefaultConfig(p, pol) }

// RunMarket executes a market simulation, honouring cfg.Context when set.
//
// Deprecated: use RunMarketContext, which makes the cancellation scope
// explicit at the call site. RunMarket remains a thin wrapper and will not be
// removed, but new code should pass the context as an argument.
func RunMarket(cfg MarketConfig) (*MarketResult, error) { return sim.Run(cfg) }

// RunMarketContext executes a market simulation under ctx: cancellation and
// deadlines are honoured at simulation-step granularity and forwarded into the
// equilibrium solves. On interruption the partial result is returned together
// with an error wrapping ErrMarketInterrupted.
func RunMarketContext(ctx context.Context, cfg MarketConfig) (*MarketResult, error) {
	return sim.RunContext(ctx, cfg)
}

// ErrMarketInterrupted wraps the context error of a cancelled or timed-out
// market run; the partial result is still returned.
var ErrMarketInterrupted = sim.ErrInterrupted

// ErrDiverged is wrapped by SolveEquilibrium when the best-response iteration
// produces a non-finite or blown-up iterate.
var ErrDiverged = core.ErrDiverged

// FaultPlan injects deterministic seeded faults (EDP churn, dropped peer
// shares, forced solver failures) into a market run; the epoch loop then
// degrades gracefully instead of aborting (see MarketConfig.Faults).
type FaultPlan = sim.FaultPlan

// ErrFaultBudgetExceeded fails a fault-injected market run whose degraded
// epochs exceeded the plan's error budget.
var ErrFaultBudgetExceeded = sim.ErrBudgetExceeded

// MarketCheckpointConfig configures atomic epoch-boundary snapshots and
// bit-for-bit resume of a market run (see MarketConfig.Checkpoint).
type MarketCheckpointConfig = sim.CheckpointConfig

// RequesterConfig parametrises the mobile-requester population of a market
// run (see MarketConfig.Requesters).
type RequesterConfig = sim.RequesterConfig

// RecoveryEscalation is the bounded divergence-recovery ladder applied to
// failing equilibrium solves (see MarketConfig.Recovery): deeper damping, a
// PDE scheme switch and time-mesh refinement, in that order.
type RecoveryEscalation = resilience.Escalation

// DefaultRecoveryEscalation returns the ladder used by the market simulator.
func DefaultRecoveryEscalation() RecoveryEscalation { return resilience.DefaultEscalation() }

// TraceDataset is a trending-video demand trace (synthetic or loaded).
type TraceDataset = trace.Dataset

// TraceGenConfig parametrises the synthetic trace generator.
type TraceGenConfig = trace.GenConfig

// DefaultTraceGenConfig returns the generator settings used by the
// experiments.
func DefaultTraceGenConfig() TraceGenConfig { return trace.DefaultGenConfig() }

// GenerateTrace builds a deterministic synthetic trending trace.
func GenerateTrace(cfg TraceGenConfig) (*TraceDataset, error) { return trace.Generate(cfg) }

// ExperimentOptions tunes the experiment runners (seed, quick mode).
type ExperimentOptions = experiments.Options

// ExperimentReport is the rendered outcome of one experiment.
type ExperimentReport = experiments.Report

// ExperimentIDs lists the reproducible figures and tables (fig3…fig14,
// table2).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's figures or tables, honouring
// opt.Context when set. It is RunExperimentContext under
// context.Background().
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentReport, error) {
	return RunExperimentContext(context.Background(), id, opt)
}

// RunExperimentContext regenerates one of the paper's figures or tables under
// ctx: the market epoch loops and equilibrium solves inside the experiment
// abort promptly on cancellation or deadline. An explicit opt.Context takes
// precedence over ctx.
func RunExperimentContext(ctx context.Context, id string, opt ExperimentOptions) (*ExperimentReport, error) {
	if opt.Context == nil {
		opt.Context = ctx
	}
	return experiments.Run(id, opt)
}

// Recorder is the telemetry sink accepted by SolverConfig.Obs,
// MarketConfig.Obs and ExperimentOptions.Obs. The zero value of every config
// leaves it nil, which is equivalent to NopRecorder: no clocks are read and
// no allocations happen in the solver hot loops.
type Recorder = obs.Recorder

// MetricsRegistry is the standard Recorder: lock-cheap counters, gauges and
// streaming-moment histograms, with JSON / expvar snapshot export.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a MetricsRegistry's contents.
type MetricsSnapshot = obs.Snapshot

// NopRecorder discards everything; it is the implicit default.
var NopRecorder = obs.Nop

// NewRecorder returns a live metrics registry. A nil logger disables the
// structured span/event log and keeps only counters, gauges and histograms.
func NewRecorder(logger *slog.Logger) *MetricsRegistry { return obs.NewRegistry(logger) }

package verify

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Options configures a verification run. Zero-valued fields select the
// defaults: calibrated parameters, the small verification grid, the default
// workload, DefaultTolerances, tier Quick.
type Options struct {
	Tier Tier
	Seed int64
	// Cases is the property-sweep size (0 selects the tier default: 3 for
	// quick, 16 for full).
	Cases    int
	Params   mec.Params
	Solver   engine.Config
	Workload engine.Workload
	Tol      Tolerances
	Obs      obs.Recorder
}

// DefaultSolverConfig is the small, CFL-safe grid the differential and
// invariant checks run on by default: large enough to be representative
// (48 time steps keep the O(dt) implicit/explicit gap well inside
// SchemeTol), small enough that the quick tier stays in single-digit
// seconds.
func DefaultSolverConfig(p mec.Params) engine.Config {
	cfg := engine.DefaultConfig(p)
	cfg.NH = 7
	cfg.NQ = 15
	cfg.Steps = 48
	return cfg
}

// normalise fills the zero-valued option fields with their defaults.
func (o Options) normalise() Options {
	if o.Tier == "" {
		o.Tier = Quick
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Params.Qk == 0 {
		o.Params = mec.Default()
	}
	if o.Solver.NH == 0 {
		o.Solver = DefaultSolverConfig(o.Params)
	}
	o.Solver.Params = o.Params
	if o.Workload == (engine.Workload{}) {
		o.Workload = engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
	}
	if o.Tol == (Tolerances{}) {
		o.Tol = DefaultTolerances()
	}
	if o.Cases == 0 {
		if o.Tier == Full {
			o.Cases = 16
		} else {
			o.Cases = 3
		}
	}
	return o
}

// simConfig builds the small market configuration of the checkpoint/resume
// differential: a 12-EDP, 4-content MFG-CP market over 3 epochs, seeded
// from the run seed.
func (o Options) simConfig() sim.Config {
	p := o.Params
	p.M = 12
	p.K = 4
	cfg := sim.DefaultConfig(p, policy.NewMFGCP())
	cfg.Seed = o.Seed
	cfg.Epochs = 3
	cfg.StepsPerEpoch = 10
	cfg.Solver.NH = 5
	cfg.Solver.NQ = 15
	cfg.Solver.Steps = 24
	cfg.Solver.MaxIters = 20
	cfg.EqCacheSize = 8
	return cfg
}

// Run executes the tier's check suite and returns the report. A non-nil
// error means the runner itself failed (invalid options, cancelled
// context); check failures are reported through Report.Passed.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalise()
	if opts.Tier != Quick && opts.Tier != Full {
		return nil, fmt.Errorf("verify: unknown tier %q (want %q or %q)", opts.Tier, Quick, Full)
	}
	if err := opts.Tol.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Solver.Validate(); err != nil {
		return nil, fmt.Errorf("verify: solver config: %w", err)
	}
	if err := opts.Workload.Validate(); err != nil {
		return nil, fmt.Errorf("verify: workload: %w", err)
	}
	rec := obs.OrNop(opts.Obs)
	tol := opts.Tol

	type check struct {
		name string
		full bool // full tier only
		fn   func() ([]Violation, error)
	}
	checks := []check{
		{name: "invariants/default-config", fn: func() ([]Violation, error) {
			eq, err := solveFor(opts.Solver, opts.Workload)
			if err != nil {
				return nil, err
			}
			return AllInvariants(eq, tol), nil
		}},
		{name: "invariants/property-sweep", fn: func() ([]Violation, error) {
			return propertySweep(ctx, opts, tol)
		}},
		{name: "eq21/monotone-clamp", fn: func() ([]Violation, error) {
			out := ControlMonotone(opts.Params, 101)
			gen := NewGen(opts.Seed + 17)
			for i := 0; i < 3; i++ {
				out = append(out, ControlMonotone(gen.Params(), 101)...)
			}
			return out, nil
		}},
		{name: "differential/scheme-agreement", fn: func() ([]Violation, error) {
			return SchemeAgreement(opts.Solver, opts.Workload, tol)
		}},
		{name: "differential/precision", fn: func() ([]Violation, error) {
			return PrecisionAgreement(opts.Solver, opts.Workload, tol)
		}},
		{name: "differential/cache-bit-equality", fn: func() ([]Violation, error) {
			return CacheBitEquality(opts.Solver, opts.Workload)
		}},
		{name: "differential/surrogate", fn: func() ([]Violation, error) {
			return SurrogateAgreement(opts.Solver, opts.Workload, opts.Seed)
		}},
		{name: "differential/checkpoint-resume", fn: func() ([]Violation, error) {
			dir, cleanup, err := scratchDir()
			if err != nil {
				return nil, err
			}
			defer cleanup()
			return CheckpointResume(opts.simConfig, dir)
		}},
		{name: "order/fpk-implicit", fn: func() ([]Violation, error) {
			return TemporalOrderFPK("implicit", 16, tol)
		}},
		{name: "order/fpk-explicit", full: true, fn: func() ([]Violation, error) {
			return TemporalOrderFPK("explicit", 16, tol)
		}},
		{name: "order/hjb-implicit", full: true, fn: func() ([]Violation, error) {
			return TemporalOrderHJB("implicit", 16, tol)
		}},
		{name: "order/hjb-explicit", full: true, fn: func() ([]Violation, error) {
			return TemporalOrderHJB("explicit", 16, tol)
		}},
		{name: "differential/finite-m", full: true, fn: func() ([]Violation, error) {
			cfg := opts.Solver
			cfg.NH, cfg.NQ, cfg.Steps = 7, 21, 32
			return FiniteMAgreement(cfg, opts.Workload, []int{3, 6, 12}, tol)
		}},
	}

	start := time.Now()
	report := &Report{Tier: opts.Tier, Seed: opts.Seed, Passed: true}
	for _, c := range checks {
		if c.full && opts.Tier != Full {
			continue
		}
		if err := ctx.Err(); err != nil {
			return report, fmt.Errorf("verify: cancelled before %s: %w", c.name, err)
		}
		res := timeCheck(c.name, opts.Tier, c.fn)
		report.Checks = append(report.Checks, res)
		rec.Add("verify.checks", 1)
		if !res.Passed {
			rec.Add("verify.failures", 1)
			report.Passed = false
		}
	}
	report.Elapsed = time.Since(start).Seconds()
	rec.Gauge("verify.elapsed_seconds", report.Elapsed)
	return report, nil
}

// propertySweep solves every generated case and holds the result against
// the full invariant catalogue; a failing case is shrunk before reporting
// so the violation points at the simplest reproducing input.
func propertySweep(ctx context.Context, opts Options, tol Tolerances) ([]Violation, error) {
	gen := NewGen(opts.Seed)
	var out []Violation
	for i := 0; i < opts.Cases; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		c := gen.Case()
		violations, err := caseViolations(c, tol)
		if err != nil {
			return out, fmt.Errorf("%s: %w", c, err)
		}
		if len(violations) == 0 {
			continue
		}
		shrunk := Shrink(c, func(cand Case) bool {
			v, err := caseViolations(cand, tol)
			return err == nil && len(v) > 0
		}, 6)
		violations, err = caseViolations(shrunk, tol)
		if err != nil {
			return out, fmt.Errorf("%s: %w", shrunk, err)
		}
		for _, v := range violations {
			v.Detail = fmt.Sprintf("%s [%s]", v.Detail, shrunk)
			out = append(out, v)
		}
	}
	return out, nil
}

// caseViolations solves one generated case and applies the invariant
// oracles.
func caseViolations(c Case, tol Tolerances) ([]Violation, error) {
	if err := c.Config.Validate(); err != nil {
		return nil, fmt.Errorf("generated config invalid: %w", err)
	}
	if err := c.Workload.Validate(); err != nil {
		return nil, fmt.Errorf("generated workload invalid: %w", err)
	}
	eq, err := solveFor(c.Config, c.Workload)
	if err != nil {
		return nil, err
	}
	return AllInvariants(eq, tol), nil
}

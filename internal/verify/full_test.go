//go:build verifyfull

package verify

import (
	"context"
	"testing"
)

// TestRunFullTier is the nightly gate (`go test -tags verifyfull`): the full
// tier — order estimation for both schemes and both PDEs, the finite-M
// differential and the wide property sweep — must pass on the defaults.
func TestRunFullTier(t *testing.T) {
	report, err := Run(context.Background(), Options{Tier: Full})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.Passed {
		t.Fatalf("full tier failed on defaults:\n%s", report.Summary())
	}
	full := 0
	for _, c := range report.Checks {
		switch c.Name {
		case "order/fpk-explicit", "order/hjb-implicit", "order/hjb-explicit", "differential/finite-m":
			full++
		}
	}
	if full != 4 {
		t.Fatalf("full tier ran %d full-only checks, want 4:\n%s", full, report.Summary())
	}
}

package verify

import (
	"math"
	"testing"
)

func TestObservedOrder(t *testing.T) {
	tests := []struct {
		name   string
		d1, d2 float64
		fails  bool
	}{
		{"first-order", 0.1, 0.05, false},
		{"slightly-degraded", 0.1, 0.06, false}, // order 0.74 > 1 − 0.45
		{"order-zero", 0.1, 0.095, true},        // no convergence: consistency bug
		{"non-decreasing", 0.05, 0.1, true},
		{"noise-floor", 1e-14, 1e-15, false}, // scheme exact on the problem
		{"nan", math.NaN(), 0.1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			vs := observedOrder("order-test", tt.d1, tt.d2, 1, 0.45)
			if got := len(vs) > 0; got != tt.fails {
				t.Fatalf("observedOrder(%g, %g): violations %v, want fail=%v", tt.d1, tt.d2, vs, tt.fails)
			}
		})
	}
}

func TestTemporalOrderBothSchemes(t *testing.T) {
	tol := DefaultTolerances()
	for _, scheme := range []string{"implicit", "explicit"} {
		t.Run("fpk-"+scheme, func(t *testing.T) {
			vs, err := TemporalOrderFPK(scheme, 16, tol)
			if err != nil {
				t.Fatalf("FPK order study: %v", err)
			}
			if len(vs) != 0 {
				t.Fatalf("FPK %s scheme below nominal order: %v", scheme, vs)
			}
		})
		t.Run("hjb-"+scheme, func(t *testing.T) {
			vs, err := TemporalOrderHJB(scheme, 16, tol)
			if err != nil {
				t.Fatalf("HJB order study: %v", err)
			}
			if len(vs) != 0 {
				t.Fatalf("HJB %s scheme below nominal order: %v", scheme, vs)
			}
		})
	}
	if _, err := TemporalOrderFPK("no-such-scheme", 16, tol); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

package verify

import (
	"testing"
)

func TestSurrogateAgreementOnDefaults(t *testing.T) {
	cfg, w := defaultInputs()
	vs, err := SurrogateAgreement(cfg, w, 1)
	if err != nil {
		t.Fatalf("surrogate agreement: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("interpolated answers exceed the declared error bound: %v", vs)
	}
}

// TestSurrogateDifferentialCatchesSeededViolation is the mutation test of the
// tier-0 differential: the same probes that pass against honestly declared
// bounds must trip the oracle once the table's bounds are shrunk below the
// real interpolation error — a table promising more accuracy than it has.
func TestSurrogateDifferentialCatchesSeededViolation(t *testing.T) {
	cfg, w := defaultInputs()
	tab, err := buildSurrogateTable(cfg, w)
	if err != nil {
		t.Fatalf("build table: %v", err)
	}
	vs, err := surrogateViolations(tab, cfg, 1, 2)
	if err != nil {
		t.Fatalf("probe honest table: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("honest table must verify clean: %v", vs)
	}

	for i := range tab.Bounds {
		tab.Bounds[i] *= 1e-3
	}
	vs, err = surrogateViolations(tab, cfg, 1, 2)
	if err != nil {
		t.Fatalf("probe dishonest table: %v", err)
	}
	if !hasOracle(vs, "surrogate-differential") {
		t.Fatal("bounds shrunk below the real interpolation error must fail the differential")
	}
}

// Package verify is the numerical verification subsystem of the MFG-CP
// reproduction: it turns the paper's mathematical invariants into executable
// oracles and exercises them with differential harnesses, convergence-order
// estimation and property-based configuration generators.
//
// The package is organised in four layers:
//
//   - invariant oracles over a solved Equilibrium (oracles.go): FPK mass
//     conservation and density non-negativity, best-response residual
//     contraction, the HJB terminal condition, and the Eq. 21 structure of
//     the optimal control (range, clamp saturation, monotonicity in ∂qV);
//   - differential harnesses (differential.go): implicit vs explicit
//     pde.Scheme agreement, cache-hit vs cold-solve bit-equality,
//     checkpoint/resume vs uninterrupted-run equality, and mean-field vs
//     finite-M (internal/exactgame) best-response agreement as M grows;
//   - convergence-order estimation by time-mesh refinement (order.go),
//     checked against the scheme's nominal pde.Scheme.Order;
//   - seeded, shrinkable generators of valid Params/Config/Workload
//     (generators.go) feeding all of the above over a parameter sweep.
//
// Run wires the layers into tiered check suites (run.go); the `mfgcp verify`
// subcommand and the tagged test suites are thin wrappers around it.
package verify

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Tier selects how much work a verification run performs.
type Tier string

const (
	// Quick is the per-push gate: every oracle and harness on small grids,
	// a short property sweep. It finishes in a few seconds.
	Quick Tier = "quick"
	// Full is the nightly tier: wider property sweeps, order estimation for
	// both schemes and both PDEs, and the finite-M differential check.
	Full Tier = "full"
)

// Violation is one concrete breach of an invariant: which oracle fired,
// where, the worst observed value and the limit it was held against.
type Violation struct {
	Oracle string  `json:"oracle"`
	Detail string  `json:"detail"`
	Worst  float64 `json:"worst"`
	Limit  float64 `json:"limit"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (worst %.6g, limit %.6g)", v.Oracle, v.Detail, v.Worst, v.Limit)
}

// violationf builds a Violation with a formatted detail string.
func violationf(oracle string, worst, limit float64, format string, args ...any) Violation {
	return Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...), Worst: worst, Limit: limit}
}

// CheckResult is the outcome of one named check in a Run.
type CheckResult struct {
	Name       string      `json:"name"`
	Tier       Tier        `json:"tier"`
	Passed     bool        `json:"passed"`
	Duration   float64     `json:"duration_seconds"`
	Violations []Violation `json:"violations,omitempty"`
	// Err records a harness failure (a solve that errored, an invalid
	// generated case): the check could not run to completion, which fails
	// the report just like a violation would.
	Err string `json:"error,omitempty"`
}

// Report is the JSON document `mfgcp verify` emits: one entry per check,
// plus the overall verdict.
type Report struct {
	Tier    Tier          `json:"tier"`
	Seed    int64         `json:"seed"`
	Passed  bool          `json:"passed"`
	Checks  []CheckResult `json:"checks"`
	Elapsed float64       `json:"elapsed_seconds"`
}

// Violations returns every violation across all checks.
func (r *Report) Violations() []Violation {
	var all []Violation
	for _, c := range r.Checks {
		all = append(all, c.Violations...)
	}
	return all
}

// Summary renders a terse human-readable report (one line per check).
func (r *Report) Summary() string {
	var b strings.Builder
	for _, c := range r.Checks {
		status := "ok"
		if !c.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-40s %-4s %6.2fs\n", c.Name, status, c.Duration)
		for _, v := range c.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
		if c.Err != "" {
			fmt.Fprintf(&b, "    error: %s\n", c.Err)
		}
	}
	verdict := "PASSED"
	if !r.Passed {
		verdict = "FAILED"
	}
	fmt.Fprintf(&b, "verify %s: %s (%d checks, %.1fs)\n", r.Tier, verdict, len(r.Checks), r.Elapsed)
	return b.String()
}

// MarshalIndent renders the report as indented JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Tolerances collects every numerical threshold the oracles and harnesses
// hold solver output against. The defaults are derived from the paper's
// equations and the schemes' nominal accuracy; DESIGN.md §11 records the
// justification for each.
type Tolerances struct {
	// MassTol bounds the relative drift of the pre-renormalisation FPK mass
	// per step, |RawMass[n] − RawMass[0]| / RawMass[0]. The conservative
	// discretisation of Eq. 15 conserves mass to solver round-off; 1e-6
	// leaves three orders of magnitude of slack over float64 accumulation
	// error on the largest grids.
	MassTol float64

	// TerminalTol bounds |V(T,·) − terminal condition|. The paper's scrap
	// value is identically zero and the solver writes it exactly, so the
	// default is exact equality.
	TerminalTol float64

	// ClampTol bounds the deviation between the stored strategy X and the
	// Eq. 21 closed form recomputed from ∂qV of the stored value function.
	// Both use the same central-difference gradient, so the comparison is
	// exact up to floating-point evaluation order; 1e-9 absolute.
	ClampTol float64

	// ResidualGrowth and ResidualUpFrac govern the contraction oracle over
	// Algorithm 2's residual series: an iteration "jumps" when the residual
	// grows by more than ResidualGrowth×; at most ResidualUpFrac of the
	// iterations may jump (damped fixed-point iterations are not strictly
	// monotone, but must contract on balance).
	ResidualGrowth float64
	ResidualUpFrac float64

	// SchemeTol bounds the implicit-vs-explicit disagreement of the market
	// observables (price, mean control, q̄) in the sup norm over time, each
	// normalised to its natural scale (p̂, 1, Qk). Both schemes are O(dt) so
	// they agree to O(dt) of each other; on the default differential grid
	// (dt = 1/48) the measured worst gap is 0.014 (mean control), and 0.03
	// keeps a 2× margin while still catching an O(1) defect (a wrong sign
	// or operator moves the observables by ≥ 0.1).
	SchemeTol float64

	// DensityTol bounds the implicit-vs-explicit disagreement of the final
	// density in the L1 norm (densities integrate to 1, so this is a
	// total-variation-style bound on the same O(dt) gap). Measured 0.043 at
	// dt = 1/48 on the default grid; 0.08 keeps a ~2× margin.
	DensityTol float64

	// PrecisionTol bounds the float64-vs-float32-kernel disagreement of the
	// market observables in the sup norm over time, each normalised to its
	// natural scale (p̂, 1, Qk). Only the tridiagonal sweeps run in single
	// precision (callbacks and aggregation stay float64), so the gap is
	// single-precision round-off propagated through the solve: measured
	// 7.8e-8 worst (mean control) on the default differential grid. 1e-5
	// keeps a >100× margin while catching any defect that degrades the fast
	// path beyond round-off.
	PrecisionTol float64

	// PrecisionDensityTol bounds the same differential's final-density L1
	// disagreement. Measured 4.6e-7 on the default grid; 1e-4 keeps a >200×
	// margin.
	PrecisionDensityTol float64

	// OrderSlack is subtracted from the scheme's nominal order before
	// comparing with the observed order from mesh refinement: observed ≥
	// nominal − slack. Pre-asymptotic effects and splitting-error mixing
	// make the observed order fluctuate around 1; 0.45 keeps the check
	// sharp enough to catch an O(1)-consistent (order-0) regression.
	OrderSlack float64

	// FiniteMTol bounds the sup-over-time gap between the finite-M
	// exact-game mean strategy and the MFG mean control at the largest M
	// tested; FiniteMGrowth is the tolerated non-monotonicity factor when
	// checking that the gap shrinks as M grows.
	FiniteMTol    float64
	FiniteMGrowth float64
}

// DefaultTolerances returns the thresholds justified in DESIGN.md §11.
func DefaultTolerances() Tolerances {
	return Tolerances{
		MassTol:             1e-6,
		TerminalTol:         0,
		ClampTol:            1e-9,
		ResidualGrowth:      1.5,
		ResidualUpFrac:      0.34,
		SchemeTol:           0.03,
		DensityTol:          0.08,
		PrecisionTol:        1e-5,
		PrecisionDensityTol: 1e-4,
		OrderSlack:          0.45,
		FiniteMTol:          0.05,
		FiniteMGrowth:       1.25,
	}
}

// Validate rejects tolerance sets that would make the oracles vacuous or
// self-contradictory (negative bounds, non-finite values).
func (t Tolerances) Validate() error {
	check := func(name string, v float64) error {
		if v != v || v < 0 {
			return fmt.Errorf("verify: tolerance %s must be non-negative and finite, got %g", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MassTol", t.MassTol}, {"TerminalTol", t.TerminalTol}, {"ClampTol", t.ClampTol},
		{"SchemeTol", t.SchemeTol}, {"DensityTol", t.DensityTol},
		{"PrecisionTol", t.PrecisionTol}, {"PrecisionDensityTol", t.PrecisionDensityTol},
		{"OrderSlack", t.OrderSlack}, {"FiniteMTol", t.FiniteMTol},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if !(t.ResidualGrowth >= 1) {
		return fmt.Errorf("verify: ResidualGrowth must be ≥ 1, got %g", t.ResidualGrowth)
	}
	if !(t.ResidualUpFrac >= 0 && t.ResidualUpFrac <= 1) {
		return fmt.Errorf("verify: ResidualUpFrac must lie in [0,1], got %g", t.ResidualUpFrac)
	}
	if !(t.FiniteMGrowth >= 1) {
		return fmt.Errorf("verify: FiniteMGrowth must be ≥ 1, got %g", t.FiniteMGrowth)
	}
	return nil
}

// timeCheck wraps fn in a CheckResult, timing it and folding a returned
// error into the result.
func timeCheck(name string, tier Tier, fn func() ([]Violation, error)) CheckResult {
	start := time.Now()
	violations, err := fn()
	res := CheckResult{
		Name:       name,
		Tier:       tier,
		Duration:   time.Since(start).Seconds(),
		Violations: violations,
		Passed:     len(violations) == 0 && err == nil,
	}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

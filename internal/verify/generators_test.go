package verify

import (
	"testing"

	"repro/internal/mec"
)

// TestGenProducesValidCases checks the generator's core guarantee: every
// draw passes the model's own validation, so the property sweep never spends
// budget on rejected inputs.
func TestGenProducesValidCases(t *testing.T) {
	gen := NewGen(42)
	for i := 0; i < 50; i++ {
		c := gen.Case()
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("%s: generated config invalid: %v", c, err)
		}
		if err := c.Workload.Validate(); err != nil {
			t.Fatalf("%s: generated workload invalid: %v", c, err)
		}
		if c.Seed != 42 || c.Index != i {
			t.Fatalf("case provenance wrong: seed=%d index=%d, want 42/%d", c.Seed, c.Index, i)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a, b := NewGen(7), NewGen(7)
	for i := 0; i < 10; i++ {
		ca, cb := a.Case(), b.Case()
		if ca.Params != cb.Params || ca.Workload != cb.Workload ||
			ca.Config.NH != cb.Config.NH || ca.Config.NQ != cb.Config.NQ ||
			ca.Config.Steps != cb.Config.Steps {
			t.Fatalf("same seed diverged at draw %d:\n%+v\n%+v", i, ca, cb)
		}
	}
	other := NewGen(8).Case()
	first := NewGen(7).Case()
	if other.Params == first.Params {
		t.Fatal("different seeds produced identical parameter draws")
	}
}

// TestShrinkConvergesToDefaults checks that a failure independent of the
// input shrinks all the way to the defaults-everywhere candidate.
func TestShrinkConvergesToDefaults(t *testing.T) {
	c := NewGen(3).Case()
	shrunk := Shrink(c, func(Case) bool { return true }, 6)
	if shrunk.Params != mec.Default() {
		t.Errorf("always-failing case should shrink to default params, got %+v", shrunk.Params)
	}
	if shrunk.Config.NH != 5 || shrunk.Config.NQ != 11 || shrunk.Config.Steps != 16 {
		t.Errorf("always-failing case should shrink to the smallest grid, got %dx%d/%d",
			shrunk.Config.NH, shrunk.Config.NQ, shrunk.Config.Steps)
	}
}

// TestShrinkKeepsFailing checks the shrinker's contract: the returned case
// still fails the predicate even when no candidate reproduces.
func TestShrinkKeepsFailing(t *testing.T) {
	c := NewGen(3).Case()
	only := func(cand Case) bool { return cand.Params == c.Params && cand.Workload == c.Workload }
	shrunk := Shrink(c, only, 6)
	if !only(shrunk) {
		t.Fatal("Shrink returned a case that no longer fails the predicate")
	}
}

func TestShrinkCandidatesAreValid(t *testing.T) {
	c := NewGen(11).Case()
	for i, cand := range shrinkCandidates(c) {
		if err := cand.Config.Validate(); err != nil {
			t.Errorf("candidate %d config invalid: %v", i, err)
		}
		if err := cand.Workload.Validate(); err != nil {
			t.Errorf("candidate %d workload invalid: %v", i, err)
		}
	}
}

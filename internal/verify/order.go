package verify

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/numerics"
	"repro/internal/pde"
)

// Temporal-order estimation: solve a fixed smooth synthetic problem on the
// model's physical domain at time resolutions S, 2S and 4S on one spatial
// grid, and estimate the observed convergence order from the successive
// differences (Richardson style, no exact solution needed):
//
//	order ≈ log2( ‖u_S − u_2S‖ / ‖u_2S − u_4S‖ )
//
// For a scheme of nominal order p both differences shrink by 2^p per
// refinement, so the estimate must stay above p − OrderSlack. The synthetic
// drifts and utilities are smooth and keep the explicit scheme inside its
// CFL bound at every resolution used.

// orderGrid is the fixed spatial grid of the refinement study: the model's
// physical domain (h ∈ [1,10], q ∈ [0,100]) at a resolution where spatial
// error is frozen across the three time resolutions.
func orderGrid() (grid.Grid2D, error) {
	hAxis, err := grid.NewAxis(1, 10, 9)
	if err != nil {
		return grid.Grid2D{}, err
	}
	qAxis, err := grid.NewAxis(0, 100, 17)
	if err != nil {
		return grid.Grid2D{}, err
	}
	return grid.NewGrid2D(hAxis, qAxis)
}

// observedOrder turns the two successive refinement differences into an
// order estimate, guarding the round-off floor (when both differences are
// at noise level the scheme is exact on the problem and the check passes).
func observedOrder(oracle string, d1, d2, nominal, slack float64) []Violation {
	const noiseFloor = 1e-12
	if math.IsNaN(d1) || math.IsNaN(d2) {
		return []Violation{violationf(oracle, math.NaN(), 0, "refinement differences are NaN")}
	}
	if d1 < noiseFloor && d2 < noiseFloor {
		return nil
	}
	if d2 <= 0 || d1 <= d2 {
		return []Violation{violationf(oracle, d1/math.Max(d2, noiseFloor), 2,
			"refinement differences do not decrease: %.3g then %.3g", d1, d2)}
	}
	order := math.Log2(d1 / d2)
	if order < nominal-slack {
		return []Violation{violationf(oracle, order, nominal-slack,
			"observed temporal order %.2f below nominal %g − slack %g", order, nominal, slack)}
	}
	return nil
}

// TemporalOrderFPK estimates the observed temporal order of the named
// scheme on a smooth forward (FPK) transport problem and checks it against
// the scheme's nominal order.
func TemporalOrderFPK(schemeName string, baseSteps int, tol Tolerances) ([]Violation, error) {
	sch, err := pde.SchemeByName(schemeName)
	if err != nil {
		return nil, err
	}
	g, err := orderGrid()
	if err != nil {
		return nil, err
	}
	lambda0, err := pde.GaussianDensity(g, 5, 1.5, 70, 10)
	if err != nil {
		return nil, err
	}
	solve := func(steps int) ([]float64, error) {
		tm, err := grid.NewTimeMesh(1, steps)
		if err != nil {
			return nil, err
		}
		p := &pde.FPKProblem{
			Grid:  g,
			Time:  tm,
			DiffH: 0.125,
			DiffQ: 50,
			// Smooth, time-dependent drifts on the physical scales: an OU
			// pull in h and a contracting, slowly accelerating drift in q.
			DriftH:      func(_, h float64) float64 { return 1.0 * (5 - h) },
			DriftQ:      func(t, _, q float64) float64 { return -6 + 2*t - 0.03*q },
			Form:        pde.Conservative,
			Stepping:    sch.Stepping(),
			Renormalize: true,
		}
		sol, err := pde.SolveFPK(p, lambda0)
		if err != nil {
			return nil, err
		}
		return sol.Lambda[steps], nil
	}

	var finals [3][]float64
	for i, steps := range []int{baseSteps, 2 * baseSteps, 4 * baseSteps} {
		if finals[i], err = solve(steps); err != nil {
			return nil, fmt.Errorf("verify: FPK order solve at %d steps: %w", steps, err)
		}
	}
	d1, err := numerics.L1Distance(finals[0], finals[1], g.CellArea())
	if err != nil {
		return nil, err
	}
	d2, err := numerics.L1Distance(finals[1], finals[2], g.CellArea())
	if err != nil {
		return nil, err
	}
	oracle := "order-fpk-" + sch.Name()
	return observedOrder(oracle, d1, d2, float64(sch.Order()), tol.OrderSlack), nil
}

// TemporalOrderHJB estimates the observed temporal order of the named
// scheme on a smooth backward (HJB) problem with an interior (unclamped)
// control feedback, and checks it against the scheme's nominal order. The
// error is measured on the value function at t = 0 in the sup norm.
func TemporalOrderHJB(schemeName string, baseSteps int, tol Tolerances) ([]Violation, error) {
	sch, err := pde.SchemeByName(schemeName)
	if err != nil {
		return nil, err
	}
	g, err := orderGrid()
	if err != nil {
		return nil, err
	}
	solve := func(steps int) ([]float64, error) {
		tm, err := grid.NewTimeMesh(1, steps)
		if err != nil {
			return nil, err
		}
		p := &pde.HJBProblem{
			Grid:   g,
			Time:   tm,
			DiffH:  0.125,
			DiffQ:  50,
			DriftH: func(_, h float64) float64 { return 1.0 * (5 - h) },
			DriftQ: func(_, x float64) float64 { return -3 - 2*x },
			// Mild feedback keeps the control interior, so the synthetic
			// solution stays smooth (no clamp kinks to pollute the order).
			Control:  func(_, _, _, dVdq float64) float64 { return 0.5 + 0.01*dVdq },
			Running:  func(_, x, h, q float64) float64 { return 0.1*h + 0.002*q + 0.2*x },
			Stepping: sch.Stepping(),
		}
		sol, err := pde.SolveHJB(p)
		if err != nil {
			return nil, err
		}
		return sol.V[0], nil
	}

	var finals [3][]float64
	for i, steps := range []int{baseSteps, 2 * baseSteps, 4 * baseSteps} {
		if finals[i], err = solve(steps); err != nil {
			return nil, fmt.Errorf("verify: HJB order solve at %d steps: %w", steps, err)
		}
	}
	sup := func(a, b []float64) float64 {
		var worst float64
		for k := range a {
			if d := math.Abs(a[k] - b[k]); d > worst {
				worst = d
			}
		}
		return worst
	}
	d1 := sup(finals[0], finals[1])
	d2 := sup(finals[1], finals[2])
	oracle := "order-hjb-" + sch.Name()
	return observedOrder(oracle, d1, d2, float64(sch.Order()), tol.OrderSlack), nil
}

package verify

import (
	"testing"

	"repro/internal/mec"
	"repro/internal/policy"
	"repro/internal/sim"
)

func TestSchemeAgreementOnDefaults(t *testing.T) {
	cfg, w := defaultInputs()
	vs, err := SchemeAgreement(cfg, w, DefaultTolerances())
	if err != nil {
		t.Fatalf("scheme agreement: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("implicit and explicit schemes disagree beyond tolerance: %v", vs)
	}
}

// TestSchemeDifferentialCatchesSeededViolation is the mutation test of the
// cross-scheme differential: the genuine O(dt) gap between the integrators
// must trip the oracle once the tolerance is tightened below it, and a
// tampered observable must trip it at the default tolerance.
func TestSchemeDifferentialCatchesSeededViolation(t *testing.T) {
	cfg, w := defaultInputs()

	t.Run("broken-tolerance", func(t *testing.T) {
		tol := DefaultTolerances()
		tol.SchemeTol = 1e-9
		tol.DensityTol = 1e-9
		vs, err := SchemeAgreement(cfg, w, tol)
		if err != nil {
			t.Fatalf("scheme agreement: %v", err)
		}
		if !hasOracle(vs, "scheme-differential") {
			t.Fatal("tolerance below the real O(dt) gap must fail the differential")
		}
	})
	t.Run("tampered-observables", func(t *testing.T) {
		a, b := solvedEq(t), solvedEq(t)
		tol := DefaultTolerances()
		if vs := CompareObservables(a, b, "scheme-differential", tol); len(vs) != 0 {
			t.Fatalf("identical solves must compare clean: %v", vs)
		}
		b.Snapshots[2].Price += a.Config.Params.PHat // 100% of the price scale
		if vs := CompareObservables(a, b, "scheme-differential", tol); !hasOracle(vs, "scheme-differential") {
			t.Fatalf("tampered price path not caught: %v", vs)
		}

		b = solvedEq(t)
		b.Snapshots[1].MeanControl += 2 * tol.SchemeTol
		if vs := CompareObservables(a, b, "scheme-differential", tol); !hasOracle(vs, "scheme-differential") {
			t.Fatalf("tampered mean control not caught: %v", vs)
		}

		b = solvedEq(t)
		last := b.FPK.Lambda[len(b.FPK.Lambda)-1]
		for k := range last {
			last[k] *= 1.5 // 50% L1 mass of disagreement
		}
		if vs := CompareObservables(a, b, "scheme-differential", tol); !hasOracle(vs, "scheme-differential") {
			t.Fatalf("tampered final density not caught: %v", vs)
		}
	})
}

func TestPrecisionAgreementOnDefaults(t *testing.T) {
	cfg, w := defaultInputs()
	vs, err := PrecisionAgreement(cfg, w, DefaultTolerances())
	if err != nil {
		t.Fatalf("precision agreement: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("float32 and float64 kernels disagree beyond tolerance: %v", vs)
	}
}

// TestPrecisionDifferentialCatchesSeededViolation is the mutation test of the
// cross-precision differential: the genuine single-precision round-off gap
// must trip the oracle once the tolerance is tightened below it.
func TestPrecisionDifferentialCatchesSeededViolation(t *testing.T) {
	cfg, w := defaultInputs()
	tol := DefaultTolerances()
	tol.PrecisionTol = 1e-12
	tol.PrecisionDensityTol = 1e-12
	vs, err := PrecisionAgreement(cfg, w, tol)
	if err != nil {
		t.Fatalf("precision agreement: %v", err)
	}
	if !hasOracle(vs, "precision-differential") {
		t.Fatal("tolerance below the real float32 round-off gap must fail the differential")
	}
}

func TestBitEqualCatchesSingleBit(t *testing.T) {
	a, b := solvedEq(t), solvedEq(t)
	if vs := BitEqual(a, b, "cache-bit-equality"); len(vs) != 0 {
		t.Fatalf("two cold solves of identical inputs differ: %v", vs)
	}
	b.HJB.V[1][1] += 1e-13
	if vs := BitEqual(a, b, "cache-bit-equality"); !hasOracle(vs, "cache-bit-equality") {
		t.Fatal("single-ulp value-function tamper not caught")
	}

	b = solvedEq(t)
	b.Residuals[0] *= 1 + 1e-15
	if vs := BitEqual(a, b, "cache-bit-equality"); !hasOracle(vs, "cache-bit-equality") {
		t.Fatal("residual-history tamper not caught")
	}
}

func TestCacheBitEqualityOnDefaults(t *testing.T) {
	cfg, w := defaultInputs()
	vs, err := CacheBitEquality(cfg, w)
	if err != nil {
		t.Fatalf("cache bit equality: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("cache round-trip not bit-identical: %v", vs)
	}
}

func TestCheckpointResumeOnDefaults(t *testing.T) {
	opts := Options{Seed: 7}.normalise()
	vs, err := CheckpointResume(opts.simConfig, t.TempDir())
	if err != nil {
		t.Fatalf("checkpoint resume: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("resumed run not bit-identical to uninterrupted run: %v", vs)
	}
}

func TestCheckpointResumeRejectsSingleEpoch(t *testing.T) {
	mk := func() sim.Config {
		p := mec.Default()
		p.M, p.K = 4, 2
		cfg := sim.DefaultConfig(p, policy.NewRR())
		cfg.Epochs = 1
		return cfg
	}
	if _, err := CheckpointResume(mk, t.TempDir()); err == nil {
		t.Fatal("single-epoch config cannot be killed mid-run; want error")
	}
}

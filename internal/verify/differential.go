package verify

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/engine"
	"repro/internal/exactgame"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/sim"
)

// CompareObservables checks two equilibria for agreement of the market
// observables the rest of the system consumes — the price path, the mean
// caching rate and the mean remaining space — in the sup norm over time,
// each normalised to its natural scale (p̂, 1, Qk), plus the final density
// in the L1 norm, against SchemeTol/DensityTol. oracle names the caller in
// the violations.
func CompareObservables(a, b *engine.Equilibrium, oracle string, tol Tolerances) []Violation {
	return compareObservables(a, b, oracle, tol.SchemeTol, tol.DensityTol)
}

// compareObservables is the tolerance-parameterised core shared by the
// cross-scheme and cross-precision differentials.
func compareObservables(a, b *engine.Equilibrium, oracle string, obsTol, densTol float64) []Violation {
	var out []Violation
	if len(a.Snapshots) != len(b.Snapshots) {
		return []Violation{violationf(oracle, float64(len(b.Snapshots)), float64(len(a.Snapshots)),
			"snapshot counts differ: %d vs %d", len(a.Snapshots), len(b.Snapshots))}
	}
	p := a.Config.Params
	var dPrice, dMeanX, dQBar float64
	for n := range a.Snapshots {
		sa, sb := a.Snapshots[n], b.Snapshots[n]
		dPrice = math.Max(dPrice, math.Abs(sa.Price-sb.Price)/p.PHat)
		dMeanX = math.Max(dMeanX, math.Abs(sa.MeanControl-sb.MeanControl))
		dQBar = math.Max(dQBar, math.Abs(sa.QBar-sb.QBar)/p.Qk)
	}
	for _, m := range []struct {
		name string
		d    float64
	}{
		{"price (relative to p̂)", dPrice},
		{"mean control", dMeanX},
		{"mean remaining space (relative to Qk)", dQBar},
	} {
		if m.d > obsTol || math.IsNaN(m.d) {
			out = append(out, violationf(oracle, m.d, obsTol,
				"sup-over-time %s disagreement %.3g", m.name, m.d))
		}
	}
	if a.FPK != nil && b.FPK != nil {
		la := a.FPK.Lambda[len(a.FPK.Lambda)-1]
		lb := b.FPK.Lambda[len(b.FPK.Lambda)-1]
		if len(la) == len(lb) {
			d, err := numerics.L1Distance(la, lb, a.Grid.CellArea())
			if err != nil {
				out = append(out, violationf(oracle, 0, 0, "final-density L1 distance: %v", err))
			} else if d > densTol || math.IsNaN(d) {
				out = append(out, violationf(oracle, d, densTol,
					"final-density L1 disagreement %.3g", d))
			}
		} else {
			out = append(out, violationf(oracle, float64(len(lb)), float64(len(la)),
				"density field sizes differ: %d vs %d", len(la), len(lb)))
		}
	}
	return out
}

// BitEqual checks two equilibria for bit-for-bit identity of every solver
// output: value function, strategy, density path, snapshots, residuals and
// the convergence verdict. It is the contract of deterministic re-solves
// (cache round-trips, repeated cold solves of the same inputs).
func BitEqual(a, b *engine.Equilibrium, oracle string) []Violation {
	fail := func(format string, args ...any) []Violation {
		return []Violation{violationf(oracle, 0, 0, format, args...)}
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged {
		return fail("diagnostics differ: %d/%v vs %d/%v iterations/converged",
			a.Iterations, a.Converged, b.Iterations, b.Converged)
	}
	if len(a.Residuals) != len(b.Residuals) {
		return fail("residual histories differ in length: %d vs %d", len(a.Residuals), len(b.Residuals))
	}
	for i := range a.Residuals {
		if a.Residuals[i] != b.Residuals[i] {
			return fail("residual %d differs: %g vs %g", i, a.Residuals[i], b.Residuals[i])
		}
	}
	if len(a.Snapshots) != len(b.Snapshots) {
		return fail("snapshot counts differ: %d vs %d", len(a.Snapshots), len(b.Snapshots))
	}
	for n := range a.Snapshots {
		if a.Snapshots[n] != b.Snapshots[n] {
			return fail("snapshot %d differs: %+v vs %+v", n, a.Snapshots[n], b.Snapshots[n])
		}
	}
	paths := []struct {
		name string
		a, b [][]float64
	}{
		{"V", a.HJB.V, b.HJB.V},
		{"X", a.HJB.X, b.HJB.X},
		{"Lambda", a.FPK.Lambda, b.FPK.Lambda},
	}
	for _, p := range paths {
		if len(p.a) != len(p.b) {
			return fail("%s path lengths differ: %d vs %d", p.name, len(p.a), len(p.b))
		}
		for n := range p.a {
			if len(p.a[n]) != len(p.b[n]) {
				return fail("%s[%d] sizes differ: %d vs %d", p.name, n, len(p.a[n]), len(p.b[n]))
			}
			for k := range p.a[n] {
				if p.a[n][k] != p.b[n][k] &&
					!(math.IsNaN(p.a[n][k]) && math.IsNaN(p.b[n][k])) {
					return fail("%s[%d][%d] differs: %g vs %g (bit-equality contract)",
						p.name, n, k, p.a[n][k], p.b[n][k])
				}
			}
		}
	}
	return nil
}

// SchemeAgreement solves the same configuration under the implicit and the
// explicit time integrator and checks the market observables agree within
// SchemeTol. The config must be CFL-safe for the explicit scheme (the
// default differential grid, 7×15 over 48 steps, is).
func SchemeAgreement(cfg engine.Config, w engine.Workload, tol Tolerances) ([]Violation, error) {
	implicitCfg := cfg
	implicitCfg.Scheme = "implicit"
	explicitCfg := cfg
	explicitCfg.Scheme = "explicit"

	eqI, err := solveFor(implicitCfg, w)
	if err != nil {
		return nil, fmt.Errorf("implicit scheme: %w", err)
	}
	eqE, err := solveFor(explicitCfg, w)
	if err != nil {
		return nil, fmt.Errorf("explicit scheme: %w", err)
	}
	return CompareObservables(eqI, eqE, "scheme-differential", tol), nil
}

// PrecisionAgreement solves the same configuration under the default float64
// kernel and the opt-in float32 fast path and checks the market observables
// agree within PrecisionTol (sup over time, natural scales) and the final
// density within PrecisionDensityTol in L1. It also requires the two solves
// to take the same number of best-response iterations: the fast path must
// not change the fixed-point trajectory, only perturb it at single-precision
// round-off. The config's scheme must be implicit (the float32 kernel
// supports no other).
func PrecisionAgreement(cfg engine.Config, w engine.Workload, tol Tolerances) ([]Violation, error) {
	f64 := cfg
	f64.Kernel.Precision = pde.PrecisionFloat64
	f32 := cfg
	f32.Kernel.Precision = pde.PrecisionFloat32

	eq64, err := solveFor(f64, w)
	if err != nil {
		return nil, fmt.Errorf("float64 kernel: %w", err)
	}
	eq32, err := solveFor(f32, w)
	if err != nil {
		return nil, fmt.Errorf("float32 kernel: %w", err)
	}
	out := compareObservables(eq64, eq32, "precision-differential", tol.PrecisionTol, tol.PrecisionDensityTol)
	if eq32.Iterations != eq64.Iterations || eq32.Converged != eq64.Converged {
		out = append(out, violationf("precision-differential",
			float64(eq32.Iterations), float64(eq64.Iterations),
			"fixed-point diagnostics differ: %d/%v iterations/converged under float32, %d/%v under float64",
			eq32.Iterations, eq32.Converged, eq64.Iterations, eq64.Converged))
	}
	return out, nil
}

// CacheBitEquality checks the engine's determinism and cache transparency:
// two cold solves of identical inputs must agree bit-for-bit, and an
// equilibrium stored in the cache must come back under the same key
// unchanged (a cache hit is indistinguishable from a re-solve).
func CacheBitEquality(cfg engine.Config, w engine.Workload) ([]Violation, error) {
	eq1, err := solveFor(cfg, w)
	if err != nil {
		return nil, fmt.Errorf("first cold solve: %w", err)
	}
	eq2, err := solveFor(cfg, w)
	if err != nil {
		return nil, fmt.Errorf("second cold solve: %w", err)
	}
	out := BitEqual(eq1, eq2, "cache-bit-equality")

	cache, err := engine.NewCache(2)
	if err != nil {
		return nil, err
	}
	key := engine.CacheKey(cfg, w)
	cache.Put(obs.Nop, key, eq1)
	hit, ok := cache.Get(obs.Nop, key)
	if !ok {
		out = append(out, violationf("cache-bit-equality", 0, 0,
			"cache miss immediately after Put under key %q", key))
		return out, nil
	}
	out = append(out, BitEqual(eq1, hit, "cache-bit-equality")...)
	if other := engine.CacheKey(cfg, engine.Workload{Requests: w.Requests + 1, Pop: w.Pop, Timeliness: w.Timeliness}); other == key {
		out = append(out, violationf("cache-bit-equality", 0, 0,
			"cache key does not separate distinct workloads"))
	}
	return out, nil
}

// cancelAfter is a Recorder that cancels a context once a named counter
// reaches a threshold — the deterministic stand-in for a mid-run kill used
// by the checkpoint/resume harness.
type cancelAfter struct {
	obs.Recorder
	name   string
	after  float64
	seen   float64
	cancel context.CancelFunc
}

func (c *cancelAfter) Add(name string, delta float64) {
	c.Recorder.Add(name, delta)
	if name == c.name {
		c.seen += delta
		if c.seen >= c.after {
			c.cancel()
		}
	}
}

// CheckpointResume checks the resilience layer's bit-for-bit resume
// contract differentially: an uninterrupted run, and a run killed right
// after its first epoch-boundary snapshot then resumed from disk, must
// produce identical results (ledgers, epoch stats, final states). mkConfig
// must build a fresh configuration — in particular a fresh policy instance
// — on every call: policies are stateful (warm starts, cached sessions), so
// sharing one across the three phases would leak state between runs and
// break the comparison. dir is the scratch directory for the snapshot.
func CheckpointResume(mkConfig func() sim.Config, dir string) ([]Violation, error) {
	baseline := mkConfig()
	if baseline.Epochs < 2 {
		return nil, errors.New("verify: CheckpointResume needs ≥ 2 epochs to kill mid-run")
	}
	want, err := sim.Run(baseline)
	if err != nil {
		return nil, fmt.Errorf("uninterrupted run: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := mkConfig()
	killed.Checkpoint = sim.CheckpointConfig{Dir: dir}
	killed.Obs = &cancelAfter{Recorder: obs.Nop, name: "sim.checkpoint.writes", after: 1, cancel: cancel}
	if _, err := sim.RunContext(ctx, killed); !errors.Is(err, sim.ErrInterrupted) {
		return nil, fmt.Errorf("killed run: got %v, want ErrInterrupted", err)
	}

	resumed := mkConfig()
	resumed.Checkpoint = sim.CheckpointConfig{Dir: dir, Resume: true}
	reg := obs.NewRegistry(nil)
	resumed.Obs = reg
	got, err := sim.Run(resumed)
	if err != nil {
		return nil, fmt.Errorf("resumed run: %w", err)
	}
	var out []Violation
	if reg.Snapshot().Counters["sim.checkpoint.resumes"] != 1 {
		out = append(out, violationf("checkpoint-resume", 0, 1,
			"resumed run did not restore from the snapshot"))
	}
	out = append(out, compareSimResults(want, got)...)
	return out, nil
}

// compareSimResults checks everything a resumed run must reproduce
// bit-for-bit; StrategyTime is wall clock and is excluded.
func compareSimResults(want, got *sim.Result) []Violation {
	fail := func(format string, args ...any) []Violation {
		return []Violation{violationf("checkpoint-resume", 0, 0, format, args...)}
	}
	if got.PolicyName != want.PolicyName || got.M != want.M || got.Epochs != want.Epochs {
		return fail("run metadata differs: %s/%d/%d vs %s/%d/%d",
			got.PolicyName, got.M, got.Epochs, want.PolicyName, want.M, want.Epochs)
	}
	if len(got.Ledgers) != len(want.Ledgers) {
		return fail("ledger counts differ: %d vs %d", len(got.Ledgers), len(want.Ledgers))
	}
	for i := range want.Ledgers {
		if got.Ledgers[i] != want.Ledgers[i] {
			return fail("ledger %d differs: %+v vs %+v", i, got.Ledgers[i], want.Ledgers[i])
		}
	}
	if len(got.Stats) != len(want.Stats) {
		return fail("epoch-stat counts differ: %d vs %d", len(got.Stats), len(want.Stats))
	}
	for e := range want.Stats {
		a, b := got.Stats[e], want.Stats[e]
		a.StrategyTime, b.StrategyTime = 0, 0
		if a != b {
			return fail("epoch %d stats differ: %+v vs %+v", e, a, b)
		}
	}
	for i := range want.FinalQ {
		for k := range want.FinalQ[i] {
			if got.FinalQ[i][k] != want.FinalQ[i][k] {
				return fail("FinalQ[%d][%d] differs: %g vs %g", i, k, got.FinalQ[i][k], want.FinalQ[i][k])
			}
		}
		if got.FinalH[i] != want.FinalH[i] {
			return fail("FinalH[%d] differs: %g vs %g", i, got.FinalH[i], want.FinalH[i])
		}
	}
	return nil
}

// FiniteMAgreement validates the mean-field limit differentially: for a
// symmetric population, the finite-M exact game's population-mean strategy
// must approach the MFG mean control as M grows — the gap at the largest M
// must be below FiniteMTol and must not grow (beyond FiniteMGrowth×) from
// one M to the next. Ms must be increasing.
func FiniteMAgreement(cfg engine.Config, w engine.Workload, ms []int, tol Tolerances) ([]Violation, error) {
	if len(ms) < 2 {
		return nil, errors.New("verify: FiniteMAgreement needs at least two population sizes")
	}
	mfg, err := solveFor(cfg, w)
	if err != nil {
		return nil, fmt.Errorf("mean-field solve: %w", err)
	}

	exCfg := exactgame.DefaultConfig(cfg.Params)
	exCfg.NH, exCfg.NQ, exCfg.Steps = cfg.NH, cfg.NQ, cfg.Steps
	exCfg.Share = cfg.ShareEnabled

	gaps := make([]float64, len(ms))
	for i, m := range ms {
		sol, err := exactgame.Solve(exCfg, w, exactgame.SymmetricInits(cfg.Params, m))
		if err != nil && !errors.Is(err, exactgame.ErrNotConverged) {
			return nil, fmt.Errorf("exact game with M=%d: %w", m, err)
		}
		// The population is symmetric, so every agent carries the same mean
		// strategy; use the population average anyway to be robust to
		// round-off asymmetries from the sequential best-response order.
		var gap float64
		for n := 0; n <= exCfg.Steps; n++ {
			var mean float64
			for _, a := range sol.Agents {
				mean += a.MeanX[n]
			}
			mean /= float64(len(sol.Agents))
			if d := math.Abs(mean - mfg.Snapshots[n].MeanControl); d > gap {
				gap = d
			}
		}
		gaps[i] = gap
	}

	var out []Violation
	last := gaps[len(gaps)-1]
	if last > tol.FiniteMTol || math.IsNaN(last) {
		out = append(out, violationf("finite-m-differential", last, tol.FiniteMTol,
			"exact game at M=%d disagrees with the mean field by %.3g sup-over-time", ms[len(ms)-1], last))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] > gaps[i-1]*tol.FiniteMGrowth+1e-12 {
			out = append(out, violationf("finite-m-differential", gaps[i], gaps[i-1]*tol.FiniteMGrowth,
				"mean-field gap grew from %.3g (M=%d) to %.3g (M=%d); must shrink as M grows",
				gaps[i-1], ms[i-1], gaps[i], ms[i]))
		}
	}
	return out, nil
}

// scratchDir creates a temp directory for a differential harness and
// returns it with its cleanup.
func scratchDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "mfgcp-verify-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

package verify

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/numerics"
)

// defaultInputs is the solver configuration and workload every oracle test
// solves: the verification grid over the calibrated defaults.
func defaultInputs() (engine.Config, engine.Workload) {
	return DefaultSolverConfig(mec.Default()), engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

// solvedEq returns a freshly solved equilibrium the test may tamper with.
func solvedEq(t *testing.T) *engine.Equilibrium {
	t.Helper()
	cfg, w := defaultInputs()
	eq, err := solveFor(cfg, w)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return eq
}

func hasOracle(vs []Violation, oracle string) bool {
	for _, v := range vs {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

func TestAllInvariantsPassOnDefaults(t *testing.T) {
	eq := solvedEq(t)
	if vs := AllInvariants(eq, DefaultTolerances()); len(vs) != 0 {
		t.Fatalf("default solve violates invariants: %v", vs)
	}
}

// TestMassConservationCatchesSeededViolation is the mutation test of the
// mass oracle: tampering with either the raw-mass diagnostics or the stored
// densities of a clean solve must trip it.
func TestMassConservationCatchesSeededViolation(t *testing.T) {
	tol := DefaultTolerances()

	t.Run("raw-mass-drift", func(t *testing.T) {
		eq := solvedEq(t)
		eq.FPK.RawMass[len(eq.FPK.RawMass)-1] *= 1.01
		vs := MassConservation(eq, tol)
		if !hasOracle(vs, "mass-conservation") {
			t.Fatalf("1%% raw-mass drift not caught: %v", vs)
		}
	})
	t.Run("stored-density-drift", func(t *testing.T) {
		eq := solvedEq(t)
		last := eq.FPK.Lambda[len(eq.FPK.Lambda)-1]
		for k := range last {
			last[k] *= 1.02
		}
		vs := MassConservation(eq, tol)
		if !hasOracle(vs, "mass-conservation") {
			t.Fatalf("2%% stored-mass drift not caught: %v", vs)
		}
	})
	t.Run("non-finite-mass", func(t *testing.T) {
		eq := solvedEq(t)
		eq.FPK.RawMass[1] = math.NaN()
		if vs := MassConservation(eq, tol); !hasOracle(vs, "mass-conservation") {
			t.Fatalf("NaN raw mass not caught: %v", vs)
		}
	})
}

func TestDensityNonNegativeCatchesSeededViolation(t *testing.T) {
	for name, bad := range map[string]float64{
		"negative": -1e-6,
		"nan":      math.NaN(),
		"inf":      math.Inf(1),
	} {
		t.Run(name, func(t *testing.T) {
			eq := solvedEq(t)
			eq.FPK.Lambda[2][1] = bad
			if vs := DensityNonNegative(eq); !hasOracle(vs, "density-nonnegative") {
				t.Fatalf("density node %g not caught: %v", bad, vs)
			}
		})
	}
}

func TestResidualContraction(t *testing.T) {
	eq := solvedEq(t)
	tol := DefaultTolerances()

	t.Run("growth", func(t *testing.T) {
		eq.Residuals = []float64{1, 0.5, 0.9, 2, 4, 8}
		vs := ResidualContraction(eq, tol)
		if !hasOracle(vs, "residual-contraction") {
			t.Fatalf("growing residual series not caught: %v", vs)
		}
	})
	t.Run("non-finite", func(t *testing.T) {
		eq.Residuals = []float64{1, math.NaN()}
		if vs := ResidualContraction(eq, tol); !hasOracle(vs, "residual-contraction") {
			t.Fatalf("NaN residual not caught: %v", vs)
		}
	})
	t.Run("short-series-tolerated", func(t *testing.T) {
		eq.Residuals = []float64{0.1, 0.2} // warm start: too short to judge
		if vs := ResidualContraction(eq, tol); len(vs) != 0 {
			t.Fatalf("2-iteration history should pass: %v", vs)
		}
	})
	t.Run("missing-history", func(t *testing.T) {
		eq.Residuals = nil
		if vs := ResidualContraction(eq, tol); !hasOracle(vs, "residual-contraction") {
			t.Fatalf("empty residual history should fail: %v", vs)
		}
	})
}

func TestTerminalConditionCatchesSeededViolation(t *testing.T) {
	eq := solvedEq(t)
	eq.HJB.V[len(eq.HJB.V)-1][0] = 1e-9
	vs := TerminalCondition(eq, DefaultTolerances())
	if !hasOracle(vs, "terminal-condition") {
		t.Fatalf("non-zero scrap value not caught: %v", vs)
	}
}

// TestPolicyPropertiesCatchesSeededViolation is the mutation test of the
// Eq. 21 clamp oracle: perturbing stored control nodes of a clean solve must
// trip the closed-form, range, saturation and duplication checks.
func TestPolicyPropertiesCatchesSeededViolation(t *testing.T) {
	tol := DefaultTolerances()

	t.Run("closed-form-deviation", func(t *testing.T) {
		eq := solvedEq(t)
		// Move an interior node far from its value while staying in [0,1], so
		// only the closed-form comparison can catch it.
		if eq.HJB.X[1][3] < 0.5 {
			eq.HJB.X[1][3] = 0.9
		} else {
			eq.HJB.X[1][3] = 0.1
		}
		vs := PolicyProperties(eq, tol)
		if !hasOracle(vs, "eq21-policy") {
			t.Fatalf("in-range closed-form deviation not caught: %v", vs)
		}
	})
	t.Run("out-of-range", func(t *testing.T) {
		eq := solvedEq(t)
		eq.HJB.X[0][0] = 1.5
		if vs := PolicyProperties(eq, tol); !hasOracle(vs, "eq21-policy") {
			t.Fatalf("control outside [0,1] not caught: %v", vs)
		}
	})
	t.Run("clamp-saturation", func(t *testing.T) {
		// With V ≡ 0 the gradient vanishes and the raw Eq. 21 maximiser is
		// strictly negative under the defaults, so the clamp must pin every
		// node to exactly 0; one non-zero node is a saturation defect.
		eq := solvedEq(t)
		if raw := eq21Raw(eq.Config.Params, 0); raw > -tol.ClampTol {
			t.Fatalf("defaults no longer saturate at zero gradient (raw=%g); pick new test params", raw)
		}
		for _, level := range eq.HJB.V {
			for k := range level {
				level[k] = 0
			}
		}
		for _, level := range eq.HJB.X {
			for k := range level {
				level[k] = 0
			}
		}
		if vs := PolicyProperties(eq, tol); len(vs) != 0 {
			t.Fatalf("fully saturated strategy should pass: %v", vs)
		}
		eq.HJB.X[0][2] = 0.5
		vs := PolicyProperties(eq, tol)
		if !hasOracle(vs, "eq21-policy") {
			t.Fatalf("clamp saturation breach not caught: %v", vs)
		}
	})
	t.Run("final-level-duplication", func(t *testing.T) {
		eq := solvedEq(t)
		last := len(eq.HJB.X) - 1
		eq.HJB.X[last][0] = math.Mod(eq.HJB.X[last][0]+0.5, 1)
		if vs := PolicyProperties(eq, tol); !hasOracle(vs, "eq21-policy") {
			t.Fatalf("X[Steps] != X[Steps-1] not caught: %v", vs)
		}
	})
}

func TestControlMonotone(t *testing.T) {
	if vs := ControlMonotone(mec.Default(), 101); len(vs) != 0 {
		t.Fatalf("default params violate Eq. 21 monotonicity: %v", vs)
	}
	degenerate := mec.Default()
	degenerate.W1 = 0 // control independent of ∂qV: nothing to check
	if vs := ControlMonotone(degenerate, 101); len(vs) != 0 {
		t.Fatalf("degenerate params should be skipped: %v", vs)
	}
}

// TestEq21RawMatchesEngine pins the oracle's independent re-derivation of
// Eq. 21 to the engine's production formula over a gradient sweep.
func TestEq21RawMatchesEngine(t *testing.T) {
	p := mec.Default()
	for i := 0; i <= 200; i++ {
		dv := -2 + 4*float64(i)/200
		want := numerics.Clamp01(eq21Raw(p, dv))
		got := engine.OptimalControl(p, dv)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("OptimalControl(%g) = %g, re-derived Eq. 21 gives %g", dv, got, want)
		}
	}
}

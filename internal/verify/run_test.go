package verify

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunQuickTierPasses is the gate's own gate: the quick tier must pass on
// the calibrated defaults, with every non-full check present in the report.
func TestRunQuickTierPasses(t *testing.T) {
	reg := obs.NewRegistry(nil)
	report, err := Run(context.Background(), Options{Obs: reg})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.Passed {
		t.Fatalf("quick tier failed on defaults:\n%s", report.Summary())
	}
	want := []string{
		"invariants/default-config",
		"invariants/property-sweep",
		"eq21/monotone-clamp",
		"differential/scheme-agreement",
		"differential/precision",
		"differential/cache-bit-equality",
		"differential/surrogate",
		"differential/checkpoint-resume",
		"order/fpk-implicit",
	}
	if len(report.Checks) != len(want) {
		t.Fatalf("quick tier ran %d checks, want %d:\n%s", len(report.Checks), len(want), report.Summary())
	}
	for i, name := range want {
		if report.Checks[i].Name != name {
			t.Errorf("check %d is %q, want %q", i, report.Checks[i].Name, name)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["verify.checks"]; got != float64(len(want)) {
		t.Errorf("verify.checks counter = %g, want %d", got, len(want))
	}
	if got := snap.Counters["verify.failures"]; got != 0 {
		t.Errorf("verify.failures counter = %g, want 0", got)
	}
}

// TestRunBrokenToleranceFails is the acceptance check of the gate: a
// tolerance tightened below the schemes' genuine O(dt) gap must fail the
// report (and only the scheme-agreement check).
func TestRunBrokenToleranceFails(t *testing.T) {
	tol := DefaultTolerances()
	tol.SchemeTol = 1e-9
	report, err := Run(context.Background(), Options{Tol: tol})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Passed {
		t.Fatal("report passed despite a tolerance below the real scheme gap")
	}
	for _, c := range report.Checks {
		wantPass := c.Name != "differential/scheme-agreement"
		if c.Passed != wantPass {
			t.Errorf("check %s passed=%v, want %v:\n%s", c.Name, c.Passed, wantPass, report.Summary())
		}
	}
	if len(report.Violations()) == 0 {
		t.Error("failing report carries no violations")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{Tier: "nightly"}); err == nil {
		t.Error("unknown tier must error")
	}
	bad := DefaultTolerances()
	bad.ResidualGrowth = 0.5
	if _, err := Run(context.Background(), Options{Tol: bad}); err == nil {
		t.Error("invalid tolerances must error")
	}
	badTol := DefaultTolerances()
	badTol.MassTol = -1
	if err := badTol.Validate(); err == nil {
		t.Error("negative tolerance must fail validation")
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{}); err == nil {
		t.Error("cancelled context must abort the run")
	}
}

func TestReportRendering(t *testing.T) {
	report, err := Run(context.Background(), Options{Cases: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	summary := report.Summary()
	if !strings.Contains(summary, "verify quick: PASSED") {
		t.Errorf("summary missing verdict line:\n%s", summary)
	}
	data, err := report.MarshalIndent()
	if err != nil {
		t.Fatalf("MarshalIndent: %v", err)
	}
	var decoded Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if decoded.Passed != report.Passed || len(decoded.Checks) != len(report.Checks) {
		t.Error("decoded report disagrees with the original")
	}
}

package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/mec"
)

// Case is one generated verification input: a valid parameter set, solver
// configuration and workload, remembering the seed that produced it so a
// failure reproduces with `mfgcp verify -seed N`.
type Case struct {
	Seed     int64
	Index    int
	Params   mec.Params
	Config   engine.Config
	Workload engine.Workload
}

func (c Case) String() string {
	return fmt.Sprintf("case(seed=%d, index=%d, grid=%dx%d/%d, w=%.3g/%.3g/%.3g)",
		c.Seed, c.Index, c.Config.NH, c.Config.NQ, c.Config.Steps,
		c.Workload.Requests, c.Workload.Pop, c.Workload.Timeliness)
}

// Gen draws valid Params/Config/Workload triples from seeded perturbations
// of the calibrated defaults. Every draw is guaranteed to pass Validate:
// the ranges below are strict sub-ranges of the model's admissible set, so
// the property sweep spends its budget on solver behaviour, not on input
// rejection.
type Gen struct {
	seed int64
	rng  *rand.Rand
	next int
}

// NewGen returns a generator with the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.rng.Float64() }

func (g *Gen) choose(xs ...int) int { return xs[g.rng.Intn(len(xs))] }

// Params draws a valid parameter set: economics, sharing threshold, initial
// distribution and diffusion scales perturbed within the ranges the paper's
// Section V sweeps (η1 over [1,4]×10⁻⁷ per byte, α around 20%, etc.),
// everything else at the calibrated defaults.
func (g *Gen) Params() mec.Params {
	p := mec.Default()
	p.PHat = g.uniform(1.0, 2.0)
	p.Eta1 = g.uniform(1e-3, 4e-3)
	p.Eta2 = g.uniform(1.0, 3.0)
	p.SharePrice = g.uniform(0.1, 0.5)
	p.Alpha = g.uniform(0.15, 0.30)
	p.W4 = g.uniform(15, 35)
	p.W5 = g.uniform(450, 900)
	p.SigmaQ = g.uniform(6, 12)
	p.ChSigma = g.uniform(0.3, 0.7)
	p.InitMeanFrac = g.uniform(0.5, 0.85)
	p.InitStdFrac = g.uniform(0.08, 0.15)
	return p
}

// Config draws a valid solver configuration for p on a small grid (the
// sweep exercises many solves, so each must stay in the tens of
// milliseconds).
func (g *Gen) Config(p mec.Params) engine.Config {
	cfg := engine.DefaultConfig(p)
	cfg.NH = g.choose(5, 7, 9)
	cfg.NQ = g.choose(11, 15, 21)
	cfg.Steps = g.choose(16, 24, 32)
	cfg.MaxIters = 40
	cfg.Damping = g.uniform(0.4, 0.8)
	cfg.ShareEnabled = g.rng.Intn(4) != 0 // mostly MFG-CP, sometimes the MFG baseline
	return cfg
}

// Workload draws a valid per-content demand descriptor.
func (g *Gen) Workload() engine.Workload {
	return engine.Workload{
		Requests:   g.uniform(2, 30),
		Pop:        g.uniform(0.05, 0.9),
		Timeliness: g.uniform(0, 5),
	}
}

// Case draws one complete verification input.
func (g *Gen) Case() Case {
	p := g.Params()
	c := Case{
		Seed:     g.seed,
		Index:    g.next,
		Params:   p,
		Config:   g.Config(p),
		Workload: g.Workload(),
	}
	g.next++
	return c
}

// shrinkCandidates proposes strictly simpler variants of c, ordered from
// most to least aggressive: defaults-everywhere, default params only,
// smallest grid only, and every perturbed float moved halfway back to its
// default. Candidates equal to c are skipped by Shrink.
func shrinkCandidates(c Case) []Case {
	def := mec.Default()
	halfway := func(cur, d float64) float64 { return d + (cur-d)/2 }

	all := c
	all.Params = def
	all.Config = engine.DefaultConfig(def)
	all.Config.NH, all.Config.NQ, all.Config.Steps = 5, 11, 16
	all.Config.MaxIters = c.Config.MaxIters
	all.Workload = engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

	params := c
	params.Params = def
	params.Config.Params = def

	grid := c
	grid.Config.NH, grid.Config.NQ, grid.Config.Steps = 5, 11, 16

	half := c
	hp := &half.Params
	hp.PHat = halfway(hp.PHat, def.PHat)
	hp.Eta1 = halfway(hp.Eta1, def.Eta1)
	hp.Eta2 = halfway(hp.Eta2, def.Eta2)
	hp.SharePrice = halfway(hp.SharePrice, def.SharePrice)
	hp.Alpha = halfway(hp.Alpha, def.Alpha)
	hp.W4 = halfway(hp.W4, def.W4)
	hp.W5 = halfway(hp.W5, def.W5)
	hp.SigmaQ = halfway(hp.SigmaQ, def.SigmaQ)
	hp.ChSigma = halfway(hp.ChSigma, def.ChSigma)
	hp.InitMeanFrac = halfway(hp.InitMeanFrac, def.InitMeanFrac)
	hp.InitStdFrac = halfway(hp.InitStdFrac, def.InitStdFrac)
	half.Config.Params = half.Params
	half.Config.Damping = halfway(half.Config.Damping, 0.6)
	half.Workload.Requests = halfway(half.Workload.Requests, 10)
	half.Workload.Pop = halfway(half.Workload.Pop, 0.3)
	half.Workload.Timeliness = halfway(half.Workload.Timeliness, 2)

	return []Case{all, params, grid, half}
}

// Shrink greedily minimises a failing case: while some simpler candidate
// still fails the predicate, descend into it. maxRounds bounds the descent
// (the halfway candidates converge geometrically, so a handful of rounds
// suffices). The returned case still fails the predicate.
func Shrink(c Case, fails func(Case) bool, maxRounds int) Case {
	for round := 0; round < maxRounds; round++ {
		shrunk := false
		for _, cand := range shrinkCandidates(c) {
			if cand.Params == c.Params && cand.Config.NH == c.Config.NH &&
				cand.Config.NQ == c.Config.NQ && cand.Config.Steps == c.Config.Steps &&
				cand.Workload == c.Workload {
				continue // no simpler than c itself
			}
			if fails(cand) {
				c = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return c
		}
	}
	return c
}

package verify

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/engine"
	"repro/internal/surrogate"
)

// SurrogateAgreement is the tier-0 differential: it precomputes a small real
// lattice around the verification workload, then holds interpolated answers
// at seeded off-lattice probe points against cold engine solves of the same
// workloads. The measured deviation — in the table's own error metric, the
// same sup-over-time observable distances CompareObservables uses — must
// respect the per-cell bound the table declares, or the surrogate tier is
// promising accuracy it does not deliver.
func SurrogateAgreement(cfg engine.Config, w engine.Workload, seed int64) ([]Violation, error) {
	tab, err := buildSurrogateTable(cfg, w)
	if err != nil {
		return nil, err
	}
	return surrogateViolations(tab, cfg, seed, 3)
}

// buildSurrogateTable sweeps a 2×2 lattice over (Requests, Pop) straddling
// the workload, with Timeliness frozen — 4 node solves plus 1 held-out
// midpoint, cheap enough for the quick tier.
func buildSurrogateTable(cfg engine.Config, w engine.Workload) (*surrogate.Table, error) {
	reqLo := w.Requests - 2
	if reqLo < 1 {
		reqLo = 1
	}
	popLo, popHi := w.Pop-0.15, w.Pop+0.15
	if popLo < 0.05 {
		popLo = 0.05
	}
	if popHi > 0.95 {
		popHi = 0.95
	}
	return surrogate.Build(context.Background(), surrogate.BuildConfig{
		Config:     cfg,
		Requests:   surrogate.AxisSpec{Min: reqLo, Max: w.Requests + 2, N: 2},
		Pop:        surrogate.AxisSpec{Min: popLo, Max: popHi, N: 2},
		Timeliness: surrogate.AxisSpec{Min: w.Timeliness, N: 1},
		Workers:    2,
	})
}

// surrogateViolations probes seeded off-lattice points strictly inside the
// table's cell. It is split from SurrogateAgreement so the oracle mutation
// test can seed a violation (by shrinking the declared bounds) and prove the
// check fires.
func surrogateViolations(tab *surrogate.Table, cfg engine.Config, seed int64, points int) ([]Violation, error) {
	// The declared bound itself is under test; a request-level MaxErrorBound
	// would hide loose cells by falling through instead of failing.
	cfg.Surrogate = engine.SurrogateConfig{}
	rng := rand.New(rand.NewPCG(uint64(seed), 0x5347))
	lerp := func(nodes []float64) float64 {
		if len(nodes) == 1 {
			return nodes[0]
		}
		f := 0.1 + 0.8*rng.Float64()
		return nodes[0] + f*(nodes[len(nodes)-1]-nodes[0])
	}
	var out []Violation
	for i := 0; i < points; i++ {
		w := engine.Workload{
			Requests:   lerp(tab.Axes[0].Nodes),
			Pop:        lerp(tab.Axes[1].Nodes),
			Timeliness: lerp(tab.Axes[2].Nodes),
		}
		sum, ok := tab.Lookup(cfg, w)
		if !ok {
			return nil, fmt.Errorf("verify: probe %d (%+v) fell outside the surrogate trust region", i, w)
		}
		eq, err := solveFor(cfg, w)
		if err != nil {
			return nil, fmt.Errorf("verify: cold solve of probe %d: %w", i, err)
		}
		got, err := tab.SummaryError(w, eq)
		if err != nil {
			return nil, fmt.Errorf("verify: probe %d: %w", i, err)
		}
		if got > sum.ErrorBound || math.IsNaN(got) {
			out = append(out, violationf("surrogate-differential", got, sum.ErrorBound,
				"interpolated answer at (R=%.4g, Π=%.4g, L=%.4g) errs by %.3g, above the declared bound %.3g",
				w.Requests, w.Pop, w.Timeliness, got, sum.ErrorBound))
		}
	}
	return out, nil
}

package verify

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/pde"
)

// eq21Raw is the unclamped Eq. 21 maximiser, deliberately re-derived here
// from the paper (Theorem 1) instead of calling engine.OptimalControl: the
// oracle re-implements the formula so an editing mistake in either copy is
// caught by the comparison rather than cancelling out.
//
//	x*_raw = −( w4/(2w5) + η2·Qk/(2·Hc·w5) + Qk·w1·∂qV/(2w5) )
func eq21Raw(p mec.Params, dVdq float64) float64 {
	return -(p.W4/(2*p.W5) + p.Eta2*p.Qk/(2*p.HubRate*p.W5) + p.Qk*p.W1*dVdq/(2*p.W5))
}

// MassConservation checks the FPK mass invariant ∫∫λ(t)dS = ∫∫λ(0)dS.
// The conservative discretisation (the default) must hold the
// pre-renormalisation mass to round-off at every step; the advective
// ablation loses mass structurally, so for it only the post-renormalisation
// mass is checked. Both checks are relative to the initial mass.
func MassConservation(eq *engine.Equilibrium, tol Tolerances) []Violation {
	if eq.FPK == nil || len(eq.FPK.RawMass) == 0 {
		return []Violation{violationf("mass-conservation", 0, 0, "equilibrium carries no FPK solution")}
	}
	m0 := eq.FPK.RawMass[0]
	if !(m0 > 0) || math.IsInf(m0, 0) {
		return []Violation{violationf("mass-conservation", m0, 0, "initial mass is not positive and finite")}
	}
	var out []Violation
	if eq.Config.FPKForm == pde.Conservative {
		worst, at := 0.0, 0
		for n, m := range eq.FPK.RawMass {
			drift := math.Abs(m-m0) / m0
			if math.IsNaN(m) || math.IsInf(m, 0) {
				drift = math.Inf(1)
			}
			if drift > worst {
				worst, at = drift, n
			}
		}
		if worst > tol.MassTol {
			out = append(out, violationf("mass-conservation", worst, tol.MassTol,
				"raw mass drifted %.3g relative at step %d (conservative form conserves to round-off)", worst, at))
		}
	}
	// Post-renormalisation mass: every stored density must integrate back to
	// the initial mass regardless of form (renormalisation plus negative-part
	// clipping may only perturb at the clipping magnitude, bounded by tol).
	worst, at := 0.0, 0
	for n := range eq.FPK.Lambda {
		drift := math.Abs(eq.FPK.Mass(n)-m0) / m0
		if drift > worst {
			worst, at = drift, n
		}
	}
	if worst > tol.MassTol {
		out = append(out, violationf("mass-conservation", worst, tol.MassTol,
			"stored density mass drifted %.3g relative at step %d after renormalisation", worst, at))
	}
	return out
}

// DensityNonNegative checks λ ≥ 0 and finite at every node of every time
// level: the solver clips renormalisation undershoots to zero, so any
// negative or non-finite stored value is a defect, not round-off.
func DensityNonNegative(eq *engine.Equilibrium) []Violation {
	if eq.FPK == nil {
		return []Violation{violationf("density-nonnegative", 0, 0, "equilibrium carries no FPK solution")}
	}
	worst, atN, atK, count := 0.0, 0, 0, 0
	for n, lam := range eq.FPK.Lambda {
		for k, v := range lam {
			bad := v < 0 || math.IsNaN(v) || math.IsInf(v, 0)
			if !bad {
				continue
			}
			count++
			mag := math.Abs(v)
			if math.IsNaN(v) {
				mag = math.Inf(1)
			}
			if mag >= worst {
				worst, atN, atK = mag, n, k
			}
		}
	}
	if count > 0 {
		return []Violation{violationf("density-nonnegative", worst, 0,
			"%d negative/non-finite density nodes (worst |λ|=%.3g at step %d node %d)", count, worst, atN, atK)}
	}
	return nil
}

// ResidualContraction checks the convergence diagnostics of Algorithm 2's
// damped best-response iteration: every residual finite, at most
// ResidualUpFrac of the steps growing by more than ResidualGrowth×, and a
// net contraction from first to last once the iteration ran long enough to
// measure one.
func ResidualContraction(eq *engine.Equilibrium, tol Tolerances) []Violation {
	res := eq.Residuals
	if len(res) == 0 {
		return []Violation{violationf("residual-contraction", 0, 0, "equilibrium carries no residual history")}
	}
	var out []Violation
	for i, r := range res {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			out = append(out, violationf("residual-contraction", r, 0,
				"residual %g at iteration %d is not finite and non-negative", r, i+1))
			return out
		}
	}
	if len(res) < 3 {
		return nil // converged (or stopped) too fast to judge the trend
	}
	jumps := 0
	worstJump := 0.0
	for i := 1; i < len(res); i++ {
		if res[i] > res[i-1]*tol.ResidualGrowth {
			jumps++
			if ratio := res[i] / res[i-1]; ratio > worstJump {
				worstJump = ratio
			}
		}
	}
	allowed := int(tol.ResidualUpFrac * float64(len(res)-1))
	if jumps > allowed {
		out = append(out, violationf("residual-contraction", float64(jumps), float64(allowed),
			"%d of %d iteration steps grew the residual by more than %.2f× (worst %.2f×)",
			jumps, len(res)-1, tol.ResidualGrowth, worstJump))
	}
	if len(res) >= 4 && res[len(res)-1] >= res[0] {
		out = append(out, violationf("residual-contraction", res[len(res)-1], res[0],
			"no net contraction: final residual %.3g ≥ first %.3g after %d iterations",
			res[len(res)-1], res[0], len(res)))
	}
	return out
}

// TerminalCondition checks the HJB boundary condition V(T,·) = 0 (the
// paper's scrap value): the solver writes the terminal level exactly, so
// the default tolerance is zero.
func TerminalCondition(eq *engine.Equilibrium, tol Tolerances) []Violation {
	if eq.HJB == nil || len(eq.HJB.V) == 0 {
		return []Violation{violationf("terminal-condition", 0, 0, "equilibrium carries no HJB solution")}
	}
	vT := eq.HJB.V[len(eq.HJB.V)-1]
	worst, at := 0.0, 0
	for k, v := range vT {
		mag := math.Abs(v)
		if math.IsNaN(v) {
			mag = math.Inf(1)
		}
		if mag > worst {
			worst, at = mag, k
		}
	}
	if worst > tol.TerminalTol {
		return []Violation{violationf("terminal-condition", worst, tol.TerminalTol,
			"|V(T)| = %.3g at node %d (scrap value is identically zero)", worst, at)}
	}
	return nil
}

// PolicyProperties checks the Eq. 21 structure of the stored strategy:
//
//   - x* ∈ [0,1] at every node of every time level;
//   - x*(t_n) equals the clamped closed form recomputed from ∂qV(t_{n+1})
//     of the stored value function (independent re-derivation, see eq21Raw);
//   - the clamp saturates exactly: where the raw maximiser is ≤ 0 the
//     stored control is 0, where it is ≥ 1 the stored control is 1;
//   - the final level X[Steps] duplicates X[Steps-1] (the control on the
//     last interval, by the solver's contract).
func PolicyProperties(eq *engine.Equilibrium, tol Tolerances) []Violation {
	if eq.HJB == nil || len(eq.HJB.X) == 0 {
		return []Violation{violationf("eq21-policy", 0, 0, "equilibrium carries no HJB solution")}
	}
	p := eq.Config.Params
	g := eq.Grid
	steps := eq.Time.Steps
	var out []Violation

	// Range.
	worst, atN, atK, count := 0.0, 0, 0, 0
	for n, x := range eq.HJB.X {
		for k, v := range x {
			excess := 0.0
			switch {
			case math.IsNaN(v):
				excess = math.Inf(1)
			case v < 0:
				excess = -v
			case v > 1:
				excess = v - 1
			}
			if excess > 0 {
				count++
				if excess >= worst {
					worst, atN, atK = excess, n, k
				}
			}
		}
	}
	if count > 0 {
		out = append(out, violationf("eq21-policy", worst, 0,
			"%d control nodes outside [0,1] (worst excess %.3g at step %d node %d)", count, worst, atN, atK))
	}

	// Closed-form agreement and clamp saturation against the re-derived
	// Eq. 21, level by level.
	grad := g.NewField()
	worst, atN, atK, count = 0.0, 0, 0, 0
	satCount, satWorst := 0, 0.0
	for n := 0; n < steps; n++ {
		if err := numerics.GradientQ(g, grad, eq.HJB.V[n+1]); err != nil {
			return append(out, violationf("eq21-policy", 0, 0, "gradient at step %d: %v", n, err))
		}
		for k := range grad {
			raw := eq21Raw(p, grad[k])
			want := numerics.Clamp01(raw)
			got := eq.HJB.X[n][k]
			if d := math.Abs(got - want); d > tol.ClampTol || math.IsNaN(d) {
				count++
				if d >= worst || math.IsNaN(d) {
					worst, atN, atK = d, n, k
				}
			}
			// Saturation must be exact: the clamp maps the raw maximiser
			// onto the boundary, not near it.
			if raw <= -tol.ClampTol && got != 0 {
				satCount++
				if got > satWorst {
					satWorst = got
				}
			}
			if raw >= 1+tol.ClampTol && got != 1 {
				satCount++
				if d := math.Abs(got - 1); d > satWorst {
					satWorst = d
				}
			}
		}
	}
	if count > 0 {
		out = append(out, violationf("eq21-policy", worst, tol.ClampTol,
			"%d control nodes deviate from the Eq. 21 closed form (worst %.3g at step %d node %d)",
			count, worst, atN, atK))
	}
	if satCount > 0 {
		out = append(out, violationf("eq21-policy", satWorst, 0,
			"%d saturated nodes not pinned to the clamp boundary (worst deviation %.3g)", satCount, satWorst))
	}

	// Final-level duplication.
	if len(eq.HJB.X) == steps+1 {
		for k := range eq.HJB.X[steps] {
			if eq.HJB.X[steps][k] != eq.HJB.X[steps-1][k] {
				out = append(out, violationf("eq21-policy", math.Abs(eq.HJB.X[steps][k]-eq.HJB.X[steps-1][k]), 0,
					"X[Steps] differs from X[Steps-1] at node %d (final-interval contract)", k))
				break
			}
		}
	}
	return out
}

// ControlMonotone checks the function-level Eq. 21 properties on a sweep of
// ∂qV values: the optimal control is non-increasing in ∂qV (the coefficient
// −Qk·w1/(2w5) is non-positive), confined to [0,1], and saturates at both
// clamp boundaries for extreme gradients.
func ControlMonotone(p mec.Params, samples int) []Violation {
	if samples < 3 {
		samples = 3
	}
	// Sweep a symmetric bracket around the clamp window: the raw maximiser
	// crosses 1 and 0 at these gradients, so ±3 window widths guarantee both
	// saturation regimes are visited.
	slope := p.Qk * p.W1 / (2 * p.W5)
	if slope <= 0 {
		return nil // degenerate parameters: control does not depend on ∂qV
	}
	center := -(p.W4/(2*p.W5) + p.Eta2*p.Qk/(2*p.HubRate*p.W5)) / slope // raw = 0 here
	halfWidth := 3.0 / slope
	var out []Violation
	prev := math.Inf(1)
	for i := 0; i < samples; i++ {
		dv := center - halfWidth + 2*halfWidth*float64(i)/float64(samples-1)
		x := engine.OptimalControl(p, dv)
		if x < 0 || x > 1 || math.IsNaN(x) {
			out = append(out, violationf("eq21-monotone", x, 1,
				"control %g outside [0,1] at ∂qV=%g", x, dv))
			return out
		}
		if x > prev+1e-15 {
			out = append(out, violationf("eq21-monotone", x-prev, 0,
				"control increased by %.3g between consecutive ∂qV samples (must be non-increasing)", x-prev))
			return out
		}
		prev = x
	}
	if lo := engine.OptimalControl(p, center+2*halfWidth); lo != 0 {
		out = append(out, violationf("eq21-monotone", lo, 0,
			"control %g not saturated at 0 for large ∂qV", lo))
	}
	if hi := engine.OptimalControl(p, center-2*halfWidth); hi != 1 {
		out = append(out, violationf("eq21-monotone", hi, 1,
			"control %g not saturated at 1 for very negative ∂qV", hi))
	}
	return out
}

// AllInvariants bundles every per-equilibrium oracle.
func AllInvariants(eq *engine.Equilibrium, tol Tolerances) []Violation {
	var out []Violation
	out = append(out, MassConservation(eq, tol)...)
	out = append(out, DensityNonNegative(eq)...)
	out = append(out, ResidualContraction(eq, tol)...)
	out = append(out, TerminalCondition(eq, tol)...)
	out = append(out, PolicyProperties(eq, tol)...)
	return out
}

// solveFor runs one cold solve for the given config/workload, tolerating
// non-convergence (the partial equilibrium still satisfies the invariants)
// but failing on divergence or configuration errors.
func solveFor(cfg engine.Config, w engine.Workload) (*engine.Equilibrium, error) {
	eq, err := engine.Solve(cfg, w)
	if err != nil && eq == nil {
		return nil, fmt.Errorf("verify: solve failed: %w", err)
	}
	return eq, nil
}

// Package cluster turns a set of independent `mfgcp serve` replicas into one
// sharded fleet that behaves like a single big equilibrium cache — ROADMAP
// item 1's "consistent-hash sharding of the equilibrium keyspace across
// replicas". The canonical quantised engine.CacheKey is the shard key: every
// tier of the serving ladder (LRU, segment store, surrogate lattice) already
// agrees on it, so the ring simply assigns each key an owner replica and the
// serving tier fills local misses from that owner before solving cold.
//
// The package has two layers:
//
//   - Ring: a static consistent-hash ring with virtual nodes. Ownership is a
//     pure function of (member set, key) — independent of join order — and a
//     membership change moves only the keys adjacent to the changed member's
//     virtual nodes (no reshuffle among survivors).
//   - Cluster: the operational wrapper — validated member list, /readyz
//     health probing that gates routing, and the /v1/peer/get HTTP client the
//     serving tier calls to fill a miss from the key's owner.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// defaultVirtualNodes is the per-member virtual-node count when the
// configuration does not override it. 128 points per member keeps the
// max/mean key imbalance under ~1.3 on the quantised-key distributions the
// serving tier sees (pinned by the ring property tests).
const defaultVirtualNodes = 128

// Ring is a consistent-hash ring over fleet member names (base URLs in the
// serving tier). Lookups walk the ring clockwise from the key's hash to the
// first virtual node; Owner is therefore deterministic in the member set
// alone — two replicas that agree on membership agree on every key's owner
// regardless of the order members were added.
//
// All methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]struct{}
	points  []ringPoint // sorted by (hash, member)
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring placing vnodes virtual nodes per member
// (values < 1 select the default).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = defaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// hashKey positions a cache key (or a member's virtual node label) on the
// ring. FNV-1a/64 is deliberate: zero allocation, stable across processes and
// architectures (no seed), which the fleet depends on — every replica must
// hash every key identically. FNV alone avalanches poorly on near-identical
// inputs (virtual-node labels differ only in a trailing counter, which left
// visible clustering on the ring), so the output passes through a
// splitmix64-style finalizer to spread every input bit across the word.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent). Only keys falling on the arcs claimed by
// the new member's virtual nodes change owner; every other key keeps its
// previous owner (pinned by TestRingMinimalMovement).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hashKey(member + "#" + strconv.Itoa(i)), member})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties break on the member name so ownership never depends on
		// insertion order.
		return r.points[a].member < r.points[b].member
	})
}

// Remove deletes a member (idempotent). Only the removed member's keys are
// redistributed; survivors keep every key they owned.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the member owning key: the first virtual node at or clockwise
// of the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	return r.OwnerAlive(key, nil)
}

// OwnerAlive returns the first member at or clockwise of the key's hash for
// which alive returns true (nil means every member qualifies) — the failover
// walk: when a key's primary owner is unreachable, ownership falls to the
// next distinct member on the ring, consistently across every replica that
// agrees on the health view. Returns "" when no member qualifies.
func (r *Ring) OwnerAlive(key string, alive func(string) bool) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	if n == 0 {
		return ""
	}
	h := hashKey(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if alive == nil {
		return r.points[start%n].member
	}
	// Failover walk: judge each distinct member once, in ring order, so a
	// dead member's remaining virtual nodes never stall the walk and the loop
	// terminates even when alive rejects everyone.
	rejected := make(map[string]struct{}, len(r.members))
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if _, seen := rejected[p.member]; seen {
			continue
		}
		if alive(p.member) {
			return p.member
		}
		rejected[p.member] = struct{}{}
		if len(rejected) == len(r.members) {
			return ""
		}
	}
	return ""
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/pde"
)

func testFleet(t *testing.T, self string, peers ...string) *Cluster {
	t.Helper()
	c, err := New(Config{Self: self, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		wantE string
	}{
		{"no peers", Config{Self: "http://a:1"}, "no peers"},
		{"relative URL", Config{Self: "http://a:1", Peers: []string{"http://a:1", "b:2"}}, "absolute"},
		{"bad scheme", Config{Self: "http://a:1", Peers: []string{"http://a:1", "ftp://b:2"}}, "absolute"},
		{"duplicate", Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://a:1/"}}, "duplicate"},
		{"empty entry", Config{Self: "http://a:1", Peers: []string{"http://a:1", ""}}, "empty"},
		{"self missing", Config{Self: "http://c:3", Peers: []string{"http://a:1", "http://b:2"}}, "not in the peer list"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.wantE) {
				t.Errorf("New(%+v) error = %v, want containing %q", tc.cfg, err, tc.wantE)
			}
		})
	}

	// Normalisation: trailing slashes and whitespace are cosmetic.
	c := testFleet(t, " http://a:1/ ", "http://a:1/", "http://b:2")
	if c.Self() != "http://a:1" {
		t.Errorf("Self = %q, want normalised http://a:1", c.Self())
	}
	if got := c.Members(); len(got) != 2 {
		t.Errorf("Members = %v", got)
	}
}

func TestOwnerDegradesToSelfWhenFleetDown(t *testing.T) {
	c := testFleet(t, "http://a:1", "http://a:1", "http://b:2", "http://c:3")
	c.MarkDown("http://b:2")
	c.MarkDown("http://c:3")
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5"} {
		if owner, self := c.Owner(key); !self || owner != "http://a:1" {
			t.Errorf("key %q: owner %q self=%v, want self with every peer down", key, owner, self)
		}
	}
}

func TestOwnerSkipsDownPeers(t *testing.T) {
	c := testFleet(t, "http://a:1", "http://a:1", "http://b:2", "http://c:3")
	// Find a key owned by b, then kill b: ownership must move off b without
	// touching keys owned by others.
	var key string
	for _, k := range sampleKeys(t, 50) {
		if owner, _ := c.Owner(k); owner == "http://b:2" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no sampled key owned by http://b:2")
	}
	c.MarkDown("http://b:2")
	owner, _ := c.Owner(key)
	if owner == "http://b:2" {
		t.Fatal("key still routed to a down peer")
	}
	// Recovery restores the original owner.
	c.setDown("http://b:2", false)
	if got, _ := c.Owner(key); got != "http://b:2" {
		t.Errorf("after recovery owner = %q, want http://b:2", got)
	}
}

func TestProbeFlipsHealth(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" || !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		Self:          "http://self:1",
		Peers:         []string{"http://self:1", peer.URL},
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitHealth := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if c.Healthy(peer.URL) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer health never became %v", want)
	}
	waitHealth(true)
	healthy.Store(false)
	waitHealth(false)
	healthy.Store(true)
	waitHealth(true)
}

func TestFetchRoundTrip(t *testing.T) {
	eq := &engine.Equilibrium{Converged: true, Iterations: 3, Residuals: []float64{1e-7},
		HJB: &pde.HJBSolution{}, FPK: &pde.FPKSolution{}}
	blob, err := engine.MarshalEquilibrium(eq)
	if err != nil {
		t.Fatal(err)
	}
	var gotKey atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/peer/get" {
			http.NotFound(w, r)
			return
		}
		var preq PeerRequest
		if err := readJSON(r, &preq); err != nil {
			t.Errorf("decode peer request: %v", err)
		}
		gotKey.Store(preq.Key)
		w.Header().Set(SourceHeader, "cache")
		w.Header().Set(ConvergedHeader, "true")
		_, _ = w.Write(blob)
	}))
	defer owner.Close()

	c := testFleet(t, "http://self:1", "http://self:1", owner.URL)
	got, source, err := c.Fetch(context.Background(), owner.URL, PeerRequest{Key: "the-key"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged || got.Iterations != 3 {
		t.Errorf("fetched equilibrium %+v, want converged 3-iteration", got)
	}
	if source != "cache" {
		t.Errorf("source = %q, want cache", source)
	}
	if gotKey.Load() != "the-key" {
		t.Errorf("owner saw key %v, want the-key", gotKey.Load())
	}
}

func TestFetchUnreachableMarksDown(t *testing.T) {
	// A listener that is immediately closed: connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := testFleet(t, "http://self:1", "http://self:1", deadURL)
	if !c.Healthy(deadURL) {
		t.Fatal("peer should start optimistic")
	}
	if _, _, err := c.Fetch(context.Background(), deadURL, PeerRequest{Key: "k"}); err == nil {
		t.Fatal("Fetch against a dead peer succeeded")
	}
	if c.Healthy(deadURL) {
		t.Error("transport failure did not mark the peer down")
	}
}

func TestFetchApplicationRefusal(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		_, _ = w.Write([]byte(`{"error":{"kind":"key_mismatch","message":"drift"}}`))
	}))
	defer owner.Close()

	c := testFleet(t, "http://self:1", "http://self:1", owner.URL)
	_, _, err := c.Fetch(context.Background(), owner.URL, PeerRequest{Key: "k"})
	if err == nil || !strings.Contains(err.Error(), "key_mismatch") {
		t.Fatalf("err = %v, want key_mismatch refusal", err)
	}
	// An application-level refusal is not evidence the peer is down.
	if !c.Healthy(owner.URL) {
		t.Error("4xx refusal marked the peer down")
	}
}

func TestFetchGarbageBlob(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("not a gob blob"))
	}))
	defer owner.Close()

	c := testFleet(t, "http://self:1", "http://self:1", owner.URL)
	if _, _, err := c.Fetch(context.Background(), owner.URL, PeerRequest{Key: "k"}); err == nil {
		t.Fatal("garbage blob decoded successfully")
	}
}

func TestFetchOversizeBlob(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(make([]byte, 4096))
	}))
	defer owner.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{"http://self:1", owner.URL}, MaxBlobBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Fetch(context.Background(), owner.URL, PeerRequest{Key: "k"}); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want over-size rejection", err)
	}
}

func readJSON(r *http.Request, dst any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(dst)
}

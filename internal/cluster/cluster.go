package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Config parametrises one replica's view of the fleet. The member list is
// static (the Kubernetes manifests under deploy/ derive it from the
// StatefulSet's stable DNS names); health is dynamic, gated on each peer's
// /readyz.
type Config struct {
	// Self is this replica's own base URL as it appears in Peers; requests
	// whose key hashes to Self are owned locally.
	Self string
	// Peers lists every fleet member's base URL, including Self. Order is
	// irrelevant — ownership depends only on the set.
	Peers []string
	// VirtualNodes is the per-member virtual-node count (default 128).
	VirtualNodes int
	// PeerTimeout bounds one peer cache-fill round trip, including the
	// owner's solve when the key is cold fleet-wide (default 10s). An expired
	// fill falls back to a local cold solve, never an error.
	PeerTimeout time.Duration
	// ProbeInterval is the /readyz health-probe period (default 1s). A peer
	// failing its probe (or a fill round trip) leaves the routable ring until
	// a probe succeeds again.
	ProbeInterval time.Duration
	// MaxBlobBytes bounds one fetched equilibrium blob (default 64 MiB).
	MaxBlobBytes int64
	// Obs receives the cluster.* metrics. Nil means no-op.
	Obs obs.Recorder
	// Client overrides the HTTP client used for fills and probes (tests);
	// nil builds one tuned for many small intra-fleet requests.
	Client *http.Client
}

// Enabled reports whether the configuration describes a fleet at all; the
// zero value (single-replica daemon) does not.
func (c Config) Enabled() bool { return len(c.Peers) > 0 }

func (c Config) withDefaults() Config {
	if c.VirtualNodes < 1 {
		c.VirtualNodes = defaultVirtualNodes
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.MaxBlobBytes <= 0 {
		c.MaxBlobBytes = 64 << 20
	}
	return c
}

// PeerRequest is the wire form of POST /v1/peer/get — the intra-fleet
// cache-fill request. Params/Solver/Workload are the original client
// documents (the owner merges them onto its own defaults, which a fleet
// shares by construction); Key is the requester's computed cache key, which
// the owner verifies against its own resolution so configuration drift
// between replicas surfaces as an explicit key_mismatch instead of silently
// poisoning caches.
type PeerRequest struct {
	Params    json.RawMessage `json:",omitempty"`
	Solver    json.RawMessage `json:",omitempty"`
	Workload  json.RawMessage `json:",omitempty"`
	TimeoutMs int64           `json:",omitempty"`
	Key       string          `json:",omitempty"`
}

// SourceHeader carries the owner-side provenance of a peer fill (which rung
// of the owner's ladder answered), and ConvergedHeader whether the returned
// equilibrium converged — advisory diagnostics; the blob itself is
// authoritative.
const (
	SourceHeader    = "X-Mfgcp-Source"
	ConvergedHeader = "X-Mfgcp-Converged"
)

// Cluster is one replica's routing brain: the ring over the static member
// set, the dynamic health view, and the peer-fill client.
type Cluster struct {
	cfg    Config
	rec    obs.Recorder
	ring   *Ring
	client *http.Client

	mu   sync.RWMutex
	down map[string]bool

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New validates the member list and builds the replica's cluster view. Every
// member must be an absolute http(s) URL and Self must be one of them.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	ring := NewRing(cfg.VirtualNodes)
	seen := make(map[string]struct{}, len(cfg.Peers))
	selfSeen := false
	for _, raw := range cfg.Peers {
		m := strings.TrimRight(strings.TrimSpace(raw), "/")
		if m == "" {
			return nil, fmt.Errorf("cluster: empty peer URL in %q", cfg.Peers)
		}
		u, err := url.Parse(m)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an absolute http(s) URL", raw)
		}
		if _, dup := seen[m]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", m)
		}
		seen[m] = struct{}{}
		if m == strings.TrimRight(strings.TrimSpace(cfg.Self), "/") {
			selfSeen = true
		}
		ring.Add(m)
	}
	cfg.Self = strings.TrimRight(strings.TrimSpace(cfg.Self), "/")
	if !selfSeen {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		client = &http.Client{Transport: tr}
	}
	return &Cluster{
		cfg:    cfg,
		rec:    obs.OrNop(cfg.Obs),
		ring:   ring,
		client: client,
		down:   make(map[string]bool),
		stopCh: make(chan struct{}),
	}, nil
}

// Self returns this replica's normalised member URL.
func (c *Cluster) Self() string { return c.cfg.Self }

// Members returns the static member set, sorted.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Start launches the background /readyz prober. Peers start optimistic
// (routable) so a freshly formed fleet fills from warm peers immediately; the
// first failed probe or fill round trip takes a dead peer out of the ring.
func (c *Cluster) Start() {
	c.rec.Gauge("cluster.ring.members", float64(c.ring.Len()))
	c.publishHealth()
	c.wg.Add(1)
	go c.probeLoop()
}

// Stop terminates the prober. Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
}

// Owner resolves key against the ring restricted to healthy members and
// reports whether this replica owns it. A fleet whose every other member is
// down degrades to self-ownership: the replica serves everything locally
// rather than failing.
func (c *Cluster) Owner(key string) (member string, self bool) {
	member = c.ring.OwnerAlive(key, c.Healthy)
	if member == "" {
		// Every member rejected (cannot happen while self is healthy, which
		// it always is from its own perspective) — serve locally.
		return c.cfg.Self, true
	}
	return member, member == c.cfg.Self
}

// Healthy reports whether member is currently routable. Self is always
// healthy from its own perspective.
func (c *Cluster) Healthy(member string) bool {
	if member == c.cfg.Self {
		return true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return !c.down[member]
}

// MarkDown removes a peer from the routable ring immediately — fills call it
// on transport failures so the very next request fails over without waiting
// for the prober.
func (c *Cluster) MarkDown(member string) { c.setDown(member, true) }

func (c *Cluster) setDown(member string, down bool) {
	if member == c.cfg.Self {
		return
	}
	c.mu.Lock()
	changed := c.down[member] != down
	if changed {
		c.down[member] = down
	}
	c.mu.Unlock()
	if !changed {
		return
	}
	if down {
		c.rec.Add("cluster.peer.down", 1)
	} else {
		c.rec.Add("cluster.peer.up", 1)
	}
	c.publishHealth()
}

// publishHealth exports the healthy-member gauge (self included), the signal
// the kill-replica chaos harness waits on before asserting failover.
func (c *Cluster) publishHealth() {
	healthy := 0
	for _, m := range c.ring.Members() {
		if c.Healthy(m) {
			healthy++
		}
	}
	c.rec.Gauge("cluster.peers.healthy", float64(healthy))
}

func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll checks every peer's /readyz concurrently. A draining or dead peer
// answers non-200 (or nothing) and leaves the routable ring; a recovered one
// rejoins on its next successful probe.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, m := range c.ring.Members() {
		if m == c.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(member string) {
			defer wg.Done()
			c.setDown(member, !c.probe(member))
		}(m)
	}
	wg.Wait()
}

func (c *Cluster) probe(member string) bool {
	timeout := c.cfg.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// peerError is a non-2xx answer from a peer: an application-level refusal
// (key mismatch, overload, divergence), not evidence the peer is down.
type peerError struct {
	status int
	kind   string
}

func (e *peerError) Error() string {
	return fmt.Sprintf("cluster: peer answered %d (%s)", e.status, e.kind)
}

// Fetch asks owner for the equilibrium of req.Key via POST /v1/peer/get and
// decodes the returned blob. The round trip is bounded by PeerTimeout and the
// caller's context, whichever ends first. Transport failures mark the owner
// down (fast failover) before returning; application-level refusals do not.
// The returned source is the owner-side provenance header.
func (c *Cluster) Fetch(ctx context.Context, owner string, preq PeerRequest) (eq *engine.Equilibrium, source string, err error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: encode peer request: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/peer/get", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr := obs.ReqTraceFrom(ctx); tr != nil && tr.ID != "" {
		req.Header.Set("X-Request-ID", tr.ID)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		// A peer that cannot be reached at all is out of the fleet until a
		// probe brings it back; the caller solves locally meanwhile.
		c.MarkDown(owner)
		return nil, "", fmt.Errorf("cluster: peer %s unreachable: %w", owner, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error struct {
				Kind string `json:"kind"`
			} `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&envelope)
		return nil, "", &peerError{status: resp.StatusCode, kind: envelope.Error.Kind}
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBlobBytes+1))
	if err != nil {
		c.MarkDown(owner)
		return nil, "", fmt.Errorf("cluster: read peer blob: %w", err)
	}
	if int64(len(blob)) > c.cfg.MaxBlobBytes {
		return nil, "", fmt.Errorf("cluster: peer blob exceeds %d bytes", c.cfg.MaxBlobBytes)
	}
	eq, err = engine.UnmarshalEquilibrium(blob)
	if err != nil {
		// The bytes arrived but do not decode: treat like corruption — drop
		// the answer and let the caller re-solve; never serve garbage.
		return nil, "", fmt.Errorf("cluster: decode peer blob: %w", err)
	}
	return eq, resp.Header.Get(SourceHeader), nil
}

package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/mec"
)

// sampleKeys generates quantised canonical cache keys the way the serving
// tier does — engine.CacheKey over drifting workloads on a fixed solver
// configuration — so the ring properties are pinned against the key
// distribution the fleet actually shards, not synthetic uniform strings.
func sampleKeys(tb testing.TB, n int) []string {
	tb.Helper()
	cfg := engine.DefaultConfig(mec.Default())
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for len(keys) < n {
		w := engine.Workload{
			Requests:   math.Round(rng.Float64()*2000) / 10,
			Pop:        math.Round(rng.Float64()*1000) / 1000,
			Timeliness: math.Round(rng.Float64()*100) / 10,
		}
		k := engine.CacheKey(cfg, w)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

func fleetMembers(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("http://mfgcp-%d.mfgcp:8080", i)
	}
	return members
}

// TestRingOwnerDeterministicAcrossJoinOrder: ownership must be a pure
// function of the member set — every replica builds its ring from its own
// -peers flag, in whatever order the flag listed them, and they must all
// agree on every key's owner or the fleet double-solves and misroutes.
func TestRingOwnerDeterministicAcrossJoinOrder(t *testing.T) {
	members := fleetMembers(5)
	keys := sampleKeys(t, 500)

	reference := NewRing(0)
	for _, m := range members {
		reference.Add(m)
	}
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = reference.Owner(k)
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(0)
		for _, m := range shuffled {
			r.Add(m)
		}
		for i, k := range keys {
			if got := r.Owner(k); got != want[i] {
				t.Fatalf("trial %d (join order %v): key %q owner %q, want %q", trial, shuffled, k, got, want[i])
			}
		}
	}
}

// TestRingBalance: over K sampled quantised keys and N members, no member may
// own more than ceil(K/N) plus a slack proportional to fair share — the
// virtual-node count exists exactly to keep one replica from becoming the
// fleet's hot spot.
func TestRingBalance(t *testing.T) {
	const slackFraction = 0.5 // max load ≤ 1.5 × fair share
	keys := sampleKeys(t, 5000)
	for _, n := range []int{2, 3, 5, 8} {
		members := fleetMembers(n)
		r := NewRing(0)
		for _, m := range members {
			r.Add(m)
		}
		counts := make(map[string]int, n)
		for _, k := range keys {
			owner := r.Owner(k)
			if owner == "" {
				t.Fatalf("n=%d: key %q unowned on a populated ring", n, k)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d of %d members own any keys: %v", n, len(counts), n, counts)
		}
		fair := int(math.Ceil(float64(len(keys)) / float64(n)))
		limit := fair + int(slackFraction*float64(len(keys))/float64(n))
		for m, c := range counts {
			if c > limit {
				t.Errorf("n=%d: member %s owns %d keys > limit %d (fair %d)", n, m, c, limit, fair)
			}
		}
	}
}

// TestRingMinimalMovement: a membership change may only remap the keys that
// involve the changed member — on a join every remapped key must move TO the
// joiner and fewer than 2/N of all keys may move; on a leave only the
// leaver's keys remap and every survivor keeps its entire key set. This is
// the property that makes rolling restarts cheap: the rest of the fleet's
// caches stay warm.
func TestRingMinimalMovement(t *testing.T) {
	keys := sampleKeys(t, 4000)
	const n = 4
	members := fleetMembers(n + 1)
	base, joiner := members[:n], members[n]

	r := NewRing(0)
	for _, m := range base {
		r.Add(m)
	}
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Owner(k)
	}

	r.Add(joiner)
	moved := 0
	for i, k := range keys {
		after := r.Owner(k)
		if after == before[i] {
			continue
		}
		moved++
		if after != joiner {
			t.Fatalf("join: key %q moved %q → %q, not to joiner %q", k, before[i], after, joiner)
		}
	}
	if moved == 0 {
		t.Error("join: joiner took over no sampled keys")
	}
	if bound := 2.0 / float64(n); float64(moved)/float64(len(keys)) >= bound {
		t.Errorf("join: %d/%d keys remapped (%.3f), want < %.3f", moved, len(keys), float64(moved)/float64(len(keys)), bound)
	}

	// Leave: removing the joiner must restore exactly the pre-join ownership —
	// its keys scatter back and nobody else's move.
	r.Remove(joiner)
	for i, k := range keys {
		if got := r.Owner(k); got != before[i] {
			t.Fatalf("leave: key %q owner %q, want pre-join owner %q", k, got, before[i])
		}
	}
}

// TestRingOwnerAliveFailover: with the primary owner rejected, ownership must
// fall to another member (never ""), deterministically; with every member
// rejected the walk must terminate and report no owner.
func TestRingOwnerAliveFailover(t *testing.T) {
	members := fleetMembers(3)
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	keys := sampleKeys(t, 200)
	for _, k := range keys {
		primary := r.Owner(k)
		alive := func(m string) bool { return m != primary }
		fallback := r.OwnerAlive(k, alive)
		if fallback == "" || fallback == primary {
			t.Fatalf("key %q: failover owner %q (primary %q)", k, fallback, primary)
		}
		if again := r.OwnerAlive(k, alive); again != fallback {
			t.Fatalf("key %q: failover not deterministic: %q then %q", k, fallback, again)
		}
	}
	if got := r.OwnerAlive(keys[0], func(string) bool { return false }); got != "" {
		t.Errorf("all members rejected: owner %q, want \"\"", got)
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("k"); got != "" {
		t.Errorf("empty ring owner %q, want \"\"", got)
	}
	r.Add("http://a:1")
	r.Add("http://a:1") // idempotent: no duplicate virtual nodes
	if got := r.Len(); got != 1 {
		t.Errorf("Len = %d after duplicate Add, want 1", got)
	}
	if got := r.Owner("k"); got != "http://a:1" {
		t.Errorf("singleton ring owner %q", got)
	}
	r.Remove("http://b:2") // unknown member: no-op
	r.Remove("http://a:1")
	r.Remove("http://a:1")
	if got, n := r.Owner("k"), r.Len(); got != "" || n != 0 {
		t.Errorf("drained ring: owner %q len %d", got, n)
	}
}

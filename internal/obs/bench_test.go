package obs

import (
	"log/slog"
	"testing"
)

// Micro-benchmarks of the Recorder primitives. The no-op variants bound what
// an instrumented-but-disabled hot loop pays per call; the registry variants
// bound the live cost (the pde benchmarks measure both end to end).

func BenchmarkNopAdd(b *testing.B) {
	r := OrNop(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("pde.hjb.sweeps", 1)
	}
}

func BenchmarkNopSpan(b *testing.B) {
	r := OrNop(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Start("pde.hjb.solve").End()
	}
}

func BenchmarkRegistryAdd(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("pde.hjb.sweeps", 1)
	}
}

func BenchmarkRegistryAddParallel(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add("pde.hjb.sweeps", 1)
		}
	})
}

func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("core.solver.residual", float64(i))
	}
}

// BenchmarkHistogramObserve bounds the bucketed-histogram hot path itself
// (no registry lookup): a handful of atomic ops per sample, 0 allocs/op by
// contract — CI greps for that figure (TestObserveZeroAlloc pins the same
// bound in-test, registry lookup included).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-4
		for pb.Next() {
			h.Observe(v)
			v += 1e-4
		}
	})
}

// BenchmarkHistogramStat bounds the read path (snapshot/quantile
// materialisation over a populated histogram).
func BenchmarkHistogramStat(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100_000; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if st := h.Stat(); st.Count == 0 {
			b.Fatal("empty stat")
		}
	}
}

func BenchmarkRegistrySpanNoLogger(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Start("pde.hjb.solve").End(slog.Int("steps", 120))
	}
}

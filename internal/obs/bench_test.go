package obs

import (
	"log/slog"
	"testing"
)

// Micro-benchmarks of the Recorder primitives. The no-op variants bound what
// an instrumented-but-disabled hot loop pays per call; the registry variants
// bound the live cost (the pde benchmarks measure both end to end).

func BenchmarkNopAdd(b *testing.B) {
	r := OrNop(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("pde.hjb.sweeps", 1)
	}
}

func BenchmarkNopSpan(b *testing.B) {
	r := OrNop(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Start("pde.hjb.solve").End()
	}
}

func BenchmarkRegistryAdd(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("pde.hjb.sweeps", 1)
	}
}

func BenchmarkRegistryAddParallel(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add("pde.hjb.sweeps", 1)
		}
	})
}

func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("core.solver.residual", float64(i))
	}
}

func BenchmarkRegistrySpanNoLogger(b *testing.B) {
	r := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Start("pde.hjb.solve").End(slog.Int("steps", 120))
	}
}

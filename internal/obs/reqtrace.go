package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// ReqTrace accumulates the per-stage attribution of one request as it flows
// through the serving tier: queue wait, cache lookup, the persistent tier's
// store_lookup, singleflight wait, the HJB/FPK sweeps of the solve it
// triggered, fixed-point iteration counts, resilience retries. It rides the
// context (WithReqTrace / ReqTraceFrom)
// across the serve → engine → resilience layers, and its stages land in the
// structured access log next to the request ID. All methods are safe for
// concurrent use and no-ops on a nil receiver, so instrumented layers never
// nil-check.
type ReqTrace struct {
	// ID is the request correlation ID (the X-Request-ID value).
	ID string

	mu     sync.Mutex
	stages []StageSample
}

// StageSample is one accumulated stage of a request: a total duration, a
// count, or both (e.g. N fixed-point iterations taking D in total).
type StageSample struct {
	Stage string
	Dur   time.Duration
	N     int64
}

// Observe accumulates d (and one occurrence) into the named stage.
func (t *ReqTrace) Observe(stage string, d time.Duration) { t.merge(stage, d, 1) }

// Count accumulates n occurrences into the named stage without a duration
// (e.g. fixed-point iterations, retries).
func (t *ReqTrace) Count(stage string, n int64) { t.merge(stage, 0, n) }

func (t *ReqTrace) merge(stage string, d time.Duration, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.stages {
		if t.stages[i].Stage == stage {
			t.stages[i].Dur += d
			t.stages[i].N += n
			return
		}
	}
	t.stages = append(t.stages, StageSample{Stage: stage, Dur: d, N: n})
}

// Stages returns a name-sorted copy of the accumulated stages.
func (t *ReqTrace) Stages() []StageSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]StageSample(nil), t.stages...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// LogAttrs renders the stages as slog attributes for the access log: one
// "<stage>_ms" attribute per timed stage, one "<stage>" count attribute per
// counted stage.
func (t *ReqTrace) LogAttrs() []slog.Attr {
	stages := t.Stages()
	attrs := make([]slog.Attr, 0, len(stages))
	for _, st := range stages {
		if st.Dur > 0 {
			attrs = append(attrs, slog.Float64(st.Stage+"_ms", float64(st.Dur)/1e6))
		} else {
			attrs = append(attrs, slog.Int64(st.Stage, st.N))
		}
	}
	return attrs
}

type reqTraceKey struct{}

// WithReqTrace attaches a request trace to the context.
func WithReqTrace(ctx context.Context, t *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, t)
}

// ReqTraceFrom returns the context's request trace, or nil when the request
// is untraced (every ReqTrace method tolerates the nil).
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	t, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return t
}

// RequestIDFrom returns the context's request correlation ID, or "".
func RequestIDFrom(ctx context.Context) string {
	if t := ReqTraceFrom(ctx); t != nil {
		return t.ID
	}
	return ""
}

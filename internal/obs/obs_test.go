package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("a", 1)
	r.Add("a", 2.5)
	r.Add("b", -1)
	s := r.Snapshot()
	if got := s.Counters["a"]; got != 3.5 {
		t.Errorf("counter a = %g, want 3.5", got)
	}
	if got := s.Counters["b"]; got != -1 {
		t.Errorf("counter b = %g, want -1", got)
	}
	if len(s.Counters) != 2 {
		t.Errorf("want 2 counters, got %d", len(s.Counters))
	}
}

func TestGaugeKeepsLastValue(t *testing.T) {
	r := NewRegistry(nil)
	r.Gauge("g", 1)
	r.Gauge("g", 42.5)
	if got := r.Snapshot().Gauges["g"]; got != 42.5 {
		t.Errorf("gauge = %g, want 42.5", got)
	}
}

func TestHistogramMoments(t *testing.T) {
	r := NewRegistry(nil)
	for _, v := range []float64{1, 2, 3, 4} {
		r.Observe("h", v)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 4 || h.Sum != 10 || h.Min != 1 || h.Max != 4 {
		t.Errorf("histogram stats wrong: %+v", h)
	}
	if h.Mean != 2.5 {
		t.Errorf("mean = %g, want 2.5", h.Mean)
	}
	if want := math.Sqrt(1.25); math.Abs(h.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %g, want %g", h.StdDev, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("pde.sweeps", 120)
	r.Gauge("sim.cache.mean_remaining", 33.25)
	r.Observe("core.solver.residual", 0.5)
	r.Observe("core.solver.residual", 0.125)
	want := r.Snapshot()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", a, b)
	}
}

func TestSnapshotRender(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("c", 2)
	r.Gauge("g", 1)
	r.Observe("h", 3)
	var buf bytes.Buffer
	if err := r.Snapshot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter", "gauge", "histogram", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentIncrements exercises every metric kind from many goroutines;
// -race verifies the synchronisation, the totals verify no lost updates.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry(nil)
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add("n", 1)
				r.Observe("o", float64(i))
				r.Gauge("g", float64(w))
				sp := r.Start("s")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["n"]; got != workers*per {
		t.Errorf("counter = %g, want %d", got, workers*per)
	}
	if got := s.Histograms["o"].Count; got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := s.Histograms["s.seconds"].Count; got != workers*per {
		t.Errorf("span histogram count = %d, want %d", got, workers*per)
	}
}

func TestNopRecorderInert(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop must report Enabled() == false")
	}
	Nop.Add("x", 1)
	Nop.Gauge("x", 1)
	Nop.Observe("x", 1)
	Nop.Event("x", slog.String("k", "v"))
	sp := Nop.Start("x")
	if d := sp.End(); d != 0 {
		t.Errorf("no-op span measured %v, want 0", d)
	}
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) must return Nop")
	}
	r := NewRegistry(nil)
	if OrNop(r) != Recorder(r) {
		t.Error("OrNop must pass a live recorder through")
	}
}

func TestSpanRecordsDurationAndLogs(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(NewLogger(&buf, slog.LevelDebug))
	sp := r.Start("region")
	time.Sleep(time.Millisecond)
	if d := sp.End(slog.Int("iter", 3)); d <= 0 {
		t.Errorf("span duration %v, want > 0", d)
	}
	h := r.Snapshot().Histograms["region.seconds"]
	if h.Count != 1 || h.Sum <= 0 {
		t.Errorf("span histogram not recorded: %+v", h)
	}
	out := buf.String()
	for _, want := range []string{"span.end", "span=region", "iter=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestEventRespectsLevel(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(NewLogger(&buf, slog.LevelInfo))
	r.Event("quiet", slog.Int("k", 1))
	r.Start("quiet").End()
	if buf.Len() != 0 {
		t.Errorf("info-level logger must swallow debug events, got %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
}

func TestServeMetricsEndpoints(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("served", 7)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `"served": 7`) {
		t.Errorf("/metrics missing counter: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "mfgcp") {
		t.Errorf("/debug/vars missing published registry: %s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ does not look like a pprof index: %.120s", body)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry(nil)
	r.PublishExpvar("obs_test_once")
	r.PublishExpvar("obs_test_once") // must not panic
}

func TestWriteJSONFile(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("k", 1)
	path := t.TempDir() + "/snap.json"
	if err := r.Snapshot().WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["k"] != 1 {
		t.Errorf("file round trip lost counter: %+v", s)
	}
}

package obs

import (
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
)

// collectRuntime samples Go runtime telemetry into the snapshot under go.*
// names: goroutine count, GOMAXPROCS and live heap bytes as gauges, the
// cumulative GC cycle and allocation totals as counters, and the runtime's
// own GC pause distribution as a histogram. Sampled at snapshot time (not on
// a background ticker), so a registry without scrapes pays nothing.
func collectRuntime(s *Snapshot) {
	s.Gauges["go.goroutines"] = float64(runtime.NumGoroutine())
	s.Gauges["go.gomaxprocs"] = float64(runtime.GOMAXPROCS(0))

	samples := []rtmetrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/gc/pauses:seconds"},
	}
	rtmetrics.Read(samples)
	for _, smp := range samples {
		switch smp.Name {
		case "/memory/classes/heap/objects:bytes":
			if smp.Value.Kind() == rtmetrics.KindUint64 {
				s.Gauges["go.heap.bytes"] = float64(smp.Value.Uint64())
			}
		case "/gc/heap/allocs:bytes":
			if smp.Value.Kind() == rtmetrics.KindUint64 {
				s.Counters["go.heap.allocs.bytes"] = float64(smp.Value.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if smp.Value.Kind() == rtmetrics.KindUint64 {
				s.Counters["go.gc.cycles"] = float64(smp.Value.Uint64())
			}
		case "/gc/pauses:seconds":
			if smp.Value.Kind() == rtmetrics.KindFloat64Histogram {
				if st, ok := fromRuntimeHistogram(smp.Value.Float64Histogram()); ok {
					s.Histograms["go.gc.pauses.seconds"] = st
				}
			}
		}
	}
}

// fromRuntimeHistogram converts a runtime/metrics bucketed histogram into the
// snapshot shape. The runtime reports only bucket counts, so Sum/Mean are
// midpoint estimates and Min/Max are the bounds of the outermost non-empty
// buckets; quantiles inherit the runtime's bucket resolution.
func fromRuntimeHistogram(h *rtmetrics.Float64Histogram) (HistStat, bool) {
	if h == nil || len(h.Buckets) != len(h.Counts)+1 {
		return HistStat{}, false
	}
	var st HistStat
	first := true
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		st.Count += c
		st.Sum += float64(c) * (lo + hi) / 2
		if first {
			st.Min = lo
			first = false
		}
		st.Max = hi
		st.Buckets = append(st.Buckets, HistBucket{UpperBound: h.Buckets[i+1], Count: st.Count})
	}
	if st.Count == 0 {
		return HistStat{}, false
	}
	st.Mean = st.Sum / float64(st.Count)
	st.P50 = st.Quantile(0.50)
	st.P90 = st.Quantile(0.90)
	st.P99 = st.Quantile(0.99)
	st.P999 = st.Quantile(0.999)
	return st, true
}

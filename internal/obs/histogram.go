package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a lock-free log-bucketed (HDR-style) histogram: every sample
// lands in one of a fixed set of buckets whose boundaries subdivide each
// power of two into 2^subBits linear sub-buckets, so Quantile answers carry a
// bounded relative error with bounded memory and Observe is wait-free — one
// atomic add per field, no locks, no allocations.
//
// Layout. A positive value v with binary exponent e in [minExp, maxExp) falls
// into the bucket whose index packs (e, top subBits mantissa bits); the
// bucket spans [2^e·(1+m/S), 2^e·(1+(m+1)/S)) with S = 2^subBits, so the
// ratio of its bounds is at most 1+1/S and the geometric-midpoint
// representative is within 1/(2S) ≈ 1.6% (S = 32) of any sample in it —
// the documented RelativeError bound. Values below 2^minExp (including zero,
// negatives and NaN) share the underflow bucket, whose representative is the
// exact tracked minimum; values at or above 2^maxExp saturate into the top
// bucket, whose representative is the exact tracked maximum. Exact count,
// sum, sum of squares, min and max are kept alongside, so the existing
// moment statistics (mean, stddev) stay exact, not bucketed.
//
// Memory. numBuckets = (maxExp−minExp)·S = 2048 counters of 8 bytes — 16 KiB
// per histogram, fixed, regardless of sample count or range.
type Histogram struct {
	count  atomic.Uint64
	sum    atomicFloat
	sumSq  atomicFloat
	min    atomicFloat
	max    atomicFloat
	under  atomic.Uint64 // samples below 2^minExp (incl. zero and negatives)
	counts [numBuckets]atomic.Uint64
}

const (
	// subBits sub-divides each power of two into 2^subBits linear buckets.
	subBits  = 5
	subCount = 1 << subBits
	subMask  = subCount - 1
	// [2^minExp, 2^maxExp) is the resolvable range: ~9.1e-13 .. ~1.7e7.
	// Seconds-scale latencies (nanoseconds to months) and solver residuals
	// both fit with room to spare.
	minExp = -40
	maxExp = 24

	numBuckets = (maxExp - minExp) * subCount

	// RelativeError bounds |Quantile(p) − exact| / exact for samples inside
	// the resolvable range: half the worst-case bucket-bound ratio 1+1/S.
	RelativeError = 1.0 / (2 * subCount)

	// keyOffset maps the packed (biased exponent, mantissa) key of 2^minExp
	// onto bucket index 0.
	keyOffset = (minExp + 1023) << subBits
)

// minResolvable is the lower edge of bucket 0.
var minResolvable = math.Ldexp(1, minExp)

// NewHistogram returns an empty histogram. Use the constructor, not the zero
// value: the min/max cells start at ±Inf so concurrent first observations
// merge without a seeding race.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// bucketIndex maps a value in [2^minExp, +Inf) onto its bucket. The packed
// key is the float's biased exponent and top subBits mantissa bits, read in
// one shift — the float encoding already orders (exponent, mantissa)
// lexicographically for positive values.
func bucketIndex(v float64) int {
	idx := int(math.Float64bits(v)>>(52-subBits)) - keyOffset
	if idx >= numBuckets {
		idx = numBuckets - 1 // saturate: representative clamps to max
	}
	return idx
}

// bucketUpper returns the exclusive upper bound of bucket idx.
func bucketUpper(idx int) float64 {
	e := minExp + idx>>subBits
	m := idx & subMask
	return math.Ldexp(1+float64(m+1)/subCount, e)
}

// bucketLower returns the inclusive lower bound of bucket idx.
func bucketLower(idx int) float64 {
	e := minExp + idx>>subBits
	m := idx & subMask
	return math.Ldexp(1+float64(m)/subCount, e)
}

// Observe records one sample. Wait-free, zero allocations.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	h.min.mergeMin(v)
	h.max.mergeMax(v)
	h.sum.add(v)
	h.sumSq.add(v * v)
	if !(v >= minResolvable) { // also catches NaN
		h.under.Add(1)
		return
	}
	h.counts[bucketIndex(v)].Add(1)
}

// Stat snapshots the histogram into the exported summary: the exact moment
// statistics plus the sparse cumulative bucket list the quantile and
// Prometheus renderers consume.
func (h *Histogram) Stat() HistStat {
	st := HistStat{Count: h.count.Load()}
	if st.Count == 0 {
		return st
	}
	st.Sum = h.sum.load()
	st.Min = h.min.load()
	st.Max = h.max.load()
	mean := st.Sum / float64(st.Count)
	st.Mean = mean
	if varc := h.sumSq.load()/float64(st.Count) - mean*mean; varc > 0 {
		st.StdDev = math.Sqrt(varc)
	}

	// Sparse cumulative buckets: one entry per non-empty bucket, upper bound
	// + cumulative count, underflow first at le = 2^minExp lower edge.
	cum := uint64(0)
	if u := h.under.Load(); u > 0 {
		cum = u
		st.Buckets = append(st.Buckets, HistBucket{UpperBound: minResolvable, Count: cum})
	}
	for i := 0; i < numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		st.Buckets = append(st.Buckets, HistBucket{UpperBound: bucketUpper(i), Count: cum})
	}
	st.P50 = st.Quantile(0.50)
	st.P90 = st.Quantile(0.90)
	st.P99 = st.Quantile(0.99)
	st.P999 = st.Quantile(0.999)
	return st
}

// Quantile is a point read of one quantile (see HistStat.Quantile for the
// estimation contract). Prefer Stat when reading several.
func (h *Histogram) Quantile(p float64) float64 { return h.Stat().Quantile(p) }

// HistBucket is one non-empty bucket of a histogram snapshot: the exclusive
// upper bound and the cumulative sample count at or below it (the Prometheus
// `le` convention).
type HistBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Quantile estimates the p-quantile (p in [0, 1]) from the snapshot's bucket
// counts using the nearest-rank definition. For samples inside the resolvable
// range the estimate is the geometric midpoint of the owning bucket and is
// within RelativeError of the exact sorted-sample quantile; ranks falling in
// the underflow (or saturated top) bucket return the exact tracked Min (Max).
// The result is always clamped into [Min, Max]. An empty histogram returns
// NaN.
func (s HistStat) Quantile(p float64) float64 {
	if s.Count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	v := s.Max
	for i, b := range s.Buckets {
		if b.Count < rank {
			continue
		}
		switch {
		case b.UpperBound <= minResolvable:
			v = s.Min // underflow bucket: below bucketed resolution
		case i == len(s.Buckets)-1 && b.UpperBound >= bucketUpper(numBuckets-1):
			v = s.Max // saturated top bucket
		default:
			lo := bucketLowerOf(b.UpperBound)
			v = math.Sqrt(lo * b.UpperBound) // geometric midpoint
		}
		break
	}
	if v < s.Min {
		v = s.Min
	}
	if v > s.Max {
		v = s.Max
	}
	return v
}

// bucketLowerOf recovers the canonical lower bound of the bucket whose upper
// bound is le, by locating the bucket owning the value just under le.
func bucketLowerOf(le float64) float64 {
	return bucketLower(bucketIndex(math.Nextafter(le, 0)))
}

// atomicFloat is a float64 cell updated by CAS loops. Comparisons happen in
// float space (not bit space), so negative values and mixed signs order
// correctly; NaN never replaces an existing value in the merge operations.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) mergeMin(v float64) {
	for {
		old := f.bits.Load()
		if !(v < math.Float64frombits(old)) {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) mergeMax(v float64) {
	for {
		old := f.bits.Load()
		if !(v > math.Float64frombits(old)) {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

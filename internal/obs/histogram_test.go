package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank quantile of a sorted sample.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileAccuracyProperty is the documented accuracy contract: for
// samples inside the resolvable range, Quantile(p) lands within
// RelativeError of the exact sorted-sample nearest-rank quantile, across
// several distributions spanning many orders of magnitude.
func TestQuantileAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() float64{
		"uniform":     func() float64 { return 1e-4 + rng.Float64() },
		"lognormal":   func() float64 { return math.Exp(rng.NormFloat64() * 3) },
		"exponential": func() float64 { return rng.ExpFloat64() * 1e-3 },
		"latency-mix": func() float64 { // bimodal: cache hits ~100µs, solves ~50ms
			if rng.Float64() < 0.8 {
				return 1e-4 * (1 + rng.Float64())
			}
			return 5e-2 * (1 + rng.Float64())
		},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}

	for name, draw := range distributions {
		h := NewHistogram()
		samples := make([]float64, 20000)
		for i := range samples {
			v := draw()
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		st := h.Stat()
		for _, p := range quantiles {
			got := st.Quantile(p)
			want := exactQuantile(samples, p)
			relErr := math.Abs(got-want) / want
			if relErr > RelativeError+1e-9 {
				t.Errorf("%s: Quantile(%g) = %g, exact %g: relative error %.4f > bound %.4f",
					name, p, got, want, relErr, RelativeError)
			}
		}
		if st.P50 != st.Quantile(0.5) || st.P999 != st.Quantile(0.999) {
			t.Errorf("%s: precomputed quantile fields disagree with Quantile()", name)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistStat
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}

	h := NewHistogram()
	h.Observe(42)
	st := h.Stat()
	for _, p := range []float64{0, 0.5, 1} {
		got := st.Quantile(p)
		if math.Abs(got-42)/42 > RelativeError {
			t.Errorf("single sample: Quantile(%g) = %g, want ≈42", p, got)
		}
	}

	// Out-of-range samples: zero and negatives live in the underflow bucket
	// and quantiles falling there answer with the exact minimum; a huge value
	// saturates the top bucket and answers with the exact maximum.
	h = NewHistogram()
	h.Observe(-3)
	h.Observe(0)
	h.Observe(1e300)
	st = h.Stat()
	if got := st.Quantile(0.25); got != -3 {
		t.Errorf("underflow quantile = %g, want exact min -3", got)
	}
	if got := st.Quantile(1); got != 1e300 {
		t.Errorf("saturated quantile = %g, want exact max 1e300", got)
	}
	if st.Min != -3 || st.Max != 1e300 || st.Count != 3 {
		t.Errorf("moments wrong: %+v", st)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram()
	vals := []float64{0.001, 0.001, 0.01, 0.1, 1, 10}
	for _, v := range vals {
		h.Observe(v)
	}
	st := h.Stat()
	var prev HistBucket
	for i, b := range st.Buckets {
		if i > 0 {
			if b.UpperBound <= prev.UpperBound {
				t.Errorf("bucket %d: le %g not increasing (prev %g)", i, b.UpperBound, prev.UpperBound)
			}
			if b.Count < prev.Count {
				t.Errorf("bucket %d: cumulative count %d decreased (prev %d)", i, b.Count, prev.Count)
			}
		}
		prev = b
	}
	if last := st.Buckets[len(st.Buckets)-1]; last.Count != uint64(len(vals)) {
		t.Errorf("last cumulative count = %d, want %d", last.Count, len(vals))
	}
	// Every sample must sit at or below the upper bound of some bucket whose
	// count includes it: spot-check containment of the max.
	if ub := st.Buckets[len(st.Buckets)-1].UpperBound; ub < 10 {
		t.Errorf("max sample 10 above last bucket bound %g", ub)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; -race
// verifies the synchronisation and the totals verify no lost updates (the
// counters are wait-free atomic adds, so every sample must land).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(rng.ExpFloat64())
			}
		}(w)
	}
	wg.Wait()
	st := h.Stat()
	if st.Count != workers*per {
		t.Errorf("count = %d, want %d", st.Count, workers*per)
	}
	if got := st.Buckets[len(st.Buckets)-1].Count; got != workers*per {
		t.Errorf("cumulative bucket total = %d, want %d", got, workers*per)
	}
	if st.Min < 0 || st.Max <= st.Min || st.Mean <= 0 {
		t.Errorf("implausible moments after concurrent load: %+v", st)
	}
	if p99 := st.Quantile(0.99); p99 < st.Quantile(0.5) || p99 > st.Max {
		t.Errorf("quantiles disordered: p50=%g p99=%g max=%g", st.Quantile(0.5), p99, st.Max)
	}
}

// TestObserveZeroAlloc pins the hot-path contract the serving tier depends
// on: recording a sample into a live registry histogram performs no heap
// allocations (the CI benchmark guard enforces the same bound).
func TestObserveZeroAlloc(t *testing.T) {
	r := NewRegistry(nil)
	r.Observe("serve.request.seconds", 0.001) // create outside the measured loop
	if avg := testing.AllocsPerRun(1000, func() {
		r.Observe("serve.request.seconds", 0.0042)
	}); avg != 0 {
		t.Errorf("Registry.Observe allocates %.1f allocs/op, want 0", avg)
	}
	h := NewHistogram()
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(3.14)
	}); avg != 0 {
		t.Errorf("Histogram.Observe allocates %.1f allocs/op, want 0", avg)
	}
}

func TestBucketLayoutInvariants(t *testing.T) {
	for _, idx := range []int{0, 1, subCount - 1, subCount, numBuckets / 2, numBuckets - 1} {
		lo, hi := bucketLower(idx), bucketUpper(idx)
		if !(lo < hi) {
			t.Fatalf("bucket %d: empty span [%g, %g)", idx, lo, hi)
		}
		if ratio := hi / lo; ratio > 1+1.0/subCount+1e-12 {
			t.Errorf("bucket %d: bound ratio %g exceeds 1+1/%d", idx, ratio, subCount)
		}
		// Samples at the bounds map back into the right bucket.
		if got := bucketIndex(lo); got != idx {
			t.Errorf("bucketIndex(lower(%d)) = %d", idx, got)
		}
		if idx+1 < numBuckets {
			if got := bucketIndex(math.Nextafter(hi, 0)); got != idx {
				t.Errorf("bucketIndex(just under upper(%d)) = %d", idx, got)
			}
		}
	}
	if bucketLower(0) != minResolvable {
		t.Errorf("bucket 0 lower bound %g, want %g", bucketLower(0), minResolvable)
	}
}

// Package obs is the zero-dependency observability layer of the MFG-CP
// pipeline. It provides
//
//   - a Recorder interface with counters, gauges and histograms, implemented
//     lock-cheap (atomic fast paths) by Registry and for free by Nop, so the
//     solver and simulator hot loops pay ~nothing when telemetry is off;
//   - structured event tracing via log/slog: Start/End spans time named
//     regions (HJB backward pass, FPK forward pass, per-dimension sweeps,
//     best-response iterations, market epochs) and emit debug events carrying
//     their duration and attributes;
//   - an exposition sink (snapshot.go): JSON / expvar-compatible snapshots
//     plus an optional HTTP endpoint serving /metrics, /debug/vars and
//     /debug/pprof.
//
// The layer is injected explicitly: core.Config, sim.Config, the pde problem
// structs and experiments.Options all carry an optional Recorder that
// defaults to no-op. Library users and tests opt in by setting it to a
// *Registry (or any other implementation).
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// Recorder is the telemetry sink threaded through the pipeline. All methods
// are safe for concurrent use. Metric names are dot-separated lowercase
// (e.g. "pde.hjb.sweeps"); the three kinds live in separate namespaces, but
// reusing one name across kinds is discouraged.
type Recorder interface {
	// Add increments the named counter by delta (deltas may be fractional:
	// e.g. served requests are rate×dt contributions).
	Add(name string, delta float64)
	// Gauge sets the named gauge to its latest value.
	Gauge(name string, v float64)
	// Observe records one sample into the named histogram.
	Observe(name string, v float64)
	// Start opens a timed span. Span.End records the elapsed time into the
	// "<name>.seconds" histogram and emits a debug trace event.
	Start(name string) Span
	// Event emits a structured debug trace event (a point-in-time record,
	// e.g. one best-response iteration with its residual).
	Event(name string, attrs ...slog.Attr)
	// Enabled reports whether the recorder actually records, so hot paths
	// can skip assembling attributes or reading clocks when it does not.
	Enabled() bool
}

// Span is a timed region opened by Recorder.Start. The zero Span is inert,
// which is what the no-op recorder returns.
type Span struct {
	reg  *Registry
	name string
	t0   time.Time
}

// End closes the span: the elapsed wall time is recorded into the
// "<name>.seconds" histogram and a debug event with the duration plus the
// given attributes is emitted. It returns the elapsed time (zero for the
// no-op span) so callers can reuse the measurement.
func (s Span) End(attrs ...slog.Attr) time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.reg.Observe(s.name+".seconds", d.Seconds())
	s.reg.span(s.name, d, attrs)
	return d
}

// nopRecorder discards everything. Its methods are tiny leaf calls that the
// compiler can devirtualise in many call sites; the pde benchmarks bound the
// residual overhead below 2% of a solve.
type nopRecorder struct{}

func (nopRecorder) Add(string, float64)        {}
func (nopRecorder) Gauge(string, float64)      {}
func (nopRecorder) Observe(string, float64)    {}
func (nopRecorder) Start(string) Span          { return Span{} }
func (nopRecorder) Event(string, ...slog.Attr) {}
func (nopRecorder) Enabled() bool              { return false }

// Nop is the shared no-op Recorder. It is the implicit default everywhere a
// Recorder field is left nil.
var Nop Recorder = nopRecorder{}

// OrNop normalises an optional recorder: nil becomes Nop, anything else is
// returned unchanged. Call it once at the top of an instrumented function so
// the hot path never nil-checks.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// ParseLevel maps a CLI level string onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger returns a text-handler slog.Logger writing to w at the given
// level — the structured trace stream behind the CLI's -log-level flag.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

package obs

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry covering every metric kind
// (runtime metrics stay off: their values vary run to run).
func goldenRegistry() *Registry {
	r := NewRegistry(nil)
	r.Add("serve.solve.requests", 128)
	r.Add("pde.hjb.sweeps", 2.5) // fractional counters must render
	r.Gauge("serve.ready", 1)
	r.Gauge("core.solver.last_residual", 3.25e-7)
	for _, v := range []float64{0.0001, 0.0001, 0.00025, 0.004, 0.004, 0.004, 0.062, 1.5} {
		r.Observe("serve.request.seconds", v)
	}
	r.Observe("queue.depth", 0) // underflow bucket exercises le=2^-40
	return r
}

// TestWritePromGolden locks the Prometheus text exposition byte for byte.
// Regenerate deliberately with `go test ./internal/obs -run PromGolden -update`
// after an intentional format change.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/metrics.prom.golden"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePromShape sanity-checks the exposition grammar independent of the
// golden bytes: type lines, counter suffix, cumulative le buckets ending in
// +Inf, and sum/count pairs.
func TestWritePromShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_solve_requests_total counter",
		"serve_solve_requests_total 128",
		"pde_hjb_sweeps_total 2.5",
		"# TYPE serve_ready gauge",
		"# TYPE serve_request_seconds histogram",
		`serve_request_seconds_bucket{le="+Inf"} 8`,
		"serve_request_seconds_sum ",
		"serve_request_seconds_count 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "_seconds.") {
		t.Errorf("dotted metric name leaked into exposition:\n%s", out)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(r)
	defer srv.Close()

	get := func(path string, accept string) (string, string) {
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), buf.String()
	}

	// Default: JSON with an explicit Content-Type (backward compatible).
	ct, body := get("/", "")
	if ct != JSONContentType || !strings.Contains(body, `"counters"`) {
		t.Errorf("default: Content-Type %q body %.60q, want JSON snapshot", ct, body)
	}
	// A Prometheus scraper's Accept header selects the text exposition.
	ct, body = get("/", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	if ct != PromContentType || !strings.Contains(body, "serve_solve_requests_total") {
		t.Errorf("scraper accept: Content-Type %q body %.60q, want prometheus text", ct, body)
	}
	// Query overrides beat the Accept header, both ways.
	ct, _ = get("/?format=prom", "application/json")
	if ct != PromContentType {
		t.Errorf("?format=prom: Content-Type %q, want prometheus text", ct)
	}
	ct, body = get("/?format=json", "text/plain")
	if ct != JSONContentType || !strings.Contains(body, `"histograms"`) {
		t.Errorf("?format=json: Content-Type %q body %.60q, want JSON snapshot", ct, body)
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"time"
)

// HistStat is the exported summary of one histogram: the exact moment
// statistics of the PR-1 shape, extended with bounded-error quantiles and the
// sparse cumulative bucket list they (and the Prometheus renderer) are
// computed from. Old snapshots decode unchanged — the new fields are
// omitempty additions.
type HistStat struct {
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`

	P50  float64 `json:"p50,omitempty"`
	P90  float64 `json:"p90,omitempty"`
	P99  float64 `json:"p99,omitempty"`
	P999 float64 `json:"p999,omitempty"`

	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a Registry. It
// marshals to JSON with sorted keys (Go maps marshal ordered), so equal
// telemetry states produce byte-identical dumps.
type Snapshot struct {
	Counters   map[string]float64  `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies the current metric state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistStat),
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stat()
	}
	r.mu.RUnlock()
	if r.runtimeMetrics.Load() {
		collectRuntime(&s)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}

// WriteJSONFile dumps the snapshot to path (the CLI's -trace-out sink).
func (s Snapshot) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create %s: %w", path, err)
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// Render writes a compact human-readable telemetry summary: counters,
// gauges, then histogram timings, each sorted by name.
func (s Snapshot) Render(w io.Writer) error {
	names := func(n int) []string { return make([]string, 0, n) }
	cn := names(len(s.Counters))
	for n := range s.Counters {
		cn = append(cn, n)
	}
	sort.Strings(cn)
	for _, n := range cn {
		if _, err := fmt.Fprintf(w, "  counter    %-34s %g\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	gn := names(len(s.Gauges))
	for n := range s.Gauges {
		gn = append(gn, n)
	}
	sort.Strings(gn)
	for _, n := range gn {
		if _, err := fmt.Fprintf(w, "  gauge      %-34s %g\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	hn := names(len(s.Histograms))
	for n := range s.Histograms {
		hn = append(hn, n)
	}
	sort.Strings(hn)
	for _, n := range hn {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "  histogram  %-34s n=%d mean=%.4g min=%.4g max=%.4g\n",
			n, h.Count, h.Mean, h.Min, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// PublishExpvar exposes the registry under the given expvar name (visible on
// /debug/vars of any expvar-serving mux). Publishing the same name twice is
// a no-op instead of the expvar panic, so tests and repeated CLI runs in one
// process stay safe.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// ServeHTTP implements http.Handler so a Registry can be mounted directly as
// a /metrics endpoint. The representation is content-negotiated: JSON (the
// backward-compatible default) or Prometheus text exposition 0.0.4 when the
// Accept header asks for a text format or the request carries an explicit
// ?format=prom override (?format=json forces JSON for curl ergonomics). Both
// answers set an explicit Content-Type.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s := r.Snapshot()
	if wantsProm(req) {
		w.Header().Set("Content-Type", PromContentType)
		_ = s.WriteProm(w)
		return
	}
	w.Header().Set("Content-Type", JSONContentType)
	_ = s.WriteJSON(w)
}

// Serve starts an HTTP server on addr exposing
//
//	/metrics      JSON snapshot of reg
//	/debug/vars   expvar (including reg under "mfgcp")
//	/debug/pprof  the standard pprof handlers
//
// It returns the running server and its bound address (useful with ":0").
// The caller owns shutdown via srv.Close.
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	reg.PublishExpvar("mfgcp")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

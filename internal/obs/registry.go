package obs

import (
	"context"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the live Recorder: counters and gauges are single atomics
// behind an RLock name lookup, histograms take one short per-histogram lock
// per sample. An optional slog.Logger receives span and event records at
// debug level; with a nil logger the Registry is metrics-only.
type Registry struct {
	logger *slog.Logger

	mu       sync.RWMutex
	counters map[string]*counter
	gauges   map[string]*gauge
	hists    map[string]*Histogram

	runtimeMetrics atomic.Bool
}

// NewRegistry returns an empty Registry. logger may be nil (metrics without
// the trace stream).
func NewRegistry(logger *slog.Logger) *Registry {
	return &Registry{
		logger:   logger,
		counters: make(map[string]*counter),
		gauges:   make(map[string]*gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Logger returns the trace logger (nil when metrics-only).
func (r *Registry) Logger() *slog.Logger { return r.logger }

// counter is an atomically-updated float64 accumulator.
type counter struct{ bits atomic.Uint64 }

func (c *counter) add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *counter) value() float64 { return math.Float64frombits(c.bits.Load()) }

// gauge is an atomically-stored float64 last-value cell.
type gauge struct{ bits atomic.Uint64 }

func (g *gauge) set(v float64)  { g.bits.Store(math.Float64bits(v)) }
func (g *gauge) value() float64 { return math.Float64frombits(g.bits.Load()) }

// lookup returns m[name] under the read lock, or creates it under the write
// lock. The triple of typed helpers below keeps the fast path monomorphic.
func (r *Registry) counterFor(name string) *counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) gaugeFor(name string) *gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &gauge{}
		r.gauges[name] = g
	}
	return g
}

func (r *Registry) histFor(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Histogram returns the named live histogram, creating it when absent — the
// point-read path for quantile queries (e.g. an SLO probe asking for
// `Quantile(0.99)` of "serve.request.seconds") without a full Snapshot.
func (r *Registry) Histogram(name string) *Histogram { return r.histFor(name) }

// SetRuntimeMetrics toggles Go runtime telemetry (goroutines, heap bytes, GC
// pause histogram, GOMAXPROCS — the go.* names) being sampled into every
// Snapshot. Off by default so snapshots of equal workloads stay
// byte-identical; long-running daemons switch it on.
func (r *Registry) SetRuntimeMetrics(on bool) { r.runtimeMetrics.Store(on) }

// Add implements Recorder.
func (r *Registry) Add(name string, delta float64) { r.counterFor(name).add(delta) }

// Gauge implements Recorder.
func (r *Registry) Gauge(name string, v float64) { r.gaugeFor(name).set(v) }

// Observe implements Recorder.
func (r *Registry) Observe(name string, v float64) { r.histFor(name).Observe(v) }

// Start implements Recorder.
func (r *Registry) Start(name string) Span {
	return Span{reg: r, name: name, t0: time.Now()}
}

// Event implements Recorder.
func (r *Registry) Event(name string, attrs ...slog.Attr) {
	if r.logger == nil {
		return
	}
	r.logger.LogAttrs(context.Background(), slog.LevelDebug, name, attrs...)
}

// Enabled implements Recorder.
func (r *Registry) Enabled() bool { return true }

// span is Span.End's sink: one histogram sample plus one debug trace record.
func (r *Registry) span(name string, d time.Duration, attrs []slog.Attr) {
	if r.logger == nil || !r.logger.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	all := make([]slog.Attr, 0, len(attrs)+2)
	all = append(all, slog.String("span", name), slog.Duration("elapsed", d))
	all = append(all, attrs...)
	r.logger.LogAttrs(context.Background(), slog.LevelDebug, "span.end", all...)
}

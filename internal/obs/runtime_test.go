package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsOptIn(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("app.work", 1)

	// Off by default: snapshots stay workload-deterministic.
	if s := r.Snapshot(); len(s.Gauges) != 0 {
		t.Errorf("runtime metrics leaked into a default snapshot: %v", s.Gauges)
	}

	r.SetRuntimeMetrics(true)
	runtime.GC() // guarantee at least one GC cycle for the pause histogram
	s := r.Snapshot()
	if g := s.Gauges["go.goroutines"]; g < 1 {
		t.Errorf("go.goroutines = %g, want ≥ 1", g)
	}
	if g := s.Gauges["go.gomaxprocs"]; g < 1 {
		t.Errorf("go.gomaxprocs = %g, want ≥ 1", g)
	}
	if g := s.Gauges["go.heap.bytes"]; g <= 0 {
		t.Errorf("go.heap.bytes = %g, want > 0", g)
	}
	if c := s.Counters["go.gc.cycles"]; c < 1 {
		t.Errorf("go.gc.cycles = %g, want ≥ 1", c)
	}
	pauses, ok := s.Histograms["go.gc.pauses.seconds"]
	if !ok || pauses.Count == 0 {
		t.Fatalf("go.gc.pauses.seconds missing or empty: %+v", pauses)
	}
	if !(pauses.P99 >= pauses.P50) || pauses.Mean <= 0 {
		t.Errorf("implausible GC pause stats: %+v", pauses)
	}

	// The runtime family renders into the Prometheus exposition too.
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines", "go_gc_cycles_total", "# TYPE go_gc_pauses_seconds histogram"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

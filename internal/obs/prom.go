package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package renders.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// JSONContentType is the Content-Type of the default JSON snapshot.
const JSONContentType = "application/json; charset=utf-8"

// WriteProm renders the snapshot in the Prometheus text exposition format
// version 0.0.4: dotted metric names become underscore-separated, counters
// gain the conventional _total suffix, and histograms render the cumulative
// le-bucket series plus _sum and _count. Families are sorted by name, so
// equal snapshots produce byte-identical expositions (golden-file tested).
func (s Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %s\n", pn, pn, promFloat(s.Counters[n]))
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		for _, b := range h.Buckets {
			if math.IsInf(b.UpperBound, 1) {
				continue // folded into the mandatory +Inf bucket below
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(b.UpperBound), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}

	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write prometheus exposition: %w", err)
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus identifier charset
// [a-zA-Z0-9_:], with a leading underscore when the name starts with a digit.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// wantsProm resolves the /metrics representation: an explicit
// ?format=prom|json query override wins; otherwise an Accept header
// preferring a text exposition (what Prometheus scrapers send) selects the
// 0.0.4 text format, and everything else keeps the backward-compatible JSON
// snapshot.
func wantsProm(req *http.Request) bool {
	switch strings.ToLower(req.URL.Query().Get("format")) {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

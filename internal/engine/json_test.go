package engine

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mec"
	"repro/internal/pde"
)

// TestConfigJSONRoundTrip checks Marshal → Unmarshal reproduces every
// serialisable field, for the default configuration and for one with every
// knob moved off its default.
func TestConfigJSONRoundTrip(t *testing.T) {
	p := mec.Default()
	custom := DefaultConfig(p)
	custom.NH, custom.NQ, custom.Steps = 7, 21, 48
	custom.MaxIters = 17
	custom.Tol = 5e-4
	custom.Damping = 0.35
	custom.BlowupResidual = 1e6
	custom.FPKForm = pde.Advective
	custom.Stepping = pde.Explicit
	custom.Scheme = "explicit"
	custom.ShareEnabled = false
	custom.InitLambda = []float64{1, 2, 3}

	for name, cfg := range map[string]Config{
		"default": DefaultConfig(p),
		"custom":  custom,
	} {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Config
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(got, cfg) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, cfg)
		}
	}
}

// TestConfigJSONMerge checks that a sparse document decoded onto a populated
// base keeps every absent field.
func TestConfigJSONMerge(t *testing.T) {
	base := DefaultConfig(mec.Default())
	cfg, err := DecodeConfig([]byte(`{"NQ": 31, "Scheme": "explicit"}`), base)
	if err != nil {
		t.Fatalf("DecodeConfig: %v", err)
	}
	if cfg.NQ != 31 || cfg.Scheme != "explicit" {
		t.Errorf("overrides not applied: NQ=%d Scheme=%q", cfg.NQ, cfg.Scheme)
	}
	if cfg.NH != base.NH || cfg.Tol != base.Tol || cfg.Params != base.Params {
		t.Errorf("absent fields did not keep base values: %+v", cfg)
	}
	// Nested params merge too.
	cfg, err = DecodeConfig([]byte(`{"Params": {"Qk": 80}}`), base)
	if err != nil {
		t.Fatalf("DecodeConfig nested: %v", err)
	}
	if cfg.Params.Qk != 80 || cfg.Params.M != base.Params.M {
		t.Errorf("nested merge wrong: Qk=%g M=%d", cfg.Params.Qk, cfg.Params.M)
	}
}

// TestConfigJSONRejection table-drives the decoder's error paths: unknown
// keys, malformed JSON and values the PR-3 validation rejects.
func TestConfigJSONRejection(t *testing.T) {
	base := DefaultConfig(mec.Default())
	cases := []struct {
		name, doc, want string
	}{
		{"unknown key", `{"Damp": 0.5}`, "unknown field"},
		{"malformed", `{"NH": }`, "invalid character"},
		{"zero tol", `{"Tol": 0}`, "Tol"},
		{"bad damping", `{"Damping": 1.5}`, "Damping"},
		{"tiny grid", `{"NH": 1}`, "grid"},
		{"negative blowup", `{"BlowupResidual": -1}`, "BlowupResidual"},
		{"bad scheme", `{"Scheme": "upwind"}`, "scheme"},
		{"bad params", `{"Params": {"Qk": -1}}`, "Qk"},
	}
	for _, tc := range cases {
		if _, err := DecodeConfig([]byte(tc.doc), base); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.doc)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestConfigJSONDropsRuntimeFields checks Obs/WarmStart never reach the wire
// and survive an in-place merge untouched.
func TestConfigJSONDropsRuntimeFields(t *testing.T) {
	cfg := DefaultConfig(mec.Default())
	eq := &Equilibrium{}
	cfg.WarmStart = eq
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(data), "WarmStart") || strings.Contains(string(data), "Obs") {
		t.Fatalf("runtime fields leaked to the wire: %s", data)
	}
	if err := json.Unmarshal([]byte(`{"NH": 9}`), &cfg); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if cfg.WarmStart != eq {
		t.Errorf("merge clobbered WarmStart")
	}
	if cfg.NH != 9 {
		t.Errorf("merge missed NH: %d", cfg.NH)
	}
}

// TestWorkloadValidationRejectsNonFinite locks the NaN/Inf hardening of the
// workload validation (the serve layer depends on it for request rejection).
func TestWorkloadValidationRejectsNonFinite(t *testing.T) {
	good := Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	bads := []Workload{
		{Requests: math.NaN(), Pop: 0.3, Timeliness: 2},
		{Requests: math.Inf(1), Pop: 0.3, Timeliness: 2},
		{Requests: 10, Pop: math.NaN(), Timeliness: 2},
		{Requests: 10, Pop: 0.3, Timeliness: math.NaN()},
		{Requests: 10, Pop: 0.3, Timeliness: math.Inf(1)},
		{Requests: -1, Pop: 0.3, Timeliness: 2},
		{Requests: 10, Pop: 1.5, Timeliness: 2},
	}
	for _, w := range bads {
		if err := w.Validate(); err == nil {
			t.Errorf("invalid workload accepted: %+v", w)
		}
	}
	if _, err := DecodeWorkload([]byte(`{"Requests": 10, "Pop": 0.3, "Timeless": 1}`)); err == nil {
		t.Errorf("unknown workload field accepted")
	}
	w, err := DecodeWorkload([]byte(`{"Requests": 10, "Pop": 0.3, "Timeliness": 2}`))
	if err != nil || w != good {
		t.Errorf("DecodeWorkload = %+v, %v", w, err)
	}
}

package engine

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/pde"
)

// CacheKey builds the canonical lookup key of one equilibrium computation:
// every model constant, solver knob and workload descriptor that influences
// the solution, with floats quantised to 9 significant digits so that
// physically identical configurations arriving with sub-round-off jitter
// collapse onto one key while any real perturbation separates them. The
// warm-start seed is deliberately excluded: the mean-field equilibrium is
// unique (Theorem 2), so a cached solution for the same (params, workload,
// grid, scheme) is the answer regardless of where the iteration started.
func CacheKey(cfg Config, w Workload) string {
	var b strings.Builder
	b.Grow(512)
	p := cfg.Params
	// Model constants.
	fmt.Fprintf(&b, "M=%d;K=%d;", p.M, p.K)
	putF(&b, "Qk", p.Qk)
	putF(&b, "W1", p.W1)
	putF(&b, "W2", p.W2)
	putF(&b, "W3", p.W3)
	putF(&b, "Xi", p.Xi)
	putF(&b, "SigmaQ", p.SigmaQ)
	putF(&b, "ChRate", p.ChRate)
	putF(&b, "ChMean", p.ChMean)
	putF(&b, "ChSigma", p.ChSigma)
	putF(&b, "HMin", p.HMin)
	putF(&b, "HMax", p.HMax)
	putF(&b, "Bandwidth", p.Bandwidth)
	putF(&b, "TxPower", p.TxPower)
	putF(&b, "Noise", p.Noise)
	putF(&b, "PathLoss", p.PathLoss)
	putF(&b, "MeanDist", p.MeanDist)
	fmt.Fprintf(&b, "Interfer=%d;", p.Interfer)
	putF(&b, "HubRate", p.HubRate)
	putF(&b, "RateFloor", p.RateFloor)
	putF(&b, "PHat", p.PHat)
	putF(&b, "Eta1", p.Eta1)
	putF(&b, "Eta2", p.Eta2)
	putF(&b, "SharePrice", p.SharePrice)
	putF(&b, "W4", p.W4)
	putF(&b, "W5", p.W5)
	putF(&b, "Alpha", p.Alpha)
	putF(&b, "SmoothL", p.SmoothL)
	putF(&b, "ZipfSkew", p.ZipfSkew)
	putF(&b, "LMax", p.LMax)
	putF(&b, "Horizon", p.Horizon)
	putF(&b, "InitMeanFrac", p.InitMeanFrac)
	putF(&b, "InitStdFrac", p.InitStdFrac)
	// Solver knobs.
	fmt.Fprintf(&b, "NH=%d;NQ=%d;Steps=%d;MaxIters=%d;", cfg.NH, cfg.NQ, cfg.Steps, cfg.MaxIters)
	putF(&b, "Tol", cfg.Tol)
	putF(&b, "Damping", cfg.Damping)
	fmt.Fprintf(&b, "Form=%d;Share=%t;", int(cfg.FPKForm), cfg.ShareEnabled)
	if sch, err := cfg.scheme(); err == nil {
		fmt.Fprintf(&b, "Scheme=%s;", sch.Name())
	} else {
		fmt.Fprintf(&b, "Scheme=%q;", cfg.Scheme)
	}
	// Kernel precision changes the computed solution and must separate keys;
	// "" and "float64" are the same bit-exact default path and keep the
	// historical encoding (no field emitted). Workers are deliberately
	// excluded: the line-sweep partition is invisible in the results. The
	// Surrogate routing config is likewise excluded — it decides which tier
	// answers, never what the equilibrium is.
	if cfg.Kernel.Precision != "" && cfg.Kernel.Precision != pde.PrecisionFloat64 {
		fmt.Fprintf(&b, "Prec=%s;", cfg.Kernel.Precision)
	}
	// Initial density override: quantised content hash (nil means the
	// Section-V default, which the params above already determine).
	if cfg.InitLambda != nil {
		h := fnv.New64a()
		for _, v := range cfg.InitLambda {
			fmt.Fprintf(h, "%.9g;", v)
		}
		fmt.Fprintf(&b, "Init=%d:%x;", len(cfg.InitLambda), h.Sum64())
	}
	// Workload.
	putF(&b, "Requests", w.Requests)
	putF(&b, "Pop", w.Pop)
	putF(&b, "Timeliness", w.Timeliness)
	return b.String()
}

// putF appends one quantised float field. NaN and infinities format
// distinctly, so invalid configurations never alias valid ones.
func putF(b *strings.Builder, name string, v float64) {
	if v == 0 {
		v = 0 // normalise -0 and +0 onto one encoding
	}
	if math.IsNaN(v) {
		fmt.Fprintf(b, "%s=NaN;", name)
		return
	}
	fmt.Fprintf(b, "%s=%.9g;", name, v)
}

// Cache is a bounded, concurrency-safe equilibrium store with LRU eviction,
// shared by the policy layer's parallel per-content solves and the
// simulator's epoch loop: an epoch whose (params, workload) matches an
// already-solved one reuses the stored equilibrium instead of cold-starting
// Algorithm 2. Lookups and insertions report "engine.cache.hit",
// "engine.cache.miss" and "engine.cache.evictions" to the given recorder.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	eq  *Equilibrium
}

// NewCache returns a cache bounded to capacity equilibria. Capacity must be
// positive.
func NewCache(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("engine: cache capacity must be ≥ 1, got %d", capacity)
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}, nil
}

// Get returns the equilibrium stored under key, marking it most recently
// used. rec (nil means no-op) receives the hit/miss counter.
func (c *Cache) Get(rec obs.Recorder, key string) (*Equilibrium, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	var eq *Equilibrium
	if ok {
		c.order.MoveToFront(el)
		eq = el.Value.(*cacheEntry).eq
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	r := obs.OrNop(rec)
	if ok {
		r.Add("engine.cache.hit", 1)
	} else {
		r.Add("engine.cache.miss", 1)
	}
	return eq, ok
}

// Put stores eq under key, evicting the least recently used entry when the
// bound is exceeded. Storing under an existing key refreshes the entry.
func (c *Cache) Put(rec obs.Recorder, key string, eq *Equilibrium) {
	if eq == nil {
		return
	}
	var evicted uint64
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).eq = eq
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, eq: eq})
		for c.order.Len() > c.cap {
			last := c.order.Back()
			c.order.Remove(last)
			delete(c.entries, last.Value.(*cacheEntry).key)
			c.evictions++
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 {
		obs.OrNop(rec).Add("engine.cache.evictions", float64(evicted))
	}
}

// CacheExportEntry is one (key, equilibrium) pair exported by Cache.Export.
type CacheExportEntry struct {
	Key string
	Eq  *Equilibrium
}

// Export returns the cache contents ordered from least- to most-recently
// used, so Restore on a fresh cache of the same capacity reproduces both the
// entries and the LRU eviction order. The checkpoint layer persists these
// across process restarts.
func (c *Cache) Export() []CacheExportEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheExportEntry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		out = append(out, CacheExportEntry{Key: e.key, Eq: e.eq})
	}
	return out
}

// Restore inserts the exported entries in order (least recently used first),
// rebuilding the LRU state captured by Export. Restoring does not touch the
// hit/miss counters and records no metrics.
func (c *Cache) Restore(entries []CacheExportEntry) {
	for _, e := range entries {
		c.Put(nil, e.Key, e.Eq)
	}
}

// Len returns the number of stored equilibria.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity returns the configured bound.
func (c *Cache) Capacity() int { return c.cap }

// Stats returns the lifetime hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

package engine

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sde"
)

// EnsembleRollout averages n independent representative-agent rollouts
// (distinct Brownian paths, common initial state and equilibrium). The result
// approximates the expected trajectory E[q(t)], E[U(t)], … that the paper's
// convergence figures plot; single paths carry ±ϱq√t of diffusion noise that
// would obscure the shapes. Members are simulated concurrently (one worker
// per CPU); the deterministic per-member seeds make the average independent
// of scheduling.
func (eq *Equilibrium) EnsembleRollout(h0, q0 float64, seed int64, n int) (*Rollout, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: ensemble size must be ≥ 1, got %d", n)
	}
	members := make([]*Rollout, n)
	errs := make([]error, n)
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				members[i], errs[i] = eq.SimulateRollout(h0, q0, sde.DeriveSeed(seed, i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var avg *Rollout
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if avg == nil {
			avg = members[i]
			continue
		}
		accumulate(avg, members[i])
	}
	scale := 1 / float64(n)
	for _, f := range rolloutFields(avg) {
		for k := range f {
			f[k] *= scale
		}
	}
	// Times are identical across members; undo their averaging-by-scaling.
	for k := range avg.Times {
		avg.Times[k] = eq.Time.At(k)
	}
	return avg, nil
}

func accumulate(dst, src *Rollout) {
	df, sf := rolloutFields(dst), rolloutFields(src)
	for i := range df {
		for k := range df[i] {
			df[i][k] += sf[i][k]
		}
	}
}

func rolloutFields(r *Rollout) [][]float64 {
	return [][]float64{
		r.Times, r.H, r.Q, r.X,
		r.Utility, r.Trading, r.Sharing, r.Placement, r.Staleness, r.ShareCost,
		r.CumUtility, r.CumTrading,
	}
}

package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Equilibrium solves are the expensive step of Algorithm 1 (one per content
// per epoch), so production deployments cache them: an epoch whose workload
// matches a previous one reuses the stored equilibrium, and slowly-varying
// workloads warm-start from it (Config.WarmStart). This file provides the
// (de)serialisation; the format is gob of the exported Equilibrium fields.

// formatVersion guards against reading archives written by an incompatible
// layout of the Equilibrium struct.
const formatVersion = 1

type equilibriumArchive struct {
	Version int
	Eq      *Equilibrium
}

// WriteTo serialises the equilibrium. It returns the number of bytes written
// as reported by the counting writer wrapped around w. The telemetry recorder
// (Config.Obs) is stripped first: it is runtime wiring, not equilibrium
// state, and gob cannot encode arbitrary Recorder implementations.
func (eq *Equilibrium) WriteTo(w io.Writer) (int64, error) {
	clean := *eq
	clean.Config = stripRuntime(clean.Config)
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(equilibriumArchive{Version: formatVersion, Eq: &clean}); err != nil {
		return cw.n, fmt.Errorf("core: encode equilibrium: %w", err)
	}
	return cw.n, nil
}

// stripRuntime clears the non-serialisable runtime fields of a Config,
// following the warm-start chain.
func stripRuntime(c Config) Config {
	c.Obs = nil
	if c.WarmStart != nil {
		ws := *c.WarmStart
		ws.Config = stripRuntime(ws.Config)
		c.WarmStart = &ws
	}
	return c
}

// ReadEquilibrium deserialises an equilibrium written by WriteTo.
func ReadEquilibrium(r io.Reader) (*Equilibrium, error) {
	var arch equilibriumArchive
	if err := gob.NewDecoder(r).Decode(&arch); err != nil {
		return nil, fmt.Errorf("core: decode equilibrium: %w", err)
	}
	if arch.Version != formatVersion {
		return nil, fmt.Errorf("core: equilibrium archive version %d, want %d", arch.Version, formatVersion)
	}
	if arch.Eq == nil {
		return nil, fmt.Errorf("core: equilibrium archive is empty")
	}
	if arch.Eq.HJB == nil || arch.Eq.FPK == nil {
		return nil, fmt.Errorf("core: equilibrium archive is missing solver outputs")
	}
	return arch.Eq, nil
}

// MarshalEquilibrium serialises eq for checkpointing. Unlike WriteTo it also
// prunes the warm-start ancestry: every solve records the equilibrium it was
// seeded from in Config.WarmStart, so epoch-over-epoch warm starting grows an
// unbounded chain that would bloat snapshots without influencing any later
// computation (warm starts only read the strategy and density paths of the
// equilibrium itself, never its ancestor's).
func MarshalEquilibrium(eq *Equilibrium) ([]byte, error) {
	if eq == nil {
		return nil, fmt.Errorf("core: marshal nil equilibrium")
	}
	clean := *eq
	clean.Config.Obs = nil
	clean.Config.WarmStart = nil
	var buf bytes.Buffer
	if _, err := clean.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalEquilibrium deserialises an equilibrium written by
// MarshalEquilibrium (or WriteTo).
func UnmarshalEquilibrium(data []byte) (*Equilibrium, error) {
	return ReadEquilibrium(bytes.NewReader(data))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

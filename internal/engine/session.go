package engine

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/pde"
)

// Session owns every buffer one equilibrium computation needs — the state
// grid, the PDE workspace (tridiagonal sweepers and scratch fields), the
// value/strategy/density time paths, the per-step utility contexts and the
// snapshot array — so the damped best-response loop of Algorithm 2 runs with
// zero per-iteration heap allocations, and repeated solves (one per content
// per epoch in Algorithm 1) reuse the same memory. A Session is bound to one
// Config (grid resolution, scheme, tolerances); workloads and warm starts
// vary per solve. It is not safe for concurrent use; parallel workers hold
// one session each.
type Session struct {
	cfg     Config
	g       grid.Grid2D
	tm      grid.TimeMesh
	scheme  pde.Scheme
	channel *mec.ChannelModel
	est     *Estimator

	ws      *pde.Workspace
	hjb     *pde.HJBSolution
	fpk     *pde.FPKSolution
	hjbProb *pde.HJBProblem
	fpkProb *pde.FPKProblem

	lambda0    []float64 // initial density (owned copy)
	lambdaPath [][]float64
	xPath      [][]float64
	snaps      []Snapshot
	ctxs       []*mec.UtilityContext
	residuals  []float64 // cap MaxIters, reset per solve

	workload Workload // the workload of the solve in flight
	solves   int      // completed solves, for the reuse metric

	// trace is the request-scoped stage accumulator of the solve in flight
	// (nil for untraced solves — the steady-state zero-allocation contract
	// only pays two nil checks per iteration for it).
	trace *obs.ReqTrace
}

// NewSession validates the configuration and preallocates every workspace.
// The WarmStart and InitLambda fields of cfg configure the session-wide
// defaults; per-solve warm starts are passed to Solve.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Params

	hAxis, err := grid.NewAxis(p.HMin, p.HMax, cfg.NH)
	if err != nil {
		return nil, err
	}
	qAxis, err := grid.NewAxis(0, p.Qk, cfg.NQ)
	if err != nil {
		return nil, err
	}
	g, err := grid.NewGrid2D(hAxis, qAxis)
	if err != nil {
		return nil, err
	}
	tm, err := grid.NewTimeMesh(p.Horizon, cfg.Steps)
	if err != nil {
		return nil, err
	}
	scheme, err := cfg.scheme()
	if err != nil {
		return nil, err
	}
	channel, err := mec.NewChannelModel(p)
	if err != nil {
		return nil, err
	}
	est, err := NewEstimator(p, g)
	if err != nil {
		return nil, err
	}
	ws, err := pde.NewWorkspaceKernel(g, cfg.Kernel)
	if err != nil {
		return nil, err
	}

	// Initial density.
	lambda0 := cfg.InitLambda
	if lambda0 == nil {
		sdH := math.Sqrt(channel.OU().StationaryVar())
		if sdH < 1e-3 {
			sdH = 1e-3
		}
		lambda0, err = pde.GaussianDensity(g, p.ChMean, sdH, p.InitMeanFrac*p.Qk, p.InitStdFrac*p.Qk)
		if err != nil {
			return nil, err
		}
	} else if len(lambda0) != g.Size() {
		return nil, fmt.Errorf("core: InitLambda has %d nodes, grid has %d", len(lambda0), g.Size())
	}

	s := &Session{
		cfg:        cfg,
		g:          g,
		tm:         tm,
		scheme:     scheme,
		channel:    channel,
		est:        est,
		ws:         ws,
		hjb:        pde.NewHJBSolution(g, tm),
		fpk:        pde.NewFPKSolution(g, tm),
		lambda0:    lambda0,
		lambdaPath: make([][]float64, cfg.Steps+1),
		xPath:      make([][]float64, cfg.Steps+1),
		snaps:      make([]Snapshot, cfg.Steps+1),
		ctxs:       make([]*mec.UtilityContext, cfg.Steps+1),
		residuals:  make([]float64, 0, cfg.MaxIters),
	}
	for n := range s.xPath {
		s.xPath[n] = g.NewField()
		ctx, err := mec.NewUtilityContext(p, channel)
		if err != nil {
			return nil, err
		}
		s.ctxs[n] = ctx
	}

	// The PDE problems and their callbacks are built once: the closures
	// capture the session, whose ctxs/xPath contents are refreshed every
	// iteration, so the steady-state loop never rebuilds them.
	ou := channel.OU()
	s.hjbProb = &pde.HJBProblem{
		Grid:     g,
		Time:     tm,
		DiffH:    0.5 * p.ChSigma * p.ChSigma,
		DiffQ:    0.5 * p.SigmaQ * p.SigmaQ,
		DriftH:   func(_, h float64) float64 { return ou.Drift(0, h) },
		DriftQ:   func(t, x float64) float64 { return s.ctxs[s.timeIndex(t)].QDrift(x) },
		Control:  func(_, _, _ float64, dVdq float64) float64 { return OptimalControl(p, dVdq) },
		Running:  func(t, x, h, q float64) float64 { return s.ctxs[s.timeIndex(t)].Utility(x, h, q) },
		Stepping: scheme.Stepping(),
		Obs:      cfg.Obs,
	}
	s.fpkProb = &pde.FPKProblem{
		Grid:        g,
		Time:        tm,
		DiffH:       0.5 * p.ChSigma * p.ChSigma,
		DiffQ:       0.5 * p.SigmaQ * p.SigmaQ,
		DriftH:      func(_, h float64) float64 { return ou.Drift(0, h) },
		Form:        cfg.FPKForm,
		Stepping:    scheme.Stepping(),
		Renormalize: true,
		Obs:         cfg.Obs,
		DriftQ: func(t, h, q float64) float64 {
			n := s.timeIndex(t)
			i := g.H.NearestIndex(h)
			j := g.Q.NearestIndex(q)
			x := s.xPath[n][g.Idx(i, j)]
			return s.ctxs[n].QDrift(x)
		},
	}
	return s, nil
}

// Config returns the configuration the session was built for.
func (s *Session) Config() Config { return s.cfg }

// Grid returns the session's state grid.
func (s *Session) Grid() grid.Grid2D { return s.g }

// Time returns the session's time mesh.
func (s *Session) Time() grid.TimeMesh { return s.tm }

func (s *Session) timeIndex(t float64) int {
	n := int(t/s.tm.Dt() + 0.5)
	if n < 0 {
		n = 0
	}
	if n > s.cfg.Steps {
		n = s.cfg.Steps
	}
	return n
}

// begin resets the session state for a fresh solve of workload w, seeding the
// strategy and density paths from the warm-start equilibrium when given.
func (s *Session) begin(w Workload, warm *Equilibrium) error {
	if err := w.Validate(); err != nil {
		return err
	}
	s.workload = w
	s.residuals = s.residuals[:0]
	// Density path: before the first FPK solve, hold λ0 constant in time.
	for n := range s.lambdaPath {
		s.lambdaPath[n] = s.lambda0
	}
	// Strategy path: start from no caching, or from the warm-start
	// equilibrium's fixed point.
	for n := range s.xPath {
		for k := range s.xPath[n] {
			s.xPath[n][k] = 0
		}
	}
	if warm != nil {
		if warm.HJB == nil || warm.FPK == nil {
			return fmt.Errorf("core: warm-start equilibrium carries no solver outputs")
		}
		if warm.Grid != s.g || warm.Time != s.tm {
			return fmt.Errorf("core: warm-start grid/time mesh mismatch: %dx%d/%d vs %dx%d/%d",
				warm.Grid.H.N, warm.Grid.Q.N, warm.Time.Steps, s.g.H.N, s.g.Q.N, s.tm.Steps)
		}
		for n := range s.xPath {
			copy(s.xPath[n], warm.HJB.X[n])
			s.lambdaPath[n] = warm.FPK.Lambda[n]
		}
	}
	return nil
}

// iterate runs one damped best-response iteration (Algorithm 2 body):
// estimator snapshots from the current (λ, x) paths, backward HJB under the
// frozen mean field, damped strategy update, forward FPK under the updated
// strategy. It returns the sup-norm strategy residual. The call performs no
// heap allocations when telemetry is disabled. iter is used in diagnostics
// only.
func (s *Session) iterate(iter int) (float64, error) {
	cfg := &s.cfg
	w := s.workload

	// 1. Snapshots from the current (λ, x) paths.
	for n := 0; n <= cfg.Steps; n++ {
		snap, err := s.est.Snapshot(s.tm.At(n), s.lambdaPath[n], s.xPath[n])
		if err != nil {
			return 0, fmt.Errorf("core: snapshot at step %d: %w", n, err)
		}
		s.snaps[n] = snap
		ctx := s.ctxs[n]
		ctx.Price = snap.Price
		ctx.QBar = snap.QBar
		ctx.ShareBenefit = snap.ShareBenefit
		ctx.Requests = w.Requests
		ctx.Pop = w.Pop
		ctx.Timeliness = w.Timeliness
		ctx.ShareEnabled = cfg.ShareEnabled
	}

	// 2. Backward HJB under the frozen mean field.
	var stageStart time.Time
	if s.trace != nil {
		stageStart = time.Now()
	}
	if err := pde.SolveHJBInto(s.ws, s.scheme, s.hjbProb, s.hjb); err != nil {
		return 0, fmt.Errorf("core: HJB solve at iteration %d: %w", iter, err)
	}
	if s.trace != nil {
		s.trace.Observe("hjb_sweep", time.Since(stageStart))
	}

	// 3. Strategy residual and damped update (in place).
	var residual float64
	for n := 0; n <= cfg.Steps; n++ {
		xNew := s.hjb.X[n]
		xOld := s.xPath[n]
		for k := range xOld {
			d := math.Abs(xNew[k] - xOld[k])
			if d > residual {
				residual = d
			}
			xOld[k] = (1-cfg.Damping)*xOld[k] + cfg.Damping*xNew[k]
		}
	}

	// 4. Forward FPK under the updated strategy.
	if s.trace != nil {
		stageStart = time.Now()
	}
	if err := pde.SolveFPKInto(s.ws, s.scheme, s.fpkProb, s.lambda0, s.fpk); err != nil {
		return 0, fmt.Errorf("core: FPK solve at iteration %d: %w", iter, err)
	}
	if s.trace != nil {
		s.trace.Observe("fpk_sweep", time.Since(stageStart))
		s.trace.Count("fixed_point_iterations", 1)
	}
	for n := range s.lambdaPath {
		s.lambdaPath[n] = s.fpk.Lambda[n]
	}
	return residual, nil
}

// export copies the session's reusable buffers into a standalone Equilibrium
// (the session is immediately reusable for the next solve).
func (s *Session) export(warm *Equilibrium) *Equilibrium {
	cfg := s.cfg
	cfg.WarmStart = warm
	eq := &Equilibrium{
		Config:   cfg,
		Workload: s.workload,
		Grid:     s.g,
		Time:     s.tm,
		HJB: &pde.HJBSolution{
			Grid: s.g,
			Time: s.tm,
			V:    copyPath(s.hjb.V),
			X:    copyPath(s.hjb.X),
		},
		FPK: &pde.FPKSolution{
			Grid:    s.g,
			Time:    s.tm,
			Lambda:  copyPath(s.fpk.Lambda),
			RawMass: append([]float64(nil), s.fpk.RawMass...),
		},
		Snapshots:  append([]Snapshot(nil), s.snaps...),
		Residuals:  append([]float64(nil), s.residuals...),
		Iterations: len(s.residuals),
	}
	return eq
}

func copyPath(src [][]float64) [][]float64 {
	dst := make([][]float64, len(src))
	for n := range src {
		dst[n] = append([]float64(nil), src[n]...)
	}
	return dst
}

// Solve runs the iterative best-response learning scheme (Algorithm 2):
//
//	repeat
//	    1. build mean-field snapshots from the current density path λ and
//	       strategy x (price, q̄, Δq̄, sharing benefit — Eqs. 16–18);
//	    2. solve the backward HJB (Eq. 20) under those snapshots, obtaining
//	       the best-response strategy x* via Theorem 1;
//	    3. stop if sup|x* − x| < Tol;
//	    4. solve the forward FPK (Eq. 15) under (a damped update of) x*,
//	       obtaining the next density path;
//	until converged or ψ = ψ_th.
//
// The fixed point (V*, λ*) of this map is the unique mean-field equilibrium
// (Theorem 2). A nil warm falls back to the session config's WarmStart. On
// non-convergence the partial equilibrium is returned with ErrNotConverged.
func (s *Session) Solve(w Workload, warm *Equilibrium) (*Equilibrium, error) {
	return s.SolveContext(context.Background(), w, warm)
}

// SolveContext is Solve under a context: the best-response loop checks ctx at
// iteration granularity and returns ctx's error (wrapped) as soon as the
// deadline passes or the run is cancelled, leaving the session reusable. It
// additionally guards every iteration against divergence: a NaN/Inf residual
// or one above Config.BlowupResidual abandons the solve with ErrDiverged
// instead of burning the remaining iteration budget on garbage iterates.
func (s *Session) SolveContext(ctx context.Context, w Workload, warm *Equilibrium) (*Equilibrium, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if warm == nil {
		warm = s.cfg.WarmStart
	}
	// Request-scoped stage attribution: when the caller's context carries a
	// ReqTrace (the serving tier's per-request correlation), the HJB/FPK
	// sweep times and fixed-point iteration count of this solve land in it.
	s.trace = obs.ReqTraceFrom(ctx)
	defer func() { s.trace = nil }()
	if s.trace != nil {
		// Per-request parallelism attribution: how many sweep workers this
		// solve's PDE kernels ran with.
		s.trace.Count("kernel_workers", int64(s.ws.Workers()))
	}
	if err := s.begin(w, warm); err != nil {
		return nil, err
	}
	blowup := s.cfg.BlowupResidual
	if blowup == 0 {
		blowup = defaultBlowupResidual
	}

	rec := obs.OrNop(s.cfg.Obs)
	solveSpan := rec.Start("core.solve")
	rec.Add("engine.session.solves", 1)
	if s.solves > 0 {
		// Workspace reuse: this solve runs entirely on buffers allocated for
		// an earlier one.
		rec.Add("engine.session.reused", 1)
	}

	converged := false
	for iter := 1; iter <= s.cfg.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			s.solves++
			solveSpan.End(slog.Int("iterations", iter-1), slog.String("stop_reason", "canceled"))
			return nil, fmt.Errorf("core: solve canceled at iteration %d: %w", iter, err)
		}
		residual, err := s.iterate(iter)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(residual) || math.IsInf(residual, 0) || residual > blowup {
			s.solves++
			rec.Add("resilience.nonfinite", 1)
			rec.Add("core.solver.diverged", 1)
			solveSpan.End(
				slog.Int("iterations", iter),
				slog.Float64("residual", residual),
				slog.String("stop_reason", "diverged"))
			return nil, fmt.Errorf("%w: residual %g at iteration %d (blow-up threshold %g)",
				ErrDiverged, residual, iter, blowup)
		}
		s.residuals = append(s.residuals, residual)
		converged = residual < s.cfg.Tol
		rec.Add("core.solver.iterations", 1)
		rec.Observe("core.solver.residual", residual)
		if rec.Enabled() {
			rec.Event("core.iteration",
				slog.Int("iteration", iter),
				slog.Float64("residual", residual),
				slog.Float64("tol", s.cfg.Tol),
				slog.Float64("damping", s.cfg.Damping),
				slog.Bool("converged", converged))
		}
		if converged {
			break
		}
	}

	eq := s.export(warm)
	eq.Converged = converged
	s.solves++

	stopReason := "tolerance"
	rec.Add("core.solver.solves", 1)
	// One equilibrium solve serves one content for one optimisation epoch
	// (Algorithm 1 line 9), so this mirrors sim's per-run "sim.epochs".
	rec.Add("core.solver.content_epochs", 1)
	if eq.Converged {
		rec.Add("core.solver.converged", 1)
	} else {
		stopReason = "max_iters"
		rec.Add("core.solver.nonconverged", 1)
	}
	rec.Gauge("core.solver.last_iterations", float64(eq.Iterations))
	rec.Gauge("core.solver.last_residual", eq.Residuals[len(eq.Residuals)-1])
	solveSpan.End(
		slog.Int("iterations", eq.Iterations),
		slog.Bool("converged", eq.Converged),
		slog.String("stop_reason", stopReason),
		slog.Float64("final_residual", eq.Residuals[len(eq.Residuals)-1]),
		slog.Bool("warm_start", warm != nil))

	if !eq.Converged {
		return eq, fmt.Errorf("%w after %d iterations (residual %.3g > tol %.3g)",
			ErrNotConverged, eq.Iterations, eq.Residuals[len(eq.Residuals)-1], s.cfg.Tol)
	}
	return eq, nil
}

// defaultBlowupResidual bounds the strategy residual when Config leaves
// BlowupResidual at zero. The caching rate is confined to [0,1], so a residual
// beyond this is unambiguously a numerical blow-up.
const defaultBlowupResidual = 1e8

// Solve runs one equilibrium computation with a throwaway session. It is the
// compatibility path behind core.Solve; sustained callers (the policy layer,
// epoch loops) construct a Session once and reuse it.
func Solve(cfg Config, w Workload) (*Equilibrium, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return s.Solve(w, nil)
}

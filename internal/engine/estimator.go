package engine

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/numerics"
)

// Snapshot captures every mean-field quantity the generic EDP needs at one
// time node. It is what the mean-field estimator "publicises" instead of the
// individual states of the other M−1 EDPs.
type Snapshot struct {
	T float64

	// MeanControl is E_λ[x*] = ∫∫ λ(S) x*(S) dS, the population-average
	// caching rate entering the dynamic price (Eq. 17).
	MeanControl float64
	// Price is the limiting trading price p(t) of Eq. (17).
	Price float64
	// QBar is q̄_{−,k}(t) = ∫∫ q·λ(S) dS, the mean remaining space of the
	// peer population (Eq. 18).
	QBar float64
	// SharerFrac is M_k(t)/M: the fraction of EDPs whose remaining space is
	// below α·Qk, i.e. that have cached enough to qualify as sharers.
	SharerFrac float64
	// Case3Frac is M'_k(t)/M: the fraction of EDPs that fall into Case 3
	// (neither themselves nor the average peer has cached enough).
	Case3Frac float64
	// DeltaQ is the average transfer size Δq̄(t) between sharing partners.
	DeltaQ float64
	// ShareBenefit is the average sharing benefit Φ̄²(t) accruing to one
	// qualified sharer.
	ShareBenefit float64
}

// Estimator computes mean-field snapshots from a density λ and a control
// field x on a fixed state grid. It is deliberately stateless between calls:
// the fixed-point iteration of Algorithm 2 rebuilds snapshots from the
// freshest λ and x* each round.
type Estimator struct {
	P mec.Params
	G grid.Grid2D
}

// NewEstimator validates the parameters and returns an estimator on g.
func NewEstimator(p mec.Params, g grid.Grid2D) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{P: p, G: g}, nil
}

// Snapshot computes every estimator quantity at time t from the density
// lambda and the control field x (both flattened over the grid). All five
// trapezoid moments sharing the density weights are fused into two passes
// with separate accumulators (the Case-3 pass needs the finished q̄), so the
// call performs no heap allocations and one traversal less than computing
// each moment independently — while accumulating every moment in the exact
// same node order, keeping the results bit-identical to the unfused form.
func (e *Estimator) Snapshot(t float64, lambda, x []float64) (Snapshot, error) {
	g := e.G
	if len(lambda) != g.Size() || len(x) != g.Size() {
		return Snapshot{}, fmt.Errorf("core: Snapshot: lambda %d, x %d, grid %d", len(lambda), len(x), g.Size())
	}
	// Normalising constant: the solvers keep ∫∫λ = 1, but dividing by the
	// actual quadrature mass makes the estimator robust to round-off and to
	// callers handing in unnormalised histograms.
	massV, err := numerics.Integral2D(g, lambda)
	if err != nil {
		return Snapshot{}, err
	}
	if massV <= 0 {
		return Snapshot{}, fmt.Errorf("core: Snapshot: density mass %g is not positive", massV)
	}

	aq := e.P.AlphaQ()
	nh, nq := g.H.N, g.Q.N
	cell := g.CellArea()

	var meanXSum, qBarSum, sharerSum, lowSum, highSum float64
	for i := 0; i < nh; i++ {
		wi := 1.0
		if i == 0 || i == nh-1 {
			wi = 0.5
		}
		row := i * nq
		for j := 0; j < nq; j++ {
			wj := 1.0
			if j == 0 || j == nq-1 {
				wj = 0.5
			}
			q := g.Q.At(j)
			lam := lambda[row+j]
			w := wi * wj
			meanXSum += w * lam * x[row+j]
			qBarSum += w * lam * q
			if q <= aq {
				sharerSum += w * lam
				lowSum += w * lam * q
			} else {
				highSum += w * lam * q
			}
		}
	}
	meanX := meanXSum * cell / massV
	qBar := qBarSum * cell / massV
	sharerFrac := sharerSum * cell / massV

	// Case-3 fraction: smoothed probability that an EDP misses and the
	// average peer misses too, integrated over the population. A second pass
	// because the case probabilities depend on the finished q̄.
	var case3Sum float64
	for i := 0; i < nh; i++ {
		wi := 1.0
		if i == 0 || i == nh-1 {
			wi = 0.5
		}
		row := i * nq
		for j := 0; j < nq; j++ {
			wj := 1.0
			if j == 0 || j == nq-1 {
				wj = 0.5
			}
			case3Sum += wi * wj * lambda[row+j] * mec.CaseProbabilities(e.P, g.Q.At(j), qBar).P3
		}
	}
	case3Frac := case3Sum * cell / massV

	// Average transfer size Δq̄: |E[q·1{q≤αQ}] − E[q·1{q>αQ}]|.
	low := lowSum * cell
	high := highSum * cell
	deltaQ := math.Abs(low-high) / massV

	s := Snapshot{
		T:           t,
		MeanControl: meanX,
		Price:       mec.PriceMeanField(e.P, meanX),
		QBar:        qBar,
		SharerFrac:  sharerFrac,
		Case3Frac:   case3Frac,
		DeltaQ:      deltaQ,
	}
	s.ShareBenefit = e.shareBenefit(s)
	return s, nil
}

// shareBenefit evaluates Φ̄²(t) = p̄k · Δq̄ · ((M − M')/M_k − 1), clamped to
// be non-negative (an EDP can decline to share rather than pay to do so) and
// guarded against a (near-)empty sharer population: when fewer than 0.1% of
// EDPs qualify as sharers, the matching probability is negligible and the
// ratio (M−M')/M_k would explode, so the benefit is reported as zero.
func (e *Estimator) shareBenefit(s Snapshot) float64 {
	if s.SharerFrac <= 1e-3 {
		return 0
	}
	ratio := (1 - s.Case3Frac) / s.SharerFrac
	b := e.P.SharePrice * s.DeltaQ * (ratio - 1)
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0
	}
	return b
}

// OptimalControl is the closed-form maximiser of Theorem 1 (Eq. 21):
//
//	x* = [ −( w4/(2w5) + η2·Qk/(2·Hc·w5) + Qk·w1·∂qV/(2w5) ) ]₀¹
//
// It depends on the model constants and the local estimate of ∂qV only.
func OptimalControl(p mec.Params, dVdq float64) float64 {
	raw := -(p.W4/(2*p.W5) + p.Eta2*p.Qk/(2*p.HubRate*p.W5) + p.Qk*p.W1*dVdq/(2*p.W5))
	return numerics.Clamp01(raw)
}

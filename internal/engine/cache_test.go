package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheKeyCanonical checks the canonicalisation contract: identical
// inputs and sub-round-off jitter map onto one key; every meaningful
// perturbation separates keys.
func TestCacheKeyCanonical(t *testing.T) {
	cfg, w := smallConfig()
	base := CacheKey(cfg, w)
	if base != CacheKey(cfg, w) {
		t.Fatalf("identical inputs produced different keys")
	}

	// Sub-quantum jitter (below 9 significant digits) collapses.
	jitter := cfg
	jitter.Tol = cfg.Tol * (1 + 1e-13)
	if CacheKey(jitter, w) != base {
		t.Errorf("1e-13 relative jitter on Tol changed the key")
	}
	wj := w
	wj.Requests = w.Requests * (1 + 1e-13)
	if CacheKey(cfg, wj) != base {
		t.Errorf("1e-13 relative jitter on Requests changed the key")
	}

	// Real perturbations separate.
	cases := []struct {
		name string
		key  string
	}{
		{"Requests", CacheKey(cfg, Workload{Requests: w.Requests * 1.01, Pop: w.Pop, Timeliness: w.Timeliness})},
		{"Pop", CacheKey(cfg, Workload{Requests: w.Requests, Pop: w.Pop + 0.01, Timeliness: w.Timeliness})},
		{"Timeliness", CacheKey(cfg, Workload{Requests: w.Requests, Pop: w.Pop, Timeliness: w.Timeliness + 0.1})},
	}
	seen := map[string]string{base: "base"}
	for _, c := range cases {
		if prev, dup := seen[c.key]; dup {
			t.Errorf("perturbing %s collided with %s", c.name, prev)
		}
		seen[c.key] = c.name
	}

	grid := cfg
	grid.NQ += 2
	if CacheKey(grid, w) == base {
		t.Errorf("changing the grid resolution kept the key")
	}
	tol := cfg
	tol.Tol *= 10
	if CacheKey(tol, w) == base {
		t.Errorf("changing Tol kept the key")
	}
	scheme := cfg
	scheme.Scheme = "explicit"
	if CacheKey(scheme, w) == base {
		t.Errorf("changing the scheme kept the key")
	}
	share := cfg
	share.ShareEnabled = !cfg.ShareEnabled
	if CacheKey(share, w) == base {
		t.Errorf("toggling ShareEnabled kept the key")
	}
	params := cfg
	params.Params.Eta1 *= 2
	if CacheKey(params, w) == base {
		t.Errorf("changing a model parameter kept the key")
	}

	// The scheme name is canonical: "", "implicit" and the implicit Stepping
	// constant all resolve to the same integrator and must share a key.
	named := cfg
	named.Scheme = "implicit"
	if CacheKey(named, w) != base {
		t.Errorf("explicit %q scheme name diverged from the default key", named.Scheme)
	}

	// Warm start must NOT enter the key: the equilibrium is unique
	// (Theorem 2), so the cached solution answers regardless of seed.
	warm := cfg
	warm.WarmStart = &Equilibrium{}
	if CacheKey(warm, w) != base {
		t.Errorf("warm-start seed leaked into the cache key")
	}
}

// TestCacheBoundedEviction exercises the LRU bound.
func TestCacheBoundedEviction(t *testing.T) {
	c, err := NewCache(2)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	eq := func(i int) *Equilibrium { return &Equilibrium{Iterations: i} }
	c.Put(nil, "a", eq(1))
	c.Put(nil, "b", eq(2))
	if _, ok := c.Get(nil, "a"); !ok { // refresh "a": "b" becomes LRU
		t.Fatalf("a missing before eviction")
	}
	c.Put(nil, "c", eq(3))
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, bound is 2", c.Len())
	}
	if _, ok := c.Get(nil, "b"); ok {
		t.Errorf("LRU entry b survived eviction")
	}
	if got, ok := c.Get(nil, "a"); !ok || got.Iterations != 1 {
		t.Errorf("recently used entry a evicted")
	}
	if got, ok := c.Get(nil, "c"); !ok || got.Iterations != 3 {
		t.Errorf("newest entry c missing")
	}
	_, _, ev := c.Stats()
	if ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}

	if _, err := NewCache(0); err == nil {
		t.Errorf("NewCache(0) accepted a non-positive capacity")
	}
}

// TestCacheConcurrent hammers one bounded cache from parallel workers mixing
// hits, misses, inserts and evictions; run under -race in CI.
func TestCacheConcurrent(t *testing.T) {
	c, err := NewCache(8)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	const workers = 16
	const opsPerWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := fmt.Sprintf("k%d", (id+i)%24)
				if eq, ok := c.Get(nil, key); ok {
					if eq == nil {
						t.Errorf("hit returned nil equilibrium")
						return
					}
					continue
				}
				c.Put(nil, key, &Equilibrium{Iterations: id})
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Errorf("cache exceeded its bound: %d > 8", n)
	}
	hits, misses, _ := c.Stats()
	if hits+misses != workers*opsPerWorker {
		t.Errorf("hit+miss = %d, want %d", hits+misses, workers*opsPerWorker)
	}
}

// TestCachedSolveRoundTrip stores a solved equilibrium and reads it back
// under the canonical key, as the policy layer does per epoch.
func TestCachedSolveRoundTrip(t *testing.T) {
	cfg, w := smallConfig()
	c, err := NewCache(4)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	eq, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	key := CacheKey(cfg, w)
	c.Put(nil, key, eq)
	got, ok := c.Get(nil, CacheKey(cfg, w))
	if !ok {
		t.Fatalf("cached equilibrium not found under recomputed key")
	}
	if got != eq {
		t.Fatalf("cache returned a different equilibrium")
	}
	// Same config arriving via a fresh DefaultConfig value still hits.
	cfg2, w2 := smallConfig()
	if _, ok := c.Get(nil, CacheKey(cfg2, w2)); !ok {
		t.Errorf("structurally identical config missed the cache")
	}
}

package engine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/sde"
)

// Rollout is the trajectory of a representative (generic) EDP playing the
// equilibrium strategy against the mean field. Several of the paper's figures
// (9, 10, 11) plot exactly this object: the evolution of one EDP's remaining
// space, instantaneous and accumulated utility, and the income/cost split.
type Rollout struct {
	Times []float64
	H, Q  []float64 // state trajectory
	X     []float64 // applied caching rate x*(t, h, q)

	Utility   []float64 // instantaneous U(t)
	Trading   []float64 // Φ¹(t)
	Sharing   []float64 // Φ²(t)
	Placement []float64 // C¹(t)
	Staleness []float64 // C²(t)
	ShareCost []float64 // C³(t)

	CumUtility []float64 // ∫₀ᵗ U dt'
	CumTrading []float64
}

// Final returns the accumulated utility and trading income over the horizon.
func (r *Rollout) Final() (utility, trading float64) {
	n := len(r.CumUtility)
	if n == 0 {
		return 0, 0
	}
	return r.CumUtility[n-1], r.CumTrading[n-1]
}

// SimulateRollout integrates one EDP's state SDEs under the equilibrium
// policy with the Euler–Maruyama scheme (reflecting at the grid boundaries,
// matching the FPK's zero-flux condition) and evaluates the utility
// decomposition against the equilibrium's mean-field snapshots. seed makes
// the Brownian path reproducible; h0, q0 set the initial state.
func (eq *Equilibrium) SimulateRollout(h0, q0 float64, seed int64) (*Rollout, error) {
	if eq.HJB == nil {
		return nil, errors.New("core: equilibrium carries no HJB solution")
	}
	p := eq.Config.Params
	if !eq.Grid.H.Contains(h0) {
		return nil, fmt.Errorf("core: initial fading %g outside [%g, %g]", h0, eq.Grid.H.Min, eq.Grid.H.Max)
	}
	if !eq.Grid.Q.Contains(q0) {
		return nil, fmt.Errorf("core: initial remaining space %g outside [%g, %g]", q0, eq.Grid.Q.Min, eq.Grid.Q.Max)
	}
	channel, err := mec.NewChannelModel(p)
	if err != nil {
		return nil, err
	}
	ou := channel.OU()
	drift := sde.CacheDrift{Qk: p.Qk, W1: p.W1, W2: p.W2, W3: p.W3, Xi: p.Xi, SigmaQ: p.SigmaQ}
	rng := sde.NewRNG(seed)

	steps := eq.Time.Steps
	dt := eq.Time.Dt()
	r := &Rollout{
		Times:      make([]float64, steps+1),
		H:          make([]float64, steps+1),
		Q:          make([]float64, steps+1),
		X:          make([]float64, steps+1),
		Utility:    make([]float64, steps+1),
		Trading:    make([]float64, steps+1),
		Sharing:    make([]float64, steps+1),
		Placement:  make([]float64, steps+1),
		Staleness:  make([]float64, steps+1),
		ShareCost:  make([]float64, steps+1),
		CumUtility: make([]float64, steps+1),
		CumTrading: make([]float64, steps+1),
	}

	h, q := h0, q0
	for n := 0; n <= steps; n++ {
		t := eq.Time.At(n)
		r.Times[n] = t
		r.H[n] = h
		r.Q[n] = q

		x, err := eq.HJB.ControlAt(t, h, q)
		if err != nil {
			return nil, err
		}
		r.X[n] = x

		snap := eq.SnapshotAt(t)
		ctx, err := mec.NewUtilityContext(p, channel)
		if err != nil {
			return nil, err
		}
		ctx.Price = snap.Price
		ctx.QBar = snap.QBar
		ctx.ShareBenefit = snap.ShareBenefit
		ctx.Requests = eq.Workload.Requests
		ctx.Pop = eq.Workload.Pop
		ctx.Timeliness = eq.Workload.Timeliness
		ctx.ShareEnabled = eq.Config.ShareEnabled

		terms := ctx.Terms(x, h, q)
		r.Utility[n] = terms.Total()
		r.Trading[n] = terms.Trading
		r.Sharing[n] = terms.Sharing
		r.Placement[n] = terms.Placement
		r.Staleness[n] = terms.Staleness
		r.ShareCost[n] = terms.ShareCost
		if n > 0 {
			r.CumUtility[n] = r.CumUtility[n-1] + r.Utility[n]*dt
			r.CumTrading[n] = r.CumTrading[n-1] + r.Trading[n]*dt
		}

		if n == steps {
			break
		}
		// Euler–Maruyama step with reflection into the modelled ranges.
		sq := math.Sqrt(dt)
		h += ou.Drift(t, h)*dt + ou.Diffusion(t, h)*sq*rng.NormFloat64()
		h = sde.ReflectInto(h, eq.Grid.H.Min, eq.Grid.H.Max)
		q += drift.Rate(x, eq.Workload.Pop, eq.Workload.Timeliness)*dt + drift.SigmaQ*sq*rng.NormFloat64()
		q = sde.ReflectInto(q, eq.Grid.Q.Min, eq.Grid.Q.Max)
	}
	return r, nil
}

// DeviationUtility evaluates the accumulated utility of a unilateral
// deviation: the EDP plays the constant caching rate xConst instead of the
// equilibrium strategy, while the mean field stays at equilibrium. Used by
// the Nash-equilibrium property test: no constant deviation should beat the
// equilibrium strategy by more than discretisation noise.
func (eq *Equilibrium) DeviationUtility(h0, q0, xConst float64, seed int64) (float64, error) {
	if eq.HJB == nil {
		return 0, errors.New("core: equilibrium carries no HJB solution")
	}
	p := eq.Config.Params
	xConst = numerics.Clamp01(xConst)
	channel, err := mec.NewChannelModel(p)
	if err != nil {
		return 0, err
	}
	ou := channel.OU()
	drift := sde.CacheDrift{Qk: p.Qk, W1: p.W1, W2: p.W2, W3: p.W3, Xi: p.Xi, SigmaQ: p.SigmaQ}
	rng := sde.NewRNG(seed)

	steps := eq.Time.Steps
	dt := eq.Time.Dt()
	h, q := h0, q0
	var cum float64
	for n := 0; n < steps; n++ {
		t := eq.Time.At(n)
		snap := eq.SnapshotAt(t)
		ctx, err := mec.NewUtilityContext(p, channel)
		if err != nil {
			return 0, err
		}
		ctx.Price = snap.Price
		ctx.QBar = snap.QBar
		ctx.ShareBenefit = snap.ShareBenefit
		ctx.Requests = eq.Workload.Requests
		ctx.Pop = eq.Workload.Pop
		ctx.Timeliness = eq.Workload.Timeliness
		ctx.ShareEnabled = eq.Config.ShareEnabled
		cum += ctx.Utility(xConst, h, q) * dt

		sq := math.Sqrt(dt)
		h += ou.Drift(t, h)*dt + ou.Diffusion(t, h)*sq*rng.NormFloat64()
		h = sde.ReflectInto(h, eq.Grid.H.Min, eq.Grid.H.Max)
		q += drift.Rate(xConst, eq.Workload.Pop, eq.Workload.Timeliness)*dt + drift.SigmaQ*sq*rng.NormFloat64()
		q = sde.ReflectInto(q, eq.Grid.Q.Min, eq.Grid.Q.Max)
	}
	return cum, nil
}

// Package engine is the reusable solver layer behind the MFG-CP framework:
// it owns the mean-field estimator (Eqs. 14–18), the iterative best-response
// learning scheme that drives the coupled HJB–FPK system to a mean-field
// equilibrium (Algorithm 2), and the representative-agent rollouts evaluated
// along equilibrium trajectories.
//
// The package turns the one-shot solver of earlier revisions into a service
// layer with three building blocks:
//
//   - a Session owning every grid, tridiagonal, value and density workspace,
//     so the damped best-response loop runs with zero per-iteration heap
//     allocations and repeated solves reuse the same buffers;
//   - pluggable pde.Scheme time integrators (implicit splitting by default,
//     the CFL-bounded explicit integrator as an ablation), selected through
//     Config.Scheme instead of separate entry points;
//   - a bounded, concurrency-safe Cache of solved equilibria keyed by a
//     canonical encoding of (quantised params, workload, grid resolution),
//     giving the policy and simulation layers warm-start reuse across
//     contents and epochs.
//
// internal/core re-exports everything here for compatibility.
package engine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/pde"
)

// Workload is the per-epoch, per-content demand descriptor feeding one
// equilibrium computation: the request load |I_k|, the current popularity
// Π_k(t) and the timeliness level L_k(t). Algorithm 1 refreshes these from
// the trace at the start of every optimisation epoch and holds them fixed
// within it ("the change in requesters' demands occurs at a relatively slow
// rate compared to the time scale of the optimization epoch").
type Workload struct {
	Requests   float64
	Pop        float64
	Timeliness float64
}

// Validate checks the workload descriptor. NaN compares false against every
// bound, so the range guards alone would wave non-finite workloads through
// into the solver (where they poison every iterate); reject them explicitly,
// mirroring the config validation.
func (w Workload) Validate() error {
	if math.IsNaN(w.Requests) || math.IsInf(w.Requests, 0) || w.Requests < 0 {
		return fmt.Errorf("core: workload requests must be non-negative and finite, got %g", w.Requests)
	}
	if math.IsNaN(w.Pop) || w.Pop < 0 || w.Pop > 1 {
		return fmt.Errorf("core: workload popularity must lie in [0,1], got %g", w.Pop)
	}
	if math.IsNaN(w.Timeliness) || math.IsInf(w.Timeliness, 0) || w.Timeliness < 0 {
		return fmt.Errorf("core: workload timeliness must be non-negative and finite, got %g", w.Timeliness)
	}
	return nil
}

// Config controls one mean-field equilibrium computation (Algorithm 2).
type Config struct {
	Params mec.Params

	// Grid resolution: NH×NQ state nodes, Steps time intervals over the
	// horizon T.
	NH, NQ, Steps int

	// MaxIters is ψ_th, the cap on best-response iterations; Tol is the
	// sup-norm threshold on the strategy change |x^ψ − x^(ψ−1)| below which
	// the iteration stops (Algorithm 2, line 6).
	MaxIters int
	Tol      float64

	// Damping γ ∈ (0,1] relaxes the strategy update,
	// x ← (1−γ)·x_old + γ·x_new, which accelerates and robustifies the
	// fixed-point iteration (γ=1 reproduces the undamped Algorithm 2).
	Damping float64

	// BlowupResidual is the strategy-residual threshold above which the
	// best-response iteration is declared divergent and abandoned with
	// ErrDiverged instead of burning the remaining iteration budget. Zero
	// selects the default of 1e8; the caching rate lives in [0,1], so any
	// genuine iterate keeps the residual at or below 1.
	BlowupResidual float64

	// FPKForm selects the forward-equation discretisation (conservative by
	// default; pde.Advective reproduces the paper-literal Eq. 15).
	FPKForm pde.FPKForm

	// Stepping selects the time integrator of both PDEs (implicit by
	// default; pde.Explicit is the CFL-bounded ablation). Scheme, when set,
	// takes precedence.
	Stepping pde.Stepping

	// Scheme selects the time integrator by name ("implicit" or "explicit";
	// see pde.SchemeNames). The empty string defers to Stepping, keeping old
	// configurations working.
	Scheme string

	// Kernel tunes how the PDE sweeps execute: Workers bounds the parallel
	// line-sweep fan-out (partitioning is invisible in the results — the
	// default float64 path is bit-exact at every worker count), Precision
	// opts into the float32 fast kernel (implicit scheme only; changes the
	// computed solution within single-precision tolerance, so it separates
	// cache keys while Workers does not). The zero value is the serial
	// float64 kernel.
	Kernel pde.KernelConfig

	// ShareEnabled distinguishes MFG-CP (true) from the MFG baseline
	// without peer sharing (false).
	ShareEnabled bool

	// InitLambda optionally overrides the initial density (flattened over
	// the grid). When nil, the Section-V initialisation is used: Gaussian
	// over q with mean InitMeanFrac·Qk and sd InitStdFrac·Qk, and the OU
	// stationary Gaussian over h.
	InitLambda []float64

	// WarmStart optionally seeds the best-response iteration with the
	// strategy and density paths of a previously solved equilibrium on the
	// same grid and time mesh (Algorithm 1 runs one solve per content per
	// epoch; slowly-varying workloads converge in far fewer iterations from
	// the previous epoch's fixed point).
	WarmStart *Equilibrium

	// Surrogate points solves at a precomputed interpolation table (written
	// by `mfgcp precompute`): serving layers consult the table before the
	// engine and fall through to a real solve when the request is outside
	// the table's trust region. The engine itself ignores the field — a
	// Session always computes the true equilibrium — so it is excluded from
	// CacheKey: routing configuration must not fragment the equilibrium
	// cache.
	Surrogate SurrogateConfig

	// Obs receives solver telemetry — per-iteration residual events, HJB and
	// FPK pass spans, convergence counters ("core.solver.*" names) and the
	// engine-layer session/cache counters ("engine.*" names). Nil means
	// no-op: library users and tests opt in explicitly, and the hot loops pay
	// nothing by default. The field is dropped from serialised archives.
	Obs obs.Recorder
}

// SurrogateConfig routes solves at a precomputed equilibrium table. The zero
// value disables the surrogate tier entirely.
type SurrogateConfig struct {
	// Path of the table file written by `mfgcp precompute`. Empty disables
	// surrogate answers.
	Path string
	// MaxErrorBound, when positive, tightens the trust region: a table cell
	// whose declared interpolation error bound exceeds it falls through to a
	// real solve even though the request lies inside the lattice. Zero
	// accepts every finite declared bound.
	MaxErrorBound float64
}

// Validate checks the surrogate routing configuration.
func (s SurrogateConfig) Validate() error {
	if math.IsNaN(s.MaxErrorBound) || math.IsInf(s.MaxErrorBound, 0) || s.MaxErrorBound < 0 {
		return fmt.Errorf("core: surrogate MaxErrorBound must be non-negative and finite, got %g", s.MaxErrorBound)
	}
	return nil
}

// DefaultConfig returns the solver configuration used by the experiments.
func DefaultConfig(p mec.Params) Config {
	return Config{
		Params:       p,
		NH:           13,
		NQ:           61,
		Steps:        120,
		MaxIters:     40,
		Tol:          1e-3,
		Damping:      0.6,
		FPKForm:      pde.Conservative,
		ShareEnabled: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.NH < 3 || c.NQ < 3 {
		return fmt.Errorf("core: grid must be at least 3×3, got %d×%d", c.NH, c.NQ)
	}
	if c.Steps < 2 {
		return fmt.Errorf("core: need at least 2 time steps, got %d", c.Steps)
	}
	if c.MaxIters < 1 {
		return fmt.Errorf("core: MaxIters must be ≥ 1, got %d", c.MaxIters)
	}
	// NaN fails every comparison, so "residual < Tol" with Tol = NaN would
	// never stop the iteration early and "residual < +Inf" would stop it
	// immediately: both are configuration bugs, rejected here explicitly.
	if math.IsNaN(c.Tol) || math.IsInf(c.Tol, 0) || !(c.Tol > 0) {
		return fmt.Errorf("core: Tol must be positive and finite, got %g", c.Tol)
	}
	if math.IsNaN(c.Damping) || !(c.Damping > 0 && c.Damping <= 1) {
		return fmt.Errorf("core: Damping must lie in (0,1], got %g", c.Damping)
	}
	if math.IsNaN(c.BlowupResidual) || math.IsInf(c.BlowupResidual, 0) || c.BlowupResidual < 0 {
		return fmt.Errorf("core: BlowupResidual must be non-negative and finite, got %g", c.BlowupResidual)
	}
	sch, err := c.scheme()
	if err != nil {
		return err
	}
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.Kernel.Precision == pde.PrecisionFloat32 && sch.Stepping() != pde.Implicit {
		return errors.New("core: the float32 kernel supports the implicit scheme only")
	}
	return c.Surrogate.Validate()
}

// scheme resolves the configured time integrator: Scheme by name when set,
// otherwise the legacy Stepping constant.
func (c Config) scheme() (pde.Scheme, error) {
	if c.Scheme != "" {
		return pde.SchemeByName(c.Scheme)
	}
	return pde.SchemeFor(c.Stepping)
}

// Equilibrium is the solved mean-field equilibrium for one content over one
// optimisation epoch: the value function and optimal strategy (HJB), the
// mean-field density path (FPK), the estimator snapshots at every time node,
// and the convergence diagnostics of the best-response iteration.
type Equilibrium struct {
	Config   Config
	Workload Workload
	Grid     grid.Grid2D
	Time     grid.TimeMesh

	HJB       *pde.HJBSolution
	FPK       *pde.FPKSolution
	Snapshots []Snapshot

	Iterations int
	Converged  bool
	// Residuals[i] is the sup-norm strategy change after iteration i+1.
	Residuals []float64
}

// ErrNotConverged is wrapped by Solve when the best-response iteration hits
// MaxIters with a residual above Tol. The partially converged equilibrium is
// still returned alongside it so callers can inspect diagnostics.
var ErrNotConverged = errors.New("core: best-response iteration did not converge")

// ErrDiverged is wrapped by Solve when the best-response iteration produces a
// non-finite iterate (NaN/Inf residual or density) or blows past
// Config.BlowupResidual. Unlike ErrNotConverged, the iterates are numerically
// meaningless, so no partial equilibrium accompanies it; callers recover by
// escalating the solve configuration (see internal/resilience).
var ErrDiverged = errors.New("core: best-response iteration diverged")

// SnapshotAt returns the estimator snapshot nearest to time t.
func (eq *Equilibrium) SnapshotAt(t float64) Snapshot {
	n := int(t/eq.Time.Dt() + 0.5)
	if n < 0 {
		n = 0
	}
	if n >= len(eq.Snapshots) {
		n = len(eq.Snapshots) - 1
	}
	return eq.Snapshots[n]
}

// MarginalQ returns the q-marginal of the mean-field density at time index n
// (the quantity plotted in Figs. 4, 6 and 7).
func (eq *Equilibrium) MarginalQ(n int) ([]float64, error) {
	if eq.FPK == nil {
		return nil, errors.New("core: equilibrium has no FPK solution")
	}
	if n < 0 || n >= len(eq.FPK.Lambda) {
		return nil, fmt.Errorf("core: time index %d out of range [0,%d)", n, len(eq.FPK.Lambda))
	}
	dst := make([]float64, eq.Grid.Q.N)
	if err := numerics.MarginalQ(eq.Grid, dst, eq.FPK.Lambda[n]); err != nil {
		return nil, err
	}
	return dst, nil
}

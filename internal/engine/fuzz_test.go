package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mec"
)

// seedCorpus adds the testdata seed document plus the structural edge cases
// every decoder must survive: empty, sparse, invalid value, unknown key,
// non-JSON bytes.
func seedCorpus(f *testing.F, seedFile string) {
	data, err := os.ReadFile(filepath.Join("testdata", seedFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Qk": -1}`))
	f.Add([]byte(`{"Unknown": 1}`))
	f.Add([]byte(`{"Qk": 1e999}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
}

// FuzzDecodeParams pins the external-input contract of the parameter codec:
// whatever bytes arrive (HTTP bodies, -config files), DecodeParams either
// errors or returns a parameter set that passes Validate — never a panic,
// never NaN/Inf smuggled past the merge — and the accepted result re-encodes
// and re-decodes to itself (the merge is idempotent on its own output).
func FuzzDecodeParams(f *testing.F) {
	seedCorpus(f, "fuzz_params_seed.json")
	base := mec.Default()
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeParams(data, base)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted params fail validation: %v\ninput: %q", verr, data)
		}
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted params do not re-encode: %v", err)
		}
		p2, err := DecodeParams(enc, base)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v\n%s", err, enc)
		}
		if p2 != p {
			t.Fatalf("decode not idempotent:\n got %+v\nwant %+v", p2, p)
		}
	})
}

// FuzzDecodeConfig is the same contract for the solver-config codec, whose
// merge semantics carry nested Params and slice-valued fields: accepted
// configurations validate and are stable under re-encode/re-decode.
func FuzzDecodeConfig(f *testing.F) {
	seedCorpus(f, "fuzz_config_seed.json")
	base := DefaultConfig(mec.Default())
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeConfig(data, base)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails validation: %v\ninput: %q", verr, data)
		}
		enc1, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not re-encode: %v", err)
		}
		cfg2, err := DecodeConfig(enc1, base)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v\n%s", err, enc1)
		}
		enc2, err := json.Marshal(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("decode not idempotent:\n got %s\nwant %s", enc2, enc1)
		}
	})
}

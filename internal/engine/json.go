package engine

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/mec"
	"repro/internal/pde"
)

// This file is the JSON codec of the solver configuration — the canonical
// wire form shared by the serving daemon's request decoder, the CLI's
// `-config file.json` flag and library callers. The runtime-only fields
// (Obs, WarmStart) are deliberately excluded: a recorder and a warm-start
// equilibrium are process-local handles, not configuration.
//
// Unmarshalling MERGES onto the receiver: fields absent from the JSON keep
// the receiver's current value, so decoding a sparse document onto
// DefaultConfig(params) yields a fully populated configuration. Unknown keys
// are rejected (a typo in a config file or HTTP request must not silently
// fall back to a default), and NaN/Inf can never arrive through JSON — the
// grammar has no literal for them, and Validate rejects any that a library
// caller constructs directly.

// configJSON mirrors Config's serialisable surface.
type configJSON struct {
	Params         mec.Params
	NH, NQ, Steps  int
	MaxIters       int
	Tol            float64
	Damping        float64
	BlowupResidual float64
	FPKForm        int
	Stepping       int
	Scheme         string
	Kernel         pde.KernelConfig
	Surrogate      SurrogateConfig
	ShareEnabled   bool
	InitLambda     []float64 `json:",omitempty"`
}

func (c Config) toJSON() configJSON {
	return configJSON{
		Params:         c.Params,
		NH:             c.NH,
		NQ:             c.NQ,
		Steps:          c.Steps,
		MaxIters:       c.MaxIters,
		Tol:            c.Tol,
		Damping:        c.Damping,
		BlowupResidual: c.BlowupResidual,
		FPKForm:        int(c.FPKForm),
		Stepping:       int(c.Stepping),
		Scheme:         c.Scheme,
		Kernel:         c.Kernel,
		Surrogate:      c.Surrogate,
		ShareEnabled:   c.ShareEnabled,
		InitLambda:     c.InitLambda,
	}
}

func (j configJSON) apply(c *Config) {
	c.Params = j.Params
	c.NH, c.NQ, c.Steps = j.NH, j.NQ, j.Steps
	c.MaxIters = j.MaxIters
	c.Tol = j.Tol
	c.Damping = j.Damping
	c.BlowupResidual = j.BlowupResidual
	c.FPKForm = pde.FPKForm(j.FPKForm)
	c.Stepping = pde.Stepping(j.Stepping)
	c.Scheme = j.Scheme
	c.Kernel = j.Kernel
	c.Surrogate = j.Surrogate
	c.ShareEnabled = j.ShareEnabled
	c.InitLambda = j.InitLambda
}

// MarshalJSON implements json.Marshaler, emitting the serialisable subset of
// the configuration (Obs and WarmStart are process-local and dropped).
func (c Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.toJSON())
}

// UnmarshalJSON implements json.Unmarshaler with merge semantics: fields
// absent from data keep the receiver's current values, unknown fields are an
// error. Obs and WarmStart are preserved untouched. Callers validate the
// merged result with Validate.
func (c *Config) UnmarshalJSON(data []byte) error {
	shadow := c.toJSON()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&shadow); err != nil {
		return fmt.Errorf("core: decode solver config: %w", err)
	}
	shadow.apply(c)
	return nil
}

// DecodeConfig decodes a JSON document onto base (merge semantics) and
// validates the result: the one entry point behind every external config
// source — HTTP request bodies and `-config` files alike.
func DecodeConfig(data []byte, base Config) (Config, error) {
	cfg := base
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// DecodeParams decodes a JSON document onto base (merge semantics, unknown
// fields rejected) and validates the merged parameter set.
func DecodeParams(data []byte, base mec.Params) (mec.Params, error) {
	p := base
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return mec.Params{}, fmt.Errorf("core: decode params: %w", err)
	}
	if err := p.Validate(); err != nil {
		return mec.Params{}, err
	}
	return p, nil
}

// DecodeWorkload decodes a JSON workload document (unknown fields rejected)
// and validates it.
func DecodeWorkload(data []byte) (Workload, error) {
	var w Workload
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Workload{}, fmt.Errorf("core: decode workload: %w", err)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

package engine

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/mec"
	"repro/internal/pde"
)

// kernelConfig returns a configuration whose grid is large enough to engage
// the parallel line-sweep phases (see pde's engagement thresholds).
func kernelConfig() (Config, Workload) {
	cfg := DefaultConfig(mec.Default())
	cfg.NH = 41
	cfg.NQ = 101
	cfg.Steps = 30
	return cfg, Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

// TestGoldenEquivalenceParallelKernel extends the refactor guard to the
// parallel kernel: with sweep workers enabled, the engine must still
// reproduce the pre-refactor equilibrium bit-for-bit — the line-sweep
// partition is invisible in the results.
func TestGoldenEquivalenceParallelKernel(t *testing.T) {
	g := loadGolden(t)
	cfg, w := goldenConfig(g)
	cfg.Kernel = pde.KernelConfig{Workers: 4}
	eq, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	const tol = 1e-12
	if d := maxAbsDiff(t, "V0", eq.HJB.V[0], g.V0); d > tol {
		t.Errorf("parallel kernel: V(0,·) differs by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "X0", eq.HJB.X[0], g.X0); d > tol {
		t.Errorf("parallel kernel: x*(0,·) differs by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "LambdaT", eq.FPK.Lambda[g.Steps], g.LambdaT); d > tol {
		t.Errorf("parallel kernel: λ(T,·) differs by %g (> %g)", d, tol)
	}
	if eq.Iterations != g.Iterations {
		t.Errorf("parallel kernel: iterations %d, golden %d", eq.Iterations, g.Iterations)
	}
}

// TestKernelWorkersBitExactOnLargeGrid runs the worker-count invariance on a
// grid big enough that every parallel phase actually engages (the golden grid
// sits below the engagement thresholds).
func TestKernelWorkersBitExactOnLargeGrid(t *testing.T) {
	cfg, w := kernelConfig()
	ref, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("serial solve: %v", err)
	}
	cfg.Kernel.Workers = 4
	got, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("parallel solve: %v", err)
	}
	if got.Iterations != ref.Iterations {
		t.Fatalf("iterations: serial %d, parallel %d", ref.Iterations, got.Iterations)
	}
	for n := range ref.HJB.X {
		for k := range ref.HJB.X[n] {
			if got.HJB.X[n][k] != ref.HJB.X[n][k] || got.HJB.V[n][k] != ref.HJB.V[n][k] {
				t.Fatalf("V/X differ at level %d, index %d with 4 workers", n, k)
			}
		}
	}
	for n := range ref.FPK.Lambda {
		for k := range ref.FPK.Lambda[n] {
			if got.FPK.Lambda[n][k] != ref.FPK.Lambda[n][k] {
				t.Fatalf("λ differs at level %d, index %d with 4 workers", n, k)
			}
		}
	}
}

// TestSessionZeroAllocParallelKernel pins the zero-allocation contract for
// the parallel and float32 kernels: once warmed up, one best-response
// iteration must not allocate regardless of the kernel configuration.
func TestSessionZeroAllocParallelKernel(t *testing.T) {
	for _, kc := range []pde.KernelConfig{
		{Workers: 4},
		{Workers: 2, Precision: pde.PrecisionFloat32},
	} {
		t.Run(fmt.Sprintf("workers=%d,precision=%s", kc.Workers, kc.Precision), func(t *testing.T) {
			cfg, w := kernelConfig()
			cfg.Kernel = kc
			s, err := NewSession(cfg)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			if err := s.begin(w, nil); err != nil {
				t.Fatalf("begin: %v", err)
			}
			for i := 0; i < 2; i++ {
				if _, err := s.iterate(i + 1); err != nil {
					t.Fatalf("warm-up iterate: %v", err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := s.iterate(3); err != nil {
					t.Fatalf("iterate: %v", err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state iteration with kernel %+v allocates %.1f objects/op, want 0", kc, allocs)
			}
		})
	}
}

// TestFloat32KernelSolves: the opt-in fast path must converge to an
// equilibrium on the standard configuration. The accuracy contract against
// the float64 solution lives in the verify layer's precision harness.
func TestFloat32KernelSolves(t *testing.T) {
	cfg, w := smallConfig()
	cfg.Kernel.Precision = pde.PrecisionFloat32
	eq, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("float32 solve: %v", err)
	}
	if !eq.Converged {
		t.Fatal("float32 solve did not converge")
	}
}

// TestKernelConfigValidation: bad kernel configurations are rejected at
// config time, including the float32+explicit combination the pde layer
// would reject at solve time.
func TestKernelConfigValidation(t *testing.T) {
	cfg, _ := smallConfig()
	cfg.Kernel.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative kernel workers accepted")
	}
	cfg, _ = smallConfig()
	cfg.Kernel.Precision = "float16"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown kernel precision accepted")
	}
	cfg, _ = smallConfig()
	cfg.Scheme = "explicit"
	cfg.Kernel.Precision = pde.PrecisionFloat32
	if err := cfg.Validate(); err == nil {
		t.Error("float32 + explicit scheme accepted")
	}
}

// TestCacheKeyKernel: precision changes the computed solution and must
// separate cache keys; the worker count never changes results and must not.
func TestCacheKeyKernel(t *testing.T) {
	cfg, w := smallConfig()
	base := CacheKey(cfg, w)

	cfg.Kernel.Workers = 8
	if CacheKey(cfg, w) != base {
		t.Error("worker count changed the cache key; partitioning is result-invisible")
	}
	cfg.Kernel.Workers = 0

	cfg.Kernel.Precision = pde.PrecisionFloat64
	if CacheKey(cfg, w) != base {
		t.Error(`explicit "float64" precision changed the cache key; it is the default path`)
	}
	cfg.Kernel.Precision = pde.PrecisionFloat32
	if CacheKey(cfg, w) == base {
		t.Error("float32 precision did not change the cache key")
	}
}

// TestKernelConfigJSON: the kernel block round-trips through the config
// codec, merges onto defaults, and rejects unknown keys inside it.
func TestKernelConfigJSON(t *testing.T) {
	cfg, _ := smallConfig()
	cfg.Kernel = pde.KernelConfig{Workers: 4, Precision: pde.PrecisionFloat32}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Config
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Kernel != cfg.Kernel {
		t.Errorf("kernel round-trip: got %+v, want %+v", got.Kernel, cfg.Kernel)
	}

	merged, _ := smallConfig()
	if err := json.Unmarshal([]byte(`{"Kernel":{"Workers":2}}`), &merged); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Kernel.Workers != 2 || merged.Kernel.Precision != "" {
		t.Errorf("sparse kernel merge: got %+v", merged.Kernel)
	}

	bad, _ := smallConfig()
	if err := json.Unmarshal([]byte(`{"Kernel":{"Threads":2}}`), &bad); err == nil {
		t.Error("unknown kernel key accepted")
	}
}

// BenchmarkEngineSolveColdKernel measures a full cold equilibrium solve on a
// sweep-heavy grid across kernel configurations. The batched h-sweeps carry
// the speedup on small machines; worker scaling shows on multi-core hosts.
func BenchmarkEngineSolveColdKernel(b *testing.B) {
	cfg, w := kernelConfig()
	run := func(b *testing.B, kc pde.KernelConfig) {
		c := cfg
		c.Kernel = kc
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Solve(c, w); err != nil {
				b.Fatalf("Solve: %v", err)
			}
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run(b, pde.KernelConfig{Workers: workers})
		})
	}
	b.Run("float32", func(b *testing.B) {
		run(b, pde.KernelConfig{Workers: 4, Precision: pde.PrecisionFloat32})
	})
}

package engine

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/mec"
)

// TestValidateRejectsNonFinite pins the configuration hardening: NaN and
// infinite tolerances, damping factors and blow-up thresholds must be rejected
// at Validate time. NaN fails every comparison, so a NaN Tol would make
// "residual < Tol" permanently false (the solve burns its whole iteration
// budget), while Tol = +Inf converges instantly to garbage — neither may pass.
func TestValidateRejectsNonFinite(t *testing.T) {
	base := DefaultConfig(mec.Default())
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"NaN Tol", func(c *Config) { c.Tol = math.NaN() }},
		{"+Inf Tol", func(c *Config) { c.Tol = math.Inf(1) }},
		{"zero Tol", func(c *Config) { c.Tol = 0 }},
		{"negative Tol", func(c *Config) { c.Tol = -1e-6 }},
		{"NaN Damping", func(c *Config) { c.Damping = math.NaN() }},
		{"zero Damping", func(c *Config) { c.Damping = 0 }},
		{"Damping above 1", func(c *Config) { c.Damping = 1.5 }},
		{"NaN BlowupResidual", func(c *Config) { c.BlowupResidual = math.NaN() }},
		{"+Inf BlowupResidual", func(c *Config) { c.BlowupResidual = math.Inf(1) }},
		{"negative BlowupResidual", func(c *Config) { c.BlowupResidual = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("Validate rejected the default config: %v", err)
	}
}

// TestSolveContextCanceled verifies a solve under an already-cancelled context
// aborts promptly with the context error instead of running to completion.
func TestSolveContextCanceled(t *testing.T) {
	cfg, w := smallConfig()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx, w, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext under cancelled context: got %v, want context.Canceled", err)
	}
}

// TestSolveDivergenceDetection forces the blow-up guard by setting the
// threshold below the first residual: the solve must fail fast with
// ErrDiverged instead of iterating on a non-finite or runaway iterate.
func TestSolveDivergenceDetection(t *testing.T) {
	cfg, w := smallConfig()
	cfg.BlowupResidual = 1e-300 // every residual exceeds this
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	eq, err := s.Solve(w, nil)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("Solve with tiny blow-up threshold: got %v, want ErrDiverged", err)
	}
	if eq != nil {
		t.Fatalf("diverged solve returned an equilibrium")
	}
}

// TestCacheExportRestore round-trips a populated cache through Export/Restore
// and checks the LRU order survives: the restored cache must evict in the same
// order as the original would have.
func TestCacheExportRestore(t *testing.T) {
	cfg, w := smallConfig()
	eq, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	src, err := NewCache(3)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	src.Put(nil, "a", eq)
	src.Put(nil, "b", eq)
	src.Put(nil, "c", eq)
	if _, ok := src.Get(nil, "a"); !ok { // touch "a": LRU order is now b, c, a
		t.Fatal("missing key a")
	}

	exported := src.Export()
	if len(exported) != 3 {
		t.Fatalf("Export returned %d entries, want 3", len(exported))
	}
	wantOrder := []string{"b", "c", "a"} // LRU first
	for i, e := range exported {
		if e.Key != wantOrder[i] {
			t.Fatalf("export order[%d] = %q, want %q", i, e.Key, wantOrder[i])
		}
	}

	dst, err := NewCache(3)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	dst.Restore(exported)
	if dst.Len() != 3 {
		t.Fatalf("restored cache has %d entries, want 3", dst.Len())
	}
	// One more insert must evict the LRU entry "b", proving order survived.
	dst.Put(nil, "d", eq)
	if _, ok := dst.Get(nil, "b"); ok {
		t.Fatal("LRU entry b survived the capacity eviction: restore lost the order")
	}
	for _, k := range []string{"c", "a", "d"} {
		if _, ok := dst.Get(nil, k); !ok {
			t.Fatalf("restored cache missing key %q", k)
		}
	}
}

package engine

import (
	"testing"

	"repro/internal/mec"
)

func smallConfig() (Config, Workload) {
	cfg := DefaultConfig(mec.Default())
	cfg.NH = 7
	cfg.NQ = 21
	cfg.Steps = 30
	return cfg, Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

// TestSessionSteadyStateZeroAlloc pins the engine's core guarantee: once a
// session is warmed up, one damped best-response iteration performs zero heap
// allocations (telemetry disabled). Regressions here silently reintroduce
// the per-iteration garbage the engine layer was built to eliminate.
func TestSessionSteadyStateZeroAlloc(t *testing.T) {
	cfg, w := smallConfig()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.begin(w, nil); err != nil {
		t.Fatalf("begin: %v", err)
	}
	// Warm-up iterations let one-time lazy paths (if any) settle.
	for i := 0; i < 2; i++ {
		if _, err := s.iterate(i + 1); err != nil {
			t.Fatalf("warm-up iterate: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.iterate(3); err != nil {
			t.Fatalf("iterate: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state best-response iteration allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSessionSolveMatchesOneShot confirms the reusable-session path and the
// package-level one-shot path produce identical equilibria.
func TestSessionSolveMatchesOneShot(t *testing.T) {
	cfg, w := smallConfig()
	oneShot, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	viaSession, err := s.Solve(w, nil)
	if err != nil {
		t.Fatalf("session Solve: %v", err)
	}
	if oneShot.Iterations != viaSession.Iterations {
		t.Errorf("iterations: one-shot %d, session %d", oneShot.Iterations, viaSession.Iterations)
	}
	for n := range oneShot.HJB.X {
		for k := range oneShot.HJB.X[n] {
			if oneShot.HJB.X[n][k] != viaSession.HJB.X[n][k] {
				t.Fatalf("X[%d][%d]: one-shot %g, session %g", n, k, oneShot.HJB.X[n][k], viaSession.HJB.X[n][k])
			}
		}
	}
}

// TestSessionWarmStartConverges checks that warm-starting from a neighbouring
// workload's equilibrium never takes more iterations than the cold start.
func TestSessionWarmStartConverges(t *testing.T) {
	cfg, w := smallConfig()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	base, err := s.Solve(w, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	near := Workload{Requests: w.Requests * 1.02, Pop: w.Pop, Timeliness: w.Timeliness}
	cold, err := s.Solve(near, nil)
	if err != nil {
		t.Fatalf("cold near solve: %v", err)
	}
	warm, err := s.Solve(near, base)
	if err != nil {
		t.Fatalf("warm near solve: %v", err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d iterations, cold start %d", warm.Iterations, cold.Iterations)
	}
	if !warm.Converged {
		t.Errorf("warm-started solve did not converge")
	}
}

// BenchmarkEngineSession measures one steady-state best-response iteration on
// the experiments' default grid. CI runs it with -benchmem and fails if it
// reports a non-zero allocs/op.
func BenchmarkEngineSession(b *testing.B) {
	cfg := DefaultConfig(mec.Default())
	w := Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
	s, err := NewSession(cfg)
	if err != nil {
		b.Fatalf("NewSession: %v", err)
	}
	if err := s.begin(w, nil); err != nil {
		b.Fatalf("begin: %v", err)
	}
	if _, err := s.iterate(1); err != nil {
		b.Fatalf("warm-up iterate: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.iterate(2); err != nil {
			b.Fatalf("iterate: %v", err)
		}
	}
}

// BenchmarkEngineSolveCold measures a full cold equilibrium solve (session
// construction included) for comparison with the warm-started path.
func BenchmarkEngineSolveCold(b *testing.B) {
	cfg, w := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cfg, w); err != nil {
			b.Fatalf("Solve: %v", err)
		}
	}
}

// BenchmarkEngineSolveWarm measures a repeated same-workload solve seeded
// with the previous fixed point on a reused session — the cache warm-start
// path of the policy layer.
func BenchmarkEngineSolveWarm(b *testing.B) {
	cfg, w := smallConfig()
	s, err := NewSession(cfg)
	if err != nil {
		b.Fatalf("NewSession: %v", err)
	}
	base, err := s.Solve(w, nil)
	if err != nil {
		b.Fatalf("base solve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(w, base); err != nil {
			b.Fatalf("warm solve: %v", err)
		}
	}
}

package engine

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/mec"
)

// goldenFingerprint is the bit-level fingerprint of one pre-refactor
// core.Solve run, captured on the monolithic solver before the engine layer
// existed (see testdata/golden_small.json). Float64 values are stored as
// math.Float64bits words so the comparison is exact, not approximate.
type goldenFingerprint struct {
	NH, NQ, Steps, MaxIters int
	Tol, Damping            float64
	Requests, Pop           float64
	Timeliness              float64

	Iterations int
	Converged  bool
	Residuals  []uint64
	V0         []uint64
	X0         []uint64
	LambdaT    []uint64
	Price0     uint64
	PriceT     uint64
}

func loadGolden(t *testing.T) goldenFingerprint {
	t.Helper()
	raw, err := os.ReadFile("testdata/golden_small.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var g goldenFingerprint
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	return g
}

func goldenConfig(g goldenFingerprint) (Config, Workload) {
	cfg := DefaultConfig(mec.Default())
	cfg.NH = g.NH
	cfg.NQ = g.NQ
	cfg.Steps = g.Steps
	cfg.MaxIters = g.MaxIters
	cfg.Tol = g.Tol
	cfg.Damping = g.Damping
	w := Workload{Requests: g.Requests, Pop: g.Pop, Timeliness: g.Timeliness}
	return cfg, w
}

// maxULPDiff compares a solved float64 slice against golden bit words and
// returns the largest absolute difference.
func maxAbsDiff(t *testing.T, name string, got []float64, want []uint64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, golden has %d", name, len(got), len(want))
	}
	var worst float64
	for i := range got {
		d := math.Abs(got[i] - math.Float64frombits(want[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestGoldenEquivalence guards the multi-layer refactor: the engine session
// must reproduce the pre-refactor core.Solve equilibrium (V, x*, λ, price
// path, residual history) within 1e-12 on the captured small grid. The
// solver's numerics were reorganised buffer-for-buffer, so in practice the
// agreement is exact to the bit; the 1e-12 bound is the acceptance criterion.
func TestGoldenEquivalence(t *testing.T) {
	g := loadGolden(t)
	cfg, w := goldenConfig(g)
	eq, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if eq.Iterations != g.Iterations {
		t.Errorf("iterations: got %d, golden %d", eq.Iterations, g.Iterations)
	}
	if eq.Converged != g.Converged {
		t.Errorf("converged: got %v, golden %v", eq.Converged, g.Converged)
	}
	if len(eq.Residuals) != len(g.Residuals) {
		t.Fatalf("residuals: got %d entries, golden %d", len(eq.Residuals), len(g.Residuals))
	}
	const tol = 1e-12
	if d := maxAbsDiff(t, "residuals", eq.Residuals, g.Residuals); d > tol {
		t.Errorf("residual history differs from pre-refactor solver by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "V0", eq.HJB.V[0], g.V0); d > tol {
		t.Errorf("V(0,·) differs from pre-refactor solver by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "X0", eq.HJB.X[0], g.X0); d > tol {
		t.Errorf("x*(0,·) differs from pre-refactor solver by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "LambdaT", eq.FPK.Lambda[g.Steps], g.LambdaT); d > tol {
		t.Errorf("λ(T,·) differs from pre-refactor solver by %g (> %g)", d, tol)
	}
	if d := math.Abs(eq.Snapshots[0].Price - math.Float64frombits(g.Price0)); d > tol {
		t.Errorf("price(0) differs from pre-refactor solver by %g (> %g)", d, tol)
	}
	if d := math.Abs(eq.Snapshots[g.Steps].Price - math.Float64frombits(g.PriceT)); d > tol {
		t.Errorf("price(T) differs from pre-refactor solver by %g (> %g)", d, tol)
	}
}

// TestGoldenEquivalenceSessionReuse solves a different workload first and the
// golden one second on the same session: buffer reuse across solves must not
// leak state between solves.
func TestGoldenEquivalenceSessionReuse(t *testing.T) {
	g := loadGolden(t)
	cfg, w := goldenConfig(g)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Solve(Workload{Requests: 25, Pop: 0.8, Timeliness: 4}, nil); err != nil {
		t.Fatalf("first solve: %v", err)
	}
	eq, err := s.Solve(w, nil)
	if err != nil {
		t.Fatalf("second solve: %v", err)
	}
	const tol = 1e-12
	if d := maxAbsDiff(t, "V0", eq.HJB.V[0], g.V0); d > tol {
		t.Errorf("session reuse: V(0,·) differs by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "X0", eq.HJB.X[0], g.X0); d > tol {
		t.Errorf("session reuse: x*(0,·) differs by %g (> %g)", d, tol)
	}
	if d := maxAbsDiff(t, "LambdaT", eq.FPK.Lambda[g.Steps], g.LambdaT); d > tol {
		t.Errorf("session reuse: λ(T,·) differs by %g (> %g)", d, tol)
	}
	if eq.Iterations != g.Iterations {
		t.Errorf("session reuse: iterations %d, golden %d", eq.Iterations, g.Iterations)
	}
}

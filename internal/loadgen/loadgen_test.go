package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

var body = [][]byte{[]byte(`{"Workload": {"Requests": 10, "Pop": 0.2, "Timeliness": 3}}`)}

// TestRunClassification drives a handler that answers a fixed status cycle
// and pins the response taxonomy: 2xx → succeeded (and only those feed the
// latency histogram), 429 → shed, everything else → errors.
func TestRunClassification(t *testing.T) {
	var n atomic.Int64
	statuses := []int{200, 200, 429, 500}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/solve" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if r.Header.Get("X-Request-ID") == "" {
			t.Error("loadgen request missing X-Request-ID")
		}
		w.WriteHeader(statuses[int(n.Add(1)-1)%len(statuses)])
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:   srv.URL,
		RPS:      200,
		Duration: 250 * time.Millisecond,
		Bodies:   body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.Succeeded == 0 || rep.Shed == 0 || rep.Errors == 0 {
		t.Errorf("classification incomplete: %+v", rep)
	}
	if rep.Timeouts != 0 {
		t.Errorf("unexpected timeouts: %d", rep.Timeouts)
	}
	if got := rep.Succeeded + rep.Shed + rep.Errors + rep.Dropped; got != rep.Sent {
		t.Errorf("outcome counts %d do not account for %d sent", got, rep.Sent)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.ShedRate <= 0 || rep.ErrorRate <= 0 {
		t.Errorf("rates not derived: shed=%g err=%g", rep.ShedRate, rep.ErrorRate)
	}
}

// TestRunTimeoutClassification pins that a client deadline counts as a
// timeout, not an error.
func TestRunTimeoutClassification(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() { close(release); srv.Close() }()

	rep, err := Run(context.Background(), Config{
		Target:   srv.URL,
		RPS:      100,
		Duration: 150 * time.Millisecond,
		Timeout:  20 * time.Millisecond,
		Bodies:   body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts == 0 {
		t.Errorf("no timeouts recorded: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("deadline misclassified as error: %+v", rep)
	}
	if rep.TimeoutRate <= 0 {
		t.Errorf("timeout rate not derived: %g", rep.TimeoutRate)
	}
}

// TestSLOVerdict pins the pass/fail gate: a generous SLO passes, an
// unattainable latency bound fails with a violation naming the quantile, and
// a strict no-errors bound fails against a 500-only server.
func TestSLOVerdict(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ok.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer broken.Close()
	base := Config{RPS: 100, Duration: 150 * time.Millisecond, Bodies: body}

	cfg := base
	cfg.Target = ok.URL
	cfg.SLO = SLO{P99Ms: 60_000, MaxErrorRate: 0.5, MaxShedRate: 0.5, MaxTimeoutRate: 0.5}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || len(rep.Violations) != 0 {
		t.Errorf("generous SLO failed: %v", rep.Violations)
	}

	cfg.SLO = SLO{P99Ms: 1e-9}
	rep, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || len(rep.Violations) == 0 {
		t.Fatalf("unattainable p99 SLO passed: %+v", rep)
	}

	cfg = base
	cfg.Target = broken.URL
	cfg.SLO = SLO{MaxErrorRate: 0}
	rep, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Errorf("all-errors run passed a zero-error SLO: %+v", rep)
	}
	// Unchecked sentinel: the same broken server passes when no bound is set.
	cfg.SLO = SLO{MaxErrorRate: Unchecked}
	rep, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("unchecked SLO produced violations: %v", rep.Violations)
	}
}

// TestReportJSONShape pins the report's wire contract consumed by CI and the
// README walkthrough.
func TestReportJSONShape(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		Target: srv.URL, RPS: 100, Duration: 100 * time.Millisecond, Bodies: body,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"target", "sent", "shed_rate", "error_rate", "timeout_rate", "latency_ms", "pass"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	lat, ok := doc["latency_ms"].(map[string]any)
	if !ok {
		t.Fatalf("latency_ms is %T", doc["latency_ms"])
	}
	for _, q := range []string{"p50", "p99", "p999"} {
		if _, ok := lat[q]; !ok {
			t.Errorf("latency summary missing %q", q)
		}
	}
}

// TestRunValidation pins the harness-failure contract.
func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Bodies: body}); err == nil {
		t.Error("missing target accepted")
	}
	if _, err := Run(context.Background(), Config{Target: "http://127.0.0.1:1"}); err == nil {
		t.Error("missing bodies accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Target: "http://127.0.0.1:1", Bodies: body}); err == nil {
		t.Error("pre-cancelled context produced a report")
	}
}

// TestValidateCorrupt200s drives the corruption detector: a server answering
// 200 with garbage bytes must be counted in Corrupt200s and fail the run
// unconditionally, while a well-formed summary passes.
func TestValidateCorrupt200s(t *testing.T) {
	good := []byte(`{"converged": true, "time": [0, 1], "price": [2, 3]}`)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Write([]byte("\x00\xffgarbage that is not JSON"))
			return
		}
		w.Write(good)
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:   srv.URL,
		RPS:      200,
		Duration: 200 * time.Millisecond,
		Bodies:   body,
		Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt200s == 0 {
		t.Fatalf("garbage 200s not detected: %+v", rep)
	}
	if rep.Pass {
		t.Errorf("run with %d corrupt 200s passed", rep.Corrupt200s)
	}

	clean := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(good)
	}))
	defer clean.Close()
	rep, err = Run(context.Background(), Config{
		Target: clean.URL, RPS: 100, Duration: 100 * time.Millisecond, Bodies: body, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt200s != 0 || !rep.Pass {
		t.Errorf("clean bodies flagged: corrupt=%d pass=%v %v", rep.Corrupt200s, rep.Pass, rep.Violations)
	}

	// Shape violations count too, not just broken JSON.
	for _, bad := range []string{
		`{"time": [0], "price": [1]}`,                                         // missing converged
		`{"converged": false, "time": [0, 1], "price": [1]}`,                  // length mismatch
		`{"converged": true, "time": [0], "price": [1], "source": "psychic"}`, // unknown provenance
	} {
		if validateSolveBody([]byte(bad)) == nil {
			t.Errorf("validateSolveBody accepted %s", bad)
		}
	}
	// Every real ladder source passes, as does a pre-source daemon body.
	for _, src := range []string{"surrogate", "cache", "store", "peer", "coalesced", "solve", ""} {
		ok := fmt.Sprintf(`{"converged": true, "time": [0], "price": [1], "source": %q}`, src)
		if err := validateSolveBody([]byte(ok)); err != nil {
			t.Errorf("validateSolveBody rejected source %q: %v", src, err)
		}
	}
}

// TestScrapeServerCounters pins the metrics scrape: the report carries the
// daemon-side counter deltas of the window, including the warm-hit rate the
// chaos gate asserts on.
func TestScrapeServerCounters(t *testing.T) {
	metrics := []string{
		// Scrape 1: the daemon has history already — deltas must subtract it.
		"# TYPE serve_solve_requests_total counter\nserve_solve_requests_total 100\n" +
			"engine_cache_hit_total 40\nstore_hit_total 10\nserve_solve_executed_total 50\n" +
			"serve_surrogate_hit_total 5\n" +
			"cluster_peer_hit_total 2\ncluster_peer_miss_total 1\ncluster_owned_total 10\ncluster_forwarded_total 5\n" +
			"store_corrupt_total_total 1\nbreaker_open_total 2\nserve_breaker_rejected_total 5\n",
		// Scrape 2, after the window.
		"serve_solve_requests_total 200\nengine_cache_hit_total 80\nstore_hit_total 20\n" +
			"serve_solve_executed_total 70\nserve_surrogate_hit_total 30\n" +
			"cluster_peer_hit_total 7\ncluster_peer_miss_total 2\ncluster_owned_total 30\ncluster_forwarded_total 10\n" +
			"store_corrupt_total_total 1\nbreaker_open_total 3\n" +
			"serve_breaker_rejected_total 5\n",
	}
	var scrapes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			i := scrapes.Add(1) - 1
			if i > 1 {
				i = 1
			}
			w.Write([]byte(metrics[i]))
			return
		}
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:        srv.URL,
		RPS:           100,
		Duration:      100 * time.Millisecond,
		Bodies:        body,
		ScrapeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := rep.Server
	if sc == nil {
		t.Fatal("ScrapeMetrics produced no server counters")
	}
	// The warm-hit-rate numerator counts EVERY warm tier — surrogate (25),
	// LRU (40), store (10) and peer fills (5) — over 100 requests: 0.8. The
	// pre-fleet formula counted only LRU/store and would report 0.5 here.
	want := ServerCounters{
		SurrogateHits: 25, CacheHits: 40, StoreHits: 10, SolveRequests: 100, SolvesExecuted: 20,
		PeerHits: 5, PeerMisses: 1, Owned: 20, Forwarded: 5,
		StoreCorrupt: 0, BreakerOpens: 1, BreakerRejected: 0,
		SurrogateHitRate: 0.25, WarmHitRate: 0.8,
	}
	if *sc != want {
		t.Errorf("server counters = %+v, want %+v", *sc, want)
	}
	raw, _ := json.Marshal(rep)
	var doc map[string]any
	_ = json.Unmarshal(raw, &doc)
	srvDoc, ok := doc["server"].(map[string]any)
	if !ok {
		t.Fatalf("report JSON server section is %T", doc["server"])
	}
	for _, key := range []string{"surrogate_hits", "surrogate_hit_rate", "cache_hits", "store_hits", "peer_hits", "peer_misses", "owned", "forwarded", "warm_hit_rate", "breaker_opens", "store_corrupt"} {
		if _, ok := srvDoc[key]; !ok {
			t.Errorf("server counters JSON missing %q", key)
		}
	}
}

// TestMultiTargetSpray pins the fleet mode: Targets spreads requests over
// every member, and with ScrapeMetrics on the report carries per-replica
// counter deltas plus their fleet-wide aggregate.
func TestMultiTargetSpray(t *testing.T) {
	mkMember := func(requests *atomic.Int64, peerHits int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				fmt.Fprintf(w, "serve_solve_requests_total %d\ncluster_peer_hit_total %d\n", requests.Load(), peerHits)
				return
			}
			requests.Add(1)
		}))
	}
	var nA, nB atomic.Int64
	a := mkMember(&nA, 3)
	defer a.Close()
	b := mkMember(&nB, 4)
	defer b.Close()

	rep, err := Run(context.Background(), Config{
		Targets:       []string{a.URL, b.URL},
		RPS:           200,
		Duration:      300 * time.Millisecond,
		Bodies:        body,
		ScrapeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nA.Load() == 0 || nB.Load() == 0 {
		t.Errorf("spray skipped a member: a=%d b=%d", nA.Load(), nB.Load())
	}
	if len(rep.Replicas) != 2 {
		t.Fatalf("Replicas has %d entries, want 2: %+v", len(rep.Replicas), rep.Replicas)
	}
	if rep.Replicas[0].Target != a.URL || rep.Replicas[1].Target != b.URL {
		t.Errorf("replica order %q, %q; want target order", rep.Replicas[0].Target, rep.Replicas[1].Target)
	}
	if rep.Server == nil {
		t.Fatal("no aggregate server counters")
	}
	// The fixture metrics are absolute and static between scrapes except
	// serve_solve_requests_total, which grows with the member's own traffic;
	// the aggregate must equal the sum of the per-replica deltas.
	wantAgg := rep.Replicas[0].SolveRequests + rep.Replicas[1].SolveRequests
	if rep.Server.SolveRequests != wantAgg {
		t.Errorf("aggregate SolveRequests = %g, want %g", rep.Server.SolveRequests, wantAgg)
	}
	if rep.Target != a.URL+","+b.URL {
		t.Errorf("report target = %q, want joined member list", rep.Target)
	}
}

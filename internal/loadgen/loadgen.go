// Package loadgen is the serving-tier load-test harness behind `mfgcp
// loadgen`: an open-loop constant-rate generator that replays solve workloads
// against a live `mfgcp serve` endpoint and reports tail latency
// (p50/p99/p999), error/shed/timeout rates and a pass/fail verdict against a
// declared SLO — the measurement ROADMAP item 1 calls for.
//
// Open loop means the generator fires at the configured rate regardless of
// how fast the server answers (launches beyond MaxInFlight are dropped and
// counted, never queued), so a saturated server shows up as shed load and
// inflated tails instead of silently throttling the generator — the failure
// mode that matters at "millions of EDPs" scale.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config parametrises one load-generation run.
type Config struct {
	// Target is the base URL of a running serve daemon
	// (e.g. "http://127.0.0.1:8080").
	Target string
	// Targets, when set, sprays the load across a fleet: requests rotate
	// round-robin over these base URLs (Target is ignored). With ScrapeMetrics
	// on, every member is scraped and the report carries both per-replica
	// counters (Report.Replicas) and the fleet-wide aggregate (Report.Server)
	// — including the cluster routing counters owned/forwarded/peer_hit/
	// peer_miss.
	Targets []string
	// RPS is the offered request rate (default 10).
	RPS float64
	// Duration is the generation window (default 5s); requests in flight at
	// its end are awaited, not cancelled.
	Duration time.Duration
	// Timeout bounds one request (default 10s); requests past it count as
	// timeouts, not errors.
	Timeout time.Duration
	// MaxInFlight caps concurrent requests (default 256). The generator
	// never queues: a tick arriving with the cap exhausted is dropped and
	// counted into the shed rate.
	MaxInFlight int
	// Bodies are the POST /v1/solve request documents, cycled round-robin —
	// distinct workloads exercise cold solves, repeats exercise the cache
	// and singleflight tiers.
	Bodies [][]byte
	// SLO is the verdict gate (see SLO); the zero value checks nothing.
	SLO SLO
	// Validate decodes every 2xx body and counts responses that are not
	// well-formed solve summaries into Report.Corrupt200s — the chaos
	// harness's "zero corrupted 200s" gate. Any corrupt 200 fails the run.
	Validate bool
	// ScrapeMetrics snapshots the target's /metrics?format=prom before and
	// after the window and reports the counter deltas (cache warmth, store
	// hits, breaker transitions) in Report.Server.
	ScrapeMetrics bool
	// Client overrides the HTTP client (tests); nil builds one from Timeout.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.RPS <= 0 {
		c.RPS = 10
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	return c
}

// SLO declares the service-level objective the report is judged against.
// Latency bounds at zero are unchecked; rate bounds below zero are unchecked
// (zero is a legitimate strict bound: "no shed requests allowed").
type SLO struct {
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
	P999Ms float64 `json:"p999_ms,omitempty"`

	MaxErrorRate   float64 `json:"max_error_rate,omitempty"`
	MaxShedRate    float64 `json:"max_shed_rate,omitempty"`
	MaxTimeoutRate float64 `json:"max_timeout_rate,omitempty"`
}

// Unchecked is the SLO rate sentinel: bounds set to it are not evaluated.
const Unchecked = -1

// LatencySummary is the latency distribution of the successful requests, in
// milliseconds.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// Report is the JSON result of one run. Rates are fractions of Sent.
type Report struct {
	Target          string  `json:"target"`
	OfferedRPS      float64 `json:"offered_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	DurationSeconds float64 `json:"duration_seconds"`

	Sent        int64 `json:"sent"`
	Succeeded   int64 `json:"succeeded"`              // 2xx answers (latency sample source)
	Shed        int64 `json:"shed"`                   // 429/503 answers
	Timeouts    int64 `json:"timeouts"`               // client deadline exceeded
	Errors      int64 `json:"errors"`                 // transport failures and other statuses
	Dropped     int64 `json:"dropped"`                // open-loop overruns beyond MaxInFlight
	Corrupt200s int64 `json:"corrupt_200s,omitempty"` // 2xx bodies failing validation (Validate on)

	ShedRate    float64 `json:"shed_rate"` // (shed+dropped)/sent
	ErrorRate   float64 `json:"error_rate"`
	TimeoutRate float64 `json:"timeout_rate"`

	Latency LatencySummary `json:"latency_ms"`

	// Server holds the daemon-side counter deltas when ScrapeMetrics is on;
	// for a multi-target run it is the fleet-wide aggregate.
	Server *ServerCounters `json:"server,omitempty"`
	// Replicas holds the per-member counter deltas of a multi-target run
	// (ScrapeMetrics on), in target order.
	Replicas []ReplicaCounters `json:"replicas,omitempty"`

	SLO        SLO      `json:"slo"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// Run executes one open-loop load generation and returns its report. The
// error is non-nil only for harness failures (bad config, cancelled before
// the first request); an unhealthy target yields a report with violations,
// not an error — callers gate on Report.Pass.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	targets := cfg.Targets
	if len(targets) == 0 {
		if cfg.Target == "" {
			return nil, fmt.Errorf("loadgen: Target is required")
		}
		targets = []string{cfg.Target}
	}
	if len(cfg.Bodies) == 0 {
		return nil, fmt.Errorf("loadgen: at least one request body is required")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}

	// Pre-run scrapes, one per fleet member. A member that cannot be scraped
	// (e.g. already killed by a chaos harness) contributes nil and is skipped
	// in the report rather than failing the run.
	var before []map[string]float64
	if cfg.ScrapeMetrics {
		before = make([]map[string]float64, len(targets))
		scraped := 0
		var lastErr error
		for i, tgt := range targets {
			if snap, err := scrapeProm(client, tgt); err == nil {
				before[i] = snap
				scraped++
			} else {
				lastErr = err
			}
		}
		if scraped == 0 {
			return nil, lastErr
		}
	}

	var (
		sent, succeeded, shed, timeouts, errCount, dropped, corrupt atomic.Int64

		hist = obs.NewHistogram()
		sem  = make(chan struct{}, cfg.MaxInFlight)
		wg   sync.WaitGroup
	)
	fire := func(target string, body []byte, seq int64) {
		defer wg.Done()
		defer func() { <-sem }()
		req, err := http.NewRequest(http.MethodPost, target+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			errCount.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", fmt.Sprintf("loadgen-%d", seq))
		start := time.Now()
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		if err != nil {
			var uerr interface{ Timeout() bool }
			if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &uerr) && uerr.Timeout()) {
				timeouts.Add(1)
			} else {
				errCount.Add(1)
			}
			return
		}
		var data []byte
		if cfg.Validate && resp.StatusCode >= 200 && resp.StatusCode < 300 {
			data, err = io.ReadAll(resp.Body)
		} else {
			_, _ = io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			succeeded.Add(1)
			hist.Observe(elapsed.Seconds())
			if cfg.Validate {
				if err != nil {
					errCount.Add(1)
				} else if verr := validateSolveBody(data); verr != nil {
					corrupt.Add(1)
				}
			}
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			// 429 (queue/retry budget) and 503 (circuit breaker) are both the
			// server shedding by design, not failures.
			shed.Add(1)
		default:
			errCount.Add(1)
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.NewTimer(cfg.Duration)
	defer stop.Stop()
	runStart := time.Now()

	next := 0
generate:
	for {
		select {
		case <-ctx.Done():
			break generate
		case <-stop.C:
			break generate
		case <-ticker.C:
			seq := sent.Add(1)
			select {
			case sem <- struct{}{}:
				// Bodies rotate per request and the target advances per body
				// cycle, so every body visits every fleet member within
				// len(Bodies)×len(targets) requests (mixed-target load) even
				// when the two cycle lengths share factors.
				body := cfg.Bodies[next%len(cfg.Bodies)]
				target := targets[(next/len(cfg.Bodies))%len(targets)]
				next++
				wg.Add(1)
				go fire(target, body, seq)
			default:
				dropped.Add(1) // open loop: never queue behind a saturated cap
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(runStart)

	rep := &Report{
		Target:          strings.Join(targets, ","),
		OfferedRPS:      cfg.RPS,
		DurationSeconds: elapsed.Seconds(),
		Sent:            sent.Load(),
		Succeeded:       succeeded.Load(),
		Shed:            shed.Load(),
		Timeouts:        timeouts.Load(),
		Errors:          errCount.Load(),
		Dropped:         dropped.Load(),
		Corrupt200s:     corrupt.Load(),
		SLO:             cfg.SLO,
	}
	if cfg.ScrapeMetrics {
		for i, tgt := range targets {
			if before[i] == nil {
				continue // unscrapeable before the run; still unaccounted
			}
			after, err := scrapeProm(client, tgt)
			if err != nil {
				// The member died during the window (chaos harness): its
				// pre-kill counters are unreadable now, so it contributes
				// nothing rather than failing the whole report.
				continue
			}
			rep.Replicas = append(rep.Replicas, ReplicaCounters{
				Target:         tgt,
				ServerCounters: *counterDeltas(before[i], after),
			})
		}
		rep.Server = aggregateCounters(rep.Replicas)
		if len(targets) == 1 {
			rep.Replicas = nil // single-target reports keep their PR-4 shape
		}
	}
	if rep.Sent == 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("loadgen: cancelled before the first request: %w", err)
		}
		return nil, fmt.Errorf("loadgen: generated no requests in %s at %g rps", cfg.Duration, cfg.RPS)
	}
	rep.AchievedRPS = float64(rep.Succeeded) / elapsed.Seconds()
	rep.ShedRate = float64(rep.Shed+rep.Dropped) / float64(rep.Sent)
	rep.ErrorRate = float64(rep.Errors) / float64(rep.Sent)
	rep.TimeoutRate = float64(rep.Timeouts) / float64(rep.Sent)
	if st := hist.Stat(); st.Count > 0 {
		rep.Latency = LatencySummary{
			Mean: st.Mean * 1e3,
			P50:  st.P50 * 1e3,
			P90:  st.P90 * 1e3,
			P99:  st.P99 * 1e3,
			P999: st.P999 * 1e3,
			Max:  st.Max * 1e3,
		}
	}
	rep.evaluate()
	return rep, nil
}

// evaluate fills Violations and Pass from the report's SLO.
func (r *Report) evaluate() {
	check := func(cond bool, format string, args ...any) {
		if cond {
			r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
		}
	}
	slo := r.SLO
	if r.Succeeded == 0 {
		check(slo.P50Ms > 0 || slo.P99Ms > 0 || slo.P999Ms > 0,
			"no successful requests to measure latency against the SLO")
	} else {
		check(slo.P50Ms > 0 && r.Latency.P50 > slo.P50Ms,
			"p50 %.3fms exceeds SLO %.3fms", r.Latency.P50, slo.P50Ms)
		check(slo.P99Ms > 0 && r.Latency.P99 > slo.P99Ms,
			"p99 %.3fms exceeds SLO %.3fms", r.Latency.P99, slo.P99Ms)
		check(slo.P999Ms > 0 && r.Latency.P999 > slo.P999Ms,
			"p999 %.3fms exceeds SLO %.3fms", r.Latency.P999, slo.P999Ms)
	}
	check(slo.MaxErrorRate >= 0 && r.ErrorRate > slo.MaxErrorRate,
		"error rate %.4f exceeds SLO %.4f", r.ErrorRate, slo.MaxErrorRate)
	check(slo.MaxShedRate >= 0 && r.ShedRate > slo.MaxShedRate,
		"shed rate %.4f exceeds SLO %.4f", r.ShedRate, slo.MaxShedRate)
	check(slo.MaxTimeoutRate >= 0 && r.TimeoutRate > slo.MaxTimeoutRate,
		"timeout rate %.4f exceeds SLO %.4f", r.TimeoutRate, slo.MaxTimeoutRate)
	// A corrupt 200 is never acceptable: the daemon claimed success while
	// returning garbage, which no SLO knob can trade away.
	check(r.Corrupt200s > 0, "%d corrupt 200 responses", r.Corrupt200s)
	r.Pass = len(r.Violations) == 0
}

// validateSolveBody checks one 2xx /v1/solve body is a structurally coherent
// equilibrium summary — the corruption detector behind Config.Validate. A
// served record whose bytes rotted (or a truncated write) fails JSON decoding
// or the shape checks long before a human would notice.
func validateSolveBody(data []byte) error {
	var body struct {
		Converged *bool     `json:"converged"`
		Time      []float64 `json:"time"`
		Price     []float64 `json:"price"`
		Source    string    `json:"source"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&body); err != nil {
		return fmt.Errorf("loadgen: corrupt solve body: %w", err)
	}
	if body.Converged == nil {
		return fmt.Errorf("loadgen: solve body without converged field")
	}
	if len(body.Time) != len(body.Price) {
		return fmt.Errorf("loadgen: solve body with %d time samples and %d prices", len(body.Time), len(body.Price))
	}
	switch body.Source {
	case "surrogate", "cache", "store", "peer", "coalesced", "solve":
	case "":
		// Tolerated for one release: a pre-source daemon under test.
	default:
		return fmt.Errorf("loadgen: solve body with unknown source %q", body.Source)
	}
	return nil
}

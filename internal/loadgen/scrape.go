package loadgen

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ServerCounters are the daemon-side deltas of one load-generation window,
// scraped from /metrics?format=prom before and after the run. They answer the
// questions the client-side latency histogram cannot: how warm the cache
// ladder ran, whether the disk tier served (and whether it shed corruption),
// and whether the circuit breaker tripped under the offered load.
type ServerCounters struct {
	// SurrogateHits are answers served by the tier-0 interpolation table;
	// CacheHits and StoreHits are answers served by the in-memory LRU and the
	// persistent tier; SolveRequests and SolvesExecuted bound them all.
	SurrogateHits  float64 `json:"surrogate_hits"`
	CacheHits      float64 `json:"cache_hits"`
	StoreHits      float64 `json:"store_hits"`
	SolveRequests  float64 `json:"solve_requests"`
	SolvesExecuted float64 `json:"solves_executed"`
	// PeerHits and PeerMisses count peer cache-fill round trips that answered
	// and that degraded to a local solve; Owned and Forwarded split the local
	// misses by ring ownership (fleet runs only).
	PeerHits   float64 `json:"peer_hits"`
	PeerMisses float64 `json:"peer_misses"`
	Owned      float64 `json:"owned"`
	Forwarded  float64 `json:"forwarded"`
	// SurrogateHitRate is SurrogateHits/SolveRequests — how much of the window
	// the precomputed table absorbed before the exact ladder.
	SurrogateHitRate float64 `json:"surrogate_hit_rate"`
	// WarmHitRate is (SurrogateHits+CacheHits+StoreHits+PeerHits)/SolveRequests
	// — the fraction of requests answered without a fresh local solve, across
	// every warm tier of the ladder. The kill-and-restart chaos gate asserts it
	// stays positive after a daemon restart.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// StoreCorrupt counts records the store refused to serve (CRC failures).
	StoreCorrupt float64 `json:"store_corrupt"`
	// BreakerOpens and BreakerRejected count breaker trips and the solves they
	// failed fast.
	BreakerOpens    float64 `json:"breaker_opens"`
	BreakerRejected float64 `json:"breaker_rejected"`
}

// ReplicaCounters are one fleet member's counter deltas in a multi-target run.
type ReplicaCounters struct {
	Target string `json:"target"`
	ServerCounters
}

// scrapeProm fetches one Prometheus text exposition and returns its single
// scalar samples (counters and gauges; histogram series keep their suffixed
// names). Labelled series are ignored — the daemon's registry exports none.
func scrapeProm(client *http.Client, target string) (map[string]float64, error) {
	resp, err := client.Get(target + "/metrics?format=prom")
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape metrics: status %d", resp.StatusCode)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: scrape metrics: %w", err)
	}
	return samples, nil
}

// counterDeltas folds two scrapes into the report's server counters. The
// registry renders counters with a _total suffix and dots as underscores
// (store.corrupt.total therefore becomes store_corrupt_total_total).
func counterDeltas(before, after map[string]float64) *ServerCounters {
	d := func(name string) float64 {
		v := after[name] - before[name]
		if v < 0 {
			// The daemon restarted mid-window and its counters reset; the
			// post-restart absolute value is the window's best estimate.
			v = after[name]
		}
		return v
	}
	sc := &ServerCounters{
		SurrogateHits:   d("serve_surrogate_hit_total"),
		CacheHits:       d("engine_cache_hit_total"),
		StoreHits:       d("store_hit_total"),
		SolveRequests:   d("serve_solve_requests_total"),
		SolvesExecuted:  d("serve_solve_executed_total"),
		PeerHits:        d("cluster_peer_hit_total"),
		PeerMisses:      d("cluster_peer_miss_total"),
		Owned:           d("cluster_owned_total"),
		Forwarded:       d("cluster_forwarded_total"),
		StoreCorrupt:    d("store_corrupt_total_total"),
		BreakerOpens:    d("breaker_open_total"),
		BreakerRejected: d("serve_breaker_rejected_total"),
	}
	sc.fillRates()
	return sc
}

// fillRates derives the hit-rate fields from the raw counters. Every tier
// that answers without running a fresh solve on this replica counts as warm —
// surrogate, LRU, store and peer fills alike; counting only LRU/store (the
// pre-fleet formula) under-reported warmth on surrogate- or fleet-served
// traffic.
func (sc *ServerCounters) fillRates() {
	if sc.SolveRequests > 0 {
		sc.SurrogateHitRate = sc.SurrogateHits / sc.SolveRequests
		sc.WarmHitRate = (sc.SurrogateHits + sc.CacheHits + sc.StoreHits + sc.PeerHits) / sc.SolveRequests
	}
}

// aggregateCounters folds per-replica deltas into one fleet-wide view; rates
// are recomputed over the summed counters. Returns nil when nothing was
// scraped.
func aggregateCounters(replicas []ReplicaCounters) *ServerCounters {
	if len(replicas) == 0 {
		return nil
	}
	var sum ServerCounters
	for _, r := range replicas {
		sum.SurrogateHits += r.SurrogateHits
		sum.CacheHits += r.CacheHits
		sum.StoreHits += r.StoreHits
		sum.SolveRequests += r.SolveRequests
		sum.SolvesExecuted += r.SolvesExecuted
		sum.PeerHits += r.PeerHits
		sum.PeerMisses += r.PeerMisses
		sum.Owned += r.Owned
		sum.Forwarded += r.Forwarded
		sum.StoreCorrupt += r.StoreCorrupt
		sum.BreakerOpens += r.BreakerOpens
		sum.BreakerRejected += r.BreakerRejected
	}
	sum.fillRates()
	return &sum
}

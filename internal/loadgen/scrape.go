package loadgen

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ServerCounters are the daemon-side deltas of one load-generation window,
// scraped from /metrics?format=prom before and after the run. They answer the
// questions the client-side latency histogram cannot: how warm the cache
// ladder ran, whether the disk tier served (and whether it shed corruption),
// and whether the circuit breaker tripped under the offered load.
type ServerCounters struct {
	// SurrogateHits are answers served by the tier-0 interpolation table;
	// CacheHits and StoreHits are answers served by the in-memory LRU and the
	// persistent tier; SolveRequests and SolvesExecuted bound them all.
	SurrogateHits  float64 `json:"surrogate_hits"`
	CacheHits      float64 `json:"cache_hits"`
	StoreHits      float64 `json:"store_hits"`
	SolveRequests  float64 `json:"solve_requests"`
	SolvesExecuted float64 `json:"solves_executed"`
	// SurrogateHitRate is SurrogateHits/SolveRequests — how much of the window
	// the precomputed table absorbed before the exact ladder.
	SurrogateHitRate float64 `json:"surrogate_hit_rate"`
	// WarmHitRate is (CacheHits+StoreHits)/SolveRequests — the kill-and-restart
	// chaos gate asserts it stays positive after a daemon restart.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// StoreCorrupt counts records the store refused to serve (CRC failures).
	StoreCorrupt float64 `json:"store_corrupt"`
	// BreakerOpens and BreakerRejected count breaker trips and the solves they
	// failed fast.
	BreakerOpens    float64 `json:"breaker_opens"`
	BreakerRejected float64 `json:"breaker_rejected"`
}

// scrapeProm fetches one Prometheus text exposition and returns its single
// scalar samples (counters and gauges; histogram series keep their suffixed
// names). Labelled series are ignored — the daemon's registry exports none.
func scrapeProm(client *http.Client, target string) (map[string]float64, error) {
	resp, err := client.Get(target + "/metrics?format=prom")
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape metrics: status %d", resp.StatusCode)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: scrape metrics: %w", err)
	}
	return samples, nil
}

// counterDeltas folds two scrapes into the report's server counters. The
// registry renders counters with a _total suffix and dots as underscores
// (store.corrupt.total therefore becomes store_corrupt_total_total).
func counterDeltas(before, after map[string]float64) *ServerCounters {
	d := func(name string) float64 {
		v := after[name] - before[name]
		if v < 0 {
			// The daemon restarted mid-window and its counters reset; the
			// post-restart absolute value is the window's best estimate.
			v = after[name]
		}
		return v
	}
	sc := &ServerCounters{
		SurrogateHits:   d("serve_surrogate_hit_total"),
		CacheHits:       d("engine_cache_hit_total"),
		StoreHits:       d("store_hit_total"),
		SolveRequests:   d("serve_solve_requests_total"),
		SolvesExecuted:  d("serve_solve_executed_total"),
		StoreCorrupt:    d("store_corrupt_total_total"),
		BreakerOpens:    d("breaker_open_total"),
		BreakerRejected: d("serve_breaker_rejected_total"),
	}
	if sc.SolveRequests > 0 {
		sc.SurrogateHitRate = sc.SurrogateHits / sc.SolveRequests
		sc.WarmHitRate = (sc.CacheHits + sc.StoreHits) / sc.SolveRequests
	}
	return sc
}

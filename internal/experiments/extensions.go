package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/exactgame"
	"repro/internal/mec"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

func init() {
	register("ext-exactgame", ExtExactGame)
	register("ext-capacity", ExtCapacity)
}

// ExtExactGame quantifies the claims behind the paper's Fig. 2 comparison:
// the finite-M "original game" costs O(M·K·ψ) while MFG-CP is population-
// size independent, symmetric populations of the exact game coincide with
// the mean field, and heterogeneity-induced gaps close as the population
// homogenises. This is an extension artefact — the paper draws Fig. 2 as a
// diagram; here it is measured.
func ExtExactGame(opt Options) (*Report, error) {
	rep := &Report{ID: "ext-exactgame", Title: "Finite-M original game vs the mean field (Fig. 2, measured)"}
	p := mec.Default()
	w := baseWorkload()

	cfg := exactgame.DefaultConfig(p)
	cfg.NH, cfg.NQ, cfg.Steps = 5, 21, 30
	mfgCfg := core.DefaultConfig(p)
	mfgCfg.NH, mfgCfg.NQ, mfgCfg.Steps = cfg.NH, cfg.NQ, cfg.Steps

	start := time.Now()
	mfgEq, err := solveEquilibrium(mfgCfg, w)
	if err != nil {
		return nil, err
	}
	mfgTime := time.Since(start)

	gapTo := func(sol *exactgame.Solution) float64 {
		n := cfg.Steps / 2
		var gap float64
		for k := range mfgEq.HJB.X[n] {
			if d := math.Abs(sol.Agents[0].HJB.X[n][k] - mfgEq.HJB.X[n][k]); d > gap {
				gap = d
			}
		}
		return gap
	}

	ms := []int{3, 6, 12, 24}
	if opt.Quick {
		ms = []int{3, 8}
	}
	costT := metrics.NewTable("symmetric population: cost and gap vs M",
		"M", "PDE solves", "time (s)", "gap to MFG")
	for _, m := range ms {
		inits := make([]exactgame.AgentInit, m)
		for i := range inits {
			inits[i] = exactgame.AgentInit{MeanQ: 0.7 * p.Qk, StdQ: 0.1 * p.Qk}
		}
		s := time.Now()
		sol, err := exactgame.Solve(cfg, w, inits)
		if err != nil {
			return nil, fmt.Errorf("M=%d: %w", m, err)
		}
		if err := costT.AddRow(
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", sol.Solves),
			fmt.Sprintf("%.3f", time.Since(s).Seconds()),
			fmt.Sprintf("%.5f", gapTo(sol)),
		); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, costT)

	spreads := []float64{25, 15, 5}
	if opt.Quick {
		spreads = []float64{25, 5}
	}
	gapT := metrics.NewTable("heterogeneous population: gap vs spread", "spread (±MB)", "gap to MFG")
	for _, d := range spreads {
		inits := []exactgame.AgentInit{
			{MeanQ: 0.7*p.Qk - d, StdQ: 0.1 * p.Qk},
			{MeanQ: 0.7*p.Qk + d, StdQ: 0.1 * p.Qk},
			{MeanQ: 0.7*p.Qk - d/2, StdQ: 0.1 * p.Qk},
			{MeanQ: 0.7*p.Qk + d/2, StdQ: 0.1 * p.Qk},
		}
		sol, err := exactgame.Solve(cfg, w, inits)
		if err != nil {
			return nil, fmt.Errorf("spread=%g: %w", d, err)
		}
		if err := gapT.AddRow(fmt.Sprintf("%.0f", d), fmt.Sprintf("%.5f", gapTo(sol))); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, gapT)
	rep.Note("MFG-CP reference solve: %.3fs, independent of M (the exact game's cost column grows linearly)", mfgTime.Seconds())
	rep.Note("symmetric populations coincide with the mean field; the heterogeneity gap closes as the spread narrows")
	return rep, nil
}

// ExtCapacity measures the knapsack capacity extension of the Section IV-C
// Remark inside the live market: sweeping the per-EDP capacity budget, the
// MFG-CP policy sheds the least valuable contents first, trading utility for
// space gracefully.
func ExtCapacity(opt Options) (*Report, error) {
	rep := &Report{ID: "ext-capacity", Title: "Capacity-constrained MFG-CP (knapsack extension, Section IV-C)"}
	p := comparisonParams(opt)

	// Measure the unconstrained space demand first.
	ref := policy.NewMFGCP()
	refCfg := marketConfig(p, ref, opt)
	refRes, err := sim.Run(refCfg)
	if err != nil {
		return nil, err
	}
	demand := estimateSpaceDemand(ref, p)
	if demand <= 0 {
		return nil, fmt.Errorf("ext-capacity: no space demand measured")
	}

	fracs := []float64{1.0, 0.6, 0.3}
	if opt.Quick {
		fracs = []float64{1.0, 0.3}
	}
	tab := metrics.NewTable("utility vs capacity budget",
		"budget (×demand)", "mean utility", "mean caching rate", "min admission")
	if err := tab.AddRow("∞ (unconstrained)",
		fmt.Sprintf("%.2f", refRes.MeanUtility()),
		fmt.Sprintf("%.3f", meanRate(refRes)), "1.000"); err != nil {
		return nil, err
	}
	var prevUtility = refRes.MeanUtility()
	for _, f := range fracs {
		pol := policy.NewMFGCP()
		pol.Capacity = f * demand
		pol.CapacityPaths = 4
		cfg := marketConfig(p, pol, opt)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("budget %.1f: %w", f, err)
		}
		minAdm := 1.0
		for k := 0; k < p.K; k++ {
			a, err := pol.Admission(k)
			if err != nil {
				return nil, err
			}
			if a < minAdm {
				minAdm = a
			}
		}
		if err := tab.AddRow(
			fmt.Sprintf("%.1f", f),
			fmt.Sprintf("%.2f", res.MeanUtility()),
			fmt.Sprintf("%.3f", meanRate(res)),
			fmt.Sprintf("%.3f", minAdm),
		); err != nil {
			return nil, err
		}
		if f < 1 && res.MeanUtility() > prevUtility*1.2+1 {
			rep.Note("NOTE: tightening the budget to %.1f×demand raised utility (%.1f > %.1f)", f, res.MeanUtility(), prevUtility)
		}
		prevUtility = res.MeanUtility()
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Note("shape: tighter budgets shed low-density contents first (min admission falls) and reduce the mean caching rate")
	return rep, nil
}

func meanRate(res *sim.Result) float64 {
	var s float64
	for _, es := range res.Stats {
		s += es.MeanRate
	}
	return s / float64(len(res.Stats))
}

// estimateSpaceDemand sums the expected per-epoch space consumption of the
// policy's last prepared equilibria.
func estimateSpaceDemand(pol *policy.MFGCP, p mec.Params) float64 {
	var total float64
	for k := 0; k < p.K; k++ {
		eq, err := pol.Equilibrium(k)
		if err != nil || eq == nil {
			continue
		}
		dt := eq.Time.Dt()
		for n := range eq.Snapshots {
			total += p.Qk * p.W1 * eq.Snapshots[n].MeanControl * dt
		}
	}
	return total
}

package experiments

import (
	"fmt"

	"repro/internal/mec"
	"repro/internal/metrics"
)

func init() {
	register("fig8", Fig8)
	register("fig9", Fig9)
}

// Fig8 reproduces Figure 8: sweeping the quadratic placement-cost coefficient
// w5 over [0.65, 1.55]×base. Paper shapes to match: a smaller w5 lets EDPs
// cache faster, so the remaining space falls more quickly; a larger w5 slows
// caching and accumulates a higher staleness cost.
func Fig8(opt Options) (*Report, error) {
	rep := &Report{ID: "fig8", Title: "Impact of the placement-cost coefficient w5 (Eq. 8)"}
	multipliers := []float64{0.65, 0.95, 1.25, 1.55}
	base := mec.Default().W5 / 0.65 // the paper labels the sweep by the 0.65…1.55 mantissas

	qSet := &metrics.SeriesSet{Title: "remaining space over time", XLabel: "time", YLabel: "E[q] (MB)"}
	cSet := &metrics.SeriesSet{Title: "cumulative staleness cost", XLabel: "time", YLabel: "∫C² dt"}
	finals := metrics.NewTable("final state vs w5", "w5 (×base)", "E[q](T)", "total staleness", "total utility")

	for _, m := range multipliers {
		p := mec.Default()
		p.W5 = m * base
		eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
		if err != nil {
			return nil, fmt.Errorf("w5=%.2f: %w", m, err)
		}
		steps := eq.Time.Steps
		times := make([]float64, steps+1)
		qbar := make([]float64, steps+1)
		for n := 0; n <= steps; n++ {
			times[n] = eq.Time.At(n)
			qbar[n] = eq.Snapshots[n].QBar
		}
		s, err := metrics.NewSeries(fmt.Sprintf("w5=%.2f", m), times, qbar)
		if err != nil {
			return nil, err
		}
		qSet.Add(s)

		roll, err := eq.EnsembleRollout(p.ChMean, p.InitMeanFrac*p.Qk, opt.Seed, ensembleSize(opt))
		if err != nil {
			return nil, err
		}
		cum := make([]float64, steps+1)
		dt := eq.Time.Dt()
		for n := 1; n <= steps; n++ {
			cum[n] = cum[n-1] + roll.Staleness[n]*dt
		}
		cs, err := metrics.NewSeries(fmt.Sprintf("w5=%.2f", m), times, cum)
		if err != nil {
			return nil, err
		}
		cSet.Add(cs)

		u, _ := roll.Final()
		if err := finals.AddRow(
			fmt.Sprintf("%.2f", m),
			fmt.Sprintf("%.2f", qbar[steps]),
			fmt.Sprintf("%.2f", cum[steps]),
			fmt.Sprintf("%.2f", u),
		); err != nil {
			return nil, err
		}
	}
	rep.Sets = append(rep.Sets, qSet, cSet)
	rep.Tables = append(rep.Tables, finals)
	rep.Note("paper shape: smaller w5 ⇒ remaining space falls faster; larger w5 ⇒ higher staleness cost")
	return rep, nil
}

// Fig9 reproduces Figure 9: convergence of the caching state and utility for
// different initial caching states q(0) ∈ [30, 90]. Paper shapes to match:
// the trajectories from different starting points approach a common band (the
// equilibrium), and the EDP starting with the largest remaining space has the
// lowest utility early on (it must spend more on caching).
func Fig9(opt Options) (*Report, error) {
	p := mec.Default()
	eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig9", Title: "Convergence of caching state and utility vs q(0)"}
	steps := eq.Time.Steps

	qSet := &metrics.SeriesSet{Title: "caching state over time", XLabel: "time", YLabel: "q(t) (MB)"}
	uSet := &metrics.SeriesSet{Title: "accumulated utility over time", XLabel: "time", YLabel: "∫U dt"}
	finals := metrics.NewTable("end of horizon", "q(0) (MB)", "q(T) (MB)", "total utility")

	var earlyMove, lateMove float64
	var firstEarlyUtility, lastEarlyUtility float64
	inits := []float64{30, 50, 70, 90}
	for idx, q0 := range inits {
		roll, err := eq.EnsembleRollout(p.ChMean, q0, opt.Seed+int64(idx), ensembleSize(opt))
		if err != nil {
			return nil, err
		}
		s, err := metrics.NewSeries(fmt.Sprintf("q(0)=%.0f", q0), roll.Times, roll.Q)
		if err != nil {
			return nil, err
		}
		qSet.Add(s)
		us, err := metrics.NewSeries(fmt.Sprintf("q(0)=%.0f", q0), roll.Times, roll.CumUtility)
		if err != nil {
			return nil, err
		}
		uSet.Add(us)
		u, _ := roll.Final()
		if err := finals.AddFloatRow(fmt.Sprintf("%.0f", q0), roll.Q[steps], u); err != nil {
			return nil, err
		}
		// Stabilisation: how much the state still moves in the last quarter
		// of the horizon compared with the first quarter.
		earlyMove += absFloat(roll.Q[steps/4] - roll.Q[0])
		lateMove += absFloat(roll.Q[steps] - roll.Q[3*steps/4])
		early := roll.CumUtility[steps/4]
		if idx == 0 {
			firstEarlyUtility = early
		}
		lastEarlyUtility = early
	}
	rep.Sets = append(rep.Sets, qSet, uSet)
	rep.Tables = append(rep.Tables, finals)

	rep.Note("stabilisation: mean |Δq| over the last quarter of the horizon is %.1fMB vs %.1fMB over the first (paper: states and utilities tend towards stability)",
		lateMove/float64(len(inits)), earlyMove/float64(len(inits)))
	rep.Note("early utility: q(0)=%.0f accumulates %.1f vs q(0)=%.0f accumulates %.1f (paper: the largest q(0) has the lowest utility at first)",
		inits[0], firstEarlyUtility, inits[len(inits)-1], lastEarlyUtility)
	return rep, nil
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

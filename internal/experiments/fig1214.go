package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func init() {
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig14", Fig14)
}

// Fig12 reproduces Figure 12: total utility and total trading income of an
// EDP under the five schemes while sweeping η1. Paper shapes to match:
// utility decreases in η1 for every scheme; MFG-CP earns the highest utility
// throughout; MFG's trading income can exceed MFG-CP's (EDPs without sharing
// sell whole centre-downloaded contents) but its staleness cost is higher.
func Fig12(opt Options) (*Report, error) {
	rep := &Report{ID: "fig12", Title: "Total utility and trading income vs η1 across schemes"}
	base := comparisonParams(opt).Eta1 / 2
	mults := []float64{1, 2, 3, 4}
	if opt.Quick {
		mults = []float64{1, 4}
	}

	uT := metrics.NewTable("total utility vs η1", append([]string{"scheme"}, etaCols(mults)...)...)
	trT := metrics.NewTable("total trading income vs η1", append([]string{"scheme"}, etaCols(mults)...)...)

	for _, pol := range allPolicies() {
		uRow := []string{pol.Name()}
		trRow := []string{pol.Name()}
		var prevU float64
		for i, m := range mults {
			p := comparisonParams(opt)
			p.Eta1 = m * base
			cfg := marketConfig(p, pol, opt)
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s, η1=%.0f: %w", pol.Name(), m, err)
			}
			u := res.MeanUtility()
			tr := res.MeanLedger().Trading
			uRow = append(uRow, fmt.Sprintf("%.2f", u))
			trRow = append(trRow, fmt.Sprintf("%.2f", tr))
			if i > 0 && u > prevU*1.10+1 {
				rep.Note("NOTE: %s utility rose from η1 mult %.0f to %.0f (%.2f → %.2f)", pol.Name(), mults[i-1], m, prevU, u)
			}
			prevU = u
		}
		if err := uT.AddRow(uRow...); err != nil {
			return nil, err
		}
		if err := trT.AddRow(trRow...); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, uT, trT)
	rep.Note("paper shape: utility decreases in η1; MFG-CP dominates in utility; MFG trades slightly more but pays more staleness")
	return rep, nil
}

func etaCols(mults []float64) []string {
	cols := make([]string, len(mults))
	for i, m := range mults {
		cols[i] = fmt.Sprintf("η1=%.0fe-3", m)
	}
	return cols
}

// Fig13 reproduces Figure 13: utility and staleness cost of an EDP under the
// five schemes while varying the popularity of a selected content within
// [0.3, 0.7]. Paper shapes to match: MFG-CP has the highest utility and the
// lowest staleness cost across the sweep; a higher popularity raises
// utilities (more requests ⇒ more trades); UDCS shows the smallest utility
// variation over popularity.
func Fig13(opt Options) (*Report, error) {
	rep := &Report{ID: "fig13", Title: "Utility and staleness vs content popularity across schemes"}
	pops := []float64{0.3, 0.5, 0.7}
	if opt.Quick {
		pops = []float64{0.3, 0.7}
	}

	cols := []string{"scheme"}
	for _, pi := range pops {
		cols = append(cols, fmt.Sprintf("Π=%.1f", pi))
	}
	uT := metrics.NewTable("utility vs popularity", cols...)
	sT := metrics.NewTable("staleness cost vs popularity", cols...)

	for _, pol := range allPolicies() {
		uRow := []string{pol.Name()}
		sRow := []string{pol.Name()}
		for _, pi := range pops {
			p := comparisonParams(opt)
			cfg := marketConfig(p, pol, opt)
			// Concentrate the target popularity on content 0 by shaping the
			// trace: content 0 receives share Π of all requests, the rest
			// split the remainder evenly.
			ds, err := popularityTrace(p.K, pi, opt.Seed)
			if err != nil {
				return nil, err
			}
			cfg.Trace = ds
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s, Π=%.1f: %w", pol.Name(), pi, err)
			}
			uRow = append(uRow, fmt.Sprintf("%.2f", res.MeanUtility()))
			sRow = append(sRow, fmt.Sprintf("%.2f", res.MeanLedger().Staleness))
		}
		if err := uT.AddRow(uRow...); err != nil {
			return nil, err
		}
		if err := sT.AddRow(sRow...); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, uT, sT)
	rep.Note("paper shape: higher Π ⇒ higher utility; MFG-CP highest utility and lowest staleness; UDCS flattest across Π")
	return rep, nil
}

// Fig14 reproduces Figure 14: the head-to-head comparison of utility and
// trading income under the default workload. Paper numbers to approximate in
// shape: MFG-CP's utility ≈2.76× MPC and ≈1.57× UDCS; MFG-CP and MFG trade
// within a small gap of each other.
func Fig14(opt Options) (*Report, error) {
	rep := &Report{ID: "fig14", Title: "Scheme comparison: utility and trading income"}
	results := make([]*sim.Result, 0, 5)
	var mfgcp, mpc, udcs float64
	for _, pol := range allPolicies() {
		p := comparisonParams(opt)
		cfg := marketConfig(p, pol, opt)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pol.Name(), err)
		}
		results = append(results, res)
		switch pol.Name() {
		case "MFG-CP":
			mfgcp = res.MeanUtility()
		case "MPC":
			mpc = res.MeanUtility()
		case "UDCS":
			udcs = res.MeanUtility()
		}
	}
	tab, err := ledgerTable("scheme comparison (population means)", results)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, tab)

	ratios := metrics.NewTable("utility ratios", "pair", "ratio", "paper")
	if err := ratios.AddRow("MFG-CP / MPC", fmt.Sprintf("%.2f", metrics.Ratio(mfgcp, mpc)), "2.76"); err != nil {
		return nil, err
	}
	if err := ratios.AddRow("MFG-CP / UDCS", fmt.Sprintf("%.2f", metrics.Ratio(mfgcp, udcs)), "1.57"); err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, ratios)
	rep.Note("paper shape: MFG-CP utility dominates all baselines; exact ratios depend on the calibrated unit system")
	return rep, nil
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() { register("ext-longrun", ExtLongRun) }

// ExtLongRun runs Algorithm 1 end-to-end over a multi-day trending trace:
// every epoch consumes one trace day, refreshes popularity via Eq. (3),
// re-solves the per-content equilibria (warm-started from the previous
// epoch's fixed points) and trades. The artefact shows the popularity
// tracking and the warm-start amortisation that make the per-epoch loop
// practical.
func ExtLongRun(opt Options) (*Report, error) {
	rep := &Report{ID: "ext-longrun", Title: "Algorithm 1 over a multi-day trace (warm-started epochs)"}
	p := comparisonParams(opt)
	epochs := 10
	if opt.Quick {
		epochs = 4
	}

	gen := trace.DefaultGenConfig()
	gen.K = p.K
	gen.Seed = opt.Seed
	gen.Days = epochs
	gen.DriftStd = 0.1 // gentle day-to-day popularity drift (Algorithm 1's slow-demand assumption)
	ds, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}

	run := func(warm bool, data *trace.Dataset) (*sim.Result, time.Duration, error) {
		pol := policy.NewMFGCP()
		pol.DisableWarmStart = !warm
		cfg := marketConfig(p, pol, opt)
		cfg.Epochs = epochs
		cfg.StepsPerEpoch = 20
		cfg.Trace = data
		start := time.Now()
		res, err := sim.Run(cfg)
		return res, time.Since(start), err
	}

	warmRes, _, err := run(true, ds)
	if err != nil {
		return nil, err
	}
	coldRes, _, err := run(false, ds)
	if err != nil {
		return nil, err
	}

	// Static-demand control: with an unchanging workload the warm start
	// resumes at the previous fixed point and the best-response iteration
	// terminates almost immediately.
	staticGen := gen
	staticGen.DriftStd = 0
	staticGen.BurstProb = 0
	staticDS, err := trace.Generate(staticGen)
	if err != nil {
		return nil, err
	}
	warmStatic, _, err := run(true, staticDS)
	if err != nil {
		return nil, err
	}
	coldStatic, _, err := run(false, staticDS)
	if err != nil {
		return nil, err
	}

	// Per-epoch market trajectory under the warm-started run.
	tab := metrics.NewTable("per-epoch market (warm-started MFG-CP)",
		"epoch", "utility", "price", "mean rate", "E[q]", "strategy time (ms)")
	for _, es := range warmRes.Stats {
		if err := tab.AddRow(
			fmt.Sprintf("%d", es.Epoch),
			fmt.Sprintf("%.1f", es.MeanUtility),
			fmt.Sprintf("%.3f", es.MeanPrice),
			fmt.Sprintf("%.3f", es.MeanRate),
			fmt.Sprintf("%.1f", es.MeanRemain),
			fmt.Sprintf("%.0f", float64(es.StrategyTime.Microseconds())/1000),
		); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, tab)

	// Warm vs cold strategy-time comparison (excluding the cold first epoch
	// all runs share).
	later := func(res *sim.Result) time.Duration {
		var t time.Duration
		for i := 1; i < len(res.Stats); i++ {
			t += res.Stats[i].StrategyTime
		}
		return t
	}
	cmp := metrics.NewTable("warm-start amortisation", "variant", "strategy time (epochs ≥ 1)")
	rows := []struct {
		name string
		res  *sim.Result
	}{
		{"warm, drifting demand", warmRes},
		{"cold, drifting demand", coldRes},
		{"warm, static demand", warmStatic},
		{"cold, static demand", coldStatic},
	}
	for _, r := range rows {
		if err := cmp.AddRow(r.name, later(r.res).Round(time.Millisecond).String()); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, cmp)

	if c := later(coldStatic); c > 0 {
		rep.Note("static demand: warm-started strategy time is %.0f%% of cold (the iteration resumes at the previous fixed point)",
			100*float64(later(warmStatic))/float64(c))
	}
	if c := later(coldRes); c > 0 {
		rep.Note("drifting demand: warm-started strategy time is %.0f%% of cold (contents whose demand moved >25%% fall back to cold starts)",
			100*float64(later(warmRes))/float64(c))
	}
	diff := warmRes.MeanUtility() - coldRes.MeanUtility()
	rep.Note("warm vs cold utility difference: %.2f (%.2f%%) — the fixed point is unique, only the path to it changes",
		diff, 100*diff/coldRes.MeanUtility())
	return rep, nil
}

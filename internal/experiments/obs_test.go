package experiments

import (
	"testing"

	"repro/internal/obs"
)

// TestRunRecordsExperimentSpan verifies that Run wraps every experiment in a
// timing span and threads the recorder down into the solver.
func TestRunRecordsExperimentSpan(t *testing.T) {
	reg := obs.NewRegistry(nil)
	opt := quickOpt()
	opt.Obs = reg
	if _, err := Run("fig5", opt); err != nil {
		t.Fatalf("Run(fig5): %v", err)
	}
	s := reg.Snapshot()
	if s.Counters["experiments.runs"] != 1 {
		t.Errorf("experiments.runs = %g, want 1", s.Counters["experiments.runs"])
	}
	if s.Histograms["experiment.fig5.seconds"].Count != 1 {
		t.Errorf("experiment span missing: %+v", s.Histograms)
	}
	if s.Counters["core.solver.solves"] <= 0 {
		t.Errorf("recorder not threaded into solver: %+v", s.Counters)
	}
	if s.Counters["pde.hjb.sweeps"] <= 0 {
		t.Errorf("recorder not threaded into PDE layer: %+v", s.Counters)
	}
}

// TestRunSpanRecordedOnError confirms telemetry still closes the span when an
// experiment fails.
func TestRunSpanRecordedOnError(t *testing.T) {
	reg := obs.NewRegistry(nil)
	opt := quickOpt()
	opt.Obs = reg
	if _, err := Run("no-such-experiment", opt); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	// Unknown IDs fail before the runner starts: no span, no run counter.
	s := reg.Snapshot()
	if s.Counters["experiments.runs"] != 0 {
		t.Errorf("unknown id must not count as a run: %+v", s.Counters)
	}
}

// Package experiments contains one runner per figure and table of the
// paper's evaluation (Section V). Each runner reproduces the corresponding
// workload, executes the MFG-CP stack (and the baselines where the paper
// compares them), and returns a Report whose tables and series carry the same
// rows the paper plots. DESIGN.md §4 maps every experiment to its modules;
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Options tunes a run without changing its meaning.
type Options struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Quick shrinks grids and populations so the whole suite finishes in
	// seconds (used by tests and -short benchmarks). Shapes are preserved.
	Quick bool
	// Obs receives the solver and market telemetry of every stage the
	// experiment runs (obs.Nop when nil). The CLI wires its -log-level,
	// -metrics-addr and -trace-out flags through this field; results are
	// unaffected.
	Obs obs.Recorder
	// Scheme selects the PDE time integrator for every equilibrium solve
	// ("implicit" — the default — or "explicit"; see pde.SchemeNames). The
	// CLI wires its -scheme flag through this field.
	Scheme string
	// EqCacheSize, when positive, bounds an equilibrium cache shared across
	// the epochs of each market run (see sim.Config.EqCacheSize). The CLI
	// wires its -eq-cache flag through this field.
	EqCacheSize int
	// Context, when set, bounds the whole experiment with cancellation or a
	// deadline: the market epoch loops and equilibrium solves abort promptly
	// when it fires. The CLI wires its -deadline flag and SIGINT handler
	// through this field. Nil means context.Background().
	Context context.Context
}

// DefaultOptions returns the options used when regenerating the paper's
// numbers.
func DefaultOptions() Options { return Options{Seed: 1} }

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []*metrics.Table
	Sets   []*metrics.SeriesSet
}

// Note appends a free-form observation to the report.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as human-readable text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	for _, set := range r.Sets {
		if _, err := fmt.Fprintf(w, "\n%s (%s vs %s)\n", set.Title, set.YLabel, set.XLabel); err != nil {
			return err
		}
		for _, s := range set.Series {
			spark := metrics.Sparkline(s.Downsample(maxInt(1, s.Len()/40)).Values)
			if _, err := fmt.Fprintf(w, "  %-28s %s  last=%.4g\n", s.Label, spark, s.Last()); err != nil {
				return err
			}
		}
	}
	if len(r.Notes) > 0 {
		if _, err := fmt.Fprintln(w, "\nNotes:"); err != nil {
			return err
		}
		for _, n := range r.Notes {
			if _, err := fmt.Fprintf(w, "  - %s\n", n); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes every table and series set of the report as CSV files in
// dir (created if missing), named <id>_<slug>.csv.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: create %s: %w", dir, err)
	}
	write := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", r.ID, slug(name)))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: create %s: %w", path, err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("experiments: write %s: %w", path, err)
		}
		return f.Close()
	}
	for _, t := range r.Tables {
		if err := write(t.Title, t.WriteCSV); err != nil {
			return err
		}
	}
	for _, s := range r.Sets {
		set := s
		if err := write(set.Title, set.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && b.String()[b.Len()-1] != '_':
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Runner produces a Report.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners; populated by init() in the
// per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs lists all registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %s not started: %w", id, err)
		}
	}
	rec := obs.OrNop(opt.Obs)
	span := rec.Start("experiment." + id)
	rep, err := r(opt)
	rec.Add("experiments.runs", 1)
	span.End(slog.String("id", id), slog.Bool("ok", err == nil))
	return rep, err
}

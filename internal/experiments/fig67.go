package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/metrics"
)

func init() {
	register("fig6", Fig6)
	register("fig7", Fig7)
}

// heatmapUnderQk solves the equilibrium for several content sizes Qk and
// reports the λ(t, q) heat map (as a table of the q-marginal at a time×space
// grid) plus the mean remaining-space trajectory, for a given initial
// distribution spread.
func heatmapUnderQk(id, title string, initStd float64, opt Options) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	sizes := []float64{60, 80, 100}
	meanSet := &metrics.SeriesSet{Title: "mean remaining space over time", XLabel: "time", YLabel: "E[q] (MB)"}
	concTable := metrics.NewTable("density concentration", "Qk (MB)", "std of q at t=0", "std of q at t=T", "saturation E[q](T)/Qk")

	for _, qk := range sizes {
		p := mec.Default()
		p.Qk = qk
		p.SigmaQ = 0.1 * qk
		p.InitStdFrac = initStd
		eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
		if err != nil {
			return nil, fmt.Errorf("Qk=%g: %w", qk, err)
		}
		steps := eq.Time.Steps

		// Heat map rows: time × q-bins of the marginal density.
		hm := metrics.NewTable(fmt.Sprintf("heatmap Qk=%.0fMB", qk), heatmapColumns(eq.Grid.Q.Nodes())...)
		for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
			n := int(frac * float64(steps))
			marg, err := eq.MarginalQ(n)
			if err != nil {
				return nil, err
			}
			cells := []string{fmt.Sprintf("t=%.2f", eq.Time.At(n))}
			for j := 0; j < len(marg); j += maxInt(1, len(marg)/10) {
				cells = append(cells, fmt.Sprintf("%.4f", marg[j]))
			}
			if err := hm.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		rep.Tables = append(rep.Tables, hm)

		// Mean remaining space trajectory from the snapshots.
		times := make([]float64, steps+1)
		means := make([]float64, steps+1)
		for n := 0; n <= steps; n++ {
			times[n] = eq.Time.At(n)
			means[n] = eq.Snapshots[n].QBar
		}
		s, err := metrics.NewSeries(fmt.Sprintf("Qk=%.0fMB", qk), times, means)
		if err != nil {
			return nil, err
		}
		meanSet.Add(s)

		std0, err := marginalStd(eq, 0)
		if err != nil {
			return nil, err
		}
		stdT, err := marginalStd(eq, steps)
		if err != nil {
			return nil, err
		}
		if err := concTable.AddRow(
			fmt.Sprintf("%.0f", qk),
			fmt.Sprintf("%.2f", std0),
			fmt.Sprintf("%.2f", stdT),
			fmt.Sprintf("%.3f", eq.Snapshots[steps].QBar/qk),
		); err != nil {
			return nil, err
		}
	}
	rep.Sets = append(rep.Sets, meanSet)
	rep.Tables = append(rep.Tables, concTable)
	return rep, nil
}

func heatmapColumns(qNodes []float64) []string {
	cols := []string{"time"}
	for j := 0; j < len(qNodes); j += maxInt(1, len(qNodes)/10) {
		cols = append(cols, fmt.Sprintf("q=%.0f", qNodes[j]))
	}
	return cols
}

// marginalStd computes the standard deviation of the remaining space q under
// the equilibrium's marginal density at time index n.
func marginalStd(eq *core.Equilibrium, n int) (float64, error) {
	marg, err := eq.MarginalQ(n)
	if err != nil {
		return 0, err
	}
	var mass, mean float64
	for j, v := range marg {
		q := eq.Grid.Q.At(j)
		mass += v
		mean += v * q
	}
	if mass <= 0 {
		return 0, nil
	}
	mean /= mass
	var acc float64
	for j, v := range marg {
		d := eq.Grid.Q.At(j) - mean
		acc += v * d * d
	}
	return math.Sqrt(acc / mass), nil
}

// Fig6 reproduces Figure 6: the heat map of the mean-field distribution for
// different content sizes Qk with λ(0) ~ N(0.7, 0.1²). Paper shape: caching
// space saturates progressively as Qk grows.
func Fig6(opt Options) (*Report, error) {
	rep, err := heatmapUnderQk("fig6", "Mean-field heat map vs Qk, λ(0)~N(0.7, 0.1²)", 0.1, opt)
	if err != nil {
		return nil, err
	}
	rep.Note("paper shape: larger Qk ⇒ caching space gradually saturates (strategy grows with Qk via Eq. 21)")
	return rep, nil
}

// Fig7 reproduces Figure 7: the same heat map with the tighter initial
// distribution λ(0) ~ N(0.7, 0.05²). Paper shape: the heat map is more
// concentrated (EDP caching states closer together); the Qk trend of Fig. 6
// persists.
func Fig7(opt Options) (*Report, error) {
	rep, err := heatmapUnderQk("fig7", "Mean-field heat map vs Qk, λ(0)~N(0.7, 0.05²)", 0.05, opt)
	if err != nil {
		return nil, err
	}
	rep.Note("paper shape: smaller initial variance ⇒ more concentrated heat map; Qk trend matches Fig. 6")
	return rep, nil
}

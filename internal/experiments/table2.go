package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/metrics"
	"repro/internal/policy"
)

func init() { register("table2", Table2) }

// Table2 reproduces Table II: the strategy-computation time of MFG-CP, RR and
// MPC as the number of EDPs grows (the paper sweeps M ∈ {50, 100, 200, 300}).
// Paper shape to match: MFG-CP's time is flat in M — the generic-player
// equilibrium is computed once for the whole population — while RR and MPC
// run per-EDP work and grow linearly. Absolute seconds differ from the
// paper's testbed; the scaling behaviour is the claim.
func Table2(opt Options) (*Report, error) {
	rep := &Report{ID: "table2", Title: "Strategy computation time vs number of EDPs (Table II)"}
	ms := []int{50, 100, 200, 300}
	reps := 3
	if opt.Quick {
		ms = []int{20, 60}
		reps = 1
	}
	cols := []string{"scheme"}
	for _, m := range ms {
		cols = append(cols, fmt.Sprintf("M=%d", m))
	}
	tab := metrics.NewTable("strategy computation time (seconds)", cols...)

	// Fresh cold policies per scheme: Table II times the strategy
	// determination itself, so the MFG-CP warm-start shortcut (an
	// optimisation of repeated epochs) is disabled here.
	pols := []func() policy.Policy{
		func() policy.Policy { p := policy.NewMFGCP(); p.DisableWarmStart = true; return p },
		func() policy.Policy { return policy.NewRR() },
		func() policy.Policy { return policy.NewMPC() },
	}
	growth := map[string][]float64{}
	for _, mk := range pols {
		pol := mk()
		row := []string{pol.Name()}
		for _, m := range ms {
			secs, err := timeStrategy(pol, m, reps, opt)
			if err != nil {
				return nil, fmt.Errorf("%s, M=%d: %w", pol.Name(), m, err)
			}
			row = append(row, fmt.Sprintf("%.6f", secs))
			growth[pol.Name()] = append(growth[pol.Name()], secs)
		}
		if err := tab.AddRow(row...); err != nil {
			return nil, err
		}
	}
	rep.Tables = append(rep.Tables, tab)

	mf := growth["MFG-CP"]
	rr := growth["RR"]
	rep.Note("MFG-CP time ratio (largest M / smallest M): %.2f — expected ≈1 (population-size independent)",
		metrics.Ratio(mf[len(mf)-1], mf[0]))
	rep.Note("RR time ratio (largest M / smallest M): %.2f — expected ≈%d (per-EDP strategy work)",
		metrics.Ratio(rr[len(rr)-1], rr[0]), ms[len(ms)-1]/ms[0])
	return rep, nil
}

// timeStrategy measures the strategy-determination step (policy.Prepare) for
// a population of m EDPs, averaged over reps repetitions.
func timeStrategy(pol policy.Policy, m, reps int, opt Options) (float64, error) {
	p := mec.Default()
	p.M = m
	catalog, err := mec.NewCatalog(p)
	if err != nil {
		return 0, err
	}
	ds, err := defaultTrace(p, opt.Seed)
	if err != nil {
		return 0, err
	}
	shares, err := ds.DayShares(0)
	if err != nil {
		return 0, err
	}
	timeliness := ds.Timeliness(p.LMax)
	reqs := make([]float64, p.K)
	for k := range reqs {
		reqs[k] = 30 * shares[k]
	}
	if err := catalog.UpdatePopularity(reqs); err != nil {
		return 0, err
	}
	workloads := make([]core.Workload, p.K)
	for k := range workloads {
		workloads[k] = core.Workload{Requests: reqs[k], Pop: catalog.Contents[k].Pop, Timeliness: timeliness[k]}
	}
	solver := solverConfig(p, opt)
	if opt.Quick {
		solver.NH, solver.NQ, solver.Steps, solver.MaxIters = 5, 21, 30, 15
	}
	ctx := &policy.EpochContext{
		Params:    p,
		Catalog:   catalog,
		Workloads: workloads,
		Solver:    solver,
		Epoch:     0,
		Seed:      opt.Seed,
		M:         m,
	}
	// Adaptive repetitions: the baselines prepare in microseconds, so keep
	// repeating until the measurement is long enough to be meaningful.
	var total time.Duration
	ran := 0
	for ran < reps || (total < 20*time.Millisecond && ran < 200) {
		start := time.Now()
		if err := pol.Prepare(ctx); err != nil {
			return 0, err
		}
		total += time.Since(start)
		ran++
	}
	return total.Seconds() / float64(ran), nil
}

package experiments

import (
	"fmt"

	"repro/internal/trace"
)

// popularityTrace builds a single-day trace whose view shares give content 0
// exactly the target popularity pi, with the remaining 1−pi split evenly over
// the other contents. Used by Fig. 13, which fixes the popularity of one
// selected content.
func popularityTrace(k int, pi float64, seed int64) (*trace.Dataset, error) {
	if k < 2 {
		return nil, fmt.Errorf("experiments: popularityTrace needs ≥2 contents, got %d", k)
	}
	if pi <= 0 || pi >= 1 {
		return nil, fmt.Errorf("experiments: target popularity must lie in (0,1), got %g", pi)
	}
	const totalViews = 1e6
	ds := &trace.Dataset{K: k, Days: 1}
	rest := (1 - pi) / float64(k-1)
	for c := 0; c < k; c++ {
		share := rest
		if c == 0 {
			share = pi
		}
		ds.Records = append(ds.Records, trace.Record{
			VideoID:      fmt.Sprintf("fix%02d-%d", c, seed),
			CategoryID:   c,
			TrendingDay:  0,
			Views:        int64(share * totalViews),
			Likes:        int64(share * totalViews / 50),
			CommentCount: int64(share * totalViews / 500),
		})
	}
	return ds, nil
}

package experiments

import (
	"fmt"

	"repro/internal/mec"
	"repro/internal/metrics"
)

func init() {
	register("fig10", Fig10)
	register("fig11", Fig11)
}

// Fig10 reproduces Figure 10: the impact of the initial mean-field
// distribution λ(0) ~ N(mean, 0.1²) for mean ∈ {0.5, 0.6, 0.7, 0.8}. Paper
// shapes to match: the EDP's utility stabilises regardless of the initial
// mean, while the average sharing benefit fluctuates mildly across means.
func Fig10(opt Options) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "Impact of the initial distribution λ(0)"}
	uSet := &metrics.SeriesSet{Title: "accumulated utility", XLabel: "time", YLabel: "∫U dt"}
	bSet := &metrics.SeriesSet{Title: "average sharing benefit", XLabel: "time", YLabel: "Φ̄²(t)"}
	finals := metrics.NewTable("end of horizon", "λ(0) mean", "total utility", "mean sharing benefit")

	for _, mean := range []float64{0.5, 0.6, 0.7, 0.8} {
		p := mec.Default()
		p.InitMeanFrac = mean
		eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
		if err != nil {
			return nil, fmt.Errorf("mean=%.1f: %w", mean, err)
		}
		roll, err := eq.EnsembleRollout(p.ChMean, mean*p.Qk, opt.Seed, ensembleSize(opt))
		if err != nil {
			return nil, err
		}
		us, err := metrics.NewSeries(fmt.Sprintf("mean=%.1f", mean), roll.Times, roll.CumUtility)
		if err != nil {
			return nil, err
		}
		uSet.Add(us)

		steps := eq.Time.Steps
		times := make([]float64, steps+1)
		bens := make([]float64, steps+1)
		var benAcc float64
		for n := 0; n <= steps; n++ {
			times[n] = eq.Time.At(n)
			bens[n] = eq.Snapshots[n].ShareBenefit
			benAcc += bens[n]
		}
		bs, err := metrics.NewSeries(fmt.Sprintf("mean=%.1f", mean), times, bens)
		if err != nil {
			return nil, err
		}
		bSet.Add(bs)

		u, _ := roll.Final()
		if err := finals.AddFloatRow(fmt.Sprintf("%.1f", mean), u, benAcc/float64(steps+1)); err != nil {
			return nil, err
		}
	}
	rep.Sets = append(rep.Sets, uSet, bSet)
	rep.Tables = append(rep.Tables, finals)
	rep.Note("paper shape: utilities achieve stability across λ(0) means; sharing benefit shows slight fluctuation")
	return rep, nil
}

// Fig11 reproduces Figure 11: the impact of the conversion parameter η1
// (supply → price discount, Eq. 5) swept over {1, 2, 3, 4}×base. Paper
// shapes to match: utility rises over the horizon while the instantaneous
// trading income declines (EDPs finish caching and trade less); a larger η1
// yields a lower utility and a lower trading income throughout.
func Fig11(opt Options) (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Impact of the conversion parameter η1"}
	uSet := &metrics.SeriesSet{Title: "accumulated utility", XLabel: "time", YLabel: "∫U dt"}
	trSet := &metrics.SeriesSet{Title: "trading income rate", XLabel: "time", YLabel: "Φ¹(t)"}
	finals := metrics.NewTable("end of horizon", "η1 (×10⁻³)", "total utility", "total trading income")

	base := mec.Default().Eta1 / 2 // default is 2×10⁻³; sweep 1..4×10⁻³
	var prevUtility float64
	first := true
	for _, mult := range []float64{1, 2, 3, 4} {
		p := mec.Default()
		p.Eta1 = mult * base
		eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
		if err != nil {
			return nil, fmt.Errorf("η1=%.0f: %w", mult, err)
		}
		roll, err := eq.EnsembleRollout(p.ChMean, p.InitMeanFrac*p.Qk, opt.Seed, ensembleSize(opt))
		if err != nil {
			return nil, err
		}
		us, err := metrics.NewSeries(fmt.Sprintf("η1=%.0fe-3", mult), roll.Times, roll.CumUtility)
		if err != nil {
			return nil, err
		}
		uSet.Add(us)
		ts, err := metrics.NewSeries(fmt.Sprintf("η1=%.0fe-3", mult), roll.Times, roll.Trading)
		if err != nil {
			return nil, err
		}
		trSet.Add(ts)

		u, tr := roll.Final()
		if err := finals.AddFloatRow(fmt.Sprintf("%.0f", mult), u, tr); err != nil {
			return nil, err
		}
		if !first && u > prevUtility {
			rep.Note("NOTE: utility did not decrease from η1=%.0f to the previous point (got %.2f > %.2f)", mult, u, prevUtility)
		}
		prevUtility = u
		first = false
	}
	rep.Sets = append(rep.Sets, uSet, trSet)
	rep.Tables = append(rep.Tables, finals)
	rep.Note("paper shape: larger η1 ⇒ lower price ⇒ lower utility and trading income; trading income decays over the horizon")
	return rep, nil
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// solverConfig sizes the equilibrium solver for the run mode.
func solverConfig(p mec.Params, opt Options) core.Config {
	cfg := core.DefaultConfig(p)
	cfg.Obs = opt.Obs
	cfg.Scheme = opt.Scheme
	if opt.Quick {
		cfg.NH = 7
		cfg.NQ = 31
		cfg.Steps = 48
		cfg.MaxIters = 30
	}
	return cfg
}

// baseWorkload is the single-content demand used by the equilibrium-level
// figures (4, 5, 6, 7, 8, 9, 10, 11): ten requesters, a popular content
// (Π = 0.3) with mid-range urgency.
func baseWorkload() core.Workload {
	return core.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

// solveEquilibrium runs Algorithm 2 and tolerates hitting ψ_th (the partial
// equilibrium is still the best response after ψ_th learning rounds, which is
// what Algorithm 2 returns in that case).
func solveEquilibrium(cfg core.Config, w core.Workload) (*core.Equilibrium, error) {
	eq, err := core.Solve(cfg, w)
	if err != nil {
		if eq != nil && len(eq.Residuals) > 0 {
			return eq, nil
		}
		return nil, err
	}
	return eq, nil
}

// ensembleSize returns the number of Brownian paths averaged by the
// representative-agent rollouts of the figure runners.
func ensembleSize(opt Options) int {
	if opt.Quick {
		return 16
	}
	return 64
}

// allPolicies returns fresh instances of the five compared schemes in the
// paper's order.
func allPolicies() []policy.Policy {
	return []policy.Policy{
		policy.NewMFGCP(),
		policy.NewMFG(),
		policy.NewUDCS(),
		policy.NewMPC(),
		policy.NewRR(),
	}
}

// marketConfig sizes the agent-based market simulation for the run mode.
// Comparison figures use a reduced catalogue so the per-content equilibrium
// solves stay fast; relative orderings are unaffected (verified by the
// shape tests).
func marketConfig(p mec.Params, pol policy.Policy, opt Options) sim.Config {
	cfg := sim.DefaultConfig(p, pol)
	cfg.Seed = opt.Seed
	cfg.Obs = opt.Obs
	cfg.Solver.Obs = opt.Obs
	cfg.Solver.Scheme = opt.Scheme
	cfg.EqCacheSize = opt.EqCacheSize
	cfg.Context = opt.Context
	if opt.Quick {
		cfg.Epochs = 1
		cfg.StepsPerEpoch = 20
		cfg.Solver.NH = 5
		cfg.Solver.NQ = 25
		cfg.Solver.Steps = 40
		cfg.Solver.MaxIters = 25
	} else {
		cfg.Epochs = 2
		cfg.StepsPerEpoch = 30
	}
	return cfg
}

// comparisonParams shrinks the population and catalogue for the multi-policy
// market figures (12, 13, 14) so each sweep point stays tractable.
func comparisonParams(opt Options) mec.Params {
	p := mec.Default()
	if opt.Quick {
		p.M = 20
		p.K = 4
	} else {
		p.M = 60
		p.K = 6
	}
	return p
}

// defaultTrace generates the synthetic trending trace for the given
// parameters and seed.
func defaultTrace(p mec.Params, seed int64) (*trace.Dataset, error) {
	gen := trace.DefaultGenConfig()
	gen.K = p.K
	gen.Seed = seed
	return trace.Generate(gen)
}

// ledgerTable renders population-mean ledgers of several runs side by side.
func ledgerTable(title string, results []*sim.Result) (*metrics.Table, error) {
	t := metrics.NewTable(title, "scheme", "utility", "trading", "sharing", "placement", "staleness", "share cost")
	for _, r := range results {
		l := r.MeanLedger()
		if err := t.AddRow(
			r.PolicyName,
			fmt.Sprintf("%.2f", r.MeanUtility()),
			fmt.Sprintf("%.2f", l.Trading),
			fmt.Sprintf("%.2f", l.Sharing),
			fmt.Sprintf("%.2f", l.Placement),
			fmt.Sprintf("%.2f", l.Staleness),
			fmt.Sprintf("%.2f", l.ShareCost),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

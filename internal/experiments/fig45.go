package experiments

import (
	"fmt"

	"repro/internal/mec"
	"repro/internal/metrics"
)

func init() {
	register("fig4", Fig4)
	register("fig5", Fig5)
}

// Fig4 reproduces Figure 4: the evolution of the mean-field distribution
// λ(t, q) at the equilibrium. Paper shapes to match: at a fixed time the
// density is unimodal in the remaining space q; as time evolves the mass at
// high remaining space (60–70 MB) vanishes while the density around ≈30–50 MB
// rises, because EDPs fill their caches with popular/urgent contents.
func Fig4(opt Options) (*Report, error) {
	p := mec.Default()
	eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig4", Title: "Mean-field distribution λ(t, q) at equilibrium"}

	// Density profiles over q at several times.
	prof := &metrics.SeriesSet{Title: "density profile over q", XLabel: "remaining space q (MB)", YLabel: "λ"}
	qNodes := eq.Grid.Q.Nodes()
	steps := eq.Time.Steps
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		n := int(frac * float64(steps))
		marg, err := eq.MarginalQ(n)
		if err != nil {
			return nil, err
		}
		s, err := metrics.NewSeries(fmt.Sprintf("t=%.2f", eq.Time.At(n)), qNodes, marg)
		if err != nil {
			return nil, err
		}
		prof.Add(s)
	}
	rep.Sets = append(rep.Sets, prof)

	// Density trajectories over time at fixed remaining-space levels (the
	// paper follows 30, 60, 70 MB).
	traj := &metrics.SeriesSet{Title: "density over time at fixed q", XLabel: "time", YLabel: "λ(q)"}
	for _, q := range []float64{30, 50, 60, 70} {
		j := eq.Grid.Q.NearestIndex(q)
		times := make([]float64, steps+1)
		vals := make([]float64, steps+1)
		for n := 0; n <= steps; n++ {
			marg, err := eq.MarginalQ(n)
			if err != nil {
				return nil, err
			}
			times[n] = eq.Time.At(n)
			vals[n] = marg[j]
		}
		s, err := metrics.NewSeries(fmt.Sprintf("q=%.0fMB", q), times, vals)
		if err != nil {
			return nil, err
		}
		traj.Add(s)
	}
	rep.Sets = append(rep.Sets, traj)

	// Peak tracking.
	peak := func(n int) (float64, error) {
		marg, err := eq.MarginalQ(n)
		if err != nil {
			return 0, err
		}
		best, bq := 0.0, 0.0
		for j, v := range marg {
			if v > best {
				best, bq = v, qNodes[j]
			}
		}
		return bq, nil
	}
	p0, err := peak(0)
	if err != nil {
		return nil, err
	}
	pT, err := peak(steps)
	if err != nil {
		return nil, err
	}
	rep.Note("density peak moves from q=%.0fMB at t=0 to q=%.0fMB at t=T (paper: mass leaves 60–70MB, grows near 30MB)", p0, pT)
	rep.Note("best-response iterations: %d, converged: %v", eq.Iterations, eq.Converged)
	return rep, nil
}

// Fig5 reproduces Figure 5: the equilibrium caching policy x*(t, q). Paper
// shapes to match: at a fixed time the optimal caching rate increases with
// the remaining caching space (over the plotted range q ∈ [10, 50]); over
// time the rate decreases, fastest where little space remains.
func Fig5(opt Options) (*Report, error) {
	p := mec.Default()
	eq, err := solveEquilibrium(solverConfig(p, opt), baseWorkload())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig5", Title: "Equilibrium caching strategy x*(t, q)"}
	g := eq.Grid
	hMid := p.ChMean
	steps := eq.Time.Steps

	// x* over q at several times.
	overQ := &metrics.SeriesSet{Title: "strategy over q", XLabel: "remaining space q (MB)", YLabel: "x*"}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		n := int(frac * float64(steps))
		t := eq.Time.At(n)
		qs := g.Q.Nodes()
		vals := make([]float64, len(qs))
		for j, q := range qs {
			x, err := eq.HJB.ControlAt(t, hMid, q)
			if err != nil {
				return nil, err
			}
			vals[j] = x
		}
		s, err := metrics.NewSeries(fmt.Sprintf("t=%.2f", t), qs, vals)
		if err != nil {
			return nil, err
		}
		overQ.Add(s)
	}
	rep.Sets = append(rep.Sets, overQ)

	// x* over time at the paper's caching states 10..50 MB.
	overT := &metrics.SeriesSet{Title: "strategy over time", XLabel: "time", YLabel: "x*"}
	for _, q := range []float64{10, 20, 30, 40, 50} {
		times := make([]float64, steps+1)
		vals := make([]float64, steps+1)
		for n := 0; n <= steps; n++ {
			t := eq.Time.At(n)
			x, err := eq.HJB.ControlAt(t, hMid, q)
			if err != nil {
				return nil, err
			}
			times[n] = t
			vals[n] = x
		}
		s, err := metrics.NewSeries(fmt.Sprintf("q=%.0fMB", q), times, vals)
		if err != nil {
			return nil, err
		}
		overT.Add(s)
	}
	rep.Sets = append(rep.Sets, overT)

	x10, err := eq.HJB.ControlAt(0, hMid, 10)
	if err != nil {
		return nil, err
	}
	x50, err := eq.HJB.ControlAt(0, hMid, 50)
	if err != nil {
		return nil, err
	}
	rep.Note("x*(t=0): %.3f at q=10MB vs %.3f at q=50MB (paper: increasing in the caching state)", x10, x50)
	return rep, nil
}

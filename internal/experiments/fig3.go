package experiments

import (
	"fmt"
	"math"

	"repro/internal/mec"
	"repro/internal/metrics"
	"repro/internal/numerics"
	"repro/internal/sde"
)

func init() { register("fig3", Fig3) }

// Fig3 reproduces Figure 3: the evolution of the channel fading coefficient
// under the mean-reverting Ornstein–Uhlenbeck dynamics of Eq. (1), for
// several long-term means υh and diffusion levels ϱh. The paper's
// observations to match: trajectories revert toward υh regardless of the
// start point, and a larger ϱh produces a visibly wider, less stable band.
func Fig3(opt Options) (*Report, error) {
	p := mec.Default()
	steps := 400
	if opt.Quick {
		steps = 100
	}
	horizon := 4.0
	dt := horizon / float64(steps)

	rep := &Report{ID: "fig3", Title: "Channel gain evolution under the OU model (Eq. 1)"}

	// Sweep the long-term mean with the default diffusion.
	meanSet := &metrics.SeriesSet{Title: "fading vs long-term mean", XLabel: "time", YLabel: "h(t)"}
	for _, mean := range []float64{3, 5, 7} {
		ou := sde.OU{Rate: p.ChRate, Mean: mean, Sigma: p.ChSigma}
		in := sde.Integrator{Proc: ou, Dt: dt, Lo: p.HMin, Hi: p.HMax, Reflect: true}
		path := in.SamplePath(p.HMin, steps, sde.NewChildRNG(opt.Seed, int(mean)))
		s, err := metrics.NewSeries(fmt.Sprintf("υh=%.0f", mean), path.Times, path.Values)
		if err != nil {
			return nil, err
		}
		meanSet.Add(s)
		// Quantify reversion: the tail of the path should hover near υh.
		tail := path.Values[len(path.Values)*3/4:]
		rep.Note("υh=%.0f: tail mean %.3f (target %.0f), tail std %.3f", mean,
			numerics.Mean(tail), mean, numerics.Summarize(tail).Std)
	}
	rep.Sets = append(rep.Sets, meanSet)

	// Sweep the diffusion with the default mean.
	sigSet := &metrics.SeriesSet{Title: "fading vs diffusion", XLabel: "time", YLabel: "h(t)"}
	stds := metrics.NewTable("trajectory dispersion vs ϱh", "ϱh", "tail std", "stationary std (exact)")
	for i, sig := range []float64{0.1, 0.3, 0.5} {
		scaled := sig * p.ChMean // ϱh is quoted on the normalised scale
		ou := sde.OU{Rate: p.ChRate, Mean: p.ChMean, Sigma: scaled}
		in := sde.Integrator{Proc: ou, Dt: dt, Lo: p.HMin, Hi: p.HMax, Reflect: true}
		path := in.SamplePath(p.ChMean, steps, sde.NewChildRNG(opt.Seed, 100+i))
		s, err := metrics.NewSeries(fmt.Sprintf("ϱh=%.1f", sig), path.Times, path.Values)
		if err != nil {
			return nil, err
		}
		sigSet.Add(s)
		tail := path.Values[len(path.Values)/2:]
		if err := stds.AddRow(
			fmt.Sprintf("%.1f", sig),
			fmt.Sprintf("%.3f", numerics.Summarize(tail).Std),
			fmt.Sprintf("%.3f", math.Sqrt(ou.StationaryVar())),
		); err != nil {
			return nil, err
		}
	}
	rep.Sets = append(rep.Sets, sigSet)
	rep.Tables = append(rep.Tables, stds)
	rep.Note("paper shape: mean reversion toward υh; larger ϱh ⇒ wider deviation band (the reason the evaluation fixes ϱh=0.1)")
	return rep, nil
}

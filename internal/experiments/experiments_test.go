package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext-capacity", "ext-exactgame", "ext-longrun", "fig10", "fig11", "fig12", "fig13", "fig14", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nonexistent", quickOpt()); err == nil {
		t.Error("unknown id should error")
	}
}

// Every registered experiment must run to completion in quick mode and
// produce a renderable report with at least one table or series set.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, quickOpt())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if rep.ID != id {
				t.Errorf("report id %q, want %q", rep.ID, id)
			}
			if len(rep.Tables)+len(rep.Sets) == 0 {
				t.Error("report carries no tables or series")
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(buf.String(), id) {
				t.Error("rendered report does not mention its id")
			}
		})
	}
}

func TestReportWriteCSV(t *testing.T) {
	rep, err := Run("fig3", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(rep.Tables)+len(rep.Sets) {
		t.Fatalf("wrote %d files, want %d", len(entries), len(rep.Tables)+len(rep.Sets))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "fig3_") || !strings.HasSuffix(e.Name(), ".csv") {
			t.Errorf("unexpected artefact name %q", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", e.Name())
		}
	}
}

func TestSlug(t *testing.T) {
	if got := slug("Mean-Field Heat Map (Qk)"); got != "mean_field_heat_map_qk" {
		t.Errorf("slug = %q", got)
	}
	if got := slug("___"); got != "" {
		t.Errorf("slug of separators = %q", got)
	}
}

// Shape assertions on the headline results, in quick mode.

func TestFig5ShapeIncreasingInQ(t *testing.T) {
	rep, err := Run("fig5", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// First series of the first set is x* over q at t=0.
	s := rep.Sets[0].Series[0]
	// Compare x* deep in the paper's plotted range [10, 50].
	var x10, x50 float64
	for i, q := range s.Times {
		if q == 10 {
			x10 = s.Values[i]
		}
		if q == 50 {
			x50 = s.Values[i]
		}
	}
	if x50 <= x10 {
		t.Errorf("x*(q=50)=%.3f should exceed x*(q=10)=%.3f", x50, x10)
	}
}

func TestFig14MFGCPWins(t *testing.T) {
	rep, err := Run("fig14", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0] // scheme comparison
	utilities := map[string]float64{}
	for _, row := range tab.Rows {
		u, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad utility cell %q", row[1])
		}
		utilities[row[0]] = u
	}
	for _, base := range []string{"MFG", "UDCS", "MPC", "RR"} {
		if utilities["MFG-CP"] <= utilities[base] {
			t.Errorf("MFG-CP (%.1f) should beat %s (%.1f)", utilities["MFG-CP"], base, utilities[base])
		}
	}
}

func TestTable2MFGCPFlatInM(t *testing.T) {
	rep, err := Run("table2", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	var mfgcp, rr []float64
	for _, row := range tab.Rows {
		vals := make([]float64, 0, len(row)-1)
		for _, c := range row[1:] {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatalf("bad cell %q", c)
			}
			vals = append(vals, v)
		}
		switch row[0] {
		case "MFG-CP":
			mfgcp = vals
		case "RR":
			rr = vals
		}
	}
	// MFG-CP within 2× across the M sweep; RR grows by ≥1.5× for 3× M.
	if mfgcp[len(mfgcp)-1] > 2*mfgcp[0] {
		t.Errorf("MFG-CP timing grew with M: %v", mfgcp)
	}
	if rr[len(rr)-1] < 1.5*rr[0] {
		t.Errorf("RR timing did not grow with M: %v", rr)
	}
}

func TestPopularityTrace(t *testing.T) {
	ds, err := popularityTrace(5, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := ds.CategoryShares()
	if shares[0] < 0.59 || shares[0] > 0.61 {
		t.Errorf("target share = %g, want ≈0.6", shares[0])
	}
	if _, err := popularityTrace(1, 0.5, 1); err == nil {
		t.Error("k<2 should error")
	}
	if _, err := popularityTrace(5, 1.5, 1); err == nil {
		t.Error("pi>1 should error")
	}
}

package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzSegmentDecode feeds arbitrary bytes through the segment record decoder
// and the full segment scanner. The contract under fuzzing:
//
//   - decodeRecord never panics and classifies every input as a valid
//     record, io.EOF, a torn tail or a corrupt (framed, CRC-failed) record;
//   - a successfully decoded record re-encodes to exactly the bytes it was
//     decoded from (codec round-trip);
//   - scanSegment terminates with a validLen inside the buffer and consistent
//     accounting.
//
// The corpus seeds the interesting neighbourhood: whole valid records,
// truncations at every frame boundary, and bit flips in the header and
// payload.
func FuzzSegmentDecode(f *testing.F) {
	rec := appendRecord(nil, "engine-key", []byte("equilibrium-blob"))
	two := appendRecord(append([]byte{}, rec...), "second", bytes.Repeat([]byte{7}, 40))
	f.Add([]byte{})
	f.Add(rec)
	f.Add(two)
	f.Add(rec[:headerSize-1]) // short header
	f.Add(rec[:headerSize+3]) // torn body
	for _, cut := range []int{1, headerSize, len(rec) - 1} {
		f.Add(two[:len(rec)+cut])
	}
	flip := func(src []byte, i int) []byte {
		out := append([]byte{}, src...)
		out[i%len(out)] ^= 0x20
		return out
	}
	f.Add(flip(rec, 0))            // magic
	f.Add(flip(rec, 5))            // keyLen
	f.Add(flip(rec, 14))           // crc
	f.Add(flip(rec, headerSize+2)) // key bytes
	f.Add(flip(rec, len(rec)-1))   // blob bytes
	f.Add(flip(two, len(rec)+6))   // second record's lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		key, blob, n, err := decodeRecord(data)
		switch {
		case err == nil:
			if n < headerSize || n > int64(len(data)) {
				t.Fatalf("decoded size %d out of range [%d,%d]", n, headerSize, len(data))
			}
			enc := appendRecord(nil, key, blob)
			if !bytes.Equal(enc, data[:n]) {
				t.Fatalf("round trip mismatch: %x != %x", enc, data[:n])
			}
		case errors.Is(err, io.EOF):
			if len(data) != 0 {
				t.Fatalf("EOF on %d bytes", len(data))
			}
		case errors.Is(err, errCorruptRecord):
			if n < headerSize || n > int64(len(data)) {
				t.Fatalf("corrupt record size %d out of range", n)
			}
		case errors.Is(err, errTornRecord):
			// n is unspecified for torn input.
		default:
			t.Fatalf("unclassified decode error: %v", err)
		}

		res := scanSegment(data)
		if res.validLen < 0 || res.validLen > int64(len(data)) {
			t.Fatalf("scan validLen %d outside [0,%d]", res.validLen, len(data))
		}
		for _, r := range res.records {
			if r.off < 0 || r.off+r.size > res.validLen {
				t.Fatalf("scanned record [%d,%d) outside valid prefix %d", r.off, r.off+r.size, res.validLen)
			}
		}
		if res.torn && res.validLen == int64(len(data)) {
			t.Fatal("torn tail reported with the whole buffer valid")
		}
	})
}

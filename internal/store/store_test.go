package store

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

func testStore(t *testing.T, cfg Config) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.Obs = reg
	cfg.Log = slog.New(slog.NewTextHandler(testWriter{t}, nil))
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, reg
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func blobFor(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 20+i%7)
}

// TestRoundTripAndRecovery is the tentpole happy path: puts survive a close
// and a fresh Open recovers the full index from the segment files.
func TestRoundTripAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, reg := testStore(t, Config{Dir: dir})
	const n = 25
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%03d", i), blobFor(i))
	}
	s.Flush()
	for i := 0; i < n; i++ {
		blob, ok := s.Get(fmt.Sprintf("key-%03d", i))
		if !ok || !bytes.Equal(blob, blobFor(i)) {
			t.Fatalf("key-%03d: ok=%v blob mismatch", i, ok)
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key reported present")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["store.put"]; got != n {
		t.Errorf("store.put = %g, want %d", got, n)
	}
	if got := snap.Counters["store.hit"]; got != n {
		t.Errorf("store.hit = %g, want %d", got, n)
	}
	if got := snap.Counters["store.miss"]; got != 1 {
		t.Errorf("store.miss = %g, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, reg2 := testStore(t, Config{Dir: dir})
	if s2.Len() != n {
		t.Fatalf("recovered %d records, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		blob, ok := s2.Get(fmt.Sprintf("key-%03d", i))
		if !ok || !bytes.Equal(blob, blobFor(i)) {
			t.Fatalf("after recovery, key-%03d: ok=%v blob mismatch", i, ok)
		}
	}
	if got := reg2.Snapshot().Counters["store.recovered"]; got != n {
		t.Errorf("store.recovered = %g, want %d", got, n)
	}
}

// TestTornTailTruncation crashes mid-append by construction: garbage (and a
// partial frame) after the last full record must be truncated away on Open
// while the valid prefix is fully retained — startup succeeds, it never
// fails on a torn segment.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := testStore(t, Config{Dir: dir})
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("key-%d", i), blobFor(i))
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %v", segs)
	}
	intact, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a valid header prefix whose body never made it to disk.
	torn := append(append([]byte{}, intact...), appendRecord(nil, "late-key", blobFor(9))[:headerSize+3]...)
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, reg := testStore(t, Config{Dir: dir})
	if s2.Len() != 5 {
		t.Fatalf("recovered %d records after torn tail, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Errorf("key-%d lost to truncation", i)
		}
	}
	if got := reg.Snapshot().Counters["store.truncated"]; got != 1 {
		t.Errorf("store.truncated = %g, want 1", got)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, intact) {
		t.Errorf("segment not truncated back to the valid prefix: %d bytes, want %d", len(data), len(intact))
	}
	// The tier keeps accepting writes after recovery.
	s2.Put("post-recovery", blobFor(7))
	s2.Flush()
	if _, ok := s2.Get("post-recovery"); !ok {
		t.Error("store rejects writes after torn-tail recovery")
	}
}

// TestCorruptRecordSkipped is the mutation-style never-serve-CRC-fail check:
// a bit-flipped record is skipped during recovery, logged, counted in
// store.corrupt.total, and the surrounding records survive.
func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := testStore(t, Config{Dir: dir})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("key-%d", i), blobFor(i))
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of the middle record (frame lengths untouched, so
	// the scan can resynchronise at the next record).
	mid := recordSize("key-0", blobFor(0)) + headerSize + int64(len("key-1"))
	data[mid] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, reg := testStore(t, Config{Dir: dir})
	if _, ok := s2.Get("key-1"); ok {
		t.Fatal("corrupt record served — never-serve-CRC-fail invariant broken")
	}
	for _, k := range []string{"key-0", "key-2"} {
		if _, ok := s2.Get(k); !ok {
			t.Errorf("%s lost alongside the corrupt record", k)
		}
	}
	if got := reg.Snapshot().Counters["store.corrupt.total"]; got != 1 {
		t.Errorf("store.corrupt.total = %g, want 1", got)
	}
}

// TestGetTimeCorruption rots a record after startup: Get must verify the CRC
// on every read, drop the record and report a miss, never return the bytes.
func TestGetTimeCorruption(t *testing.T) {
	dir := t.TempDir()
	s, reg := testStore(t, Config{Dir: dir})
	s.Put("k", blobFor(3))
	s.Flush()

	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, headerSize+1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if blob, ok := s.Get("k"); ok {
		t.Fatalf("CRC-failed record served: %x", blob)
	}
	if got := reg.Snapshot().Counters["store.corrupt.total"]; got != 1 {
		t.Errorf("store.corrupt.total = %g, want 1", got)
	}
	// The record is gone from the index: a repeat is a plain miss.
	if _, ok := s.Get("k"); ok {
		t.Error("dropped record resurfaced")
	}
}

// TestCompactionBoundsDisk forces segment rolls with a tiny budget and
// checks the oldest segments (and their keys) are evicted while the newest
// stay servable and the disk usage stays bounded.
func TestCompactionBoundsDisk(t *testing.T) {
	s, reg := testStore(t, Config{SegmentBytes: 256, MaxDiskBytes: 1024})
	const n = 60
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%03d", i), blobFor(i))
	}
	s.Flush()
	if got := s.DiskBytes(); got > 1024+256 {
		t.Errorf("disk usage %d exceeds budget+active slack", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["store.compactions"] == 0 {
		t.Fatal("no compactions under a 1 KiB budget")
	}
	if snap.Counters["store.evicted"] == 0 {
		t.Fatal("compaction evicted no records")
	}
	if _, ok := s.Get(fmt.Sprintf("key-%03d", n-1)); !ok {
		t.Error("newest record evicted")
	}
	if _, ok := s.Get("key-000"); ok {
		t.Error("oldest record survived a full compaction cycle")
	}
	if s.Len() >= n {
		t.Errorf("index holds %d records, eviction never happened", s.Len())
	}
}

// TestDuplicatePutSkipped: keys are immutable, so re-putting an existing key
// must not grow the log.
func TestDuplicatePutSkipped(t *testing.T) {
	s, reg := testStore(t, Config{})
	s.Put("k", blobFor(1))
	s.Flush()
	size := s.DiskBytes()
	for i := 0; i < 5; i++ {
		s.Put("k", blobFor(1))
	}
	s.Flush()
	if got := s.DiskBytes(); got != size {
		t.Errorf("duplicate puts grew the log: %d -> %d bytes", size, got)
	}
	if got := reg.Snapshot().Counters["store.put.duplicate"]; got != 5 {
		t.Errorf("store.put.duplicate = %g, want 5", got)
	}
}

// TestDiskFullDegradation injects append failures (the ENOSPC path): puts
// are dropped and counted, existing records keep serving, and the store
// recovers once the disk frees up.
func TestDiskFullDegradation(t *testing.T) {
	s, reg := testStore(t, Config{})
	s.Put("pre", blobFor(1))
	s.Flush()

	var mu sync.Mutex
	failing := true
	s.failAppend = func() error {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return errors.New("no space left on device")
		}
		return nil
	}
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("lost-%d", i), blobFor(i))
	}
	s.Flush()
	if got := reg.Snapshot().Counters["store.write.errors"]; got != 4 {
		t.Errorf("store.write.errors = %g, want 4", got)
	}
	if _, ok := s.Get("lost-0"); ok {
		t.Error("failed append still indexed")
	}
	if _, ok := s.Get("pre"); !ok {
		t.Error("pre-existing record lost during disk-full degradation")
	}

	mu.Lock()
	failing = false
	mu.Unlock()
	s.Put("after", blobFor(2))
	s.Flush()
	if _, ok := s.Get("after"); !ok {
		t.Error("store did not recover after the disk freed up")
	}
}

// TestPutAfterCloseAndQueueOverflow: Put after Close is a no-op and an
// overflowing write-behind queue drops instead of blocking.
func TestPutAfterCloseAndQueueOverflow(t *testing.T) {
	s, _ := testStore(t, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Put("k", blobFor(1)) // must not panic or block
	if err := s.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestConcurrentAccess hammers Put/Get from many goroutines under -race.
func TestConcurrentAccess(t *testing.T) {
	s, _ := testStore(t, Config{SegmentBytes: 512, MaxDiskBytes: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				s.Put(key, blobFor(i))
				s.Get(key)
				s.Get(fmt.Sprintf("g%d-k%d", (g+1)%8, i))
			}
		}(g)
	}
	wg.Wait()
	s.Flush()
	if s.Len() == 0 {
		t.Fatal("no records survived the concurrent run")
	}
}

// TestOpenIgnoresForeignFiles: non-segment files in the cache dir are left
// alone and do not fail recovery.
func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := testStore(t, Config{Dir: dir})
	s.Put("k", blobFor(1))
	s.Flush()
	if _, ok := s.Get("k"); !ok {
		t.Fatal("store unusable with foreign files present")
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Errorf("foreign file touched: %v", err)
	}
}

// TestOpenValidation pins the error paths of Open.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("empty dir accepted")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Error("dir under a regular file accepted")
	}
}

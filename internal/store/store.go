// Package store is the crash-safe persistent cache tier below the serving
// daemon's in-memory LRU: an append-only segment-file store keyed by the
// canonical quantised engine.CacheKey, so a daemon restart comes up warm
// instead of cold-starting the fleet into the PDE path.
//
// Durability model:
//
//   - writes are write-behind: Put enqueues onto a bounded queue and never
//     blocks the solve path; a full queue drops the write (the record is a
//     cache entry, not the system of record) and counts it;
//   - the active segment is appended in place; a segment roll fsyncs the
//     sealed file before opening the next one, and Close fsyncs the active
//     tail, so a clean shutdown loses nothing and a SIGKILL loses at most the
//     not-yet-synced tail of the active segment;
//   - startup recovery scans every segment through the record envelope
//     (magic/version/CRC32): a torn tail is truncated away (the valid prefix
//     is retained), a CRC-failed record is skipped, logged and counted in
//     store.corrupt — recovery never fails on bad data, it only sheds it;
//   - reads re-verify the CRC on every Get, so a record that rots after
//     startup is dropped from the index and reported as a miss — the store
//     never returns bytes whose checksum does not match;
//   - the disk budget is enforced by segment-granular compaction: when total
//     bytes exceed MaxDiskBytes the oldest sealed segments are deleted and
//     their keys evicted. Keys are immutable (the mean-field equilibrium for
//     a key is unique), so records are never superseded and dropping the
//     oldest segment evicts exactly the coldest-by-insertion entries.
package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Config parametrises one store.
type Config struct {
	// Dir is the segment directory; it is created when missing.
	Dir string
	// MaxDiskBytes bounds the total segment bytes on disk; exceeding it
	// triggers compaction (default 256 MiB; minimum one segment).
	MaxDiskBytes int64
	// SegmentBytes is the roll threshold of the active segment (default
	// 8 MiB). Tests shrink it to force rolls and compaction.
	SegmentBytes int64
	// QueueDepth bounds the write-behind queue; a full queue drops the write
	// and counts store.put.dropped (default 256).
	QueueDepth int
	// Obs receives the store.* metrics. Nil means no-op.
	Obs obs.Recorder
	// Log receives recovery and corruption warnings. Nil disables logging.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxDiskBytes <= 0 {
		c.MaxDiskBytes = 256 << 20
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.SegmentBytes > c.MaxDiskBytes {
		c.SegmentBytes = c.MaxDiskBytes
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// recordLoc locates one live record: the segment it lives in and the frame
// offset/size within it.
type recordLoc struct {
	seg  uint64
	off  int64
	size int64
}

// segment is one on-disk segment file with its read/write handle.
type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64
}

// Store is the persistent cache tier. All methods are safe for concurrent
// use; appends are serialised on a single background writer.
type Store struct {
	cfg Config
	rec obs.Recorder
	log *slog.Logger

	mu    sync.Mutex
	index map[string]recordLoc
	segs  []*segment // ascending id; last is active
	total int64      // sum of segment sizes

	putCh chan putReq
	wg    sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	// failAppend, when set (tests only), intercepts segment appends to
	// simulate disk faults (ENOSPC, I/O errors): the store must degrade to a
	// miss-only tier, never corrupt state or panic.
	failAppend func() error
}

type putReq struct {
	key   string
	blob  []byte
	flush chan struct{} // non-nil marks a flush barrier, key/blob unused
}

const segSuffix = ".seg"

// Open opens (or creates) the store in cfg.Dir and recovers its index by
// scanning every segment. Recovery is forgiving by design: torn tails are
// truncated, corrupt records skipped and counted; only genuine I/O and
// permission errors fail the open.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		cfg:   cfg,
		rec:   obs.OrNop(cfg.Obs),
		log:   cfg.Log,
		index: make(map[string]recordLoc),
		putCh: make(chan putReq, cfg.QueueDepth),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.compactLocked()
	s.publishGauges()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// recover scans the segment directory and rebuilds the index.
func (s *Store) recover() error {
	names, err := filepath.Glob(filepath.Join(s.cfg.Dir, "*"+segSuffix))
	if err != nil {
		return fmt.Errorf("store: list segments: %w", err)
	}
	ids := make([]uint64, 0, len(names))
	byID := make(map[uint64]string, len(names))
	for _, name := range names {
		var id uint64
		base := filepath.Base(name)
		if _, err := fmt.Sscanf(base, "%016x"+segSuffix, &id); err != nil {
			s.warn("ignoring foreign file in cache dir", "file", base)
			continue
		}
		ids = append(ids, id)
		byID[id] = name
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var recovered, corrupt, truncated int
	for _, id := range ids {
		path := byID[id]
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: read segment %s: %w", path, err)
		}
		res := scanSegment(data)
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: open segment %s: %w", path, err)
		}
		if res.torn {
			if err := f.Truncate(res.validLen); err != nil {
				f.Close()
				return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
			}
			truncated++
			s.warn("truncated torn segment tail",
				"segment", filepath.Base(path), "valid_bytes", res.validLen,
				"dropped_bytes", int64(len(data))-res.validLen)
		}
		for _, r := range res.records {
			// Later segments win, though keys are immutable in practice.
			s.index[r.key] = recordLoc{seg: id, off: r.off, size: r.size}
		}
		recovered += len(res.records)
		if res.corrupt > 0 {
			corrupt += res.corrupt
			s.warn("skipped corrupt records during recovery",
				"segment", filepath.Base(path), "corrupt", res.corrupt)
		}
		s.segs = append(s.segs, &segment{id: id, path: path, f: f, size: res.validLen})
		s.total += res.validLen
	}
	if err := s.ensureActiveLocked(); err != nil {
		return err
	}
	s.rec.Add("store.recovered", float64(recovered))
	if corrupt > 0 {
		s.rec.Add("store.corrupt.total", float64(corrupt))
	}
	if truncated > 0 {
		s.rec.Add("store.truncated", float64(truncated))
	}
	return nil
}

// ensureActiveLocked guarantees a writable active segment: the newest one if
// it has room, a fresh one otherwise.
func (s *Store) ensureActiveLocked() error {
	if n := len(s.segs); n > 0 && s.segs[n-1].size < s.cfg.SegmentBytes {
		return nil
	}
	var next uint64 = 1
	if n := len(s.segs); n > 0 {
		next = s.segs[n-1].id + 1
	}
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("%016x%s", next, segSuffix))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	s.segs = append(s.segs, &segment{id: next, path: path, f: f})
	return nil
}

// Get returns the blob stored under key. The record's CRC is re-verified on
// every read: a record that fails it is dropped from the index, counted in
// store.corrupt and reported as a miss — corrupt bytes are never returned.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	loc, ok := s.index[key]
	var f *os.File
	if ok {
		for _, seg := range s.segs {
			if seg.id == loc.seg {
				f = seg.f
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok || f == nil {
		s.rec.Add("store.miss", 1)
		return nil, false
	}
	buf := make([]byte, loc.size)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		if errors.Is(err, os.ErrClosed) {
			// Compaction closed the segment between lookup and read: the
			// entry was evicted, not corrupted.
			s.rec.Add("store.miss", 1)
			return nil, false
		}
		s.dropCorrupt(key, "read failed", err)
		return nil, false
	}
	gotKey, blob, _, err := decodeRecord(buf)
	if err != nil || gotKey != key {
		if err == nil {
			err = fmt.Errorf("store: record key mismatch")
		}
		s.dropCorrupt(key, "checksum verification failed", err)
		return nil, false
	}
	s.rec.Add("store.hit", 1)
	// blob aliases buf, which is private to this call — safe to return.
	return blob, true
}

// dropCorrupt removes a record that failed read-time verification.
func (s *Store) dropCorrupt(key, reason string, err error) {
	s.mu.Lock()
	delete(s.index, key)
	s.publishGauges()
	s.mu.Unlock()
	s.rec.Add("store.corrupt.total", 1)
	s.rec.Add("store.miss", 1)
	s.warn("dropped corrupt record", "reason", reason, "error", err)
}

// Put schedules the blob for persistence under key. It never blocks: with
// the write-behind queue full the write is dropped and counted — the entry
// stays servable from the in-memory tier, the disk tier just stays cold for
// it. Put after Close is a silent no-op.
func (s *Store) Put(key string, blob []byte) {
	if key == "" || len(key) > maxKeyLen || int64(len(blob)) > maxBlobLen {
		s.rec.Add("store.put.dropped", 1)
		return
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return
	}
	select {
	case s.putCh <- putReq{key: key, blob: blob}:
	default:
		s.rec.Add("store.put.dropped", 1)
	}
}

// Flush blocks until every Put enqueued before it has been applied. Tests
// and the drain path use it; Close implies it.
func (s *Store) Flush() {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return
	}
	barrier := make(chan struct{})
	s.putCh <- putReq{flush: barrier}
	s.closeMu.RUnlock()
	<-barrier
}

// Close drains the write-behind queue, fsyncs the active segment and closes
// every handle. Idempotent.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.putCh)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var retErr error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && retErr == nil {
			retErr = fmt.Errorf("store: sync %s: %w", seg.path, err)
		}
		if err := seg.f.Close(); err != nil && retErr == nil {
			retErr = fmt.Errorf("store: close %s: %w", seg.path, err)
		}
	}
	return retErr
}

// writer is the single append goroutine: it applies write-behind puts, rolls
// segments and compacts past the disk budget.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.putCh {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		s.apply(req.key, req.blob)
	}
}

// apply appends one record, rolling and compacting as needed.
func (s *Store) apply(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.index[key]; exists {
		// Keys are immutable (the equilibrium for a key is unique); the
		// record on disk is already the answer.
		s.rec.Add("store.put.duplicate", 1)
		return
	}
	active := s.segs[len(s.segs)-1]
	frame := appendRecord(make([]byte, 0, recordSize(key, blob)), key, blob)
	if s.failAppend != nil {
		if err := s.failAppend(); err != nil {
			s.rec.Add("store.write.errors", 1)
			s.warn("segment append failed", "error", err)
			return
		}
	}
	if _, err := active.f.WriteAt(frame, active.size); err != nil {
		// Disk full or I/O error: drop the record, keep the tier serving.
		// The partial frame (if any) is past the tracked size, so the next
		// successful append overwrites it and recovery truncates it.
		s.rec.Add("store.write.errors", 1)
		s.warn("segment append failed", "error", err)
		return
	}
	off := active.size
	active.size += int64(len(frame))
	s.total += int64(len(frame))
	s.index[key] = recordLoc{seg: active.id, off: off, size: int64(len(frame))}
	s.rec.Add("store.put", 1)

	if active.size >= s.cfg.SegmentBytes {
		s.rollLocked()
	}
	s.publishGauges()
}

// rollLocked seals the active segment (fsync) and opens the next one, then
// enforces the disk budget.
func (s *Store) rollLocked() {
	active := s.segs[len(s.segs)-1]
	if err := active.f.Sync(); err != nil {
		s.rec.Add("store.write.errors", 1)
		s.warn("segment sync on roll failed", "segment", filepath.Base(active.path), "error", err)
	}
	if err := s.ensureActiveLocked(); err != nil {
		s.rec.Add("store.write.errors", 1)
		s.warn("segment roll failed", "error", err)
		return
	}
	s.rec.Add("store.rolls", 1)
	s.compactLocked()
}

// compactLocked enforces MaxDiskBytes by deleting the oldest sealed segments
// and evicting their keys. The active segment is never deleted.
func (s *Store) compactLocked() {
	for s.total > s.cfg.MaxDiskBytes && len(s.segs) > 1 {
		victim := s.segs[0]
		s.segs = s.segs[1:]
		var evicted int
		for key, loc := range s.index {
			if loc.seg == victim.id {
				delete(s.index, key)
				evicted++
			}
		}
		victim.f.Close()
		if err := os.Remove(victim.path); err != nil {
			s.warn("compaction could not remove segment", "segment", filepath.Base(victim.path), "error", err)
		}
		s.total -= victim.size
		s.rec.Add("store.compactions", 1)
		s.rec.Add("store.evicted", float64(evicted))
		s.warn("compacted oldest segment", "segment", filepath.Base(victim.path),
			"evicted_records", evicted, "freed_bytes", victim.size)
	}
}

// publishGauges refreshes the size gauges (caller holds mu).
func (s *Store) publishGauges() {
	s.rec.Gauge("store.records", float64(len(s.index)))
	s.rec.Gauge("store.bytes", float64(s.total))
	s.rec.Gauge("store.segments", float64(len(s.segs)))
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// DiskBytes returns the total bytes across segments.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Segments returns the number of segment files.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

func (s *Store) warn(msg string, args ...any) {
	if s.log != nil {
		s.log.Warn("store: "+msg, args...)
	}
}

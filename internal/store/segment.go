package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The on-disk unit of the persistent cache tier is an append-only segment
// file holding a sequence of framed records. Each record carries its own
// integrity envelope — magic, format version, explicit lengths and a CRC32
// over the payload — mirroring the checkpoint discipline of internal/sim: no
// byte of a record is trusted before the frame around it checks out.
//
// Record layout (little endian, 17-byte header):
//
//	magic   uint32  recordMagic
//	version uint8   recordVersion
//	keyLen  uint32  length of the cache key
//	blobLen uint32  length of the value blob
//	crc     uint32  CRC32 (IEEE) over key ‖ blob
//	key     keyLen bytes
//	blob    blobLen bytes
//
// Two distinct failure classes fall out of this frame, and recovery treats
// them differently:
//
//   - a torn tail (short header, bad magic/version, implausible lengths, or a
//     body that runs past the end of the file) marks the point where a crash
//     interrupted an append: everything before it is intact, nothing after it
//     is trustworthy, so the scan truncates the segment there;
//   - a corrupt record (frame intact, CRC mismatch — bit rot or seeded fault
//     injection) is skipped individually: the lengths still frame the record,
//     so the scan resynchronises at the next record and keeps the rest of the
//     segment.
const (
	recordMagic   uint32 = 0x4d464753 // "MFGS"
	recordVersion byte   = 1
	headerSize           = 4 + 1 + 4 + 4 + 4

	// maxKeyLen / maxBlobLen bound the lengths a header may claim before the
	// scan declares the frame implausible. Cache keys are ~1 KiB canonical
	// strings and equilibrium blobs a few MiB of gob; anything beyond these
	// bounds is a torn or foreign frame, not data.
	maxKeyLen  = 1 << 16 // 64 KiB
	maxBlobLen = 1 << 26 // 64 MiB
)

var (
	// errTornRecord marks the unrecoverable tail of a segment: the bytes at
	// this offset are not a complete, plausible record frame. The scan
	// truncates here.
	errTornRecord = errors.New("store: torn record")
	// errCorruptRecord marks a fully framed record whose payload fails its
	// CRC. The scan skips exactly this record and continues.
	errCorruptRecord = errors.New("store: corrupt record (checksum mismatch)")
)

// appendRecord encodes one record frame onto dst and returns the extended
// slice.
func appendRecord(dst []byte, key string, blob []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recordMagic)
	hdr[4] = recordVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(blob)))
	crc := crc32.ChecksumIEEE([]byte(key))
	crc = crc32.Update(crc, crc32.IEEETable, blob)
	binary.LittleEndian.PutUint32(hdr[13:17], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, blob...)
	return dst
}

// recordSize returns the framed size of one record.
func recordSize(key string, blob []byte) int64 {
	return int64(headerSize + len(key) + len(blob))
}

// decodeRecord decodes the record frame at the start of b. It returns the
// key, the blob (aliasing b, not copied) and the number of bytes the record
// occupies. Errors classify the input: io.EOF for an empty buffer (clean end
// of segment), errTornRecord for an incomplete or implausible frame (n is
// meaningless), and errCorruptRecord for a complete frame whose CRC fails (n
// is valid, so the caller can skip the record). It never panics on arbitrary
// input — FuzzSegmentDecode pins that contract.
func decodeRecord(b []byte) (key string, blob []byte, n int64, err error) {
	if len(b) == 0 {
		return "", nil, 0, io.EOF
	}
	if len(b) < headerSize {
		return "", nil, 0, fmt.Errorf("%w: %d-byte tail is shorter than a header", errTornRecord, len(b))
	}
	if magic := binary.LittleEndian.Uint32(b[0:4]); magic != recordMagic {
		return "", nil, 0, fmt.Errorf("%w: bad magic %08x", errTornRecord, magic)
	}
	if b[4] != recordVersion {
		return "", nil, 0, fmt.Errorf("%w: record version %d, want %d", errTornRecord, b[4], recordVersion)
	}
	keyLen := binary.LittleEndian.Uint32(b[5:9])
	blobLen := binary.LittleEndian.Uint32(b[9:13])
	if keyLen > maxKeyLen || blobLen > maxBlobLen {
		return "", nil, 0, fmt.Errorf("%w: implausible lengths key=%d blob=%d", errTornRecord, keyLen, blobLen)
	}
	n = int64(headerSize) + int64(keyLen) + int64(blobLen)
	if int64(len(b)) < n {
		return "", nil, 0, fmt.Errorf("%w: record of %d bytes runs past the %d-byte tail", errTornRecord, n, len(b))
	}
	keyBytes := b[headerSize : headerSize+keyLen]
	blob = b[headerSize+keyLen : n]
	crc := crc32.ChecksumIEEE(keyBytes)
	crc = crc32.Update(crc, crc32.IEEETable, blob)
	if want := binary.LittleEndian.Uint32(b[13:17]); crc != want {
		return "", nil, n, fmt.Errorf("%w: %08x != %08x", errCorruptRecord, crc, want)
	}
	return string(keyBytes), blob, n, nil
}

// scanResult is the outcome of scanning one segment's contents.
type scanResult struct {
	// records are the CRC-valid records in file order.
	records []scannedRecord
	// validLen is the length of the trusted prefix: the offset just past the
	// last framed record (valid or corrupt-but-framed). A torn tail starts
	// here and should be truncated away.
	validLen int64
	// corrupt counts CRC-failed records that were skipped.
	corrupt int
	// torn reports whether a torn tail was found past validLen.
	torn bool
}

type scannedRecord struct {
	key     string
	off     int64 // offset of the record frame within the segment
	size    int64 // framed size
	blobLen int64
}

// scanSegment walks the framed records in data, skipping corrupt records and
// stopping at a torn tail.
func scanSegment(data []byte) scanResult {
	var res scanResult
	var off int64
	for {
		key, blob, n, err := decodeRecord(data[off:])
		switch {
		case err == nil:
			res.records = append(res.records, scannedRecord{
				key: key, off: off, size: n, blobLen: int64(len(blob)),
			})
			off += n
		case errors.Is(err, errCorruptRecord):
			res.corrupt++
			off += n
		case errors.Is(err, io.EOF):
			res.validLen = off
			return res
		default: // torn tail
			res.validLen = off
			res.torn = true
			return res
		}
	}
}

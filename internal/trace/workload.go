package trace

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/sde"
)

// EpochWorkload holds the per-content demand of one optimisation epoch at one
// (representative) EDP: the request counts |I_k|, the timeliness level L_k
// and the updated popularity Π_k.
type EpochWorkload struct {
	Epoch      int
	Requests   []float64
	Timeliness []float64
	Popularity []float64
}

// Workload converts content k's slice of the epoch into the solver's
// Workload descriptor.
func (e *EpochWorkload) Workload(k int) (core.Workload, error) {
	if k < 0 || k >= len(e.Requests) {
		return core.Workload{}, fmt.Errorf("trace: content %d out of range [0,%d)", k, len(e.Requests))
	}
	return core.Workload{
		Requests:   e.Requests[k],
		Pop:        e.Popularity[k],
		Timeliness: e.Timeliness[k],
	}, nil
}

// BuildWorkloads derives one EpochWorkload per epoch from the trace:
// each epoch consumes one trace day (cycling if the run outlives the trace),
// splits requestsPerEpoch across contents in proportion to that day's view
// shares with Poisson-like noise, updates the Eq. (3) popularity through the
// catalogue, and carries the trace-derived timeliness levels.
func BuildWorkloads(d *Dataset, p mec.Params, epochs int, requestsPerEpoch float64, seed int64) ([]EpochWorkload, error) {
	if d == nil {
		return nil, fmt.Errorf("trace: nil dataset")
	}
	if epochs < 1 {
		return nil, fmt.Errorf("trace: epochs must be ≥ 1, got %d", epochs)
	}
	if requestsPerEpoch < 0 {
		return nil, fmt.Errorf("trace: requestsPerEpoch must be non-negative, got %g", requestsPerEpoch)
	}
	if d.K != p.K {
		return nil, fmt.Errorf("trace: dataset has %d categories, params expect %d", d.K, p.K)
	}
	catalog, err := mec.NewCatalog(p)
	if err != nil {
		return nil, err
	}
	timeliness := d.Timeliness(p.LMax)
	rng := sde.NewRNG(seed)

	out := make([]EpochWorkload, epochs)
	for e := 0; e < epochs; e++ {
		shares, err := d.DayShares(e % d.Days)
		if err != nil {
			return nil, err
		}
		reqs := make([]float64, p.K)
		for k := range reqs {
			mean := requestsPerEpoch * shares[k]
			// Gaussian approximation of Poisson counts, floored at zero.
			noisy := mean + math.Sqrt(math.Max(mean, 0))*rng.NormFloat64()
			reqs[k] = math.Max(0, math.Round(noisy))
		}
		if err := catalog.UpdatePopularity(reqs); err != nil {
			return nil, err
		}
		pops := make([]float64, p.K)
		for k := range pops {
			pops[k] = catalog.Contents[k].Pop
		}
		out[e] = EpochWorkload{
			Epoch:      e,
			Requests:   reqs,
			Timeliness: append([]float64(nil), timeliness...),
			Popularity: pops,
		}
	}
	return out, nil
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// csvHeader is the column subset of the Kaggle "Trending YouTube Video
// Statistics" schema this package reads and writes.
var csvHeader = []string{"video_id", "category_id", "trending_day", "views", "likes", "comment_count"}

// Save writes the dataset in the CSV schema understood by Load.
func (d *Dataset) Save(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, r := range d.Records {
		row[0] = r.VideoID
		row[1] = strconv.Itoa(r.CategoryID)
		row[2] = strconv.Itoa(r.TrendingDay)
		row[3] = strconv.FormatInt(r.Views, 10)
		row[4] = strconv.FormatInt(r.Likes, 10)
		row[5] = strconv.FormatInt(r.CommentCount, 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Load parses a CSV trace. The header must match the schema written by Save
// (a real Kaggle dump is converted by renaming columns and mapping trending
// dates to day indices). Category ids are re-based to 0..K−1 in order of
// first appearance if they are sparse.
func Load(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range header {
		if h != csvHeader[i] {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, h, csvHeader[i])
		}
	}
	ds := &Dataset{}
	var rawCats []int
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rawCat, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad category_id %q", line, row[1])
		}
		day, err := strconv.Atoi(row[2])
		if err != nil || day < 0 {
			return nil, fmt.Errorf("trace: line %d: bad trending_day %q", line, row[2])
		}
		views, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil || views < 0 {
			return nil, fmt.Errorf("trace: line %d: bad views %q", line, row[3])
		}
		likes, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil || likes < 0 {
			return nil, fmt.Errorf("trace: line %d: bad likes %q", line, row[4])
		}
		comments, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil || comments < 0 {
			return nil, fmt.Errorf("trace: line %d: bad comment_count %q", line, row[5])
		}
		ds.Records = append(ds.Records, Record{
			VideoID:      row[0],
			CategoryID:   rawCat,
			TrendingDay:  day,
			Views:        views,
			Likes:        likes,
			CommentCount: comments,
		})
		rawCats = append(rawCats, rawCat)
		if day+1 > ds.Days {
			ds.Days = day + 1
		}
	}
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("trace: dataset contains no records")
	}
	// Rebase category ids to 0..K−1 by sorted raw id. A dataset whose ids
	// are already dense (the schema this package writes) passes through
	// unchanged; a sparse Kaggle dump maps deterministically.
	uniq := map[int]bool{}
	for _, c := range rawCats {
		uniq[c] = true
	}
	sorted := make([]int, 0, len(uniq))
	for c := range uniq {
		sorted = append(sorted, c)
	}
	sort.Ints(sorted)
	remap := make(map[int]int, len(sorted))
	for i, c := range sorted {
		remap[c] = i
	}
	for i := range ds.Records {
		ds.Records[i].CategoryID = remap[ds.Records[i].CategoryID]
	}
	ds.K = len(sorted)
	return ds, nil
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens the CSV parser: arbitrary input must either parse into a
// structurally valid dataset or return an error — never panic, never produce
// out-of-range categories/days.
func FuzzLoad(f *testing.F) {
	f.Add("video_id,category_id,trending_day,views,likes,comment_count\nv,0,0,1,1,1\n")
	f.Add("video_id,category_id,trending_day,views,likes,comment_count\n")
	f.Add("a,b\n1,2\n")
	f.Add("video_id,category_id,trending_day,views,likes,comment_count\nv,10,3,100,5,2\nw,24,0,50,1,1\n")
	f.Add("")
	f.Add("video_id,category_id,trending_day,views,likes,comment_count\nv,-1,0,1,1,1\n")
	f.Add("video_id,category_id,trending_day,views,likes,comment_count\nv,0,0,999999999999999999999,1,1\n")

	f.Fuzz(func(t *testing.T, data string) {
		ds, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		if ds.K < 1 {
			t.Fatalf("parsed dataset has K=%d", ds.K)
		}
		for i, r := range ds.Records {
			if r.CategoryID < 0 || r.CategoryID >= ds.K {
				t.Fatalf("record %d category %d out of [0,%d)", i, r.CategoryID, ds.K)
			}
			if r.TrendingDay < 0 || r.TrendingDay >= ds.Days {
				t.Fatalf("record %d day %d out of [0,%d)", i, r.TrendingDay, ds.Days)
			}
			if r.Views < 0 || r.Likes < 0 || r.CommentCount < 0 {
				t.Fatalf("record %d has negative counts", i)
			}
		}
		// A parsed dataset must survive a save/load round trip unchanged.
		var buf bytes.Buffer
		if err := ds.Save(&buf); err != nil {
			t.Fatalf("save after load: %v", err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("reload after save: %v", err)
		}
		if back.K != ds.K || len(back.Records) != len(ds.Records) {
			t.Fatalf("round trip changed shape: K %d→%d, records %d→%d",
				ds.K, back.K, len(ds.Records), len(back.Records))
		}
	})
}

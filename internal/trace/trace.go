// Package trace provides the request workload driving the MEC market: a
// deterministic synthetic generator producing YouTube-like trending
// statistics (per-category view counts with Zipf popularity, day-scale drift
// and burst noise), plus a loader/saver for the Kaggle "Trending YouTube
// Video Statistics" CSV schema the paper evaluates on, so a real dump can be
// dropped in without code changes.
//
// The paper uses the trace only to obtain the relative request volume of
// K=20 content categories; everything downstream (popularity update Eq. 3,
// request sets I_k, timeliness levels) consumes the per-category shares this
// package computes.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numerics"
	"repro/internal/sde"
)

// Record mirrors one row of the trending-video trace (the subset of columns
// the evaluation consumes).
type Record struct {
	VideoID      string
	CategoryID   int
	TrendingDay  int // day index within the trace
	Views        int64
	Likes        int64
	CommentCount int64
}

// Dataset is a loaded or generated trace.
type Dataset struct {
	Records []Record
	K       int // number of content categories
	Days    int // number of trace days
}

// GenConfig parametrises the synthetic generator.
type GenConfig struct {
	K            int     // content categories (paper: 20)
	Days         int     // trace days
	VideosPerDay int     // trending records per day
	Seed         int64   // RNG seed; generation is fully deterministic
	ZipfSkew     float64 // category popularity skew ι
	BaseViews    float64 // mean views of the most popular category
	BurstProb    float64 // probability a record is a viral burst
	BurstFactor  float64 // view multiplier of a burst
	DriftStd     float64 // day-to-day log-drift of category popularity
}

// DefaultGenConfig returns the generator settings used by the experiments.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		K:            20,
		Days:         30,
		VideosPerDay: 200,
		Seed:         1,
		ZipfSkew:     0.8,
		BaseViews:    1e6,
		BurstProb:    0.02,
		BurstFactor:  8,
		DriftStd:     0.15,
	}
}

// Validate checks the generator configuration.
func (c GenConfig) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("trace: K must be ≥ 1, got %d", c.K)
	case c.Days < 1:
		return fmt.Errorf("trace: Days must be ≥ 1, got %d", c.Days)
	case c.VideosPerDay < 1:
		return fmt.Errorf("trace: VideosPerDay must be ≥ 1, got %d", c.VideosPerDay)
	case !(c.ZipfSkew > 0):
		return fmt.Errorf("trace: ZipfSkew must be positive, got %g", c.ZipfSkew)
	case !(c.BaseViews > 0):
		return fmt.Errorf("trace: BaseViews must be positive, got %g", c.BaseViews)
	case c.BurstProb < 0 || c.BurstProb > 1:
		return fmt.Errorf("trace: BurstProb must lie in [0,1], got %g", c.BurstProb)
	case c.BurstFactor < 1:
		return fmt.Errorf("trace: BurstFactor must be ≥ 1, got %g", c.BurstFactor)
	case c.DriftStd < 0:
		return fmt.Errorf("trace: DriftStd must be non-negative, got %g", c.DriftStd)
	}
	return nil
}

// Generate builds a synthetic trending trace. Categories follow a Zipf(ι)
// base popularity whose log drifts day-to-day as a random walk (capturing the
// popularity dynamics the paper's Definition 1 reacts to); individual records
// add log-normal noise, and a small fraction are viral bursts.
func Generate(cfg GenConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	weights, err := numerics.ZipfWeights(cfg.K, cfg.ZipfSkew)
	if err != nil {
		return nil, err
	}
	rng := sde.NewRNG(cfg.Seed)
	logDrift := make([]float64, cfg.K)

	ds := &Dataset{K: cfg.K, Days: cfg.Days}
	ds.Records = make([]Record, 0, cfg.Days*cfg.VideosPerDay)
	for day := 0; day < cfg.Days; day++ {
		// Random-walk drift on the log-popularity of every category.
		for k := range logDrift {
			logDrift[k] += cfg.DriftStd * rng.NormFloat64()
		}
		// Per-day category sampling distribution ∝ weight·e^drift.
		probs := make([]float64, cfg.K)
		var z float64
		for k := range probs {
			probs[k] = weights[k] * math.Exp(logDrift[k])
			z += probs[k]
		}
		for k := range probs {
			probs[k] /= z
		}
		for v := 0; v < cfg.VideosPerDay; v++ {
			k := sampleCategory(probs, rng)
			views := cfg.BaseViews * probs[k] * float64(cfg.K) * math.Exp(0.5*rng.NormFloat64())
			if rng.Float64() < cfg.BurstProb {
				views *= cfg.BurstFactor
			}
			likes := views * (0.01 + 0.04*rng.Float64())
			comments := views * (0.001 + 0.01*rng.Float64())
			ds.Records = append(ds.Records, Record{
				VideoID:      videoID(rng),
				CategoryID:   k,
				TrendingDay:  day,
				Views:        int64(views),
				Likes:        int64(likes),
				CommentCount: int64(comments),
			})
		}
	}
	return ds, nil
}

func sampleCategory(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for k, p := range probs {
		acc += p
		if u < acc {
			return k
		}
	}
	return len(probs) - 1
}

const idAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"

func videoID(rng *rand.Rand) string {
	b := make([]byte, 11) // YouTube-style 11-character ID
	for i := range b {
		b[i] = idAlphabet[rng.Intn(len(idAlphabet))]
	}
	return string(b)
}

// CategoryShares returns the fraction of total views per category over the
// whole trace (the empirical popularity the experiments seed Π_k(t0) with).
func (d *Dataset) CategoryShares() []float64 {
	shares := make([]float64, d.K)
	var total float64
	for _, r := range d.Records {
		if r.CategoryID >= 0 && r.CategoryID < d.K {
			shares[r.CategoryID] += float64(r.Views)
			total += float64(r.Views)
		}
	}
	if total > 0 {
		for k := range shares {
			shares[k] /= total
		}
	}
	return shares
}

// DayShares returns the per-category view shares of a single trace day,
// used to refresh request volumes epoch by epoch.
func (d *Dataset) DayShares(day int) ([]float64, error) {
	if day < 0 || day >= d.Days {
		return nil, fmt.Errorf("trace: day %d out of range [0,%d)", day, d.Days)
	}
	shares := make([]float64, d.K)
	var total float64
	for _, r := range d.Records {
		if r.TrendingDay == day && r.CategoryID >= 0 && r.CategoryID < d.K {
			shares[r.CategoryID] += float64(r.Views)
			total += float64(r.Views)
		}
	}
	if total > 0 {
		for k := range shares {
			shares[k] /= total
		}
	}
	return shares, nil
}

// CommentIntensity returns comments-per-view per category, the proxy this
// reproduction uses for content timeliness: categories whose audience
// engages immediately (high comment rates — e.g. news, sports) are the ones
// requesters want with low delay.
func (d *Dataset) CommentIntensity() []float64 {
	views := make([]float64, d.K)
	comments := make([]float64, d.K)
	for _, r := range d.Records {
		if r.CategoryID >= 0 && r.CategoryID < d.K {
			views[r.CategoryID] += float64(r.Views)
			comments[r.CategoryID] += float64(r.CommentCount)
		}
	}
	out := make([]float64, d.K)
	for k := range out {
		if views[k] > 0 {
			out[k] = comments[k] / views[k]
		}
	}
	return out
}

// Timeliness maps comment intensity to the [0, lmax] timeliness scale of
// Definition 2 by normalising against the most comment-intense category.
func (d *Dataset) Timeliness(lmax float64) []float64 {
	ci := d.CommentIntensity()
	var maxCI float64
	for _, v := range ci {
		if v > maxCI {
			maxCI = v
		}
	}
	out := make([]float64, d.K)
	if maxCI <= 0 {
		for k := range out {
			out[k] = lmax / 2
		}
		return out
	}
	for k := range out {
		out[k] = lmax * ci[k] / maxCI
	}
	return out
}

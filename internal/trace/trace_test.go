package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/mec"
)

func genSmall(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultGenConfig()
	cfg.Days = 5
	cfg.VideosPerDay = 100
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func TestGenerateShape(t *testing.T) {
	ds := genSmall(t)
	if ds.K != 20 || ds.Days != 5 {
		t.Fatalf("K=%d Days=%d, want 20/5", ds.K, ds.Days)
	}
	if len(ds.Records) != 500 {
		t.Fatalf("%d records, want 500", len(ds.Records))
	}
	for _, r := range ds.Records {
		if r.CategoryID < 0 || r.CategoryID >= ds.K {
			t.Fatalf("category %d out of range", r.CategoryID)
		}
		if r.TrendingDay < 0 || r.TrendingDay >= ds.Days {
			t.Fatalf("day %d out of range", r.TrendingDay)
		}
		if r.Views < 0 || r.Likes < 0 || r.CommentCount < 0 {
			t.Fatalf("negative counts in %+v", r)
		}
		if len(r.VideoID) != 11 {
			t.Fatalf("video id %q not 11 chars", r.VideoID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Days = 2
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	cfg.Seed = 99
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Records {
		if a.Records[i] != c.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.K = 0 },
		func(c *GenConfig) { c.Days = 0 },
		func(c *GenConfig) { c.VideosPerDay = 0 },
		func(c *GenConfig) { c.ZipfSkew = 0 },
		func(c *GenConfig) { c.BaseViews = 0 },
		func(c *GenConfig) { c.BurstProb = 2 },
		func(c *GenConfig) { c.BurstFactor = 0.5 },
		func(c *GenConfig) { c.DriftStd = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultGenConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestCategorySharesNormalised(t *testing.T) {
	ds := genSmall(t)
	shares := ds.CategoryShares()
	var sum float64
	for _, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %g", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σshares = %g, want 1", sum)
	}
	// Zipf-ish: top category should outweigh the bottom one on average.
	if shares[0] <= shares[ds.K-1] {
		t.Errorf("share[0]=%g should exceed share[K-1]=%g", shares[0], shares[ds.K-1])
	}
}

func TestDayShares(t *testing.T) {
	ds := genSmall(t)
	shares, err := ds.DayShares(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σday shares = %g, want 1", sum)
	}
	if _, err := ds.DayShares(-1); err == nil {
		t.Error("negative day should error")
	}
	if _, err := ds.DayShares(ds.Days); err == nil {
		t.Error("out-of-range day should error")
	}
}

func TestTimelinessRange(t *testing.T) {
	ds := genSmall(t)
	const lmax = 5.0
	ls := ds.Timeliness(lmax)
	if len(ls) != ds.K {
		t.Fatalf("%d timeliness values for %d categories", len(ls), ds.K)
	}
	var hitMax bool
	for k, l := range ls {
		if l < 0 || l > lmax {
			t.Fatalf("timeliness[%d]=%g outside [0,%g]", k, l, lmax)
		}
		if l == lmax {
			hitMax = true
		}
	}
	if !hitMax {
		t.Error("normalisation should put the most intense category at lmax")
	}
	// Empty dataset falls back to lmax/2.
	empty := &Dataset{K: 3, Days: 1}
	for _, l := range empty.Timeliness(lmax) {
		if l != lmax/2 {
			t.Errorf("empty-dataset timeliness = %g, want %g", l, lmax/2)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := genSmall(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.K != ds.K || back.Days != ds.Days {
		t.Fatalf("round trip changed K/Days: %d/%d vs %d/%d", back.K, back.Days, ds.K, ds.Days)
	}
	if len(back.Records) != len(ds.Records) {
		t.Fatalf("round trip changed record count")
	}
	for i := range ds.Records {
		if back.Records[i] != ds.Records[i] {
			t.Fatalf("record %d differs after round trip: %+v vs %+v", i, back.Records[i], ds.Records[i])
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c\n"},
		{"bad category", "video_id,category_id,trending_day,views,likes,comment_count\nv,x,0,1,1,1\n"},
		{"bad day", "video_id,category_id,trending_day,views,likes,comment_count\nv,0,-1,1,1,1\n"},
		{"bad views", "video_id,category_id,trending_day,views,likes,comment_count\nv,0,0,-5,1,1\n"},
		{"bad likes", "video_id,category_id,trending_day,views,likes,comment_count\nv,0,0,1,x,1\n"},
		{"bad comments", "video_id,category_id,trending_day,views,likes,comment_count\nv,0,0,1,1,x\n"},
		{"no records", "video_id,category_id,trending_day,views,likes,comment_count\n"},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadRebasesSparseCategories(t *testing.T) {
	data := "video_id,category_id,trending_day,views,likes,comment_count\n" +
		"a,10,0,100,1,1\n" +
		"b,24,0,50,1,1\n" +
		"c,10,1,70,1,1\n"
	ds, err := Load(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if ds.K != 2 {
		t.Fatalf("K = %d, want 2", ds.K)
	}
	if ds.Records[0].CategoryID != 0 || ds.Records[1].CategoryID != 1 || ds.Records[2].CategoryID != 0 {
		t.Errorf("categories not rebased: %+v", ds.Records)
	}
	if ds.Days != 2 {
		t.Errorf("Days = %d, want 2", ds.Days)
	}
}

func TestBuildWorkloads(t *testing.T) {
	p := mec.Default()
	ds := genSmall(t)
	ws, err := BuildWorkloads(ds, p, 7, 100, 3)
	if err != nil {
		t.Fatalf("BuildWorkloads: %v", err)
	}
	if len(ws) != 7 {
		t.Fatalf("%d workloads, want 7", len(ws))
	}
	for e, w := range ws {
		if w.Epoch != e {
			t.Fatalf("epoch %d mislabeled as %d", e, w.Epoch)
		}
		var popSum float64
		for k := 0; k < p.K; k++ {
			if w.Requests[k] < 0 {
				t.Fatalf("negative requests at epoch %d content %d", e, k)
			}
			if w.Timeliness[k] < 0 || w.Timeliness[k] > p.LMax {
				t.Fatalf("timeliness out of range at epoch %d content %d", e, k)
			}
			popSum += w.Popularity[k]
		}
		if math.Abs(popSum-1) > 1e-9 {
			t.Fatalf("epoch %d popularity sums to %g", e, popSum)
		}
		cw, err := w.Workload(0)
		if err != nil {
			t.Fatal(err)
		}
		if cw.Requests != w.Requests[0] {
			t.Error("Workload() did not copy requests")
		}
		if _, err := w.Workload(-1); err == nil {
			t.Error("bad content index should error")
		}
	}
	if _, err := BuildWorkloads(nil, p, 1, 1, 1); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := BuildWorkloads(ds, p, 0, 1, 1); err == nil {
		t.Error("0 epochs should error")
	}
	if _, err := BuildWorkloads(ds, p, 1, -1, 1); err == nil {
		t.Error("negative request rate should error")
	}
	bad := p
	bad.K = 5
	if _, err := BuildWorkloads(ds, bad, 1, 1, 1); err == nil {
		t.Error("category mismatch should error")
	}
}

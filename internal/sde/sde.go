// Package sde implements the stochastic processes driving the MFG-CP state
// dynamics: the mean-reverting Ornstein–Uhlenbeck channel-fading process
// (Eq. 1 of the paper), the remaining-cache-space diffusion (Eq. 4), and a
// generic Euler–Maruyama integrator with reflecting boundaries used by the
// Monte-Carlo market simulator to cross-validate the FPK density.
package sde

import (
	"fmt"
	"math"
	"math/rand"
)

// Process is a one-dimensional time-inhomogeneous Itô diffusion
// dX = Drift(t, x) dt + Diffusion(t, x) dW.
type Process interface {
	Drift(t, x float64) float64
	Diffusion(t, x float64) float64
}

// OU is the mean-reverting Ornstein–Uhlenbeck channel process of Eq. (1):
//
//	dh = ½ ςh (υh − h) dt + ϱh dW
//
// Rate is ςh (the paper's changing rate; the effective reversion speed is
// Rate/2), Mean is the long-term mean υh, and Sigma is the Brownian scale ϱh.
type OU struct {
	Rate  float64 // ςh > 0
	Mean  float64 // υh
	Sigma float64 // ϱh ≥ 0
}

// Validate reports whether the parameters define a proper OU process.
func (p OU) Validate() error {
	if !(p.Rate > 0) {
		return fmt.Errorf("sde: OU rate must be positive, got %g", p.Rate)
	}
	if p.Sigma < 0 {
		return fmt.Errorf("sde: OU sigma must be non-negative, got %g", p.Sigma)
	}
	return nil
}

// Drift implements Process.
func (p OU) Drift(_, x float64) float64 { return 0.5 * p.Rate * (p.Mean - x) }

// Diffusion implements Process.
func (p OU) Diffusion(_, _ float64) float64 { return p.Sigma }

// theta is the effective reversion speed of the process (Rate/2).
func (p OU) theta() float64 { return 0.5 * p.Rate }

// ExactMean returns E[h(t) | h(0)=h0] = υh + (h0−υh)·e^(−θt).
func (p OU) ExactMean(h0, t float64) float64 {
	return p.Mean + (h0-p.Mean)*math.Exp(-p.theta()*t)
}

// ExactVar returns Var[h(t) | h(0)=h0] = ϱh²(1−e^(−2θt))/(2θ).
func (p OU) ExactVar(t float64) float64 {
	th := p.theta()
	return p.Sigma * p.Sigma * (1 - math.Exp(-2*th*t)) / (2 * th)
}

// StationaryVar returns the t→∞ variance ϱh²/ςh.
func (p OU) StationaryVar() float64 { return p.Sigma * p.Sigma / p.Rate }

// SampleExact draws h(t) from the exact Gaussian transition law given h(0)=h0.
func (p OU) SampleExact(h0, t float64, rng *rand.Rand) float64 {
	return p.ExactMean(h0, t) + math.Sqrt(p.ExactVar(t))*rng.NormFloat64()
}

// CacheDrift captures the remaining-space drift of Eq. (4):
//
//	dq = Qk [ −w1·x − w2·Π + w3·ξ^L ] dt + ϱq dW
//
// where x is the caching rate, Π the content popularity and L the content
// timeliness. The three coefficients w1, w2, w3 weight placement, discard-on-
// unpopularity, and keep-on-urgency respectively.
type CacheDrift struct {
	Qk         float64 // content data size
	W1, W2, W3 float64
	Xi         float64 // ξ ∈ (0,1), steepness of the timeliness response
	SigmaQ     float64 // ϱq
}

// Validate checks the structural constraints of Eq. (4).
func (c CacheDrift) Validate() error {
	if !(c.Qk > 0) {
		return fmt.Errorf("sde: cache drift requires Qk > 0, got %g", c.Qk)
	}
	if !(c.Xi > 0 && c.Xi < 1) {
		return fmt.Errorf("sde: cache drift requires ξ in (0,1), got %g", c.Xi)
	}
	if c.W1 < 0 || c.W2 < 0 || c.W3 < 0 {
		return fmt.Errorf("sde: cache drift weights must be non-negative, got w1=%g w2=%g w3=%g", c.W1, c.W2, c.W3)
	}
	if c.SigmaQ < 0 {
		return fmt.Errorf("sde: cache drift requires ϱq ≥ 0, got %g", c.SigmaQ)
	}
	return nil
}

// Rate evaluates the deterministic drift for caching rate x, popularity pi
// and timeliness L.
func (c CacheDrift) Rate(x, pi, L float64) float64 {
	return c.Qk * (-c.W1*x - c.W2*pi + c.W3*math.Pow(c.Xi, L))
}

// Path is a sampled trajectory: Times[i] ↦ Values[i].
type Path struct {
	Times  []float64
	Values []float64
}

// Last returns the final value of the path.
func (p Path) Last() float64 { return p.Values[len(p.Values)-1] }

// Integrator advances a Process with the Euler–Maruyama scheme, optionally
// reflecting the state at [Lo, Hi] to mimic the bounded channel-fading and
// cache-space ranges used throughout the paper's evaluation.
type Integrator struct {
	Proc    Process
	Dt      float64
	Lo, Hi  float64 // reflecting barriers; ignored unless Reflect is true
	Reflect bool
}

// Step advances the state by one Dt using the supplied RNG.
func (in Integrator) Step(t, x float64, rng *rand.Rand) float64 {
	drift := in.Proc.Drift(t, x)
	diff := in.Proc.Diffusion(t, x)
	x2 := x + drift*in.Dt + diff*math.Sqrt(in.Dt)*rng.NormFloat64()
	if in.Reflect {
		x2 = ReflectInto(x2, in.Lo, in.Hi)
	}
	return x2
}

// SamplePath integrates a full trajectory of n steps starting from x0 at t=0.
func (in Integrator) SamplePath(x0 float64, n int, rng *rand.Rand) Path {
	times := make([]float64, n+1)
	vals := make([]float64, n+1)
	vals[0] = x0
	x := x0
	for k := 1; k <= n; k++ {
		t := float64(k-1) * in.Dt
		x = in.Step(t, x, rng)
		times[k] = float64(k) * in.Dt
		vals[k] = x
	}
	return Path{Times: times, Values: vals}
}

// ReflectInto folds x into [lo, hi] by reflection at the boundaries,
// matching the zero-flux boundary condition imposed on the FPK equation.
func ReflectInto(x, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	width := hi - lo
	// Map into a 2*width sawtooth and fold.
	y := math.Mod(x-lo, 2*width)
	if y < 0 {
		y += 2 * width
	}
	if y > width {
		y = 2*width - y
	}
	return lo + y
}

package sde

import (
	"math"
	"testing"
)

// FuzzReflectInto hardens the boundary-reflection kernel used by every
// Euler–Maruyama step: any finite input must land inside [lo, hi], inputs
// already inside must pass through unchanged, and the fold must be
// idempotent.
func FuzzReflectInto(f *testing.F) {
	f.Add(0.5, 0.0, 1.0)
	f.Add(-3.7, 0.0, 1.0)
	f.Add(1e12, -5.0, 5.0)
	f.Add(2.0, 2.0, 2.0) // degenerate interval
	f.Add(-0.0, 0.0, 100.0)

	f.Fuzz(func(t *testing.T, x, lo, hi float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(lo) || math.IsNaN(hi) ||
			math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return
		}
		if hi-lo > 1e100 || math.Abs(x) > 1e100 {
			return // avoid float overflow artefacts in the fold arithmetic
		}
		y := ReflectInto(x, lo, hi)
		if hi <= lo {
			if y != lo {
				t.Fatalf("degenerate interval should pin to lo: got %g", y)
			}
			return
		}
		if y < lo-1e-9 || y > hi+1e-9 {
			t.Fatalf("ReflectInto(%g, %g, %g) = %g escaped the interval", x, lo, hi, y)
		}
		if x >= lo && x <= hi && math.Abs(y-x) > 1e-9*(1+math.Abs(x)) {
			t.Fatalf("in-range input changed: %g → %g", x, y)
		}
		again := ReflectInto(y, lo, hi)
		if math.Abs(again-y) > 1e-9*(1+math.Abs(y)) {
			t.Fatalf("fold not idempotent: %g → %g", y, again)
		}
	})
}

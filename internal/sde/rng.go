package sde

import (
	"math/rand"
)

// NewRNG returns a deterministic RNG for the given seed. All stochastic
// components of the repository (simulator, trace generator, Monte-Carlo
// validation) derive their randomness from explicitly seeded streams so every
// experiment is exactly reproducible.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// CountingSource wraps the standard math/rand source and counts draws, so a
// stream's position can be checkpointed as (seed, draws) and restored
// bit-exactly. The standard source advances its state exactly once per
// Int63/Uint64 call (Int63 is Uint64 masked), so skipping the recorded number
// of draws on a freshly seeded source reproduces the stream position without
// serialising the opaque generator state.
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountingSource returns a counting source seeded like NewRNG, so
// rand.New(NewCountingSource(seed)) yields the exact stream of NewRNG(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 { s.draws++; return s.src.Int63() }

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 { s.draws++; return s.src.Uint64() }

// Seed implements rand.Source, resetting the draw counter.
func (s *CountingSource) Seed(seed int64) {
	s.src.(rand.Source).Seed(seed)
	s.seed = seed
	s.draws = 0
}

// SeedValue returns the seed the source was (re)initialised with.
func (s *CountingSource) SeedValue() int64 { return s.seed }

// Draws returns the number of draws consumed so far.
func (s *CountingSource) Draws() uint64 { return s.draws }

// Skip advances the stream by n draws without handing out values — the replay
// half of the (seed, draws) checkpoint contract.
func (s *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws += n
}

// SplitMix advances a 64-bit SplitMix state and returns the next value.
// It is used to derive independent per-entity seeds (one per EDP, one per
// content) from a single experiment seed without correlation between streams.
func SplitMix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives the i-th child seed from a parent
// seed. Children with distinct indices are statistically independent.
func DeriveSeed(parent int64, i int) int64 {
	state := uint64(parent) ^ 0xd1b54a32d192ed03
	for k := 0; k <= i%8; k++ {
		SplitMix(&state)
	}
	state ^= uint64(i) * 0x9e3779b97f4a7c15
	return int64(SplitMix(&state))
}

// NewChildRNG returns a deterministic RNG for child stream i of a parent seed.
func NewChildRNG(parent int64, i int) *rand.Rand {
	return NewRNG(DeriveSeed(parent, i))
}

package sde

import (
	"math/rand"
)

// NewRNG returns a deterministic RNG for the given seed. All stochastic
// components of the repository (simulator, trace generator, Monte-Carlo
// validation) derive their randomness from explicitly seeded streams so every
// experiment is exactly reproducible.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitMix advances a 64-bit SplitMix state and returns the next value.
// It is used to derive independent per-entity seeds (one per EDP, one per
// content) from a single experiment seed without correlation between streams.
func SplitMix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives the i-th child seed from a parent
// seed. Children with distinct indices are statistically independent.
func DeriveSeed(parent int64, i int) int64 {
	state := uint64(parent) ^ 0xd1b54a32d192ed03
	for k := 0; k <= i%8; k++ {
		SplitMix(&state)
	}
	state ^= uint64(i) * 0x9e3779b97f4a7c15
	return int64(SplitMix(&state))
}

// NewChildRNG returns a deterministic RNG for child stream i of a parent seed.
func NewChildRNG(parent int64, i int) *rand.Rand {
	return NewRNG(DeriveSeed(parent, i))
}

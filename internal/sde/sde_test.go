package sde

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOUValidate(t *testing.T) {
	if err := (OU{Rate: 1, Mean: 0, Sigma: 0.1}).Validate(); err != nil {
		t.Errorf("valid OU rejected: %v", err)
	}
	if err := (OU{Rate: 0, Mean: 0, Sigma: 0.1}).Validate(); err == nil {
		t.Error("zero rate should be rejected")
	}
	if err := (OU{Rate: 1, Mean: 0, Sigma: -1}).Validate(); err == nil {
		t.Error("negative sigma should be rejected")
	}
}

func TestOUDriftSign(t *testing.T) {
	p := OU{Rate: 2, Mean: 5, Sigma: 0.1}
	if d := p.Drift(0, 3); d <= 0 {
		t.Errorf("drift below mean should be positive, got %g", d)
	}
	if d := p.Drift(0, 7); d >= 0 {
		t.Errorf("drift above mean should be negative, got %g", d)
	}
	if d := p.Drift(0, 5); d != 0 {
		t.Errorf("drift at mean should be zero, got %g", d)
	}
}

func TestOUExactMoments(t *testing.T) {
	p := OU{Rate: 2, Mean: 5, Sigma: 0.4}
	// At t=0: mean = h0, var = 0.
	if m := p.ExactMean(3, 0); m != 3 {
		t.Errorf("ExactMean(t=0) = %g, want 3", m)
	}
	if v := p.ExactVar(0); v != 0 {
		t.Errorf("ExactVar(0) = %g, want 0", v)
	}
	// As t→∞: mean → υh, var → stationary.
	if m := p.ExactMean(3, 1e6); math.Abs(m-5) > 1e-9 {
		t.Errorf("ExactMean(∞) = %g, want 5", m)
	}
	if v := p.ExactVar(1e6); math.Abs(v-p.StationaryVar()) > 1e-9 {
		t.Errorf("ExactVar(∞) = %g, want %g", v, p.StationaryVar())
	}
	if want := 0.4 * 0.4 / 2; math.Abs(p.StationaryVar()-want) > 1e-15 {
		t.Errorf("StationaryVar = %g, want %g", p.StationaryVar(), want)
	}
}

// Monte-Carlo check: Euler–Maruyama paths of the OU process reproduce the
// closed-form mean and variance within sampling error.
func TestOUEulerMatchesExactMoments(t *testing.T) {
	p := OU{Rate: 4, Mean: 2, Sigma: 0.5}
	const (
		paths = 4000
		steps = 200
		tEnd  = 1.0
	)
	in := Integrator{Proc: p, Dt: tEnd / steps}
	rng := NewRNG(42)
	var sum, sumSq float64
	for k := 0; k < paths; k++ {
		x := in.SamplePath(0, steps, rng).Last()
		sum += x
		sumSq += x * x
	}
	mean := sum / paths
	variance := sumSq/paths - mean*mean
	wantMean := p.ExactMean(0, tEnd)
	wantVar := p.ExactVar(tEnd)
	if math.Abs(mean-wantMean) > 0.02 {
		t.Errorf("MC mean %g vs exact %g", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.15 {
		t.Errorf("MC var %g vs exact %g", variance, wantVar)
	}
}

func TestOUSampleExactMoments(t *testing.T) {
	p := OU{Rate: 3, Mean: 1, Sigma: 0.3}
	rng := NewRNG(7)
	const n = 20000
	var sum, sumSq float64
	for k := 0; k < n; k++ {
		x := p.SampleExact(0, 0.5, rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-p.ExactMean(0, 0.5)) > 0.01 {
		t.Errorf("exact-sampler mean %g vs %g", mean, p.ExactMean(0, 0.5))
	}
	if math.Abs(variance-p.ExactVar(0.5))/p.ExactVar(0.5) > 0.1 {
		t.Errorf("exact-sampler var %g vs %g", variance, p.ExactVar(0.5))
	}
}

func TestCacheDriftValidate(t *testing.T) {
	good := CacheDrift{Qk: 100, W1: 1, W2: 0.05, W3: 10, Xi: 0.1, SigmaQ: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid drift rejected: %v", err)
	}
	bad := good
	bad.Qk = 0
	if err := bad.Validate(); err == nil {
		t.Error("Qk=0 should be rejected")
	}
	bad = good
	bad.Xi = 1
	if err := bad.Validate(); err == nil {
		t.Error("ξ=1 should be rejected")
	}
	bad = good
	bad.W1 = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative w1 should be rejected")
	}
	bad = good
	bad.SigmaQ = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative ϱq should be rejected")
	}
}

func TestCacheDriftStructure(t *testing.T) {
	c := CacheDrift{Qk: 100, W1: 1, W2: 0.05, W3: 10, Xi: 0.1, SigmaQ: 0}
	// More caching ⇒ remaining space shrinks faster.
	if c.Rate(1, 0.5, 2) >= c.Rate(0, 0.5, 2) {
		t.Error("drift should decrease in x")
	}
	// More popularity ⇒ less discarding ⇒ drift decreases in Π per Eq. (4).
	if c.Rate(0.5, 1, 2) >= c.Rate(0.5, 0, 2) {
		t.Error("drift should decrease in popularity")
	}
	// More urgency (larger L) ⇒ ξ^L smaller ⇒ drift decreases in L.
	if c.Rate(0.5, 0.5, 5) >= c.Rate(0.5, 0.5, 0) {
		t.Error("drift should decrease in timeliness level")
	}
}

// Property: ReflectInto always lands in [lo, hi] and is identity inside.
func TestReflectIntoProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		const lo, hi = -2.0, 3.0
		y := ReflectInto(x, lo, hi)
		if y < lo-1e-12 || y > hi+1e-12 {
			return false
		}
		if x >= lo && x <= hi && math.Abs(y-x) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReflectIntoKnown(t *testing.T) {
	// Reflection just past a boundary mirrors back.
	if got := ReflectInto(3.5, 0, 3); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("ReflectInto(3.5) = %g, want 2.5", got)
	}
	if got := ReflectInto(-0.5, 0, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ReflectInto(-0.5) = %g, want 0.5", got)
	}
	if got := ReflectInto(7, 0, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("ReflectInto(7) = %g, want 1 (two folds)", got)
	}
	if got := ReflectInto(5, 2, 2); got != 2 {
		t.Errorf("degenerate interval should pin to lo, got %g", got)
	}
}

func TestIntegratorReflectionKeepsBounds(t *testing.T) {
	p := OU{Rate: 1, Mean: 0.5, Sigma: 3} // violent diffusion
	in := Integrator{Proc: p, Dt: 0.01, Lo: 0, Hi: 1, Reflect: true}
	rng := NewRNG(9)
	path := in.SamplePath(0.5, 2000, rng)
	for i, v := range path.Values {
		if v < 0 || v > 1 {
			t.Fatalf("step %d escaped bounds: %g", i, v)
		}
	}
}

func TestPathShape(t *testing.T) {
	p := OU{Rate: 1, Mean: 0, Sigma: 0.1}
	in := Integrator{Proc: p, Dt: 0.1}
	path := in.SamplePath(1, 10, NewRNG(1))
	if len(path.Times) != 11 || len(path.Values) != 11 {
		t.Fatalf("path has %d/%d points, want 11", len(path.Times), len(path.Values))
	}
	if path.Times[0] != 0 || math.Abs(path.Times[10]-1) > 1e-12 {
		t.Errorf("times span [%g, %g], want [0, 1]", path.Times[0], path.Times[10])
	}
	if path.Values[0] != 1 {
		t.Errorf("initial value %g, want 1", path.Values[0])
	}
	if path.Last() != path.Values[10] {
		t.Error("Last() disagrees with final value")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := NewRNG(124)
	same := true
	a = NewRNG(123)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 0) != DeriveSeed(42, 0) {
		t.Error("DeriveSeed must be deterministic")
	}
	if DeriveSeed(42, 1) == DeriveSeed(43, 1) {
		t.Error("different parents should give different children")
	}
}

func TestSplitMixAdvances(t *testing.T) {
	var s uint64 = 1
	a := SplitMix(&s)
	b := SplitMix(&s)
	if a == b {
		t.Error("SplitMix should produce different consecutive values")
	}
}

package numerics

import (
	"fmt"

	"repro/internal/grid"
)

// Trapezoid integrates nodal values over a uniform axis with the composite
// trapezoid rule.
func Trapezoid(ax grid.Axis, vals []float64) (float64, error) {
	if len(vals) != ax.N {
		return 0, fmt.Errorf("numerics: Trapezoid: %d values for %d nodes", len(vals), ax.N)
	}
	dx := ax.Step()
	s := 0.5 * (vals[0] + vals[ax.N-1])
	for i := 1; i < ax.N-1; i++ {
		s += vals[i]
	}
	return s * dx, nil
}

// Simpson integrates nodal values with the composite Simpson rule. The axis
// must have an odd number of nodes (even number of intervals).
func Simpson(ax grid.Axis, vals []float64) (float64, error) {
	if len(vals) != ax.N {
		return 0, fmt.Errorf("numerics: Simpson: %d values for %d nodes", len(vals), ax.N)
	}
	if ax.N%2 == 0 {
		return 0, fmt.Errorf("numerics: Simpson needs an odd node count, got %d", ax.N)
	}
	dx := ax.Step()
	s := vals[0] + vals[ax.N-1]
	for i := 1; i < ax.N-1; i++ {
		if i%2 == 1 {
			s += 4 * vals[i]
		} else {
			s += 2 * vals[i]
		}
	}
	return s * dx / 3, nil
}

// Integral2D integrates a flattened field over the full 2-D grid using the
// tensor-product trapezoid rule. This is the ∫∫ · dh dq appearing throughout
// the mean-field estimator (Eqs. 14, 17, 18).
func Integral2D(g grid.Grid2D, field []float64) (float64, error) {
	if len(field) != g.Size() {
		return 0, fmt.Errorf("numerics: Integral2D: %d values for %d nodes", len(field), g.Size())
	}
	var s float64
	nh, nq := g.H.N, g.Q.N
	for i := 0; i < nh; i++ {
		wi := 1.0
		if i == 0 || i == nh-1 {
			wi = 0.5
		}
		row := i * nq
		var rs float64
		rs += 0.5 * (field[row] + field[row+nq-1])
		for j := 1; j < nq-1; j++ {
			rs += field[row+j]
		}
		s += wi * rs
	}
	return s * g.CellArea(), nil
}

// WeightedIntegral2D integrates w(i,j)*field(i,j) over the grid where the
// weight is supplied per node via fn(i, j, h, q). It powers the mean-field
// moments: E[x*], E[q], and the conditional masses over {q ≤ αQ}.
func WeightedIntegral2D(g grid.Grid2D, field []float64, fn func(i, j int, h, q float64) float64) (float64, error) {
	if len(field) != g.Size() {
		return 0, fmt.Errorf("numerics: WeightedIntegral2D: %d values for %d nodes", len(field), g.Size())
	}
	var s float64
	nh, nq := g.H.N, g.Q.N
	for i := 0; i < nh; i++ {
		wi := 1.0
		if i == 0 || i == nh-1 {
			wi = 0.5
		}
		h := g.H.At(i)
		row := i * nq
		for j := 0; j < nq; j++ {
			wj := 1.0
			if j == 0 || j == nq-1 {
				wj = 0.5
			}
			s += wi * wj * field[row+j] * fn(i, j, h, g.Q.At(j))
		}
	}
	return s * g.CellArea(), nil
}

// MarginalQ integrates the 2-D density over h, producing the 1-D marginal in
// q. This is what Figs. 4, 6 and 7 of the paper plot. dst must have length
// g.Q.N.
func MarginalQ(g grid.Grid2D, dst, field []float64) error {
	if len(field) != g.Size() {
		return fmt.Errorf("numerics: MarginalQ: %d values for %d nodes", len(field), g.Size())
	}
	if len(dst) != g.Q.N {
		return fmt.Errorf("numerics: MarginalQ: dst %d for %d q-nodes", len(dst), g.Q.N)
	}
	dh := g.H.Step()
	nh, nq := g.H.N, g.Q.N
	for j := 0; j < nq; j++ {
		var s float64
		s += 0.5 * (field[j] + field[(nh-1)*nq+j])
		for i := 1; i < nh-1; i++ {
			s += field[i*nq+j]
		}
		dst[j] = s * dh
	}
	return nil
}

package numerics

import (
	"fmt"
	"math"
)

// SmoothStep is the logistic approximation of the Heaviside step used by the
// paper for the service-case probabilities: f(x) = 1/(1+e^(−2lx)) with slope
// parameter l > 0 (Section III-A). f(0)=1/2, f(+∞)=1, f(−∞)=0.
func SmoothStep(l, x float64) float64 {
	// Guard the exponent so extreme arguments saturate instead of overflowing.
	a := -2 * l * x
	if a > 700 {
		return 0
	}
	if a < -700 {
		return 1
	}
	return 1 / (1 + math.Exp(a))
}

// SmoothStepDeriv is f'(x) = 2l·e^(−2lx)/(1+e^(−2lx))², the derivative used
// in the Lipschitz analysis (Lemma 1) and in gradient sanity tests.
func SmoothStepDeriv(l, x float64) float64 {
	a := -2 * l * x
	if a > 700 || a < -700 {
		return 0
	}
	e := math.Exp(a)
	d := 1 + e
	return 2 * l * e / (d * d)
}

// NormalPDF is the density of N(mean, sd²) at x.
func NormalPDF(mean, sd, x float64) float64 {
	if sd <= 0 {
		return 0
	}
	z := (x - mean) / sd
	return math.Exp(-0.5*z*z) / (sd * math.Sqrt(2*math.Pi))
}

// NormalCDF is the cumulative distribution of N(mean, sd²) at x.
func NormalCDF(mean, sd, x float64) float64 {
	if sd <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mean)/(sd*math.Sqrt2))
}

// ZipfWeights returns the normalised Zipf popularity vector with skew s over
// ranks 1..k: Π_r = (1/r^s) / Σ_{r'} (1/r'^s). This is the initial content
// popularity of Definition 1.
func ZipfWeights(k int, s float64) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("numerics: ZipfWeights: need k >= 1, got %d", k)
	}
	if s <= 0 {
		return nil, fmt.Errorf("numerics: ZipfWeights: skew must be positive, got %g", s)
	}
	w := make([]float64, k)
	var z float64
	for r := 1; r <= k; r++ {
		w[r-1] = math.Pow(float64(r), -s)
		z += w[r-1]
	}
	for i := range w {
		w[i] /= z
	}
	return w, nil
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clamp01 implements the paper's [x]^+ operator from Theorem 1: the value is
// clamped to the admissible caching-rate interval [0, 1].
func Clamp01(x float64) float64 { return Clamp(x, 0, 1) }

// Lerp linearly interpolates between a and b with weight t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

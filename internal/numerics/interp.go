// Package numerics collects the scalar numerical utilities shared by the
// MFG-CP solvers: interpolation on grids, quadrature, the logistic smooth
// step used for the service-case probabilities, probability distributions
// (normal, Zipf), descriptive statistics and histograms.
package numerics

import (
	"fmt"

	"repro/internal/grid"
)

// Interp1D linearly interpolates the nodal values vals (len == ax.N) at x,
// clamping x to the axis range.
func Interp1D(ax grid.Axis, vals []float64, x float64) (float64, error) {
	if len(vals) != ax.N {
		return 0, fmt.Errorf("numerics: Interp1D: %d values for %d nodes", len(vals), ax.N)
	}
	i, f := ax.Locate(x)
	return vals[i]*(1-f) + vals[i+1]*f, nil
}

// InterpBilinear bilinearly interpolates a flattened 2-D field at (h, q),
// clamping both coordinates to the grid.
func InterpBilinear(g grid.Grid2D, field []float64, h, q float64) (float64, error) {
	if len(field) != g.Size() {
		return 0, fmt.Errorf("numerics: InterpBilinear: %d values for %d nodes", len(field), g.Size())
	}
	i, fh := g.H.Locate(h)
	j, fq := g.Q.Locate(q)
	v00 := field[g.Idx(i, j)]
	v01 := field[g.Idx(i, j+1)]
	v10 := field[g.Idx(i+1, j)]
	v11 := field[g.Idx(i+1, j+1)]
	return v00*(1-fh)*(1-fq) + v01*(1-fh)*fq + v10*fh*(1-fq) + v11*fh*fq, nil
}

// LocateNodes brackets x in a strictly increasing node slice: it returns the
// left node index i and the fractional offset f ∈ [0,1] such that x ≈
// nodes[i]·(1−f) + nodes[i+1]·f, clamping x to the node range. A single-node
// (degenerate) axis always locates at (0, 0). The nodes need not be uniform,
// which is what separates this from grid.Axis.Locate.
func LocateNodes(nodes []float64, x float64) (int, float64, error) {
	switch {
	case len(nodes) == 0:
		return 0, 0, fmt.Errorf("numerics: LocateNodes: empty node slice")
	case len(nodes) == 1:
		return 0, 0, nil
	}
	if x <= nodes[0] {
		return 0, 0, nil
	}
	if last := len(nodes) - 1; x >= nodes[last] {
		return last - 1, 1, nil
	}
	// Binary search for the last node ≤ x.
	lo, hi := 0, len(nodes)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if nodes[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (x - nodes[lo]) / (nodes[lo+1] - nodes[lo])
	return lo, f, nil
}

// InterpMultilinear interpolates a row-major nodal field over an arbitrary
// number of strictly increasing (possibly non-uniform) axes at the point x,
// clamping each coordinate to its axis range. Degenerate single-node axes are
// allowed and contribute no interpolation weight, so a 3-D table with one
// frozen dimension evaluates as a bilinear interpolant. vals must hold
// ∏ len(axes[k]) values with the last axis varying fastest.
func InterpMultilinear(axes [][]float64, vals []float64, x []float64) (float64, error) {
	if len(axes) == 0 || len(axes) != len(x) {
		return 0, fmt.Errorf("numerics: InterpMultilinear: %d axes for %d coordinates", len(axes), len(x))
	}
	size := 1
	for _, ax := range axes {
		if len(ax) == 0 {
			return 0, fmt.Errorf("numerics: InterpMultilinear: empty axis")
		}
		size *= len(ax)
	}
	if len(vals) != size {
		return 0, fmt.Errorf("numerics: InterpMultilinear: %d values for %d nodes", len(vals), size)
	}
	// Per-axis bracketing interval and fraction.
	idx := make([]int, len(axes))
	frac := make([]float64, len(axes))
	for k, ax := range axes {
		i, f, err := LocateNodes(ax, x[k])
		if err != nil {
			return 0, err
		}
		idx[k], frac[k] = i, f
	}
	// Accumulate the 2^d corner contributions (weight-0 corners skipped, so
	// degenerate axes never index out of range).
	var out float64
	for corner := 0; corner < 1<<len(axes); corner++ {
		w := 1.0
		flat := 0
		for k, ax := range axes {
			bit := (corner >> k) & 1
			if bit == 1 {
				w *= frac[k]
			} else {
				w *= 1 - frac[k]
			}
			if w == 0 {
				break
			}
			flat = flat*len(ax) + idx[k] + bit
		}
		if w == 0 {
			continue
		}
		out += w * vals[flat]
	}
	return out, nil
}

// GradientQ computes the central-difference partial derivative ∂field/∂q at
// every node of the grid, with one-sided differences on the q boundaries.
// This is the estimator of ∂qV used by the closed-form optimal control
// (Theorem 1, Eq. 21). dst must have length g.Size(); it may alias field only
// if a corrupted result is acceptable, so callers pass a separate buffer.
func GradientQ(g grid.Grid2D, dst, field []float64) error {
	if len(field) != g.Size() || len(dst) != g.Size() {
		return fmt.Errorf("numerics: GradientQ: field %d, dst %d, grid %d", len(field), len(dst), g.Size())
	}
	dq := g.Q.Step()
	nq := g.Q.N
	for i := 0; i < g.H.N; i++ {
		row := i * nq
		dst[row] = (field[row+1] - field[row]) / dq
		for j := 1; j < nq-1; j++ {
			dst[row+j] = (field[row+j+1] - field[row+j-1]) / (2 * dq)
		}
		dst[row+nq-1] = (field[row+nq-1] - field[row+nq-2]) / dq
	}
	return nil
}

// GradientH computes ∂field/∂h analogously to GradientQ.
func GradientH(g grid.Grid2D, dst, field []float64) error {
	if len(field) != g.Size() || len(dst) != g.Size() {
		return fmt.Errorf("numerics: GradientH: field %d, dst %d, grid %d", len(field), len(dst), g.Size())
	}
	dh := g.H.Step()
	nq := g.Q.N
	nh := g.H.N
	for j := 0; j < nq; j++ {
		dst[j] = (field[nq+j] - field[j]) / dh
		for i := 1; i < nh-1; i++ {
			dst[i*nq+j] = (field[(i+1)*nq+j] - field[(i-1)*nq+j]) / (2 * dh)
		}
		dst[(nh-1)*nq+j] = (field[(nh-1)*nq+j] - field[(nh-2)*nq+j]) / dh
	}
	return nil
}

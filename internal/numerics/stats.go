package numerics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Sum            float64
	Median         float64
	P05, P95       float64 // 5th and 95th percentiles
	Skew, Kurtosis float64 // excess kurtosis
}

// Summarize computes descriptive statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(n)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	s.Std = math.Sqrt(m2)
	if m2 > 0 {
		s.Skew = m3 / math.Pow(m2, 1.5)
		s.Kurtosis = m4/(m2*m2) - 3
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted sample
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	q = Clamp(q, 0, 1)
	pos := q * float64(n-1)
	i := int(math.Floor(pos))
	if i >= n-1 {
		return sorted[n-1]
	}
	f := pos - float64(i)
	return Lerp(sorted[i], sorted[i+1], f)
}

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Histogram is a uniform-bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
	below    int
	above    int
}

// NewHistogram builds a histogram with bins uniform bins.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("numerics: NewHistogram: need at least 1 bin, got %d", bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("numerics: NewHistogram: empty range [%g, %g]", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one observation. Values outside the range are tallied
// separately and excluded from Density.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Min {
		h.below++
		return
	}
	if x > h.Max {
		h.above++
		return
	}
	bins := len(h.Counts)
	i := int((x - h.Min) / (h.Max - h.Min) * float64(bins))
	if i == bins { // x == Max lands in the last bin
		i = bins - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations recorded (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts below Min and above Max.
func (h *Histogram) OutOfRange() (below, above int) { return h.below, h.above }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Max - h.Min) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalised probability density per bin (integrating to
// ≤ 1; out-of-range mass is excluded). The result is empty if nothing in
// range was recorded.
func (h *Histogram) Density() []float64 {
	inRange := h.total - h.below - h.above
	out := make([]float64, len(h.Counts))
	if inRange == 0 {
		return out
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(h.total) * w)
	}
	return out
}

// L1Distance returns the discrete L1 distance ∫|p−q| between two nodal
// densities sampled on the same uniform axis with spacing dx.
func L1Distance(p, q []float64, dx float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("numerics: L1Distance: length mismatch %d vs %d", len(p), len(q))
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s * dx, nil
}

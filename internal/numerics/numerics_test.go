package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func mustAxis(t *testing.T, min, max float64, n int) grid.Axis {
	t.Helper()
	a, err := grid.NewAxis(min, max, n)
	if err != nil {
		t.Fatalf("NewAxis: %v", err)
	}
	return a
}

func mustGrid(t *testing.T, hn, qn int) grid.Grid2D {
	t.Helper()
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: hn},
		grid.Axis{Min: 0, Max: 2, N: qn},
	)
	if err != nil {
		t.Fatalf("NewGrid2D: %v", err)
	}
	return g
}

func TestInterp1DExactOnLinear(t *testing.T) {
	ax := mustAxis(t, 0, 10, 11)
	vals := make([]float64, 11)
	for i := range vals {
		vals[i] = 3*ax.At(i) - 1
	}
	for _, x := range []float64{0, 0.3, 4.99, 7.5, 10} {
		got, err := Interp1D(ax, vals, x)
		if err != nil {
			t.Fatalf("Interp1D: %v", err)
		}
		if math.Abs(got-(3*x-1)) > 1e-12 {
			t.Errorf("Interp1D(%g) = %g, want %g", x, got, 3*x-1)
		}
	}
	if _, err := Interp1D(ax, vals[:5], 1); err == nil {
		t.Error("mismatched values should error")
	}
}

func TestInterpBilinearExactOnBilinear(t *testing.T) {
	g := mustGrid(t, 5, 7)
	f := g.NewField()
	fn := func(h, q float64) float64 { return 2 + 3*h - q + 0.5*h*q }
	for i := 0; i < g.H.N; i++ {
		for j := 0; j < g.Q.N; j++ {
			f[g.Idx(i, j)] = fn(g.H.At(i), g.Q.At(j))
		}
	}
	for _, pt := range [][2]float64{{0, 0}, {0.5, 1}, {0.21, 1.9}, {1, 2}} {
		got, err := InterpBilinear(g, f, pt[0], pt[1])
		if err != nil {
			t.Fatalf("InterpBilinear: %v", err)
		}
		if math.Abs(got-fn(pt[0], pt[1])) > 1e-12 {
			t.Errorf("InterpBilinear(%v) = %g, want %g", pt, got, fn(pt[0], pt[1]))
		}
	}
	if _, err := InterpBilinear(g, f[:3], 0, 0); err == nil {
		t.Error("mismatched field should error")
	}
}

func TestGradientQExactOnLinear(t *testing.T) {
	g := mustGrid(t, 4, 9)
	f := g.NewField()
	for i := 0; i < g.H.N; i++ {
		for j := 0; j < g.Q.N; j++ {
			f[g.Idx(i, j)] = 5*g.Q.At(j) + 2*g.H.At(i)
		}
	}
	dst := g.NewField()
	if err := GradientQ(g, dst, f); err != nil {
		t.Fatalf("GradientQ: %v", err)
	}
	for k, v := range dst {
		if math.Abs(v-5) > 1e-10 {
			t.Fatalf("GradientQ[%d] = %g, want 5", k, v)
		}
	}
}

func TestGradientHExactOnLinear(t *testing.T) {
	g := mustGrid(t, 9, 4)
	f := g.NewField()
	for i := 0; i < g.H.N; i++ {
		for j := 0; j < g.Q.N; j++ {
			f[g.Idx(i, j)] = -3*g.H.At(i) + g.Q.At(j)
		}
	}
	dst := g.NewField()
	if err := GradientH(g, dst, f); err != nil {
		t.Fatalf("GradientH: %v", err)
	}
	for k, v := range dst {
		if math.Abs(v+3) > 1e-10 {
			t.Fatalf("GradientH[%d] = %g, want -3", k, v)
		}
	}
}

func TestTrapezoidExactOnLinear(t *testing.T) {
	ax := mustAxis(t, 0, 2, 21)
	vals := make([]float64, 21)
	for i := range vals {
		vals[i] = 4*ax.At(i) + 1 // ∫₀² (4x+1) dx = 10
	}
	got, err := Trapezoid(ax, vals)
	if err != nil {
		t.Fatalf("Trapezoid: %v", err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("Trapezoid = %g, want 10", got)
	}
}

func TestSimpsonExactOnCubic(t *testing.T) {
	ax := mustAxis(t, 0, 1, 11)
	vals := make([]float64, 11)
	for i := range vals {
		x := ax.At(i)
		vals[i] = x * x * x // ∫₀¹ x³ dx = 1/4, Simpson is exact on cubics
	}
	got, err := Simpson(ax, vals)
	if err != nil {
		t.Fatalf("Simpson: %v", err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Simpson = %g, want 0.25", got)
	}
	even := mustAxis(t, 0, 1, 10)
	if _, err := Simpson(even, make([]float64, 10)); err == nil {
		t.Error("even node count should be rejected")
	}
}

func TestIntegral2DExactOnConstant(t *testing.T) {
	g := mustGrid(t, 6, 8) // area 1×2 = 2
	f := g.NewField()
	for k := range f {
		f[k] = 3
	}
	got, err := Integral2D(g, f)
	if err != nil {
		t.Fatalf("Integral2D: %v", err)
	}
	if math.Abs(got-6) > 1e-12 {
		t.Errorf("Integral2D = %g, want 6", got)
	}
}

func TestIntegral2DExactOnBilinear(t *testing.T) {
	g := mustGrid(t, 5, 5)
	f := g.NewField()
	// ∫₀¹∫₀² (h + q) dq dh = ∫₀¹ (2h + 2) dh = 3
	for i := 0; i < g.H.N; i++ {
		for j := 0; j < g.Q.N; j++ {
			f[g.Idx(i, j)] = g.H.At(i) + g.Q.At(j)
		}
	}
	got, err := Integral2D(g, f)
	if err != nil {
		t.Fatalf("Integral2D: %v", err)
	}
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("Integral2D = %g, want 3", got)
	}
}

func TestWeightedIntegralMatchesPlain(t *testing.T) {
	g := mustGrid(t, 7, 9)
	f := g.NewField()
	rng := rand.New(rand.NewSource(5))
	for k := range f {
		f[k] = rng.Float64()
	}
	plain, err := Integral2D(g, f)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := WeightedIntegral2D(g, f, func(_, _ int, _, _ float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-weighted) > 1e-12 {
		t.Errorf("weighted(1) = %g differs from plain %g", weighted, plain)
	}
}

func TestMarginalQIntegratesToTotal(t *testing.T) {
	g := mustGrid(t, 7, 9)
	f := g.NewField()
	rng := rand.New(rand.NewSource(6))
	for k := range f {
		f[k] = rng.Float64()
	}
	marg := make([]float64, g.Q.N)
	if err := MarginalQ(g, marg, f); err != nil {
		t.Fatalf("MarginalQ: %v", err)
	}
	mq, err := Trapezoid(g.Q, marg)
	if err != nil {
		t.Fatal(err)
	}
	total, err := Integral2D(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mq-total) > 1e-10 {
		t.Errorf("∫marginal = %g, ∫∫field = %g", mq, total)
	}
}

func TestSmoothStepProperties(t *testing.T) {
	if got := SmoothStep(1, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("f(0) = %g, want 0.5", got)
	}
	if got := SmoothStep(1, 1000); got != 1 {
		t.Errorf("f(+∞) = %g, want 1", got)
	}
	if got := SmoothStep(1, -1000); got != 0 {
		t.Errorf("f(−∞) = %g, want 0", got)
	}
}

// Property: f(x) + f(−x) = 1 — this is what makes P1+P2+P3 = 1 in the model.
func TestSmoothStepComplement(t *testing.T) {
	f := func(x float64, lRaw uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		l := 0.01 + float64(lRaw%100)/10
		return math.Abs(SmoothStep(l, x)+SmoothStep(l, -x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: f is non-decreasing.
func TestSmoothStepMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return SmoothStep(0.3, lo) <= SmoothStep(0.3, hi)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmoothStepDerivMatchesFiniteDifference(t *testing.T) {
	for _, x := range []float64{-3, -0.5, 0, 0.7, 2} {
		const h = 1e-6
		want := (SmoothStep(0.8, x+h) - SmoothStep(0.8, x-h)) / (2 * h)
		got := SmoothStepDeriv(0.8, x)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("f'(%g) = %g, finite diff %g", x, got, want)
		}
	}
	if SmoothStepDeriv(1, 1e9) != 0 {
		t.Error("derivative should saturate to 0 far from the step")
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	ax := mustAxis(t, -8, 8, 801)
	vals := make([]float64, ax.N)
	for i := range vals {
		vals[i] = NormalPDF(0, 1, ax.At(i))
	}
	got, err := Trapezoid(ax, vals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("∫pdf = %g, want 1", got)
	}
	if NormalPDF(0, -1, 0) != 0 {
		t.Error("non-positive sd should give 0 density")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if got := NormalCDF(0, 1, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %g, want 0.5", got)
	}
	if got := NormalCDF(0, 1, 1.96); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("CDF(1.96) = %g, want ≈0.975", got)
	}
	if NormalCDF(2, 0, 1) != 0 || NormalCDF(2, 0, 3) != 1 {
		t.Error("degenerate CDF should be a step at the mean")
	}
}

func TestZipfWeights(t *testing.T) {
	w, err := ZipfWeights(5, 1)
	if err != nil {
		t.Fatalf("ZipfWeights: %v", err)
	}
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Errorf("Zipf weights must be non-increasing: w[%d]=%g > w[%d]=%g", i, x, i-1, w[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σw = %g, want 1", sum)
	}
	if _, err := ZipfWeights(0, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := ZipfWeights(3, 0); err == nil {
		t.Error("skew 0 should error")
	}
}

func TestClampHelpers(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if Clamp01(2) != 1 || Clamp01(-0.5) != 0 || Clamp01(0.25) != 0.25 {
		t.Error("Clamp01 misbehaves")
	}
	if Lerp(2, 4, 0.5) != 3 {
		t.Error("Lerp misbehaves")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("Summarize basics wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %g, want √2", s.Std)
	}
	if s.Median != 3 {
		t.Errorf("Median = %g, want 3", s.Median)
	}
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary should have N=0")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Errorf("Quantile(1) = %g, want 10", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton quantile = %g, want 7", got)
	}
}

func TestMeanVariance(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %g, want 3", got)
	}
	if got := Variance([]float64{2, 4}); got != 1 {
		t.Errorf("Variance = %g, want 1", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty mean/variance should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0, 1, 5, 9.9, 10, -1, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	below, above := h.OutOfRange()
	if below != 1 || above != 1 {
		t.Errorf("OutOfRange = (%d, %d), want (1, 1)", below, above)
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Errorf("bin 0 count = %d, want 2", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9 and 10 (upper edge folds into last bin)
		t.Errorf("bin 4 count = %d, want 2", h.Counts[4])
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %g, want 2", h.BinWidth())
	}
	if h.BinCenter(0) != 1 {
		t.Errorf("BinCenter(0) = %g, want 1", h.BinCenter(0))
	}
	dens := h.Density()
	var integral float64
	for _, d := range dens {
		integral += d * h.BinWidth()
	}
	if integral >= 1+1e-12 {
		t.Errorf("density integrates to %g > 1", integral)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(3, 3, 4); err == nil {
		t.Error("empty range should error")
	}
}

func TestL1Distance(t *testing.T) {
	d, err := L1Distance([]float64{1, 2}, []float64{0, 4}, 0.5)
	if err != nil {
		t.Fatalf("L1Distance: %v", err)
	}
	if math.Abs(d-1.5) > 1e-12 {
		t.Errorf("L1Distance = %g, want 1.5", d)
	}
	if _, err := L1Distance([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestInterpMultilinearExactOnTrilinear(t *testing.T) {
	// A trilinear function is reproduced exactly by multilinear interpolation,
	// including on non-uniform axes and at clamped out-of-range points.
	f := func(a, b, c float64) float64 { return 2 + 3*a - b + 0.5*c + a*b - 2*b*c + a*b*c }
	axes := [][]float64{{0, 1, 3}, {-1, 0.5, 2, 4}, {10, 20}}
	vals := make([]float64, 3*4*2)
	for i, a := range axes[0] {
		for j, b := range axes[1] {
			for k, c := range axes[2] {
				vals[(i*4+j)*2+k] = f(a, b, c)
			}
		}
	}
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{0.7, 1.1, 14}, f(0.7, 1.1, 14)},
		{[]float64{3, 4, 20}, f(3, 4, 20)},      // corner node
		{[]float64{-5, 0.5, 12}, f(0, 0.5, 12)}, // clamped below
		{[]float64{1, 9, 25}, f(1, 4, 20)},      // clamped above
	}
	for _, c := range cases {
		got, err := InterpMultilinear(axes, vals, c.x)
		if err != nil {
			t.Fatalf("InterpMultilinear(%v): %v", c.x, err)
		}
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("InterpMultilinear(%v) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestInterpMultilinearDegenerateAxis(t *testing.T) {
	// A single-node axis freezes its dimension: the interpolant reduces to
	// the lower-dimensional one and the frozen coordinate is ignored.
	axes := [][]float64{{0, 2}, {5}, {1, 3}}
	vals := []float64{0, 1, 2, 3} // v(i,0,k) = 2i + k over unit offsets
	got, err := InterpMultilinear(axes, vals, []float64{1, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("degenerate-axis interpolation = %g, want %g", got, want)
	}
	// The frozen coordinate may differ from the node value — the table layer
	// decides whether that is acceptable, not the interpolant.
	if got2, err := InterpMultilinear(axes, vals, []float64{1, 99, 2}); err != nil || got2 != got {
		t.Errorf("frozen coordinate changed the interpolant: %g vs %g (err %v)", got2, got, err)
	}
}

func TestInterpMultilinearShapeErrors(t *testing.T) {
	if _, err := InterpMultilinear([][]float64{{0, 1}}, []float64{1}, []float64{0.5}); err == nil {
		t.Error("value/node count mismatch should error")
	}
	if _, err := InterpMultilinear([][]float64{{0, 1}}, []float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("axis/coordinate count mismatch should error")
	}
	if _, err := InterpMultilinear([][]float64{{}}, nil, []float64{0}); err == nil {
		t.Error("empty axis should error")
	}
	if _, _, err := LocateNodes(nil, 1); err == nil {
		t.Error("LocateNodes on empty nodes should error")
	}
}

package mec

import (
	"fmt"

	"repro/internal/numerics"
	"repro/internal/sde"
)

// Cases holds the smoothed occurrence probabilities of the three service
// cases (Section III-A):
//
//	P1 — the EDP itself has cached enough of the content (q ≤ α·Qk);
//	P2 — it has not, but a peer EDP has (peer share);
//	P3 — neither has: the content is fetched from the cloud centre.
//
// With the logistic smooth step f, P1+P2+P3 = 1 identically because
// f(x)+f(−x) = 1.
type Cases struct {
	P1, P2, P3 float64
}

// CaseProbabilities evaluates P1, P2, P3 for own remaining space q and peer
// remaining space qbar:
//
//	P1 = f(αQk − q)
//	P2 = f(q − αQk) · f(αQk − qbar)
//	P3 = f(q − αQk) · f(qbar − αQk)
func CaseProbabilities(p Params, q, qbar float64) Cases {
	aq := p.AlphaQ()
	l := p.SmoothL
	own := numerics.SmoothStep(l, aq-q)     // "cached enough" indicator
	notOwn := numerics.SmoothStep(l, q-aq)  // complement
	peer := numerics.SmoothStep(l, aq-qbar) // peer cached enough
	return Cases{
		P1: own,
		P2: notOwn * peer,
		P3: notOwn * numerics.SmoothStep(l, qbar-aq),
	}
}

// PriceMeanField evaluates the limiting dynamic price of Eq. (17):
//
//	p(t) = p̂ − η1 · Qk · ∫∫ λ(S) x*(S) dS
//
// where meanX is the population-average caching rate E_λ[x*]. The price is
// floored at zero: the supply-demand rule never forces EDPs to pay buyers.
func PriceMeanField(p Params, meanX float64) float64 {
	price := p.PHat - p.Eta1*p.Qk*meanX
	if price < 0 {
		return 0
	}
	return price
}

// PriceExact evaluates the finite-M price of Eq. (5) for EDP i given the
// caching rates of all M EDPs: p_i = p̂ − η1·Σ_{i'≠i} Qk·x_{i'} / (M−1).
// With M == 1 the price is simply p̂.
func PriceExact(p Params, rates []float64, i int) (float64, error) {
	m := len(rates)
	if i < 0 || i >= m {
		return 0, fmt.Errorf("mec: PriceExact: index %d out of range [0,%d)", i, m)
	}
	if m == 1 {
		return p.PHat, nil
	}
	var sum float64
	for j, x := range rates {
		if j == i {
			continue
		}
		sum += p.Qk * x
	}
	price := p.PHat - p.Eta1*sum/float64(m-1)
	if price < 0 {
		price = 0
	}
	return price, nil
}

// UtilityTerms decomposes the instantaneous utility U (Eq. 10) of a generic
// EDP for one content: U = Φ¹ + Φ² − C¹ − C² − C³.
type UtilityTerms struct {
	Trading   float64 // Φ¹, trading income (Eq. 6)
	Sharing   float64 // Φ², sharing benefit (Eq. 7 / mean-field Φ̄²)
	Placement float64 // C¹, content placement cost (Eq. 8)
	Staleness float64 // C², request-service-delay penalty (Eq. 9)
	ShareCost float64 // C³, payment for peer sharing
}

// Total returns Φ¹ + Φ² − C¹ − C² − C³.
func (t UtilityTerms) Total() float64 {
	return t.Trading + t.Sharing - t.Placement - t.Staleness - t.ShareCost
}

// UtilityContext carries the per-epoch, per-content quantities the utility
// needs beyond the EDP's own state: the mean-field estimator outputs (price,
// peer cache level q̄, average sharing benefit) and the workload descriptors
// (request count, popularity, timeliness). Building one context per time step
// lets the HJB solver evaluate U(t, x, S, λ) as a pure function of (x, h, q).
type UtilityContext struct {
	P       Params
	Channel *ChannelModel

	Price        float64 // p(t)
	QBar         float64 // q̄_{−,k}(t), mean remaining space of peers
	ShareBenefit float64 // Φ̄²(t), average sharing benefit of a qualified sharer
	Requests     float64 // |I_k(t)|
	Pop          float64 // Π_k(t)
	Timeliness   float64 // L_k(t)

	// ShareEnabled distinguishes MFG-CP from the paper's MFG baseline, which
	// drops peer sharing entirely: the sharing benefit Φ² and cost C³ vanish
	// and Case 2 collapses into Case 3 (every miss is served by the centre).
	ShareEnabled bool
}

// NewUtilityContext validates inputs and builds a context with sharing on.
func NewUtilityContext(p Params, ch *ChannelModel) (*UtilityContext, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("mec: NewUtilityContext: nil channel model")
	}
	return &UtilityContext{
		P:            p,
		Channel:      ch,
		Price:        p.PHat,
		QBar:         p.InitMeanFrac * p.Qk,
		Requests:     0,
		Pop:          1 / float64(p.K),
		Timeliness:   p.LMax / 2,
		ShareEnabled: true,
	}, nil
}

// Terms evaluates the decomposed utility at control x and state (h, q).
func (u *UtilityContext) Terms(x, h, q float64) UtilityTerms {
	p := u.P
	var cs Cases
	if u.ShareEnabled {
		cs = CaseProbabilities(p, q, u.QBar)
	} else {
		// Without sharing, any own miss is served by the centre: P2 mass
		// moves into P3.
		cs = CaseProbabilities(p, q, u.QBar)
		cs.P3 += cs.P2
		cs.P2 = 0
	}

	rate := u.Channel.Rate(h)

	// Φ¹ — trading income (Eq. 6): requests × price × data volume served in
	// each case. In Case 1 the EDP sells its cached portion Qk−q; in Case 2
	// the peer-complemented volume Qk−q̄; in Case 3 the whole content.
	trading := u.Requests * u.Price * (cs.P1*(p.Qk-q) + cs.P2*(p.Qk-u.QBar) + cs.P3*p.Qk)

	// Φ² — sharing benefit. The mean-field estimator supplies the average
	// benefit Φ̄²(t) per qualified sharer; the probability this EDP qualifies
	// is the Case-1 weight f(αQk − q).
	var sharing float64
	if u.ShareEnabled {
		sharing = cs.P1 * u.ShareBenefit
	}

	// C¹ — placement cost (Eq. 8).
	placement := p.W4*x + p.W5*x*x

	// C² — staleness cost (Eq. 9): download-from-centre delay for the newly
	// cached portion plus the per-requester service delay in each case.
	perReq := cs.P1*(p.Qk-q)/rate + cs.P2*(p.Qk-u.QBar)/rate + cs.P3*(q/p.HubRate+p.Qk/rate)
	staleness := p.Eta2 * (p.Qk*x/p.HubRate + u.Requests*perReq)

	// C³ — sharing cost: in Case 2 the EDP pays p̄k per MB obtained from the
	// peer, proportional to its own deficit relative to the peer.
	var shareCost float64
	if u.ShareEnabled {
		shareCost = cs.P2 * p.SharePrice * (q - u.QBar)
		if shareCost < 0 {
			shareCost = 0 // the EDP never pays a negative amount
		}
	}

	return UtilityTerms{
		Trading:   trading,
		Sharing:   sharing,
		Placement: placement,
		Staleness: staleness,
		ShareCost: shareCost,
	}
}

// Utility evaluates U(t, x, S, λ) = Φ¹ + Φ² − C¹ − C² − C³ (Eq. 10).
func (u *UtilityContext) Utility(x, h, q float64) float64 {
	return u.Terms(x, h, q).Total()
}

// CacheDrift builds the Eq. (4) drift object for the current popularity and
// timeliness.
func (u *UtilityContext) CacheDrift() sde.CacheDrift {
	return sde.CacheDrift{
		Qk:     u.P.Qk,
		W1:     u.P.W1,
		W2:     u.P.W2,
		W3:     u.P.W3,
		Xi:     u.P.Xi,
		SigmaQ: u.P.SigmaQ,
	}
}

// QDrift evaluates the remaining-space drift b_q(x) = Qk[−w1x − w2Π + w3ξ^L]
// at the context's popularity and timeliness.
func (u *UtilityContext) QDrift(x float64) float64 {
	return u.CacheDrift().Rate(x, u.Pop, u.Timeliness)
}

// Package mec holds the domain model of the Mobile Edge Caching system from
// the MFG-CP paper: the parameter set, content popularity/timeliness
// (Definitions 1–2), the wireless channel and transmission-rate model
// (Eqs. 1–2), the dynamic trading price (Eq. 5/17), the three service-case
// probabilities, and the per-EDP utility function (Eqs. 6–10).
package mec

import (
	"fmt"
	"math"
)

// Params collects every model constant. Two presets exist:
//
//   - Default() — the calibrated unit system used by the experiments. It keeps
//     every mantissa and every structural ratio from the paper's Section V but
//     measures data in MB, rates in MB/s and prices in $/MB, so that incomes,
//     costs and the optimal control all live on comparable numeric scales.
//     (The paper's literal constants mix per-byte prices with 10⁸-scale cost
//     coefficients; only the shapes of its figures are reproducible, and those
//     depend on the ratios, which we preserve.)
//   - Paper() — the literal Section-V constants, retained for reference and
//     for the parameter-sanity tests.
type Params struct {
	// Population.
	M int // number of EDPs (paper: 300)
	K int // number of content categories (paper: 20)

	// Content and cache dynamics (Eq. 4).
	Qk     float64 // content data size, MB (paper: 100 MB)
	W1     float64 // caching-rate drift weight (paper: 1)
	W2     float64 // popularity-discard weight (paper: 1/20)
	W3     float64 // timeliness-keep weight (paper: 10)
	Xi     float64 // ξ ∈ (0,1), timeliness steepness (paper: 0.1)
	SigmaQ float64 // ϱq, cache diffusion (paper: 0.1)

	// Channel (Eqs. 1–2). h is measured in units of 10⁻⁵ (the paper's fading
	// range [1,10]×10⁻⁵ becomes [1,10]).
	ChRate    float64 // ςh, OU changing rate
	ChMean    float64 // υh, OU long-term mean
	ChSigma   float64 // ϱh, OU diffusion (paper evaluates {0.1,…}; default 0.1)
	HMin      float64 // lower bound of the fading range
	HMax      float64 // upper bound of the fading range
	Bandwidth float64 // B, rate scale (MB/s per log2 unit; paper: 10 MHz)
	TxPower   float64 // G, transmission power (paper: 1 W, same for all EDPs)
	Noise     float64 // ϱ², noise power
	PathLoss  float64 // τ, path-loss exponent (paper: 3)
	MeanDist  float64 // d̄, representative EDP→requester distance
	Interfer  int     // effective number of interfering neighbours in the mean-field rate
	HubRate   float64 // Hc, centre↔EDP transmission rate (MB/s)
	RateFloor float64 // lower bound on any transmission rate (guards divisions)

	// Economics.
	PHat       float64 // p̂, maximum unit trading price ($/MB; paper: 5×10⁻⁷ per byte ⇒ 0.5 $/MB)
	Eta1       float64 // η1, average-supply→price conversion (Eq. 5)
	Eta2       float64 // η2, delay→staleness-cost conversion (Eq. 9)
	SharePrice float64 // p̄k, uniform peer-sharing unit price ($/MB)
	W4         float64 // linear placement-cost coefficient (Eq. 8)
	W5         float64 // quadratic placement-cost coefficient (Eq. 8)

	// Service cases.
	Alpha   float64 // α, tolerated uncached fraction (paper: 20%)
	SmoothL float64 // l, slope of the logistic Heaviside approximation

	// Popularity / timeliness.
	ZipfSkew float64 // ι, Zipf steepness of the initial popularity
	LMax     float64 // maximum timeliness level L_max

	// Horizon.
	Horizon float64 // T, optimisation epoch length (paper: 1)

	// Initial mean-field distribution λ(0): Gaussian over the remaining-space
	// fraction q/Qk with the given mean and standard deviation
	// (paper default: N(0.7, 0.1²)).
	InitMeanFrac float64
	InitStdFrac  float64
}

// Default returns the calibrated parameter set used by all experiments.
func Default() Params {
	return Params{
		M: 300,
		K: 20,

		Qk:     100,
		W1:     1,
		W2:     1.0 / 20.0,
		W3:     10,
		Xi:     0.1,
		SigmaQ: 0.1 * 100, // the paper's ϱq=0.1 is on the q/Qk fraction scale; ×Qk in MB units

		ChRate:    2,
		ChMean:    5,
		ChSigma:   0.1 * 5, // ϱh=0.1 on the normalised scale, ×υh in h units
		HMin:      1,
		HMax:      10,
		Bandwidth: 10,
		TxPower:   1,
		Noise:     1e-3,
		PathLoss:  3,
		MeanDist:  10,
		Interfer:  4,
		HubRate:   2, // the centre↔EDP backhaul is much slower than edge links
		RateFloor: 1,

		PHat:       1.5,
		Eta1:       2e-3,
		Eta2:       2.0,
		SharePrice: 0.3,
		W4:         25,  // paper mantissa 2.5, calibrated exponent
		W5:         650, // paper mantissa 0.65, calibrated exponent

		Alpha:   0.20,
		SmoothL: 0.05,

		ZipfSkew: 0.8,
		LMax:     5,

		Horizon: 1,

		InitMeanFrac: 0.7,
		InitStdFrac:  0.1,
	}
}

// Paper returns the literal Section-V constants of the paper, in the paper's
// own (mixed) units. These are kept for reference and parameter-sanity tests;
// the experiments use Default().
func Paper() Params {
	p := Default()
	p.W4 = 2.5e3
	p.W5 = 0.65e8
	p.PHat = 5e-7 // per byte
	p.Eta1 = 2e-7 // middle of the paper's [1,4]×10⁻⁷ sweep
	p.SigmaQ = 0.1
	p.ChSigma = 0.1
	return p
}

// Validate checks every structural constraint the model relies on.
func (p Params) Validate() error {
	switch {
	case p.M < 1:
		return fmt.Errorf("mec: M must be ≥ 1, got %d", p.M)
	case p.K < 1:
		return fmt.Errorf("mec: K must be ≥ 1, got %d", p.K)
	case !(p.Qk > 0):
		return fmt.Errorf("mec: Qk must be positive, got %g", p.Qk)
	case p.W1 < 0 || p.W2 < 0 || p.W3 < 0:
		return fmt.Errorf("mec: w1,w2,w3 must be non-negative, got %g,%g,%g", p.W1, p.W2, p.W3)
	case !(p.Xi > 0 && p.Xi < 1):
		return fmt.Errorf("mec: ξ must lie in (0,1), got %g", p.Xi)
	case p.SigmaQ < 0:
		return fmt.Errorf("mec: ϱq must be non-negative, got %g", p.SigmaQ)
	case !(p.ChRate > 0):
		return fmt.Errorf("mec: ςh must be positive, got %g", p.ChRate)
	case p.ChSigma < 0:
		return fmt.Errorf("mec: ϱh must be non-negative, got %g", p.ChSigma)
	case !(p.HMax > p.HMin):
		return fmt.Errorf("mec: fading range [%g,%g] is empty", p.HMin, p.HMax)
	case !(p.Bandwidth > 0):
		return fmt.Errorf("mec: bandwidth must be positive, got %g", p.Bandwidth)
	case !(p.TxPower > 0):
		return fmt.Errorf("mec: transmission power must be positive, got %g", p.TxPower)
	case !(p.Noise > 0):
		return fmt.Errorf("mec: noise power must be positive, got %g", p.Noise)
	case p.PathLoss < 0:
		return fmt.Errorf("mec: path-loss exponent must be non-negative, got %g", p.PathLoss)
	case !(p.MeanDist > 0):
		return fmt.Errorf("mec: mean distance must be positive, got %g", p.MeanDist)
	case p.Interfer < 0:
		return fmt.Errorf("mec: interferer count must be non-negative, got %d", p.Interfer)
	case !(p.HubRate > 0):
		return fmt.Errorf("mec: hub rate Hc must be positive, got %g", p.HubRate)
	case !(p.RateFloor > 0):
		return fmt.Errorf("mec: rate floor must be positive, got %g", p.RateFloor)
	case !(p.PHat > 0):
		return fmt.Errorf("mec: p̂ must be positive, got %g", p.PHat)
	case p.Eta1 < 0 || p.Eta2 < 0:
		return fmt.Errorf("mec: η1, η2 must be non-negative, got %g, %g", p.Eta1, p.Eta2)
	case p.SharePrice < 0:
		return fmt.Errorf("mec: p̄k must be non-negative, got %g", p.SharePrice)
	case p.W4 < 0:
		return fmt.Errorf("mec: w4 must be non-negative, got %g", p.W4)
	case !(p.W5 > 0):
		return fmt.Errorf("mec: w5 must be positive (Eq. 21 divides by it), got %g", p.W5)
	case !(p.Alpha > 0 && p.Alpha < 1):
		return fmt.Errorf("mec: α must lie in (0,1), got %g", p.Alpha)
	case !(p.SmoothL > 0):
		return fmt.Errorf("mec: smooth-step slope l must be positive, got %g", p.SmoothL)
	case !(p.ZipfSkew > 0):
		return fmt.Errorf("mec: Zipf skew ι must be positive, got %g", p.ZipfSkew)
	case p.LMax < 0:
		return fmt.Errorf("mec: L_max must be non-negative, got %g", p.LMax)
	case !(p.Horizon > 0):
		return fmt.Errorf("mec: horizon T must be positive, got %g", p.Horizon)
	case !(p.InitStdFrac > 0):
		return fmt.Errorf("mec: initial distribution std must be positive, got %g", p.InitStdFrac)
	case math.IsNaN(p.InitMeanFrac) || p.InitMeanFrac < 0 || p.InitMeanFrac > 1:
		return fmt.Errorf("mec: initial distribution mean fraction must lie in [0,1], got %g", p.InitMeanFrac)
	}
	return nil
}

// AlphaQ returns the case-threshold α·Qk (the remaining-space level below
// which the content counts as "cached enough", Case 1).
func (p Params) AlphaQ() float64 { return p.Alpha * p.Qk }

package mec

import (
	"fmt"

	"repro/internal/numerics"
)

// Content describes one content category k: its size, its current popularity
// Π_k (Definition 1) and timeliness L_k (Definition 2), and the current
// per-epoch request load |I_k|.
type Content struct {
	ID         int
	Size       float64 // Qk, MB
	Pop0       float64 // initial Zipf popularity Π_k(t0)
	Pop        float64 // current popularity Π_k(t)
	Timeliness float64 // L_k(t) ∈ [0, LMax]
	Requests   float64 // |I_k(t)|, requests per epoch at this EDP
}

// Catalog is the full content set K.
type Catalog struct {
	Contents []Content
	k        int
}

// NewCatalog builds K contents with Zipf(ι) initial popularity (Definition 1)
// and uniform size Qk. Timeliness starts at LMax/2 and request counts at 0;
// both are refreshed per epoch from the workload.
func NewCatalog(p Params) (*Catalog, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, err := numerics.ZipfWeights(p.K, p.ZipfSkew)
	if err != nil {
		return nil, err
	}
	cs := make([]Content, p.K)
	for k := range cs {
		cs[k] = Content{
			ID:         k,
			Size:       p.Qk,
			Pop0:       w[k],
			Pop:        w[k],
			Timeliness: p.LMax / 2,
		}
	}
	return &Catalog{Contents: cs, k: p.K}, nil
}

// K returns the catalogue size.
func (c *Catalog) K() int { return c.k }

// Get returns a pointer to content k.
func (c *Catalog) Get(k int) (*Content, error) {
	if k < 0 || k >= c.k {
		return nil, fmt.Errorf("mec: content %d out of range [0,%d)", k, c.k)
	}
	return &c.Contents[k], nil
}

// UpdatePopularity applies the request-driven popularity update of Eq. (3):
//
//	Π_k(t) = (K·Π_k(t0) + |I_k(t)|) / (K + Σ_k' |I_k'(t)|)
//
// given the per-content request counts of the current epoch. If the initial
// popularity sums to 1 the updated popularity sums to 1 as well (verified by
// a property test).
func (c *Catalog) UpdatePopularity(requests []float64) error {
	if len(requests) != c.k {
		return fmt.Errorf("mec: UpdatePopularity: %d request counts for %d contents", len(requests), c.k)
	}
	var total float64
	for _, r := range requests {
		if r < 0 {
			return fmt.Errorf("mec: UpdatePopularity: negative request count %g", r)
		}
		total += r
	}
	den := float64(c.k) + total
	for k := range c.Contents {
		c.Contents[k].Requests = requests[k]
		c.Contents[k].Pop = (float64(c.k)*c.Contents[k].Pop0 + requests[k]) / den
	}
	return nil
}

// UpdateTimeliness sets L_k(t) to the mean of the requesters' declared
// timeliness requirements (Definition 2), clamped to [0, LMax].
func (c *Catalog) UpdateTimeliness(k int, perRequester []float64, lmax float64) error {
	ct, err := c.Get(k)
	if err != nil {
		return err
	}
	if len(perRequester) == 0 {
		return nil // no requests this epoch: keep the previous level
	}
	ct.Timeliness = numerics.Clamp(numerics.Mean(perRequester), 0, lmax)
	return nil
}

// TotalPopularity returns Σ_k Π_k (≈1 whenever the catalogue was initialised
// from a normalised Zipf vector).
func (c *Catalog) TotalPopularity() float64 {
	var s float64
	for _, ct := range c.Contents {
		s += ct.Pop
	}
	return s
}

// HotSet returns the indices of the n most popular contents (by current Π),
// used by the Most-Popular-Caching baseline.
func (c *Catalog) HotSet(n int) []int {
	if n > c.k {
		n = c.k
	}
	idx := make([]int, c.k)
	for i := range idx {
		idx[i] = i
	}
	// selection sort on popularity: K is small (≈20) so simplicity wins
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < c.k; j++ {
			if c.Contents[idx[j]].Pop > c.Contents[idx[best]].Pop {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}

package mec

import (
	"fmt"
	"math"

	"repro/internal/sde"
)

// ChannelModel bundles the Ornstein–Uhlenbeck fading dynamics (Eq. 1) with
// the SINR transmission-rate map (Eq. 2). Two rate evaluations are provided:
//
//   - Rate: the mean-field form used inside the HJB utility, where the
//     aggregate interference of the other EDPs is replaced by its
//     population average (Interfer effective neighbours at distance d̄ with
//     the stationary second moment of h);
//   - RateExact: the pairwise form used by the Monte-Carlo market simulator,
//     which receives the actual interferer gains.
type ChannelModel struct {
	p Params
}

// NewChannelModel validates the parameters and returns the model.
func NewChannelModel(p Params) (*ChannelModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ChannelModel{p: p}, nil
}

// OU returns the Ornstein–Uhlenbeck process of Eq. (1) for this channel.
func (c *ChannelModel) OU() sde.OU {
	return sde.OU{Rate: c.p.ChRate, Mean: c.p.ChMean, Sigma: c.p.ChSigma}
}

// Gain returns the channel gain |g|² = h²·d^(−τ) for fading coefficient h at
// distance d.
func (c *ChannelModel) Gain(h, d float64) float64 {
	if d <= 0 {
		d = c.p.MeanDist
	}
	return h * h * math.Pow(d, -c.p.PathLoss)
}

// meanSquareFading is E[h²] under the stationary OU law clipped to the
// fading range: mean² + stationary variance.
func (c *ChannelModel) meanSquareFading() float64 {
	ou := c.OU()
	return c.p.ChMean*c.p.ChMean + ou.StationaryVar()
}

// MeanInterference returns the mean-field aggregate interference
// Ī = n_eff · G · E[h²] · d̄^(−τ) that replaces Σ_{i'≠i}|g_{i',j}|²G_{i'} in
// Eq. (2) for the generic player.
func (c *ChannelModel) MeanInterference() float64 {
	return float64(c.p.Interfer) * c.p.TxPower * c.meanSquareFading() * math.Pow(c.p.MeanDist, -c.p.PathLoss)
}

// Rate is the mean-field transmission rate H(h) = B·log2(1 + SINR(h)) with
// the averaged interference, floored at RateFloor (MB/s).
func (c *ChannelModel) Rate(h float64) float64 {
	sig := c.Gain(h, c.p.MeanDist) * c.p.TxPower
	sinr := sig / (c.p.Noise + c.MeanInterference())
	r := c.p.Bandwidth * math.Log2(1+sinr)
	if r < c.p.RateFloor {
		return c.p.RateFloor
	}
	return r
}

// RateExact is the pairwise SINR rate of Eq. (2): the serving link has fading
// h and distance d; interferers are given by their fading coefficients and
// distances. Used by the simulator for cross-validation of the mean-field
// approximation.
func (c *ChannelModel) RateExact(h, d float64, intHs, intDs []float64) (float64, error) {
	if len(intHs) != len(intDs) {
		return 0, fmt.Errorf("mec: RateExact: %d interferer gains vs %d distances", len(intHs), len(intDs))
	}
	sig := c.Gain(h, d) * c.p.TxPower
	den := c.p.Noise
	for i := range intHs {
		den += c.Gain(intHs[i], intDs[i]) * c.p.TxPower
	}
	r := c.p.Bandwidth * math.Log2(1+sig/den)
	if r < c.p.RateFloor {
		return c.p.RateFloor, nil
	}
	return r, nil
}

// ClampFading restricts h to the modelled fading range [HMin, HMax].
func (c *ChannelModel) ClampFading(h float64) float64 {
	if h < c.p.HMin {
		return c.p.HMin
	}
	if h > c.p.HMax {
		return c.p.HMax
	}
	return h
}

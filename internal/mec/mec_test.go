package mec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default params invalid: %v", err)
	}
	if err := Paper().Validate(); err != nil {
		t.Fatalf("Paper params invalid: %v", err)
	}
}

func TestParamsValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"M=0", func(p *Params) { p.M = 0 }},
		{"K=0", func(p *Params) { p.K = 0 }},
		{"Qk=0", func(p *Params) { p.Qk = 0 }},
		{"w1<0", func(p *Params) { p.W1 = -1 }},
		{"ξ=1", func(p *Params) { p.Xi = 1 }},
		{"ξ=0", func(p *Params) { p.Xi = 0 }},
		{"ϱq<0", func(p *Params) { p.SigmaQ = -1 }},
		{"ςh=0", func(p *Params) { p.ChRate = 0 }},
		{"ϱh<0", func(p *Params) { p.ChSigma = -1 }},
		{"empty fading range", func(p *Params) { p.HMax = p.HMin }},
		{"B=0", func(p *Params) { p.Bandwidth = 0 }},
		{"G=0", func(p *Params) { p.TxPower = 0 }},
		{"noise=0", func(p *Params) { p.Noise = 0 }},
		{"τ<0", func(p *Params) { p.PathLoss = -1 }},
		{"d=0", func(p *Params) { p.MeanDist = 0 }},
		{"interferers<0", func(p *Params) { p.Interfer = -1 }},
		{"Hc=0", func(p *Params) { p.HubRate = 0 }},
		{"rate floor=0", func(p *Params) { p.RateFloor = 0 }},
		{"p̂=0", func(p *Params) { p.PHat = 0 }},
		{"η1<0", func(p *Params) { p.Eta1 = -1 }},
		{"p̄<0", func(p *Params) { p.SharePrice = -1 }},
		{"w4<0", func(p *Params) { p.W4 = -1 }},
		{"w5=0", func(p *Params) { p.W5 = 0 }},
		{"α=0", func(p *Params) { p.Alpha = 0 }},
		{"α=1", func(p *Params) { p.Alpha = 1 }},
		{"l=0", func(p *Params) { p.SmoothL = 0 }},
		{"ι=0", func(p *Params) { p.ZipfSkew = 0 }},
		{"Lmax<0", func(p *Params) { p.LMax = -1 }},
		{"T=0", func(p *Params) { p.Horizon = 0 }},
		{"init sd=0", func(p *Params) { p.InitStdFrac = 0 }},
		{"init mean>1", func(p *Params) { p.InitMeanFrac = 1.5 }},
	}
	for _, m := range mutations {
		p := Default()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestAlphaQ(t *testing.T) {
	p := Default()
	if got := p.AlphaQ(); math.Abs(got-20) > 1e-12 {
		t.Errorf("AlphaQ = %g, want 20", got)
	}
}

// --- Catalog ----------------------------------------------------------------

func TestNewCatalogZipf(t *testing.T) {
	p := Default()
	c, err := NewCatalog(p)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	if c.K() != p.K {
		t.Fatalf("K = %d, want %d", c.K(), p.K)
	}
	if math.Abs(c.TotalPopularity()-1) > 1e-12 {
		t.Errorf("initial ΣΠ = %g, want 1", c.TotalPopularity())
	}
	for k := 1; k < c.K(); k++ {
		if c.Contents[k].Pop > c.Contents[k-1].Pop {
			t.Errorf("Zipf popularity must be non-increasing at %d", k)
		}
	}
	bad := p
	bad.K = 0
	if _, err := NewCatalog(bad); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestCatalogGet(t *testing.T) {
	c, err := NewCatalog(Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0); err != nil {
		t.Errorf("Get(0): %v", err)
	}
	if _, err := c.Get(-1); err == nil {
		t.Error("Get(-1) should error")
	}
	if _, err := c.Get(c.K()); err == nil {
		t.Error("Get(K) should error")
	}
}

// Property: the Eq. (3) popularity update preserves ΣΠ = 1 for any
// non-negative request vector.
func TestPopularityUpdateNormalised(t *testing.T) {
	p := Default()
	f := func(raw [20]uint16) bool {
		c, err := NewCatalog(p)
		if err != nil {
			return false
		}
		reqs := make([]float64, p.K)
		for i := range reqs {
			reqs[i] = float64(raw[i] % 1000)
		}
		if err := c.UpdatePopularity(reqs); err != nil {
			return false
		}
		return math.Abs(c.TotalPopularity()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopularityUpdateDirection(t *testing.T) {
	p := Default()
	c, err := NewCatalog(p)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]float64, p.K)
	reqs[p.K-1] = 500 // flood the least popular content with requests
	before := c.Contents[p.K-1].Pop
	if err := c.UpdatePopularity(reqs); err != nil {
		t.Fatal(err)
	}
	if c.Contents[p.K-1].Pop <= before {
		t.Error("requested content should gain popularity")
	}
	if c.Contents[0].Pop >= c.Contents[0].Pop0 {
		t.Error("unrequested content should lose popularity")
	}
	if err := c.UpdatePopularity(reqs[:3]); err == nil {
		t.Error("short request vector should error")
	}
	reqs[0] = -1
	if err := c.UpdatePopularity(reqs); err == nil {
		t.Error("negative request count should error")
	}
}

func TestUpdateTimeliness(t *testing.T) {
	p := Default()
	c, err := NewCatalog(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateTimeliness(0, []float64{1, 2, 3}, p.LMax); err != nil {
		t.Fatal(err)
	}
	if got := c.Contents[0].Timeliness; got != 2 {
		t.Errorf("timeliness = %g, want 2", got)
	}
	// Clamps to LMax.
	if err := c.UpdateTimeliness(0, []float64{99}, p.LMax); err != nil {
		t.Fatal(err)
	}
	if got := c.Contents[0].Timeliness; got != p.LMax {
		t.Errorf("timeliness = %g, want clamp at %g", got, p.LMax)
	}
	// Empty keeps previous.
	if err := c.UpdateTimeliness(0, nil, p.LMax); err != nil {
		t.Fatal(err)
	}
	if got := c.Contents[0].Timeliness; got != p.LMax {
		t.Errorf("timeliness changed on empty update: %g", got)
	}
	if err := c.UpdateTimeliness(99, []float64{1}, p.LMax); err == nil {
		t.Error("bad index should error")
	}
}

func TestHotSet(t *testing.T) {
	p := Default()
	c, err := NewCatalog(p)
	if err != nil {
		t.Fatal(err)
	}
	hot := c.HotSet(3)
	if len(hot) != 3 {
		t.Fatalf("HotSet(3) returned %d", len(hot))
	}
	// With fresh Zipf popularity the hot set is 0,1,2.
	for i, k := range hot {
		if k != i {
			t.Errorf("hot[%d] = %d, want %d", i, k, i)
		}
	}
	if got := len(c.HotSet(999)); got != p.K {
		t.Errorf("oversized HotSet returned %d, want %d", got, p.K)
	}
}

// --- Channel ----------------------------------------------------------------

func TestChannelRateMonotoneInFading(t *testing.T) {
	ch, err := NewChannelModel(Default())
	if err != nil {
		t.Fatal(err)
	}
	prev := ch.Rate(1)
	for h := 2.0; h <= 10; h++ {
		r := ch.Rate(h)
		if r < prev {
			t.Fatalf("rate must be non-decreasing in h: Rate(%g)=%g < %g", h, r, prev)
		}
		prev = r
	}
}

func TestChannelRateFloor(t *testing.T) {
	p := Default()
	ch, err := NewChannelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Rate(1e-9); got != p.RateFloor {
		t.Errorf("vanishing signal should hit the floor: %g", got)
	}
}

func TestChannelRateExact(t *testing.T) {
	p := Default()
	ch, err := NewChannelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := ch.RateExact(5, p.MeanDist, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := ch.RateExact(5, p.MeanDist, []float64{5, 5, 5}, []float64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if crowded >= solo {
		t.Errorf("interference should reduce the rate: %g vs %g", crowded, solo)
	}
	if _, err := ch.RateExact(5, 10, []float64{1}, nil); err == nil {
		t.Error("mismatched interferer slices should error")
	}
}

func TestChannelGainDistance(t *testing.T) {
	ch, err := NewChannelModel(Default())
	if err != nil {
		t.Fatal(err)
	}
	if ch.Gain(5, 10) <= ch.Gain(5, 20) {
		t.Error("gain must decay with distance")
	}
	// Non-positive distance falls back to the mean distance.
	if ch.Gain(5, 0) != ch.Gain(5, Default().MeanDist) {
		t.Error("non-positive distance should use the mean distance")
	}
}

func TestClampFading(t *testing.T) {
	p := Default()
	ch, err := NewChannelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ClampFading(0) != p.HMin || ch.ClampFading(99) != p.HMax || ch.ClampFading(5) != 5 {
		t.Error("ClampFading misbehaves")
	}
}

// --- Cases ------------------------------------------------------------------

// Property: P1+P2+P3 = 1 for any states — the logistic complement identity.
func TestCaseProbabilitiesSumToOne(t *testing.T) {
	p := Default()
	f := func(qr, qbr float64) bool {
		if math.IsNaN(qr) || math.IsNaN(qbr) || math.IsInf(qr, 0) || math.IsInf(qbr, 0) {
			return true
		}
		q := math.Mod(math.Abs(qr), p.Qk)
		qbar := math.Mod(math.Abs(qbr), p.Qk)
		cs := CaseProbabilities(p, q, qbar)
		if cs.P1 < 0 || cs.P2 < 0 || cs.P3 < 0 {
			return false
		}
		return math.Abs(cs.P1+cs.P2+cs.P3-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCaseProbabilitiesLimits(t *testing.T) {
	p := Default()
	// The default smooth-step slope is deliberately wide (the transition
	// spans tens of MB), so the extremes saturate to ≈0.88, not 1.
	// Nearly fully cached (tiny remaining space): Case 1 dominates.
	cs := CaseProbabilities(p, 0, p.Qk)
	if cs.P1 < 0.85 {
		t.Errorf("P1 = %g with q=0, want ≈1", cs.P1)
	}
	// Own miss, peer hit: Case 2 dominates.
	cs = CaseProbabilities(p, p.Qk, 0)
	if cs.P2 < 0.85 {
		t.Errorf("P2 = %g with q=Qk, qbar=0, want ≈1", cs.P2)
	}
	// Both miss: Case 3 dominates.
	cs = CaseProbabilities(p, p.Qk, p.Qk)
	if cs.P3 < 0.85 {
		t.Errorf("P3 = %g with both at Qk, want ≈1", cs.P3)
	}
	// A sharp slope recovers the crisp limits.
	sharp := p
	sharp.SmoothL = 1
	if cs := CaseProbabilities(sharp, 0, sharp.Qk); cs.P1 < 0.99 {
		t.Errorf("sharp P1 = %g, want ≈1", cs.P1)
	}
}

// --- Pricing ----------------------------------------------------------------

// Property: the mean-field price stays within [max(0, p̂−η1·Qk), p̂] for any
// average control in [0,1].
func TestPriceMeanFieldBounds(t *testing.T) {
	p := Default()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		meanX := math.Mod(math.Abs(raw), 1)
		price := PriceMeanField(p, meanX)
		lo := math.Max(0, p.PHat-p.Eta1*p.Qk)
		return price >= lo-1e-12 && price <= p.PHat+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPriceMeanFieldMonotone(t *testing.T) {
	p := Default()
	if PriceMeanField(p, 0.8) >= PriceMeanField(p, 0.1) {
		t.Error("higher average supply must lower the price")
	}
	if PriceMeanField(p, 0) != p.PHat {
		t.Error("zero supply should give the maximum price")
	}
	over := p
	over.Eta1 = 1e9
	if PriceMeanField(over, 1) != 0 {
		t.Error("price must be floored at zero")
	}
}

func TestPriceExact(t *testing.T) {
	p := Default()
	// Single EDP: price is p̂ (Eq. 5, M=1 branch).
	got, err := PriceExact(p, []float64{0.7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != p.PHat {
		t.Errorf("M=1 price = %g, want %g", got, p.PHat)
	}
	// Two EDPs: the competitor's supply lowers EDP 0's price.
	two, err := PriceExact(p, []float64{0.2, 0.9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if two >= p.PHat {
		t.Errorf("competition should lower the price, got %g", two)
	}
	want := p.PHat - p.Eta1*p.Qk*0.9
	if math.Abs(two-want) > 1e-12 {
		t.Errorf("price = %g, want %g", two, want)
	}
	if _, err := PriceExact(p, []float64{0.5}, 3); err == nil {
		t.Error("out-of-range index should error")
	}
}

// PriceExact converges to PriceMeanField as M grows (Eq. 16 → Eq. 17).
func TestPriceExactConvergesToMeanField(t *testing.T) {
	p := Default()
	meanX := 0.4
	for _, m := range []int{10, 100, 1000} {
		rates := make([]float64, m)
		for i := range rates {
			rates[i] = meanX
		}
		exact, err := PriceExact(p, rates, 0)
		if err != nil {
			t.Fatal(err)
		}
		mf := PriceMeanField(p, meanX)
		if math.Abs(exact-mf) > 1e-9 {
			t.Errorf("M=%d: exact %g vs mean-field %g", m, exact, mf)
		}
	}
}

// --- Utility ----------------------------------------------------------------

func defaultContext(t *testing.T) *UtilityContext {
	t.Helper()
	p := Default()
	ch, err := NewChannelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewUtilityContext(p, ch)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Requests = 10
	ctx.Pop = 0.3
	ctx.Timeliness = 2
	ctx.Price = 0.4
	ctx.QBar = 50
	ctx.ShareBenefit = 5
	return ctx
}

func TestUtilityTermsSigns(t *testing.T) {
	ctx := defaultContext(t)
	terms := ctx.Terms(0.5, 5, 60)
	if terms.Trading < 0 {
		t.Errorf("trading income must be non-negative, got %g", terms.Trading)
	}
	if terms.Sharing < 0 {
		t.Errorf("sharing benefit must be non-negative, got %g", terms.Sharing)
	}
	if terms.Placement <= 0 {
		t.Errorf("placement cost must be positive for x>0, got %g", terms.Placement)
	}
	if terms.Staleness <= 0 {
		t.Errorf("staleness cost must be positive with requests, got %g", terms.Staleness)
	}
	if terms.ShareCost < 0 {
		t.Errorf("share cost must be non-negative, got %g", terms.ShareCost)
	}
	total := terms.Trading + terms.Sharing - terms.Placement - terms.Staleness - terms.ShareCost
	if math.Abs(terms.Total()-total) > 1e-12 {
		t.Error("Total() disagrees with the manual sum")
	}
	if math.Abs(ctx.Utility(0.5, 5, 60)-total) > 1e-12 {
		t.Error("Utility disagrees with Terms.Total")
	}
}

func TestUtilityPlacementCostQuadratic(t *testing.T) {
	ctx := defaultContext(t)
	t0 := ctx.Terms(0, 5, 60).Placement
	t1 := ctx.Terms(1, 5, 60).Placement
	if t0 != 0 {
		t.Errorf("placement cost at x=0 should be 0, got %g", t0)
	}
	want := ctx.P.W4 + ctx.P.W5
	if math.Abs(t1-want) > 1e-9 {
		t.Errorf("placement cost at x=1 = %g, want %g", t1, want)
	}
}

func TestUtilitySharingDisabled(t *testing.T) {
	ctx := defaultContext(t)
	ctx.ShareEnabled = false
	terms := ctx.Terms(0.5, 5, 60)
	if terms.Sharing != 0 || terms.ShareCost != 0 {
		t.Error("disabled sharing must zero Φ² and C³")
	}
	// Case-2 mass must have moved into Case 3, so the centre-download path
	// appears in the staleness cost: with q≈Qk and a peer hit available,
	// disabling sharing increases staleness.
	ctx2 := defaultContext(t)
	ctx2.QBar = 10 // peer has cached a lot
	withShare := ctx2.Terms(0.5, 5, 95).Staleness
	ctx2.ShareEnabled = false
	withoutShare := ctx2.Terms(0.5, 5, 95).Staleness
	if withoutShare <= withShare {
		t.Errorf("staleness should rise without sharing: %g vs %g", withoutShare, withShare)
	}
}

func TestUtilityShareCostNeverNegative(t *testing.T) {
	ctx := defaultContext(t)
	ctx.QBar = 90 // peer is worse off than us
	terms := ctx.Terms(0.5, 5, 30)
	if terms.ShareCost < 0 {
		t.Errorf("share cost went negative: %g", terms.ShareCost)
	}
}

func TestUtilityIncreasesWithPrice(t *testing.T) {
	ctx := defaultContext(t)
	lo := ctx.Utility(0.5, 5, 60)
	ctx.Price = 0.5
	hi := ctx.Utility(0.5, 5, 60)
	if hi <= lo {
		t.Errorf("utility should increase with price: %g vs %g", hi, lo)
	}
}

func TestUtilityContextValidation(t *testing.T) {
	p := Default()
	ch, err := NewChannelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUtilityContext(p, nil); err == nil {
		t.Error("nil channel should be rejected")
	}
	bad := p
	bad.K = 0
	if _, err := NewUtilityContext(bad, ch); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestQDriftMatchesCacheDrift(t *testing.T) {
	ctx := defaultContext(t)
	got := ctx.QDrift(0.5)
	want := ctx.CacheDrift().Rate(0.5, ctx.Pop, ctx.Timeliness)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("QDrift = %g, CacheDrift.Rate = %g", got, want)
	}
}

// Property: trading income is non-decreasing in the price for any state.
func TestUtilityMonotoneInPrice(t *testing.T) {
	ctx := defaultContext(t)
	f := func(rawQ, rawP1, rawP2 float64) bool {
		if math.IsNaN(rawQ) || math.IsNaN(rawP1) || math.IsNaN(rawP2) ||
			math.IsInf(rawQ, 0) || math.IsInf(rawP1, 0) || math.IsInf(rawP2, 0) {
			return true
		}
		q := math.Mod(math.Abs(rawQ), ctx.P.Qk)
		p1 := math.Mod(math.Abs(rawP1), ctx.P.PHat)
		p2 := math.Mod(math.Abs(rawP2), ctx.P.PHat)
		lo, hi := math.Min(p1, p2), math.Max(p1, p2)
		ctx.Price = lo
		uLo := ctx.Terms(0.5, 5, q).Trading
		ctx.Price = hi
		uHi := ctx.Terms(0.5, 5, q).Trading
		return uHi >= uLo-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the staleness cost decreases with the channel fading coefficient
// (better channel ⇒ faster transmission ⇒ less delay).
func TestStalenessMonotoneInFading(t *testing.T) {
	ctx := defaultContext(t)
	f := func(rawQ, rawH1, rawH2 float64) bool {
		if math.IsNaN(rawQ) || math.IsNaN(rawH1) || math.IsNaN(rawH2) ||
			math.IsInf(rawQ, 0) || math.IsInf(rawH1, 0) || math.IsInf(rawH2, 0) {
			return true
		}
		q := math.Mod(math.Abs(rawQ), ctx.P.Qk)
		h1 := ctx.P.HMin + math.Mod(math.Abs(rawH1), ctx.P.HMax-ctx.P.HMin)
		h2 := ctx.P.HMin + math.Mod(math.Abs(rawH2), ctx.P.HMax-ctx.P.HMin)
		lo, hi := math.Min(h1, h2), math.Max(h1, h2)
		sLo := ctx.Terms(0.5, lo, q).Staleness
		sHi := ctx.Terms(0.5, hi, q).Staleness
		return sHi <= sLo+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total utility decreases in the placement effort beyond the
// optimum for fixed everything else — specifically, U(1) ≤ U(x) + placement
// difference, and placement cost itself is convex increasing in x.
func TestPlacementCostConvexIncreasing(t *testing.T) {
	ctx := defaultContext(t)
	f := func(raw1, raw2 float64) bool {
		if math.IsNaN(raw1) || math.IsNaN(raw2) || math.IsInf(raw1, 0) || math.IsInf(raw2, 0) {
			return true
		}
		x1 := math.Mod(math.Abs(raw1), 1)
		x2 := math.Mod(math.Abs(raw2), 1)
		lo, hi := math.Min(x1, x2), math.Max(x1, x2)
		cLo := ctx.Terms(lo, 5, 50).Placement
		cHi := ctx.Terms(hi, 5, 50).Placement
		if cHi < cLo-1e-9 {
			return false
		}
		// Midpoint convexity.
		mid := ctx.Terms((lo+hi)/2, 5, 50).Placement
		return mid <= (cLo+cHi)/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Requests scale the demand-side terms linearly.
func TestUtilityLinearInRequests(t *testing.T) {
	ctx := defaultContext(t)
	ctx.Requests = 5
	t1 := ctx.Terms(0.4, 5, 60)
	ctx.Requests = 10
	t2 := ctx.Terms(0.4, 5, 60)
	if math.Abs(t2.Trading-2*t1.Trading) > 1e-9 {
		t.Errorf("trading should double with requests: %g vs %g", t2.Trading, t1.Trading)
	}
	// Staleness has a request-independent download term; only the
	// per-requester part doubles.
	ctx.Requests = 0
	t0 := ctx.Terms(0.4, 5, 60)
	perReq1 := t1.Staleness - t0.Staleness
	perReq2 := t2.Staleness - t0.Staleness
	if math.Abs(perReq2-2*perReq1) > 1e-9 {
		t.Errorf("per-requester staleness should double: %g vs %g", perReq2, perReq1)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/surrogate"
)

// maxPathSamples bounds the number of time samples in a solve response: the
// equilibrium summary is a decision aid, not an archive, and a fixed sample
// budget keeps response size independent of the configured time mesh.
const maxPathSamples = 64

// SolveRequest is the wire form of POST /v1/solve. Params, Solver and
// Workload are sparse JSON documents merged onto the daemon's defaults by the
// engine codec; TimeoutMs bounds this solve (clamped to the server maximum).
type SolveRequest struct {
	Params    json.RawMessage `json:",omitempty"`
	Solver    json.RawMessage `json:",omitempty"`
	Workload  json.RawMessage `json:",omitempty"`
	TimeoutMs int64           `json:",omitempty"`
}

// SolveResponse summarises one mean-field equilibrium: the dynamic price path
// p(t) (Eq. 17), the population-mean caching control and mean remaining cache
// space, the convergence diagnostics of the best-response iteration, and the
// provenance of the answer.
type SolveResponse struct {
	Converged  bool    `json:"converged"`
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`

	Time          []float64 `json:"time"`
	Price         []float64 `json:"price"`
	MeanControl   []float64 `json:"mean_control"`
	MeanRemaining []float64 `json:"mean_remaining"`
	SharerFrac    []float64 `json:"sharer_frac"`

	// Source names the serving-ladder rung that produced this answer:
	// "surrogate", "cache", "store", "peer", "coalesced" or "solve". It
	// replaces the deprecated X-Mfgcp-Cache header (still emitted, derived
	// from this field, for one release).
	Source Source `json:"source"`
	// ErrorBound is the declared interpolation-error bound of a surrogate
	// answer (the verify-differential metric: sup over time of price/p̂, mean
	// control and q̄/Qk deviations against an exact solve). Exact answers
	// omit it.
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// EpochRequest is the wire form of POST /v1/policy/epoch: a batch of
// per-content workload descriptors (one per content, length must equal
// Params.K) for which the MFG-CP policy determines the epoch's caching
// strategies. Policy selects "mfg-cp" (default) or the sharing-free "mfg".
type EpochRequest struct {
	Params    json.RawMessage   `json:",omitempty"`
	Solver    json.RawMessage   `json:",omitempty"`
	Policy    string            `json:",omitempty"`
	Workloads []json.RawMessage `json:",omitempty"`
	Epoch     int               `json:",omitempty"`
	Seed      int64             `json:",omitempty"`
	TimeoutMs int64             `json:",omitempty"`
}

// EpochContent is one content's prepared strategy in an epoch response.
type EpochContent struct {
	Content    int     `json:"content"`
	Requested  bool    `json:"requested"`
	Converged  bool    `json:"converged"`
	Iterations int     `json:"iterations"`
	FinalPrice float64 `json:"final_price"`
	Admission  float64 `json:"admission"`
}

// EpochResponse is the wire form of a prepared epoch.
type EpochResponse struct {
	Policy   string         `json:"policy"`
	Epoch    int            `json:"epoch"`
	Contents []EpochContent `json:"contents"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/peer/get", s.handlePeerGet)
	mux.HandleFunc("POST /v1/policy/epoch", s.handleEpoch)
	if s.cfg.Registry != nil {
		// The PR-1 observability surface, mounted on the daemon's own mux so
		// one port serves both the API and its telemetry.
		s.cfg.Registry.PublishExpvar("mfgcp")
		mux.Handle("GET /metrics", s.cfg.Registry)
		mux.Handle("GET /debug/vars", expvar.Handler())
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !s.ready.Load() || s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ready"}`)
}

// handleSolve answers one equilibrium query. The response body carries its
// own provenance (Source, plus ErrorBound for surrogate answers); the
// equilibrium series of identical requests are identical regardless of which
// ladder rung answered, so clients may treat Source as advisory. The
// deprecated X-Mfgcp-Cache header is still emitted, derived from Source.
//
// The surrogate table, when loaded, is consulted first: an in-trust-region
// request is answered by interpolation in microseconds and never touches the
// cache/store/solver ladder.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	cfg, err := s.resolveSolver(req.Params, req.Solver)
	if err != nil {
		s.writeError(w, err)
		return
	}
	wl := engine.Workload{}
	if len(req.Workload) > 0 {
		if wl, err = engine.DecodeWorkload(req.Workload); err != nil {
			s.writeError(w, badRequest(err))
			return
		}
	}

	s.rec.Add("serve.solve.requests", 1)
	if s.surrogate != nil {
		lookupStart := time.Now()
		sum, ok := s.surrogate.Lookup(cfg, wl)
		lookup := time.Since(lookupStart)
		s.rec.Observe("serve.surrogate.lookup.seconds", lookup.Seconds())
		obs.ReqTraceFrom(r.Context()).Observe("surrogate_lookup", lookup)
		if ok {
			s.rec.Add("serve.surrogate.hit", 1)
			writeSolveHeaders(w, SourceSurrogate, false, lookup)
			writeJSON(w, http.StatusOK, surrogateResponse(sum))
			return
		}
		s.rec.Add("serve.surrogate.miss", 1)
	}

	timeout := s.clampTimeout(req.TimeoutMs)
	ctx, cancel := context.WithTimeout(r.Context(), timeout+time.Second)
	defer cancel()
	isRetry := r.Header.Get("X-Mfgcp-Retry") != ""
	// The raw request documents ride along so a fleet replica can forward
	// them verbatim to the key's ring owner on a local miss.
	docs := &cluster.PeerRequest{Params: req.Params, Solver: req.Solver, Workload: req.Workload}
	eq, out, err := s.solve(ctx, cfg, wl, timeout, isRetry, docs)
	if err != nil && !(errors.Is(err, engine.ErrNotConverged) && eq != nil) {
		s.writeError(w, err)
		return
	}

	src := out.source()
	writeSolveHeaders(w, src, out.Coalesced, out.SolveTime)
	resp := summarize(eq)
	resp.Source = src
	writeJSON(w, http.StatusOK, resp)
}

// writeSolveHeaders emits the per-request provenance headers, including the
// deprecated X-Mfgcp-Cache value derived from the body-level Source.
func writeSolveHeaders(w http.ResponseWriter, src Source, coalesced bool, solveTime time.Duration) {
	w.Header().Set("X-Mfgcp-Cache", src.LegacyCacheHeader())
	w.Header().Set("X-Mfgcp-Coalesced", strconv.FormatBool(coalesced))
	w.Header().Set("X-Mfgcp-Solve-Ms", strconv.FormatFloat(solveTime.Seconds()*1e3, 'f', 3, 64))
}

// handlePeerGet answers an intra-fleet cache-fill: the requester resolved
// this replica as the key's ring owner and forwarded the client's original
// documents. The request runs through this replica's own full ladder (LRU →
// store → singleflight → workers) with the cluster tier disabled, so every
// cold solve for a key executes exactly once fleet-wide — concurrent fills
// from many replicas coalesce on the owner's singleflight — and a fill never
// re-forwards (no routing loops). The response body is the gob-marshalled
// full equilibrium, not the downsampled JSON summary, so the requester's
// promoted LRU entry serves byte-identical bodies afterwards. The surrogate
// tier is deliberately skipped: the requester already consulted its own copy
// of the table, and an interpolated summary has no equilibrium to promote.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, badRequest(errors.New("serve: peer endpoint disabled (no -peers configured)")))
		return
	}
	var req cluster.PeerRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	cfg, err := s.resolveSolver(req.Params, req.Solver)
	if err != nil {
		s.writeError(w, err)
		return
	}
	wl := engine.Workload{}
	if len(req.Workload) > 0 {
		if wl, err = engine.DecodeWorkload(req.Workload); err != nil {
			s.writeError(w, badRequest(err))
			return
		}
	}
	key := engine.CacheKey(cfg, wl)
	if req.Key != "" && req.Key != key {
		// Configuration drift: the requester and this replica resolve the same
		// documents to different canonical keys (mismatched defaults or
		// quantisation). Refuse explicitly — answering would poison the
		// requester's cache under its own key — and let it solve locally.
		s.rec.Add("cluster.peer.key_mismatch", 1)
		var body errorBody
		body.Error.Kind = "key_mismatch"
		body.Error.Message = fmt.Sprintf("serve: peer key %s does not match owner resolution %s (configuration drift between replicas)", req.Key, key)
		writeJSON(w, http.StatusConflict, body)
		return
	}
	s.rec.Add("cluster.peer.served", 1)
	timeout := s.clampTimeout(req.TimeoutMs)
	ctx, cancel := context.WithTimeout(r.Context(), timeout+time.Second)
	defer cancel()
	eq, out, err := s.solve(ctx, cfg, wl, timeout, false, nil)
	if err != nil && !(errors.Is(err, engine.ErrNotConverged) && eq != nil) {
		s.writeError(w, err)
		return
	}
	blob, err := engine.MarshalEquilibrium(eq)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	w.Header().Set(cluster.SourceHeader, string(out.source()))
	w.Header().Set(cluster.ConvergedHeader, strconv.FormatBool(eq.Converged))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// surrogateResponse shapes one interpolated table answer as a solve response.
func surrogateResponse(sum *surrogate.Summary) SolveResponse {
	return SolveResponse{
		Converged:     sum.Converged,
		Iterations:    sum.Iterations,
		Residual:      sum.Residual,
		Time:          sum.Time,
		Price:         sum.Price,
		MeanControl:   sum.MeanControl,
		MeanRemaining: sum.MeanRemaining,
		SharerFrac:    sum.SharerFrac,
		Source:        SourceSurrogate,
		ErrorBound:    sum.ErrorBound,
	}
}

// handleEpoch prepares one epoch of per-content strategies through
// policy.MFGCP.Prepare, sharing the daemon's equilibrium cache and worker
// budget. Concurrent epoch requests beyond the semaphore are shed with 429:
// each one fans out into up to K solves, so admission control has to happen
// before Prepare, not inside it.
func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	var req EpochRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	cfg, err := s.resolveSolver(req.Params, req.Solver)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p := cfg.Params
	if len(req.Workloads) != p.K {
		s.writeError(w, badRequest(fmt.Errorf("serve: %d workloads for %d contents (Workloads must cover the catalogue)", len(req.Workloads), p.K)))
		return
	}
	workloads := make([]engine.Workload, p.K)
	for k, doc := range req.Workloads {
		wl, err := engine.DecodeWorkload(doc)
		if err != nil {
			s.writeError(w, badRequest(fmt.Errorf("serve: workload %d: %w", k, err)))
			return
		}
		workloads[k] = wl
	}
	name := req.Policy
	if name == "" {
		name = "mfg-cp"
	}
	polIface, err := policy.ByName(name)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	pol, ok := polIface.(*policy.MFGCP)
	if !ok {
		s.writeError(w, badRequest(fmt.Errorf("serve: policy %q has no equilibrium strategy; the epoch endpoint serves mfg-cp and mfg", name)))
		return
	}

	s.rec.Add("serve.epoch.requests", 1)
	select {
	case s.epochSem <- struct{}{}:
		defer func() { <-s.epochSem }()
	default:
		s.rec.Add("serve.epoch.shed", 1)
		s.writeError(w, ErrOverloaded)
		return
	}

	catalog, err := mec.NewCatalog(p)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	for k := range catalog.Contents {
		catalog.Contents[k].Pop = workloads[k].Pop
		catalog.Contents[k].Timeliness = workloads[k].Timeliness
		catalog.Contents[k].Requests = workloads[k].Requests
	}
	pol.Cache = s.cache
	pol.Workers = s.cfg.Workers

	ctx, cancel := context.WithTimeout(s.lifeCtx, s.clampTimeout(req.TimeoutMs))
	defer cancel()
	if tr := obs.ReqTraceFrom(r.Context()); tr != nil {
		// Epoch preparation runs under the daemon's life context; carry the
		// request's trace across so per-content solves attribute to it.
		ctx = obs.WithReqTrace(ctx, tr)
	}
	ectx := policy.EpochContext{
		Params:    p,
		Catalog:   catalog,
		Workloads: workloads,
		Solver:    cfg,
		Epoch:     req.Epoch,
		Seed:      req.Seed,
		M:         p.M,
		Ctx:       ctx,
	}
	s.rec.Add("serve.epoch.executed", 1)
	start := time.Now()
	if err := pol.Prepare(&ectx); err != nil {
		s.writeError(w, err)
		return
	}
	s.rec.Observe("serve.epoch.seconds", time.Since(start).Seconds())

	resp := EpochResponse{Policy: pol.Name(), Epoch: req.Epoch, Contents: make([]EpochContent, p.K)}
	for k := 0; k < p.K; k++ {
		c := EpochContent{Content: k, Admission: 1}
		if eq, err := pol.Equilibrium(k); err == nil && eq != nil {
			c.Requested = true
			c.Converged = eq.Converged
			c.Iterations = eq.Iterations
			if n := len(eq.Snapshots); n > 0 {
				c.FinalPrice = eq.Snapshots[n-1].Price
			}
		}
		if a, err := pol.Admission(k); err == nil {
			c.Admission = a
		}
		resp.Contents[k] = c
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveSolver merges the request's sparse Params/Solver documents onto the
// daemon defaults and wires the daemon's recorder into the resulting config.
func (s *Server) resolveSolver(params, solver json.RawMessage) (engine.Config, error) {
	p := s.cfg.Params
	if len(params) > 0 {
		var err error
		if p, err = engine.DecodeParams(params, p); err != nil {
			return engine.Config{}, badRequest(err)
		}
	}
	cfg := s.cfg.Solver
	cfg.Params = p
	if len(solver) > 0 {
		var err error
		if cfg, err = engine.DecodeConfig(solver, cfg); err != nil {
			return engine.Config{}, badRequest(err)
		}
	} else if err := cfg.Validate(); err != nil {
		return engine.Config{}, badRequest(err)
	}
	cfg.Obs = s.rec
	cfg.WarmStart = nil
	return cfg, nil
}

// summarize downsamples an equilibrium to the wire summary.
func summarize(eq *engine.Equilibrium) SolveResponse {
	resp := SolveResponse{
		Converged:  eq.Converged,
		Iterations: eq.Iterations,
	}
	if n := len(eq.Residuals); n > 0 {
		resp.Residual = eq.Residuals[n-1]
	}
	n := len(eq.Snapshots)
	if n == 0 {
		return resp
	}
	stride := 1
	if n > maxPathSamples {
		stride = (n + maxPathSamples - 1) / maxPathSamples
	}
	for i := 0; i < n; i += stride {
		snap := eq.Snapshots[i]
		resp.Time = append(resp.Time, snap.T)
		resp.Price = append(resp.Price, snap.Price)
		resp.MeanControl = append(resp.MeanControl, snap.MeanControl)
		resp.MeanRemaining = append(resp.MeanRemaining, snap.QBar)
		resp.SharerFrac = append(resp.SharerFrac, snap.SharerFrac)
	}
	if last := eq.Snapshots[n-1]; resp.Time[len(resp.Time)-1] != last.T {
		resp.Time = append(resp.Time, last.T)
		resp.Price = append(resp.Price, last.Price)
		resp.MeanControl = append(resp.MeanControl, last.MeanControl)
		resp.MeanRemaining = append(resp.MeanRemaining, last.QBar)
		resp.SharerFrac = append(resp.SharerFrac, last.SharerFrac)
	}
	return resp
}

// requestError marks an error as the caller's fault (HTTP 400).
type requestError struct{ err error }

func (e requestError) Error() string { return e.err.Error() }
func (e requestError) Unwrap() error { return e.err }

func badRequest(err error) error { return requestError{err} }

// decodeBody strictly decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest(fmt.Errorf("serve: decode request: %w", err))
	}
	return nil
}

// writeError maps an error onto the uniform envelope:
//
//	400 invalid_request — malformed or invalid request documents
//	429 overloaded      — queue full or retry budget dry, retry after backoff
//	422 diverged        — the best-response iteration produced garbage
//	503 breaker_open    — the solver circuit breaker is failing fast
//	504 interrupted     — deadline or shutdown cancelled the solve
//	500 internal        — anything else
//
// 429 and 503 carry a jittered Retry-After so a synchronised client fleet
// does not reconverge on the daemon (or on the breaker's half-open window)
// in one thundering herd. ErrNotConverged is not an error at this layer: the
// partial equilibrium is returned as a 200 with converged=false.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	kind, status := "internal", http.StatusInternalServerError
	var reqErr requestError
	var open *breakerOpenError
	switch {
	case errors.As(err, &reqErr):
		kind, status = "invalid_request", http.StatusBadRequest
	case errors.As(err, &open):
		kind, status = "breaker_open", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(open.retryAfter))
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrRetryBudget):
		kind, status = "overloaded", http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
	case errors.Is(err, engine.ErrDiverged):
		kind, status = "diverged", http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		kind, status = "interrupted", http.StatusGatewayTimeout
	}
	var body errorBody
	body.Error.Kind = kind
	body.Error.Message = err.Error()
	writeJSON(w, status, body)
}

// retryAfterSeconds renders a backoff hint with up to +3s of jitter, rounded
// up to whole seconds (Retry-After's unit; never below 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs+int64(rand.IntN(4)), 10)
}

// writeJSON writes one JSON response, buffered so an encode failure cannot
// truncate a 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":{"kind":"internal","message":"encode response"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestErrorCodeMapping pins the full error contract of POST /v1/solve in one
// table: every failure class maps onto its documented HTTP status and
// structured error kind. This is the mapping clients key their retry logic
// on, so a drift here is an API break even when each path "works".
func TestErrorCodeMapping(t *testing.T) {
	tests := []struct {
		name      string
		configure func(*Config)
		// workers starts the full daemon (Serve); otherwise the handler runs
		// without a worker pool, which the queue-full case needs to make the
		// queue occupancy deterministic.
		workers    bool
		prefill    bool // park one request in the queue first
		trip       bool // trip the circuit breaker with a diverging solve first
		body       string
		wantStatus int
		wantKind   string
		// retryAfterMax > 0 asserts a Retry-After header parsing to an integer
		// in [1, retryAfterMax] — the jittered backoff contract of 429/503.
		retryAfterMax int64
	}{
		{
			name:       "malformed JSON",
			body:       `{"Workload": `,
			wantStatus: http.StatusBadRequest,
			wantKind:   "invalid_request",
		},
		{
			name:       "unknown field",
			body:       `{"Grids": 5}`,
			wantStatus: http.StatusBadRequest,
			wantKind:   "invalid_request",
		},
		{
			name:       "non-finite parameter",
			body:       `{"Params": {"Qk": 1e999}}`,
			wantStatus: http.StatusBadRequest,
			wantKind:   "invalid_request",
		},
		{
			name:       "diverged solve",
			workers:    true,
			body:       `{"Solver": {"BlowupResidual": 1e-12}, "Workload": {"Requests": 12, "Pop": 0.3, "Timeliness": 2}}`,
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "diverged",
		},
		{
			name:    "deadline expired mid-solve",
			workers: true,
			configure: func(c *Config) {
				// One best-response iteration on this grid costs far more
				// than the 1 ms cap, and the tolerance is unreachable.
				c.Solver.NH, c.Solver.NQ, c.Solver.Steps = 21, 81, 200
				c.Solver.Tol = 1e-12
				c.MaxTimeout = time.Millisecond
			},
			body:       `{"TimeoutMs": 60000, "Workload": {"Requests": 40, "Pop": 0.8, "Timeliness": 4}}`,
			wantStatus: http.StatusGatewayTimeout,
			wantKind:   "interrupted",
		},
		{
			name:       "queue full",
			prefill:    true,
			configure:  func(c *Config) { c.QueueDepth = 1 },
			body:       `{"Workload": {"Requests": 5, "Pop": 0.2}}`,
			wantStatus: http.StatusTooManyRequests,
			wantKind:   "overloaded",
			// 1s base backoff + up to 3s jitter.
			retryAfterMax: 4,
		},
		{
			name:    "breaker open",
			workers: true,
			trip:    true,
			configure: func(c *Config) {
				c.Breaker = BreakerConfig{Failures: 1, OpenFor: 5 * time.Second}
			},
			body:       `{"Workload": {"Requests": 7, "Pop": 0.4, "Timeliness": 2}}`,
			wantStatus: http.StatusServiceUnavailable,
			wantKind:   "breaker_open",
			// ≤5s left in the open window, rounded up, + up to 3s jitter.
			retryAfterMax: 8,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg, reg := testConfig(t)
			if tt.configure != nil {
				tt.configure(&cfg)
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var base string
			if tt.workers {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() { done <- s.Serve(ctx, ln) }()
				t.Cleanup(func() { cancel(); <-done })
				base = "http://" + ln.Addr().String()
			} else {
				ts := httptest.NewServer(s.Handler())
				t.Cleanup(ts.Close)
				base = ts.URL
			}
			if tt.prefill {
				go func() {
					resp, err := http.Post(base+"/v1/solve", "application/json",
						strings.NewReader(`{"TimeoutMs": 500, "Workload": {"Requests": 5, "Pop": 0.1}}`))
					if err == nil {
						resp.Body.Close()
					}
				}()
				deadline := time.Now().Add(5 * time.Second)
				for reg.Snapshot().Counters["serve.solve.requests"] < 1 {
					if time.Now().After(deadline) {
						t.Fatal("prefill request never enqueued")
					}
					time.Sleep(5 * time.Millisecond)
				}
			}

			if tt.trip {
				// One diverging solve is the whole failure streak at
				// Failures=1; its 422 response means the verdict already
				// reached the breaker, so the next fresh solve fails fast.
				resp, data := postSolve(t, http.DefaultClient, base,
					`{"Solver": {"BlowupResidual": 1e-12}, "Workload": {"Requests": 12, "Pop": 0.3, "Timeliness": 2}}`)
				if resp.StatusCode != http.StatusUnprocessableEntity {
					t.Fatalf("breaker trip solve: status %d body %s, want 422", resp.StatusCode, data)
				}
				if got := reg.Snapshot().Counters["breaker.open"]; got != 1 {
					t.Fatalf("breaker.open = %g after the tripping solve, want 1", got)
				}
			}

			resp, data := postSolve(t, http.DefaultClient, base, tt.body)
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status %d body %s, want %d", resp.StatusCode, data, tt.wantStatus)
			}
			if tt.retryAfterMax > 0 {
				ra := resp.Header.Get("Retry-After")
				v, err := strconv.ParseInt(ra, 10, 64)
				if err != nil {
					t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
				}
				if v < 1 || v > tt.retryAfterMax {
					t.Errorf("Retry-After = %d, want in [1, %d]", v, tt.retryAfterMax)
				}
			}
			var eb errorBody
			if err := json.Unmarshal(data, &eb); err != nil {
				t.Fatalf("error envelope not JSON: %v (%s)", err, data)
			}
			if eb.Error.Kind != tt.wantKind {
				t.Errorf("error kind %q, want %q (%s)", eb.Error.Kind, tt.wantKind, data)
			}
			if eb.Error.Message == "" {
				t.Error("error envelope carries no message")
			}
		})
	}
}

package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// requestIDHeader is the correlation header honoured on ingress and always
// emitted on egress: a client-supplied ID is propagated, otherwise the daemon
// generates one. The same ID rides the request context (obs.ReqTrace) through
// the solver stack and lands in the access log, solver retry events and error
// responses.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds propagated client IDs so a hostile header cannot
// bloat logs.
const maxRequestIDLen = 128

var reqIDFallback atomic.Uint64

// newRequestID returns a 16-hex-digit random correlation ID (a process-local
// counter stands in if the system randomness source fails).
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied correlation ID: printable
// ASCII, bounded length; anything else is discarded (a fresh ID is
// generated).
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// statusRecorder captures the status code and body size for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps the daemon's mux with the request-scoped observability
// layer: X-Request-ID honoured/emitted, an obs.ReqTrace attached to the
// context (the engine and resilience layers record their stage timings into
// it), the request-latency histogram, and one structured access-log record
// per API request — promoted to a warning with its full stage breakdown when
// the request exceeds the slow-request threshold.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		tr := &obs.ReqTrace{ID: id}
		rw := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rw, r.WithContext(obs.WithReqTrace(r.Context(), tr)))
		if rw.status == 0 {
			rw.status = http.StatusOK
		}
		d := time.Since(start)
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			return // health probes and telemetry scrapes stay out of the API stats
		}
		s.rec.Observe("serve.request.seconds", d.Seconds())
		s.logAccess(r, rw, id, d, tr)
	})
}

// logAccess emits one structured record per API request. Requests slower than
// SlowRequestThreshold log at warning level, so tail-latency offenders stand
// out with their per-stage attribution attached.
func (s *Server) logAccess(r *http.Request, rw *statusRecorder, id string, d time.Duration, tr *obs.ReqTrace) {
	log := s.cfg.AccessLog
	if log == nil {
		return
	}
	slow := d >= s.cfg.SlowRequestThreshold
	level, msg := slog.LevelInfo, "request"
	if slow {
		level, msg = slog.LevelWarn, "slow request"
		s.rec.Add("serve.request.slow", 1)
	}
	if !log.Enabled(r.Context(), level) {
		return
	}
	attrs := make([]slog.Attr, 0, 8)
	attrs = append(attrs,
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", rw.status),
		slog.Int64("bytes", rw.bytes),
		slog.Float64("duration_ms", float64(d)/1e6),
	)
	if slow {
		attrs = append(attrs, slog.Float64("slow_threshold_ms", float64(s.cfg.SlowRequestThreshold)/1e6))
	}
	attrs = append(attrs, tr.LogAttrs()...)
	log.LogAttrs(r.Context(), level, msg, attrs...)
}

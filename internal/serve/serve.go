// Package serve is the equilibrium-serving daemon behind `mfgcp serve`: a
// long-running HTTP/JSON service that answers repeated mean-field equilibrium
// queries for drifting workloads — the workload the ROADMAP's "millions of
// users" north star implies, where SBS controllers re-solve the HJB–FPK fixed
// point continuously as popularity drifts instead of spawning one process per
// solve.
//
// The hot path amortises everything the engine layer built for exactly this
// purpose:
//
//   - a shared bounded engine.Cache: a warm repeat of a solved (params,
//     workload, grid, scheme) key answers without touching the solver;
//   - per-worker engine.Sessions behind a bounded worker pool, so steady
//     traffic runs on pre-allocated PDE workspaces;
//   - singleflight coalescing: concurrent identical requests share one solve
//     (the mean-field equilibrium is unique, so one answer serves them all);
//   - load shedding: a full queue answers 429 + Retry-After instead of
//     building an unbounded backlog;
//   - per-request deadlines mapped onto engine.SolveContext, and graceful
//     drain: SIGTERM stops accepting work, finishes the in-flight requests
//     and exits cleanly.
//
// The surrogate tier (Solver.Surrogate.Path / SurrogateTable) sits above the
// ladder as tier 0: an in-trust-region request is answered in microseconds by
// multilinear interpolation in a precomputed equilibrium table (source
// "surrogate", with the cell's measured error bound attached); everything
// else falls through to the exact ladder below.
//
// The durable tier (CacheDir) extends the ladder below the LRU: an LRU miss
// consults the append-only segment store (internal/store), promotes a hit
// back into the LRU, and every converged solve is persisted write-behind, so
// a restarted daemon answers its working set from disk instead of
// cold-starting the PDE path. Overload protection layers on top: a circuit
// breaker around engine solves fails fast with 503 once divergence/timeout
// failures streak, and a retry budget sheds marked retries before they storm
// the worker pool (see breaker.go).
//
// The cluster tier (Cluster) shards the keyspace across a fleet: a
// consistent-hash ring over the static -peers list assigns every canonical
// cache key an owner replica, and a replica that misses its LRU and store for
// a key it does not own fills from the owner via POST /v1/peer/get before
// solving cold. The owner runs the peer request through its own full ladder
// — including singleflight and the worker pool — so every cold solve for a
// key executes exactly once fleet-wide, no matter which replicas clients
// spray. Converged peer answers are promoted into the local LRU with source
// "peer"; an unreachable or slow owner degrades to a local cold solve (never
// an error), and /readyz-gated health probing reroutes its keys to the next
// ring member until it recovers.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/surrogate"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when the solver queue is
// full: the caller should retry after a short backoff.
var ErrOverloaded = errors.New("serve: solver queue full")

// Config parametrises the daemon.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8080"; use ":0" in
	// tests to pick a free port).
	Addr string
	// Workers bounds the solver worker pool (default GOMAXPROCS). Each
	// worker owns reusable engine sessions, so memory scales with
	// Workers × distinct grid configurations.
	Workers int
	// QueueDepth bounds the pending-solve queue; a full queue sheds load
	// with 429 (default 64).
	QueueDepth int
	// CacheSize bounds the shared equilibrium cache (default 256 entries).
	CacheSize int
	// DefaultTimeout bounds one solve when the request carries no
	// timeout_ms (default 30s); MaxTimeout caps what a request may ask for
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds the graceful drain: in-flight requests get this
	// long to finish after shutdown begins before their solves are
	// cancelled (default 30s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Params are the default model constants requests merge onto (zero
	// value → mec.Default()).
	Params mec.Params
	// Solver is the default solver configuration requests merge onto (zero
	// value → engine.DefaultConfig(Params)).
	Solver engine.Config
	// Obs receives the serve.* metrics and, through the solver configs, the
	// engine.* and core.solver.* telemetry. Nil means no-op.
	Obs obs.Recorder
	// Registry, when set, additionally mounts /metrics, /debug/vars and
	// /debug/pprof on the daemon's mux (the PR-1 observability surface).
	Registry *obs.Registry
	// AccessLog receives one structured record per /v1/* request (request
	// ID, method, path, status, duration and the per-stage solver timings).
	// Nil disables access logging; metrics and request IDs stay on.
	AccessLog *slog.Logger
	// SlowRequestThreshold promotes access-log records of slower requests to
	// warning level and counts them in serve.request.slow (default 1s).
	SlowRequestThreshold time.Duration
	// CacheDir, when set, enables the persistent disk tier below the LRU: an
	// append-only segment store of solved equilibria that survives restarts
	// and SIGKILL (crash recovery truncates torn tails and skips corrupt
	// records). Empty disables the tier.
	CacheDir string
	// CacheDiskBytes bounds the disk tier (default 256 MiB); the oldest
	// segments are compacted away past it.
	CacheDiskBytes int64
	// CacheSegmentBytes overrides the segment roll threshold (default 8 MiB;
	// tests shrink it to force rolls).
	CacheSegmentBytes int64
	// Breaker configures the circuit breaker around engine solves (zero
	// value: trip after 5 consecutive divergence/timeout failures, fail fast
	// for 5s, one half-open probe). Failures < 0 disables it.
	Breaker BreakerConfig
	// RetryBudgetRatio is the retry-budget refill per fresh solve admitted
	// (default 0.1: retries may consume ~10% of solve capacity); negative
	// disables the budget. RetryBudgetBurst is the initial/maximum token
	// balance (default 20).
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// SurrogateTable, when set, is a preloaded tier-0 interpolation table
	// (tests inject one directly). When nil, Solver.Surrogate.Path — if
	// non-empty — names a table file loaded at startup. Both unset disables
	// the surrogate tier.
	SurrogateTable *surrogate.Table
	// Cluster configures the sharded-fleet tier: the static member list
	// (including this replica's own advertised URL), the ring geometry and
	// the peer-fill/probe timeouts. The zero value runs a single replica with
	// no peer tier.
	Cluster cluster.Config
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SlowRequestThreshold <= 0 {
		c.SlowRequestThreshold = time.Second
	}
	if c.Params.K == 0 && c.Params.M == 0 {
		c.Params = mec.Default()
	}
	if c.Solver.NH == 0 && c.Solver.NQ == 0 {
		c.Solver = engine.DefaultConfig(c.Params)
	}
	return c
}

// Server is the daemon state: the shared equilibrium cache, the bounded
// worker pool and the singleflight table of in-flight solves.
type Server struct {
	cfg       Config
	rec       obs.Recorder
	cache     *engine.Cache
	store     *store.Store     // nil when CacheDir is unset
	surrogate *surrogate.Table // nil when the tier-0 table is disabled
	cluster   *cluster.Cluster // nil when the fleet tier is disabled
	breaker   *breaker
	retries   *retryBudget

	jobs     chan *flight
	mu       sync.Mutex
	inflight map[string]*flight
	epochSem chan struct{}

	// lifeCtx outlives the run context so SIGTERM drains in-flight solves
	// instead of cancelling them; lifeCancel fires only when the drain
	// budget is exhausted (or the server is fully stopped).
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	ready    atomic.Bool
	draining atomic.Bool
	workerWG sync.WaitGroup
}

// New validates the configuration and builds a server (not yet listening;
// call Run or Serve).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("serve: default params: %w", err)
	}
	if cfg.Solver.Params != cfg.Params {
		cfg.Solver.Params = cfg.Params
	}
	if err := cfg.Solver.Validate(); err != nil {
		return nil, fmt.Errorf("serve: default solver config: %w", err)
	}
	cache, err := engine.NewCache(cfg.CacheSize)
	if err != nil {
		return nil, err
	}
	var disk *store.Store
	if cfg.CacheDir != "" {
		disk, err = store.Open(store.Config{
			Dir:          cfg.CacheDir,
			MaxDiskBytes: cfg.CacheDiskBytes,
			SegmentBytes: cfg.CacheSegmentBytes,
			Obs:          cfg.Obs,
			Log:          cfg.AccessLog,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: open cache dir: %w", err)
		}
	}
	tab := cfg.SurrogateTable
	if tab == nil && cfg.Solver.Surrogate.Path != "" {
		if tab, err = surrogate.Load(cfg.Solver.Surrogate.Path); err != nil {
			if disk != nil {
				_ = disk.Close()
			}
			return nil, fmt.Errorf("serve: load surrogate table: %w", err)
		}
	}
	var fleet *cluster.Cluster
	if cfg.Cluster.Enabled() {
		ccfg := cfg.Cluster
		if ccfg.Obs == nil {
			ccfg.Obs = cfg.Obs
		}
		if fleet, err = cluster.New(ccfg); err != nil {
			if disk != nil {
				_ = disk.Close()
			}
			return nil, err
		}
	}
	epochSlots := cfg.Workers / 2
	if epochSlots < 1 {
		epochSlots = 1
	}
	lifeCtx, lifeCancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		rec:        obs.OrNop(cfg.Obs),
		cache:      cache,
		store:      disk,
		surrogate:  tab,
		cluster:    fleet,
		breaker:    newBreaker(cfg.Breaker, cfg.Obs),
		retries:    newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		jobs:       make(chan *flight, cfg.QueueDepth),
		inflight:   make(map[string]*flight),
		epochSem:   make(chan struct{}, epochSlots),
		lifeCtx:    lifeCtx,
		lifeCancel: lifeCancel,
	}, nil
}

// Cache exposes the shared equilibrium cache (tests and the epoch handler
// use it).
func (s *Server) Cache() *engine.Cache { return s.cache }

// Store exposes the persistent disk tier (nil when CacheDir is unset); tests
// use it to flush and inspect the write-behind queue.
func (s *Server) Store() *store.Store { return s.store }

// Close releases resources owned by a server that never ran (New succeeded
// but Run/Serve was not reached); a served server cleans up in stop.
func (s *Server) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Run listens on cfg.Addr and serves until ctx is cancelled, then drains.
// The returned error is nil on a clean drain.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		_ = s.Close()
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	return s.Serve(ctx, ln)
}

// Serve runs the daemon on an existing listener until ctx is cancelled, then
// drains: the HTTP server stops accepting work, in-flight requests (and their
// queued solves) get DrainTimeout to finish, and only past that budget are
// the remaining solves cancelled. Returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if s.cluster != nil {
		s.cluster.Start()
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.ready.Store(true)
	s.rec.Gauge("serve.ready", 1)

	select {
	case err := <-errCh:
		s.stop()
		return err
	case <-ctx.Done():
	}

	// Drain: flip readiness first so load balancers stop routing here, then
	// let the in-flight handlers (and the solves they wait on) finish.
	s.draining.Store(true)
	s.ready.Store(false)
	s.rec.Gauge("serve.ready", 0)
	s.rec.Add("serve.drains", 1)
	kill := time.AfterFunc(s.cfg.DrainTimeout, s.lifeCancel)
	defer kill.Stop()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	s.stop()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// stop closes the solver pool, flushes the disk tier and releases the life
// context. Serve calls it exactly once.
func (s *Server) stop() {
	if s.cluster != nil {
		s.cluster.Stop()
	}
	close(s.jobs)
	s.workerWG.Wait()
	if s.store != nil {
		// Workers are done, so no more Puts race the drain; Close empties the
		// write-behind queue and fsyncs every segment.
		if err := s.store.Close(); err != nil {
			s.rec.Add("serve.store.close.errors", 1)
		}
	}
	s.lifeCancel()
}

// flight is one in-flight equilibrium solve, shared by every request whose
// canonical key matches while it runs (singleflight).
type flight struct {
	key     string
	cfg     engine.Config
	w       engine.Workload
	timeout time.Duration
	// trace is the initiating request's stage accumulator (nil when that
	// request is untraced): the worker attaches it to the solve context so
	// the engine's HJB/FPK sweep timings attribute to the request that
	// triggered the computation. Coalesced joiners observe only their own
	// singleflight wait.
	trace *obs.ReqTrace

	enqueued  time.Time
	queueWait time.Duration // written by the worker before solving (done not yet closed)
	probe     bool          // this flight holds the breaker's half-open probe slot

	done      chan struct{}
	eq        *engine.Equilibrium
	err       error
	solveTime time.Duration
}

// solveOutcome annotates a solve result with how it was obtained; the
// handlers surface it as the response's Source field (and the deprecated
// X-Mfgcp-Cache header derived from it).
type solveOutcome struct {
	SurrogateHit bool
	CacheHit     bool
	StoreHit     bool
	PeerHit      bool
	Coalesced    bool
	SolveTime    time.Duration
}

// solve answers one equilibrium query through the cache → store → peer →
// singleflight → worker-pool ladder. cfg must already be validated; ctx bounds
// only this caller's wait (the solve itself runs under the flight's own
// deadline so one impatient client cannot poison the shared result). isRetry
// marks a client-declared retry, which must pass the retry budget before it
// may start a fresh solve (cache, store, peer and coalesced answers stay
// free). docs carries the original client request documents for peer
// forwarding; nil disables the cluster tier for this call — peer-originated
// requests pass nil so a fill is answered locally and never re-forwarded.
func (s *Server) solve(ctx context.Context, cfg engine.Config, w engine.Workload, timeout time.Duration, isRetry bool, docs *cluster.PeerRequest) (*engine.Equilibrium, solveOutcome, error) {
	tr := obs.ReqTraceFrom(ctx)
	key := engine.CacheKey(cfg, w)
	lookupStart := time.Now()
	eq, hit := s.cache.Get(s.rec, key)
	lookup := time.Since(lookupStart)
	s.rec.Observe("serve.cache.lookup.seconds", lookup.Seconds())
	tr.Observe("cache_lookup", lookup)
	if hit {
		return eq, solveOutcome{CacheHit: true}, nil
	}
	if eq, ok := s.storeGet(key, tr); ok {
		return eq, solveOutcome{StoreHit: true}, nil
	}
	if s.cluster != nil && docs != nil {
		if owner, self := s.cluster.Owner(key); self {
			s.rec.Add("cluster.owned", 1)
		} else {
			s.rec.Add("cluster.forwarded", 1)
			if eq, ok := s.peerFill(ctx, owner, key, *docs, timeout, tr); ok {
				return eq, solveOutcome{PeerHit: true}, nil
			}
			// The owner could not answer (down, slow, drifted, or returned
			// garbage): degrade to a local cold solve below — availability
			// beats perfect fleet-wide dedup.
		}
	}

	s.mu.Lock()
	f, joined := s.inflight[key]
	if !joined {
		// This request is about to trigger a fresh engine solve: the overload
		// defences gate here, not earlier, so reads and coalesced joins keep
		// serving while the solver is protected.
		if !s.retries.admit(isRetry) {
			s.mu.Unlock()
			s.rec.Add("serve.retry.denied", 1)
			return nil, solveOutcome{}, ErrRetryBudget
		}
		probe, retryAfter, ok := s.breaker.Allow()
		if !ok {
			s.mu.Unlock()
			s.rec.Add("serve.breaker.rejected", 1)
			return nil, solveOutcome{}, &breakerOpenError{retryAfter: retryAfter}
		}
		f = &flight{key: key, cfg: cfg, w: w, timeout: timeout, trace: tr,
			probe: probe, enqueued: time.Now(), done: make(chan struct{})}
		select {
		case s.jobs <- f:
			s.inflight[key] = f
		default:
			s.mu.Unlock()
			s.breaker.abortProbe(probe)
			s.rec.Add("serve.solve.shed", 1)
			return nil, solveOutcome{}, ErrOverloaded
		}
	}
	s.mu.Unlock()
	if joined {
		s.rec.Add("serve.solve.coalesced", 1)
	}

	waitStart := time.Now()
	select {
	case <-f.done:
		wait := time.Since(waitStart)
		if joined {
			// This request rode someone else's computation: its only solver
			// cost is the wait on the shared flight.
			s.rec.Observe("serve.singleflight.wait.seconds", wait.Seconds())
			tr.Observe("singleflight_wait", wait)
		} else {
			tr.Observe("queue_wait", f.queueWait)
			tr.Observe("solve", f.solveTime)
		}
		return f.eq, solveOutcome{Coalesced: joined, SolveTime: f.solveTime}, f.err
	case <-ctx.Done():
		s.rec.Add("serve.solve.abandoned", 1)
		return nil, solveOutcome{Coalesced: joined}, fmt.Errorf("serve: request abandoned: %w", ctx.Err())
	}
}

// storeGet consults the persistent tier after an LRU miss and promotes a hit
// back into the LRU so the next repeat is a memory hit. A blob that fails to
// decode is treated as a miss (the store already refuses CRC-invalid bytes;
// a gob mismatch here means a format drift across versions, not corruption).
func (s *Server) storeGet(key string, tr *obs.ReqTrace) (*engine.Equilibrium, bool) {
	if s.store == nil {
		return nil, false
	}
	start := time.Now()
	blob, ok := s.store.Get(key)
	var eq *engine.Equilibrium
	if ok {
		var err error
		if eq, err = engine.UnmarshalEquilibrium(blob); err != nil {
			s.rec.Add("serve.store.decode.errors", 1)
			eq, ok = nil, false
		}
	}
	dur := time.Since(start)
	s.rec.Observe("serve.store.lookup.seconds", dur.Seconds())
	tr.Observe("store_lookup", dur)
	if !ok {
		return nil, false
	}
	s.cache.Put(s.rec, key, eq)
	return eq, true
}

// peerFill asks the key's ring owner for the equilibrium via /v1/peer/get.
// Returns ok=false on any failure — timeout, refusal, decode error, or a nil
// blob — in which case the caller degrades to its local solve ladder; a peer
// problem must never surface as a client-visible error. Only converged
// answers are promoted into the local LRU: a non-converged partial is served
// to the client that asked (matching local ladder semantics) but caching it
// would replay an unconverged fixed point to every future repeat.
func (s *Server) peerFill(ctx context.Context, owner, key string, preq cluster.PeerRequest, timeout time.Duration, tr *obs.ReqTrace) (*engine.Equilibrium, bool) {
	preq.Key = key
	preq.TimeoutMs = timeout.Milliseconds()
	start := time.Now()
	eq, _, err := s.cluster.Fetch(ctx, owner, preq)
	dur := time.Since(start)
	s.rec.Observe("cluster.peer.seconds", dur.Seconds())
	tr.Observe("peer_fill", dur)
	if err != nil || eq == nil {
		s.rec.Add("cluster.peer_miss", 1)
		return nil, false
	}
	s.rec.Add("cluster.peer_hit", 1)
	if eq.Converged {
		s.cache.Put(s.rec, key, eq)
	}
	return eq, true
}

// maxSessionsPerWorker bounds the per-worker session memo: serving traffic
// overwhelmingly repeats a handful of grid configurations, and a session's
// buffers are the dominant per-config cost.
const maxSessionsPerWorker = 4

func (s *Server) worker() {
	defer s.workerWG.Done()
	sessions := make(map[string]*engine.Session, maxSessionsPerWorker)
	for f := range s.jobs {
		s.runFlight(f, sessions)
	}
}

// runFlight executes one coalesced solve on this worker's warm session and
// publishes the result to every waiter.
func (s *Server) runFlight(f *flight, sessions map[string]*engine.Session) {
	defer func() {
		s.mu.Lock()
		delete(s.inflight, f.key)
		s.mu.Unlock()
		close(f.done)
	}()

	// One session per distinct solver configuration: the workload varies per
	// solve, the buffers do not.
	skey := engine.CacheKey(f.cfg, engine.Workload{})
	sess := sessions[skey]
	if sess == nil {
		if len(sessions) >= maxSessionsPerWorker {
			clear(sessions)
			s.rec.Add("serve.session.reset", 1)
		}
		var err error
		sess, err = engine.NewSession(f.cfg)
		if err != nil {
			f.err = err
			// The solve never ran; a config that cannot build a session says
			// nothing about solver health, so release the probe slot unjudged.
			s.breaker.abortProbe(f.probe)
			return
		}
		sessions[skey] = sess
		s.rec.Add("serve.session.built", 1)
	}

	f.queueWait = time.Since(f.enqueued)
	s.rec.Observe("serve.queue.wait.seconds", f.queueWait.Seconds())

	ctx := s.lifeCtx
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	if f.trace != nil {
		// The solve runs under the daemon's life context, not the request's;
		// re-attach the initiator's trace so the engine's stage timings
		// reach its access-log record.
		ctx = obs.WithReqTrace(ctx, f.trace)
	}
	s.rec.Add("serve.solve.executed", 1)
	start := time.Now()
	eq, err := sess.SolveContext(ctx, f.w, nil)
	f.solveTime = time.Since(start)
	s.rec.Observe("serve.solve.seconds", f.solveTime.Seconds())
	f.eq, f.err = eq, err
	s.breaker.onResult(classifySolve(err), f.probe)
	if err == nil && eq != nil && eq.Converged {
		s.cache.Put(s.rec, f.key, eq)
		s.persist(f.key, eq)
	}
}

// classifySolve maps a solve error onto breaker evidence: divergence and
// deadlines are solver failures, a drain cancellation is neutral, and
// ErrNotConverged is a served 200 (success as far as solver health goes).
func classifySolve(err error) solveVerdict {
	switch {
	case err == nil, errors.Is(err, engine.ErrNotConverged):
		return verdictSuccess
	case errors.Is(err, context.Canceled):
		return verdictNeutral
	default:
		return verdictFailure
	}
}

// persist hands one converged equilibrium to the disk tier, write-behind.
// Only converged results ever reach the store: a non-converged partial answer
// is a 200 for the client that asked, but persisting it would replay an
// unconverged fixed point to every future restart.
func (s *Server) persist(key string, eq *engine.Equilibrium) {
	if s.store == nil {
		return
	}
	blob, err := engine.MarshalEquilibrium(eq)
	if err != nil {
		s.rec.Add("serve.store.encode.errors", 1)
		return
	}
	s.store.Put(key, blob)
}

// clampTimeout resolves a request's timeout_ms against the server bounds.
func (s *Server) clampTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

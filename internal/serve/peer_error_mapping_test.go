package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/pde"
)

// peerOwnedBody returns a solve body whose canonical key the ring assigns to
// fakeOwner rather than self, so the request is guaranteed to forward. The
// search is deterministic: the key is a pure function of the resolved solver
// config and the workload, and ownership a pure function of the member set.
func peerOwnedBody(t *testing.T, solver engine.Config, self, fakeOwner string) string {
	t.Helper()
	ring := cluster.NewRing(0)
	ring.Add(self)
	ring.Add(fakeOwner)
	for req := 1; req <= 200; req++ {
		w := engine.Workload{Requests: float64(req), Pop: 0.3, Timeliness: 2}
		if ring.Owner(engine.CacheKey(solver, w)) == fakeOwner {
			return fmt.Sprintf(`{"Workload": {"Requests": %d, "Pop": 0.3, "Timeliness": 2}}`, req)
		}
	}
	t.Fatal("no candidate workload hashes to the fake owner")
	return ""
}

// peerBlob gob-marshals a minimal (but decodable) equilibrium for a fake
// owner to return.
func peerBlob(t *testing.T, converged bool) []byte {
	t.Helper()
	eq := &engine.Equilibrium{
		Converged:  converged,
		Iterations: 5,
		Residuals:  []float64{1e-3},
		HJB:        &pde.HJBSolution{},
		FPK:        &pde.FPKSolution{},
		Snapshots: []engine.Snapshot{
			{T: 0, Price: 1.5, MeanControl: 0.2, QBar: 3, SharerFrac: 0.1},
			{T: 1, Price: 1.4, MeanControl: 0.25, QBar: 2.8, SharerFrac: 0.15},
		},
	}
	blob, err := engine.MarshalEquilibrium(eq)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestPeerFailureMapping pins the fleet's availability contract in one table:
// no peer-fill failure mode may ever surface as a client-visible error. A
// slow, dead, drifted or garbage-spewing owner degrades the request to the
// local solve ladder (source "solve"); a healthy owner's answer is served
// with source "peer" and the legacy X-Mfgcp-Cache header "peer", and only a
// CONVERGED peer answer is promoted into the local LRU.
func TestPeerFailureMapping(t *testing.T) {
	tests := []struct {
		name string
		// owner builds the fake owner's handler; nil means the owner is
		// unreachable (closed listener).
		owner func(t *testing.T) http.HandlerFunc
		// hang > 0 makes the owner sleep past the peer timeout.
		hang time.Duration

		wantSource    Source
		wantLegacy    string
		wantConverged bool
		wantCached    int // requester LRU entries after the request
		wantPeerHit   float64
		wantPeerMiss  float64
		wantExecuted  float64 // local solves
	}{
		{
			name: "converged peer answer served and promoted",
			owner: func(t *testing.T) http.HandlerFunc {
				blob := peerBlob(t, true)
				return func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set(cluster.SourceHeader, "cache")
					w.Header().Set(cluster.ConvergedHeader, "true")
					_, _ = w.Write(blob)
				}
			},
			wantSource:    SourcePeer,
			wantLegacy:    "peer",
			wantConverged: true,
			wantCached:    1,
			wantPeerHit:   1,
		},
		{
			name: "non-converged peer answer served but NOT promoted",
			owner: func(t *testing.T) http.HandlerFunc {
				blob := peerBlob(t, false)
				return func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set(cluster.ConvergedHeader, "false")
					_, _ = w.Write(blob)
				}
			},
			wantSource:  SourcePeer,
			wantLegacy:  "peer",
			wantCached:  0,
			wantPeerHit: 1,
		},
		{
			name:          "peer timeout degrades to local cold solve",
			hang:          2 * time.Second,
			owner:         func(t *testing.T) http.HandlerFunc { return func(http.ResponseWriter, *http.Request) {} },
			wantSource:    SourceSolve,
			wantLegacy:    "miss",
			wantConverged: true,
			wantCached:    1,
			wantPeerMiss:  1,
			wantExecuted:  1,
		},
		{
			name:          "peer unreachable degrades to local cold solve",
			owner:         nil,
			wantSource:    SourceSolve,
			wantLegacy:    "miss",
			wantConverged: true,
			wantCached:    1,
			wantPeerMiss:  1,
			wantExecuted:  1,
		},
		{
			name: "peer key mismatch (config drift) degrades to local cold solve",
			owner: func(t *testing.T) http.HandlerFunc {
				return func(w http.ResponseWriter, r *http.Request) {
					w.WriteHeader(http.StatusConflict)
					_, _ = w.Write([]byte(`{"error":{"kind":"key_mismatch","message":"drift"}}`))
				}
			},
			wantSource:    SourceSolve,
			wantLegacy:    "miss",
			wantConverged: true,
			wantCached:    1,
			wantPeerMiss:  1,
			wantExecuted:  1,
		},
		{
			name: "peer garbage blob degrades to local cold solve",
			owner: func(t *testing.T) http.HandlerFunc {
				return func(w http.ResponseWriter, r *http.Request) {
					_, _ = w.Write([]byte("these bytes are not an equilibrium"))
				}
			},
			wantSource:    SourceSolve,
			wantLegacy:    "miss",
			wantConverged: true,
			wantCached:    1,
			wantPeerMiss:  1,
			wantExecuted:  1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var fakeURL string
			if tt.owner != nil {
				handler := tt.owner(t)
				fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if r.URL.Path == "/readyz" {
						w.WriteHeader(http.StatusOK)
						return
					}
					if tt.hang > 0 {
						time.Sleep(tt.hang)
					}
					handler(w, r)
				}))
				t.Cleanup(fake.Close)
				fakeURL = fake.URL
			} else {
				dead := httptest.NewServer(http.NotFoundHandler())
				fakeURL = dead.URL
				dead.Close()
			}

			cfg, reg := testConfig(t)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			self := "http://" + ln.Addr().String()
			cfg.Cluster = cluster.Config{
				Self:        self,
				Peers:       []string{self, fakeURL},
				PeerTimeout: 200 * time.Millisecond,
				// Keep the prober quiet for the test's lifetime: health changes
				// come only from fill round trips, deterministically.
				ProbeInterval: time.Hour,
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- s.Serve(ctx, ln) }()
			t.Cleanup(func() { cancel(); <-done })

			body := peerOwnedBody(t, s.cfg.Solver, self, fakeURL)
			resp, data := postSolve(t, http.DefaultClient, self, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d body %s, want 200 (peer failures must never surface)", resp.StatusCode, data)
			}
			var sr SolveResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if sr.Source != tt.wantSource {
				t.Errorf("source = %q, want %q", sr.Source, tt.wantSource)
			}
			if got := resp.Header.Get("X-Mfgcp-Cache"); got != tt.wantLegacy {
				t.Errorf("X-Mfgcp-Cache = %q, want %q", got, tt.wantLegacy)
			}
			if sr.Converged != tt.wantConverged {
				t.Errorf("converged = %v, want %v", sr.Converged, tt.wantConverged)
			}
			if got := s.Cache().Len(); got != tt.wantCached {
				t.Errorf("requester LRU holds %d entries, want %d", got, tt.wantCached)
			}
			snap := reg.Snapshot()
			checks := []struct {
				name string
				want float64
			}{
				{"cluster.peer_hit", tt.wantPeerHit},
				{"cluster.peer_miss", tt.wantPeerMiss},
				{"serve.solve.executed", tt.wantExecuted},
				{"cluster.forwarded", 1},
			}
			for _, c := range checks {
				if got := snap.Counters[c.name]; got != c.want {
					t.Errorf("%s = %g, want %g", c.name, got, c.want)
				}
			}
		})
	}
}

// TestPeerEndpointDisabled pins that a single-replica daemon refuses
// /v1/peer/get outright instead of pretending to be a fleet member.
func TestPeerEndpointDisabled(t *testing.T) {
	cfg, _ := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	resp, err := http.Post(ts.URL+"/v1/peer/get", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400 on a fleet-less daemon", resp.StatusCode)
	}
}

package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// The circuit breaker guards the engine worker pool against failure storms:
// when solves start diverging or timing out en masse (a poisoned workload, a
// grid too hard for the deadline, a saturated host), pushing more of them
// into the pool only burns worker time that healthy requests need. The
// breaker watches the terminal outcome of every executed solve and, past a
// run of failures, fails fast with 503 + Retry-After instead of queueing
// doomed work. Cache and store hits keep serving while the breaker is open —
// it protects the solver, not the read path.
//
// State machine:
//
//	closed ──(Failures consecutive solve failures)──▶ open
//	open ──(OpenFor elapsed)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open (timer restarts)
//
// Half-open admits at most Probes concurrent solves; everything else keeps
// failing fast until a probe lands. Only divergence and deadline failures
// count — ErrNotConverged is a served 200 and a client-abandoned wait says
// nothing about solver health.

// BreakerConfig parametrises the solve circuit breaker.
type BreakerConfig struct {
	// Failures is the consecutive solve-failure count that opens the breaker
	// (default 5). Negative disables the breaker entirely.
	Failures int
	// OpenFor is how long an open breaker rejects solves before letting a
	// half-open probe through (default 5s).
	OpenFor time.Duration
	// Probes bounds the concurrent half-open probe solves (default 1).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures == 0 {
		c.Failures = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

// ErrBreakerOpen is mapped to HTTP 503 + Retry-After: the solver pool is
// failing fast after a failure storm; the caller should back off until the
// half-open probe window.
var ErrBreakerOpen = errors.New("serve: circuit breaker open, solver failing fast")

// breakerOpenError carries the suggested retry delay of one rejection.
type breakerOpenError struct{ retryAfter time.Duration }

func (e *breakerOpenError) Error() string {
	return fmt.Sprintf("%v (retry in %s)", ErrBreakerOpen, e.retryAfter.Round(time.Millisecond))
}
func (e *breakerOpenError) Unwrap() error { return ErrBreakerOpen }

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the runtime state machine. The now hook makes transitions
// deterministic under test.
type breaker struct {
	cfg BreakerConfig
	rec obs.Recorder
	now func() time.Time

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // start of the current open window
	probes   int       // in-flight half-open probes
}

func newBreaker(cfg BreakerConfig, rec obs.Recorder) *breaker {
	return &breaker{cfg: cfg.withDefaults(), rec: obs.OrNop(rec), now: time.Now}
}

// disabled reports whether the breaker is configured off.
func (b *breaker) disabled() bool { return b.cfg.Failures < 0 }

// Allow decides whether a new engine solve may start. probe reports that the
// caller holds a half-open probe slot and must release it through onResult
// (or abort). When the solve is rejected, retryAfter is the time left until
// the next half-open window.
func (b *breaker) Allow() (probe bool, retryAfter time.Duration, ok bool) {
	if b.disabled() {
		return false, 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, 0, true
	case breakerOpen:
		if wait := b.openedAt.Add(b.cfg.OpenFor).Sub(b.now()); wait > 0 {
			return false, wait, false
		}
		b.setStateLocked(breakerHalfOpen)
		fallthrough
	default: // half-open
		if b.probes < b.cfg.Probes {
			b.probes++
			b.rec.Add("breaker.probes", 1)
			return true, 0, true
		}
		// Probes are out; everyone else waits a full window.
		return false, b.cfg.OpenFor, false
	}
}

// abortProbe releases a probe slot whose solve never started (e.g. the queue
// shed it).
func (b *breaker) abortProbe(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	b.probes--
	b.mu.Unlock()
}

// onResult feeds one executed solve's terminal outcome back: failure is a
// divergence or deadline, neutral is a shutdown cancellation (says nothing),
// anything else is a success.
func (b *breaker) onResult(outcome solveVerdict, probe bool) {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probes--
	}
	switch outcome {
	case verdictNeutral:
		// A drain-cancelled solve is no evidence either way.
	case verdictFailure:
		switch b.state {
		case breakerHalfOpen:
			b.openedAt = b.now()
			b.setStateLocked(breakerOpen)
		case breakerClosed:
			b.fails++
			if b.fails >= b.cfg.Failures {
				b.openedAt = b.now()
				b.setStateLocked(breakerOpen)
			}
		}
	default: // success
		b.fails = 0
		if b.state == breakerHalfOpen {
			b.setStateLocked(breakerClosed)
		}
	}
}

// setStateLocked transitions the state machine and publishes the telemetry
// (gauge 0=closed, 1=open, 2=half-open; one counter per transition kind).
func (b *breaker) setStateLocked(next breakerState) {
	if b.state == next {
		return
	}
	b.state = next
	switch next {
	case breakerOpen:
		b.fails = 0
		b.rec.Add("breaker.open", 1)
	case breakerHalfOpen:
		b.rec.Add("breaker.halfopen", 1)
	case breakerClosed:
		b.rec.Add("breaker.close", 1)
	}
	b.rec.Gauge("breaker.state", float64(map[breakerState]int{
		breakerClosed: 0, breakerOpen: 1, breakerHalfOpen: 2,
	}[next]))
}

// solveVerdict classifies one executed solve for the breaker.
type solveVerdict int

const (
	verdictSuccess solveVerdict = iota
	verdictFailure
	verdictNeutral
)

// retryBudget is the daemon's defence against retry storms: clients marking
// their requests with X-Mfgcp-Retry draw from a token budget that refills at
// Ratio tokens per fresh (non-retry) solve admitted, so retries can consume
// at most ~Ratio of the pool's capacity. When the budget is dry, retries are
// shed immediately with 429 instead of competing with first-attempt traffic
// for workers — the storm starves itself, not the pool.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

// newRetryBudget builds a budget of burst initial tokens refilling at ratio
// per fresh request. ratio < 0 disables the budget (nil receiver admits
// everything).
func newRetryBudget(ratio, burst float64) *retryBudget {
	if ratio < 0 {
		return nil
	}
	if ratio == 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 20
	}
	return &retryBudget{tokens: burst, burst: burst, ratio: ratio}
}

// admit charges the budget: fresh requests refill it and always pass, retry
// requests consume one token or are rejected.
func (b *retryBudget) admit(isRetry bool) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !isRetry {
		b.tokens = min(b.burst, b.tokens+b.ratio)
		return true
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// ErrRetryBudget is mapped to HTTP 429: the retry budget is exhausted, so a
// marked retry is shed before it reaches the solver pool.
var ErrRetryBudget = errors.New("serve: retry budget exhausted")

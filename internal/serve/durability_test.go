package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// startDaemon runs the full daemon (workers + drain path) and returns its
// base URL plus an explicit drain function so tests can restart against the
// same cache directory.
func startDaemon(t *testing.T, cfg Config) (base string, drain func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	var once bool
	drain = func() {
		if once {
			return
		}
		once = true
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	t.Cleanup(drain)
	return "http://" + ln.Addr().String(), drain
}

// TestStoreTierWarmRestart is the durability contract end to end: a daemon
// solves, drains, and a fresh daemon over the same cache directory answers
// the same request from the disk tier — identical equilibrium, no engine
// solve, source "store" — then promotes it so the next repeat is a memory hit.
func TestStoreTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"Workload": {"Requests": 11, "Pop": 0.35, "Timeliness": 3}}`

	cfg, _ := testConfig(t)
	cfg.CacheDir = dir
	base, drain := startDaemon(t, cfg)
	resp, coldBody := postSolve(t, http.DefaultClient, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d body %s", resp.StatusCode, coldBody)
	}
	if got := resp.Header.Get("X-Mfgcp-Cache"); got != "miss" {
		t.Fatalf("cold solve X-Mfgcp-Cache = %q, want miss", got)
	}
	drain() // flushes the write-behind queue and fsyncs segments

	cfg2, reg2 := testConfig(t)
	cfg2.CacheDir = dir
	base2, _ := startDaemon(t, cfg2)
	resp2, warmBody := postSolve(t, http.DefaultClient, base2, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d body %s", resp2.StatusCode, warmBody)
	}
	if got := resp2.Header.Get("X-Mfgcp-Cache"); got != "store" {
		t.Errorf("restarted daemon X-Mfgcp-Cache = %q, want store", got)
	}
	var warm SolveResponse
	if err := json.Unmarshal(warmBody, &warm); err != nil {
		t.Fatalf("decode warm body: %v", err)
	}
	if warm.Source != SourceStore {
		t.Errorf("restarted daemon source = %q, want %q", warm.Source, SourceStore)
	}
	if !bytes.Equal(bodyWithoutSource(t, coldBody), bodyWithoutSource(t, warmBody)) {
		t.Errorf("restart changed the equilibrium:\n%s\nvs\n%s", coldBody, warmBody)
	}
	snap := reg2.Snapshot()
	if got := snap.Counters["serve.solve.executed"]; got != 0 {
		t.Errorf("restarted daemon re-solved: serve.solve.executed = %g, want 0", got)
	}
	if got := snap.Counters["store.hit"]; got != 1 {
		t.Errorf("store.hit = %g, want 1", got)
	}

	// The store hit was promoted into the LRU: the repeat is a memory hit.
	resp3, hotBody := postSolve(t, http.DefaultClient, base2, body)
	if got := resp3.Header.Get("X-Mfgcp-Cache"); got != "hit" {
		t.Errorf("promoted repeat X-Mfgcp-Cache = %q, want hit", got)
	}
	if !bytes.Equal(bodyWithoutSource(t, coldBody), bodyWithoutSource(t, hotBody)) {
		t.Errorf("promoted repeat equilibrium differs")
	}
}

// TestNeverPersistNonConverged pins the persistence invariant: a solve capped
// before convergence is served as 200 converged=false but must never reach
// the disk tier, or a restart would replay an unconverged fixed point forever.
func TestNeverPersistNonConverged(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := testConfig(t)
	cfg.CacheDir = dir
	cfg.Solver.MaxIters = 1
	cfg.Solver.Tol = 1e-15
	base, drain := startDaemon(t, cfg)

	resp, data := postSolve(t, http.DefaultClient, base,
		`{"Workload": {"Requests": 9, "Pop": 0.3, "Timeliness": 2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s, want 200", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Converged {
		t.Fatal("one best-response iteration converged; the test premise broke")
	}
	drain()

	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if n := st.Len(); n != 0 {
		t.Errorf("non-converged equilibrium persisted: store holds %d records, want 0", n)
	}
}

// TestStoreTierSurvivesCorruption is the mutation-style read-path invariant:
// flip bits in the persisted record and restart — the daemon must never serve
// the CRC-failed bytes (it re-solves instead), must count the corruption, and
// must still produce the same correct answer.
func TestStoreTierSurvivesCorruption(t *testing.T) {
	dir := t.TempDir()
	body := `{"Workload": {"Requests": 13, "Pop": 0.45, "Timeliness": 3}}`

	cfg, _ := testConfig(t)
	cfg.CacheDir = dir
	base, drain := startDaemon(t, cfg)
	resp, goodBody := postSolve(t, http.DefaultClient, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: status %d", resp.StatusCode)
	}
	drain()

	// Flip a byte in the middle of every segment's payload region.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments persisted (err=%v)", err)
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cfg2, reg2 := testConfig(t)
	cfg2.CacheDir = dir
	base2, _ := startDaemon(t, cfg2)
	resp2, data2 := postSolve(t, http.DefaultClient, base2, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption solve: status %d body %s", resp2.StatusCode, data2)
	}
	// The corrupt record must not have been served: this was a fresh solve.
	if got := resp2.Header.Get("X-Mfgcp-Cache"); got != "miss" {
		t.Errorf("X-Mfgcp-Cache = %q after corruption, want miss", got)
	}
	snap := reg2.Snapshot()
	if got := snap.Counters["serve.solve.executed"]; got != 1 {
		t.Errorf("serve.solve.executed = %g, want 1 (re-solve after corruption)", got)
	}
	if got := snap.Counters["store.corrupt.total"]; got < 1 {
		t.Errorf("store.corrupt.total = %g, want ≥ 1", got)
	}
	// And the recomputed answer matches the pre-corruption one exactly.
	if !bytes.Equal(goodBody, data2) {
		t.Errorf("recovered answer differs from the original:\n%s\nvs\n%s", goodBody, data2)
	}
}

// TestRetryBudgetEndToEnd drives the X-Mfgcp-Retry contract over HTTP: marked
// retries draw from the budget, a dry budget sheds them with 429 before they
// reach the solver, and retries answered by the cache stay free.
func TestRetryBudgetEndToEnd(t *testing.T) {
	cfg, reg := testConfig(t)
	cfg.RetryBudgetRatio = 0.1
	cfg.RetryBudgetBurst = 1
	base, _ := startDaemon(t, cfg)

	postRetry := func(body string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/solve", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Mfgcp-Retry", "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// The single burst token funds the first retry's fresh solve.
	first := `{"Workload": {"Requests": 6, "Pop": 0.2, "Timeliness": 2}}`
	resp, data := postRetry(first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first retry: status %d body %s", resp.StatusCode, data)
	}
	// A second retry needing a fresh solve finds the budget dry.
	resp, data = postRetry(`{"Workload": {"Requests": 8, "Pop": 0.6, "Timeliness": 2}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("dry-budget retry: status %d body %s, want 429", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Kind != "overloaded" {
		t.Errorf("dry-budget retry body = %s, want kind overloaded", data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("dry-budget 429 without Retry-After")
	}
	if got := reg.Snapshot().Counters["serve.retry.denied"]; got != 1 {
		t.Errorf("serve.retry.denied = %g, want 1", got)
	}
	// A retry of the already-solved request is a cache hit: no budget needed.
	resp, data = postRetry(first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached retry: status %d body %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Mfgcp-Cache"); got != "hit" {
		t.Errorf("cached retry X-Mfgcp-Cache = %q, want hit", got)
	}

	// Fresh (unmarked) traffic is never budget-limited.
	resp, data = postSolve(t, http.DefaultClient, base,
		`{"Workload": {"Requests": 10, "Pop": 0.7, "Timeliness": 2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh request after dry budget: status %d body %s", resp.StatusCode, data)
	}
}

package serve

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock drives the breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(t *testing.T, cfg BreakerConfig) (*breaker, *fakeClock, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(cfg, reg)
	b.now = clk.now
	return b, clk, reg
}

// TestBreakerStateMachine walks the full closed → open → half-open → closed
// cycle and pins the transition telemetry.
func TestBreakerStateMachine(t *testing.T) {
	b, clk, reg := testBreaker(t, BreakerConfig{Failures: 2, OpenFor: time.Minute})

	// Closed admits freely; failures below the threshold stay closed.
	if _, _, ok := b.Allow(); !ok {
		t.Fatal("closed breaker rejected a solve")
	}
	b.onResult(verdictFailure, false)
	if _, _, ok := b.Allow(); !ok {
		t.Fatal("one failure below threshold opened the breaker")
	}

	// The second consecutive failure trips it.
	b.onResult(verdictFailure, false)
	probe, retryAfter, ok := b.Allow()
	if ok || probe {
		t.Fatalf("open breaker admitted a solve (probe=%v ok=%v)", probe, ok)
	}
	if retryAfter <= 0 || retryAfter > time.Minute {
		t.Errorf("open rejection retryAfter = %v, want (0, 1m]", retryAfter)
	}

	// Past OpenFor the first caller gets the half-open probe; the second is
	// still rejected.
	clk.advance(61 * time.Second)
	probe, _, ok = b.Allow()
	if !ok || !probe {
		t.Fatalf("half-open window did not grant a probe (probe=%v ok=%v)", probe, ok)
	}
	if _, _, ok := b.Allow(); ok {
		t.Fatal("second caller was admitted alongside the probe")
	}

	// A failing probe re-opens and restarts the timer.
	b.onResult(verdictFailure, true)
	if _, _, ok := b.Allow(); ok {
		t.Fatal("breaker closed after a failed probe")
	}
	clk.advance(61 * time.Second)
	probe, _, ok = b.Allow()
	if !ok || !probe {
		t.Fatal("no probe after the re-opened window elapsed")
	}

	// A succeeding probe closes the breaker again.
	b.onResult(verdictSuccess, true)
	if probe, _, ok := b.Allow(); !ok || probe {
		t.Fatalf("breaker not closed after probe success (probe=%v ok=%v)", probe, ok)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["breaker.open"]; got != 2 {
		t.Errorf("breaker.open = %g, want 2", got)
	}
	if got := snap.Counters["breaker.halfopen"]; got != 2 {
		t.Errorf("breaker.halfopen = %g, want 2", got)
	}
	if got := snap.Counters["breaker.close"]; got != 1 {
		t.Errorf("breaker.close = %g, want 1", got)
	}
	if got := snap.Gauges["breaker.state"]; got != 0 {
		t.Errorf("breaker.state gauge = %g, want 0 (closed)", got)
	}
}

// TestBreakerEvidenceRules pins what counts as breaker evidence: successes
// reset the streak, neutral outcomes (drain cancellations) count neither way.
func TestBreakerEvidenceRules(t *testing.T) {
	b, _, _ := testBreaker(t, BreakerConfig{Failures: 2, OpenFor: time.Minute})

	// failure, success, failure: the streak broke, stays closed.
	b.onResult(verdictFailure, false)
	b.onResult(verdictSuccess, false)
	b.onResult(verdictFailure, false)
	if _, _, ok := b.Allow(); !ok {
		t.Fatal("a broken failure streak opened the breaker")
	}

	// failure, neutral, failure: neutral is not a success, the streak holds.
	b.onResult(verdictNeutral, false)
	b.onResult(verdictFailure, false)
	if _, _, ok := b.Allow(); ok {
		t.Fatal("neutral outcome reset the failure streak")
	}
}

// TestBreakerAbortProbe checks a shed probe releases its slot so the next
// caller can still probe the half-open window.
func TestBreakerAbortProbe(t *testing.T) {
	b, clk, _ := testBreaker(t, BreakerConfig{Failures: 1, OpenFor: time.Second})
	b.onResult(verdictFailure, false)
	clk.advance(2 * time.Second)
	probe, _, ok := b.Allow()
	if !ok || !probe {
		t.Fatal("no probe granted")
	}
	b.abortProbe(probe)
	if probe, _, ok := b.Allow(); !ok || !probe {
		t.Fatal("aborted probe slot was not released")
	}
}

// TestBreakerDisabled checks Failures < 0 turns the breaker into a pass.
func TestBreakerDisabled(t *testing.T) {
	b, _, _ := testBreaker(t, BreakerConfig{Failures: -1})
	for i := 0; i < 20; i++ {
		b.onResult(verdictFailure, false)
		if _, _, ok := b.Allow(); !ok {
			t.Fatal("disabled breaker rejected a solve")
		}
	}
}

// TestRetryBudget pins the token accounting: retries spend, fresh traffic
// refills at the configured ratio, and a dry budget rejects retries only.
func TestRetryBudget(t *testing.T) {
	b := newRetryBudget(0.5, 2)
	if !b.admit(true) || !b.admit(true) {
		t.Fatal("burst tokens not spendable")
	}
	if b.admit(true) {
		t.Fatal("dry budget admitted a retry")
	}
	if !b.admit(false) {
		t.Fatal("fresh request rejected")
	}
	if b.admit(true) {
		t.Fatal("half a token admitted a retry")
	}
	b.admit(false)
	if !b.admit(true) {
		t.Fatal("refilled budget rejected a retry")
	}

	var disabled *retryBudget
	if !disabled.admit(true) {
		t.Fatal("disabled (nil) budget rejected a retry")
	}
	if newRetryBudget(-1, 0) != nil {
		t.Fatal("negative ratio did not disable the budget")
	}
}

// TestRetryAfterJitter pins the Retry-After rendering: whole seconds, at
// least the base (rounded up, never below 1), at most base+3, and actually
// jittered across draws so a synchronised fleet spreads out.
func TestRetryAfterJitter(t *testing.T) {
	for _, tc := range []struct {
		base     time.Duration
		min, max int64
	}{
		{0, 1, 4},
		{time.Second, 1, 4},
		{1500 * time.Millisecond, 2, 5},
		{5 * time.Second, 5, 8},
	} {
		seen := map[int64]bool{}
		for i := 0; i < 200; i++ {
			v, err := strconv.ParseInt(retryAfterSeconds(tc.base), 10, 64)
			if err != nil {
				t.Fatalf("base %v: non-integer Retry-After: %v", tc.base, err)
			}
			if v < tc.min || v > tc.max {
				t.Fatalf("base %v: Retry-After %d outside [%d, %d]", tc.base, v, tc.min, tc.max)
			}
			seen[v] = true
		}
		if len(seen) < 2 {
			t.Errorf("base %v: 200 draws produced no jitter (all %v)", tc.base, seen)
		}
	}
}

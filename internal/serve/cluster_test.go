package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// fleetReplica is one in-process member of a test fleet.
type fleetReplica struct {
	base string
	reg  *obs.Registry
	srv  *Server
}

// startFleet boots n serve.Servers wired into one consistent-hash fleet:
// every replica lists every listener's URL in its peer set. Returns the
// replicas in peer-list order; shutdown is registered on t.Cleanup.
func startFleet(t *testing.T, n int, mutate func(i int, cfg *Config)) []fleetReplica {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	replicas := make([]fleetReplica, n)
	for i := range replicas {
		cfg, reg := testConfig(t)
		cfg.Cluster = cluster.Config{
			Self:          peers[i],
			Peers:         peers,
			PeerTimeout:   10 * time.Second,
			ProbeInterval: 100 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		ln := listeners[i]
		go func() { done <- s.Serve(ctx, ln) }()
		t.Cleanup(func() { cancel(); <-done })
		replicas[i] = fleetReplica{base: peers[i], reg: reg, srv: s}
	}
	return replicas
}

// counterSum totals one counter across the fleet.
func counterSum(replicas []fleetReplica, name string) float64 {
	var sum float64
	for _, r := range replicas {
		sum += r.reg.Snapshot().Counters[name]
	}
	return sum
}

// TestFleetExactlyOneColdSolvePerKey is the tentpole acceptance check: spray
// several unique workloads across every replica of a 3-member fleet and
// require (a) exactly one engine solve per unique key fleet-wide, (b) peer
// fills actually happening (peer_hit > 0), and (c) byte-identical equilibrium
// bodies from every replica regardless of which rung answered.
func TestFleetExactlyOneColdSolvePerKey(t *testing.T) {
	replicas := startFleet(t, 3, nil)

	const uniqueKeys = 4
	bodies := make([]string, uniqueKeys)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"Workload": {"Requests": %d, "Pop": 0.%d, "Timeliness": 3}}`, 10+i, 1+i)
	}

	// Each unique body visits every replica (mixed-target load): whichever
	// replica is asked first forwards to the key's owner, so the owner solves
	// once and everyone else fills from it.
	answers := make([][]byte, uniqueKeys)
	for i, body := range bodies {
		for j, r := range replicas {
			resp, data := postSolve(t, http.DefaultClient, r.base, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("body %d via replica %d: status %d body %s", i, j, resp.StatusCode, data)
			}
			stripped := bodyWithoutSource(t, data)
			if answers[i] == nil {
				answers[i] = stripped
			} else if !bytes.Equal(stripped, answers[i]) {
				t.Fatalf("body %d via replica %d: equilibrium differs:\n%s\nvs\n%s", i, j, stripped, answers[i])
			}
		}
	}

	if got := counterSum(replicas, "serve.solve.executed"); got != uniqueKeys {
		t.Errorf("fleet-wide serve.solve.executed = %g, want exactly %d (one cold solve per unique key)", got, uniqueKeys)
	}
	if got := counterSum(replicas, "cluster.peer_hit"); got == 0 {
		t.Error("cluster.peer_hit = 0: no request was filled from its ring owner")
	}
	if got := counterSum(replicas, "cluster.peer_miss"); got != 0 {
		t.Errorf("cluster.peer_miss = %g on a healthy fleet, want 0", got)
	}
	// Routing accounting: every local miss was either owned here or forwarded.
	owned, forwarded := counterSum(replicas, "cluster.owned"), counterSum(replicas, "cluster.forwarded")
	if owned == 0 || forwarded == 0 {
		t.Errorf("cluster.owned = %g, cluster.forwarded = %g: mixed-target load should exercise both paths", owned, forwarded)
	}
}

// TestFleetConcurrentMixedTargets hammers one identical workload at every
// replica concurrently: the owner's singleflight must collapse the fan-in to
// a single engine solve no matter how the requests interleave.
func TestFleetConcurrentMixedTargets(t *testing.T) {
	replicas := startFleet(t, 3, nil)
	const perReplica = 8
	body := `{"Workload": {"Requests": 42, "Pop": 0.5, "Timeliness": 2}}`

	var wg sync.WaitGroup
	errs := make(chan string, len(replicas)*perReplica)
	var mu sync.Mutex
	var reference []byte
	for _, r := range replicas {
		for i := 0; i < perReplica; i++ {
			wg.Add(1)
			go func(base string) {
				defer wg.Done()
				resp, data := postSolve(t, http.DefaultClient, base, body)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("%s: status %d body %s", base, resp.StatusCode, data)
					return
				}
				stripped := bodyWithoutSource(t, data)
				mu.Lock()
				defer mu.Unlock()
				if reference == nil {
					reference = stripped
				} else if !bytes.Equal(stripped, reference) {
					errs <- fmt.Sprintf("%s: equilibrium differs", base)
				}
			}(r.base)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := counterSum(replicas, "serve.solve.executed"); got != 1 {
		t.Errorf("fleet-wide serve.solve.executed = %g under concurrent mixed-target load, want exactly 1", got)
	}
}

// TestFleetPeerAnswerPromoted: after a peer fill, the non-owner replica must
// answer repeats from its own LRU (source "cache") without another fill —
// promotion is what turns the fleet into one big cache instead of a proxy.
func TestFleetPeerAnswerPromoted(t *testing.T) {
	replicas := startFleet(t, 2, nil)
	body := `{"Workload": {"Requests": 9, "Pop": 0.33, "Timeliness": 1}}`

	// Find the non-owner: ask both replicas once, then look at who forwarded.
	for _, r := range replicas {
		if resp, data := postSolve(t, http.DefaultClient, r.base, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %s", r.base, resp.StatusCode, data)
		}
	}
	var nonOwner *fleetReplica
	for i := range replicas {
		if replicas[i].reg.Snapshot().Counters["cluster.peer_hit"] == 1 {
			nonOwner = &replicas[i]
		}
	}
	if nonOwner == nil {
		t.Fatal("no replica recorded a peer fill")
	}
	resp, data := postSolve(t, http.DefaultClient, nonOwner.base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d body %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decode solve body: %v", err)
	}
	if sr.Source != SourceCache {
		t.Errorf("repeat on the filled replica: source %q, want %q (promoted into LRU)", sr.Source, SourceCache)
	}
	if hits := nonOwner.reg.Snapshot().Counters["cluster.peer_hit"]; hits != 1 {
		t.Errorf("repeat triggered another peer fill: cluster.peer_hit = %g, want 1", hits)
	}
}

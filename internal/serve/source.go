package serve

// Source identifies which rung of the serving ladder produced a solve
// response. It travels in the response body (SolveResponse.Source), replacing
// the ad-hoc X-Mfgcp-Cache header as the canonical provenance signal; the
// header is still emitted for one release, derived from this enum, so
// existing scrapers keep working while they migrate.
type Source string

const (
	// SourceSurrogate: answered by the tier-0 precomputed interpolation
	// table, with the cell's declared error bound attached.
	SourceSurrogate Source = "surrogate"
	// SourceCache: answered by the in-memory LRU of solved equilibria.
	SourceCache Source = "cache"
	// SourceStore: answered by the persistent disk tier (and promoted into
	// the LRU on the way out).
	SourceStore Source = "store"
	// SourcePeer: filled from the key's ring-owner replica via /v1/peer/get
	// (and, when converged, promoted into the local LRU on the way out).
	SourcePeer Source = "peer"
	// SourceCoalesced: this request joined another request's in-flight solve
	// and shares its freshly computed equilibrium.
	SourceCoalesced Source = "coalesced"
	// SourceSolve: a fresh engine solve ran for this request.
	SourceSolve Source = "solve"
)

// LegacyCacheHeader renders the deprecated X-Mfgcp-Cache value for this
// source. The header predates the surrogate tier and never distinguished a
// coalesced join from the solve it joined, so both map to "miss" — exactly
// what the header reported before the body-level enum existed.
func (s Source) LegacyCacheHeader() string {
	switch s {
	case SourceSurrogate:
		return "surrogate"
	case SourceCache:
		return "hit"
	case SourceStore:
		return "store"
	case SourcePeer:
		return "peer"
	}
	return "miss"
}

// source names the ladder rung that produced this outcome.
func (out solveOutcome) source() Source {
	switch {
	case out.SurrogateHit:
		return SourceSurrogate
	case out.CacheHit:
		return SourceCache
	case out.StoreHit:
		return SourceStore
	case out.PeerHit:
		return SourcePeer
	case out.Coalesced:
		return SourceCoalesced
	}
	return SourceSolve
}

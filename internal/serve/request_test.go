package serve

import (
	"bytes"
	"context"
	"log/slog"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// startServer brings up a full daemon (workers + listener) on cfg and returns
// its base URL.
func startServer(t *testing.T, cfg Config) string {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() { cancel(); <-done })
	return "http://" + ln.Addr().String()
}

// TestRequestIDPropagation pins the correlation contract: a client-supplied
// X-Request-ID is echoed back, a missing or malformed one is replaced by a
// generated hex ID.
func TestRequestIDPropagation(t *testing.T) {
	cfg, _ := testConfig(t)
	base := startServer(t, cfg)

	body := `{"Workload": {"Requests": 12, "Pop": 0.25, "Timeliness": 3}}`
	req, _ := http.NewRequest("POST", base+"/v1/solve", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-supplied-42" {
		t.Errorf("supplied request ID not propagated: got %q", got)
	}

	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for name, header := range map[string]string{
		"absent":    "",
		"oversized": strings.Repeat("x", 200),
		"nonprint":  "bad id", // embedded space: outside the accepted charset
	} {
		req, _ = http.NewRequest("POST", base+"/v1/solve", strings.NewReader(body))
		if header != "" {
			req.Header.Set("X-Request-ID", header)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-ID"); !hexID.MatchString(got) {
			t.Errorf("%s header: want generated 16-hex ID, got %q", name, got)
		}
	}
}

// TestAccessLogStageBreakdown drives one cold solve with an access log
// attached and a zero slow threshold, then asserts the structured record
// carries the request ID and the per-stage solver attribution (queue wait,
// cache lookup, HJB/FPK sweeps, fixed-point iterations).
func TestAccessLogStageBreakdown(t *testing.T) {
	cfg, reg := testConfig(t)
	var logBuf bytes.Buffer
	cfg.AccessLog = slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	cfg.SlowRequestThreshold = time.Nanosecond // everything is slow
	base := startServer(t, cfg)

	req, _ := http.NewRequest("POST", base+"/v1/solve",
		strings.NewReader(`{"Workload": {"Requests": 12, "Pop": 0.25, "Timeliness": 3}}`))
	req.Header.Set("X-Request-ID", "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	out := logBuf.String()
	for _, want := range []string{
		"slow request",
		"request_id=trace-me",
		"method=POST",
		"path=/v1/solve",
		"status=200",
		"duration_ms=",
		"cache_lookup_ms=",
		"queue_wait_ms=",
		"hjb_sweep_ms=",
		"fpk_sweep_ms=",
		"fixed_point_iterations=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %q:\n%s", want, out)
		}
	}

	snap := reg.Snapshot()
	for _, h := range []string{
		"serve.request.seconds",
		"serve.cache.lookup.seconds",
		"serve.queue.wait.seconds",
	} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s not recorded", h)
		}
	}
	if snap.Counters["serve.request.slow"] == 0 {
		t.Error("serve.request.slow not counted")
	}
	if q := snap.Histograms["serve.request.seconds"].P99; q <= 0 {
		t.Errorf("request-latency p99 = %g, want > 0", q)
	}
}

// TestHealthEndpointsStayOutOfAccessLog keeps probe noise out of the API
// stats: /healthz hits must neither log nor count into serve.request.seconds,
// but still carry a request ID.
func TestHealthEndpointsStayOutOfAccessLog(t *testing.T) {
	cfg, reg := testConfig(t)
	var logBuf bytes.Buffer
	cfg.AccessLog = slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	base := startServer(t, cfg)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("probe response missing X-Request-ID")
	}
	if logBuf.Len() != 0 {
		t.Errorf("probe leaked into access log: %s", logBuf.String())
	}
	if reg.Snapshot().Histograms["serve.request.seconds"].Count != 0 {
		t.Error("probe counted into serve.request.seconds")
	}
}

// TestReqTraceNilSafety pins the nil-tolerance contract instrumented layers
// rely on.
func TestReqTraceNilSafety(t *testing.T) {
	var tr *obs.ReqTrace
	tr.Observe("x", time.Second)
	tr.Count("y", 3)
	if got := tr.Stages(); got != nil {
		t.Errorf("nil trace stages = %v, want nil", got)
	}
	if id := obs.RequestIDFrom(context.Background()); id != "" {
		t.Errorf("background context request id = %q, want empty", id)
	}
}

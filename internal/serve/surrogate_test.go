package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/surrogate"
)

// buildServeTable precomputes a tiny real lattice under the daemon's default
// solver config: 2×2 over (Requests, Pop) with Timeliness frozen at 2.
func buildServeTable(t testing.TB, solver engine.Config) *surrogate.Table {
	t.Helper()
	tab, err := surrogate.Build(context.Background(), surrogate.BuildConfig{
		Config:     solver,
		Requests:   surrogate.AxisSpec{Min: 8, Max: 12, N: 2},
		Pop:        surrogate.AxisSpec{Min: 0.2, Max: 0.4, N: 2},
		Timeliness: surrogate.AxisSpec{Min: 2, N: 1},
		Workers:    2,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tab
}

// TestSurrogateTierAnswersInRegion pins the tier-0 contract: an in-region
// request is answered from the table — source "surrogate", error bound
// attached, legacy header derived — without the solver pool ever running.
func TestSurrogateTierAnswersInRegion(t *testing.T) {
	cfg, reg := testConfig(t)
	cfg.SurrogateTable = buildServeTable(t, cfg.Solver)
	base, _ := startDaemon(t, cfg)

	body := `{"Workload": {"Requests": 10, "Pop": 0.3, "Timeliness": 2}}`
	resp, data := postSolve(t, http.DefaultClient, base, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.Source != SourceSurrogate {
		t.Fatalf("source = %q, want %q", sr.Source, SourceSurrogate)
	}
	if sr.ErrorBound <= 0 {
		t.Errorf("error_bound = %g, want positive", sr.ErrorBound)
	}
	if !sr.Converged || len(sr.Price) == 0 || len(sr.Time) != len(sr.Price) {
		t.Errorf("implausible surrogate summary: %+v", sr)
	}
	if got := resp.Header.Get("X-Mfgcp-Cache"); got != "surrogate" {
		t.Errorf("X-Mfgcp-Cache = %q, want surrogate", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.solve.executed"]; got != 0 {
		t.Errorf("serve.solve.executed = %g, want 0 (surrogate hit must not solve)", got)
	}
	if got := snap.Counters["serve.surrogate.hit"]; got != 1 {
		t.Errorf("serve.surrogate.hit = %g, want 1", got)
	}
	if got := snap.Counters["serve.solve.requests"]; got != 1 {
		t.Errorf("serve.solve.requests = %g, want 1 (surrogate hits still count requests)", got)
	}
}

// TestSurrogateTierFallsThrough covers the trust-region boundary: an
// out-of-region request (and an in-region one whose request-level
// MaxErrorBound is tighter than the declared cell bound) must reach the
// engine ladder and answer byte-identically to a surrogate-free daemon.
func TestSurrogateTierFallsThrough(t *testing.T) {
	cfg, reg := testConfig(t)
	cfg.SurrogateTable = buildServeTable(t, cfg.Solver)
	base, _ := startDaemon(t, cfg)

	plain, plainReg := testConfig(t)
	basePlain, _ := startDaemon(t, plain)

	outside := `{"Workload": {"Requests": 20, "Pop": 0.3, "Timeliness": 2}}`
	resp, data := postSolve(t, http.DefaultClient, base, outside)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, data)
	}
	respPlain, dataPlain := postSolve(t, http.DefaultClient, basePlain, outside)
	if respPlain.StatusCode != http.StatusOK {
		t.Fatalf("plain daemon: status %d", respPlain.StatusCode)
	}
	if !bytes.Equal(data, dataPlain) {
		t.Errorf("out-of-region answer differs from the surrogate-free daemon:\n%s\nvs\n%s", data, dataPlain)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.Source != SourceSolve {
		t.Errorf("out-of-region source = %q, want %q", sr.Source, SourceSolve)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.surrogate.miss"]; got != 1 {
		t.Errorf("serve.surrogate.miss = %g, want 1", got)
	}
	if got := snap.Counters["serve.solve.executed"]; got != 1 {
		t.Errorf("serve.solve.executed = %g, want 1", got)
	}
	_ = plainReg

	// In-region, but the request demands a tighter bound than the cell
	// declares: the table must decline and the engine answer.
	tight := fmt.Sprintf(
		`{"Solver": {"Surrogate": {"MaxErrorBound": %g}}, "Workload": {"Requests": 10, "Pop": 0.3, "Timeliness": 2}}`,
		cfg.SurrogateTable.Bounds[0]/2)
	resp2, data2 := postSolve(t, http.DefaultClient, base, tight)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("tight-bound request: status %d body %s", resp2.StatusCode, data2)
	}
	var sr2 SolveResponse
	if err := json.Unmarshal(data2, &sr2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr2.Source != SourceSolve {
		t.Errorf("tight-bound source = %q, want %q (bound gate failed)", sr2.Source, SourceSolve)
	}
}

// TestSourceLegacyHeaderMapping pins the deprecation bridge for all six
// sources: the X-Mfgcp-Cache header is derived from the body-level enum.
func TestSourceLegacyHeaderMapping(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{SourceSurrogate, "surrogate"},
		{SourceCache, "hit"},
		{SourceStore, "store"},
		{SourcePeer, "peer"},
		{SourceCoalesced, "miss"},
		{SourceSolve, "miss"},
	}
	for _, tc := range cases {
		if got := tc.src.LegacyCacheHeader(); got != tc.want {
			t.Errorf("%q.LegacyCacheHeader() = %q, want %q", tc.src, got, tc.want)
		}
	}
	outcomes := []struct {
		out  solveOutcome
		want Source
	}{
		{solveOutcome{SurrogateHit: true}, SourceSurrogate},
		{solveOutcome{CacheHit: true}, SourceCache},
		{solveOutcome{StoreHit: true}, SourceStore},
		{solveOutcome{PeerHit: true}, SourcePeer},
		{solveOutcome{Coalesced: true}, SourceCoalesced},
		{solveOutcome{}, SourceSolve},
	}
	for _, tc := range outcomes {
		if got := tc.out.source(); got != tc.want {
			t.Errorf("%+v.source() = %q, want %q", tc.out, got, tc.want)
		}
	}
}

// BenchmarkServeSurrogateHit measures the end-to-end latency of a tier-0
// answer through the real HTTP stack (the acceptance criterion is p99 under
// a millisecond; the mean reported here sits far below it). Surrogate hits
// never touch the worker pool, so the bare handler is the full hot path.
func BenchmarkServeSurrogateHit(b *testing.B) {
	cfg, _ := testConfig(b)
	cfg.SurrogateTable = buildServeTable(b, cfg.Solver)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := []byte(`{"Workload": {"Requests": 10, "Pop": 0.3, "Timeliness": 2}}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

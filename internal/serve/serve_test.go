package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
)

// testConfig returns a server configuration on a deliberately small grid so
// one solve costs milliseconds, with a registry to assert metrics against.
func testConfig(t testing.TB) (Config, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	p := mec.Default()
	solver := engine.DefaultConfig(p)
	solver.NH, solver.NQ, solver.Steps = 7, 15, 24
	return Config{
		Addr:           "127.0.0.1:0",
		Workers:        2,
		QueueDepth:     128,
		DefaultTimeout: 20 * time.Second,
		DrainTimeout:   20 * time.Second,
		Params:         p,
		Solver:         solver,
		Obs:            reg,
		Registry:       reg,
	}, reg
}

func postSolve(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// bodyWithoutSource re-encodes a solve body with its provenance removed: the
// equilibrium series must be identical across ladder rungs even though the
// source field names whichever rung answered. json.Marshal of a map emits
// keys sorted, so two stripped bodies of the same equilibrium compare equal.
func bodyWithoutSource(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decode solve body %q: %v", data, err)
	}
	delete(m, "source")
	delete(m, "error_bound")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSolveCoalescing is the tentpole acceptance check: 64 concurrent
// identical solve requests must produce exactly one engine solve (the rest
// coalesce onto the in-flight computation or hit the cache) and identical
// equilibrium bodies, differing only in their source field.
func TestSolveCoalescing(t *testing.T) {
	cfg, reg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() { cancel(); <-done })
	base := "http://" + ln.Addr().String()

	const n = 64
	body := `{"Workload": {"Requests": 12, "Pop": 0.25, "Timeliness": 3}}`
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postSolve(t, http.DefaultClient, base, body)
			statuses[i] = resp.StatusCode
			bodies[i] = data
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodyWithoutSource(t, bodies[i]), bodyWithoutSource(t, bodies[0])) {
			t.Fatalf("request %d: equilibrium differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var resp SolveResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !resp.Converged || len(resp.Price) == 0 || len(resp.Time) != len(resp.Price) {
		t.Errorf("implausible equilibrium summary: %+v", resp)
	}
	// Every response names a real ladder rung, and exactly the expected mix
	// appears: one fresh solve, the rest coalesced joins or cache hits.
	perSource := map[Source]int{}
	for i := 0; i < n; i++ {
		var r SolveResponse
		if err := json.Unmarshal(bodies[i], &r); err != nil {
			t.Fatalf("decode response %d: %v", i, err)
		}
		switch r.Source {
		case SourceSolve, SourceCoalesced, SourceCache:
			perSource[r.Source]++
		default:
			t.Fatalf("request %d: unexpected source %q", i, r.Source)
		}
	}
	if perSource[SourceSolve] != 1 {
		t.Errorf("sources %v: want exactly 1 %q", perSource, SourceSolve)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["serve.solve.executed"]; got != 1 {
		t.Errorf("serve.solve.executed = %g, want exactly 1 (coalescing failed)", got)
	}
	if got := snap.Counters["serve.solve.requests"]; got != n {
		t.Errorf("serve.solve.requests = %g, want %d", got, n)
	}
	joined := snap.Counters["serve.solve.coalesced"] + snap.Counters["engine.cache.hit"]
	if joined != n-1 {
		t.Errorf("coalesced+cache hits = %g, want %d", joined, n-1)
	}

	// A warm repeat answers from the cache without re-solving.
	resp2, data2 := postSolve(t, http.DefaultClient, base, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm repeat: status %d", resp2.StatusCode)
	}
	if !bytes.Equal(bodyWithoutSource(t, data2), bodyWithoutSource(t, bodies[0])) {
		t.Errorf("warm repeat equilibrium differs")
	}
	var warm SolveResponse
	if err := json.Unmarshal(data2, &warm); err != nil {
		t.Fatalf("decode warm repeat: %v", err)
	}
	if warm.Source != SourceCache {
		t.Errorf("warm repeat source = %q, want %q", warm.Source, SourceCache)
	}
	if got := resp2.Header.Get("X-Mfgcp-Cache"); got != "hit" {
		t.Errorf("warm repeat X-Mfgcp-Cache = %q, want hit", got)
	}
	if got := reg.Snapshot().Counters["serve.solve.executed"]; got != 1 {
		t.Errorf("warm repeat re-solved: serve.solve.executed = %g", got)
	}
}

// TestLoadShedding fills the queue with no workers draining it and checks the
// overflow request is shed with 429 + Retry-After instead of queuing.
func TestLoadShedding(t *testing.T) {
	cfg, reg := testConfig(t)
	cfg.QueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Serve(): the worker pool never starts, so the first enqueued flight
	// sits in the queue deterministically.
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	first := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"TimeoutMs": 200, "Workload": {"Requests": 5, "Pop": 0.1}}`))
		code := 0
		if resp != nil {
			code = resp.StatusCode
			resp.Body.Close()
		}
		first <- code
	}()
	// Wait until the first request occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["serve.solve.requests"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never enqueued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, data := postSolve(t, http.DefaultClient, ts.URL, `{"Workload": {"Requests": 5, "Pop": 0.2}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d body %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Kind != "overloaded" {
		t.Errorf("shed body = %s, want kind overloaded", data)
	}
	if got := reg.Snapshot().Counters["serve.solve.shed"]; got != 1 {
		t.Errorf("serve.solve.shed = %g, want 1", got)
	}
	// The queued request eventually abandons its wait (no workers) and maps
	// onto the interrupted kind.
	if code := <-first; code != http.StatusGatewayTimeout {
		t.Errorf("abandoned queued request: status %d, want 504", code)
	}
}

// TestDeadlineInterrupted maps a per-request deadline expiring mid-solve onto
// the structured 504 "interrupted" error.
func TestDeadlineInterrupted(t *testing.T) {
	cfg, _ := testConfig(t)
	// A grid large enough that one best-response iteration costs well over
	// the 1 ms deadline, and a tolerance it cannot reach.
	cfg.Solver.NH, cfg.Solver.NQ, cfg.Solver.Steps = 21, 81, 200
	cfg.Solver.Tol = 1e-12
	cfg.MaxTimeout = time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() { cancel(); <-done })

	resp, data := postSolve(t, http.DefaultClient, "http://"+ln.Addr().String(),
		`{"TimeoutMs": 60000, "Workload": {"Requests": 40, "Pop": 0.8, "Timeliness": 4}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("decode error body: %v (%s)", err, data)
	}
	if eb.Error.Kind != "interrupted" {
		t.Errorf("error kind %q, want interrupted (%s)", eb.Error.Kind, data)
	}
}

// TestGracefulDrain cancels the serve context (the SIGTERM path) while a
// solve is in flight and checks the request still completes and Serve returns
// nil — the exit-0 contract of `mfgcp serve`.
func TestGracefulDrain(t *testing.T) {
	cfg, reg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		body []byte
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve", "application/json",
			strings.NewReader(`{"Workload": {"Requests": 9, "Pop": 0.3, "Timeliness": 2}}`))
		if err != nil {
			resCh <- result{}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		resCh <- result{resp.StatusCode, data}
	}()
	// Wait until the solve is actually executing, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["serve.solve.executed"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()

	res := <-resCh
	if res.code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d body %s, want 200", res.code, res.body)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(cfg.DrainTimeout + 5*time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Errorf("listener still accepting after drain")
	}
	if got := reg.Snapshot().Counters["serve.drains"]; got != 1 {
		t.Errorf("serve.drains = %g, want 1", got)
	}
}

// TestRequestValidation drives the 400 path: unknown top-level keys, unknown
// solver keys and non-finite-rejecting workload validation.
func TestRequestValidation(t *testing.T) {
	cfg, _ := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cases := []struct {
		name, body, want string
	}{
		{"unknown top-level key", `{"Grid": 5}`, "unknown field"},
		{"unknown solver key", `{"Solver": {"Damp": 0.5}}`, "unknown field"},
		{"invalid solver value", `{"Solver": {"Tol": -1}}`, "Tol"},
		{"invalid params", `{"Params": {"Qk": -3}}`, "Qk"},
		{"invalid workload", `{"Workload": {"Pop": 1.7}}`, "popularity"},
	}
	for _, tc := range cases {
		resp, data := postSolve(t, http.DefaultClient, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Kind != "invalid_request" {
			t.Errorf("%s: body %s, want kind invalid_request", tc.name, data)
		}
		if !strings.Contains(eb.Error.Message, tc.want) {
			t.Errorf("%s: message %q does not mention %q", tc.name, eb.Error.Message, tc.want)
		}
	}
}

// TestEpochEndpoint prepares one epoch through the daemon and checks the
// per-content strategies and the cache sharing with /v1/solve.
func TestEpochEndpoint(t *testing.T) {
	cfg, reg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() { cancel(); <-done })
	base := "http://" + ln.Addr().String()

	k := 4
	var workloads []string
	for i := 0; i < k; i++ {
		req := 0.0
		if i < 2 {
			req = float64(5 + i) // only the first two contents are requested
		}
		workloads = append(workloads, fmt.Sprintf(`{"Requests": %g, "Pop": %g, "Timeliness": 2}`, req, 0.1+0.1*float64(i)))
	}
	body := fmt.Sprintf(`{"Params": {"K": %d, "M": 50}, "Workloads": [%s], "Epoch": 1, "Seed": 7}`,
		k, strings.Join(workloads, ","))
	resp, data := postSolve2(t, base+"/v1/policy/epoch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch: status %d body %s", resp.StatusCode, data)
	}
	var er EpochResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("decode epoch response: %v", err)
	}
	if er.Policy != "MFG-CP" || len(er.Contents) != k {
		t.Fatalf("epoch response %+v", er)
	}
	for i, c := range er.Contents {
		wantRequested := i < 2
		if c.Requested != wantRequested {
			t.Errorf("content %d: requested %v, want %v", i, c.Requested, wantRequested)
		}
		if wantRequested && !c.Converged {
			t.Errorf("content %d: did not converge", i)
		}
	}
	if got := reg.Snapshot().Counters["serve.epoch.executed"]; got != 1 {
		t.Errorf("serve.epoch.executed = %g, want 1", got)
	}
	if s.Cache().Len() == 0 {
		t.Errorf("epoch solves did not populate the shared cache")
	}

	// Workload count mismatch is a 400.
	resp, data = postSolve2(t, base+"/v1/policy/epoch", `{"Workloads": [{"Requests": 1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short workloads: status %d body %s, want 400", resp.StatusCode, data)
	}
	// Non-MFG policies have no equilibrium strategy to serve.
	resp, data = postSolve2(t, base+"/v1/policy/epoch",
		fmt.Sprintf(`{"Policy": "rr", "Params": {"K": %d}, "Workloads": [%s]}`, k, strings.Join(workloads, ",")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("rr policy: status %d body %s, want 400", resp.StatusCode, data)
	}
}

func postSolve2(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestHealthEndpoints checks the liveness/readiness split and the metrics
// mount.
func TestHealthEndpoints(t *testing.T) {
	cfg, _ := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	// Readiness flips only once Serve runs; a bare handler is not ready.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Serve: %v %v, want 503", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", resp, err)
	}
	resp.Body.Close()
}

package exactgame

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mec"
)

func testConfig() Config {
	cfg := DefaultConfig(mec.Default())
	cfg.NH = 5
	cfg.NQ = 21
	cfg.Steps = 30
	return cfg
}

func testWorkload() core.Workload {
	return core.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

func symmetricInits(m int) []AgentInit {
	inits := make([]AgentInit, m)
	for i := range inits {
		inits[i] = AgentInit{MeanQ: 70, StdQ: 10}
	}
	return inits
}

func TestSolveSymmetricConverges(t *testing.T) {
	sol, err := Solve(testConfig(), testWorkload(), symmetricInits(4))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !sol.Converged {
		t.Fatalf("not converged: residuals %v", sol.Residuals)
	}
	if sol.Solves < 4 {
		t.Errorf("expected at least one solve per agent, got %d", sol.Solves)
	}
	// Symmetric agents end up with matching strategies up to the sequential
	// (Gauss–Seidel) update's tolerance-level phase lag within a round.
	a0 := sol.Agents[0].HJB.X[0]
	for i := 1; i < len(sol.Agents); i++ {
		ai := sol.Agents[i].HJB.X[0]
		for k := range a0 {
			if math.Abs(a0[k]-ai[k]) > 2*testConfig().Tol {
				t.Fatalf("symmetric agents diverged at node %d: %g vs %g", k, a0[k], ai[k])
			}
		}
	}
	// Controls stay admissible.
	for _, a := range sol.Agents {
		for n := range a.HJB.X {
			for k, x := range a.HJB.X[n] {
				if x < 0 || x > 1 {
					t.Fatalf("control %g outside [0,1] at node %d", x, k)
				}
			}
		}
	}
}

func TestSolveHeterogeneousAgentsDiffer(t *testing.T) {
	inits := []AgentInit{
		{MeanQ: 30, StdQ: 8},
		{MeanQ: 80, StdQ: 8},
		{MeanQ: 55, StdQ: 8},
	}
	sol, err := Solve(testConfig(), testWorkload(), inits)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Agents with different initial inventories carry different aggregates.
	if math.Abs(sol.Agents[0].MeanQ[0]-sol.Agents[1].MeanQ[0]) < 10 {
		t.Errorf("initial mean states should differ: %g vs %g",
			sol.Agents[0].MeanQ[0], sol.Agents[1].MeanQ[0])
	}
}

// The nearly-equivalence claim of Section IV-B: for a symmetric population
// the exact finite-M best responses coincide with the MFG-CP strategy (the
// Eq. 5 price has no own-supply term, so a symmetric population's aggregates
// equal the mean field exactly), and heterogeneity is what opens a gap that
// shrinks as the population homogenises.
func TestExactGameMatchesMFG(t *testing.T) {
	cfg := testConfig()
	w := testWorkload()

	mfgCfg := core.DefaultConfig(cfg.Params)
	mfgCfg.NH, mfgCfg.NQ, mfgCfg.Steps = cfg.NH, cfg.NQ, cfg.Steps
	mfgEq, err := core.Solve(mfgCfg, w)
	if err != nil {
		t.Fatalf("MFG solve: %v", err)
	}

	gap := func(inits []AgentInit) float64 {
		sol, err := Solve(cfg, w, inits)
		if err != nil {
			t.Fatalf("exact game: %v", err)
		}
		var worst float64
		// Compare at a mid-horizon time where strategies are interior.
		n := cfg.Steps / 2
		for k := range mfgEq.HJB.X[n] {
			if d := math.Abs(sol.Agents[0].HJB.X[n][k] - mfgEq.HJB.X[n][k]); d > worst {
				worst = d
			}
		}
		return worst
	}

	// Symmetric populations coincide with the mean field at any M.
	for _, m := range []int{3, 16} {
		if g := gap(symmetricInits(m)); g > 2*cfg.Tol {
			t.Errorf("symmetric M=%d: gap to MFG %.4f exceeds tolerance", m, g)
		}
	}

	// A heterogeneous population (mean-preserving spread around 70MB) opens
	// a gap; a milder spread closes it again.
	spread := func(delta float64) []AgentInit {
		return []AgentInit{
			{MeanQ: 70 - delta, StdQ: 10},
			{MeanQ: 70 + delta, StdQ: 10},
			{MeanQ: 70 - delta/2, StdQ: 10},
			{MeanQ: 70 + delta/2, StdQ: 10},
		}
	}
	wide := gap(spread(25))
	narrow := gap(spread(5))
	if narrow > wide+1e-9 {
		t.Errorf("gap should shrink as heterogeneity shrinks: wide %.4f vs narrow %.4f", wide, narrow)
	}
}

// Complexity: the number of PDE solves grows linearly in M — the paper's
// O(M·K·ψ) vs O(K·ψ) comparison.
func TestSolveCountGrowsWithM(t *testing.T) {
	runs := map[int]int{}
	for _, m := range []int{3, 6} {
		sol, err := Solve(testConfig(), testWorkload(), symmetricInits(m))
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		runs[m] = sol.Solves
	}
	perAgent3 := float64(runs[3]) / 3
	perAgent6 := float64(runs[6]) / 6
	// Solves per agent per round is 1; round counts should be comparable, so
	// total solves at M=6 must clearly exceed M=3.
	if runs[6] <= runs[3] {
		t.Errorf("solve count should grow with M: %v", runs)
	}
	if perAgent3 < 1 || perAgent6 < 1 {
		t.Errorf("per-agent solve counts out of range: %g, %g", perAgent3, perAgent6)
	}
}

func TestSolveValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := Solve(cfg, testWorkload(), symmetricInits(1)); err == nil {
		t.Error("single agent should be rejected")
	}
	bad := cfg
	bad.NH = 1
	if _, err := Solve(bad, testWorkload(), symmetricInits(3)); err == nil {
		t.Error("tiny grid should be rejected")
	}
	bad = cfg
	bad.Tol = 0
	if _, err := Solve(bad, testWorkload(), symmetricInits(3)); err == nil {
		t.Error("zero tolerance should be rejected")
	}
	bad = cfg
	bad.MaxRounds = 0
	if _, err := Solve(bad, testWorkload(), symmetricInits(3)); err == nil {
		t.Error("zero rounds should be rejected")
	}
	inits := symmetricInits(3)
	inits[1].StdQ = 0
	if _, err := Solve(cfg, testWorkload(), inits); err == nil {
		t.Error("zero init std should be rejected")
	}
	w := testWorkload()
	w.Pop = 2
	if _, err := Solve(cfg, w, symmetricInits(3)); err == nil {
		t.Error("bad workload should be rejected")
	}
}

func TestSolveNotConverged(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 1
	cfg.Tol = 1e-12
	sol, err := Solve(cfg, testWorkload(), symmetricInits(3))
	if err == nil {
		t.Fatal("expected non-convergence")
	}
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("error %v should wrap ErrNotConverged", err)
	}
	if sol == nil {
		t.Fatal("partial solution should be returned")
	}
}

func TestShareBenefitGuards(t *testing.T) {
	p := mec.Default()
	if got := shareBenefit(p, 50, 0.5, 0); got != 0 {
		t.Errorf("no sharers should give 0, got %g", got)
	}
	if got := shareBenefit(p, 5, 0.99, 0.99); got < 0 {
		t.Errorf("benefit must be non-negative, got %g", got)
	}
	if got := shareBenefit(p, 40, 0.5, 0.1); got <= 0 {
		t.Errorf("healthy market should give positive benefit, got %g", got)
	}
}

// Package exactgame implements the finite-M stochastic differential game
// that MFG-CP approximates — the "original game" on the left of the paper's
// Fig. 2. Every EDP i keeps its own state density λ_i and best-responds to
// the *actual* aggregates of the other M−1 players (price via Eq. 5, peer
// cache level, sharing terms) instead of a mean field, so one best-response
// round costs M coupled HJB–FPK solves: the O(M·K·ψ_th) complexity the paper
// contrasts with MFG-CP's O(K·ψ_th).
//
// The package serves two purposes: it validates the mean-field approximation
// (for symmetric populations the exact-game strategies converge to the MFG
// strategy as M grows — see the tests), and it provides the complexity
// baseline for the scalability claims of Table II.
package exactgame

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/pde"
)

// AgentInit is one EDP's initial remaining-space distribution (Gaussian over
// q; the channel initialisation is the shared OU stationary law).
type AgentInit struct {
	MeanQ, StdQ float64
}

// SymmetricInits returns m identical initial distributions drawn from the
// Section-V population law (mean InitMeanFrac·Qk, sd InitStdFrac·Qk): the
// symmetric population whose exact-game strategies converge to the MFG
// strategy as m grows. The verification layer uses it for the finite-M
// differential check.
func SymmetricInits(p mec.Params, m int) []AgentInit {
	inits := make([]AgentInit, m)
	for i := range inits {
		inits[i] = AgentInit{MeanQ: p.InitMeanFrac * p.Qk, StdQ: p.InitStdFrac * p.Qk}
	}
	return inits
}

// Config controls one exact-game solve.
type Config struct {
	Params mec.Params

	NH, NQ, Steps int

	// MaxRounds bounds the sequential best-response rounds over the agents;
	// Tol is the convergence threshold on the strategy change.
	MaxRounds int
	Tol       float64

	// Share toggles paid peer sharing (as in the MFG-CP vs MFG variants).
	Share bool
}

// DefaultConfig returns moderate settings for an M-player solve.
func DefaultConfig(p mec.Params) Config {
	return Config{
		Params:    p,
		NH:        7,
		NQ:        31,
		Steps:     48,
		MaxRounds: 25,
		Tol:       2e-3,
		Share:     true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.NH < 3 || c.NQ < 3 {
		return fmt.Errorf("exactgame: grid must be at least 3×3, got %d×%d", c.NH, c.NQ)
	}
	if c.Steps < 2 {
		return fmt.Errorf("exactgame: need at least 2 time steps, got %d", c.Steps)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("exactgame: MaxRounds must be ≥ 1, got %d", c.MaxRounds)
	}
	if !(c.Tol > 0) {
		return fmt.Errorf("exactgame: Tol must be positive, got %g", c.Tol)
	}
	return nil
}

// Agent is one player's solved state.
type Agent struct {
	Init AgentInit

	HJB     *pde.HJBSolution
	Density [][]float64 // own density path, one field per time node

	// Per-time-node own aggregates E_i[x](t), E_i[q](t), plus the sharing
	// statistics of the own density (fraction below αQk etc.).
	MeanX      []float64
	MeanQ      []float64
	SharerFrac []float64 // sharp fraction with q ≤ αQk
	MissFrac   []float64 // smooth own-miss weight ∫ f(q−αQk) λ
	LowQ       []float64 // E[q·1{q≤αQk}]
	HighQ      []float64 // E[q·1{q>αQk}]
}

// Solution is the outcome of the finite-M best-response iteration.
type Solution struct {
	Config Config
	Grid   grid.Grid2D
	Time   grid.TimeMesh

	Agents    []*Agent
	Rounds    int
	Converged bool
	Residuals []float64 // worst per-agent strategy change per round

	// Solves counts the total HJB+FPK pairs executed — the empirical
	// complexity (≈ M × rounds, versus rounds for the MFG).
	Solves int
}

// ErrNotConverged is wrapped when the round limit is hit.
var ErrNotConverged = errors.New("exactgame: best-response rounds did not converge")

// Solve runs sequential best-response over the M agents given their initial
// distributions. Agents see the exact finite-M averages of the other players'
// current strategies and states.
func Solve(cfg Config, w core.Workload, inits []AgentInit) (*Solution, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	m := len(inits)
	if m < 2 {
		return nil, fmt.Errorf("exactgame: need at least 2 agents, got %d", m)
	}
	p := cfg.Params

	hAxis, err := grid.NewAxis(p.HMin, p.HMax, cfg.NH)
	if err != nil {
		return nil, err
	}
	qAxis, err := grid.NewAxis(0, p.Qk, cfg.NQ)
	if err != nil {
		return nil, err
	}
	g, err := grid.NewGrid2D(hAxis, qAxis)
	if err != nil {
		return nil, err
	}
	tm, err := grid.NewTimeMesh(p.Horizon, cfg.Steps)
	if err != nil {
		return nil, err
	}
	channel, err := mec.NewChannelModel(p)
	if err != nil {
		return nil, err
	}
	ou := channel.OU()
	sdH := math.Sqrt(ou.StationaryVar())
	if sdH < 1e-3 {
		sdH = 1e-3
	}

	sol := &Solution{Config: cfg, Grid: g, Time: tm, Agents: make([]*Agent, m)}
	xPaths := make([][][]float64, m) // [agent][time][node]
	for i, init := range inits {
		if !(init.StdQ > 0) {
			return nil, fmt.Errorf("exactgame: agent %d: StdQ must be positive, got %g", i, init.StdQ)
		}
		lambda0, err := pde.GaussianDensity(g, p.ChMean, sdH, init.MeanQ, init.StdQ)
		if err != nil {
			return nil, fmt.Errorf("exactgame: agent %d: %w", i, err)
		}
		a := &Agent{Init: init, Density: make([][]float64, cfg.Steps+1)}
		for n := range a.Density {
			a.Density[n] = lambda0
		}
		a.MeanX = make([]float64, cfg.Steps+1)
		a.MeanQ = make([]float64, cfg.Steps+1)
		a.SharerFrac = make([]float64, cfg.Steps+1)
		a.MissFrac = make([]float64, cfg.Steps+1)
		a.LowQ = make([]float64, cfg.Steps+1)
		a.HighQ = make([]float64, cfg.Steps+1)
		sol.Agents[i] = a
		xPaths[i] = make([][]float64, cfg.Steps+1)
		for n := range xPaths[i] {
			xPaths[i][n] = g.NewField()
		}
		if err := refreshAggregates(p, g, a, xPaths[i]); err != nil {
			return nil, err
		}
	}

	timeIndex := func(t float64) int {
		n := int(t/tm.Dt() + 0.5)
		if n < 0 {
			n = 0
		}
		if n > cfg.Steps {
			n = cfg.Steps
		}
		return n
	}

	for round := 1; round <= cfg.MaxRounds; round++ {
		var worst float64
		for i := 0; i < m; i++ {
			// Exact finite-M aggregates of the other agents at each node.
			ctxs := make([]*mec.UtilityContext, cfg.Steps+1)
			for n := 0; n <= cfg.Steps; n++ {
				var othersX, othersQ, sharer, miss, lowQ, highQ float64
				for j := 0; j < m; j++ {
					if j == i {
						continue
					}
					othersX += sol.Agents[j].MeanX[n]
					othersQ += sol.Agents[j].MeanQ[n]
					sharer += sol.Agents[j].SharerFrac[n]
					miss += sol.Agents[j].MissFrac[n]
					lowQ += sol.Agents[j].LowQ[n]
					highQ += sol.Agents[j].HighQ[n]
				}
				den := float64(m - 1)
				othersX /= den
				othersQ /= den
				sharer /= den
				miss /= den
				lowQ /= den
				highQ /= den

				price := p.PHat - p.Eta1*p.Qk*othersX // Eq. (5) without the own-supply term
				if price < 0 {
					price = 0
				}
				ctx, err := mec.NewUtilityContext(p, channel)
				if err != nil {
					return nil, err
				}
				ctx.Price = price
				ctx.QBar = othersQ
				// Sharing benefit with the estimator's exact functional form
				// (Section IV-B), evaluated on the finite-M mixture: Δq̄ from
				// the partial means, case-3 weight from the smooth miss
				// fraction and the peer-level threshold.
				deltaQ := math.Abs(lowQ - highQ)
				case3 := numerics.SmoothStep(p.SmoothL, othersQ-p.AlphaQ()) * miss
				ctx.ShareBenefit = shareBenefit(p, deltaQ, case3, sharer)
				ctx.Requests = w.Requests
				ctx.Pop = w.Pop
				ctx.Timeliness = w.Timeliness
				ctx.ShareEnabled = cfg.Share
				ctxs[n] = ctx
			}

			// Best response: backward HJB for agent i.
			prob := &pde.HJBProblem{
				Grid:   g,
				Time:   tm,
				DiffH:  0.5 * p.ChSigma * p.ChSigma,
				DiffQ:  0.5 * p.SigmaQ * p.SigmaQ,
				DriftH: func(_, h float64) float64 { return ou.Drift(0, h) },
				DriftQ: func(t, x float64) float64 { return ctxs[timeIndex(t)].QDrift(x) },
				Control: func(_, _, _ float64, dV float64) float64 {
					return core.OptimalControl(p, dV)
				},
				Running: func(t, x, h, q float64) float64 {
					return ctxs[timeIndex(t)].Utility(x, h, q)
				},
			}
			hjb, err := pde.SolveHJB(prob)
			if err != nil {
				return nil, fmt.Errorf("exactgame: round %d agent %d HJB: %w", round, i, err)
			}
			for n := 0; n <= cfg.Steps; n++ {
				for k := range hjb.X[n] {
					if d := math.Abs(hjb.X[n][k] - xPaths[i][n][k]); d > worst {
						worst = d
					}
				}
			}
			xPaths[i] = hjb.X
			sol.Agents[i].HJB = hjb

			// Own density transport under the new strategy.
			fprob := &pde.FPKProblem{
				Grid:        g,
				Time:        tm,
				DiffH:       0.5 * p.ChSigma * p.ChSigma,
				DiffQ:       0.5 * p.SigmaQ * p.SigmaQ,
				DriftH:      func(_, h float64) float64 { return ou.Drift(0, h) },
				Form:        pde.Conservative,
				Renormalize: true,
				DriftQ: func(t, h, q float64) float64 {
					n := timeIndex(t)
					x := hjb.X[n][g.Idx(g.H.NearestIndex(h), g.Q.NearestIndex(q))]
					return ctxs[n].QDrift(x)
				},
			}
			fpk, err := pde.SolveFPK(fprob, sol.Agents[i].Density[0])
			if err != nil {
				return nil, fmt.Errorf("exactgame: round %d agent %d FPK: %w", round, i, err)
			}
			sol.Agents[i].Density = fpk.Lambda
			sol.Solves++
			if err := refreshAggregates(p, g, sol.Agents[i], xPaths[i]); err != nil {
				return nil, err
			}
		}
		sol.Rounds = round
		sol.Residuals = append(sol.Residuals, worst)
		if worst < cfg.Tol {
			sol.Converged = true
			break
		}
	}
	if !sol.Converged {
		return sol, fmt.Errorf("%w after %d rounds (residual %.3g > tol %.3g)",
			ErrNotConverged, sol.Rounds, sol.Residuals[len(sol.Residuals)-1], cfg.Tol)
	}
	return sol, nil
}

// refreshAggregates recomputes an agent's per-node aggregates from its
// density path and strategy path.
func refreshAggregates(p mec.Params, g grid.Grid2D, a *Agent, xPath [][]float64) error {
	aq := p.AlphaQ()
	for n := range a.Density {
		lambda := a.Density[n]
		mass, err := numerics.Integral2D(g, lambda)
		if err != nil {
			return err
		}
		if mass <= 0 {
			return fmt.Errorf("exactgame: density mass vanished at node %d", n)
		}
		meanX, err := numerics.WeightedIntegral2D(g, lambda, func(i, j int, _, _ float64) float64 {
			return xPath[n][g.Idx(i, j)]
		})
		if err != nil {
			return err
		}
		meanQ, err := numerics.WeightedIntegral2D(g, lambda, func(_, _ int, _, q float64) float64 { return q })
		if err != nil {
			return err
		}
		sharer, err := numerics.WeightedIntegral2D(g, lambda, func(_, _ int, _, q float64) float64 {
			if q <= aq {
				return 1
			}
			return 0
		})
		if err != nil {
			return err
		}
		miss, err := numerics.WeightedIntegral2D(g, lambda, func(_, _ int, _, q float64) float64 {
			return numerics.SmoothStep(p.SmoothL, q-aq)
		})
		if err != nil {
			return err
		}
		lowQ, err := numerics.WeightedIntegral2D(g, lambda, func(_, _ int, _, q float64) float64 {
			if q <= aq {
				return q
			}
			return 0
		})
		if err != nil {
			return err
		}
		highQ, err := numerics.WeightedIntegral2D(g, lambda, func(_, _ int, _, q float64) float64 {
			if q > aq {
				return q
			}
			return 0
		})
		if err != nil {
			return err
		}
		a.MeanX[n] = meanX / mass
		a.MeanQ[n] = meanQ / mass
		a.SharerFrac[n] = sharer / mass
		a.MissFrac[n] = miss / mass
		a.LowQ[n] = lowQ / mass
		a.HighQ[n] = highQ / mass
	}
	return nil
}

// shareBenefit is the estimator's Φ̄² = p̄·Δq̄·((1−case3)/sharer − 1) on the
// finite-M mixture aggregates, guarded for an empty sharer population.
func shareBenefit(p mec.Params, deltaQ, case3, sharerFrac float64) float64 {
	if sharerFrac <= 1e-3 {
		return 0
	}
	b := p.SharePrice * deltaQ * ((1-case3)/sharerFrac - 1)
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0
	}
	return b
}

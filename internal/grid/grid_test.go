package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func mustAxis(t *testing.T, min, max float64, n int) Axis {
	t.Helper()
	a, err := NewAxis(min, max, n)
	if err != nil {
		t.Fatalf("NewAxis(%g,%g,%d): %v", min, max, n, err)
	}
	return a
}

func TestAxisBasics(t *testing.T) {
	a := mustAxis(t, 0, 10, 11)
	if got := a.Step(); got != 1 {
		t.Errorf("Step = %g, want 1", got)
	}
	if got := a.At(3); got != 3 {
		t.Errorf("At(3) = %g, want 3", got)
	}
	nodes := a.Nodes()
	if len(nodes) != 11 || nodes[0] != 0 || nodes[10] != 10 {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestAxisValidation(t *testing.T) {
	if _, err := NewAxis(0, 1, 1); err == nil {
		t.Error("N=1 should be rejected")
	}
	if _, err := NewAxis(1, 1, 5); err == nil {
		t.Error("empty range should be rejected")
	}
	if _, err := NewAxis(math.NaN(), 1, 5); err == nil {
		t.Error("NaN bound should be rejected")
	}
	if _, err := NewAxis(0, math.Inf(1), 5); err == nil {
		t.Error("infinite bound should be rejected")
	}
}

func TestAxisLocate(t *testing.T) {
	a := mustAxis(t, 0, 10, 11)
	cases := []struct {
		x     float64
		wantI int
		wantF float64
	}{
		{-5, 0, 0},    // clamped below
		{0, 0, 0},     // exact node
		{2.5, 2, 0.5}, // mid-cell
		{10, 9, 1},    // upper end maps to last cell with f=1
		{15, 9, 1},    // clamped above
	}
	for _, c := range cases {
		i, f := a.Locate(c.x)
		if i != c.wantI || math.Abs(f-c.wantF) > 1e-12 {
			t.Errorf("Locate(%g) = (%d, %g), want (%d, %g)", c.x, i, f, c.wantI, c.wantF)
		}
	}
}

func TestAxisNearestIndex(t *testing.T) {
	a := mustAxis(t, 0, 10, 11)
	if got := a.NearestIndex(3.4); got != 3 {
		t.Errorf("NearestIndex(3.4) = %d, want 3", got)
	}
	if got := a.NearestIndex(3.6); got != 4 {
		t.Errorf("NearestIndex(3.6) = %d, want 4", got)
	}
	if got := a.NearestIndex(-1); got != 0 {
		t.Errorf("NearestIndex(-1) = %d, want 0", got)
	}
	if got := a.NearestIndex(99); got != 10 {
		t.Errorf("NearestIndex(99) = %d, want 10", got)
	}
}

// Property: Locate reconstructs x on in-range points.
func TestAxisLocateReconstruction(t *testing.T) {
	a := mustAxis(t, -3, 7, 23)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		x := a.Clamp(math.Mod(raw, 10))
		i, fr := a.Locate(x)
		rec := a.At(i) + fr*a.Step()
		return math.Abs(rec-x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrid2DIndexing(t *testing.T) {
	g, err := NewGrid2D(mustAxis(t, 0, 1, 3), mustAxis(t, 0, 1, 5))
	if err != nil {
		t.Fatalf("NewGrid2D: %v", err)
	}
	if g.Size() != 15 {
		t.Fatalf("Size = %d, want 15", g.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			idx := g.Idx(i, j)
			gi, gj := g.Coords(idx)
			if gi != i || gj != j {
				t.Fatalf("Coords(Idx(%d,%d)) = (%d,%d)", i, j, gi, gj)
			}
		}
	}
	if got := len(g.NewField()); got != 15 {
		t.Errorf("NewField length %d, want 15", got)
	}
	want := (1.0 / 2.0) * (1.0 / 4.0)
	if got := g.CellArea(); math.Abs(got-want) > 1e-15 {
		t.Errorf("CellArea = %g, want %g", got, want)
	}
}

func TestGrid2DValidation(t *testing.T) {
	bad := Axis{Min: 0, Max: 0, N: 3}
	good := Axis{Min: 0, Max: 1, N: 3}
	if _, err := NewGrid2D(bad, good); err == nil {
		t.Error("bad H axis should be rejected")
	}
	if _, err := NewGrid2D(good, bad); err == nil {
		t.Error("bad Q axis should be rejected")
	}
}

func TestTimeMesh(t *testing.T) {
	tm, err := NewTimeMesh(1, 4)
	if err != nil {
		t.Fatalf("NewTimeMesh: %v", err)
	}
	if tm.Dt() != 0.25 {
		t.Errorf("Dt = %g, want 0.25", tm.Dt())
	}
	times := tm.Times()
	if len(times) != 5 || times[0] != 0 || times[4] != 1 {
		t.Errorf("Times = %v", times)
	}
	if _, err := NewTimeMesh(1, 0); err == nil {
		t.Error("0 steps should be rejected")
	}
	if _, err := NewTimeMesh(-1, 4); err == nil {
		t.Error("negative horizon should be rejected")
	}
	if _, err := NewTimeMesh(math.Inf(1), 4); err == nil {
		t.Error("infinite horizon should be rejected")
	}
}

func TestAxisContainsClamp(t *testing.T) {
	a := mustAxis(t, 2, 4, 5)
	if !a.Contains(3) || a.Contains(1.9) || a.Contains(4.1) {
		t.Error("Contains misbehaves")
	}
	if a.Clamp(0) != 2 || a.Clamp(5) != 4 || a.Clamp(3) != 3 {
		t.Error("Clamp misbehaves")
	}
}

// Package grid defines the uniform 1-D axes, 2-D tensor grids and time meshes
// on which the HJB and FPK equations of the MFG-CP framework are discretised.
//
// The generic EDP state in the paper is S = (h, q): channel fading coefficient
// h and remaining cache space q. Fields over the state space (value function
// V, mean-field density λ, control x*) are stored as flattened row-major
// slices indexed by Grid2D.Idx.
package grid

import (
	"fmt"
	"math"
)

// Axis is a uniform 1-D grid with N nodes spanning [Min, Max] inclusive.
type Axis struct {
	Min, Max float64
	N        int
}

// NewAxis builds an axis and validates its parameters.
func NewAxis(min, max float64, n int) (Axis, error) {
	a := Axis{Min: min, Max: max, N: n}
	if err := a.Validate(); err != nil {
		return Axis{}, err
	}
	return a, nil
}

// Validate reports whether the axis is well formed.
func (a Axis) Validate() error {
	if a.N < 2 {
		return fmt.Errorf("grid: axis needs at least 2 nodes, got %d", a.N)
	}
	if !(a.Max > a.Min) {
		return fmt.Errorf("grid: axis range [%g, %g] is empty", a.Min, a.Max)
	}
	if math.IsNaN(a.Min) || math.IsNaN(a.Max) || math.IsInf(a.Min, 0) || math.IsInf(a.Max, 0) {
		return fmt.Errorf("grid: axis bounds must be finite, got [%g, %g]", a.Min, a.Max)
	}
	return nil
}

// Step returns the node spacing.
func (a Axis) Step() float64 { return (a.Max - a.Min) / float64(a.N-1) }

// At returns the coordinate of node i. Nodes outside [0, N-1] extrapolate
// linearly, which is convenient for ghost-node boundary reasoning.
func (a Axis) At(i int) float64 { return a.Min + float64(i)*a.Step() }

// Nodes materialises all node coordinates.
func (a Axis) Nodes() []float64 {
	out := make([]float64, a.N)
	for i := range out {
		out[i] = a.At(i)
	}
	return out
}

// Clamp restricts x to [Min, Max].
func (a Axis) Clamp(x float64) float64 {
	if x < a.Min {
		return a.Min
	}
	if x > a.Max {
		return a.Max
	}
	return x
}

// Locate returns the cell index i and fractional offset f in [0, 1] such that
// x ≈ At(i) + f*Step(), with x clamped to the axis range first. The returned
// i is always in [0, N-2] so (i, i+1) is a valid interpolation pair.
func (a Axis) Locate(x float64) (i int, f float64) {
	x = a.Clamp(x)
	t := (x - a.Min) / a.Step()
	i = int(math.Floor(t))
	if i > a.N-2 {
		i = a.N - 2
	}
	if i < 0 {
		i = 0
	}
	f = t - float64(i)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return i, f
}

// NearestIndex returns the index of the node closest to x.
func (a Axis) NearestIndex(x float64) int {
	i, f := a.Locate(x)
	if f > 0.5 {
		return i + 1
	}
	return i
}

// Contains reports whether x lies within the axis range (inclusive).
func (a Axis) Contains(x float64) bool { return x >= a.Min && x <= a.Max }

// Grid2D is the tensor product of a channel axis H and a cache axis Q.
// Fields are flattened row-major with h as the slow index:
// value(i,j) = field[i*Q.N + j] for h index i and q index j.
type Grid2D struct {
	H, Q Axis
}

// NewGrid2D builds a 2-D grid and validates both axes.
func NewGrid2D(h, q Axis) (Grid2D, error) {
	if err := h.Validate(); err != nil {
		return Grid2D{}, fmt.Errorf("grid: H axis: %w", err)
	}
	if err := q.Validate(); err != nil {
		return Grid2D{}, fmt.Errorf("grid: Q axis: %w", err)
	}
	return Grid2D{H: h, Q: q}, nil
}

// Size returns the total number of nodes.
func (g Grid2D) Size() int { return g.H.N * g.Q.N }

// Idx flattens (i, j) — h index i, q index j — into the storage index.
func (g Grid2D) Idx(i, j int) int { return i*g.Q.N + j }

// Coords inverts Idx.
func (g Grid2D) Coords(idx int) (i, j int) { return idx / g.Q.N, idx % g.Q.N }

// NewField allocates a zeroed flattened field over the grid.
func (g Grid2D) NewField() []float64 { return make([]float64, g.Size()) }

// CellArea returns the area element dh*dq used by 2-D quadrature.
func (g Grid2D) CellArea() float64 { return g.H.Step() * g.Q.Step() }

// TimeMesh is a uniform partition of [0, Horizon] into Steps intervals,
// i.e. Steps+1 node times t_0=0 … t_Steps=Horizon.
type TimeMesh struct {
	Horizon float64
	Steps   int
}

// NewTimeMesh builds a time mesh and validates it.
func NewTimeMesh(horizon float64, steps int) (TimeMesh, error) {
	if steps < 1 {
		return TimeMesh{}, fmt.Errorf("grid: time mesh needs at least 1 step, got %d", steps)
	}
	if !(horizon > 0) || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return TimeMesh{}, fmt.Errorf("grid: horizon must be positive and finite, got %g", horizon)
	}
	return TimeMesh{Horizon: horizon, Steps: steps}, nil
}

// Dt returns the time step.
func (m TimeMesh) Dt() float64 { return m.Horizon / float64(m.Steps) }

// At returns node time t_n.
func (m TimeMesh) At(n int) float64 { return float64(n) * m.Dt() }

// Times materialises all Steps+1 node times.
func (m TimeMesh) Times() []float64 {
	out := make([]float64, m.Steps+1)
	for n := range out {
		out[n] = m.At(n)
	}
	return out
}

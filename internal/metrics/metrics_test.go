package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries("a", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	s, err := NewSeries("a", []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Last() != 4 {
		t.Errorf("Len/Last wrong: %d/%g", s.Len(), s.Last())
	}
	empty := Series{}
	if !math.IsNaN(empty.Last()) {
		t.Error("empty Last should be NaN")
	}
}

func TestDownsample(t *testing.T) {
	times := make([]float64, 10)
	vals := make([]float64, 10)
	for i := range times {
		times[i] = float64(i)
		vals[i] = float64(i * i)
	}
	s, err := NewSeries("x", times, vals)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Downsample(3)
	// Keeps 0,3,6,9 — the last point (9) lands on the stride.
	if d.Len() != 4 {
		t.Fatalf("downsampled to %d points: %v", d.Len(), d.Times)
	}
	if d.Values[d.Len()-1] != 81 {
		t.Error("last point must be kept")
	}
	// Stride not dividing length still keeps the last point.
	d = s.Downsample(4)
	if d.Values[d.Len()-1] != 81 {
		t.Error("last point must be kept for non-dividing stride")
	}
	if got := s.Downsample(1); got.Len() != s.Len() {
		t.Error("stride 1 should be identity")
	}
}

func TestSeriesSetCSV(t *testing.T) {
	set := &SeriesSet{Title: "t", XLabel: "time", YLabel: "v"}
	a, _ := NewSeries("a", []float64{0, 1}, []float64{10, 20})
	b, _ := NewSeries("b", []float64{0, 1, 2}, []float64{1, 2, 3})
	set.Add(a)
	set.Add(b)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4: %q", len(lines), buf.String())
	}
	if lines[0] != "time,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[3] != "2,,3" {
		t.Errorf("padded row = %q, want \"2,,3\"", lines[3])
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	if err := tab.AddRow("alpha", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddFloatRow("beta", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("a", "b", "c"); err == nil {
		t.Error("over-long row should error")
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5000") {
		t.Errorf("render missing content:\n%s", out)
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "name,value\n") {
		t.Errorf("CSV header wrong: %q", buf.String())
	}
}

func TestTableShortRowPads(t *testing.T) {
	tab := NewTable("t", "a", "b", "c")
	if err := tab.AddRow("only"); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows[0]) != 3 {
		t.Errorf("short row not padded: %v", tab.Rows[0])
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Error("Ratio(10,4) wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("division by zero should be NaN")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline has %d runes", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should give empty sparkline")
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("constant series = %q", got)
	}
	if got := Sparkline([]float64{math.NaN(), 1}); []rune(got)[0] != '?' {
		t.Errorf("NaN should render '?': %q", got)
	}
	all := Sparkline([]float64{math.NaN(), math.NaN()})
	if all != "??" {
		t.Errorf("all-NaN should be ??: %q", all)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(3); got != "3" {
		t.Errorf("formatFloat(3) = %q", got)
	}
	if got := formatFloat(3.14159); !strings.HasPrefix(got, "3.14") {
		t.Errorf("formatFloat(3.14159) = %q", got)
	}
}

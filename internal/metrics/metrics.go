// Package metrics provides the reporting primitives shared by the experiment
// runners: labelled time series, ASCII tables and CSV export. Every figure
// and table of the paper is regenerated as one of these artefacts.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one labelled curve: Times[i] ↦ Values[i].
type Series struct {
	Label  string
	Times  []float64
	Values []float64
}

// NewSeries builds a series and validates the lengths.
func NewSeries(label string, times, values []float64) (Series, error) {
	if len(times) != len(values) {
		return Series{}, fmt.Errorf("metrics: series %q: %d times vs %d values", label, len(times), len(values))
	}
	return Series{Label: label, Times: times, Values: values}, nil
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.Values) }

// Last returns the final value, or NaN for an empty series.
func (s Series) Last() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	return s.Values[len(s.Values)-1]
}

// Downsample keeps every stride-th point (always including the last), making
// text reports readable without losing the curve's shape.
func (s Series) Downsample(stride int) Series {
	if stride <= 1 || s.Len() == 0 {
		return s
	}
	out := Series{Label: s.Label}
	for i := 0; i < s.Len(); i += stride {
		out.Times = append(out.Times, s.Times[i])
		out.Values = append(out.Values, s.Values[i])
	}
	if last := s.Len() - 1; last%stride != 0 {
		out.Times = append(out.Times, s.Times[last])
		out.Values = append(out.Values, s.Values[last])
	}
	return out
}

// SeriesSet is a group of curves sharing an x-axis meaning (e.g. one per
// parameter value in a sweep figure).
type SeriesSet struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a curve.
func (ss *SeriesSet) Add(s Series) { ss.Series = append(ss.Series, s) }

// WriteCSV emits the set as a wide CSV: time column plus one column per
// series. Series are sampled at their own indices; shorter series pad with
// empty cells.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{ss.XLabel}
	maxLen := 0
	for _, s := range ss.Series {
		header = append(header, s.Label)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: write CSV header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < maxLen; i++ {
		for c := range row {
			row[c] = ""
		}
		for si, s := range ss.Series {
			if i < s.Len() {
				if row[0] == "" {
					row[0] = formatFloat(s.Times[i])
				}
				row[si+1] = formatFloat(s.Values[i])
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Table is a simple labelled grid for the paper's tables and bar figures.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable builds an empty table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows pad with empty cells, long rows error.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.Columns) {
		return fmt.Errorf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return nil
}

// AddFloatRow appends a row of a label plus formatted numbers.
func (t *Table) AddFloatRow(label string, vals ...float64) error {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.4f", v))
	}
	return t.AddRow(cells...)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("metrics: write table header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write table row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ratio returns a/b guarded against division by ~zero (returns NaN).
func Ratio(a, b float64) float64 {
	if math.Abs(b) < 1e-12 {
		return math.NaN()
	}
	return a / b
}

// Sparkline renders values as a unicode mini-chart, used by the CLI reports
// to convey curve shapes in plain text.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat("?", len(values))
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteRune('?')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

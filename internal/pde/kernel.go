package pde

import (
	"fmt"

	"repro/internal/linalg"
)

// Kernel precision names, as spelled in configs and CLI flags.
const (
	// PrecisionFloat64 is the default kernel precision: bit-exact against the
	// historical serial solver at every worker count.
	PrecisionFloat64 = "float64"
	// PrecisionFloat32 is the opt-in fast path: the tridiagonal sweeps run in
	// single precision (half the memory traffic), while control, source and
	// aggregation arithmetic stay in float64. Implicit scheme only; the
	// accuracy contract is enforced by the verify layer's precision
	// differential harness.
	PrecisionFloat32 = "float32"
)

// PrecisionNames lists the selectable kernel precisions (for CLI help and
// validation messages).
func PrecisionNames() []string { return []string{PrecisionFloat64, PrecisionFloat32} }

// KernelConfig tunes how the PDE sweeps execute without changing what they
// compute: Workers bounds the parallelism of the line sweeps, Precision
// selects the scalar type of the tridiagonal kernels. The zero value is the
// serial float64 kernel.
type KernelConfig struct {
	// Workers bounds the goroutines used per sweep phase. 0 and 1 run
	// serially; values above the per-phase line count are clamped. Workers
	// beyond GOMAXPROCS add no throughput (they time-slice), but they are
	// permitted so the parallel paths stay exercisable on small machines.
	// Because every line is computed by the same per-line operations
	// regardless of the partition, results are bit-identical across all
	// worker counts.
	Workers int
	// Precision is "" or "float64" (default) or "float32" (opt-in fast path,
	// implicit scheme only).
	Precision string
}

// Validate checks the kernel configuration.
func (kc KernelConfig) Validate() error {
	if kc.Workers < 0 {
		return fmt.Errorf("pde: kernel workers must be ≥ 0, got %d", kc.Workers)
	}
	switch kc.Precision {
	case "", PrecisionFloat64, PrecisionFloat32:
	default:
		return fmt.Errorf("pde: unknown kernel precision %q (want %q or %q)",
			kc.Precision, PrecisionFloat64, PrecisionFloat32)
	}
	return nil
}

// float32Enabled reports whether the float32 fast path is selected.
func (kc KernelConfig) float32Enabled() bool { return kc.Precision == PrecisionFloat32 }

// maxKernelWorkers bounds the sweep-worker fan-out: far above any sensible
// machine, low enough that a misconfigured value cannot spawn an absurd
// goroutine set.
const maxKernelWorkers = 256

// effectiveWorkers resolves the configured worker bound to a concrete count.
func (kc KernelConfig) effectiveWorkers() int {
	w := kc.Workers
	if w < 1 {
		return 1
	}
	if w > maxKernelWorkers {
		return maxKernelWorkers
	}
	return w
}

// Parallel engagement thresholds, in field elements covered by one phase.
// Below them the fan-out overhead (worker wake-up + join, ~1–2 µs) exceeds
// the work being split, so the phase runs serially on the calling goroutine —
// which is always safe, because partitioning never changes the results.
const (
	// parallelMinLineElems gates the per-line phases (q-sweeps, explicit
	// h-sweeps, control/source evaluation): these call model callbacks per
	// element, so they amortise the fan-out quickly.
	parallelMinLineElems = 512
	// parallelMinBatchElems gates the batched interleaved substitution: pure
	// memory-bound arithmetic, worth splitting only for larger fields.
	parallelMinBatchElems = 4096
)

// lineTask is one parallelisable sweep phase: run processes lines [lo, hi)
// as worker w (the index into the per-worker scratch). Implementations must
// touch only per-worker scratch and the disjoint slice ranges their lines
// own, and their per-line arithmetic must not depend on the partition — that
// is what makes worker counts invisible in the results.
type lineTask interface {
	run(w, lo, hi int) error
}

// kernelJob is one dispatch to a parked sweep worker. A nil task tells the
// worker to exit.
type kernelJob struct {
	task   lineTask
	w      int
	lo, hi int
}

// startWorkers parks workers-1 goroutines on the job channel for the duration
// of one solve. The solver entry points pair it with stopWorkers so worker
// lifetime is scoped to the call: nothing leaks when the workspace is
// dropped, and the per-phase dispatch inside the solve is allocation-free.
func (ws *Workspace) startWorkers() {
	if ws.workers <= 1 || ws.active {
		return
	}
	if ws.jobs == nil {
		ws.jobs = make(chan kernelJob, ws.workers)
	}
	if ws.loop == nil {
		// The method value is hoisted into a field because a `go` statement
		// on a method expression allocates a closure per call; spawning a
		// stored func() keeps the per-solve dispatch allocation-free.
		ws.loop = ws.workerLoop
	}
	for w := 1; w < ws.workers; w++ {
		go ws.loop()
	}
	ws.active = true
}

// stopWorkers releases the goroutines parked by startWorkers.
func (ws *Workspace) stopWorkers() {
	if !ws.active {
		return
	}
	for w := 1; w < ws.workers; w++ {
		ws.jobs <- kernelJob{}
	}
	ws.active = false
}

func (ws *Workspace) workerLoop() {
	for {
		j := <-ws.jobs
		if j.task == nil {
			return
		}
		ws.errs[j.w] = j.task.run(j.w, j.lo, j.hi)
		ws.wg.Done()
	}
}

// runParallel partitions lines contiguous lines of elemsPerLine elements
// across the sweep workers and runs the task over them, falling back to a
// serial call when the phase is too small (minElems) or no workers are
// active. Chunk k is lines [k·L/W, (k+1)·L/W): the partition depends only on
// (lines, workers), so a given configuration always splits the same way, and
// the first error in line order wins deterministically.
func (ws *Workspace) runParallel(task lineTask, lines, elemsPerLine, minElems int) error {
	w := ws.workers
	if w > lines {
		w = lines
	}
	if w <= 1 || !ws.active || lines*elemsPerLine < minElems {
		return task.run(0, 0, lines)
	}
	ws.wg.Add(w - 1)
	for k := 1; k < w; k++ {
		ws.jobs <- kernelJob{task: task, w: k, lo: k * lines / w, hi: (k + 1) * lines / w}
	}
	err := task.run(0, 0, lines/w)
	ws.wg.Wait()
	for k := 1; k < w; k++ {
		if err == nil {
			err = ws.errs[k]
		}
		ws.errs[k] = nil
	}
	return err
}

// posPart and negPart are max(x, 0) and min(x, 0) over the kernel scalar
// types. At float64 they reproduce the scheme assembly exactly (the math.Max
// special cases differ only in the sign of zero, which the downstream
// subtraction erases for the non-degenerate diffusions the schemes assemble).
func posPart[T linalg.Float](x T) T {
	if x > 0 {
		return x
	}
	return 0
}

func negPart[T linalg.Float](x T) T {
	if x < 0 {
		return x
	}
	return 0
}

func absT[T linalg.Float](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

// gatherT / scatterT copy a strided line of the float64 field into and out of
// kernel-precision line buffers, converting at the boundary. At T = float64
// the conversion is the identity, so the copies are bit-exact.
func gatherT[T linalg.Float](dst []T, field []float64, start, stride, n int) {
	for i := 0; i < n; i++ {
		dst[i] = T(field[start+i*stride])
	}
}

func scatterT[T linalg.Float](field []float64, src []T, start, stride, n int) {
	for i := 0; i < n; i++ {
		field[start+i*stride] = float64(src[i])
	}
}

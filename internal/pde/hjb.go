package pde

import (
	"errors"
	"fmt"
	"log/slog"

	"repro/internal/grid"
	"repro/internal/numerics"
	"repro/internal/obs"
)

// HJBProblem specifies the backward HJB equation (Eq. 20)
//
//	∂tV + b_h(t,h)·∂hV + b_q(t,x*,h,q)·∂qV + D_h·∂hhV + D_q·∂qqV
//	   + U(t, x*, h, q) = 0,   V(T, ·) = Terminal(·)
//
// where the control x* is eliminated through its closed-form maximiser
// (Theorem 1) evaluated from the current ∂qV estimate. All time-dependent
// model data (price, mean peer cache, workload) is supplied through the
// callbacks, which the MFG layer closes over the mean-field estimator. When
// the workspace is configured with kernel workers > 1, the callbacks are
// invoked concurrently from multiple goroutines within one step: they must be
// pure functions of their arguments and any state they read must not change
// during a solve (the engine's closures satisfy this).
type HJBProblem struct {
	Grid grid.Grid2D
	Time grid.TimeMesh

	// DiffH and DiffQ are the diffusion coefficients ½ϱh² and ½ϱq².
	DiffH, DiffQ float64

	// DriftH is the channel drift ½ςh(υh−h); it does not depend on control.
	DriftH func(t, h float64) float64
	// DriftQ is the remaining-space drift Qk[−w1x − w2Π + w3ξ^L].
	DriftQ func(t, x float64) float64
	// Control is the closed-form optimal caching rate of Eq. (21) given the
	// current estimate of ∂qV. It must return a value in [0, 1].
	Control func(t, h, q, dVdq float64) float64
	// Running is the instantaneous utility U(t, x, h, q) under the current
	// mean field.
	Running func(t, x, h, q float64) float64
	// Terminal is the scrap value V(T, h, q); the paper uses zero.
	Terminal func(h, q float64) float64

	// Stepping selects implicit (default, unconditionally stable) or
	// explicit (CFL-bounded, ablation) time integration.
	Stepping Stepping

	// Obs receives solve/sweep telemetry ("pde.hjb.*" names); nil means
	// no-op. The MFG layer threads core.Config.Obs through here.
	Obs obs.Recorder
}

// Validate checks that the problem is completely specified.
func (p *HJBProblem) Validate() error {
	if p.DriftH == nil || p.DriftQ == nil || p.Control == nil || p.Running == nil {
		return errors.New("pde: HJBProblem: DriftH, DriftQ, Control and Running are all required")
	}
	if p.DiffH < 0 || p.DiffQ < 0 {
		return fmt.Errorf("pde: HJBProblem: diffusion coefficients must be non-negative, got %g, %g", p.DiffH, p.DiffQ)
	}
	if err := p.Grid.H.Validate(); err != nil {
		return err
	}
	if err := p.Grid.Q.Validate(); err != nil {
		return err
	}
	if p.Time.Steps < 1 {
		return fmt.Errorf("pde: HJBProblem: time mesh needs ≥1 step, got %d", p.Time.Steps)
	}
	if p.Stepping != Implicit && p.Stepping != Explicit {
		return fmt.Errorf("pde: HJBProblem: unknown stepping %d", int(p.Stepping))
	}
	return nil
}

// HJBSolution stores the value function and optimal control on every time
// node: V[n] and X[n] are flattened fields at t_n = n·dt. X[Steps] equals
// X[Steps-1] (the control on the final interval).
type HJBSolution struct {
	Grid grid.Grid2D
	Time grid.TimeMesh
	V    [][]float64
	X    [][]float64
}

// ValueAt bilinearly interpolates V at (t, h, q).
func (s *HJBSolution) ValueAt(t, h, q float64) (float64, error) {
	n := s.timeIndex(t)
	return numerics.InterpBilinear(s.Grid, s.V[n], h, q)
}

// ControlAt bilinearly interpolates the optimal caching rate at (t, h, q),
// clamped to [0, 1].
func (s *HJBSolution) ControlAt(t, h, q float64) (float64, error) {
	n := s.timeIndex(t)
	x, err := numerics.InterpBilinear(s.Grid, s.X[n], h, q)
	if err != nil {
		return 0, err
	}
	return numerics.Clamp01(x), nil
}

func (s *HJBSolution) timeIndex(t float64) int {
	dt := s.Time.Dt()
	n := int(t/dt + 0.5)
	if n < 0 {
		n = 0
	}
	if n > s.Time.Steps {
		n = s.Time.Steps
	}
	return n
}

// NewHJBSolution preallocates a solution holder (every time level of V and X
// gets its own field) so repeated solves on the same mesh can reuse it via
// SolveHJBInto without allocating.
func NewHJBSolution(g grid.Grid2D, tm grid.TimeMesh) *HJBSolution {
	sol := &HJBSolution{
		Grid: g,
		Time: tm,
		V:    make([][]float64, tm.Steps+1),
		X:    make([][]float64, tm.Steps+1),
	}
	for n := range sol.V {
		sol.V[n] = g.NewField()
		sol.X[n] = g.NewField()
	}
	return sol
}

// sized reports whether the solution holder matches the problem's grid and
// time mesh.
func (s *HJBSolution) sized(g grid.Grid2D, tm grid.TimeMesh) bool {
	return s != nil && s.Grid == g && s.Time.Steps == tm.Steps &&
		len(s.V) == tm.Steps+1 && len(s.X) == tm.Steps+1
}

// SolveHJB integrates the HJB equation backward from t = T to t = 0 with Lie
// operator splitting: at each step the control is frozen at its closed-form
// maximiser computed from ∂qV of the later time level, the running utility is
// added explicitly, and the advection–diffusion operators in h and q are
// applied per the scheme selected by p.Stepping (implicitly by default: one
// tridiagonal solve per grid line each, unconditionally stable and monotone).
func SolveHJB(p *HJBProblem) (*HJBSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ws, err := NewWorkspace(p.Grid)
	if err != nil {
		return nil, err
	}
	sol := NewHJBSolution(p.Grid, p.Time)
	if err := SolveHJBInto(ws, nil, p, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// SolveHJBInto is the allocation-free core of SolveHJB: it integrates the
// problem backward through the time mesh using the given scheme (nil derives
// one from p.Stepping), reusing the workspace buffers and writing every time
// level into the preallocated solution. Steady-state callers (the engine
// session) construct workspace and solution once and call this per
// best-response iteration with zero heap allocations.
func SolveHJBInto(ws *Workspace, sch Scheme, p *HJBProblem, sol *HJBSolution) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if sch == nil {
		var err error
		if sch, err = SchemeFor(p.Stepping); err != nil {
			return err
		}
	}
	g := p.Grid
	if !ws.fits(g) {
		return fmt.Errorf("pde: SolveHJBInto: workspace sized for %dx%d, problem grid is %dx%d",
			ws.g.H.N, ws.g.Q.N, g.H.N, g.Q.N)
	}
	if ws.kc.float32Enabled() && sch.Stepping() != Implicit {
		return errors.New("pde: the float32 kernel supports the implicit scheme only")
	}
	if !sol.sized(g, p.Time) {
		return errors.New("pde: SolveHJBInto: solution holder does not match the problem mesh (use NewHJBSolution)")
	}
	nh, nq := g.H.N, g.Q.N
	steps := p.Time.Steps
	dt := p.Time.Dt()

	ws.startWorkers()
	defer ws.stopWorkers()

	rec := obs.OrNop(p.Obs)
	span := rec.Start("pde.hjb.solve")

	// Terminal condition (the holder is reused, so always overwrite).
	vT := sol.V[steps]
	for i := 0; i < nh; i++ {
		for j := 0; j < nq; j++ {
			if p.Terminal != nil {
				vT[g.Idx(i, j)] = p.Terminal(g.H.At(i), g.Q.At(j))
			} else {
				vT[g.Idx(i, j)] = 0
			}
		}
	}

	for n := steps - 1; n >= 0; n-- {
		t := p.Time.At(n)
		vNext := sol.V[n+1]

		// 1. Closed-form control from ∂qV at the later time level, evaluated
		// per h-row across the sweep workers.
		if err := numerics.GradientQ(g, ws.grad, vNext); err != nil {
			return err
		}
		x := sol.X[n]
		ws.ctlTask = controlTask{p: p, g: g, t: t, x: x, grad: ws.grad}
		if err := ws.runParallel(&ws.ctlTask, nh, nq, parallelMinLineElems); err != nil {
			return err
		}

		// 2. Explicit source: W = V^{n+1} + dt·U(t, x*, ·), same partition.
		ws.srcTask = sourceTask{p: p, g: g, t: t, dt: dt, x: x, vNext: vNext, work: ws.work}
		if err := ws.runParallel(&ws.srcTask, nh, nq, parallelMinLineElems); err != nil {
			return err
		}

		// 3–4. Scheme-split sweeps in h (in place on work) then q (into V[n]).
		if err := sch.StepBackward(ws, p, t, x, ws.work, sol.V[n]); err != nil {
			return err
		}
	}
	copy(sol.X[steps], sol.X[steps-1])
	rec.Add("pde.hjb.solves", 1)
	rec.Add("pde.kernel.workers", float64(ws.workers))
	rec.Add("pde.hjb.steps", float64(steps))
	if rec.Enabled() {
		span.End(slog.Int("steps", steps), slog.Int("nh", nh), slog.Int("nq", nq))
	} else {
		span.End()
	}
	return nil
}

// controlTask evaluates the closed-form control over h-row ranges: every
// element is an independent pure-callback evaluation, so rows partition
// freely across the sweep workers without changing any value.
type controlTask struct {
	p       *HJBProblem
	g       grid.Grid2D
	t       float64
	x, grad []float64
}

func (tk *controlTask) run(_, lo, hi int) error {
	g := tk.g
	for i := lo; i < hi; i++ {
		h := g.H.At(i)
		for j := 0; j < g.Q.N; j++ {
			idx := g.Idx(i, j)
			tk.x[idx] = numerics.Clamp01(tk.p.Control(tk.t, h, g.Q.At(j), tk.grad[idx]))
		}
	}
	return nil
}

// sourceTask evaluates the explicit running-utility source over h-row ranges.
type sourceTask struct {
	p              *HJBProblem
	g              grid.Grid2D
	t, dt          float64
	x, vNext, work []float64
}

func (tk *sourceTask) run(_, lo, hi int) error {
	g := tk.g
	for i := lo; i < hi; i++ {
		h := g.H.At(i)
		for j := 0; j < g.Q.N; j++ {
			idx := g.Idx(i, j)
			tk.work[idx] = tk.vNext[idx] + tk.dt*tk.p.Running(tk.t, tk.x[idx], h, g.Q.At(j))
		}
	}
	return nil
}

package pde

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/grid"
	"repro/internal/numerics"
	"repro/internal/obs"
)

// HJBProblem specifies the backward HJB equation (Eq. 20)
//
//	∂tV + b_h(t,h)·∂hV + b_q(t,x*,h,q)·∂qV + D_h·∂hhV + D_q·∂qqV
//	   + U(t, x*, h, q) = 0,   V(T, ·) = Terminal(·)
//
// where the control x* is eliminated through its closed-form maximiser
// (Theorem 1) evaluated from the current ∂qV estimate. All time-dependent
// model data (price, mean peer cache, workload) is supplied through the
// callbacks, which the MFG layer closes over the mean-field estimator.
type HJBProblem struct {
	Grid grid.Grid2D
	Time grid.TimeMesh

	// DiffH and DiffQ are the diffusion coefficients ½ϱh² and ½ϱq².
	DiffH, DiffQ float64

	// DriftH is the channel drift ½ςh(υh−h); it does not depend on control.
	DriftH func(t, h float64) float64
	// DriftQ is the remaining-space drift Qk[−w1x − w2Π + w3ξ^L].
	DriftQ func(t, x float64) float64
	// Control is the closed-form optimal caching rate of Eq. (21) given the
	// current estimate of ∂qV. It must return a value in [0, 1].
	Control func(t, h, q, dVdq float64) float64
	// Running is the instantaneous utility U(t, x, h, q) under the current
	// mean field.
	Running func(t, x, h, q float64) float64
	// Terminal is the scrap value V(T, h, q); the paper uses zero.
	Terminal func(h, q float64) float64

	// Stepping selects implicit (default, unconditionally stable) or
	// explicit (CFL-bounded, ablation) time integration.
	Stepping Stepping

	// Obs receives solve/sweep telemetry ("pde.hjb.*" names); nil means
	// no-op. The MFG layer threads core.Config.Obs through here.
	Obs obs.Recorder
}

// Validate checks that the problem is completely specified.
func (p *HJBProblem) Validate() error {
	if p.DriftH == nil || p.DriftQ == nil || p.Control == nil || p.Running == nil {
		return errors.New("pde: HJBProblem: DriftH, DriftQ, Control and Running are all required")
	}
	if p.DiffH < 0 || p.DiffQ < 0 {
		return fmt.Errorf("pde: HJBProblem: diffusion coefficients must be non-negative, got %g, %g", p.DiffH, p.DiffQ)
	}
	if err := p.Grid.H.Validate(); err != nil {
		return err
	}
	if err := p.Grid.Q.Validate(); err != nil {
		return err
	}
	if p.Time.Steps < 1 {
		return fmt.Errorf("pde: HJBProblem: time mesh needs ≥1 step, got %d", p.Time.Steps)
	}
	if p.Stepping != Implicit && p.Stepping != Explicit {
		return fmt.Errorf("pde: HJBProblem: unknown stepping %d", int(p.Stepping))
	}
	return nil
}

// HJBSolution stores the value function and optimal control on every time
// node: V[n] and X[n] are flattened fields at t_n = n·dt. X[Steps] equals
// X[Steps-1] (the control on the final interval).
type HJBSolution struct {
	Grid grid.Grid2D
	Time grid.TimeMesh
	V    [][]float64
	X    [][]float64
}

// ValueAt bilinearly interpolates V at (t, h, q).
func (s *HJBSolution) ValueAt(t, h, q float64) (float64, error) {
	n := s.timeIndex(t)
	return numerics.InterpBilinear(s.Grid, s.V[n], h, q)
}

// ControlAt bilinearly interpolates the optimal caching rate at (t, h, q),
// clamped to [0, 1].
func (s *HJBSolution) ControlAt(t, h, q float64) (float64, error) {
	n := s.timeIndex(t)
	x, err := numerics.InterpBilinear(s.Grid, s.X[n], h, q)
	if err != nil {
		return 0, err
	}
	return numerics.Clamp01(x), nil
}

func (s *HJBSolution) timeIndex(t float64) int {
	dt := s.Time.Dt()
	n := int(t/dt + 0.5)
	if n < 0 {
		n = 0
	}
	if n > s.Time.Steps {
		n = s.Time.Steps
	}
	return n
}

// SolveHJB integrates the HJB equation backward from t = T to t = 0 with Lie
// operator splitting: at each step the control is frozen at its closed-form
// maximiser computed from ∂qV of the later time level, the running utility is
// added explicitly, and the advection–diffusion operators in h and q are
// applied implicitly (one tridiagonal solve per grid line each). The scheme
// is unconditionally stable and monotone.
func SolveHJB(p *HJBProblem) (*HJBSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid
	nh, nq := g.H.N, g.Q.N
	steps := p.Time.Steps
	dt := p.Time.Dt()

	rec := obs.OrNop(p.Obs)
	timed := rec.Enabled()
	span := rec.Start("pde.hjb.solve")

	sol := &HJBSolution{
		Grid: g,
		Time: p.Time,
		V:    make([][]float64, steps+1),
		X:    make([][]float64, steps+1),
	}

	// Terminal condition.
	vT := g.NewField()
	if p.Terminal != nil {
		for i := 0; i < nh; i++ {
			for j := 0; j < nq; j++ {
				vT[g.Idx(i, j)] = p.Terminal(g.H.At(i), g.Q.At(j))
			}
		}
	}
	sol.V[steps] = vT

	swH := newSweeper(nh)
	swQ := newSweeper(nq)
	grad := g.NewField()
	work := g.NewField()

	for n := steps - 1; n >= 0; n-- {
		t := p.Time.At(n)
		vNext := sol.V[n+1]

		// 1. Closed-form control from ∂qV at the later time level.
		if err := numerics.GradientQ(g, grad, vNext); err != nil {
			return nil, err
		}
		x := g.NewField()
		for i := 0; i < nh; i++ {
			h := g.H.At(i)
			for j := 0; j < nq; j++ {
				idx := g.Idx(i, j)
				x[idx] = numerics.Clamp01(p.Control(t, h, g.Q.At(j), grad[idx]))
			}
		}
		sol.X[n] = x

		// 2. Explicit source: W = V^{n+1} + dt·U(t, x*, ·).
		for i := 0; i < nh; i++ {
			h := g.H.At(i)
			for j := 0; j < nq; j++ {
				idx := g.Idx(i, j)
				work[idx] = vNext[idx] + dt*p.Running(t, x[idx], h, g.Q.At(j))
			}
		}

		// 3. Sweep in h (stride nq) for every q-column.
		var sweepStart time.Time
		if timed {
			sweepStart = time.Now()
		}
		for j := 0; j < nq; j++ {
			gather(swH.rhs, work, j, nq, nh)
			for i := 0; i < nh; i++ {
				swH.b[i] = p.DriftH(t, g.H.At(i))
			}
			var err error
			if p.Stepping == Explicit {
				err = cflError(swH.explicitBackwardValue(dt, g.H.Step(), p.DiffH), steps)
			} else {
				err = swH.solveBackwardValue(dt, g.H.Step(), p.DiffH)
			}
			if err != nil {
				return nil, fmt.Errorf("pde: HJB h-sweep at step %d, column %d: %w", n, j, err)
			}
			scatter(work, swH.sol, j, nq, nh)
		}
		rec.Add("pde.hjb.sweeps", float64(nq))
		if timed {
			rec.Observe("pde.hjb.sweep.h.seconds", time.Since(sweepStart).Seconds())
			sweepStart = time.Now()
		}

		// 4. Sweep in q (stride 1) for every h-row.
		vn := g.NewField()
		for i := 0; i < nh; i++ {
			start := i * nq
			gather(swQ.rhs, work, start, 1, nq)
			for j := 0; j < nq; j++ {
				swQ.b[j] = p.DriftQ(t, x[start+j])
			}
			var err error
			if p.Stepping == Explicit {
				err = cflError(swQ.explicitBackwardValue(dt, g.Q.Step(), p.DiffQ), steps)
			} else {
				err = swQ.solveBackwardValue(dt, g.Q.Step(), p.DiffQ)
			}
			if err != nil {
				return nil, fmt.Errorf("pde: HJB q-sweep at step %d, row %d: %w", n, i, err)
			}
			scatter(vn, swQ.sol, start, 1, nq)
		}
		rec.Add("pde.hjb.sweeps", float64(nh))
		if timed {
			rec.Observe("pde.hjb.sweep.q.seconds", time.Since(sweepStart).Seconds())
		}
		sol.V[n] = vn
	}
	sol.X[steps] = sol.X[steps-1]
	rec.Add("pde.hjb.solves", 1)
	rec.Add("pde.hjb.steps", float64(steps))
	span.End(slog.Int("steps", steps), slog.Int("nh", nh), slog.Int("nq", nq))
	return sol, nil
}

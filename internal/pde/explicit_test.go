package pde

import (
	"errors"
	"math"
	"testing"

	"repro/internal/grid"
)

// The explicit conservative scheme agrees with the implicit scheme on a
// CFL-satisfying mesh, within the first-order-in-time discrepancy.
func TestExplicitMatchesImplicitFPK(t *testing.T) {
	g := testGrid(t, 9, 41)
	init := gaussianInit(t, g)
	run := func(stepping Stepping, steps int) *FPKSolution {
		p := &FPKProblem{
			Grid:     g,
			Time:     testMesh(t, 0.5, steps),
			DiffH:    0.01,
			DiffQ:    0.01,
			DriftH:   func(_, h float64) float64 { return 0.3 * (0.5 - h) },
			DriftQ:   func(_, _, q float64) float64 { return 0.5 * (0.4 - q) },
			Form:     Conservative,
			Stepping: stepping,
		}
		sol, err := SolveFPK(p, init)
		if err != nil {
			t.Fatalf("stepping %d: %v", stepping, err)
		}
		return sol
	}
	const steps = 4000 // fine mesh so both schemes are near the exact solution
	imp := run(Implicit, steps)
	exp := run(Explicit, steps)
	var worst float64
	last := len(imp.Lambda) - 1
	for k := range imp.Lambda[last] {
		if d := math.Abs(imp.Lambda[last][k] - exp.Lambda[last][k]); d > worst {
			worst = d
		}
	}
	// Densities peak around 10–15 on this grid; 1% agreement suffices.
	if worst > 0.15 {
		t.Errorf("implicit and explicit final densities differ by %g", worst)
	}
}

// The explicit scheme conserves mass exactly too (telescoping fluxes).
func TestExplicitFPKMassConservation(t *testing.T) {
	g := testGrid(t, 9, 21)
	p := &FPKProblem{
		Grid:     g,
		Time:     testMesh(t, 0.2, 2000),
		DiffH:    0.01,
		DiffQ:    0.01,
		DriftH:   func(_, _ float64) float64 { return 0 },
		DriftQ:   func(_, _, q float64) float64 { return math.Sin(4 * q) },
		Form:     Conservative,
		Stepping: Explicit,
	}
	sol, err := SolveFPK(p, gaussianInit(t, g))
	if err != nil {
		t.Fatal(err)
	}
	m0 := sol.Mass(0)
	for n := range sol.Lambda {
		if math.Abs(sol.Mass(n)-m0) > 1e-9 {
			t.Fatalf("mass drifted at step %d: %g vs %g", n, sol.Mass(n), m0)
		}
	}
}

// A too-coarse time mesh must be rejected with ErrCFLViolation, and the error
// must suggest a sufficient step count.
func TestExplicitFPKCFLViolation(t *testing.T) {
	g := testGrid(t, 5, 41)
	p := &FPKProblem{
		Grid:     g,
		Time:     testMesh(t, 1, 10), // far too few steps for dx=1/40, D=0.05
		DiffQ:    0.05,
		DriftH:   func(_, _ float64) float64 { return 0 },
		DriftQ:   func(_, _, _ float64) float64 { return 1 },
		Form:     Conservative,
		Stepping: Explicit,
	}
	_, err := SolveFPK(p, gaussianInit(t, g))
	if err == nil {
		t.Fatal("expected CFL violation")
	}
	var cfl *ErrCFLViolation
	if !errors.As(err, &cfl) {
		t.Fatalf("error %v is not an ErrCFLViolation", err)
	}
	if cfl.Ratio <= 1 {
		t.Errorf("reported ratio %g should exceed 1", cfl.Ratio)
	}
	if cfl.NeedSteps <= 10 {
		t.Errorf("suggested steps %d should exceed the configured 10", cfl.NeedSteps)
	}
	// The suggestion should actually be stable.
	p.Time = grid.TimeMesh{Horizon: 1, Steps: cfl.NeedSteps + 1}
	if _, err := SolveFPK(p, gaussianInit(t, g)); err != nil {
		t.Errorf("suggested step count still unstable: %v", err)
	}
}

func TestExplicitRejectsAdvectiveForm(t *testing.T) {
	g := testGrid(t, 5, 5)
	p := &FPKProblem{
		Grid:     g,
		Time:     testMesh(t, 1, 100),
		DriftH:   func(_, _ float64) float64 { return 0 },
		DriftQ:   func(_, _, _ float64) float64 { return 0 },
		Form:     Advective,
		Stepping: Explicit,
	}
	if _, err := SolveFPK(p, gaussianInit(t, g)); err == nil {
		t.Error("explicit + advective should be rejected")
	}
	p.Stepping = Stepping(99)
	p.Form = Conservative
	if _, err := SolveFPK(p, gaussianInit(t, g)); err == nil {
		t.Error("unknown stepping should be rejected")
	}
}

// The explicit HJB integrator reproduces the constant-utility solution and
// flags CFL violations.
func TestExplicitHJB(t *testing.T) {
	g := testGrid(t, 5, 5)
	p := &HJBProblem{
		Grid:     g,
		Time:     testMesh(t, 2, 400),
		DiffH:    0.001,
		DiffQ:    0.001,
		DriftH:   func(_, _ float64) float64 { return 0 },
		DriftQ:   func(_, _ float64) float64 { return 0 },
		Control:  func(_, _, _, _ float64) float64 { return 0 },
		Running:  func(_, _, _, _ float64) float64 { return 3 },
		Stepping: Explicit,
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range sol.V[0] {
		if math.Abs(v-6) > 1e-9 {
			t.Fatalf("V(0)[%d] = %g, want 6", k, v)
		}
	}
	p.DiffQ = 10 // forces dt > CFL bound
	if _, err := SolveHJB(p); err == nil {
		t.Error("expected CFL violation in the HJB")
	}
	p.DiffQ = 0.001
	p.Stepping = Stepping(99)
	if _, err := SolveHJB(p); err == nil {
		t.Error("unknown stepping should be rejected")
	}
}

// Explicit and implicit HJB agree on a smooth advection-diffusion problem
// when both use a fine time mesh.
func TestExplicitMatchesImplicitHJB(t *testing.T) {
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: 3},
		grid.Axis{Min: 0, Max: 1, N: 41},
	)
	if err != nil {
		t.Fatal(err)
	}
	run := func(stepping Stepping) *HJBSolution {
		p := &HJBProblem{
			Grid:     g,
			Time:     testMesh(t, 0.5, 4000),
			DiffQ:    0.01,
			DriftH:   func(_, _ float64) float64 { return 0 },
			DriftQ:   func(_, _ float64) float64 { return 0.3 },
			Control:  func(_, _, _, _ float64) float64 { return 0 },
			Running:  func(_, _, _, q float64) float64 { return math.Sin(3 * q) },
			Stepping: stepping,
		}
		sol, err := SolveHJB(p)
		if err != nil {
			t.Fatalf("stepping %d: %v", stepping, err)
		}
		return sol
	}
	imp := run(Implicit)
	exp := run(Explicit)
	var worst float64
	for k := range imp.V[0] {
		if d := math.Abs(imp.V[0][k] - exp.V[0][k]); d > worst {
			worst = d
		}
	}
	if worst > 0.005 {
		t.Errorf("implicit and explicit HJB differ by %g", worst)
	}
}

package pde

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// Workspace owns every reusable buffer the operator-split integrators need on
// one grid resolution: the shared batched h-line system, per-worker sweepers
// for the line-dependent phases, the gradient/source scratch fields and, when
// the float32 fast path is enabled, the single-precision mirrors. A Workspace
// is created once per solver session and reused across time steps,
// best-response iterations and repeated solves, so the steady-state iteration
// loop of the engine performs no heap allocations. A Workspace is not safe
// for concurrent use; parallel solvers hold one each (the bounded sweep
// workers inside one Workspace are coordinated internally).
type Workspace struct {
	g       grid.Grid2D
	kc      KernelConfig
	workers int

	batH *linalg.TridiagBatch[float64] // shared-coefficient implicit h-phase
	bH   []float64                     // h-drift cache, len nh
	swH  []*sweeper[float64]           // per-worker h-line sweepers (explicit path)
	swQ  []*sweeper[float64]           // per-worker q-line sweepers

	batH32 *linalg.TridiagBatch[float32] // float32 fast path (nil unless enabled)
	bH32   []float32
	swQ32  []*sweeper[float32]
	f32    []float32 // field-size conversion scratch

	grad []float64 // ∂qV estimate feeding the closed-form control
	work []float64 // explicit-source scratch W = V^{n+1} + dt·U

	// sweep-worker coordination (see kernel.go)
	jobs   chan kernelJob
	wg     sync.WaitGroup
	errs   []error
	active bool
	loop   func() // hoisted workerLoop method value (see startWorkers)

	// persistent task frames, so dispatching a phase allocates nothing
	batTask   hBatchTask[float64]
	batTask32 hBatchTask[float32]
	hxbTask   hExplicitBackwardTask
	hxfTask   hExplicitForwardTask
	qbTask    qBackwardTask[float64]
	qbTask32  qBackwardTask[float32]
	qfTask    qForwardTask[float64]
	qfTask32  qForwardTask[float32]
	ctlTask   controlTask
	srcTask   sourceTask
}

// NewWorkspace validates the grid and allocates all sweep buffers for the
// default kernel (serial, float64).
func NewWorkspace(g grid.Grid2D) (*Workspace, error) {
	return NewWorkspaceKernel(g, KernelConfig{})
}

// NewWorkspaceKernel validates the grid and kernel configuration and
// allocates all sweep buffers, including the per-worker scratch and — when
// the float32 fast path is selected — the single-precision mirrors.
func NewWorkspaceKernel(g grid.Grid2D, kc KernelConfig) (*Workspace, error) {
	if err := g.H.Validate(); err != nil {
		return nil, fmt.Errorf("pde: workspace H axis: %w", err)
	}
	if err := g.Q.Validate(); err != nil {
		return nil, fmt.Errorf("pde: workspace Q axis: %w", err)
	}
	if err := kc.Validate(); err != nil {
		return nil, err
	}
	nh, nq := g.H.N, g.Q.N
	workers := kc.effectiveWorkers()
	ws := &Workspace{
		g:       g,
		kc:      kc,
		workers: workers,
		batH:    linalg.NewTridiagBatch[float64](nh),
		bH:      make([]float64, nh),
		swH:     make([]*sweeper[float64], workers),
		swQ:     make([]*sweeper[float64], workers),
		grad:    g.NewField(),
		work:    g.NewField(),
		errs:    make([]error, workers),
	}
	for w := range ws.swH {
		ws.swH[w] = newSweeper[float64](nh)
		ws.swQ[w] = newSweeper[float64](nq)
	}
	if kc.float32Enabled() {
		ws.batH32 = linalg.NewTridiagBatch[float32](nh)
		ws.bH32 = make([]float32, nh)
		ws.swQ32 = make([]*sweeper[float32], workers)
		for w := range ws.swQ32 {
			ws.swQ32[w] = newSweeper[float32](nq)
		}
		ws.f32 = make([]float32, g.Size())
	}
	return ws, nil
}

// Grid returns the grid the workspace was sized for.
func (w *Workspace) Grid() grid.Grid2D { return w.g }

// Kernel returns the kernel configuration the workspace was built with.
func (w *Workspace) Kernel() KernelConfig { return w.kc }

// Workers returns the effective sweep-worker count the workspace resolved
// from its kernel configuration (≥ 1).
func (w *Workspace) Workers() int { return w.workers }

// fits reports whether the workspace matches the given grid resolution.
func (w *Workspace) fits(g grid.Grid2D) bool {
	return w != nil && w.g.H.N == g.H.N && w.g.Q.N == g.Q.N
}

// Scheme is one time-integration scheme for the operator-split PDE updates:
// it advances the backward (HJB) value field and the forward (FPK) density
// field by one time step against a shared Workspace. The two built-in schemes
// are the unconditionally stable implicit splitting (default) and the
// CFL-bounded explicit integrator kept as an ablation; both are selected via
// configuration (Config.Scheme / Config.Stepping) instead of separate entry
// points.
type Scheme interface {
	// Name identifies the scheme in configs, CLI flags and cache keys.
	Name() string
	// Stepping returns the legacy Stepping constant the scheme corresponds to.
	Stepping() Stepping
	// StepBackward advances the backward value update one step at time t:
	// src holds the explicit source W = V^{n+1} + dt·U(t, x*, ·) and is
	// consumed as scratch; x is the frozen control field; the new value level
	// lands in dst. src and dst must not alias.
	StepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64) error
	// StepForward transports the density field forward one step in place at
	// time t.
	StepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64) error
	// Order returns the nominal temporal convergence order of the scheme
	// (both built-in integrators are first-order: backward/forward Euler in
	// time, with the Lie splitting itself contributing an O(dt) term). The
	// verification layer checks the observed order from grid refinement
	// against this value.
	Order() int
}

// backwardKernel / forwardKernel advance one 1-D sweep on a loaded sweeper
// (rhs and b filled) at the kernel precision. steps is the time-step count,
// used by the explicit kernels to phrase their CFL diagnostics.
type backwardKernel[T linalg.Float] func(s *sweeper[T], dt, dx, diff T, steps int) error
type forwardKernel[T linalg.Float] func(s *sweeper[T], form FPKForm, dt, dx, diff T, steps int) error

func implicitBackward[T linalg.Float](s *sweeper[T], dt, dx, diff T, _ int) error {
	return s.solveBackwardValue(dt, dx, diff)
}

func explicitBackward[T linalg.Float](s *sweeper[T], dt, dx, diff T, steps int) error {
	return cflError(s.explicitBackwardValue(dt, dx, diff), steps)
}

func implicitForward[T linalg.Float](s *sweeper[T], form FPKForm, dt, dx, diff T, _ int) error {
	if form == Conservative {
		return s.solveForwardConservative(dt, dx, diff)
	}
	return s.solveForwardAdvective(dt, dx, diff)
}

func explicitForward[T linalg.Float](s *sweeper[T], _ FPKForm, dt, dx, diff T, steps int) error {
	return cflError(s.explicitForwardConservative(dt, dx, diff), steps)
}

// hBatchTask substitutes interleaved column ranges of the field through the
// shared h-line factorisation, in place — columns are disjoint, so workers
// never overlap.
type hBatchTask[T linalg.Float] struct {
	bat   *linalg.TridiagBatch[T]
	field []T
	m     int
}

func (tk *hBatchTask[T]) run(_, lo, hi int) error {
	return tk.bat.SolveInterleavedRange(tk.field, tk.m, lo, hi)
}

// hExplicitBackwardTask runs explicit backward h-line sweeps over column
// ranges, gathering each strided column through the worker's sweeper. The
// shared h-drifts must be preloaded into every worker sweeper's b.
type hExplicitBackwardTask struct {
	sws          []*sweeper[float64]
	field        []float64 // in place
	nh, nq       int
	t            float64
	dt, dx, diff float64
	steps        int
}

func (tk *hExplicitBackwardTask) run(w, lo, hi int) error {
	sw := tk.sws[w]
	for j := lo; j < hi; j++ {
		gatherT(sw.rhs, tk.field, j, tk.nq, tk.nh)
		if err := cflError(sw.explicitBackwardValue(tk.dt, tk.dx, tk.diff), tk.steps); err != nil {
			return fmt.Errorf("pde: HJB h-sweep at t=%.4g, column %d: %w", tk.t, j, err)
		}
		scatterT(tk.field, sw.sol, j, tk.nq, tk.nh)
	}
	return nil
}

// hExplicitForwardTask is the forward (FPK) counterpart of
// hExplicitBackwardTask.
type hExplicitForwardTask struct {
	sws          []*sweeper[float64]
	field        []float64 // in place
	nh, nq       int
	t            float64
	dt, dx, diff float64
	steps        int
}

func (tk *hExplicitForwardTask) run(w, lo, hi int) error {
	sw := tk.sws[w]
	for j := lo; j < hi; j++ {
		gatherT(sw.rhs, tk.field, j, tk.nq, tk.nh)
		if err := cflError(sw.explicitForwardConservative(tk.dt, tk.dx, tk.diff), tk.steps); err != nil {
			return fmt.Errorf("pde: FPK h-sweep at t=%.4g, column %d: %w", tk.t, j, err)
		}
		scatterT(tk.field, sw.sol, j, tk.nq, tk.nh)
	}
	return nil
}

// qBackwardTask runs backward q-line sweeps over row ranges: each row loads
// its own drifts from the frozen control field, so rows are solved
// independently on per-worker sweepers. Rows of src and dst are disjoint per
// worker.
type qBackwardTask[T linalg.Float] struct {
	sws          []*sweeper[T]
	p            *HJBProblem
	t            float64
	x, src, dst  []float64
	nq           int
	dt, dx, diff T
	steps        int
	kern         backwardKernel[T]
}

func (tk *qBackwardTask[T]) run(w, lo, hi int) error {
	sw := tk.sws[w]
	for i := lo; i < hi; i++ {
		start := i * tk.nq
		gatherT(sw.rhs, tk.src, start, 1, tk.nq)
		for j := 0; j < tk.nq; j++ {
			sw.b[j] = T(tk.p.DriftQ(tk.t, tk.x[start+j]))
		}
		if err := tk.kern(sw, tk.dt, tk.dx, tk.diff, tk.steps); err != nil {
			return fmt.Errorf("pde: HJB q-sweep at t=%.4g, row %d: %w", tk.t, i, err)
		}
		scatterT(tk.dst, sw.sol, start, 1, tk.nq)
	}
	return nil
}

// qForwardTask is the forward (FPK) counterpart of qBackwardTask, in place on
// lambda.
type qForwardTask[T linalg.Float] struct {
	sws          []*sweeper[T]
	p            *FPKProblem
	t            float64
	lambda       []float64
	nq           int
	dt, dx, diff T
	steps        int
	kern         forwardKernel[T]
}

func (tk *qForwardTask[T]) run(w, lo, hi int) error {
	sw := tk.sws[w]
	g := tk.p.Grid
	for i := lo; i < hi; i++ {
		h := g.H.At(i)
		start := i * tk.nq
		gatherT(sw.rhs, tk.lambda, start, 1, tk.nq)
		for j := 0; j < tk.nq; j++ {
			sw.b[j] = T(tk.p.DriftQ(tk.t, h, g.Q.At(j)))
		}
		if err := tk.kern(sw, tk.p.Form, tk.dt, tk.dx, tk.diff, tk.steps); err != nil {
			return fmt.Errorf("pde: FPK q-sweep at t=%.4g, row %d: %w", tk.t, i, err)
		}
		scatterT(tk.lambda, sw.sol, start, 1, tk.nq)
	}
	return nil
}

// hPhaseImplicit runs the batched implicit h-phase in place on the field: the
// h-drift depends on (t, h) only, so every column shares one coefficient set,
// which is assembled and factorised once; the interleaved substitution then
// runs directly on the flattened field (unit stride, no gather/scatter),
// partitioned across the sweep workers. On the float32 path the field is
// converted through the single-precision scratch around the solve.
func (ws *Workspace) hPhaseImplicit(field []float64, kind hAssembly, dt, dx, diff float64) error {
	nh, nq := ws.g.H.N, ws.g.Q.N
	if ws.kc.float32Enabled() {
		for i := range ws.bH32 {
			ws.bH32[i] = float32(ws.bH[i])
		}
		if err := assembleH(ws.batH32, ws.bH32, kind, float32(dt), float32(dx), float32(diff)); err != nil {
			return err
		}
		for k, v := range field {
			ws.f32[k] = float32(v)
		}
		ws.batTask32 = hBatchTask[float32]{bat: ws.batH32, field: ws.f32, m: nq}
		if err := ws.runParallel(&ws.batTask32, nq, nh, parallelMinBatchElems); err != nil {
			return err
		}
		for k, v := range ws.f32 {
			field[k] = float64(v)
		}
		return nil
	}
	if err := assembleH(ws.batH, ws.bH, kind, dt, dx, diff); err != nil {
		return err
	}
	ws.batTask = hBatchTask[float64]{bat: ws.batH, field: field, m: nq}
	return ws.runParallel(&ws.batTask, nq, nh, parallelMinBatchElems)
}

// loadHDrift caches the h-drifts at the current time level, shared by every
// column of the h-phase.
func (ws *Workspace) loadHDrift(t float64, driftH func(t, h float64) float64) {
	for i := range ws.bH {
		ws.bH[i] = driftH(t, ws.g.H.At(i))
	}
}

// stepBackward runs the Lie-split backward sweeps shared by every scheme:
// first every q-column in h (stride nq, in place on src), then every h-row in
// q (stride 1, src → dst). The implicit h-phase is batched (one factorisation
// for all columns); the remaining line phases are partitioned across the
// sweep workers. It emits the per-dimension "pde.hjb.sweeps" counters and
// sweep timings.
func stepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64, impl bool) error {
	g := p.Grid
	nh, nq := g.H.N, g.Q.N
	dt := p.Time.Dt()
	rec := obs.OrNop(p.Obs)
	timed := rec.Enabled()
	var sweepStart time.Time
	if timed {
		sweepStart = time.Now()
	}
	ws.loadHDrift(t, p.DriftH)
	if impl {
		if err := ws.hPhaseImplicit(src, hBackwardValue, dt, g.H.Step(), p.DiffH); err != nil {
			return fmt.Errorf("pde: HJB h-sweep at t=%.4g: %w", t, err)
		}
	} else {
		for _, sw := range ws.swH {
			copy(sw.b, ws.bH)
		}
		ws.hxbTask = hExplicitBackwardTask{
			sws: ws.swH, field: src, nh: nh, nq: nq,
			t: t, dt: dt, dx: g.H.Step(), diff: p.DiffH, steps: p.Time.Steps,
		}
		if err := ws.runParallel(&ws.hxbTask, nq, nh, parallelMinLineElems); err != nil {
			return err
		}
	}
	rec.Add("pde.hjb.sweeps", float64(nq))
	if timed {
		rec.Observe("pde.hjb.sweep.h.seconds", time.Since(sweepStart).Seconds())
		sweepStart = time.Now()
	}

	var err error
	if ws.kc.float32Enabled() {
		ws.qbTask32 = qBackwardTask[float32]{
			sws: ws.swQ32, p: p, t: t, x: x, src: src, dst: dst, nq: nq,
			dt: float32(dt), dx: float32(g.Q.Step()), diff: float32(p.DiffQ),
			steps: p.Time.Steps, kern: implicitBackward[float32],
		}
		err = ws.runParallel(&ws.qbTask32, nh, nq, parallelMinLineElems)
	} else {
		kern := implicitBackward[float64]
		if !impl {
			kern = explicitBackward[float64]
		}
		ws.qbTask = qBackwardTask[float64]{
			sws: ws.swQ, p: p, t: t, x: x, src: src, dst: dst, nq: nq,
			dt: dt, dx: g.Q.Step(), diff: p.DiffQ,
			steps: p.Time.Steps, kern: kern,
		}
		err = ws.runParallel(&ws.qbTask, nh, nq, parallelMinLineElems)
	}
	if err != nil {
		return err
	}
	rec.Add("pde.hjb.sweeps", float64(nh))
	if timed {
		rec.Observe("pde.hjb.sweep.q.seconds", time.Since(sweepStart).Seconds())
	}
	return nil
}

// stepForward runs the Lie-split forward sweeps shared by every scheme, in
// place on lambda, emitting the per-dimension "pde.fpk.sweeps" counters and
// sweep timings.
func stepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64, impl bool) error {
	g := p.Grid
	nh, nq := g.H.N, g.Q.N
	dt := p.Time.Dt()
	rec := obs.OrNop(p.Obs)
	timed := rec.Enabled()
	var sweepStart time.Time
	if timed {
		sweepStart = time.Now()
	}
	ws.loadHDrift(t, p.DriftH)
	if impl {
		kind := hForwardConservative
		if p.Form != Conservative {
			kind = hForwardAdvective
		}
		if err := ws.hPhaseImplicit(lambda, kind, dt, g.H.Step(), p.DiffH); err != nil {
			return fmt.Errorf("pde: FPK h-sweep at t=%.4g: %w", t, err)
		}
	} else {
		for _, sw := range ws.swH {
			copy(sw.b, ws.bH)
		}
		ws.hxfTask = hExplicitForwardTask{
			sws: ws.swH, field: lambda, nh: nh, nq: nq,
			t: t, dt: dt, dx: g.H.Step(), diff: p.DiffH, steps: p.Time.Steps,
		}
		if err := ws.runParallel(&ws.hxfTask, nq, nh, parallelMinLineElems); err != nil {
			return err
		}
	}
	rec.Add("pde.fpk.sweeps", float64(nq))
	if timed {
		rec.Observe("pde.fpk.sweep.h.seconds", time.Since(sweepStart).Seconds())
		sweepStart = time.Now()
	}

	var err error
	if ws.kc.float32Enabled() {
		ws.qfTask32 = qForwardTask[float32]{
			sws: ws.swQ32, p: p, t: t, lambda: lambda, nq: nq,
			dt: float32(dt), dx: float32(g.Q.Step()), diff: float32(p.DiffQ),
			steps: p.Time.Steps, kern: implicitForward[float32],
		}
		err = ws.runParallel(&ws.qfTask32, nh, nq, parallelMinLineElems)
	} else {
		kern := implicitForward[float64]
		if !impl {
			kern = explicitForward[float64]
		}
		ws.qfTask = qForwardTask[float64]{
			sws: ws.swQ, p: p, t: t, lambda: lambda, nq: nq,
			dt: dt, dx: g.Q.Step(), diff: p.DiffQ,
			steps: p.Time.Steps, kern: kern,
		}
		err = ws.runParallel(&ws.qfTask, nh, nq, parallelMinLineElems)
	}
	if err != nil {
		return err
	}
	rec.Add("pde.fpk.sweeps", float64(nh))
	if timed {
		rec.Observe("pde.fpk.sweep.q.seconds", time.Since(sweepStart).Seconds())
	}
	return nil
}

// implicitScheme is the unconditionally stable operator-split backward-Euler
// integrator: one tridiagonal solve per dimension per step.
type implicitScheme struct{}

func (implicitScheme) Name() string       { return "implicit" }
func (implicitScheme) Stepping() Stepping { return Implicit }
func (implicitScheme) Order() int         { return 1 }

func (implicitScheme) StepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64) error {
	return stepBackward(ws, p, t, x, src, dst, true)
}

func (implicitScheme) StepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64) error {
	return stepForward(ws, p, t, lambda, true)
}

// explicitScheme is the forward-Euler ablation: cheaper per step (no linear
// solves) but subject to a CFL stability bound, verified on every sweep.
type explicitScheme struct{}

func (explicitScheme) Name() string       { return "explicit" }
func (explicitScheme) Stepping() Stepping { return Explicit }
func (explicitScheme) Order() int         { return 1 }

func (explicitScheme) StepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64) error {
	return stepBackward(ws, p, t, x, src, dst, false)
}

func (explicitScheme) StepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64) error {
	return stepForward(ws, p, t, lambda, false)
}

// schemeRegistry is the single source of truth for the selectable schemes:
// name resolution, Stepping mapping and the SchemeNames help/validation list
// are all derived from it, so adding a scheme here is sufficient to surface
// it everywhere. The first entry is the default.
var schemeRegistry = []Scheme{
	implicitScheme{},
	explicitScheme{},
}

// SchemeFor maps a legacy Stepping constant onto its Scheme.
func SchemeFor(s Stepping) (Scheme, error) {
	for _, sch := range schemeRegistry {
		if sch.Stepping() == s {
			return sch, nil
		}
	}
	return nil, fmt.Errorf("pde: unknown stepping %d", int(s))
}

// SchemeByName resolves a scheme from its configuration / CLI name. The empty
// name selects the default (the registry's first entry).
func SchemeByName(name string) (Scheme, error) {
	if name == "" {
		return schemeRegistry[0], nil
	}
	for _, sch := range schemeRegistry {
		if sch.Name() == name {
			return sch, nil
		}
	}
	return nil, fmt.Errorf("pde: unknown scheme %q (want one of %s)", name, strings.Join(SchemeNames(), ", "))
}

// SchemeNames lists the selectable scheme names (for CLI help and validation
// messages), in registry order.
func SchemeNames() []string {
	names := make([]string, len(schemeRegistry))
	for i, sch := range schemeRegistry {
		names[i] = sch.Name()
	}
	return names
}

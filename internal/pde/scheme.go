package pde

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Workspace owns every reusable buffer the operator-split integrators need on
// one grid resolution: the two tridiagonal sweepers (one per dimension) and
// the gradient/source scratch fields. A Workspace is created once per solver
// session and reused across time steps, best-response iterations and repeated
// solves, so the steady-state iteration loop of the engine performs no heap
// allocations. A Workspace is not safe for concurrent use; parallel solvers
// hold one each.
type Workspace struct {
	g    grid.Grid2D
	swH  *sweeper
	swQ  *sweeper
	grad []float64 // ∂qV estimate feeding the closed-form control
	work []float64 // explicit-source scratch W = V^{n+1} + dt·U
}

// NewWorkspace validates the grid and allocates all sweep buffers for it.
func NewWorkspace(g grid.Grid2D) (*Workspace, error) {
	if err := g.H.Validate(); err != nil {
		return nil, fmt.Errorf("pde: workspace H axis: %w", err)
	}
	if err := g.Q.Validate(); err != nil {
		return nil, fmt.Errorf("pde: workspace Q axis: %w", err)
	}
	return &Workspace{
		g:    g,
		swH:  newSweeper(g.H.N),
		swQ:  newSweeper(g.Q.N),
		grad: g.NewField(),
		work: g.NewField(),
	}, nil
}

// Grid returns the grid the workspace was sized for.
func (w *Workspace) Grid() grid.Grid2D { return w.g }

// fits reports whether the workspace matches the given grid resolution.
func (w *Workspace) fits(g grid.Grid2D) bool {
	return w != nil && w.g.H.N == g.H.N && w.g.Q.N == g.Q.N
}

// Scheme is one time-integration scheme for the operator-split PDE updates:
// it advances the backward (HJB) value field and the forward (FPK) density
// field by one time step against a shared Workspace. The two built-in schemes
// are the unconditionally stable implicit splitting (default) and the
// CFL-bounded explicit integrator kept as an ablation; both are selected via
// configuration (Config.Scheme / Config.Stepping) instead of separate entry
// points.
type Scheme interface {
	// Name identifies the scheme in configs, CLI flags and cache keys.
	Name() string
	// Stepping returns the legacy Stepping constant the scheme corresponds to.
	Stepping() Stepping
	// StepBackward advances the backward value update one step at time t:
	// src holds the explicit source W = V^{n+1} + dt·U(t, x*, ·) and is
	// consumed as scratch; x is the frozen control field; the new value level
	// lands in dst. src and dst must not alias.
	StepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64) error
	// StepForward transports the density field forward one step in place at
	// time t.
	StepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64) error
	// Order returns the nominal temporal convergence order of the scheme
	// (both built-in integrators are first-order: backward/forward Euler in
	// time, with the Lie splitting itself contributing an O(dt) term). The
	// verification layer checks the observed order from grid refinement
	// against this value.
	Order() int
}

// backwardKernel / forwardKernel advance one 1-D sweep on a loaded sweeper
// (rhs and b filled). steps is the time-step count, used by the explicit
// kernels to phrase their CFL diagnostics.
type backwardKernel func(s *sweeper, dt, dx, diff float64, steps int) error
type forwardKernel func(s *sweeper, form FPKForm, dt, dx, diff float64, steps int) error

func implicitBackward(s *sweeper, dt, dx, diff float64, _ int) error {
	return s.solveBackwardValue(dt, dx, diff)
}

func explicitBackward(s *sweeper, dt, dx, diff float64, steps int) error {
	return cflError(s.explicitBackwardValue(dt, dx, diff), steps)
}

func implicitForward(s *sweeper, form FPKForm, dt, dx, diff float64, _ int) error {
	if form == Conservative {
		return s.solveForwardConservative(dt, dx, diff)
	}
	return s.solveForwardAdvective(dt, dx, diff)
}

func explicitForward(s *sweeper, _ FPKForm, dt, dx, diff float64, steps int) error {
	return cflError(s.explicitForwardConservative(dt, dx, diff), steps)
}

// stepBackward runs the Lie-split backward sweeps shared by every scheme:
// first every q-column in h (stride nq, in place on src), then every h-row in
// q (stride 1, src → dst), with the kernel deciding implicit vs explicit. It
// emits the per-dimension "pde.hjb.sweeps" counters and sweep timings.
func stepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64, kern backwardKernel) error {
	g := p.Grid
	nh, nq := g.H.N, g.Q.N
	dt := p.Time.Dt()
	rec := obs.OrNop(p.Obs)
	timed := rec.Enabled()
	var sweepStart time.Time
	if timed {
		sweepStart = time.Now()
	}
	for j := 0; j < nq; j++ {
		gather(ws.swH.rhs, src, j, nq, nh)
		for i := 0; i < nh; i++ {
			ws.swH.b[i] = p.DriftH(t, g.H.At(i))
		}
		if err := kern(ws.swH, dt, g.H.Step(), p.DiffH, p.Time.Steps); err != nil {
			return fmt.Errorf("pde: HJB h-sweep at t=%.4g, column %d: %w", t, j, err)
		}
		scatter(src, ws.swH.sol, j, nq, nh)
	}
	rec.Add("pde.hjb.sweeps", float64(nq))
	if timed {
		rec.Observe("pde.hjb.sweep.h.seconds", time.Since(sweepStart).Seconds())
		sweepStart = time.Now()
	}
	for i := 0; i < nh; i++ {
		start := i * nq
		gather(ws.swQ.rhs, src, start, 1, nq)
		for j := 0; j < nq; j++ {
			ws.swQ.b[j] = p.DriftQ(t, x[start+j])
		}
		if err := kern(ws.swQ, dt, g.Q.Step(), p.DiffQ, p.Time.Steps); err != nil {
			return fmt.Errorf("pde: HJB q-sweep at t=%.4g, row %d: %w", t, i, err)
		}
		scatter(dst, ws.swQ.sol, start, 1, nq)
	}
	rec.Add("pde.hjb.sweeps", float64(nh))
	if timed {
		rec.Observe("pde.hjb.sweep.q.seconds", time.Since(sweepStart).Seconds())
	}
	return nil
}

// stepForward runs the Lie-split forward sweeps shared by every scheme, in
// place on lambda, emitting the per-dimension "pde.fpk.sweeps" counters and
// sweep timings.
func stepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64, kern forwardKernel) error {
	g := p.Grid
	nh, nq := g.H.N, g.Q.N
	dt := p.Time.Dt()
	rec := obs.OrNop(p.Obs)
	timed := rec.Enabled()
	var sweepStart time.Time
	if timed {
		sweepStart = time.Now()
	}
	for j := 0; j < nq; j++ {
		gather(ws.swH.rhs, lambda, j, nq, nh)
		for i := 0; i < nh; i++ {
			ws.swH.b[i] = p.DriftH(t, g.H.At(i))
		}
		if err := kern(ws.swH, p.Form, dt, g.H.Step(), p.DiffH, p.Time.Steps); err != nil {
			return fmt.Errorf("pde: FPK h-sweep at t=%.4g, column %d: %w", t, j, err)
		}
		scatter(lambda, ws.swH.sol, j, nq, nh)
	}
	rec.Add("pde.fpk.sweeps", float64(nq))
	if timed {
		rec.Observe("pde.fpk.sweep.h.seconds", time.Since(sweepStart).Seconds())
		sweepStart = time.Now()
	}
	for i := 0; i < nh; i++ {
		h := g.H.At(i)
		start := i * nq
		gather(ws.swQ.rhs, lambda, start, 1, nq)
		for j := 0; j < nq; j++ {
			ws.swQ.b[j] = p.DriftQ(t, h, g.Q.At(j))
		}
		if err := kern(ws.swQ, p.Form, dt, g.Q.Step(), p.DiffQ, p.Time.Steps); err != nil {
			return fmt.Errorf("pde: FPK q-sweep at t=%.4g, row %d: %w", t, i, err)
		}
		scatter(lambda, ws.swQ.sol, start, 1, nq)
	}
	rec.Add("pde.fpk.sweeps", float64(nh))
	if timed {
		rec.Observe("pde.fpk.sweep.q.seconds", time.Since(sweepStart).Seconds())
	}
	return nil
}

// implicitScheme is the unconditionally stable operator-split backward-Euler
// integrator: one tridiagonal solve per dimension per step.
type implicitScheme struct{}

func (implicitScheme) Name() string       { return "implicit" }
func (implicitScheme) Stepping() Stepping { return Implicit }
func (implicitScheme) Order() int         { return 1 }

func (implicitScheme) StepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64) error {
	return stepBackward(ws, p, t, x, src, dst, implicitBackward)
}

func (implicitScheme) StepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64) error {
	return stepForward(ws, p, t, lambda, implicitForward)
}

// explicitScheme is the forward-Euler ablation: cheaper per step (no linear
// solves) but subject to a CFL stability bound, verified on every sweep.
type explicitScheme struct{}

func (explicitScheme) Name() string       { return "explicit" }
func (explicitScheme) Stepping() Stepping { return Explicit }
func (explicitScheme) Order() int         { return 1 }

func (explicitScheme) StepBackward(ws *Workspace, p *HJBProblem, t float64, x, src, dst []float64) error {
	return stepBackward(ws, p, t, x, src, dst, explicitBackward)
}

func (explicitScheme) StepForward(ws *Workspace, p *FPKProblem, t float64, lambda []float64) error {
	return stepForward(ws, p, t, lambda, explicitForward)
}

// SchemeFor maps a legacy Stepping constant onto its Scheme.
func SchemeFor(s Stepping) (Scheme, error) {
	switch s {
	case Implicit:
		return implicitScheme{}, nil
	case Explicit:
		return explicitScheme{}, nil
	}
	return nil, fmt.Errorf("pde: unknown stepping %d", int(s))
}

// SchemeByName resolves a scheme from its configuration / CLI name. The empty
// name selects the implicit default.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "", "implicit":
		return implicitScheme{}, nil
	case "explicit":
		return explicitScheme{}, nil
	}
	return nil, fmt.Errorf("pde: unknown scheme %q (want %q or %q)", name, "implicit", "explicit")
}

// SchemeNames lists the selectable scheme names (for CLI help and validation
// messages).
func SchemeNames() []string { return []string{"implicit", "explicit"} }

package pde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// Comparison principle: if running utility U1 ≥ U2 pointwise (same dynamics),
// then V1 ≥ V2 everywhere. The monotone implicit scheme preserves this
// ordering discretely.
func TestHJBComparisonPrinciple(t *testing.T) {
	g := testGrid(t, 9, 17)
	mk := func(bonus float64) *HJBSolution {
		p := &HJBProblem{
			Grid:    g,
			Time:    testMesh(t, 1, 40),
			DiffH:   0.05,
			DiffQ:   0.05,
			DriftH:  func(_, h float64) float64 { return 0.5 - h },
			DriftQ:  func(_, x float64) float64 { return -0.5 * x },
			Control: func(_, _, _, dV float64) float64 { return clamp01(-dV) },
			Running: func(_, x, h, q float64) float64 {
				return math.Sin(4*h)*math.Cos(3*q) - x*x + bonus
			},
		}
		sol, err := SolveHJB(p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	hi := mk(0.5)
	lo := mk(0)
	for n := range hi.V {
		for k := range hi.V[n] {
			if hi.V[n][k] < lo.V[n][k]-1e-9 {
				t.Fatalf("comparison principle violated at step %d node %d: %g < %g",
					n, k, hi.V[n][k], lo.V[n][k])
			}
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Additivity of constants: adding a constant c to the running utility shifts
// V by c·(T−t) exactly (the linear solver sees the constant pass through the
// Neumann operators unchanged).
func TestHJBConstantShift(t *testing.T) {
	g := testGrid(t, 7, 7)
	tmesh := testMesh(t, 2, 50)
	mk := func(c float64) *HJBSolution {
		p := &HJBProblem{
			Grid:    g,
			Time:    tmesh,
			DiffH:   0.1,
			DiffQ:   0.1,
			DriftH:  func(_, h float64) float64 { return 0.3 - h },
			DriftQ:  func(_, x float64) float64 { return -x },
			Control: func(_, _, _, dV float64) float64 { return clamp01(-dV) },
			Running: func(_, x, _, q float64) float64 { return q - x*x + c },
		}
		sol, err := SolveHJB(p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	base := mk(0)
	shift := mk(3)
	for n := range base.V {
		want := 3 * (tmesh.Horizon - tmesh.At(n))
		for k := range base.V[n] {
			if d := shift.V[n][k] - base.V[n][k]; math.Abs(d-want) > 1e-6 {
				t.Fatalf("constant shift at step %d node %d: got %g, want %g", n, k, d, want)
			}
		}
	}
}

// Property (testing/quick): the conservative FPK preserves mass and
// positivity under randomised smooth drift fields.
func TestFPKRandomDriftInvariants(t *testing.T) {
	g := testGrid(t, 9, 13)
	init := gaussianInit(t, g)
	f := func(a, b, c, d uint8) bool {
		// Randomised but bounded drift coefficients.
		ah := float64(a%10)/5 - 1
		bh := float64(b%10) / 10
		aq := float64(c%10)/5 - 1
		bq := float64(d%10) / 10
		p := &FPKProblem{
			Grid:   g,
			Time:   grid.TimeMesh{Horizon: 0.5, Steps: 25},
			DiffH:  0.02,
			DiffQ:  0.02,
			DriftH: func(_, h float64) float64 { return ah + bh*math.Sin(6*h) },
			DriftQ: func(_, h, q float64) float64 { return aq + bq*math.Cos(5*q+h) },
			Form:   Conservative,
		}
		sol, err := SolveFPK(p, init)
		if err != nil {
			return false
		}
		last := len(sol.Lambda) - 1
		if math.Abs(sol.Mass(last)-sol.Mass(0)) > 1e-9 {
			return false
		}
		for _, v := range sol.Lambda[last] {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The implicit scheme is unconditionally stable: huge diffusion with few time
// steps must not blow up (the explicit scheme rejects the same setup).
func TestImplicitUnconditionalStability(t *testing.T) {
	g := testGrid(t, 9, 41)
	p := &FPKProblem{
		Grid:   g,
		Time:   testMesh(t, 1, 5), // dt = 0.2, wildly above any CFL bound
		DiffH:  5,
		DiffQ:  5,
		DriftH: func(_, h float64) float64 { return 10 * (0.5 - h) },
		DriftQ: func(_, _, q float64) float64 { return 10 * (0.5 - q) },
		Form:   Conservative,
	}
	init := gaussianInit(t, g)
	sol, err := SolveFPK(p, init)
	if err != nil {
		t.Fatalf("implicit scheme should accept any dt: %v", err)
	}
	for n := range sol.Lambda {
		for k, v := range sol.Lambda[n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("instability at step %d node %d: %g", n, k, v)
			}
		}
	}
	pexp := *p
	pexp.Stepping = Explicit
	if _, err := SolveFPK(&pexp, init); err == nil {
		t.Error("explicit scheme should reject this CFL-violating setup")
	}
}

// Strategy fields returned by the HJB honour the Control callback's clamp for
// arbitrary (deterministic-random) utilities.
func TestHJBControlAlwaysClamped(t *testing.T) {
	g := testGrid(t, 7, 11)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		amp := rng.Float64() * 100
		p := &HJBProblem{
			Grid:    g,
			Time:    testMesh(t, 1, 20),
			DiffH:   rng.Float64(),
			DiffQ:   rng.Float64(),
			DriftH:  func(_, h float64) float64 { return 0.5 - h },
			DriftQ:  func(_, x float64) float64 { return -x },
			Control: func(_, _, _, dV float64) float64 { return clamp01(-dV / 10) },
			Running: func(_, x, h, q float64) float64 {
				return amp * math.Sin(h*q*7)
			},
		}
		sol, err := SolveHJB(p)
		if err != nil {
			t.Fatal(err)
		}
		for n := range sol.X {
			for k, x := range sol.X[n] {
				if x < 0 || x > 1 {
					t.Fatalf("trial %d: control %g at step %d node %d", trial, x, n, k)
				}
			}
		}
	}
}

package pde

import (
	"errors"
	"fmt"
	"log/slog"
	"math"

	"repro/internal/grid"
	"repro/internal/numerics"
	"repro/internal/obs"
)

// FPKForm selects the spatial discretisation of the forward equation.
type FPKForm int

const (
	// Conservative solves the divergence (Kolmogorov-forward) form
	// ∂tλ + ∂h(b_h λ) + ∂q(b_q λ) = D_h ∂hhλ + D_q ∂qqλ with zero-flux
	// boundaries. Mass is conserved to round-off and the density stays
	// non-negative. This is the default.
	Conservative FPKForm = iota
	// Advective solves the paper-literal non-conservative form of Eq. (15),
	// ∂tλ + b_h ∂hλ + b_q ∂qλ = D_h ∂hhλ + D_q ∂qqλ, kept as an ablation.
	// It loses mass wherever ∂q b_q ≠ 0 (the control depends on q); the
	// solver renormalises when Renormalize is set and reports the raw drift.
	Advective
)

// FPKProblem specifies the forward transport of the mean-field density λ.
type FPKProblem struct {
	Grid grid.Grid2D
	Time grid.TimeMesh

	DiffH, DiffQ float64 // ½ϱh², ½ϱq²

	// DriftH is the channel drift at (t, h) (shared with the HJB problem).
	DriftH func(t, h float64) float64
	// DriftQ is the remaining-space drift at (t, h, q) with the optimal
	// control already substituted: b_q(t, h, q) = Qk[−w1·x*(t,h,q) − …].
	DriftQ func(t, h, q float64) float64

	Form FPKForm
	// Stepping selects implicit (default, unconditionally stable) or
	// explicit (CFL-bounded, ablation) time integration. The explicit
	// integrator supports the conservative form only.
	Stepping Stepping
	// Renormalize rescales the density to unit mass after every step. With
	// the conservative form this only removes round-off; with the advective
	// form it compensates the structural mass loss.
	Renormalize bool

	// Obs receives solve/sweep telemetry ("pde.fpk.*" names); nil means
	// no-op. The MFG layer threads core.Config.Obs through here.
	Obs obs.Recorder
}

// Validate checks that the problem is completely specified.
func (p *FPKProblem) Validate() error {
	if p.DriftH == nil || p.DriftQ == nil {
		return errors.New("pde: FPKProblem: DriftH and DriftQ are required")
	}
	if p.DiffH < 0 || p.DiffQ < 0 {
		return fmt.Errorf("pde: FPKProblem: diffusion coefficients must be non-negative, got %g, %g", p.DiffH, p.DiffQ)
	}
	if err := p.Grid.H.Validate(); err != nil {
		return err
	}
	if err := p.Grid.Q.Validate(); err != nil {
		return err
	}
	if p.Time.Steps < 1 {
		return fmt.Errorf("pde: FPKProblem: time mesh needs ≥1 step, got %d", p.Time.Steps)
	}
	if p.Form != Conservative && p.Form != Advective {
		return fmt.Errorf("pde: FPKProblem: unknown form %d", int(p.Form))
	}
	if p.Stepping != Implicit && p.Stepping != Explicit {
		return fmt.Errorf("pde: FPKProblem: unknown stepping %d", int(p.Stepping))
	}
	if p.Stepping == Explicit && p.Form != Conservative {
		return fmt.Errorf("pde: FPKProblem: the explicit integrator supports the conservative form only")
	}
	return nil
}

// FPKSolution stores the density at every time node and the mass trajectory
// before renormalisation (a diagnostic for the advective ablation).
type FPKSolution struct {
	Grid    grid.Grid2D
	Time    grid.TimeMesh
	Lambda  [][]float64 // density at t_n, flattened
	RawMass []float64   // ∫∫λ before renormalisation at each step
}

// DensityAt bilinearly interpolates λ at (t, h, q).
func (s *FPKSolution) DensityAt(t, h, q float64) (float64, error) {
	dt := s.Time.Dt()
	n := int(t/dt + 0.5)
	if n < 0 {
		n = 0
	}
	if n > s.Time.Steps {
		n = s.Time.Steps
	}
	return numerics.InterpBilinear(s.Grid, s.Lambda[n], h, q)
}

// Mass returns the rectangle-rule mass Σλ·dh·dq of the density at time index n.
func (s *FPKSolution) Mass(n int) float64 {
	var sum float64
	for _, v := range s.Lambda[n] {
		sum += v
	}
	return sum * s.Grid.CellArea()
}

// NewFPKSolution preallocates a solution holder (every time level of Lambda
// gets its own field) so repeated solves on the same mesh can reuse it via
// SolveFPKInto without allocating.
func NewFPKSolution(g grid.Grid2D, tm grid.TimeMesh) *FPKSolution {
	sol := &FPKSolution{
		Grid:    g,
		Time:    tm,
		Lambda:  make([][]float64, tm.Steps+1),
		RawMass: make([]float64, tm.Steps+1),
	}
	for n := range sol.Lambda {
		sol.Lambda[n] = g.NewField()
	}
	return sol
}

// sized reports whether the solution holder matches the problem's grid and
// time mesh.
func (s *FPKSolution) sized(g grid.Grid2D, tm grid.TimeMesh) bool {
	return s != nil && s.Grid == g && s.Time.Steps == tm.Steps &&
		len(s.Lambda) == tm.Steps+1 && len(s.RawMass) == tm.Steps+1
}

// SolveFPK integrates the forward equation from the initial density λ0
// (flattened over the grid) through the whole time mesh using Lie splitting
// with one sweep per dimension per step (implicit tridiagonal by default).
func SolveFPK(p *FPKProblem, lambda0 []float64) (*FPKSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ws, err := NewWorkspace(p.Grid)
	if err != nil {
		return nil, err
	}
	sol := NewFPKSolution(p.Grid, p.Time)
	if err := SolveFPKInto(ws, nil, p, lambda0, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// SolveFPKInto is the allocation-free core of SolveFPK: it transports λ0
// through the time mesh using the given scheme (nil derives one from
// p.Stepping), reusing the workspace buffers and writing every time level
// into the preallocated solution.
func SolveFPKInto(ws *Workspace, sch Scheme, p *FPKProblem, lambda0 []float64, sol *FPKSolution) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if sch == nil {
		var err error
		if sch, err = SchemeFor(p.Stepping); err != nil {
			return err
		}
	}
	if sch.Stepping() == Explicit && p.Form != Conservative {
		return errors.New("pde: SolveFPKInto: the explicit integrator supports the conservative form only")
	}
	if ws.kc.float32Enabled() && sch.Stepping() != Implicit {
		return errors.New("pde: the float32 kernel supports the implicit scheme only")
	}
	g := p.Grid
	if err := checkField("initial density", lambda0, g.Size()); err != nil {
		return err
	}
	for _, v := range lambda0 {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("pde: SolveFPK: initial density must be non-negative and finite, found %g", v)
		}
	}
	if !ws.fits(g) {
		return fmt.Errorf("pde: SolveFPKInto: workspace sized for %dx%d, problem grid is %dx%d",
			ws.g.H.N, ws.g.Q.N, g.H.N, g.Q.N)
	}
	if !sol.sized(g, p.Time) {
		return errors.New("pde: SolveFPKInto: solution holder does not match the problem mesh (use NewFPKSolution)")
	}
	nh, nq := g.H.N, g.Q.N
	steps := p.Time.Steps
	cell := g.CellArea()

	ws.startWorkers()
	defer ws.stopWorkers()

	rec := obs.OrNop(p.Obs)
	span := rec.Start("pde.fpk.solve")

	copy(sol.Lambda[0], lambda0)
	sol.RawMass[0] = mass(sol.Lambda[0], cell)

	for n := 0; n < steps; n++ {
		t := p.Time.At(n)
		next := sol.Lambda[n+1]
		copy(next, sol.Lambda[n])

		if err := sch.StepForward(ws, p, t, next); err != nil {
			return err
		}

		m := mass(next, cell)
		sol.RawMass[n+1] = m
		if p.Renormalize && m > 0 {
			inv := sol.RawMass[0] / m
			for k := range next {
				next[k] *= inv
			}
		}
		// Clip the tiny negative undershoots that renormalisation of the
		// advective form can introduce (the conservative form never does).
		for k := range next {
			if next[k] < 0 {
				next[k] = 0
			}
		}
	}
	rec.Add("pde.fpk.solves", 1)
	rec.Add("pde.fpk.steps", float64(steps))
	if rec.Enabled() {
		span.End(slog.Int("steps", steps), slog.Int("nh", nh), slog.Int("nq", nq),
			slog.Float64("final_mass", sol.RawMass[steps]))
	} else {
		span.End()
	}
	return nil
}

func mass(field []float64, cell float64) float64 {
	var s float64
	for _, v := range field {
		s += v
	}
	return s * cell
}

// GaussianDensity builds a product-Gaussian initial density on the grid:
// N(meanH, sdH²) in h times N(meanQ, sdQ²) in q, normalised to unit
// rectangle-rule mass. It is the λ(0) initialisation used throughout the
// paper's evaluation (Section V).
func GaussianDensity(g grid.Grid2D, meanH, sdH, meanQ, sdQ float64) ([]float64, error) {
	if sdH <= 0 || sdQ <= 0 {
		return nil, fmt.Errorf("pde: GaussianDensity: standard deviations must be positive, got %g, %g", sdH, sdQ)
	}
	f := g.NewField()
	for i := 0; i < g.H.N; i++ {
		ph := numerics.NormalPDF(meanH, sdH, g.H.At(i))
		for j := 0; j < g.Q.N; j++ {
			f[g.Idx(i, j)] = ph * numerics.NormalPDF(meanQ, sdQ, g.Q.At(j))
		}
	}
	m := mass(f, g.CellArea())
	if m <= 0 {
		return nil, errors.New("pde: GaussianDensity: density mass vanished on the grid (mean far outside range?)")
	}
	for k := range f {
		f[k] /= m
	}
	return f, nil
}

package pde

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/numerics"
	"repro/internal/obs"
)

// FPKForm selects the spatial discretisation of the forward equation.
type FPKForm int

const (
	// Conservative solves the divergence (Kolmogorov-forward) form
	// ∂tλ + ∂h(b_h λ) + ∂q(b_q λ) = D_h ∂hhλ + D_q ∂qqλ with zero-flux
	// boundaries. Mass is conserved to round-off and the density stays
	// non-negative. This is the default.
	Conservative FPKForm = iota
	// Advective solves the paper-literal non-conservative form of Eq. (15),
	// ∂tλ + b_h ∂hλ + b_q ∂qλ = D_h ∂hhλ + D_q ∂qqλ, kept as an ablation.
	// It loses mass wherever ∂q b_q ≠ 0 (the control depends on q); the
	// solver renormalises when Renormalize is set and reports the raw drift.
	Advective
)

// FPKProblem specifies the forward transport of the mean-field density λ.
type FPKProblem struct {
	Grid grid.Grid2D
	Time grid.TimeMesh

	DiffH, DiffQ float64 // ½ϱh², ½ϱq²

	// DriftH is the channel drift at (t, h) (shared with the HJB problem).
	DriftH func(t, h float64) float64
	// DriftQ is the remaining-space drift at (t, h, q) with the optimal
	// control already substituted: b_q(t, h, q) = Qk[−w1·x*(t,h,q) − …].
	DriftQ func(t, h, q float64) float64

	Form FPKForm
	// Stepping selects implicit (default, unconditionally stable) or
	// explicit (CFL-bounded, ablation) time integration. The explicit
	// integrator supports the conservative form only.
	Stepping Stepping
	// Renormalize rescales the density to unit mass after every step. With
	// the conservative form this only removes round-off; with the advective
	// form it compensates the structural mass loss.
	Renormalize bool

	// Obs receives solve/sweep telemetry ("pde.fpk.*" names); nil means
	// no-op. The MFG layer threads core.Config.Obs through here.
	Obs obs.Recorder
}

// Validate checks that the problem is completely specified.
func (p *FPKProblem) Validate() error {
	if p.DriftH == nil || p.DriftQ == nil {
		return errors.New("pde: FPKProblem: DriftH and DriftQ are required")
	}
	if p.DiffH < 0 || p.DiffQ < 0 {
		return fmt.Errorf("pde: FPKProblem: diffusion coefficients must be non-negative, got %g, %g", p.DiffH, p.DiffQ)
	}
	if err := p.Grid.H.Validate(); err != nil {
		return err
	}
	if err := p.Grid.Q.Validate(); err != nil {
		return err
	}
	if p.Time.Steps < 1 {
		return fmt.Errorf("pde: FPKProblem: time mesh needs ≥1 step, got %d", p.Time.Steps)
	}
	if p.Form != Conservative && p.Form != Advective {
		return fmt.Errorf("pde: FPKProblem: unknown form %d", int(p.Form))
	}
	if p.Stepping != Implicit && p.Stepping != Explicit {
		return fmt.Errorf("pde: FPKProblem: unknown stepping %d", int(p.Stepping))
	}
	if p.Stepping == Explicit && p.Form != Conservative {
		return fmt.Errorf("pde: FPKProblem: the explicit integrator supports the conservative form only")
	}
	return nil
}

// FPKSolution stores the density at every time node and the mass trajectory
// before renormalisation (a diagnostic for the advective ablation).
type FPKSolution struct {
	Grid    grid.Grid2D
	Time    grid.TimeMesh
	Lambda  [][]float64 // density at t_n, flattened
	RawMass []float64   // ∫∫λ before renormalisation at each step
}

// DensityAt bilinearly interpolates λ at (t, h, q).
func (s *FPKSolution) DensityAt(t, h, q float64) (float64, error) {
	dt := s.Time.Dt()
	n := int(t/dt + 0.5)
	if n < 0 {
		n = 0
	}
	if n > s.Time.Steps {
		n = s.Time.Steps
	}
	return numerics.InterpBilinear(s.Grid, s.Lambda[n], h, q)
}

// Mass returns the rectangle-rule mass Σλ·dh·dq of the density at time index n.
func (s *FPKSolution) Mass(n int) float64 {
	var sum float64
	for _, v := range s.Lambda[n] {
		sum += v
	}
	return sum * s.Grid.CellArea()
}

// SolveFPK integrates the forward equation from the initial density λ0
// (flattened over the grid) through the whole time mesh using Lie splitting
// with one implicit tridiagonal sweep per dimension per step.
func SolveFPK(p *FPKProblem, lambda0 []float64) (*FPKSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid
	if err := checkField("initial density", lambda0, g.Size()); err != nil {
		return nil, err
	}
	for _, v := range lambda0 {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("pde: SolveFPK: initial density must be non-negative and finite, found %g", v)
		}
	}
	nh, nq := g.H.N, g.Q.N
	steps := p.Time.Steps
	dt := p.Time.Dt()
	cell := g.CellArea()

	rec := obs.OrNop(p.Obs)
	timed := rec.Enabled()
	span := rec.Start("pde.fpk.solve")

	sol := &FPKSolution{
		Grid:    g,
		Time:    p.Time,
		Lambda:  make([][]float64, steps+1),
		RawMass: make([]float64, steps+1),
	}
	cur := append([]float64(nil), lambda0...)
	sol.Lambda[0] = cur
	sol.RawMass[0] = mass(cur, cell)

	swH := newSweeper(nh)
	swQ := newSweeper(nq)

	for n := 0; n < steps; n++ {
		t := p.Time.At(n)
		next := g.NewField()
		copy(next, sol.Lambda[n])

		// Sweep in h (stride nq) for every q-column.
		var sweepStart time.Time
		if timed {
			sweepStart = time.Now()
		}
		for j := 0; j < nq; j++ {
			gather(swH.rhs, next, j, nq, nh)
			for i := 0; i < nh; i++ {
				swH.b[i] = p.DriftH(t, g.H.At(i))
			}
			var err error
			switch {
			case p.Stepping == Explicit:
				err = cflError(swH.explicitForwardConservative(dt, g.H.Step(), p.DiffH), steps)
			case p.Form == Conservative:
				err = swH.solveForwardConservative(dt, g.H.Step(), p.DiffH)
			default:
				err = swH.solveForwardAdvective(dt, g.H.Step(), p.DiffH)
			}
			if err != nil {
				return nil, fmt.Errorf("pde: FPK h-sweep at step %d, column %d: %w", n, j, err)
			}
			scatter(next, swH.sol, j, nq, nh)
		}
		rec.Add("pde.fpk.sweeps", float64(nq))
		if timed {
			rec.Observe("pde.fpk.sweep.h.seconds", time.Since(sweepStart).Seconds())
			sweepStart = time.Now()
		}

		// Sweep in q (stride 1) for every h-row.
		for i := 0; i < nh; i++ {
			h := g.H.At(i)
			start := i * nq
			gather(swQ.rhs, next, start, 1, nq)
			for j := 0; j < nq; j++ {
				swQ.b[j] = p.DriftQ(t, h, g.Q.At(j))
			}
			var err error
			switch {
			case p.Stepping == Explicit:
				err = cflError(swQ.explicitForwardConservative(dt, g.Q.Step(), p.DiffQ), steps)
			case p.Form == Conservative:
				err = swQ.solveForwardConservative(dt, g.Q.Step(), p.DiffQ)
			default:
				err = swQ.solveForwardAdvective(dt, g.Q.Step(), p.DiffQ)
			}
			if err != nil {
				return nil, fmt.Errorf("pde: FPK q-sweep at step %d, row %d: %w", n, i, err)
			}
			scatter(next, swQ.sol, start, 1, nq)
		}
		rec.Add("pde.fpk.sweeps", float64(nh))
		if timed {
			rec.Observe("pde.fpk.sweep.q.seconds", time.Since(sweepStart).Seconds())
		}

		m := mass(next, cell)
		sol.RawMass[n+1] = m
		if p.Renormalize && m > 0 {
			inv := sol.RawMass[0] / m
			for k := range next {
				next[k] *= inv
			}
		}
		// Clip the tiny negative undershoots that renormalisation of the
		// advective form can introduce (the conservative form never does).
		for k := range next {
			if next[k] < 0 {
				next[k] = 0
			}
		}
		sol.Lambda[n+1] = next
	}
	rec.Add("pde.fpk.solves", 1)
	rec.Add("pde.fpk.steps", float64(steps))
	span.End(slog.Int("steps", steps), slog.Int("nh", nh), slog.Int("nq", nq),
		slog.Float64("final_mass", sol.RawMass[steps]))
	return sol, nil
}

func mass(field []float64, cell float64) float64 {
	var s float64
	for _, v := range field {
		s += v
	}
	return s * cell
}

// GaussianDensity builds a product-Gaussian initial density on the grid:
// N(meanH, sdH²) in h times N(meanQ, sdQ²) in q, normalised to unit
// rectangle-rule mass. It is the λ(0) initialisation used throughout the
// paper's evaluation (Section V).
func GaussianDensity(g grid.Grid2D, meanH, sdH, meanQ, sdQ float64) ([]float64, error) {
	if sdH <= 0 || sdQ <= 0 {
		return nil, fmt.Errorf("pde: GaussianDensity: standard deviations must be positive, got %g, %g", sdH, sdQ)
	}
	f := g.NewField()
	for i := 0; i < g.H.N; i++ {
		ph := numerics.NormalPDF(meanH, sdH, g.H.At(i))
		for j := 0; j < g.Q.N; j++ {
			f[g.Idx(i, j)] = ph * numerics.NormalPDF(meanQ, sdQ, g.Q.At(j))
		}
	}
	m := mass(f, g.CellArea())
	if m <= 0 {
		return nil, errors.New("pde: GaussianDensity: density mass vanished on the grid (mean far outside range?)")
	}
	for k := range f {
		f[k] /= m
	}
	return f, nil
}

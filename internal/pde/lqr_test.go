package pde

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// Closed-form validation of the control-coupled HJB loop: the scalar
// linear-quadratic regulator
//
//	dq = −x dt,   U(x, q) = −q² − x²,   V(T, ·) = 0
//
// has the exact solution V(t, q) = −q²·tanh(T−t) with optimal feedback
// x*(t, q) = q·tanh(T−t) (= −∂qV/2). On q ∈ [0, 1] the optimal control lies
// inside [0, 1], so the clamp is inactive and the solver must reproduce the
// Riccati solution to discretisation accuracy.
func TestHJBMatchesLQRClosedForm(t *testing.T) {
	const T = 1.0
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: 3},
		grid.Axis{Min: 0, Max: 1, N: 201},
	)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := grid.NewTimeMesh(T, 800)
	if err != nil {
		t.Fatal(err)
	}
	p := &HJBProblem{
		Grid:   g,
		Time:   tm,
		DriftH: func(_, _ float64) float64 { return 0 },
		DriftQ: func(_, x float64) float64 { return -x },
		Control: func(_, _, _ float64, dV float64) float64 {
			x := -dV / 2
			if x < 0 {
				return 0
			}
			if x > 1 {
				return 1
			}
			return x
		},
		Running: func(_, x, _, q float64) float64 { return -q*q - x*x },
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatal(err)
	}

	// Compare V and x* against the Riccati solution away from the q=1
	// boundary (the Neumann condition perturbs the outermost cells).
	for _, frac := range []float64{0, 0.25, 0.5} {
		n := int(frac * float64(tm.Steps))
		tanh := math.Tanh(T - tm.At(n))
		for j := 20; j < g.Q.N-20; j++ {
			q := g.Q.At(j)
			wantV := -q * q * tanh
			gotV := sol.V[n][g.Idx(1, j)]
			if math.Abs(gotV-wantV) > 0.01 {
				t.Fatalf("V(t=%.2f, q=%.3f) = %.5f, Riccati %.5f", tm.At(n), q, gotV, wantV)
			}
			wantX := q * tanh
			gotX := sol.X[n][g.Idx(1, j)]
			if math.Abs(gotX-wantX) > 0.02 {
				t.Fatalf("x*(t=%.2f, q=%.3f) = %.5f, Riccati %.5f", tm.At(n), q, gotX, wantX)
			}
		}
	}
}

// The same LQR with diffusion has the exact solution
// V(t,q) = −q²·tanh(T−t) − σ²·ln cosh(T−t): the noise adds a state-
// independent offset, leaving the feedback law unchanged.
func TestHJBMatchesStochasticLQRClosedForm(t *testing.T) {
	const (
		T     = 1.0
		sigma = 0.15
	)
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: 3},
		grid.Axis{Min: -1, Max: 2, N: 301}, // widen so boundary effects stay away from [0,1]
	)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := grid.NewTimeMesh(T, 800)
	if err != nil {
		t.Fatal(err)
	}
	p := &HJBProblem{
		Grid:   g,
		Time:   tm,
		DiffQ:  0.5 * sigma * sigma,
		DriftH: func(_, _ float64) float64 { return 0 },
		DriftQ: func(_, x float64) float64 { return -x },
		Control: func(_, _, _ float64, dV float64) float64 {
			x := -dV / 2
			if x < -0.5 { // admit the slightly negative controls of q<0 nodes
				return -0.5
			}
			if x > 2 {
				return 2
			}
			return x
		},
		Running: func(_, x, _, q float64) float64 { return -q*q - x*x },
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatal(err)
	}
	n := 0 // t = 0, the fully-propagated level
	tau := T
	offset := sigma * sigma * math.Log(math.Cosh(tau))
	for j := 0; j < g.Q.N; j++ {
		q := g.Q.At(j)
		if q < 0 || q > 1 {
			continue // interior of the physical range only
		}
		want := -q*q*math.Tanh(tau) - offset
		got := sol.V[n][g.Idx(1, j)]
		if math.Abs(got-want) > 0.015 {
			t.Fatalf("stochastic LQR: V(0, q=%.3f) = %.5f, closed form %.5f", q, got, want)
		}
	}
}

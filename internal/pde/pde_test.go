package pde

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/numerics"
)

func testGrid(t *testing.T, nh, nq int) grid.Grid2D {
	t.Helper()
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: nh},
		grid.Axis{Min: 0, Max: 1, N: nq},
	)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return g
}

func testMesh(t *testing.T, horizon float64, steps int) grid.TimeMesh {
	t.Helper()
	tm, err := grid.NewTimeMesh(horizon, steps)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	return tm
}

// --- HJB -------------------------------------------------------------------

// With zero dynamics and constant running utility c, V(0) = c·T exactly.
func TestHJBConstantRunningUtility(t *testing.T) {
	g := testGrid(t, 5, 5)
	p := &HJBProblem{
		Grid:    g,
		Time:    testMesh(t, 2, 40),
		DriftH:  func(_, _ float64) float64 { return 0 },
		DriftQ:  func(_, _ float64) float64 { return 0 },
		Control: func(_, _, _, _ float64) float64 { return 0 },
		Running: func(_, _, _, _ float64) float64 { return 3 },
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatalf("SolveHJB: %v", err)
	}
	for k, v := range sol.V[0] {
		if math.Abs(v-6) > 1e-9 {
			t.Fatalf("V(0)[%d] = %g, want 6", k, v)
		}
	}
}

// Diffusion does not disturb a spatially constant solution (Neumann BCs).
func TestHJBDiffusionPreservesConstant(t *testing.T) {
	g := testGrid(t, 9, 9)
	p := &HJBProblem{
		Grid:     g,
		Time:     testMesh(t, 1, 20),
		DiffH:    0.3,
		DiffQ:    0.2,
		DriftH:   func(_, _ float64) float64 { return 0 },
		DriftQ:   func(_, _ float64) float64 { return 0 },
		Control:  func(_, _, _, _ float64) float64 { return 0 },
		Running:  func(_, _, _, _ float64) float64 { return 0 },
		Terminal: func(_, _ float64) float64 { return 5 },
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatalf("SolveHJB: %v", err)
	}
	for k, v := range sol.V[0] {
		if math.Abs(v-5) > 1e-9 {
			t.Fatalf("V(0)[%d] = %g, want 5", k, v)
		}
	}
}

// Discrete maximum principle: with zero running utility, V stays within the
// terminal bounds.
func TestHJBMaximumPrinciple(t *testing.T) {
	g := testGrid(t, 11, 11)
	p := &HJBProblem{
		Grid:    g,
		Time:    testMesh(t, 1, 30),
		DiffH:   0.1,
		DiffQ:   0.1,
		DriftH:  func(_, h float64) float64 { return 0.5 - h },
		DriftQ:  func(_, x float64) float64 { return -0.3 * x },
		Control: func(_, _, _, dV float64) float64 { return numerics.Clamp01(-dV) },
		Running: func(_, _, _, _ float64) float64 { return 0 },
		Terminal: func(h, q float64) float64 {
			return math.Sin(3*h) * math.Cos(2*q) // values in [-1, 1]
		},
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatalf("SolveHJB: %v", err)
	}
	for n := range sol.V {
		for k, v := range sol.V[n] {
			if v > 1+1e-9 || v < -1-1e-9 {
				t.Fatalf("V[%d][%d] = %g violates the maximum principle", n, k, v)
			}
		}
	}
}

// Pure advection in q: V(t, q) = Terminal(q + b·(T−t)) for drift b.
// The upwind scheme smears but must move the bump the right distance.
func TestHJBAdvectionTransport(t *testing.T) {
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: 3},
		grid.Axis{Min: 0, Max: 10, N: 201},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := 2.0 // constant positive drift
	p := &HJBProblem{
		Grid:    g,
		Time:    testMesh(t, 1, 400),
		DriftH:  func(_, _ float64) float64 { return 0 },
		DriftQ:  func(_, _ float64) float64 { return b },
		Control: func(_, _, _, _ float64) float64 { return 0 },
		Running: func(_, _, _, _ float64) float64 { return 0 },
		Terminal: func(_, q float64) float64 {
			d := q - 7
			return math.Exp(-d * d) // bump at q=7
		},
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatalf("SolveHJB: %v", err)
	}
	// At t=0 the bump should sit near q = 7 − b·T = 5.
	var peakQ float64
	best := math.Inf(-1)
	for j := 0; j < g.Q.N; j++ {
		v := sol.V[0][g.Idx(1, j)]
		if v > best {
			best = v
			peakQ = g.Q.At(j)
		}
	}
	if math.Abs(peakQ-5) > 0.3 {
		t.Errorf("advected peak at q=%g, want ≈5", peakQ)
	}
}

func TestHJBValidation(t *testing.T) {
	g := testGrid(t, 5, 5)
	base := func() *HJBProblem {
		return &HJBProblem{
			Grid:    g,
			Time:    testMesh(t, 1, 5),
			DriftH:  func(_, _ float64) float64 { return 0 },
			DriftQ:  func(_, _ float64) float64 { return 0 },
			Control: func(_, _, _, _ float64) float64 { return 0 },
			Running: func(_, _, _, _ float64) float64 { return 0 },
		}
	}
	p := base()
	p.Running = nil
	if _, err := SolveHJB(p); err == nil {
		t.Error("missing Running should be rejected")
	}
	p = base()
	p.DiffH = -1
	if _, err := SolveHJB(p); err == nil {
		t.Error("negative diffusion should be rejected")
	}
	p = base()
	p.Time = grid.TimeMesh{Horizon: 1, Steps: 0}
	if _, err := SolveHJB(p); err == nil {
		t.Error("empty time mesh should be rejected")
	}
}

func TestHJBSolutionInterpolators(t *testing.T) {
	g := testGrid(t, 5, 5)
	p := &HJBProblem{
		Grid:    g,
		Time:    testMesh(t, 1, 10),
		DriftH:  func(_, _ float64) float64 { return 0 },
		DriftQ:  func(_, _ float64) float64 { return 0 },
		Control: func(_, _, _, _ float64) float64 { return 0.5 },
		Running: func(_, _, _, _ float64) float64 { return 1 },
	}
	sol, err := SolveHJB(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sol.ValueAt(0, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("ValueAt(0) = %g, want 1", v)
	}
	x, err := sol.ControlAt(0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0.5 {
		t.Errorf("ControlAt = %g, want 0.5", x)
	}
	// Out-of-range times clamp.
	if _, err := sol.ValueAt(-5, 0.5, 0.5); err != nil {
		t.Errorf("negative time should clamp, got error %v", err)
	}
	if _, err := sol.ValueAt(99, 0.5, 0.5); err != nil {
		t.Errorf("late time should clamp, got error %v", err)
	}
}

// --- FPK -------------------------------------------------------------------

func gaussianInit(t *testing.T, g grid.Grid2D) []float64 {
	t.Helper()
	f, err := GaussianDensity(g, 0.5, 0.15, 0.5, 0.1)
	if err != nil {
		t.Fatalf("GaussianDensity: %v", err)
	}
	return f
}

func TestGaussianDensityUnitMass(t *testing.T) {
	g := testGrid(t, 21, 21)
	f := gaussianInit(t, g)
	var m float64
	for _, v := range f {
		m += v
	}
	m *= g.CellArea()
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("mass = %g, want 1", m)
	}
	for k, v := range f {
		if v < 0 {
			t.Fatalf("negative density at %d: %g", k, v)
		}
	}
	if _, err := GaussianDensity(g, 0.5, 0, 0.5, 0.1); err == nil {
		t.Error("zero sd should be rejected")
	}
}

// Conservative form: mass is conserved to round-off even with strongly
// state-dependent drift, without renormalisation.
func TestFPKConservativeMassExact(t *testing.T) {
	g := testGrid(t, 15, 15)
	p := &FPKProblem{
		Grid:        g,
		Time:        testMesh(t, 1, 50),
		DiffH:       0.02,
		DiffQ:       0.02,
		DriftH:      func(_, h float64) float64 { return 0.5 - h },
		DriftQ:      func(_, h, q float64) float64 { return math.Sin(5*q) * math.Cos(3*h) },
		Form:        Conservative,
		Renormalize: false,
	}
	sol, err := SolveFPK(p, gaussianInit(t, g))
	if err != nil {
		t.Fatalf("SolveFPK: %v", err)
	}
	m0 := sol.Mass(0)
	for n := range sol.Lambda {
		if math.Abs(sol.Mass(n)-m0) > 1e-9 {
			t.Fatalf("mass at step %d drifted: %g vs %g", n, sol.Mass(n), m0)
		}
	}
}

// Positivity: the density never goes negative.
func TestFPKPositivity(t *testing.T) {
	g := testGrid(t, 15, 15)
	p := &FPKProblem{
		Grid:   g,
		Time:   testMesh(t, 1, 50),
		DiffH:  0.05,
		DiffQ:  0.05,
		DriftH: func(_, h float64) float64 { return 2 * (0.2 - h) },
		DriftQ: func(_, _, q float64) float64 { return 3 * (0.8 - q) },
		Form:   Conservative,
	}
	sol, err := SolveFPK(p, gaussianInit(t, g))
	if err != nil {
		t.Fatalf("SolveFPK: %v", err)
	}
	for n := range sol.Lambda {
		for k, v := range sol.Lambda[n] {
			if v < 0 {
				t.Fatalf("negative density at step %d node %d: %g", n, k, v)
			}
		}
	}
}

// Constant advection moves the centre of mass at the drift velocity.
func TestFPKAdvectionMovesMean(t *testing.T) {
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: 3},
		grid.Axis{Min: 0, Max: 10, N: 201},
	)
	if err != nil {
		t.Fatal(err)
	}
	init, err := GaussianDensity(g, 0.5, 0.3, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	b := 2.0
	p := &FPKProblem{
		Grid:   g,
		Time:   testMesh(t, 1, 200),
		DiffQ:  0.001,
		DriftH: func(_, _ float64) float64 { return 0 },
		DriftQ: func(_, _, _ float64) float64 { return b },
		Form:   Conservative,
	}
	sol, err := SolveFPK(p, init)
	if err != nil {
		t.Fatal(err)
	}
	meanQ := func(f []float64) float64 {
		var num, den float64
		for i := 0; i < g.H.N; i++ {
			for j := 0; j < g.Q.N; j++ {
				v := f[g.Idx(i, j)]
				num += v * g.Q.At(j)
				den += v
			}
		}
		return num / den
	}
	shift := meanQ(sol.Lambda[len(sol.Lambda)-1]) - meanQ(sol.Lambda[0])
	if math.Abs(shift-b) > 0.1 {
		t.Errorf("mean moved %g over T=1, want ≈%g", shift, b)
	}
}

// Pure diffusion spreads a Gaussian at the analytic rate: Var(t) = Var(0)+2Dt
// while the mass stays far from the boundaries.
func TestFPKDiffusionVarianceGrowth(t *testing.T) {
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 0, Max: 1, N: 3},
		grid.Axis{Min: 0, Max: 10, N: 201},
	)
	if err != nil {
		t.Fatal(err)
	}
	init, err := GaussianDensity(g, 0.5, 0.3, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	D := 0.05
	p := &FPKProblem{
		Grid:   g,
		Time:   testMesh(t, 1, 200),
		DiffQ:  D,
		DriftH: func(_, _ float64) float64 { return 0 },
		DriftQ: func(_, _, _ float64) float64 { return 0 },
		Form:   Conservative,
	}
	sol, err := SolveFPK(p, init)
	if err != nil {
		t.Fatal(err)
	}
	varQ := func(f []float64) float64 {
		var num, den, mean float64
		for i := 0; i < g.H.N; i++ {
			for j := 0; j < g.Q.N; j++ {
				v := f[g.Idx(i, j)]
				num += v * g.Q.At(j)
				den += v
			}
		}
		mean = num / den
		var acc float64
		for i := 0; i < g.H.N; i++ {
			for j := 0; j < g.Q.N; j++ {
				d := g.Q.At(j) - mean
				acc += f[g.Idx(i, j)] * d * d
			}
		}
		return acc / den
	}
	v0 := varQ(sol.Lambda[0])
	v1 := varQ(sol.Lambda[len(sol.Lambda)-1])
	want := v0 + 2*D
	if math.Abs(v1-want)/want > 0.05 {
		t.Errorf("variance after T=1: %g, want ≈%g (started at %g)", v1, want, v0)
	}
}

// OU drift relaxes the density toward the stationary Gaussian: for
// b(q) = θ(μ−q) with diffusion D, Var_∞ = D/θ. The first-order upwind scheme
// adds numerical diffusion ≈ |b|·dx/2, so the error must shrink roughly
// linearly under grid refinement.
func TestFPKOUStationaryVariance(t *testing.T) {
	theta, mu, D := 2.0, 5.0, 0.08
	wantVar := D / theta

	run := func(nq, steps int) float64 {
		g, err := grid.NewGrid2D(
			grid.Axis{Min: 0, Max: 1, N: 3},
			grid.Axis{Min: 0, Max: 10, N: nq},
		)
		if err != nil {
			t.Fatal(err)
		}
		init, err := GaussianDensity(g, 0.5, 0.3, 6, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		p := &FPKProblem{
			Grid:   g,
			Time:   testMesh(t, 6, steps), // long enough to equilibrate
			DiffQ:  D,
			DriftH: func(_, _ float64) float64 { return 0 },
			DriftQ: func(_, _, q float64) float64 { return theta * (mu - q) },
			Form:   Conservative,
		}
		sol, err := SolveFPK(p, init)
		if err != nil {
			t.Fatal(err)
		}
		last := sol.Lambda[len(sol.Lambda)-1]
		var num, den float64
		for i := 0; i < g.H.N; i++ {
			for j := 0; j < g.Q.N; j++ {
				v := last[g.Idx(i, j)]
				num += v * g.Q.At(j)
				den += v
			}
		}
		mean := num / den
		if math.Abs(mean-mu) > 0.05 {
			t.Errorf("stationary mean %g, want ≈%g", mean, mu)
		}
		var acc float64
		for i := 0; i < g.H.N; i++ {
			for j := 0; j < g.Q.N; j++ {
				d := g.Q.At(j) - mean
				acc += last[g.Idx(i, j)] * d * d
			}
		}
		return acc / den
	}

	coarse := math.Abs(run(201, 600) - wantVar)
	fine := math.Abs(run(401, 1200) - wantVar)
	if fine/wantVar > 0.15 {
		t.Errorf("fine-grid stationary variance error %g of %g exceeds 15%%", fine, wantVar)
	}
	if fine > 0.75*coarse {
		t.Errorf("refinement did not reduce the error: coarse %g, fine %g", coarse, fine)
	}
}

// The advective (paper-literal) form loses mass under state-dependent drift;
// renormalisation restores it and RawMass records the loss.
func TestFPKAdvectiveFormMassDrift(t *testing.T) {
	g := testGrid(t, 15, 15)
	mk := func(form FPKForm, renorm bool) *FPKSolution {
		p := &FPKProblem{
			Grid:        g,
			Time:        testMesh(t, 1, 50),
			DiffH:       0.02,
			DiffQ:       0.02,
			DriftH:      func(_, h float64) float64 { return 0.5 - h },
			DriftQ:      func(_, _, q float64) float64 { return 2 * (0.3 - q) }, // ∂q b ≠ 0
			Form:        form,
			Renormalize: renorm,
		}
		sol, err := SolveFPK(p, gaussianInit(t, g))
		if err != nil {
			t.Fatalf("SolveFPK: %v", err)
		}
		return sol
	}
	adv := mk(Advective, true)
	n := len(adv.RawMass) - 1
	if math.Abs(adv.RawMass[n]-adv.RawMass[0]) < 1e-6 {
		t.Error("advective form should show raw mass drift under ∂q b ≠ 0")
	}
	if math.Abs(adv.Mass(n)-adv.Mass(0)) > 1e-9 {
		t.Error("renormalisation should restore the mass")
	}
	cons := mk(Conservative, false)
	if math.Abs(cons.RawMass[n]-cons.RawMass[0]) > 1e-9 {
		t.Error("conservative form must not drift")
	}
}

func TestFPKValidation(t *testing.T) {
	g := testGrid(t, 5, 5)
	base := func() *FPKProblem {
		return &FPKProblem{
			Grid:   g,
			Time:   testMesh(t, 1, 5),
			DriftH: func(_, _ float64) float64 { return 0 },
			DriftQ: func(_, _, _ float64) float64 { return 0 },
		}
	}
	p := base()
	p.DriftQ = nil
	if _, err := SolveFPK(p, gaussianInit(t, g)); err == nil {
		t.Error("missing DriftQ should be rejected")
	}
	p = base()
	if _, err := SolveFPK(p, make([]float64, 3)); err == nil {
		t.Error("wrong-size initial density should be rejected")
	}
	p = base()
	bad := gaussianInit(t, g)
	bad[0] = -1
	if _, err := SolveFPK(p, bad); err == nil {
		t.Error("negative initial density should be rejected")
	}
	p = base()
	p.Form = FPKForm(99)
	if _, err := SolveFPK(p, gaussianInit(t, g)); err == nil {
		t.Error("unknown form should be rejected")
	}
}

func TestFPKDensityAt(t *testing.T) {
	g := testGrid(t, 11, 11)
	p := &FPKProblem{
		Grid:   g,
		Time:   testMesh(t, 1, 10),
		DiffH:  0.01,
		DiffQ:  0.01,
		DriftH: func(_, _ float64) float64 { return 0 },
		DriftQ: func(_, _, _ float64) float64 { return 0 },
	}
	sol, err := SolveFPK(p, gaussianInit(t, g))
	if err != nil {
		t.Fatal(err)
	}
	v, err := sol.DensityAt(0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("central density should be positive, got %g", v)
	}
	if _, err := sol.DensityAt(-1, 0.5, 0.5); err != nil {
		t.Errorf("early time should clamp: %v", err)
	}
}

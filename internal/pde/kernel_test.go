package pde

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestKernelConfigValidate(t *testing.T) {
	good := []KernelConfig{
		{},
		{Workers: 8},
		{Precision: PrecisionFloat64},
		{Workers: 2, Precision: PrecisionFloat32},
	}
	for _, kc := range good {
		if err := kc.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", kc, err)
		}
	}
	if err := (KernelConfig{Workers: -1}).Validate(); err == nil {
		t.Error("negative workers accepted")
	}
	if err := (KernelConfig{Precision: "float16"}).Validate(); err == nil {
		t.Error("unknown precision accepted")
	}
	if w := (KernelConfig{Workers: 1 << 20}).effectiveWorkers(); w != maxKernelWorkers {
		t.Errorf("effective workers = %d, want clamp to %d", w, maxKernelWorkers)
	}
	if w := (KernelConfig{}).effectiveWorkers(); w != 1 {
		t.Errorf("zero-value effective workers = %d, want 1", w)
	}
}

func TestSchemeNamesDerivedFromRegistry(t *testing.T) {
	names := SchemeNames()
	if len(names) != len(schemeRegistry) {
		t.Fatalf("SchemeNames has %d entries, registry has %d", len(names), len(schemeRegistry))
	}
	for i, sch := range schemeRegistry {
		if names[i] != sch.Name() {
			t.Errorf("SchemeNames[%d] = %q, registry says %q", i, names[i], sch.Name())
		}
	}
	if _, err := SchemeByName("nope"); err == nil || !strings.Contains(err.Error(), strings.Join(names, ", ")) {
		t.Errorf("unknown-scheme error should list the registry names, got %v", err)
	}
}

// kernelTestProblems builds one HJB and one FPK problem on a grid large
// enough to engage every parallel phase (batch threshold included).
func kernelTestProblems(t *testing.T, st Stepping, steps int) (*HJBProblem, *FPKProblem, []float64) {
	t.Helper()
	hAxis, err := grid.NewAxis(1, 10, 41)
	if err != nil {
		t.Fatal(err)
	}
	qAxis, err := grid.NewAxis(0, 100, 101)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.NewGrid2D(hAxis, qAxis)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := grid.NewTimeMesh(1, steps)
	if err != nil {
		t.Fatal(err)
	}
	hp := &HJBProblem{
		Grid:     g,
		Time:     tm,
		DiffH:    0.05,
		DiffQ:    0.4,
		DriftH:   func(_, h float64) float64 { return 2 * (5 - h) },
		DriftQ:   func(_, x float64) float64 { return -40 * x },
		Control:  func(_, h, q, dVdq float64) float64 { return 0.5 - 0.01*dVdq + 0.001*h - 0.0001*q },
		Running:  func(_, x, h, q float64) float64 { return 2*h - 0.01*q - x*x },
		Stepping: st,
	}
	fp := &FPKProblem{
		Grid:        g,
		Time:        tm,
		DiffH:       0.05,
		DiffQ:       0.4,
		DriftH:      hp.DriftH,
		DriftQ:      func(_, h, q float64) float64 { return -0.12*q + 0.3*h },
		Form:        Conservative,
		Stepping:    st,
		Renormalize: true,
	}
	lambda0, err := GaussianDensity(g, 5, 1.5, 70, 10)
	if err != nil {
		t.Fatal(err)
	}
	return hp, fp, lambda0
}

func solveBothKernels(t *testing.T, kc KernelConfig, st Stepping, steps int) (*HJBSolution, *FPKSolution) {
	t.Helper()
	hp, fp, lambda0 := kernelTestProblems(t, st, steps)
	ws, err := NewWorkspaceKernel(hp.Grid, kc)
	if err != nil {
		t.Fatal(err)
	}
	hsol := NewHJBSolution(hp.Grid, hp.Time)
	if err := SolveHJBInto(ws, nil, hp, hsol); err != nil {
		t.Fatalf("SolveHJBInto(%+v): %v", kc, err)
	}
	fsol := NewFPKSolution(fp.Grid, fp.Time)
	if err := SolveFPKInto(ws, nil, fp, lambda0, fsol); err != nil {
		t.Fatalf("SolveFPKInto(%+v): %v", kc, err)
	}
	return hsol, fsol
}

// TestParallelSweepDeterminism: in float64 mode, every worker count must
// produce byte-identical solutions — the partition is invisible in the
// results. This is the contract that lets the engine's golden fingerprint
// and cache bit-equality hold with parallelism enabled.
func TestParallelSweepDeterminism(t *testing.T) {
	for _, st := range []Stepping{Implicit, Explicit} {
		steps := 30
		if st == Explicit {
			steps = 1200 // satisfy the CFL bound on the fine grid
		}
		ref, refF := solveBothKernels(t, KernelConfig{Workers: 1}, st, steps)
		for _, workers := range []int{2, 4, 7} {
			got, gotF := solveBothKernels(t, KernelConfig{Workers: workers}, st, steps)
			for n := range ref.V {
				for k := range ref.V[n] {
					if got.V[n][k] != ref.V[n][k] || got.X[n][k] != ref.X[n][k] {
						t.Fatalf("stepping %v: V/X differ at level %d, index %d with %d workers",
							st, n, k, workers)
					}
				}
			}
			for n := range refF.Lambda {
				for k := range refF.Lambda[n] {
					if gotF.Lambda[n][k] != refF.Lambda[n][k] {
						t.Fatalf("stepping %v: λ differs at level %d, index %d with %d workers",
							st, n, k, workers)
					}
				}
			}
		}
	}
}

// TestParallelSweepRace exercises every parallel phase with more workers than
// most CI machines have cores so `go test -race` can detect sharing bugs
// between sweep workers (the race detector tracks happens-before, so
// time-sliced goroutines on few cores still expose unsynchronised sharing).
func TestParallelSweepRace(t *testing.T) {
	kc := KernelConfig{Workers: 8}
	solveBothKernels(t, kc, Implicit, 20)
	solveBothKernels(t, kc, Explicit, 1200)
	kc.Precision = PrecisionFloat32
	solveBothKernels(t, kc, Implicit, 20)
}

// TestFloat32KernelAccuracy: the fast path must track the float64 solution to
// single-precision accuracy on a well-conditioned problem. The end-to-end
// equilibrium contract lives in the verify layer's precision harness; this
// guards the kernel in isolation.
func TestFloat32KernelAccuracy(t *testing.T) {
	ref, refF := solveBothKernels(t, KernelConfig{}, Implicit, 30)
	got, gotF := solveBothKernels(t, KernelConfig{Precision: PrecisionFloat32, Workers: 2}, Implicit, 30)
	var scale float64
	for _, v := range ref.V[0] {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for k := range ref.V[0] {
		if d := math.Abs(got.V[0][k] - ref.V[0][k]); d > 1e-4*scale {
			t.Fatalf("float32 value field off at %d: |Δ| = %g (scale %g)", k, d, scale)
		}
	}
	n := len(refF.Lambda) - 1
	var peak float64
	for _, v := range refF.Lambda[n] {
		if v > peak {
			peak = v
		}
	}
	for k := range refF.Lambda[n] {
		if d := math.Abs(gotF.Lambda[n][k] - refF.Lambda[n][k]); d > 1e-3*peak {
			t.Fatalf("float32 density off at %d: |Δ| = %g (peak %g)", k, d, peak)
		}
	}
}

// TestFloat32RejectsExplicit: the float32 kernel is an implicit-only fast
// path.
func TestFloat32RejectsExplicit(t *testing.T) {
	hp, fp, lambda0 := kernelTestProblems(t, Explicit, 1200)
	ws, err := NewWorkspaceKernel(hp.Grid, KernelConfig{Precision: PrecisionFloat32})
	if err != nil {
		t.Fatal(err)
	}
	if err := SolveHJBInto(ws, nil, hp, NewHJBSolution(hp.Grid, hp.Time)); err == nil {
		t.Error("float32 + explicit HJB accepted")
	}
	if err := SolveFPKInto(ws, nil, fp, lambda0, NewFPKSolution(fp.Grid, fp.Time)); err == nil {
		t.Error("float32 + explicit FPK accepted")
	}
}

// BenchmarkSweepParallel measures one full backward-forward integration pass
// at increasing worker counts on a grid large enough for every phase to
// engage.
func BenchmarkSweepParallel(b *testing.B) {
	hAxis, _ := grid.NewAxis(1, 10, 41)
	qAxis, _ := grid.NewAxis(0, 100, 101)
	g, _ := grid.NewGrid2D(hAxis, qAxis)
	tm, _ := grid.NewTimeMesh(1, 30)
	hp := &HJBProblem{
		Grid:    g,
		Time:    tm,
		DiffH:   0.05,
		DiffQ:   0.4,
		DriftH:  func(_, h float64) float64 { return 2 * (5 - h) },
		DriftQ:  func(_, x float64) float64 { return -40 * x },
		Control: func(_, h, q, dVdq float64) float64 { return 0.5 - 0.01*dVdq + 0.001*h - 0.0001*q },
		Running: func(_, x, h, q float64) float64 { return 2*h - 0.01*q - x*x },
	}
	fp := &FPKProblem{
		Grid:        g,
		Time:        tm,
		DiffH:       0.05,
		DiffQ:       0.4,
		DriftH:      hp.DriftH,
		DriftQ:      func(_, h, q float64) float64 { return -0.12*q + 0.3*h },
		Form:        Conservative,
		Renormalize: true,
	}
	lambda0, err := GaussianDensity(g, 5, 1.5, 70, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ws, err := NewWorkspaceKernel(g, KernelConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			hsol := NewHJBSolution(g, tm)
			fsol := NewFPKSolution(g, tm)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := SolveHJBInto(ws, nil, hp, hsol); err != nil {
					b.Fatal(err)
				}
				if err := SolveFPKInto(ws, nil, fp, lambda0, fsol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("float32", func(b *testing.B) {
		ws, err := NewWorkspaceKernel(g, KernelConfig{Workers: 4, Precision: PrecisionFloat32})
		if err != nil {
			b.Fatal(err)
		}
		hsol := NewHJBSolution(g, tm)
		fsol := NewFPKSolution(g, tm)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := SolveHJBInto(ws, nil, hp, hsol); err != nil {
				b.Fatal(err)
			}
			if err := SolveFPKInto(ws, nil, fp, lambda0, fsol); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package pde implements the finite-difference solvers for the two coupled
// partial differential equations at the core of MFG-CP:
//
//   - the backward Hamilton–Jacobi–Bellman equation (Eq. 20) giving the
//     generic EDP's value function and, via Theorem 1, its optimal caching
//     strategy;
//   - the forward Fokker–Planck–Kolmogorov equation (Eq. 15) transporting the
//     mean-field distribution of EDP states.
//
// Both are solved with unconditionally stable operator splitting (Lie
// splitting over the h- and q-dimensions), implicit upwind advection and
// implicit diffusion, so every 1-D sweep is a single tridiagonal solve. The
// schemes are monotone (M-matrix structure), which gives the HJB solver a
// discrete maximum principle and keeps the FPK density non-negative. The FPK
// default uses the conservative divergence form, which conserves probability
// mass exactly with reflecting (zero-flux) boundaries; the paper-literal
// advective form of Eq. (15) is available as an ablation.
package pde

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// line is a strided view over a flattened 2-D field, used to sweep either
// dimension with the same 1-D kernels.
type line struct {
	buf []float64 // gathered values, len n
}

func gather(dst, field []float64, start, stride, n int) {
	for i := 0; i < n; i++ {
		dst[i] = field[start+i*stride]
	}
}

func scatter(field, src []float64, start, stride, n int) {
	for i := 0; i < n; i++ {
		field[start+i*stride] = src[i]
	}
}

// sweeper owns the reusable buffers for 1-D implicit sweeps of length n.
type sweeper struct {
	n    int
	tri  *linalg.Tridiag
	rhs  linalg.Vector
	sol  linalg.Vector
	b    linalg.Vector // drift at the n nodes of the current line
	line line
}

func newSweeper(n int) *sweeper {
	return &sweeper{
		n:    n,
		tri:  linalg.NewTridiag(n),
		rhs:  linalg.NewVector(n),
		sol:  linalg.NewVector(n),
		b:    linalg.NewVector(n),
		line: line{buf: make([]float64, n)},
	}
}

// solveBackwardValue performs one implicit sweep of the backward (HJB) form
//
//	(I − dt·L) v_new = v_old,   L v = b(x)·∂v + D·∂²v
//
// with upwind advection and homogeneous Neumann boundaries (∂v/∂n = 0). The
// drift values b must be loaded in s.b and the old values in s.rhs before the
// call; the solution lands in s.sol. The assembled matrix is an M-matrix with
// unit row sums minus the off-diagonal mass, hence diagonally dominant.
func (s *sweeper) solveBackwardValue(dt, dx, diff float64) error {
	n := s.n
	dd := diff / (dx * dx) // D/dx²
	for i := 0; i < n; i++ {
		b := s.b[i]
		var lo, up float64 // off-diagonal weights of L at i−1 and i+1
		if b >= 0 {
			up += b / dx // forward difference b(v_{i+1}−v_i)/dx
		} else {
			lo += -b / dx // backward difference b(v_i−v_{i−1})/dx
		}
		lo += dd
		up += dd
		// Neumann boundaries fold the ghost node into the diagonal: the
		// ghost value equals the boundary value, so the off-diagonal weight
		// moves onto the diagonal, cancelling there.
		switch i {
		case 0:
			s.tri.A[i] = 0
			s.tri.B[i] = 1 + dt*up
			s.tri.C[i] = -dt * up
		case n - 1:
			s.tri.A[i] = -dt * lo
			s.tri.B[i] = 1 + dt*lo
			s.tri.C[i] = 0
		default:
			s.tri.A[i] = -dt * lo
			s.tri.B[i] = 1 + dt*(lo+up)
			s.tri.C[i] = -dt * up
		}
	}
	return s.tri.Solve(s.sol, s.rhs)
}

// solveForwardConservative performs one implicit sweep of the forward FPK in
// conservative (divergence) form with zero-flux boundaries:
//
//	(I + dt·div F) λ_new = λ_old,
//	F_{i+1/2} = b⁺_{i+1/2} λ_i + b⁻_{i+1/2} λ_{i+1} − D (λ_{i+1}−λ_i)/dx.
//
// Interface drifts are arithmetic means of the nodal drifts in s.b. The
// matrix has unit column sums, so Σλ is conserved to round-off, and it is an
// M-matrix, so positivity is preserved.
func (s *sweeper) solveForwardConservative(dt, dx, diff float64) error {
	n := s.n
	r := dt / dx
	dd := diff / dx // D/dx (flux units)
	for i := 0; i < n; i++ {
		var bUp, bLo float64 // interface drifts at i+1/2 and i−1/2
		if i < n-1 {
			bUp = 0.5 * (s.b[i] + s.b[i+1])
		}
		if i > 0 {
			bLo = 0.5 * (s.b[i-1] + s.b[i])
		}
		bUpP, bUpM := math.Max(bUp, 0), math.Min(bUp, 0)
		bLoP, bLoM := math.Max(bLo, 0), math.Min(bLo, 0)

		diag := 1.0
		var lo, up float64
		if i < n-1 { // flux through the upper face exists
			diag += r * (bUpP + dd)
			up = r * (bUpM - dd)
		}
		if i > 0 { // flux through the lower face exists
			diag += r * (-bLoM + dd)
			lo = r * (-bLoP - dd)
		}
		s.tri.A[i] = lo
		s.tri.B[i] = diag
		s.tri.C[i] = up
	}
	return s.tri.Solve(s.sol, s.rhs)
}

// solveForwardAdvective performs one implicit sweep of the paper-literal
// non-conservative FPK form of Eq. (15):
//
//	(I + dt·(b·∂ − D·∂²)) λ_new = λ_old
//
// with upwind advection and Neumann boundaries. This form does not conserve
// mass when the drift varies in space (the missing λ·∂b term); the FPK solver
// optionally renormalises and reports the raw drift.
func (s *sweeper) solveForwardAdvective(dt, dx, diff float64) error {
	n := s.n
	dd := diff / (dx * dx)
	for i := 0; i < n; i++ {
		b := s.b[i]
		var lo, up float64 // off-diagonal weights of (b∂ − D∂²), to be ≤ 0
		if b >= 0 {
			lo += -b / dx // backward difference keeps the scheme monotone
		} else {
			up += b / dx
		}
		lo -= dd
		up -= dd
		switch i {
		case 0:
			s.tri.A[i] = 0
			s.tri.B[i] = 1 - dt*up
			s.tri.C[i] = dt * up
		case n - 1:
			s.tri.A[i] = dt * lo
			s.tri.B[i] = 1 - dt*lo
			s.tri.C[i] = 0
		default:
			s.tri.A[i] = dt * lo
			s.tri.B[i] = 1 - dt*(lo+up)
			s.tri.C[i] = dt * up
		}
	}
	return s.tri.Solve(s.sol, s.rhs)
}

func checkField(name string, field []float64, want int) error {
	if len(field) != want {
		return fmt.Errorf("pde: %s has %d nodes, grid has %d", name, len(field), want)
	}
	return nil
}

// Package pde implements the finite-difference solvers for the two coupled
// partial differential equations at the core of MFG-CP:
//
//   - the backward Hamilton–Jacobi–Bellman equation (Eq. 20) giving the
//     generic EDP's value function and, via Theorem 1, its optimal caching
//     strategy;
//   - the forward Fokker–Planck–Kolmogorov equation (Eq. 15) transporting the
//     mean-field distribution of EDP states.
//
// Both are solved with unconditionally stable operator splitting (Lie
// splitting over the h- and q-dimensions), implicit upwind advection and
// implicit diffusion, so every 1-D sweep is a single tridiagonal solve. The
// schemes are monotone (M-matrix structure), which gives the HJB solver a
// discrete maximum principle and keeps the FPK density non-negative. The FPK
// default uses the conservative divergence form, which conserves probability
// mass exactly with reflecting (zero-flux) boundaries; the paper-literal
// advective form of Eq. (15) is available as an ablation.
//
// The sweeps execute on a batched, optionally parallel kernel layer
// (KernelConfig): within one h-sweep every grid line shares its coefficient
// set, so the tridiagonal system is factorised once and all lines are
// substituted through it in place; q-lines have line-dependent coefficients
// and are partitioned across a bounded worker set. Both transformations
// preserve the per-line arithmetic exactly, so the default float64 kernel is
// bit-identical to the historical serial solver at every worker count.
package pde

import (
	"fmt"

	"repro/internal/linalg"
)

// sweeper owns the reusable buffers for 1-D sweeps of length n at one kernel
// precision. Parallel phases hold one sweeper per worker.
type sweeper[T linalg.Float] struct {
	n    int
	bat  *linalg.TridiagBatch[T]
	rhs  []T
	sol  []T
	b    []T // drift at the n nodes of the current line
	flux []T // explicit conservative face fluxes, len n+1
}

func newSweeper[T linalg.Float](n int) *sweeper[T] {
	return &sweeper[T]{
		n:    n,
		bat:  linalg.NewTridiagBatch[T](n),
		rhs:  make([]T, n),
		sol:  make([]T, n),
		b:    make([]T, n),
		flux: make([]T, n+1),
	}
}

// assembleBackwardValue assembles the implicit backward (HJB) operator
//
//	(I − dt·L) v_new = v_old,   L v = b(x)·∂v + D·∂²v
//
// with upwind advection and homogeneous Neumann boundaries (∂v/∂n = 0) into
// the diagonals (A, B, C) from the nodal drifts b. The matrix is an M-matrix
// with unit row sums minus the off-diagonal mass, hence diagonally dominant.
func assembleBackwardValue[T linalg.Float](A, B, C, b []T, dt, dx, diff T) {
	n := len(b)
	dd := diff / (dx * dx) // D/dx²
	for i := 0; i < n; i++ {
		bi := b[i]
		var lo, up T // off-diagonal weights of L at i−1 and i+1
		if bi >= 0 {
			up += bi / dx // forward difference b(v_{i+1}−v_i)/dx
		} else {
			lo += -bi / dx // backward difference b(v_i−v_{i−1})/dx
		}
		lo += dd
		up += dd
		// Neumann boundaries fold the ghost node into the diagonal: the
		// ghost value equals the boundary value, so the off-diagonal weight
		// moves onto the diagonal, cancelling there.
		switch i {
		case 0:
			A[i] = 0
			B[i] = 1 + dt*up
			C[i] = -dt * up
		case n - 1:
			A[i] = -dt * lo
			B[i] = 1 + dt*lo
			C[i] = 0
		default:
			A[i] = -dt * lo
			B[i] = 1 + dt*(lo+up)
			C[i] = -dt * up
		}
	}
}

// assembleForwardConservative assembles the implicit forward FPK operator in
// conservative (divergence) form with zero-flux boundaries:
//
//	(I + dt·div F) λ_new = λ_old,
//	F_{i+1/2} = b⁺_{i+1/2} λ_i + b⁻_{i+1/2} λ_{i+1} − D (λ_{i+1}−λ_i)/dx.
//
// Interface drifts are arithmetic means of the nodal drifts b. The matrix has
// unit column sums, so Σλ is conserved to round-off, and it is an M-matrix,
// so positivity is preserved.
func assembleForwardConservative[T linalg.Float](A, B, C, b []T, dt, dx, diff T) {
	n := len(b)
	r := dt / dx
	dd := diff / dx // D/dx (flux units)
	for i := 0; i < n; i++ {
		var bUp, bLo T // interface drifts at i+1/2 and i−1/2
		if i < n-1 {
			bUp = 0.5 * (b[i] + b[i+1])
		}
		if i > 0 {
			bLo = 0.5 * (b[i-1] + b[i])
		}
		bUpP, bUpM := posPart(bUp), negPart(bUp)
		bLoP, bLoM := posPart(bLo), negPart(bLo)

		diag := T(1)
		var lo, up T
		if i < n-1 { // flux through the upper face exists
			diag += r * (bUpP + dd)
			up = r * (bUpM - dd)
		}
		if i > 0 { // flux through the lower face exists
			diag += r * (-bLoM + dd)
			lo = r * (-bLoP - dd)
		}
		A[i] = lo
		B[i] = diag
		C[i] = up
	}
}

// assembleForwardAdvective assembles the implicit paper-literal
// non-conservative FPK operator of Eq. (15):
//
//	(I + dt·(b·∂ − D·∂²)) λ_new = λ_old
//
// with upwind advection and Neumann boundaries. This form does not conserve
// mass when the drift varies in space (the missing λ·∂b term); the FPK solver
// optionally renormalises and reports the raw drift.
func assembleForwardAdvective[T linalg.Float](A, B, C, b []T, dt, dx, diff T) {
	n := len(b)
	dd := diff / (dx * dx)
	for i := 0; i < n; i++ {
		bi := b[i]
		var lo, up T // off-diagonal weights of (b∂ − D∂²), to be ≤ 0
		if bi >= 0 {
			lo += -bi / dx // backward difference keeps the scheme monotone
		} else {
			up += bi / dx
		}
		lo -= dd
		up -= dd
		switch i {
		case 0:
			A[i] = 0
			B[i] = 1 - dt*up
			C[i] = dt * up
		case n - 1:
			A[i] = dt * lo
			B[i] = 1 - dt*lo
			C[i] = 0
		default:
			A[i] = dt * lo
			B[i] = 1 - dt*(lo+up)
			C[i] = dt * up
		}
	}
}

// hAssembly selects which implicit operator an h-phase assembles into the
// shared batched system.
type hAssembly int

const (
	hBackwardValue hAssembly = iota
	hForwardConservative
	hForwardAdvective
)

// assembleH assembles the selected operator from the nodal drifts b into the
// batch and factorises it, once per sweep for all lines.
func assembleH[T linalg.Float](bat *linalg.TridiagBatch[T], b []T, kind hAssembly, dt, dx, diff T) error {
	switch kind {
	case hBackwardValue:
		assembleBackwardValue(bat.A, bat.B, bat.C, b, dt, dx, diff)
	case hForwardConservative:
		assembleForwardConservative(bat.A, bat.B, bat.C, b, dt, dx, diff)
	default:
		assembleForwardAdvective(bat.A, bat.B, bat.C, b, dt, dx, diff)
	}
	return bat.Factorize()
}

// solveBackwardValue performs one implicit backward sweep on the line loaded
// in s.rhs with drifts s.b; the solution lands in s.sol.
func (s *sweeper[T]) solveBackwardValue(dt, dx, diff T) error {
	assembleBackwardValue(s.bat.A, s.bat.B, s.bat.C, s.b, dt, dx, diff)
	if err := s.bat.Factorize(); err != nil {
		return err
	}
	return s.bat.Solve(s.sol, s.rhs)
}

// solveForwardConservative performs one implicit conservative FPK sweep on
// the loaded line.
func (s *sweeper[T]) solveForwardConservative(dt, dx, diff T) error {
	assembleForwardConservative(s.bat.A, s.bat.B, s.bat.C, s.b, dt, dx, diff)
	if err := s.bat.Factorize(); err != nil {
		return err
	}
	return s.bat.Solve(s.sol, s.rhs)
}

// solveForwardAdvective performs one implicit advective FPK sweep on the
// loaded line.
func (s *sweeper[T]) solveForwardAdvective(dt, dx, diff T) error {
	assembleForwardAdvective(s.bat.A, s.bat.B, s.bat.C, s.b, dt, dx, diff)
	if err := s.bat.Factorize(); err != nil {
		return err
	}
	return s.bat.Solve(s.sol, s.rhs)
}

func checkField(name string, field []float64, want int) error {
	if len(field) != want {
		return fmt.Errorf("pde: %s has %d nodes, grid has %d", name, len(field), want)
	}
	return nil
}

package pde

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Benchmarks bounding the telemetry cost inside the solver hot loops. The
// no-op path adds two counter increments and one Enabled() branch per time
// step (clock reads are skipped entirely), which must stay under 2% of a
// solve; compare
//
//	go test ./internal/pde -bench 'SolveHJBObs|SolveFPKObs' -count 10
//
// sub-benchmark "nop" (instrumented, recorder off — the default for every
// library user) against "registry" (live metrics).

func benchHJBProblem(b *testing.B, rec obs.Recorder) *HJBProblem {
	b.Helper()
	h, err := grid.NewAxis(0.5, 1.5, 13)
	if err != nil {
		b.Fatal(err)
	}
	q, err := grid.NewAxis(0, 70, 61)
	if err != nil {
		b.Fatal(err)
	}
	g, err := grid.NewGrid2D(h, q)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := grid.NewTimeMesh(1, 120)
	if err != nil {
		b.Fatal(err)
	}
	return &HJBProblem{
		Grid:    g,
		Time:    tm,
		DiffH:   0.02,
		DiffQ:   0.5,
		DriftH:  func(_, h float64) float64 { return 0.25 * (1 - h) },
		DriftQ:  func(_, x float64) float64 { return -20 * x },
		Control: func(_, _, _, dVdq float64) float64 { return 0.5 - 0.1*dVdq },
		Running: func(_, x, h, q float64) float64 { return h*q - x*x },
		Obs:     rec,
	}
}

func benchmarkSolveHJB(b *testing.B, rec obs.Recorder) {
	p := benchHJBProblem(b, rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveHJB(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveHJBObs(b *testing.B) {
	b.Run("nop", func(b *testing.B) { benchmarkSolveHJB(b, nil) })
	b.Run("registry", func(b *testing.B) { benchmarkSolveHJB(b, obs.NewRegistry(nil)) })
}

func benchmarkSolveFPK(b *testing.B, rec obs.Recorder) {
	hp := benchHJBProblem(b, rec)
	p := &FPKProblem{
		Grid:        hp.Grid,
		Time:        hp.Time,
		DiffH:       hp.DiffH,
		DiffQ:       hp.DiffQ,
		DriftH:      hp.DriftH,
		DriftQ:      func(_, _, q float64) float64 { return -0.1 * q },
		Renormalize: true,
		Obs:         rec,
	}
	lambda0, err := GaussianDensity(hp.Grid, 1, 0.2, 35, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFPK(p, lambda0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFPKObs(b *testing.B) {
	b.Run("nop", func(b *testing.B) { benchmarkSolveFPK(b, nil) })
	b.Run("registry", func(b *testing.B) { benchmarkSolveFPK(b, obs.NewRegistry(nil)) })
}

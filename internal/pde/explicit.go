package pde

import (
	"fmt"
	"math"
)

// Stepping selects the time integrator of the PDE schemes.
type Stepping int

const (
	// Implicit (default) is the unconditionally stable operator-split
	// backward-Euler integrator: one tridiagonal solve per dimension per
	// step.
	Implicit Stepping = iota
	// Explicit is the forward-Euler integrator kept as an ablation: cheaper
	// per step (no linear solves) but subject to a CFL stability bound,
	// which the solver verifies before stepping and reports via
	// ErrCFLViolation when violated.
	Explicit
)

// ErrCFLViolation is returned when an explicit integration would violate its
// stability bound. The error text carries the worst ratio and the step count
// that would satisfy the condition.
type ErrCFLViolation struct {
	Ratio     float64 // worst dt/dt_max over the grid (>1 is unstable)
	NeedSteps int     // time steps that would satisfy the bound
}

func (e *ErrCFLViolation) Error() string {
	return fmt.Sprintf("pde: explicit scheme violates the CFL bound (ratio %.2f); use ≥ %d time steps or the implicit scheme", e.Ratio, e.NeedSteps)
}

// explicitForwardConservative advances one explicit conservative FV sweep
// with the same flux discretisation as the implicit variant. It returns the
// worst CFL ratio encountered (diagonal positivity of the update matrix).
func (s *sweeper[T]) explicitForwardConservative(dt, dx, diff T) float64 {
	n := s.n
	r := dt / dx
	dd := diff / dx
	worst := 0.0
	// Compute fluxes at all interior faces from the old values in s.rhs.
	// flux[i] is the face below node i; zero-flux at both boundaries.
	flux := s.flux
	flux[0], flux[n] = 0, 0
	for i := 0; i < n-1; i++ {
		bFace := 0.5 * (s.b[i] + s.b[i+1])
		up := posPart(bFace)*s.rhs[i] + negPart(bFace)*s.rhs[i+1]
		flux[i+1] = up - dd*(s.rhs[i+1]-s.rhs[i])
	}
	for i := 0; i < n; i++ {
		s.sol[i] = s.rhs[i] - r*(flux[i+1]-flux[i])
		// Stability: the coefficient of λ_i in the explicit update must stay
		// non-negative: 1 − r(|b_up⁺| + |b_lo⁻| + faces·dd) ≥ 0.
		var drain T
		if i < n-1 {
			bFace := 0.5 * (s.b[i] + s.b[i+1])
			drain += posPart(bFace) + dd
		}
		if i > 0 {
			bFace := 0.5 * (s.b[i-1] + s.b[i])
			drain += -negPart(bFace) + dd
		}
		if ratio := float64(r) * float64(drain); ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// explicitBackwardValue advances one explicit sweep of the backward value
// update V_new = V_old + dt·(b·∂V + D·∂²V) with upwind differences, returning
// the worst CFL ratio.
func (s *sweeper[T]) explicitBackwardValue(dt, dx, diff T) float64 {
	n := s.n
	dd := diff / (dx * dx)
	worst := 0.0
	for i := 0; i < n; i++ {
		b := s.b[i]
		// Neumann ghost values mirror the boundary node.
		vm := s.rhs[i]
		if i > 0 {
			vm = s.rhs[i-1]
		}
		vp := s.rhs[i]
		if i < n-1 {
			vp = s.rhs[i+1]
		}
		var adv T
		if b >= 0 {
			adv = b * (vp - s.rhs[i]) / dx
		} else {
			adv = b * (s.rhs[i] - vm) / dx
		}
		s.sol[i] = s.rhs[i] + dt*(adv+dd*(vp-2*s.rhs[i]+vm))
		if ratio := float64(dt) * (float64(absT(b))/float64(dx) + 2*float64(dd)); ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// cflError converts a worst-ratio diagnostic into an error when unstable.
func cflError(worst float64, steps int) error {
	if worst <= 1+1e-12 {
		return nil
	}
	return &ErrCFLViolation{Ratio: worst, NeedSteps: int(math.Ceil(float64(steps) * worst))}
}

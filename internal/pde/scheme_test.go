package pde

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func schemeTestGrid(t *testing.T) (grid.Grid2D, grid.TimeMesh) {
	t.Helper()
	hAxis, err := grid.NewAxis(1, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	qAxis, err := grid.NewAxis(0, 100, 21)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.NewGrid2D(hAxis, qAxis)
	if err != nil {
		t.Fatal(err)
	}
	// Many small steps: the explicit scheme needs the CFL bound satisfied,
	// and the first-order-in-time schemes approach each other as dt → 0.
	tm, err := grid.NewTimeMesh(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	return g, tm
}

func TestSchemeByName(t *testing.T) {
	for _, name := range SchemeNames() {
		sch, err := SchemeByName(name)
		if err != nil {
			t.Fatalf("SchemeByName(%q): %v", name, err)
		}
		if sch.Name() != name {
			t.Errorf("SchemeByName(%q).Name() = %q", name, sch.Name())
		}
		if rt, err := SchemeFor(sch.Stepping()); err != nil || rt.Name() != name {
			t.Errorf("SchemeFor(%v) round-trip = %v, %v", sch.Stepping(), rt, err)
		}
	}
	if sch, err := SchemeByName(""); err != nil || sch.Name() != "implicit" {
		t.Errorf("empty scheme name: got %v, %v, want the implicit default", sch, err)
	}
	if _, err := SchemeByName("runge-kutta-9000"); err == nil {
		t.Errorf("unknown scheme name accepted")
	}
}

// TestSchemeEquivalenceHJB solves one backward problem with the implicit and
// explicit integrators on a fine time mesh: both are first-order consistent
// discretisations of the same operator, so they must agree within the O(dt)
// splitting tolerance.
func TestSchemeEquivalenceHJB(t *testing.T) {
	g, tm := schemeTestGrid(t)
	mk := func(st Stepping) *HJBProblem {
		return &HJBProblem{
			Grid:     g,
			Time:     tm,
			DiffH:    0.05,
			DiffQ:    0.4,
			DriftH:   func(_, h float64) float64 { return 2 * (5 - h) },
			DriftQ:   func(_, x float64) float64 { return -40 * x },
			Control:  func(_, _, _, dVdq float64) float64 { return 0.5 - 0.01*dVdq },
			Running:  func(_, x, h, q float64) float64 { return 2*h - 0.01*q - x*x },
			Stepping: st,
		}
	}
	imp, err := SolveHJB(mk(Implicit))
	if err != nil {
		t.Fatalf("implicit solve: %v", err)
	}
	exp, err := SolveHJB(mk(Explicit))
	if err != nil {
		t.Fatalf("explicit solve: %v", err)
	}
	var worstV, worstX, scale float64
	for k := range imp.V[0] {
		if d := math.Abs(imp.V[0][k] - exp.V[0][k]); d > worstV {
			worstV = d
		}
		if a := math.Abs(imp.V[0][k]); a > scale {
			scale = a
		}
		if d := math.Abs(imp.X[0][k] - exp.X[0][k]); d > worstX {
			worstX = d
		}
	}
	if worstV > 0.02*scale {
		t.Errorf("implicit and explicit value functions diverge: |ΔV| = %g, scale %g", worstV, scale)
	}
	if worstX > 0.05 {
		t.Errorf("implicit and explicit controls diverge: |Δx| = %g", worstX)
	}
}

// TestSchemeEquivalenceFPK transports one density with both integrators and
// compares the final-time field and its mass.
func TestSchemeEquivalenceFPK(t *testing.T) {
	g, tm := schemeTestGrid(t)
	lambda0, err := GaussianDensity(g, 5, 1.5, 70, 10)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(st Stepping) *FPKProblem {
		return &FPKProblem{
			Grid:        g,
			Time:        tm,
			DiffH:       0.05,
			DiffQ:       0.4,
			DriftH:      func(_, h float64) float64 { return 2 * (5 - h) },
			DriftQ:      func(_, _, q float64) float64 { return -0.3 * q / 100 * 40 },
			Form:        Conservative,
			Stepping:    st,
			Renormalize: true,
		}
	}
	imp, err := SolveFPK(mk(Implicit), lambda0)
	if err != nil {
		t.Fatalf("implicit solve: %v", err)
	}
	exp, err := SolveFPK(mk(Explicit), lambda0)
	if err != nil {
		t.Fatalf("explicit solve: %v", err)
	}
	n := tm.Steps
	var worst, peak float64
	for k := range imp.Lambda[n] {
		if d := math.Abs(imp.Lambda[n][k] - exp.Lambda[n][k]); d > worst {
			worst = d
		}
		if imp.Lambda[n][k] > peak {
			peak = imp.Lambda[n][k]
		}
	}
	if worst > 0.05*peak {
		t.Errorf("implicit and explicit densities diverge: |Δλ| = %g, peak %g", worst, peak)
	}
	if d := math.Abs(imp.Mass(n) - exp.Mass(n)); d > 1e-6 {
		t.Errorf("final masses diverge by %g", d)
	}
}

// TestSolveIntoRejectsMismatchedBuffers covers the defensive checks of the
// preallocated entry points.
func TestSolveIntoRejectsMismatchedBuffers(t *testing.T) {
	g, tm := schemeTestGrid(t)
	smallH, _ := grid.NewAxis(1, 10, 5)
	smallQ, _ := grid.NewAxis(0, 100, 7)
	gSmall, err := grid.NewGrid2D(smallH, smallQ)
	if err != nil {
		t.Fatal(err)
	}
	wsWrong, err := NewWorkspace(gSmall)
	if err != nil {
		t.Fatal(err)
	}
	p := &HJBProblem{
		Grid:    g,
		Time:    tm,
		DriftH:  func(_, h float64) float64 { return -h },
		DriftQ:  func(_, x float64) float64 { return -x },
		Control: func(_, _, _, _ float64) float64 { return 0 },
		Running: func(_, _, _, _ float64) float64 { return 0 },
	}
	if err := SolveHJBInto(wsWrong, nil, p, NewHJBSolution(g, tm)); err == nil {
		t.Errorf("mismatched workspace accepted")
	}
	ws, err := NewWorkspace(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := SolveHJBInto(ws, nil, p, NewHJBSolution(gSmall, tm)); err == nil {
		t.Errorf("mismatched solution holder accepted")
	}
}

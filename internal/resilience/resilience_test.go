package resilience

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
)

func smallConfig() (engine.Config, engine.Workload) {
	cfg := engine.DefaultConfig(mec.Default())
	cfg.NH = 7
	cfg.NQ = 21
	cfg.Steps = 30
	return cfg, engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

// TestEscalationRecovers starves the first attempt of iterations (the solve
// needs ~8 at the default damping, it gets 6) and checks the ladder's grown
// iteration budget recovers a converged equilibrium, with the recovery
// reported to telemetry.
func TestEscalationRecovers(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg, w := smallConfig()
	cfg.MaxIters = 6
	cfg.Obs = reg

	e := Escalation{
		MaxAttempts:    4,
		DampingFactor:  0.99, // keep the damping effectively unchanged
		MinDamping:     0.05,
		GrowIterBudget: true, // 6 → 9 → 13 → ... iterations
		AcceptPartial:  true,
	}
	eq, err := e.Solve(context.Background(), nil, cfg, w, nil)
	if err != nil {
		t.Fatalf("escalated solve failed: %v", err)
	}
	if !eq.Converged {
		t.Fatal("escalated solve returned a non-converged equilibrium without error")
	}
	s := reg.Snapshot()
	if s.Counters["resilience.retries"] < 1 {
		t.Errorf("no retries recorded: %+v", s.Counters)
	}
	if s.Counters["resilience.recovered"] != 1 {
		t.Errorf("resilience.recovered = %g, want 1", s.Counters["resilience.recovered"])
	}
}

// TestEscalationAcceptsBestPartial exhausts a ladder whose attempts all run
// out of iterations and checks the best partial equilibrium comes back wrapped
// in engine.ErrNotConverged (callers distinguish "usable but not converged"
// from hard failure), with the fallback recorded.
func TestEscalationAcceptsBestPartial(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg, w := smallConfig()
	cfg.MaxIters = 2
	cfg.Obs = reg

	e := Escalation{
		MaxAttempts:   2,
		DampingFactor: 0.99,
		MinDamping:    0.05,
		AcceptPartial: true, // GrowIterBudget off: retry fails too
	}
	eq, err := e.Solve(context.Background(), nil, cfg, w, nil)
	if !errors.Is(err, engine.ErrNotConverged) {
		t.Fatalf("got %v, want ErrNotConverged", err)
	}
	if eq == nil {
		t.Fatal("AcceptPartial returned no equilibrium")
	}
	if eq.Converged {
		t.Fatal("partial equilibrium claims convergence")
	}
	if got := reg.Snapshot().Counters["resilience.fallbacks"]; got != 1 {
		t.Errorf("resilience.fallbacks = %g, want 1", got)
	}
}

// TestEscalationExhaustedOnDivergence checks a failure mode the ladder cannot
// fix (the blow-up threshold fails every attempt) surfaces as a hard error
// with no equilibrium — divergent attempts never produce a partial.
func TestEscalationExhaustedOnDivergence(t *testing.T) {
	cfg, w := smallConfig()
	cfg.BlowupResidual = 1e-300

	e := DefaultEscalation()
	e.MaxAttempts = 2
	eq, err := e.Solve(context.Background(), nil, cfg, w, nil)
	if !errors.Is(err, engine.ErrDiverged) {
		t.Fatalf("got %v, want ErrDiverged", err)
	}
	if eq != nil {
		t.Fatal("divergent ladder returned an equilibrium")
	}
}

// TestEscalationUnrecoverableError checks non-solver failures (here a
// validation error) pass through without retries.
func TestEscalationUnrecoverableError(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg, w := smallConfig()
	cfg.Obs = reg
	w.Requests = -1 // invalid workload: not a solver failure

	_, err := DefaultEscalation().Solve(context.Background(), nil, cfg, w, nil)
	if err == nil {
		t.Fatal("invalid workload accepted")
	}
	if Recoverable(err) {
		t.Fatalf("validation error classified recoverable: %v", err)
	}
	if got := reg.Snapshot().Counters["resilience.retries"]; got != 0 {
		t.Errorf("unrecoverable error triggered %g retries", got)
	}
}

// TestEscalationCancellation checks a cancelled context stops the ladder
// between attempts.
func TestEscalationCancellation(t *testing.T) {
	cfg, w := smallConfig()
	cfg.MaxIters = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DefaultEscalation().Solve(ctx, nil, cfg, w, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestEscalateLadderShape pins the rung semantics: damping shrinks from the
// first retry, the scheme flips from the second, the time mesh refines (under
// its cap) from the third, and the warm start is always dropped.
func TestEscalateLadderShape(t *testing.T) {
	base, w := smallConfig()
	base.Scheme = "implicit"
	eqWarm, err := engine.Solve(base, w)
	if err != nil {
		t.Fatalf("warm-up solve: %v", err)
	}
	base.WarmStart = eqWarm

	e := DefaultEscalation()
	e.MaxSteps = base.Steps * 2

	a1 := e.escalate(base, 1)
	if a1.Damping >= base.Damping || a1.Scheme != "implicit" || a1.Steps != base.Steps {
		t.Fatalf("attempt 1: damping %g scheme %q steps %d", a1.Damping, a1.Scheme, a1.Steps)
	}
	if a1.WarmStart != nil {
		t.Fatal("retry kept the warm start")
	}
	a2 := e.escalate(base, 2)
	if a2.Scheme != "explicit" {
		t.Fatalf("attempt 2 scheme %q, want explicit", a2.Scheme)
	}
	a3 := e.escalate(base, 3)
	if a3.Steps != base.Steps*2 {
		t.Fatalf("attempt 3 steps %d, want %d", a3.Steps, base.Steps*2)
	}
	a4 := e.escalate(base, 4)
	if a4.Steps != e.MaxSteps {
		t.Fatalf("attempt 4 steps %d, want cap %d", a4.Steps, e.MaxSteps)
	}
	if a4.Damping < e.MinDamping {
		t.Fatalf("attempt 4 damping %g below floor %g", a4.Damping, e.MinDamping)
	}
}

// TestValidate covers the ladder parameter checks.
func TestValidate(t *testing.T) {
	if err := DefaultEscalation().Validate(); err != nil {
		t.Fatalf("default ladder invalid: %v", err)
	}
	bad := []Escalation{
		{MaxAttempts: 0, DampingFactor: 0.5},
		{MaxAttempts: 2, DampingFactor: 0},
		{MaxAttempts: 2, DampingFactor: 1},
		{MaxAttempts: 2, DampingFactor: 0.5, MinDamping: -0.1},
		{MaxAttempts: 2, DampingFactor: 0.5, RefineSteps: true, MaxSteps: 1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, e)
		}
	}
}

// TestEscalationReturnsBestPartial pins AcceptPartial's selection rule
// differentially: the equilibrium handed back after an exhausted ladder must
// be the attempt with the smallest final residual — not merely the last one.
// Each attempt is reproduced independently (the ladder's retries are cold
// deterministic solves), so the expected winner is computed outright.
func TestEscalationReturnsBestPartial(t *testing.T) {
	tests := []struct {
		name string
		e    Escalation
	}{
		// The iteration budget grows per retry, so later attempts get closer:
		// the best partial is the last attempt.
		{"grown-iteration-budget", Escalation{
			MaxAttempts: 3, DampingFactor: 0.99, MinDamping: 0.05,
			GrowIterBudget: true, AcceptPartial: true}},
		// The damping walk shrinks γ aggressively with a fixed budget, so
		// later attempts take smaller strides and end farther away: the best
		// partial is an early attempt, which the ladder must have kept.
		{"damping-walk", Escalation{
			MaxAttempts: 3, DampingFactor: 0.3, MinDamping: 0.05,
			AcceptPartial: true}},
		{"scheme-switch", Escalation{
			MaxAttempts: 3, DampingFactor: 0.9, MinDamping: 0.05,
			SwitchScheme: true, AcceptPartial: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg, w := smallConfig()
			cfg.MaxIters = 3
			cfg.Tol = 1e-18 // unattainable: every attempt exhausts its budget

			eq, err := tt.e.Solve(context.Background(), nil, cfg, w, nil)
			if !errors.Is(err, engine.ErrNotConverged) {
				t.Fatalf("got %v, want ErrNotConverged", err)
			}
			if eq == nil || len(eq.Residuals) == 0 {
				t.Fatal("exhausted ladder returned no partial equilibrium")
			}

			best := -1.0
			for attempt := 0; attempt < tt.e.MaxAttempts; attempt++ {
				acfg := cfg
				if attempt > 0 {
					acfg = tt.e.escalate(cfg, attempt)
				}
				aeq, aerr := engine.Solve(acfg, w)
				if !errors.Is(aerr, engine.ErrNotConverged) || aeq == nil {
					t.Fatalf("attempt %d replay: %v", attempt, aerr)
				}
				if r := aeq.Residuals[len(aeq.Residuals)-1]; best < 0 || r < best {
					best = r
				}
			}
			if got := eq.Residuals[len(eq.Residuals)-1]; got != best {
				t.Errorf("ladder kept final residual %g, best across attempts is %g", got, best)
			}
		})
	}
}

// Package resilience hardens the long-running paths of the MFG-CP pipeline
// against solver stress. Its centrepiece is the Escalation ladder: when one
// equilibrium solve (Algorithm 2) diverges into non-finite iterates or
// exhausts its iteration budget, the ladder retries the solve under
// progressively more conservative configurations —
//
//	rung 1: increase damping (shrink the relaxation factor γ),
//	rung 2: switch the PDE time integrator (implicit ↔ explicit),
//	rung 3: refine the time mesh (double Steps up to a cap),
//
// — recording every recovery step to the run's telemetry ("resilience.*"
// metric names). The market simulator builds on the same vocabulary for its
// epoch-level degradation (sim.FaultPlan) and checkpoint/resume support.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/pde"
)

// Escalation is the bounded recovery ladder applied when an equilibrium solve
// fails. The zero value is NOT usable; start from DefaultEscalation.
type Escalation struct {
	// MaxAttempts is the total number of solve attempts including the first
	// (so MaxAttempts−1 retries). Must be ≥ 1.
	MaxAttempts int
	// DampingFactor multiplies the relaxation factor γ on every retry,
	// making the damped update more conservative. Must lie in (0, 1).
	DampingFactor float64
	// MinDamping floors the escalated γ.
	MinDamping float64
	// SwitchScheme flips the PDE time integrator (implicit ↔ explicit) from
	// the second retry onward.
	SwitchScheme bool
	// RefineSteps doubles the time-mesh resolution from the third retry
	// onward, up to MaxSteps (finer time steps stabilise both the CFL-bounded
	// explicit integrator and stiff drift terms).
	RefineSteps bool
	// MaxSteps caps the refined Steps count.
	MaxSteps int
	// GrowIterBudget scales MaxIters by 1.5× per retry: deeper damping
	// converges in smaller strides, so the escalated attempts get a larger
	// iteration budget.
	GrowIterBudget bool
	// AcceptPartial returns the best non-converged equilibrium (smallest
	// final residual across attempts, when one exists) wrapped with
	// engine.ErrNotConverged after the ladder is exhausted, instead of only
	// the last error. Divergent attempts never produce a partial.
	AcceptPartial bool
}

// DefaultEscalation returns the ladder used by the market simulator: four
// attempts walking damping → scheme switch → time-mesh refinement, with the
// iteration budget growing alongside and partial equilibria accepted at the
// end.
func DefaultEscalation() Escalation {
	return Escalation{
		MaxAttempts:    4,
		DampingFactor:  0.5,
		MinDamping:     0.05,
		SwitchScheme:   true,
		RefineSteps:    true,
		MaxSteps:       1024,
		GrowIterBudget: true,
		AcceptPartial:  true,
	}
}

// Validate checks the ladder parameters.
func (e Escalation) Validate() error {
	if e.MaxAttempts < 1 {
		return fmt.Errorf("resilience: MaxAttempts must be ≥ 1, got %d", e.MaxAttempts)
	}
	if math.IsNaN(e.DampingFactor) || !(e.DampingFactor > 0 && e.DampingFactor < 1) {
		return fmt.Errorf("resilience: DampingFactor must lie in (0,1), got %g", e.DampingFactor)
	}
	if math.IsNaN(e.MinDamping) || e.MinDamping < 0 || e.MinDamping > 1 {
		return fmt.Errorf("resilience: MinDamping must lie in [0,1], got %g", e.MinDamping)
	}
	if e.RefineSteps && e.MaxSteps < 2 {
		return fmt.Errorf("resilience: MaxSteps must be ≥ 2 when RefineSteps is set, got %d", e.MaxSteps)
	}
	return nil
}

// Recoverable reports whether err is a solver failure the escalation ladder
// can act on (divergence or non-convergence). Validation errors, cancellation
// and I/O failures are not recoverable by re-solving.
func Recoverable(err error) bool {
	return errors.Is(err, engine.ErrDiverged) || errors.Is(err, engine.ErrNotConverged)
}

// escalate derives the configuration of retry attempt n ≥ 1 from the base
// configuration, walking the ladder rungs cumulatively.
func (e Escalation) escalate(base engine.Config, attempt int) engine.Config {
	cfg := base
	cfg.WarmStart = nil // a bad warm start may be the failure cause: retry cold
	for i := 0; i < attempt; i++ {
		cfg.Damping *= e.DampingFactor
	}
	if cfg.Damping < e.MinDamping {
		cfg.Damping = e.MinDamping
	}
	if e.SwitchScheme && attempt >= 2 {
		cfg.Scheme = flipScheme(base)
	}
	if e.RefineSteps && attempt >= 3 {
		steps := cfg.Steps * 2
		if steps > e.MaxSteps {
			steps = e.MaxSteps
		}
		if steps > cfg.Steps {
			cfg.Steps = steps
		}
	}
	if e.GrowIterBudget {
		grown := float64(cfg.MaxIters)
		for i := 0; i < attempt; i++ {
			grown *= 1.5
		}
		cfg.MaxIters = int(grown)
	}
	return cfg
}

// flipScheme returns the name of the integrator the base configuration does
// NOT use.
func flipScheme(base engine.Config) string {
	name := base.Scheme
	if name == "" {
		if sch, err := pde.SchemeFor(base.Stepping); err == nil {
			name = sch.Name()
		}
	}
	if name == "explicit" {
		return "implicit"
	}
	return "explicit"
}

// Solve runs one equilibrium solve under the escalation ladder. The first
// attempt reuses the caller's session (preserving the zero-allocation steady
// state of the healthy path); every retry builds a throwaway session for its
// escalated configuration, which is acceptable because recovery is the cold
// path. A nil session makes the first attempt throwaway too.
//
// Telemetry (cfg.Obs): "resilience.retries" counts escalated attempts,
// "resilience.recovered" successful recoveries, "resilience.fallbacks"
// partial equilibria accepted after the ladder was exhausted (the engine
// itself counts "resilience.nonfinite" divergences).
func (e Escalation) Solve(ctx context.Context, s *engine.Session, cfg engine.Config, w engine.Workload, warm *engine.Equilibrium) (*engine.Equilibrium, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rec := obs.OrNop(cfg.Obs)
	// Request-scoped correlation: a traced request (the serving tier) gets
	// its escalation attempts attributed in the access log, and the retry
	// events below carry its ID.
	tr := obs.ReqTraceFrom(ctx)

	var firstErr error
	var bestPartial *engine.Equilibrium
	notePartial := func(eq *engine.Equilibrium, err error) {
		if eq == nil || !errors.Is(err, engine.ErrNotConverged) || len(eq.Residuals) == 0 {
			return
		}
		if bestPartial == nil ||
			eq.Residuals[len(eq.Residuals)-1] < bestPartial.Residuals[len(bestPartial.Residuals)-1] {
			bestPartial = eq
		}
	}

	// Attempt 0: the configuration as given, on the caller's session.
	sess := s
	if sess == nil {
		var err error
		if sess, err = engine.NewSession(cfg); err != nil {
			return nil, err
		}
	}
	eq, err := sess.SolveContext(ctx, w, warm)
	if err == nil {
		return eq, nil
	}
	if !Recoverable(err) {
		return eq, err
	}
	firstErr = err
	notePartial(eq, err)

	for attempt := 1; attempt < e.MaxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("resilience: recovery canceled after attempt %d: %w", attempt, cerr)
		}
		esc := e.escalate(cfg, attempt)
		rec.Add("resilience.retries", 1)
		tr.Count("resilience_retries", 1)
		if rec.Enabled() {
			rec.Event("resilience.retry",
				slog.Int("attempt", attempt),
				slog.Float64("damping", esc.Damping),
				slog.String("scheme", esc.Scheme),
				slog.Int("steps", esc.Steps),
				slog.String("request_id", obs.RequestIDFrom(ctx)),
				slog.String("cause", err.Error()))
		}
		retrySess, serr := engine.NewSession(esc)
		if serr != nil {
			return nil, fmt.Errorf("resilience: attempt %d session: %w", attempt, serr)
		}
		eq, err = retrySess.SolveContext(ctx, w, nil)
		if err == nil {
			rec.Add("resilience.recovered", 1)
			return eq, nil
		}
		if !Recoverable(err) {
			return eq, err
		}
		notePartial(eq, err)
	}

	if e.AcceptPartial && bestPartial != nil {
		rec.Add("resilience.fallbacks", 1)
		return bestPartial, fmt.Errorf("resilience: ladder exhausted after %d attempts, using best partial: %w",
			e.MaxAttempts, engine.ErrNotConverged)
	}
	return nil, fmt.Errorf("resilience: ladder exhausted after %d attempts (first failure: %v): %w",
		e.MaxAttempts, firstErr, err)
}

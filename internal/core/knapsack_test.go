package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocateFractionalKnown(t *testing.T) {
	items := []KnapsackItem{
		{Content: 0, Weight: 10, Value: 60},  // density 6
		{Content: 1, Weight: 20, Value: 100}, // density 5
		{Content: 2, Weight: 30, Value: 120}, // density 4
	}
	frac, err := AllocateFractional(items, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Classic: take items 0 and 1 fully, 2/3 of item 2.
	want := []float64{1, 1, 2.0 / 3.0}
	for i := range want {
		if math.Abs(frac[i]-want[i]) > 1e-12 {
			t.Errorf("frac[%d] = %g, want %g", i, frac[i], want[i])
		}
	}
}

func TestAllocateFractionalEdgeCases(t *testing.T) {
	// Zero capacity admits only zero-weight items.
	frac, err := AllocateFractional([]KnapsackItem{{Weight: 0, Value: 5}, {Weight: 1, Value: 9}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if frac[0] != 1 || frac[1] != 0 {
		t.Errorf("zero-capacity allocation wrong: %v", frac)
	}
	// Negative-value items are never admitted.
	frac, err = AllocateFractional([]KnapsackItem{{Weight: 1, Value: -5}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if frac[0] != 0 {
		t.Error("negative-value item admitted")
	}
	// Validation.
	if _, err := AllocateFractional([]KnapsackItem{{Weight: -1}}, 1); err == nil {
		t.Error("negative weight should be rejected")
	}
	if _, err := AllocateFractional(nil, -1); err == nil {
		t.Error("negative capacity should be rejected")
	}
	if _, err := AllocateFractional([]KnapsackItem{{Weight: 1, Value: math.NaN()}}, 1); err == nil {
		t.Error("NaN value should be rejected")
	}
}

// Property: the fractional allocation never exceeds capacity and dominates
// every 0/1 allocation in value.
func TestFractionalDominates01(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		items := make([]KnapsackItem, n)
		for i := range items {
			items[i] = KnapsackItem{
				Content: i,
				Weight:  0.5 + 9.5*rng.Float64(),
				Value:   rng.Float64() * 100,
			}
		}
		capacity := 5 + 20*rng.Float64()

		frac, err := AllocateFractional(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		var usedF, valF float64
		for i, f := range frac {
			if f < 0 || f > 1 {
				t.Fatalf("fraction %g outside [0,1]", f)
			}
			usedF += f * items[i].Weight
			valF += f * items[i].Value
		}
		if usedF > capacity+1e-9 {
			t.Fatalf("fractional overflow: used %g of %g", usedF, capacity)
		}

		take, val01, err := Allocate01(items, capacity, 4000)
		if err != nil {
			t.Fatal(err)
		}
		var used01, check float64
		for i, tk := range take {
			if tk {
				used01 += items[i].Weight
				check += items[i].Value
			}
		}
		if used01 > capacity+1e-9 {
			t.Fatalf("0/1 overflow: used %g of %g", used01, capacity)
		}
		if math.Abs(check-val01) > 1e-9 {
			t.Fatalf("reported value %g disagrees with reconstruction %g", val01, check)
		}
		if valF < val01-1e-9 {
			t.Fatalf("fractional value %g below 0/1 value %g", valF, val01)
		}
	}
}

// Property: the DP solution matches brute force on small instances.
func TestAllocate01MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		items := make([]KnapsackItem, n)
		for i := range items {
			items[i] = KnapsackItem{
				Weight: float64(1 + rng.Intn(10)),
				Value:  float64(rng.Intn(50)),
			}
		}
		capacity := float64(5 + rng.Intn(30))

		// Brute force over all subsets.
		var best float64
		for mask := 0; mask < 1<<n; mask++ {
			var w, v float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += items[i].Weight
					v += items[i].Value
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		// Integer weights and capacity: resolution = capacity buckets makes
		// the scaled DP exact.
		_, got, err := Allocate01(items, capacity, int(capacity))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: DP %g vs brute force %g (items %+v, cap %g)", trial, got, best, items, capacity)
		}
	}
}

func TestAllocate01EdgeCases(t *testing.T) {
	take, total, err := Allocate01(nil, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(take) != 0 || total != 0 {
		t.Error("empty instance should be trivial")
	}
	take, total, err = Allocate01([]KnapsackItem{{Weight: 0, Value: 3}, {Weight: 2, Value: 9}}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !take[0] || take[1] || total != 3 {
		t.Errorf("zero-capacity: take=%v total=%g", take, total)
	}
	if _, _, err := Allocate01(nil, 1, 0); err == nil {
		t.Error("resolution 0 should be rejected")
	}
	if _, _, err := Allocate01([]KnapsackItem{{Weight: math.Inf(1)}}, 1, 10); err == nil {
		t.Error("infinite weight should be rejected")
	}
}

// Property (testing/quick): monotonicity — enlarging the capacity never
// reduces the fractional value.
func TestFractionalMonotoneInCapacity(t *testing.T) {
	items := []KnapsackItem{
		{Weight: 3, Value: 10}, {Weight: 5, Value: 9}, {Weight: 2, Value: 4}, {Weight: 7, Value: 20},
	}
	value := func(capacity float64) float64 {
		frac, err := AllocateFractional(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		var v float64
		for i, f := range frac {
			v += f * items[i].Value
		}
		return v
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		ca := math.Mod(math.Abs(a), 20)
		cb := math.Mod(math.Abs(b), 20)
		lo, hi := math.Min(ca, cb), math.Max(ca, cb)
		return value(lo) <= value(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityItemsFromEquilibria(t *testing.T) {
	eq := solveSmall(t)
	items, err := CapacityItems([]*Equilibrium{eq, nil, eq}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("expected 2 items (nil skipped), got %d", len(items))
	}
	if items[0].Content != 0 || items[1].Content != 2 {
		t.Errorf("content ids wrong: %+v", items)
	}
	for _, it := range items {
		if it.Weight <= 0 {
			t.Errorf("content %d: expected positive space consumption, got %g", it.Content, it.Weight)
		}
		if math.IsNaN(it.Value) {
			t.Errorf("content %d: NaN value", it.Content)
		}
	}
}

// Package core is the compatibility facade over internal/engine, the solver
// layer implementing the paper's primary contribution: the mean-field
// estimator that replaces the pairwise information exchange of the original
// M-player game (Eqs. 14–18), the iterative best-response learning scheme
// that solves the coupled HJB–FPK system to a mean-field equilibrium
// (Algorithm 2), and the representative-agent rollouts used to evaluate
// utilities along equilibrium trajectories.
//
// Every type here is an alias of its engine counterpart, so existing
// importers keep compiling and values flow freely between the two packages.
// New code should prefer internal/engine directly: it exposes the reusable
// Session (pre-allocated workspaces, zero-allocation iteration loop) and the
// bounded equilibrium Cache that this facade's one-shot Solve does not.
package core

import (
	"io"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/pde"
)

// Workload is the per-epoch, per-content demand descriptor. See
// engine.Workload.
type Workload = engine.Workload

// Config controls one mean-field equilibrium computation (Algorithm 2). See
// engine.Config.
type Config = engine.Config

// KernelConfig tunes how the PDE sweeps execute (parallel line-sweep
// workers, opt-in float32 fast path). See pde.KernelConfig.
type KernelConfig = pde.KernelConfig

// Kernel precision names accepted by KernelConfig.Precision.
const (
	PrecisionFloat64 = pde.PrecisionFloat64
	PrecisionFloat32 = pde.PrecisionFloat32
)

// SurrogateConfig points a solve at a precomputed surrogate table and bounds
// the interpolation error it will accept. See engine.SurrogateConfig.
type SurrogateConfig = engine.SurrogateConfig

// Equilibrium is the solved mean-field equilibrium for one content over one
// optimisation epoch. See engine.Equilibrium.
type Equilibrium = engine.Equilibrium

// Snapshot captures every mean-field quantity the generic EDP needs at one
// time node. See engine.Snapshot.
type Snapshot = engine.Snapshot

// Estimator computes mean-field snapshots from a density λ and a control
// field x on a fixed state grid. See engine.Estimator.
type Estimator = engine.Estimator

// Rollout is the trajectory of a representative EDP playing the equilibrium
// strategy against the mean field. See engine.Rollout.
type Rollout = engine.Rollout

// Session is the reusable solver session with pre-allocated workspaces. See
// engine.Session.
type Session = engine.Session

// EquilibriumCache is the bounded, concurrency-safe equilibrium store. See
// engine.Cache.
type EquilibriumCache = engine.Cache

// CacheExportEntry is one exported cache entry in LRU order. See
// engine.CacheExportEntry.
type CacheExportEntry = engine.CacheExportEntry

// ErrNotConverged is wrapped by Solve when the best-response iteration hits
// MaxIters with a residual above Tol.
var ErrNotConverged = engine.ErrNotConverged

// ErrDiverged is wrapped by Solve when the best-response iteration produces a
// non-finite or blown-up iterate. See engine.ErrDiverged.
var ErrDiverged = engine.ErrDiverged

// DefaultConfig returns the solver configuration used by the experiments.
func DefaultConfig(p mec.Params) Config { return engine.DefaultConfig(p) }

// Solve runs the iterative best-response learning scheme (Algorithm 2) with
// a throwaway engine session. Sustained callers (policies, epoch loops)
// should hold an engine.Session and/or engine.Cache instead.
func Solve(cfg Config, w Workload) (*Equilibrium, error) { return engine.Solve(cfg, w) }

// NewSession preallocates a reusable solver session for cfg.
func NewSession(cfg Config) (*Session, error) { return engine.NewSession(cfg) }

// NewEquilibriumCache returns a bounded LRU equilibrium cache.
func NewEquilibriumCache(capacity int) (*EquilibriumCache, error) { return engine.NewCache(capacity) }

// NewEstimator validates the parameters and returns an estimator on g.
func NewEstimator(p mec.Params, g grid.Grid2D) (*Estimator, error) { return engine.NewEstimator(p, g) }

// OptimalControl is the closed-form maximiser of Theorem 1 (Eq. 21).
func OptimalControl(p mec.Params, dVdq float64) float64 { return engine.OptimalControl(p, dVdq) }

// ReadEquilibrium deserialises an equilibrium written by Equilibrium.WriteTo.
func ReadEquilibrium(r io.Reader) (*Equilibrium, error) { return engine.ReadEquilibrium(r) }

// MarshalEquilibrium serialises an equilibrium for checkpointing, pruning the
// warm-start ancestry chain. See engine.MarshalEquilibrium.
func MarshalEquilibrium(eq *Equilibrium) ([]byte, error) { return engine.MarshalEquilibrium(eq) }

// UnmarshalEquilibrium deserialises an equilibrium written by
// MarshalEquilibrium.
func UnmarshalEquilibrium(data []byte) (*Equilibrium, error) {
	return engine.UnmarshalEquilibrium(data)
}

// CacheKey builds the canonical equilibrium-cache key of (cfg, w). See
// engine.CacheKey.
func CacheKey(cfg Config, w Workload) string { return engine.CacheKey(cfg, w) }

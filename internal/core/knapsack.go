package core

import (
	"fmt"
	"math"
	"sort"
)

// The paper's Remark (Section IV-C) notes that MFG-CP "can be easily extended
// to the scenario whereby the caching capacity of each EDP is less than a
// fixed threshold": after the per-content MFG solutions are obtained, the
// final caching strategy is derived by solving a knapsack problem in which
// each content carries a weight (the space its equilibrium strategy would
// consume) and a value (the utility it contributes). This file implements
// that extension: a fractional (greedy-optimal) allocator used to post-
// process the continuous caching rates, and an exact 0/1 dynamic-programming
// solver for the all-or-nothing variant, cross-checked against brute force in
// tests.

// KnapsackItem is one content in the capacity allocation.
type KnapsackItem struct {
	Content int     // content id, for reporting
	Weight  float64 // cache space the equilibrium strategy would consume
	Value   float64 // utility contribution of caching this content fully
}

// validateItems checks the common preconditions of both solvers.
func validateItems(items []KnapsackItem, capacity float64) error {
	if capacity < 0 {
		return fmt.Errorf("core: knapsack capacity must be non-negative, got %g", capacity)
	}
	for i, it := range items {
		if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return fmt.Errorf("core: knapsack item %d has invalid weight %g", i, it.Weight)
		}
		if math.IsNaN(it.Value) || math.IsInf(it.Value, 0) {
			return fmt.Errorf("core: knapsack item %d has invalid value %g", i, it.Value)
		}
	}
	return nil
}

// AllocateFractional solves the continuous knapsack: contents are admitted in
// decreasing value density until the capacity is exhausted, the marginal
// content fractionally. The returned slice holds the admitted fraction of
// each item (aligned with items); the greedy solution is exactly optimal for
// the fractional problem. Items with non-positive value are never admitted.
func AllocateFractional(items []KnapsackItem, capacity float64) ([]float64, error) {
	if err := validateItems(items, capacity); err != nil {
		return nil, err
	}
	frac := make([]float64, len(items))
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		// Density comparison without dividing by a possibly-zero weight:
		// va/wa > vb/wb  ⇔  va·wb > vb·wa for positive weights; zero-weight
		// items with positive value have infinite density and come first.
		if ia.Weight == 0 || ib.Weight == 0 {
			return ia.Weight == 0 && ib.Weight != 0
		}
		return ia.Value*ib.Weight > ib.Value*ia.Weight
	})
	remaining := capacity
	for _, i := range order {
		it := items[i]
		if it.Value <= 0 {
			continue
		}
		if it.Weight == 0 {
			frac[i] = 1
			continue
		}
		if it.Weight <= remaining {
			frac[i] = 1
			remaining -= it.Weight
			continue
		}
		if remaining > 0 {
			frac[i] = remaining / it.Weight
			remaining = 0
		}
	}
	return frac, nil
}

// Allocate01 solves the 0/1 knapsack exactly by dynamic programming on a
// discretised weight axis with `resolution` buckets (the classical FPTAS-style
// weight scaling; with resolution ≥ Σweights/minWeight the solution is
// exact). It returns the admitted set as booleans aligned with items and the
// achieved total value.
func Allocate01(items []KnapsackItem, capacity float64, resolution int) ([]bool, float64, error) {
	if err := validateItems(items, capacity); err != nil {
		return nil, 0, err
	}
	if resolution < 1 {
		return nil, 0, fmt.Errorf("core: knapsack resolution must be ≥ 1, got %d", resolution)
	}
	take := make([]bool, len(items))
	if capacity == 0 || len(items) == 0 {
		// Only zero-weight positive-value items fit.
		var total float64
		for i, it := range items {
			if it.Weight == 0 && it.Value > 0 {
				take[i] = true
				total += it.Value
			}
		}
		return take, total, nil
	}
	scale := float64(resolution) / capacity
	buckets := resolution

	// weights in buckets, rounded up so the capacity is never exceeded.
	wb := make([]int, len(items))
	for i, it := range items {
		wb[i] = int(math.Ceil(it.Weight*scale - 1e-12))
	}

	best := make([]float64, buckets+1)
	choice := make([][]bool, len(items))
	for i := range choice {
		choice[i] = make([]bool, buckets+1)
	}
	for i, it := range items {
		if it.Value <= 0 {
			continue
		}
		w := wb[i]
		for c := buckets; c >= w; c-- {
			if cand := best[c-w] + it.Value; cand > best[c] {
				best[c] = cand
				choice[i][c] = true
			}
		}
	}
	// Reconstruct.
	c := buckets
	for i := len(items) - 1; i >= 0; i-- {
		if choice[i][c] {
			take[i] = true
			c -= wb[i]
		}
	}
	return take, best[buckets], nil
}

// CapacityItems derives the knapsack inputs from a set of per-content
// equilibria: the weight is the expected space the equilibrium strategy
// consumes (Qk·w1·∫E[x*]dt), and the value is the representative EDP's
// expected accumulated utility under that equilibrium. Contents without an
// equilibrium (not requested this epoch) are skipped.
func CapacityItems(equilibria []*Equilibrium, seed int64, paths int) ([]KnapsackItem, error) {
	var items []KnapsackItem
	for k, eq := range equilibria {
		if eq == nil {
			continue
		}
		p := eq.Config.Params
		// Expected space consumption: integrate the population-mean control.
		var used float64
		dt := eq.Time.Dt()
		for n := 0; n < len(eq.Snapshots); n++ {
			used += p.Qk * p.W1 * eq.Snapshots[n].MeanControl * dt
		}
		roll, err := eq.EnsembleRollout(p.ChMean, p.InitMeanFrac*p.Qk, seed+int64(k), paths)
		if err != nil {
			return nil, fmt.Errorf("core: capacity items: content %d: %w", k, err)
		}
		value, _ := roll.Final()
		items = append(items, KnapsackItem{Content: k, Weight: used, Value: value})
	}
	return items, nil
}

package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEquilibriumSerializationRoundTrip(t *testing.T) {
	eq := solveSmall(t)
	var buf bytes.Buffer
	n, err := eq.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadEquilibrium(&buf)
	if err != nil {
		t.Fatalf("ReadEquilibrium: %v", err)
	}
	if back.Grid != eq.Grid || back.Time != eq.Time {
		t.Fatal("grid/time mesh changed in round trip")
	}
	if back.Iterations != eq.Iterations || back.Converged != eq.Converged {
		t.Error("diagnostics changed in round trip")
	}
	for n := range eq.HJB.V {
		for k := range eq.HJB.V[n] {
			if back.HJB.V[n][k] != eq.HJB.V[n][k] {
				t.Fatalf("value function differs at [%d][%d]", n, k)
			}
			if back.HJB.X[n][k] != eq.HJB.X[n][k] {
				t.Fatalf("strategy differs at [%d][%d]", n, k)
			}
			if back.FPK.Lambda[n][k] != eq.FPK.Lambda[n][k] {
				t.Fatalf("density differs at [%d][%d]", n, k)
			}
		}
	}
	// The restored equilibrium is functional: interpolators and rollouts work.
	x, err := back.HJB.ControlAt(0.3, eq.Config.Params.ChMean, 50)
	if err != nil {
		t.Fatal(err)
	}
	if x < 0 || x > 1 {
		t.Fatalf("restored control %g out of range", x)
	}
	roll, err := back.SimulateRollout(eq.Config.Params.ChMean, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u, _ := roll.Final(); math.IsNaN(u) {
		t.Fatal("restored rollout produced NaN")
	}
}

func TestReadEquilibriumRejectsGarbage(t *testing.T) {
	if _, err := ReadEquilibrium(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input should error")
	}
	if _, err := ReadEquilibrium(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
}

func TestWarmStartSpeedsConvergence(t *testing.T) {
	cold := solveSmall(t)

	// Re-solve a slightly perturbed workload from the cold fixed point.
	w := defaultWorkload()
	w.Requests = 11
	cfg := smallConfig()
	cfg.WarmStart = cold
	warm, err := Solve(cfg, w)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	coldAgain, err := Solve(smallConfig(), w)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if warm.Iterations >= coldAgain.Iterations {
		t.Errorf("warm start should converge faster: %d vs %d iterations",
			warm.Iterations, coldAgain.Iterations)
	}
	// Same fixed point regardless of the start.
	var worst float64
	for n := range warm.HJB.X {
		for k := range warm.HJB.X[n] {
			if d := math.Abs(warm.HJB.X[n][k] - coldAgain.HJB.X[n][k]); d > worst {
				worst = d
			}
		}
	}
	if worst > 5*cfg.Tol {
		t.Errorf("warm and cold solves disagree by %g (uniqueness, Theorem 2)", worst)
	}
}

func TestWarmStartValidation(t *testing.T) {
	cold := solveSmall(t)
	cfg := smallConfig()
	cfg.NQ = cold.Grid.Q.N + 10 // different grid
	cfg.WarmStart = cold
	if _, err := Solve(cfg, defaultWorkload()); err == nil {
		t.Error("grid mismatch should be rejected")
	}
	cfg = smallConfig()
	cfg.WarmStart = &Equilibrium{}
	if _, err := Solve(cfg, defaultWorkload()); err == nil {
		t.Error("warm start without solver outputs should be rejected")
	}
}

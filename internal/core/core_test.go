package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/pde"
)

func smallConfig() Config {
	cfg := DefaultConfig(mec.Default())
	cfg.NH = 7
	cfg.NQ = 41
	cfg.Steps = 60
	cfg.MaxIters = 40
	return cfg
}

func defaultWorkload() Workload {
	return Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
}

func solveSmall(t *testing.T) *Equilibrium {
	t.Helper()
	eq, err := Solve(smallConfig(), defaultWorkload())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return eq
}

func TestSolveConverges(t *testing.T) {
	eq := solveSmall(t)
	if !eq.Converged {
		t.Fatalf("not converged after %d iterations, residuals %v", eq.Iterations, eq.Residuals)
	}
	if eq.Iterations < 2 {
		t.Errorf("suspiciously fast convergence: %d iterations", eq.Iterations)
	}
	last := eq.Residuals[len(eq.Residuals)-1]
	if last >= eq.Config.Tol {
		t.Errorf("final residual %g not below tol %g", last, eq.Config.Tol)
	}
}

func TestSolveControlInRange(t *testing.T) {
	eq := solveSmall(t)
	for n := range eq.HJB.X {
		for k, x := range eq.HJB.X[n] {
			if x < 0 || x > 1 {
				t.Fatalf("control X[%d][%d] = %g outside [0,1]", n, k, x)
			}
		}
	}
}

func TestSolveDensityProper(t *testing.T) {
	eq := solveSmall(t)
	for n := range eq.FPK.Lambda {
		if m := eq.FPK.Mass(n); math.Abs(m-1) > 1e-6 {
			t.Fatalf("density mass at step %d = %g, want 1", n, m)
		}
		for k, v := range eq.FPK.Lambda[n] {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad density at step %d node %d: %g", n, k, v)
			}
		}
	}
}

func TestSolvePriceWithinBounds(t *testing.T) {
	eq := solveSmall(t)
	p := eq.Config.Params
	lo := math.Max(0, p.PHat-p.Eta1*p.Qk)
	for _, s := range eq.Snapshots {
		if s.Price < lo-1e-9 || s.Price > p.PHat+1e-9 {
			t.Fatalf("price %g at t=%g outside [%g, %g]", s.Price, s.T, lo, p.PHat)
		}
		if s.MeanControl < -1e-9 || s.MeanControl > 1+1e-9 {
			t.Fatalf("mean control %g at t=%g outside [0,1]", s.MeanControl, s.T)
		}
		if s.QBar < 0 || s.QBar > p.Qk+1e-9 {
			t.Fatalf("q̄ = %g at t=%g outside [0, Qk]", s.QBar, s.T)
		}
		if s.SharerFrac < -1e-9 || s.SharerFrac > 1+1e-9 {
			t.Fatalf("sharer fraction %g outside [0,1]", s.SharerFrac)
		}
		if s.Case3Frac < -1e-9 || s.Case3Frac > 1+1e-9 {
			t.Fatalf("case-3 fraction %g outside [0,1]", s.Case3Frac)
		}
		if s.ShareBenefit < 0 {
			t.Fatalf("sharing benefit %g negative", s.ShareBenefit)
		}
	}
}

// The caching strategy should increase with remaining space at a fixed time:
// an EDP with more free space caches at a higher rate (Fig. 5's main shape).
func TestSolveControlIncreasesWithRemainingSpace(t *testing.T) {
	eq := solveSmall(t)
	g := eq.Grid
	n := eq.Time.Steps / 4 // an interior time
	iMid := g.H.N / 2
	xLow := eq.HJB.X[n][g.Idx(iMid, 2)]        // little remaining space
	xHigh := eq.HJB.X[n][g.Idx(iMid, g.Q.N-3)] // lots of remaining space
	if xHigh < xLow-1e-6 {
		t.Errorf("x*(q small)=%g > x*(q large)=%g: expected non-decreasing in q", xLow, xHigh)
	}
	if xHigh <= 1e-9 {
		t.Errorf("equilibrium strategy is identically zero at high q — utility scale off (x=%g)", xHigh)
	}
}

func TestSolveDeterministic(t *testing.T) {
	eq1, err := Solve(smallConfig(), defaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	eq2, err := Solve(smallConfig(), defaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for n := range eq1.HJB.V {
		for k := range eq1.HJB.V[n] {
			if eq1.HJB.V[n][k] != eq2.HJB.V[n][k] {
				t.Fatal("Solve is not deterministic")
			}
		}
	}
}

func TestSolveValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.NH = 1
	if _, err := Solve(cfg, defaultWorkload()); err == nil {
		t.Error("tiny grid should be rejected")
	}
	cfg = smallConfig()
	cfg.Damping = 0
	if _, err := Solve(cfg, defaultWorkload()); err == nil {
		t.Error("zero damping should be rejected")
	}
	cfg = smallConfig()
	cfg.Tol = 0
	if _, err := Solve(cfg, defaultWorkload()); err == nil {
		t.Error("zero tolerance should be rejected")
	}
	cfg = smallConfig()
	cfg.InitLambda = make([]float64, 3)
	if _, err := Solve(cfg, defaultWorkload()); err == nil {
		t.Error("wrong-size InitLambda should be rejected")
	}
	w := defaultWorkload()
	w.Requests = -1
	if _, err := Solve(smallConfig(), w); err == nil {
		t.Error("negative requests should be rejected")
	}
	w = defaultWorkload()
	w.Pop = 2
	if _, err := Solve(smallConfig(), w); err == nil {
		t.Error("popularity > 1 should be rejected")
	}
}

func TestSolveNotConvergedError(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxIters = 1
	cfg.Tol = 1e-12
	eq, err := Solve(cfg, defaultWorkload())
	if err == nil {
		t.Fatal("expected non-convergence error")
	}
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("error should wrap ErrNotConverged, got %v", err)
	}
	if eq == nil {
		t.Fatal("partial equilibrium should still be returned")
	}
}

func TestEstimatorSnapshotUniform(t *testing.T) {
	p := mec.Default()
	hAxis, _ := grid.NewAxis(p.HMin, p.HMax, 5)
	qAxis, _ := grid.NewAxis(0, p.Qk, 21)
	g, _ := grid.NewGrid2D(hAxis, qAxis)
	est, err := NewEstimator(p, g)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform density, constant control 0.5.
	lambda := g.NewField()
	area := (p.HMax - p.HMin) * p.Qk
	for k := range lambda {
		lambda[k] = 1 / area
	}
	x := g.NewField()
	for k := range x {
		x[k] = 0.5
	}
	s, err := est.Snapshot(0, lambda, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MeanControl-0.5) > 1e-9 {
		t.Errorf("mean control = %g, want 0.5", s.MeanControl)
	}
	if math.Abs(s.QBar-p.Qk/2) > 1e-9 {
		t.Errorf("q̄ = %g, want %g", s.QBar, p.Qk/2)
	}
	if math.Abs(s.Price-mec.PriceMeanField(p, 0.5)) > 1e-12 {
		t.Errorf("price = %g disagrees with PriceMeanField", s.Price)
	}
	// Uniform over [0,Qk]: α = 0.2 of the mass is below αQk.
	if math.Abs(s.SharerFrac-p.Alpha) > 0.03 {
		t.Errorf("sharer fraction = %g, want ≈%g", s.SharerFrac, p.Alpha)
	}
}

func TestEstimatorRejectsBadInput(t *testing.T) {
	p := mec.Default()
	hAxis, _ := grid.NewAxis(p.HMin, p.HMax, 5)
	qAxis, _ := grid.NewAxis(0, p.Qk, 9)
	g, _ := grid.NewGrid2D(hAxis, qAxis)
	est, err := NewEstimator(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Snapshot(0, make([]float64, 3), g.NewField()); err == nil {
		t.Error("wrong-size lambda should be rejected")
	}
	if _, err := est.Snapshot(0, g.NewField(), g.NewField()); err == nil {
		t.Error("zero-mass density should be rejected")
	}
	bad := p
	bad.K = 0
	if _, err := NewEstimator(bad, g); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestOptimalControlClamps(t *testing.T) {
	p := mec.Default()
	// Strongly negative ∂qV pushes the control to 1.
	if got := OptimalControl(p, -1e9); got != 1 {
		t.Errorf("control = %g, want clamp at 1", got)
	}
	// Positive ∂qV (more space is good) means no caching.
	if got := OptimalControl(p, 1e9); got != 0 {
		t.Errorf("control = %g, want clamp at 0", got)
	}
	// Interior: pick ∂qV to land at x = 0.5 and invert Eq. 21 by hand.
	target := 0.5
	dv := -(2*p.W5*target + p.W4 + p.Eta2*p.Qk/p.HubRate) / (p.Qk * p.W1)
	if got := OptimalControl(p, dv); math.Abs(got-target) > 1e-9 {
		t.Errorf("control = %g, want %g", got, target)
	}
}

// Nash property: unilateral constant deviations from the equilibrium strategy
// must not beat the equilibrium rollout by more than discretisation noise.
func TestNashDeviation(t *testing.T) {
	eq := solveSmall(t)
	p := eq.Config.Params
	h0, q0 := p.ChMean, 0.7*p.Qk
	roll, err := eq.SimulateRollout(h0, q0, 99)
	if err != nil {
		t.Fatal(err)
	}
	eqUtil, _ := roll.Final()
	// Allow a tolerance: the rollout discretises the SDE and the constant
	// deviations probe only a 1-D slice of the strategy space.
	tol := 0.05 * (math.Abs(eqUtil) + 1)
	for _, xc := range []float64{0, 0.25, 0.5, 0.75, 1} {
		dev, err := eq.DeviationUtility(h0, q0, xc, 99)
		if err != nil {
			t.Fatal(err)
		}
		if dev > eqUtil+tol {
			t.Errorf("constant deviation x=%g earns %g > equilibrium %g (+tol %g)", xc, dev, eqUtil, tol)
		}
	}
}

func TestRolloutShapes(t *testing.T) {
	eq := solveSmall(t)
	p := eq.Config.Params
	roll, err := eq.SimulateRollout(p.ChMean, 0.6*p.Qk, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := eq.Time.Steps + 1
	if len(roll.Times) != n || len(roll.Q) != n || len(roll.Utility) != n {
		t.Fatalf("rollout has wrong lengths")
	}
	for i := range roll.Q {
		if roll.Q[i] < 0 || roll.Q[i] > p.Qk {
			t.Fatalf("q[%d] = %g escaped [0, Qk]", i, roll.Q[i])
		}
		if roll.H[i] < p.HMin || roll.H[i] > p.HMax {
			t.Fatalf("h[%d] = %g escaped fading range", i, roll.H[i])
		}
		if roll.X[i] < 0 || roll.X[i] > 1 {
			t.Fatalf("x[%d] = %g escaped [0,1]", i, roll.X[i])
		}
	}
	u, tr := roll.Final()
	if math.IsNaN(u) || math.IsNaN(tr) {
		t.Fatal("final utilities are NaN")
	}
	if tr < 0 {
		t.Errorf("cumulative trading income negative: %g", tr)
	}
	// Deterministic under the same seed.
	roll2, err := eq.SimulateRollout(p.ChMean, 0.6*p.Qk, 7)
	if err != nil {
		t.Fatal(err)
	}
	u2, _ := roll2.Final()
	if u != u2 {
		t.Error("rollout is not deterministic under a fixed seed")
	}
}

func TestRolloutRejectsBadInitialState(t *testing.T) {
	eq := solveSmall(t)
	if _, err := eq.SimulateRollout(-5, 50, 1); err == nil {
		t.Error("out-of-range h0 should be rejected")
	}
	if _, err := eq.SimulateRollout(5, 1e9, 1); err == nil {
		t.Error("out-of-range q0 should be rejected")
	}
}

func TestMarginalQIntegratesToOne(t *testing.T) {
	eq := solveSmall(t)
	for _, n := range []int{0, eq.Time.Steps / 2, eq.Time.Steps} {
		marg, err := eq.MarginalQ(n)
		if err != nil {
			t.Fatal(err)
		}
		// The FPK scheme conserves the finite-volume (rectangle-rule) mass,
		// so integrate the marginal the same way; density piling up at the
		// q=0 boundary makes the trapezoid rule undercount by design.
		var tot float64
		for _, v := range marg {
			tot += v
		}
		tot *= eq.Grid.Q.Step()
		if math.Abs(tot-1) > 0.02 {
			t.Errorf("marginal at step %d integrates to %g, want ≈1", n, tot)
		}
	}
	if _, err := eq.MarginalQ(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := eq.MarginalQ(1 << 20); err == nil {
		t.Error("huge index should error")
	}
}

// The MFG baseline (sharing disabled) must also converge and produce a
// different equilibrium.
func TestSolveWithoutSharing(t *testing.T) {
	cfg := smallConfig()
	cfg.ShareEnabled = false
	eq, err := Solve(cfg, defaultWorkload())
	if err != nil {
		t.Fatalf("Solve without sharing: %v", err)
	}
	if !eq.Converged {
		t.Fatal("MFG baseline did not converge")
	}
	withShare := solveSmall(t)
	var diff float64
	for k := range eq.HJB.V[0] {
		diff = math.Max(diff, math.Abs(eq.HJB.V[0][k]-withShare.HJB.V[0][k]))
	}
	if diff < 1e-9 {
		t.Error("sharing on/off produced identical value functions")
	}
}

// The paper-literal advective FPK form also converges (ablation).
func TestSolveAdvectiveForm(t *testing.T) {
	cfg := smallConfig()
	cfg.FPKForm = pde.Advective
	eq, err := Solve(cfg, defaultWorkload())
	if err != nil {
		t.Fatalf("Solve with advective FPK: %v", err)
	}
	if !eq.Converged {
		t.Fatal("advective-form solve did not converge")
	}
}

func TestSnapshotAtClamps(t *testing.T) {
	eq := solveSmall(t)
	s := eq.SnapshotAt(-10)
	if s.T != 0 {
		t.Errorf("early snapshot at t=%g, want 0", s.T)
	}
	s = eq.SnapshotAt(1e9)
	if s.T != eq.Time.Horizon {
		t.Errorf("late snapshot at t=%g, want %g", s.T, eq.Time.Horizon)
	}
}

// The explicit-stepping ablation solves the same equilibrium (the default
// mesh satisfies the CFL bound) and lands near the implicit solution.
func TestSolveExplicitStepping(t *testing.T) {
	// Use a fine time mesh so the first-order-in-time discrepancy between
	// the schemes stays small through the fixed-point iteration.
	cfg := smallConfig()
	cfg.Steps = 240
	cfg.Stepping = pde.Explicit
	eq, err := Solve(cfg, defaultWorkload())
	if err != nil {
		t.Fatalf("explicit solve: %v", err)
	}
	if !eq.Converged {
		t.Fatal("explicit solve did not converge")
	}
	impCfg := smallConfig()
	impCfg.Steps = 240
	imp, err := Solve(impCfg, defaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for k := range eq.HJB.X[0] {
		if d := math.Abs(eq.HJB.X[0][k] - imp.HJB.X[0][k]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("explicit and implicit strategies differ by %g at t=0", worst)
	}
}

package core

import (
	"errors"
	"fmt"
	"log/slog"
	"math"

	"repro/internal/grid"
	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/pde"
)

// Workload is the per-epoch, per-content demand descriptor feeding one
// equilibrium computation: the request load |I_k|, the current popularity
// Π_k(t) and the timeliness level L_k(t). Algorithm 1 refreshes these from
// the trace at the start of every optimisation epoch and holds them fixed
// within it ("the change in requesters' demands occurs at a relatively slow
// rate compared to the time scale of the optimization epoch").
type Workload struct {
	Requests   float64
	Pop        float64
	Timeliness float64
}

// Validate checks the workload descriptor.
func (w Workload) Validate() error {
	if w.Requests < 0 {
		return fmt.Errorf("core: workload requests must be non-negative, got %g", w.Requests)
	}
	if w.Pop < 0 || w.Pop > 1 {
		return fmt.Errorf("core: workload popularity must lie in [0,1], got %g", w.Pop)
	}
	if w.Timeliness < 0 {
		return fmt.Errorf("core: workload timeliness must be non-negative, got %g", w.Timeliness)
	}
	return nil
}

// Config controls one mean-field equilibrium computation (Algorithm 2).
type Config struct {
	Params mec.Params

	// Grid resolution: NH×NQ state nodes, Steps time intervals over the
	// horizon T.
	NH, NQ, Steps int

	// MaxIters is ψ_th, the cap on best-response iterations; Tol is the
	// sup-norm threshold on the strategy change |x^ψ − x^(ψ−1)| below which
	// the iteration stops (Algorithm 2, line 6).
	MaxIters int
	Tol      float64

	// Damping γ ∈ (0,1] relaxes the strategy update,
	// x ← (1−γ)·x_old + γ·x_new, which accelerates and robustifies the
	// fixed-point iteration (γ=1 reproduces the undamped Algorithm 2).
	Damping float64

	// FPKForm selects the forward-equation discretisation (conservative by
	// default; pde.Advective reproduces the paper-literal Eq. 15).
	FPKForm pde.FPKForm

	// Stepping selects the time integrator of both PDEs (implicit by
	// default; pde.Explicit is the CFL-bounded ablation).
	Stepping pde.Stepping

	// ShareEnabled distinguishes MFG-CP (true) from the MFG baseline
	// without peer sharing (false).
	ShareEnabled bool

	// InitLambda optionally overrides the initial density (flattened over
	// the grid). When nil, the Section-V initialisation is used: Gaussian
	// over q with mean InitMeanFrac·Qk and sd InitStdFrac·Qk, and the OU
	// stationary Gaussian over h.
	InitLambda []float64

	// WarmStart optionally seeds the best-response iteration with the
	// strategy and density paths of a previously solved equilibrium on the
	// same grid and time mesh (Algorithm 1 runs one solve per content per
	// epoch; slowly-varying workloads converge in far fewer iterations from
	// the previous epoch's fixed point).
	WarmStart *Equilibrium

	// Obs receives solver telemetry — per-iteration residual events, HJB and
	// FPK pass spans, convergence counters ("core.solver.*" names). Nil means
	// no-op: library users and tests opt in explicitly, and the hot loops pay
	// nothing by default. The field is dropped from serialised archives.
	Obs obs.Recorder
}

// DefaultConfig returns the solver configuration used by the experiments.
func DefaultConfig(p mec.Params) Config {
	return Config{
		Params:       p,
		NH:           13,
		NQ:           61,
		Steps:        120,
		MaxIters:     40,
		Tol:          1e-3,
		Damping:      0.6,
		FPKForm:      pde.Conservative,
		ShareEnabled: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.NH < 3 || c.NQ < 3 {
		return fmt.Errorf("core: grid must be at least 3×3, got %d×%d", c.NH, c.NQ)
	}
	if c.Steps < 2 {
		return fmt.Errorf("core: need at least 2 time steps, got %d", c.Steps)
	}
	if c.MaxIters < 1 {
		return fmt.Errorf("core: MaxIters must be ≥ 1, got %d", c.MaxIters)
	}
	if !(c.Tol > 0) {
		return fmt.Errorf("core: Tol must be positive, got %g", c.Tol)
	}
	if !(c.Damping > 0 && c.Damping <= 1) {
		return fmt.Errorf("core: Damping must lie in (0,1], got %g", c.Damping)
	}
	return nil
}

// Equilibrium is the solved mean-field equilibrium for one content over one
// optimisation epoch: the value function and optimal strategy (HJB), the
// mean-field density path (FPK), the estimator snapshots at every time node,
// and the convergence diagnostics of the best-response iteration.
type Equilibrium struct {
	Config   Config
	Workload Workload
	Grid     grid.Grid2D
	Time     grid.TimeMesh

	HJB       *pde.HJBSolution
	FPK       *pde.FPKSolution
	Snapshots []Snapshot

	Iterations int
	Converged  bool
	// Residuals[i] is the sup-norm strategy change after iteration i+1.
	Residuals []float64
}

// ErrNotConverged is wrapped by Solve when the best-response iteration hits
// MaxIters with a residual above Tol. The partially converged equilibrium is
// still returned alongside it so callers can inspect diagnostics.
var ErrNotConverged = errors.New("core: best-response iteration did not converge")

// Solve runs the iterative best-response learning scheme (Algorithm 2):
//
//	repeat
//	    1. build mean-field snapshots from the current density path λ and
//	       strategy x (price, q̄, Δq̄, sharing benefit — Eqs. 16–18);
//	    2. solve the backward HJB (Eq. 20) under those snapshots, obtaining
//	       the best-response strategy x* via Theorem 1;
//	    3. stop if sup|x* − x| < Tol;
//	    4. solve the forward FPK (Eq. 15) under (a damped update of) x*,
//	       obtaining the next density path;
//	until converged or ψ = ψ_th.
//
// The fixed point (V*, λ*) of this map is the unique mean-field equilibrium
// (Theorem 2).
func Solve(cfg Config, w Workload) (*Equilibrium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Params

	hAxis, err := grid.NewAxis(p.HMin, p.HMax, cfg.NH)
	if err != nil {
		return nil, err
	}
	qAxis, err := grid.NewAxis(0, p.Qk, cfg.NQ)
	if err != nil {
		return nil, err
	}
	g, err := grid.NewGrid2D(hAxis, qAxis)
	if err != nil {
		return nil, err
	}
	tm, err := grid.NewTimeMesh(p.Horizon, cfg.Steps)
	if err != nil {
		return nil, err
	}

	channel, err := mec.NewChannelModel(p)
	if err != nil {
		return nil, err
	}
	est, err := NewEstimator(p, g)
	if err != nil {
		return nil, err
	}

	// Initial density.
	lambda0 := cfg.InitLambda
	if lambda0 == nil {
		sdH := math.Sqrt(channel.OU().StationaryVar())
		if sdH < 1e-3 {
			sdH = 1e-3
		}
		lambda0, err = pde.GaussianDensity(g, p.ChMean, sdH, p.InitMeanFrac*p.Qk, p.InitStdFrac*p.Qk)
		if err != nil {
			return nil, err
		}
	} else if len(lambda0) != g.Size() {
		return nil, fmt.Errorf("core: InitLambda has %d nodes, grid has %d", len(lambda0), g.Size())
	}

	// Density path: before the first FPK solve, hold λ0 constant in time.
	lambdaPath := make([][]float64, cfg.Steps+1)
	for n := range lambdaPath {
		lambdaPath[n] = lambda0
	}
	// Strategy path: start from no caching, or from the warm-start
	// equilibrium's fixed point.
	xPath := make([][]float64, cfg.Steps+1)
	for n := range xPath {
		xPath[n] = g.NewField()
	}
	if ws := cfg.WarmStart; ws != nil {
		if ws.HJB == nil || ws.FPK == nil {
			return nil, fmt.Errorf("core: warm-start equilibrium carries no solver outputs")
		}
		if ws.Grid != g || ws.Time != tm {
			return nil, fmt.Errorf("core: warm-start grid/time mesh mismatch: %dx%d/%d vs %dx%d/%d",
				ws.Grid.H.N, ws.Grid.Q.N, ws.Time.Steps, g.H.N, g.Q.N, tm.Steps)
		}
		for n := range xPath {
			copy(xPath[n], ws.HJB.X[n])
			lambdaPath[n] = ws.FPK.Lambda[n]
		}
	}

	rec := obs.OrNop(cfg.Obs)
	solveSpan := rec.Start("core.solve")

	eq := &Equilibrium{Config: cfg, Workload: w, Grid: g, Time: tm}
	ou := channel.OU()
	timeIndex := func(t float64) int {
		n := int(t/tm.Dt() + 0.5)
		if n < 0 {
			n = 0
		}
		if n > cfg.Steps {
			n = cfg.Steps
		}
		return n
	}

	var hjb *pde.HJBSolution
	var fpk *pde.FPKSolution
	var snaps []Snapshot

	for iter := 1; iter <= cfg.MaxIters; iter++ {
		// 1. Snapshots from the current (λ, x) paths.
		snaps = make([]Snapshot, cfg.Steps+1)
		ctxs := make([]*mec.UtilityContext, cfg.Steps+1)
		for n := 0; n <= cfg.Steps; n++ {
			s, err := est.Snapshot(tm.At(n), lambdaPath[n], xPath[n])
			if err != nil {
				return nil, fmt.Errorf("core: snapshot at step %d: %w", n, err)
			}
			snaps[n] = s
			ctx, err := mec.NewUtilityContext(p, channel)
			if err != nil {
				return nil, err
			}
			ctx.Price = s.Price
			ctx.QBar = s.QBar
			ctx.ShareBenefit = s.ShareBenefit
			ctx.Requests = w.Requests
			ctx.Pop = w.Pop
			ctx.Timeliness = w.Timeliness
			ctx.ShareEnabled = cfg.ShareEnabled
			ctxs[n] = ctx
		}

		// 2. Backward HJB under the frozen mean field.
		prob := &pde.HJBProblem{
			Grid:   g,
			Time:   tm,
			DiffH:  0.5 * p.ChSigma * p.ChSigma,
			DiffQ:  0.5 * p.SigmaQ * p.SigmaQ,
			DriftH: func(_, h float64) float64 { return ou.Drift(0, h) },
			DriftQ: func(t, x float64) float64 { return ctxs[timeIndex(t)].QDrift(x) },
			Control: func(_, _, _ float64, dVdq float64) float64 {
				return OptimalControl(p, dVdq)
			},
			Running: func(t, x, h, q float64) float64 {
				return ctxs[timeIndex(t)].Utility(x, h, q)
			},
			Stepping: cfg.Stepping,
			Obs:      cfg.Obs,
		}
		hjb, err = pde.SolveHJB(prob)
		if err != nil {
			return nil, fmt.Errorf("core: HJB solve at iteration %d: %w", iter, err)
		}

		// 3. Strategy residual and damped update.
		var residual float64
		for n := 0; n <= cfg.Steps; n++ {
			xNew := hjb.X[n]
			xOld := xPath[n]
			upd := g.NewField()
			for k := range upd {
				d := math.Abs(xNew[k] - xOld[k])
				if d > residual {
					residual = d
				}
				upd[k] = (1-cfg.Damping)*xOld[k] + cfg.Damping*xNew[k]
			}
			xPath[n] = upd
		}
		eq.Residuals = append(eq.Residuals, residual)
		eq.Iterations = iter
		converged := residual < cfg.Tol
		rec.Add("core.solver.iterations", 1)
		rec.Observe("core.solver.residual", residual)
		if rec.Enabled() {
			rec.Event("core.iteration",
				slog.Int("iteration", iter),
				slog.Float64("residual", residual),
				slog.Float64("tol", cfg.Tol),
				slog.Float64("damping", cfg.Damping),
				slog.Bool("converged", converged))
		}

		// 4. Forward FPK under the updated strategy.
		fprob := &pde.FPKProblem{
			Grid:        g,
			Time:        tm,
			DiffH:       0.5 * p.ChSigma * p.ChSigma,
			DiffQ:       0.5 * p.SigmaQ * p.SigmaQ,
			DriftH:      func(_, h float64) float64 { return ou.Drift(0, h) },
			Form:        cfg.FPKForm,
			Stepping:    cfg.Stepping,
			Renormalize: true,
			Obs:         cfg.Obs,
			DriftQ: func(t, h, q float64) float64 {
				n := timeIndex(t)
				i := g.H.NearestIndex(h)
				j := g.Q.NearestIndex(q)
				x := xPath[n][g.Idx(i, j)]
				return ctxs[n].QDrift(x)
			},
		}
		fpk, err = pde.SolveFPK(fprob, lambda0)
		if err != nil {
			return nil, fmt.Errorf("core: FPK solve at iteration %d: %w", iter, err)
		}
		lambdaPath = fpk.Lambda

		if converged {
			eq.Converged = true
			break
		}
	}

	eq.HJB = hjb
	eq.FPK = fpk
	eq.Snapshots = snaps

	stopReason := "tolerance"
	rec.Add("core.solver.solves", 1)
	// One equilibrium solve serves one content for one optimisation epoch
	// (Algorithm 1 line 9), so this mirrors sim's per-run "sim.epochs".
	rec.Add("core.solver.content_epochs", 1)
	if eq.Converged {
		rec.Add("core.solver.converged", 1)
	} else {
		stopReason = "max_iters"
		rec.Add("core.solver.nonconverged", 1)
	}
	rec.Gauge("core.solver.last_iterations", float64(eq.Iterations))
	rec.Gauge("core.solver.last_residual", eq.Residuals[len(eq.Residuals)-1])
	solveSpan.End(
		slog.Int("iterations", eq.Iterations),
		slog.Bool("converged", eq.Converged),
		slog.String("stop_reason", stopReason),
		slog.Float64("final_residual", eq.Residuals[len(eq.Residuals)-1]),
		slog.Bool("warm_start", cfg.WarmStart != nil))

	if !eq.Converged {
		return eq, fmt.Errorf("%w after %d iterations (residual %.3g > tol %.3g)",
			ErrNotConverged, eq.Iterations, eq.Residuals[len(eq.Residuals)-1], cfg.Tol)
	}
	return eq, nil
}

// SnapshotAt returns the estimator snapshot nearest to time t.
func (eq *Equilibrium) SnapshotAt(t float64) Snapshot {
	n := int(t/eq.Time.Dt() + 0.5)
	if n < 0 {
		n = 0
	}
	if n >= len(eq.Snapshots) {
		n = len(eq.Snapshots) - 1
	}
	return eq.Snapshots[n]
}

// MarginalQ returns the q-marginal of the mean-field density at time index n
// (the quantity plotted in Figs. 4, 6 and 7).
func (eq *Equilibrium) MarginalQ(n int) ([]float64, error) {
	if eq.FPK == nil {
		return nil, errors.New("core: equilibrium has no FPK solution")
	}
	if n < 0 || n >= len(eq.FPK.Lambda) {
		return nil, fmt.Errorf("core: time index %d out of range [0,%d)", n, len(eq.FPK.Lambda))
	}
	dst := make([]float64, eq.Grid.Q.N)
	if err := numerics.MarginalQ(eq.Grid, dst, eq.FPK.Lambda[n]); err != nil {
		return nil, err
	}
	return dst, nil
}

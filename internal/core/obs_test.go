package core

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestSolveRecordsTelemetry verifies that an injected recorder observes the
// whole Algorithm-2 pipeline: best-response iterations, the HJB/FPK passes
// they trigger, and the convergence outcome.
func TestSolveRecordsTelemetry(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg := smallConfig()
	cfg.Obs = reg
	eq, err := Solve(cfg, defaultWorkload())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	s := reg.Snapshot()
	if got := s.Counters["core.solver.iterations"]; got != float64(eq.Iterations) {
		t.Errorf("iteration counter = %g, want %d", got, eq.Iterations)
	}
	if s.Counters["core.solver.solves"] != 1 || s.Counters["core.solver.converged"] != 1 {
		t.Errorf("solve counters wrong: %+v", s.Counters)
	}
	if got := s.Counters["pde.hjb.solves"]; got != float64(eq.Iterations) {
		t.Errorf("HJB solves = %g, want one per iteration (%d)", got, eq.Iterations)
	}
	if s.Counters["pde.hjb.sweeps"] <= 0 || s.Counters["pde.fpk.sweeps"] <= 0 {
		t.Errorf("sweep counters missing: %+v", s.Counters)
	}
	res := s.Histograms["core.solver.residual"]
	if res.Count != uint64(len(eq.Residuals)) {
		t.Errorf("residual histogram has %d samples, want %d", res.Count, len(eq.Residuals))
	}
	if res.Min != eq.Residuals[len(eq.Residuals)-1] {
		t.Errorf("residual histogram min %g, want final residual %g", res.Min, eq.Residuals[len(eq.Residuals)-1])
	}
	if s.Histograms["core.solve.seconds"].Count != 1 {
		t.Errorf("solve span not recorded: %+v", s.Histograms)
	}
	if s.Gauges["core.solver.last_iterations"] != float64(eq.Iterations) {
		t.Errorf("last_iterations gauge = %g, want %d", s.Gauges["core.solver.last_iterations"], eq.Iterations)
	}
}

// TestSolveResultsUnaffectedByRecorder pins the no-observer-effect property:
// telemetry must never change the numerics.
func TestSolveResultsUnaffectedByRecorder(t *testing.T) {
	plain, err := Solve(smallConfig(), defaultWorkload())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	cfg := smallConfig()
	cfg.Obs = obs.NewRegistry(nil)
	recorded, err := Solve(cfg, defaultWorkload())
	if err != nil {
		t.Fatalf("Solve with recorder: %v", err)
	}
	if plain.Iterations != recorded.Iterations {
		t.Fatalf("iterations differ: %d vs %d", plain.Iterations, recorded.Iterations)
	}
	for i := range plain.Residuals {
		if plain.Residuals[i] != recorded.Residuals[i] {
			t.Errorf("residual %d differs: %g vs %g", i, plain.Residuals[i], recorded.Residuals[i])
		}
	}
	for n := range plain.HJB.X {
		for k := range plain.HJB.X[n] {
			if plain.HJB.X[n][k] != recorded.HJB.X[n][k] {
				t.Fatalf("strategy differs at step %d node %d", n, k)
			}
		}
	}
}

// TestSerializationStripsRecorder verifies that a live recorder never leaks
// into a gob archive (gob cannot encode arbitrary Recorder implementations)
// and that the caller's equilibrium is left untouched.
func TestSerializationStripsRecorder(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg := smallConfig()
	cfg.Obs = reg
	eq, err := Solve(cfg, defaultWorkload())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var buf bytes.Buffer
	if _, err := eq.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo with recorder attached: %v", err)
	}
	if eq.Config.Obs == nil {
		t.Error("WriteTo must not mutate the caller's config")
	}
	back, err := ReadEquilibrium(&buf)
	if err != nil {
		t.Fatalf("ReadEquilibrium: %v", err)
	}
	if back.Config.Obs != nil {
		t.Error("archive must not carry a recorder")
	}
	if back.Iterations != eq.Iterations {
		t.Errorf("round trip lost diagnostics: %d vs %d", back.Iterations, eq.Iterations)
	}
}

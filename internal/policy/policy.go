// Package policy defines the per-epoch caching strategies compared in the
// paper's evaluation: the proposed MFG-CP framework, its sharing-free MFG
// variant, and the Random Replacement (RR), Most Popular Caching (MPC) and
// Ultra-Dense Caching Strategy (UDCS) baselines. The paper itself
// re-implements the baselines "borrowing the basic idea" of their sources
// ([18], [27], [28]); this package does the same.
package policy

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mec"
)

// EpochContext carries everything a policy may need to prepare its strategy
// for one optimisation epoch: the model constants, the catalogue state (with
// popularity and timeliness already refreshed from the workload), the
// per-content workload descriptors, the MFG solver configuration, and the
// population size. Seed derives any per-epoch randomness deterministically.
type EpochContext struct {
	Params    mec.Params
	Catalog   *mec.Catalog
	Workloads []core.Workload // indexed by content id
	Solver    core.Config
	Epoch     int
	Seed      int64
	M         int // number of EDPs whose strategies must be determined

	// Ctx optionally bounds the strategy determination: MFG policies check
	// it at best-response-iteration granularity and abort Prepare promptly on
	// cancellation or deadline. Nil means context.Background().
	Ctx context.Context
}

// Context returns the epoch's cancellation context, never nil.
func (c *EpochContext) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Validate checks the context.
func (c *EpochContext) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Catalog == nil {
		return fmt.Errorf("policy: nil catalog")
	}
	if len(c.Workloads) != c.Params.K {
		return fmt.Errorf("policy: %d workloads for %d contents", len(c.Workloads), c.Params.K)
	}
	if c.M < 1 {
		return fmt.Errorf("policy: M must be ≥ 1, got %d", c.M)
	}
	return nil
}

// Policy is a per-epoch caching strategy. Prepare is called once at the start
// of each epoch (this is the "strategy determination" step whose cost
// Table II compares); Rate is then queried for every EDP at every simulation
// step and must be cheap and side-effect free.
type Policy interface {
	// Name identifies the policy in reports ("MFG-CP", "RR", ...).
	Name() string
	// Prepare computes the epoch's strategy.
	Prepare(ctx *EpochContext) error
	// Rate returns the caching rate x ∈ [0,1] applied by EDP edp to content
	// k at epoch-relative time t in state (h, q).
	Rate(edp, k int, t, h, q float64) (float64, error)
	// SharingEnabled reports whether the policy participates in paid peer
	// sharing (false only for the MFG baseline, which the paper defines as
	// MFG-CP without content sharing).
	SharingEnabled() bool
}

// ByName returns a fresh policy for its canonical (case-insensitive) name:
// "mfg-cp", "mfg", "rr", "mpc" or "udcs". This is the single name→policy
// mapping shared by the CLI flags, the market-config JSON codec and the
// serving daemon.
func ByName(name string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "mfg-cp", "mfgcp":
		return NewMFGCP(), nil
	case "mfg":
		return NewMFG(), nil
	case "rr":
		return NewRR(), nil
	case "mpc":
		return NewMPC(), nil
	case "udcs":
		return NewUDCS(), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (want mfg-cp, mfg, rr, mpc or udcs)", name)
}

// checkContent validates a content index against the prepared epoch.
func checkContent(k, kMax int) error {
	if k < 0 || k >= kMax {
		return fmt.Errorf("policy: content %d out of range [0,%d)", k, kMax)
	}
	return nil
}

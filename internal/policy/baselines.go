package policy

import (
	"math"

	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/sde"
)

// RR is the Random Replacement baseline: every EDP draws an independent
// uniform caching rate for every content at the start of each epoch. The
// strategy determination is therefore O(M·K) — each of the M EDPs runs its
// own random draw, which is exactly the per-player cost MFG-CP avoids
// (Table II).
type RR struct {
	rates [][]float64 // [edp][content]
	k     int
}

// NewRR returns the Random Replacement baseline.
func NewRR() *RR { return &RR{} }

// Name implements Policy.
func (p *RR) Name() string { return "RR" }

// SharingEnabled implements Policy.
func (p *RR) SharingEnabled() bool { return true }

// Prepare draws the per-EDP random strategies.
func (p *RR) Prepare(ctx *EpochContext) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	p.k = ctx.Params.K
	p.rates = make([][]float64, ctx.M)
	for i := 0; i < ctx.M; i++ {
		rng := sde.NewChildRNG(ctx.Seed, i*7919+ctx.Epoch)
		row := make([]float64, p.k)
		for k := range row {
			if ctx.Workloads[k].Requests > 0 {
				row[k] = rng.Float64()
			}
		}
		p.rates[i] = row
	}
	return nil
}

// Rate implements Policy.
func (p *RR) Rate(edp, k int, _, _, _ float64) (float64, error) {
	if err := checkContent(k, p.k); err != nil {
		return 0, err
	}
	if edp < 0 || edp >= len(p.rates) {
		// EDPs beyond the prepared population reuse the first strategy row;
		// this only happens in deliberately mis-sized test setups.
		edp = 0
	}
	return p.rates[edp][k], nil
}

// MPC is the Most Popular Caching baseline (after FGPC [18]): each EDP ranks
// contents by current popularity and caches the top fraction at full rate
// until the whole content is stored (a small hysteresis of 2% of Qk stops
// the rate from fighting the reflecting boundary at q = 0), ignoring prices,
// peers and delay. Ranking runs per EDP, so strategy determination is
// O(M·K log K).
type MPC struct {
	// TopFraction of the catalogue cached at x=1 (default 0.25).
	TopFraction float64

	hot  map[int]bool
	k    int
	minQ float64
}

// NewMPC returns the Most Popular Caching baseline.
func NewMPC() *MPC { return &MPC{TopFraction: 0.25} }

// Name implements Policy.
func (p *MPC) Name() string { return "MPC" }

// SharingEnabled implements Policy.
func (p *MPC) SharingEnabled() bool { return true }

// Prepare computes the hot set. All EDPs see the same popularity, so the
// resulting sets coincide — exactly the herd behaviour the paper's
// introduction criticises — but the ranking is still executed once per EDP
// to model the distributed cost.
func (p *MPC) Prepare(ctx *EpochContext) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	p.k = ctx.Params.K
	p.minQ = 0.02 * ctx.Params.Qk
	n := int(math.Ceil(p.TopFraction * float64(p.k)))
	if n < 1 {
		n = 1
	}
	var hot []int
	for i := 0; i < ctx.M; i++ {
		hot = ctx.Catalog.HotSet(n) // each EDP ranks on its own
	}
	p.hot = make(map[int]bool, len(hot))
	for _, k := range hot {
		p.hot[k] = true
	}
	return nil
}

// Rate implements Policy: full-rate caching for hot contents until the whole
// content is stored, nothing otherwise.
func (p *MPC) Rate(_, k int, _, _, q float64) (float64, error) {
	if err := checkContent(k, p.k); err != nil {
		return 0, err
	}
	if p.hot[k] && q > p.minQ {
		return 1, nil
	}
	return 0, nil
}

// UDCS is the Ultra-Dense Caching Strategy baseline (after Kim et al. [28]):
// a long-run average-cost minimiser that accounts for content overlap among
// dense neighbouring EDPs and wireless interference, but ignores pricing and
// paid sharing. Following the cited construction, each EDP caches a content
// in proportion to the delay pressure it would otherwise accumulate,
// discounted by the expected overlap with its neighbours:
//
//	x_k(t, q) = [ (Qk·w1·η2·|I_k|·P3(q)·(T−t)/(2·Hc) − w4 − η2·Qk/Hc)
//	              / (2·w5·(1 + ov_k)) ]₀¹,   ov_k = n_eff·Π_k·K/2
//
// i.e. the marginal future staleness saving of one unit of caching versus its
// placement cost, with popular contents discounted because n_eff interfering
// neighbours are expected to cache them too.
type UDCS struct {
	// LongRun is the effective optimisation horizon in epochs: UDCS
	// minimises the long-run average cost, so its delay-saving estimate
	// extends beyond the current epoch (default 4).
	LongRun float64

	params  mec.Params
	work    []workSlice
	horizon float64
	k       int
}

type workSlice struct {
	requests float64
	overlap  float64
}

// NewUDCS returns the UDCS baseline.
func NewUDCS() *UDCS { return &UDCS{LongRun: 4} }

// Name implements Policy.
func (p *UDCS) Name() string { return "UDCS" }

// SharingEnabled implements Policy. UDCS ignores the sharing market.
func (p *UDCS) SharingEnabled() bool { return false }

// Prepare caches the per-content demand and overlap factors.
func (p *UDCS) Prepare(ctx *EpochContext) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	p.params = ctx.Params
	p.horizon = ctx.Params.Horizon
	p.k = ctx.Params.K
	p.work = make([]workSlice, p.k)
	for k := 0; k < p.k; k++ {
		p.work[k] = workSlice{
			requests: ctx.Workloads[k].Requests,
			overlap:  float64(ctx.Params.Interfer) * ctx.Workloads[k].Pop * float64(ctx.Params.K) / 2,
		}
	}
	return nil
}

// Rate implements Policy.
func (p *UDCS) Rate(_, k int, t, _, q float64) (float64, error) {
	if err := checkContent(k, p.k); err != nil {
		return 0, err
	}
	w := p.work[k]
	if w.requests <= 0 {
		return 0, nil
	}
	pp := p.params
	remaining := p.horizon - t
	if remaining < 0 {
		remaining = 0
	}
	// Long-run cost minimisation: the delay saving persists beyond the
	// current epoch.
	remaining += (p.LongRun - 1) * p.horizon
	p3 := mec.CaseProbabilities(pp, q, q).P3 // neighbours look like us: overlap assumption
	saving := pp.Qk * pp.W1 * pp.Eta2 * w.requests * p3 * remaining / (2 * pp.HubRate)
	cost := pp.W4 + pp.Eta2*pp.Qk/pp.HubRate
	return numerics.Clamp01((saving - cost) / (2 * pp.W5 * (1 + w.overlap))), nil
}

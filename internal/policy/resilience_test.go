package policy

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/resilience"
)

// TestNonConvergedNeverCached pins the cache hygiene contract: when
// TolerateNonConvergence accepts a partial equilibrium for the epoch, that
// partial must NOT be published to the equilibrium cache — a cached partial
// would otherwise silently answer every later epoch with the same key, turning
// a one-epoch tolerance into a permanent wrong fixed point.
func TestNonConvergedNeverCached(t *testing.T) {
	ctx := testContext(t, 8)
	ctx.Solver.MaxIters = 1 // every solve stops non-converged
	ctx.Solver.Tol = 1e-12

	cache, err := core.NewEquilibriumCache(64)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewMFGCP()
	pol.SetEquilibriumCache(cache)
	if err := pol.Prepare(ctx); err != nil {
		t.Fatalf("tolerant Prepare failed: %v", err)
	}
	nonConverged := 0
	for _, eq := range pol.equilibria {
		if eq != nil && !eq.Converged {
			nonConverged++
		}
	}
	if nonConverged == 0 {
		t.Fatal("no solve ended non-converged: the scenario does not exercise the guard")
	}
	for _, e := range cache.Export() {
		if !e.Eq.Converged {
			t.Fatalf("non-converged equilibrium cached under %q", e.Key)
		}
	}

	// Control: the same setup with a workable iteration budget does cache.
	ctx2 := testContext(t, 8)
	pol2 := NewMFGCP()
	pol2.SetEquilibriumCache(cache)
	if err := pol2.Prepare(ctx2); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if cache.Len() == 0 {
		t.Fatal("converged equilibria were not cached: the control is broken")
	}
}

// TestPrepareHonoursCancellation checks Prepare aborts with the context error
// when the epoch context is already cancelled.
func TestPrepareHonoursCancellation(t *testing.T) {
	ctx := testContext(t, 8)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx.Ctx = cctx
	err := NewMFGCP().Prepare(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Prepare under cancelled context: got %v, want context.Canceled", err)
	}
}

// TestPrepareWithRecoveryLadder checks an installed escalation ladder rescues
// an iteration-starved epoch that would otherwise fail outright.
func TestPrepareWithRecoveryLadder(t *testing.T) {
	ctx := testContext(t, 8)
	ctx.Solver.MaxIters = 6 // the solves need ~8–15 iterations

	strict := NewMFGCP()
	strict.TolerateNonConvergence = false
	if err := strict.Prepare(ctx); !errors.Is(err, core.ErrNotConverged) {
		t.Fatalf("iteration-starved Prepare: got %v, want ErrNotConverged", err)
	}

	recovered := NewMFGCP()
	recovered.TolerateNonConvergence = false
	e := resilience.Escalation{
		MaxAttempts:    4,
		DampingFactor:  0.99,
		MinDamping:     0.05,
		GrowIterBudget: true,
		AcceptPartial:  false,
	}
	recovered.SetRecovery(&e)
	if err := recovered.Prepare(ctx); err != nil {
		t.Fatalf("Prepare with recovery ladder failed: %v", err)
	}
}

// TestMFGCPCheckpointRoundTrip round-trips the prepared strategy through
// CheckpointState/RestoreState and checks the restored policy serves identical
// caching rates — the property the simulator's bit-for-bit resume rests on.
func TestMFGCPCheckpointRoundTrip(t *testing.T) {
	ctx := testContext(t, 8)
	pol := NewMFGCP()
	if err := pol.Prepare(ctx); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	state, err := pol.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}

	restored := NewMFGCP()
	if err := restored.RestoreState(state); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	for k := 0; k < ctx.Params.K; k += 3 {
		for _, q := range []float64{0, 40, 90} {
			want, err := pol.Rate(0, k, 0.4, 5, q)
			if err != nil {
				t.Fatalf("Rate: %v", err)
			}
			got, err := restored.Rate(0, k, 0.4, 5, q)
			if err != nil {
				t.Fatalf("restored Rate: %v", err)
			}
			if got != want {
				t.Fatalf("Rate(k=%d,q=%g): restored %g != original %g", k, q, got, want)
			}
		}
	}

	// Corrupt state must error, not panic.
	if err := NewMFGCP().RestoreState([]byte("garbage")); err == nil {
		t.Fatal("garbage state accepted")
	}
	if len(state) > 10 {
		if err := NewMFGCP().RestoreState(state[:len(state)/2]); err == nil {
			t.Fatal("truncated state accepted")
		}
	}
}

package policy

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/resilience"
)

// MFGCP is the proposed framework: one mean-field equilibrium per requested
// content per epoch (Algorithm 1 line 9 calling Algorithm 2), after which
// every EDP reads its caching rate from the shared feedback strategy
// x*(t, h, q). Because the equilibrium is computed once for the generic
// player, the strategy-determination cost is independent of M — the property
// Table II demonstrates.
type MFGCP struct {
	// Share toggles paid peer sharing. MFG-CP uses true; the paper's MFG
	// baseline is the same framework with sharing removed.
	Share bool
	// TolerateNonConvergence accepts the partial equilibrium when the
	// best-response iteration hits ψ_th, instead of failing the epoch.
	TolerateNonConvergence bool
	// Workers bounds the number of per-content equilibria solved
	// concurrently during Prepare; 0 means one worker per CPU. The contents
	// of one epoch are independent, so the result is identical to the
	// sequential solve.
	Workers int
	// DisableWarmStart turns off seeding each epoch's solves with the
	// previous epoch's equilibria. Warm starting exploits the slow drift of
	// demand across epochs (Algorithm 1's assumption) and typically halves
	// the best-response iterations after the first epoch.
	DisableWarmStart bool
	// Capacity, when positive, caps the total caching space an EDP may
	// spend per epoch across all contents. The per-content equilibrium
	// strategies are then post-processed by the fractional knapsack of the
	// paper's Section IV-C Remark: contents are admitted by utility density
	// and the marginal one fractionally, and each admitted fraction scales
	// the content's caching rate.
	Capacity float64
	// CapacityPaths is the ensemble size used to estimate each content's
	// utility value for the knapsack (default 16).
	CapacityPaths int
	// Cache, when set, stores solved equilibria keyed by the canonical
	// (params, workload, grid) hash. Contents whose key hits skip the solve
	// entirely; the equilibrium is unique (Theorem 2), so a cached fixed
	// point answers regardless of how it was seeded. Install it with
	// SetEquilibriumCache so the epoch loop can share one cache across
	// policies and epochs.
	Cache *core.EquilibriumCache
	// Recovery, when set, retries diverged or non-converged solves under the
	// bounded escalation ladder (deeper damping → scheme switch → time-mesh
	// refinement) before giving up on the epoch. Install it with SetRecovery
	// so the epoch loop can configure resilience uniformly.
	Recovery *resilience.Escalation

	equilibria []*core.Equilibrium // per content; nil when not requested
	admit      []float64           // knapsack admission fraction per content (nil = all 1)
	k          int
}

// NewMFGCP returns the full MFG-CP policy.
func NewMFGCP() *MFGCP { return &MFGCP{Share: true, TolerateNonConvergence: true} }

// NewMFG returns the paper's MFG baseline: MFG-CP without content sharing.
func NewMFG() *MFGCP { return &MFGCP{Share: false, TolerateNonConvergence: true} }

// Name implements Policy.
func (p *MFGCP) Name() string {
	if p.Share {
		return "MFG-CP"
	}
	return "MFG"
}

// SharingEnabled implements Policy.
func (p *MFGCP) SharingEnabled() bool { return p.Share }

// SetEquilibriumCache installs (or removes, with nil) the shared equilibrium
// cache consulted by Prepare. The simulator plumbs its per-run cache through
// this method.
func (p *MFGCP) SetEquilibriumCache(c *core.EquilibriumCache) { p.Cache = c }

// SetRecovery installs (or removes, with nil) the divergence-recovery ladder
// applied to failing solves. The simulator plumbs its configured escalation
// through this method.
func (p *MFGCP) SetRecovery(e *resilience.Escalation) { p.Recovery = e }

// Prepare solves one equilibrium per content in the epoch's caching set
// K' = {k : |I_k| > 0} (Algorithm 1 line 5).
func (p *MFGCP) Prepare(ctx *EpochContext) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	cfg := ctx.Solver
	cfg.Params = ctx.Params
	cfg.ShareEnabled = p.Share
	p.k = ctx.Params.K
	previous := p.equilibria
	p.equilibria = make([]*core.Equilibrium, p.k)

	warmFor := func(k int) *core.Equilibrium {
		if p.DisableWarmStart || k >= len(previous) {
			return nil
		}
		ws := previous[k]
		if ws == nil || ws.HJB == nil || ws.FPK == nil {
			return nil
		}
		// The grid is determined by (NH, NQ, Steps, Qk, fading range); a
		// mismatch (e.g. a Qk sweep between epochs) falls back to cold.
		if ws.Grid.H.N != cfg.NH || ws.Grid.Q.N != cfg.NQ || ws.Time.Steps != cfg.Steps ||
			ws.Config.Params.Qk != cfg.Params.Qk ||
			ws.Config.Params.HMin != cfg.Params.HMin || ws.Config.Params.HMax != cfg.Params.HMax {
			return nil
		}
		// Warm starting only pays when the demand drifted mildly: unwinding
		// a far-away fixed point (e.g. a content whose popularity collapsed)
		// costs more iterations than a cold start, which converges almost
		// immediately for weak demand.
		next := ctx.Workloads[k]
		if relDiff(ws.Workload.Requests, next.Requests) > 0.25 ||
			relDiff(ws.Workload.Pop, next.Pop) > 0.25 ||
			relDiff(ws.Workload.Timeliness, next.Timeliness) > 0.25 {
			return nil
		}
		return ws
	}

	// Sequential pre-pass in content order: resolve cache hits and coalesce
	// contents whose canonical key coincides (identical workload this epoch),
	// so the parallel stage solves each distinct equilibrium exactly once and
	// the cache is consulted in the same order on every run.
	type solveJob struct {
		content int // lowest content index needing this solve
		key     string
		warm    *core.Equilibrium
	}
	var jobs []solveJob
	pending := make(map[string]int) // key → index into jobs
	alias := make(map[int]int)      // content → job index it shares
	for k := 0; k < p.k; k++ {
		if ctx.Workloads[k].Requests <= 0 {
			continue // not in K': no demand this epoch
		}
		key := core.CacheKey(cfg, ctx.Workloads[k])
		if p.Cache != nil {
			if eq, ok := p.Cache.Get(cfg.Obs, key); ok {
				p.equilibria[k] = eq
				continue
			}
		}
		if j, dup := pending[key]; dup {
			alias[k] = j
			continue
		}
		pending[key] = len(jobs)
		jobs = append(jobs, solveJob{content: k, key: key, warm: warmFor(k)})
	}

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*core.Equilibrium, len(jobs))
	errs := make([]error, len(jobs))
	next := make(chan int)
	cctx := ctx.Context()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pre-allocated engine session per worker: the grid,
			// tridiagonal sweepers and value/density holders are reused
			// across every solve the worker picks up.
			s, err := core.NewSession(cfg)
			if err != nil {
				for j := range next {
					errs[j] = fmt.Errorf("policy: %s: content %d: %w", p.Name(), jobs[j].content, err)
				}
				return
			}
			for j := range next {
				job := jobs[j]
				var eq *core.Equilibrium
				var err error
				if p.Recovery != nil {
					// The recovery ladder reuses the worker's session for the
					// first attempt and escalates on throwaway sessions.
					eq, err = p.Recovery.Solve(cctx, s, cfg, ctx.Workloads[job.content], job.warm)
				} else {
					eq, err = s.SolveContext(cctx, ctx.Workloads[job.content], job.warm)
				}
				if err != nil && !(errors.Is(err, core.ErrNotConverged) && p.TolerateNonConvergence && eq != nil) {
					errs[j] = fmt.Errorf("policy: %s: content %d: %w", p.Name(), job.content, err)
					continue
				}
				results[j] = eq
			}
		}()
	}
	for j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()

	// Sequential post-pass in content order: results land in slots indexed
	// by content, and fresh equilibria publish to the cache in job order, so
	// the outcome is independent of goroutine completion order. Partial
	// (non-converged but tolerated) equilibria are used for the epoch but not
	// cached, so later epochs retry them from scratch.
	for j, job := range jobs {
		if errs[j] != nil {
			return errs[j]
		}
		p.equilibria[job.content] = results[j]
		if p.Cache != nil && results[j] != nil && results[j].Converged {
			p.Cache.Put(cfg.Obs, job.key, results[j])
		}
	}
	for k, j := range alias {
		p.equilibria[k] = results[j]
	}
	return p.applyCapacity(ctx)
}

// applyCapacity derives the knapsack admission fractions when a capacity
// budget is configured (Section IV-C Remark).
func (p *MFGCP) applyCapacity(ctx *EpochContext) error {
	p.admit = nil
	if p.Capacity <= 0 {
		return nil
	}
	paths := p.CapacityPaths
	if paths <= 0 {
		paths = 16
	}
	items, err := core.CapacityItems(p.equilibria, ctx.Seed, paths)
	if err != nil {
		return fmt.Errorf("policy: %s: capacity items: %w", p.Name(), err)
	}
	frac, err := core.AllocateFractional(items, p.Capacity)
	if err != nil {
		return fmt.Errorf("policy: %s: capacity allocation: %w", p.Name(), err)
	}
	p.admit = make([]float64, p.k)
	for i, it := range items {
		p.admit[it.Content] = frac[i]
	}
	return nil
}

// Rate implements Policy by evaluating the equilibrium feedback strategy,
// scaled by the knapsack admission fraction when a capacity budget is set.
// Contents outside K' are not cached.
func (p *MFGCP) Rate(_, k int, t, h, q float64) (float64, error) {
	if err := checkContent(k, p.k); err != nil {
		return 0, err
	}
	eq := p.equilibria[k]
	if eq == nil {
		return 0, nil
	}
	x, err := eq.HJB.ControlAt(t, h, q)
	if err != nil {
		return 0, err
	}
	if p.admit != nil {
		x *= p.admit[k]
	}
	return x, nil
}

// Admission returns the knapsack admission fraction of content k (1 when no
// capacity budget is configured).
func (p *MFGCP) Admission(k int) (float64, error) {
	if err := checkContent(k, p.k); err != nil {
		return 0, err
	}
	if p.admit == nil {
		return 1, nil
	}
	return p.admit[k], nil
}

// Equilibrium exposes the solved equilibrium of content k (nil if the content
// was not requested this epoch). The market simulator uses it for the
// mean-field price and sharing-benefit bookkeeping; the experiments use it
// for the density and strategy figures.
func (p *MFGCP) Equilibrium(k int) (*core.Equilibrium, error) {
	if err := checkContent(k, p.k); err != nil {
		return nil, err
	}
	return p.equilibria[k], nil
}

// mfgcpState is the serialised Prepare outcome carried across process
// restarts: without it a resumed run would lose the previous epoch's
// equilibria and re-converge from cold, breaking bit-for-bit resume parity
// (warm starts change the iteration path, and iterates below Tol still differ
// in the last bits).
type mfgcpState struct {
	K        int
	Admit    []float64
	Contents []int    // content indices with a solved equilibrium
	Blobs    [][]byte // parallel to Contents, engine gob archives
}

// CheckpointState serialises the policy's prepared strategy (the per-content
// equilibria and knapsack admissions) for the simulator's epoch checkpoints.
func (p *MFGCP) CheckpointState() ([]byte, error) {
	st := mfgcpState{K: p.k, Admit: append([]float64(nil), p.admit...)}
	for k, eq := range p.equilibria {
		if eq == nil {
			continue
		}
		blob, err := core.MarshalEquilibrium(eq)
		if err != nil {
			return nil, fmt.Errorf("policy: %s: checkpoint content %d: %w", p.Name(), k, err)
		}
		st.Contents = append(st.Contents, k)
		st.Blobs = append(st.Blobs, blob)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("policy: %s: encode checkpoint state: %w", p.Name(), err)
	}
	return buf.Bytes(), nil
}

// RestoreState rebuilds the prepared strategy from a CheckpointState payload.
func (p *MFGCP) RestoreState(data []byte) error {
	var st mfgcpState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("policy: %s: decode checkpoint state: %w", p.Name(), err)
	}
	if st.K < 0 || len(st.Contents) != len(st.Blobs) {
		return fmt.Errorf("policy: %s: malformed checkpoint state (k=%d, %d contents, %d blobs)",
			p.Name(), st.K, len(st.Contents), len(st.Blobs))
	}
	equilibria := make([]*core.Equilibrium, st.K)
	for i, k := range st.Contents {
		if k < 0 || k >= st.K {
			return fmt.Errorf("policy: %s: checkpoint content %d out of range [0,%d)", p.Name(), k, st.K)
		}
		eq, err := core.UnmarshalEquilibrium(st.Blobs[i])
		if err != nil {
			return fmt.Errorf("policy: %s: restore content %d: %w", p.Name(), k, err)
		}
		equilibria[k] = eq
	}
	p.k = st.K
	p.equilibria = equilibria
	p.admit = nil
	if len(st.Admit) > 0 {
		p.admit = st.Admit
	}
	return nil
}

// relDiff is the relative difference |a−b| / max(|a|, |b|, ε).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1e-9 {
		return 0
	}
	return math.Abs(a-b) / den
}

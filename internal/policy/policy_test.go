package policy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mec"
)

func testContext(t *testing.T, m int) *EpochContext {
	t.Helper()
	p := mec.Default()
	p.M = m
	catalog, err := mec.NewCatalog(p)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]float64, p.K)
	for k := range reqs {
		reqs[k] = float64(20 - k) // decreasing demand, content K-1 gets 1
	}
	if err := catalog.UpdatePopularity(reqs); err != nil {
		t.Fatal(err)
	}
	workloads := make([]core.Workload, p.K)
	for k := range workloads {
		workloads[k] = core.Workload{Requests: reqs[k], Pop: catalog.Contents[k].Pop, Timeliness: 2}
	}
	solver := core.DefaultConfig(p)
	solver.NH, solver.NQ, solver.Steps, solver.MaxIters = 5, 21, 30, 20
	return &EpochContext{
		Params:    p,
		Catalog:   catalog,
		Workloads: workloads,
		Solver:    solver,
		Epoch:     0,
		Seed:      7,
		M:         m,
	}
}

func TestEpochContextValidation(t *testing.T) {
	ctx := testContext(t, 10)
	if err := ctx.Validate(); err != nil {
		t.Fatalf("valid context rejected: %v", err)
	}
	bad := *ctx
	bad.Catalog = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil catalog should be rejected")
	}
	bad = *ctx
	bad.Workloads = bad.Workloads[:3]
	if err := bad.Validate(); err == nil {
		t.Error("short workloads should be rejected")
	}
	bad = *ctx
	bad.M = 0
	if err := bad.Validate(); err == nil {
		t.Error("M=0 should be rejected")
	}
}

func ratesInRange(t *testing.T, p Policy, ctx *EpochContext) {
	t.Helper()
	for _, edp := range []int{0, ctx.M - 1} {
		for k := 0; k < ctx.Params.K; k += 5 {
			for _, q := range []float64{0, 30, 70, 100} {
				x, err := p.Rate(edp, k, 0.3, 5, q)
				if err != nil {
					t.Fatalf("%s.Rate(%d,%d,q=%g): %v", p.Name(), edp, k, q, err)
				}
				if x < 0 || x > 1 {
					t.Fatalf("%s rate %g outside [0,1]", p.Name(), x)
				}
			}
		}
	}
}

func TestAllPoliciesPrepareAndRate(t *testing.T) {
	ctx := testContext(t, 8)
	pols := []Policy{NewMFGCP(), NewMFG(), NewRR(), NewMPC(), NewUDCS()}
	for _, p := range pols {
		if err := p.Prepare(ctx); err != nil {
			t.Fatalf("%s.Prepare: %v", p.Name(), err)
		}
		ratesInRange(t, p, ctx)
		if _, err := p.Rate(0, -1, 0, 5, 50); err == nil {
			t.Errorf("%s: negative content index should error", p.Name())
		}
		if _, err := p.Rate(0, ctx.Params.K, 0, 5, 50); err == nil {
			t.Errorf("%s: out-of-range content index should error", p.Name())
		}
	}
}

func TestPolicyNamesAndSharing(t *testing.T) {
	cases := []struct {
		p     Policy
		name  string
		share bool
	}{
		{NewMFGCP(), "MFG-CP", true},
		{NewMFG(), "MFG", false},
		{NewRR(), "RR", true},
		{NewMPC(), "MPC", true},
		{NewUDCS(), "UDCS", false},
	}
	for _, c := range cases {
		if c.p.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.p.Name(), c.name)
		}
		if c.p.SharingEnabled() != c.share {
			t.Errorf("%s.SharingEnabled = %v, want %v", c.name, c.p.SharingEnabled(), c.share)
		}
	}
}

func TestMFGCPSkipsUnrequestedContents(t *testing.T) {
	ctx := testContext(t, 4)
	ctx.Workloads[3].Requests = 0
	p := NewMFGCP()
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	x, err := p.Rate(0, 3, 0.2, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 {
		t.Errorf("unrequested content should not be cached, got x=%g", x)
	}
	eq, err := p.Equilibrium(3)
	if err != nil {
		t.Fatal(err)
	}
	if eq != nil {
		t.Error("unrequested content should have no equilibrium")
	}
	eq, err = p.Equilibrium(0)
	if err != nil {
		t.Fatal(err)
	}
	if eq == nil {
		t.Error("requested content should have an equilibrium")
	}
	if _, err := p.Equilibrium(-1); err == nil {
		t.Error("bad index should error")
	}
}

func TestMFGCPDiffersFromMFG(t *testing.T) {
	ctx := testContext(t, 4)
	withShare := NewMFGCP()
	noShare := NewMFG()
	if err := withShare.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if err := noShare.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	var diff float64
	for _, q := range []float64{10, 30, 50, 70, 90} {
		a, err := withShare.Rate(0, 0, 0.2, 5, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := noShare.Rate(0, 0, 0.2, 5, q)
		if err != nil {
			t.Fatal(err)
		}
		diff = math.Max(diff, math.Abs(a-b))
	}
	if diff < 1e-9 {
		t.Error("sharing on/off produced identical strategies")
	}
}

func TestRRPerEDPVariation(t *testing.T) {
	ctx := testContext(t, 30)
	p := NewRR()
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	// Strategies must differ across EDPs (each draws independently).
	distinct := map[float64]bool{}
	for i := 0; i < 30; i++ {
		x, err := p.Rate(i, 0, 0, 5, 50)
		if err != nil {
			t.Fatal(err)
		}
		distinct[x] = true
	}
	if len(distinct) < 10 {
		t.Errorf("RR produced only %d distinct rates across 30 EDPs", len(distinct))
	}
	// Constant within an epoch.
	a, _ := p.Rate(3, 0, 0.1, 5, 50)
	b, _ := p.Rate(3, 0, 0.9, 2, 10)
	if a != b {
		t.Error("RR rate should be constant within the epoch")
	}
	// Unrequested contents are not cached.
	ctx.Workloads[5].Requests = 0
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if x, _ := p.Rate(0, 5, 0, 5, 50); x != 0 {
		t.Errorf("RR cached an unrequested content: %g", x)
	}
}

func TestMPCHotSetOnly(t *testing.T) {
	ctx := testContext(t, 5)
	p := NewMPC()
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	// Top 25% of 20 contents = 5 hot contents (ids 0..4 by construction).
	for k := 0; k < 5; k++ {
		x, err := p.Rate(0, k, 0, 5, 50)
		if err != nil {
			t.Fatal(err)
		}
		if x != 1 {
			t.Errorf("hot content %d should be cached at full rate, got %g", k, x)
		}
	}
	for k := 5; k < ctx.Params.K; k++ {
		x, err := p.Rate(0, k, 0, 5, 50)
		if err != nil {
			t.Fatal(err)
		}
		if x != 0 {
			t.Errorf("cold content %d should not be cached, got %g", k, x)
		}
	}
	// Fully cached (q within the 2% hysteresis of 0) stops caching.
	if x, _ := p.Rate(0, 0, 0, 5, 0.015*ctx.Params.Qk); x != 0 {
		t.Error("MPC should stop caching once the whole content is stored")
	}
	if x, _ := p.Rate(0, 0, 0, 5, 0); x != 0 {
		t.Error("MPC should stop caching when no space remains")
	}
}

func TestUDCSShape(t *testing.T) {
	ctx := testContext(t, 5)
	p := NewUDCS()
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	// More remaining space ⇒ more delay pressure ⇒ caches at least as much.
	lo, err := p.Rate(0, 0, 0, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := p.Rate(0, 0, 0, 5, 90)
	if err != nil {
		t.Fatal(err)
	}
	if hi < lo {
		t.Errorf("UDCS rate should not decrease with remaining space: %g vs %g", lo, hi)
	}
	// Rate decays toward the horizon (less future to save).
	early, _ := p.Rate(0, 0, 0, 5, 90)
	late, _ := p.Rate(0, 0, 0.95, 5, 90)
	if late > early {
		t.Errorf("UDCS rate should decay in time: %g vs %g", early, late)
	}
	// The long-run horizon keeps a baseline caching value even at the end
	// of the current epoch (UDCS minimises the long-run average cost).
	end, _ := p.Rate(0, 0, 1, 5, 90)
	if end <= 0 {
		t.Errorf("UDCS long-run saving should persist at the epoch end, got %g", end)
	}
	if end > early {
		t.Errorf("epoch-end rate %g should not exceed the initial rate %g", end, early)
	}
	// Unrequested content is not cached.
	ctx.Workloads[2].Requests = 0
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if x, _ := p.Rate(0, 2, 0, 5, 90); x != 0 {
		t.Error("UDCS cached an unrequested content")
	}
}

func TestPrepareRejectsInvalidContext(t *testing.T) {
	bad := testContext(t, 5)
	bad.M = 0
	for _, p := range []Policy{NewMFGCP(), NewRR(), NewMPC(), NewUDCS()} {
		if err := p.Prepare(bad); err == nil {
			t.Errorf("%s accepted an invalid context", p.Name())
		}
	}
}

func TestMFGCPWarmStartAcrossEpochs(t *testing.T) {
	ctx := testContext(t, 4)
	p := NewMFGCP()
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	eq0, err := p.Equilibrium(0)
	if err != nil || eq0 == nil {
		t.Fatalf("first epoch produced no equilibrium: %v", err)
	}
	coldIters := eq0.Iterations

	// Second epoch with slightly drifted demand warm-starts from the first.
	ctx.Epoch = 1
	ctx.Workloads[0].Requests *= 1.05
	if err := p.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	eq1, err := p.Equilibrium(0)
	if err != nil || eq1 == nil {
		t.Fatalf("second epoch produced no equilibrium: %v", err)
	}
	if eq1.Iterations >= coldIters {
		t.Errorf("warm-started epoch used %d iterations, cold used %d", eq1.Iterations, coldIters)
	}

	// Disabling the warm start restores the cold behaviour.
	pCold := NewMFGCP()
	pCold.DisableWarmStart = true
	if err := pCold.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	eqCold, err := pCold.Equilibrium(0)
	if err != nil || eqCold == nil {
		t.Fatal("cold policy produced no equilibrium")
	}
	if eqCold.Iterations <= eq1.Iterations {
		t.Errorf("cold solve should need more iterations: %d vs %d", eqCold.Iterations, eq1.Iterations)
	}
}

func TestMFGCPCapacityBudget(t *testing.T) {
	ctx := testContext(t, 4)

	unlimited := NewMFGCP()
	if err := unlimited.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	// Sum the expected space consumption to pick a tight budget.
	var totalWeight float64
	for k := 0; k < ctx.Params.K; k++ {
		eq, err := unlimited.Equilibrium(k)
		if err != nil {
			t.Fatal(err)
		}
		if eq == nil {
			continue
		}
		dt := eq.Time.Dt()
		for n := range eq.Snapshots {
			totalWeight += ctx.Params.Qk * ctx.Params.W1 * eq.Snapshots[n].MeanControl * dt
		}
	}
	if totalWeight <= 0 {
		t.Fatal("no space demand measured")
	}

	capped := NewMFGCP()
	capped.Capacity = totalWeight / 2
	capped.CapacityPaths = 4
	if err := capped.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	// Admission fractions in [0,1], some strictly below 1 under the tight
	// budget, and every rate scales accordingly.
	var below int
	for k := 0; k < ctx.Params.K; k++ {
		f, err := capped.Admission(k)
		if err != nil {
			t.Fatal(err)
		}
		if f < 0 || f > 1 {
			t.Fatalf("admission[%d] = %g outside [0,1]", k, f)
		}
		if f < 1-1e-9 {
			below++
		}
		full, err := unlimited.Rate(0, k, 0.2, 5, 60)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := capped.Rate(0, k, 0.2, 5, 60)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(scaled-f*full) > 1e-9 {
			t.Fatalf("content %d: rate %g, want %g·%g", k, scaled, f, full)
		}
	}
	if below == 0 {
		t.Error("a budget of half the demand should exclude some content mass")
	}
	// Unlimited policy reports full admission.
	if f, err := unlimited.Admission(0); err != nil || f != 1 {
		t.Errorf("unlimited admission = %g (%v), want 1", f, err)
	}
	if _, err := capped.Admission(-1); err == nil {
		t.Error("bad index should error")
	}
}

package policy

import (
	"runtime"
	"testing"

	"repro/internal/core"
)

// equilibriaEqual compares two per-content equilibrium sets field by field on
// the trajectories a market run consumes: the control surface, the density
// path and the snapshot price path. Exact float64 equality is intentional —
// the solves are deterministic, so any difference is an ordering bug.
func equilibriaEqual(t *testing.T, a, b []*core.Equilibrium) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("equilibrium counts differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		switch {
		case a[k] == nil && b[k] == nil:
			continue
		case (a[k] == nil) != (b[k] == nil):
			t.Fatalf("content %d: one run solved it, the other did not", k)
		}
		if a[k].Iterations != b[k].Iterations {
			t.Errorf("content %d: iterations %d vs %d", k, a[k].Iterations, b[k].Iterations)
		}
		for n := range a[k].HJB.X {
			for i := range a[k].HJB.X[n] {
				if a[k].HJB.X[n][i] != b[k].HJB.X[n][i] {
					t.Fatalf("content %d: X[%d][%d] differs: %g vs %g",
						k, n, i, a[k].HJB.X[n][i], b[k].HJB.X[n][i])
				}
			}
		}
		for n := range a[k].FPK.Lambda {
			for i := range a[k].FPK.Lambda[n] {
				if a[k].FPK.Lambda[n][i] != b[k].FPK.Lambda[n][i] {
					t.Fatalf("content %d: λ[%d][%d] differs: %g vs %g",
						k, n, i, a[k].FPK.Lambda[n][i], b[k].FPK.Lambda[n][i])
				}
			}
		}
		for n := range a[k].Snapshots {
			if a[k].Snapshots[n].Price != b[k].Snapshots[n].Price {
				t.Fatalf("content %d: price[%d] differs: %g vs %g",
					k, n, a[k].Snapshots[n].Price, b[k].Snapshots[n].Price)
			}
		}
	}
}

func prepared(t *testing.T, workers int, cache *core.EquilibriumCache) []*core.Equilibrium {
	t.Helper()
	ctx := testContext(t, 10)
	p := NewMFGCP()
	p.Workers = workers
	p.Cache = cache
	if err := p.Prepare(ctx); err != nil {
		t.Fatalf("Prepare (workers=%d): %v", workers, err)
	}
	out := make([]*core.Equilibrium, ctx.Params.K)
	for k := range out {
		eq, err := p.Equilibrium(k)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = eq
	}
	return out
}

// TestPrepareDeterministicAcrossRuns pins the satellite requirement: two runs
// with the same seed and context produce identical Equilibrium trajectories,
// regardless of goroutine scheduling.
func TestPrepareDeterministicAcrossRuns(t *testing.T) {
	a := prepared(t, 0, nil)
	b := prepared(t, 0, nil)
	equilibriaEqual(t, a, b)
}

// TestPrepareDeterministicAcrossWorkerCounts checks that the worker count is
// purely a throughput knob: sequential and fully parallel Prepare agree
// bit-for-bit.
func TestPrepareDeterministicAcrossWorkerCounts(t *testing.T) {
	seq := prepared(t, 1, nil)
	par := prepared(t, runtime.NumCPU(), nil)
	equilibriaEqual(t, seq, par)
}

// TestPrepareCacheReuse runs Prepare twice against one shared cache: the
// second epoch must answer every content from the cache (no new solves) and
// serve the identical equilibria.
func TestPrepareCacheReuse(t *testing.T) {
	cache, err := core.NewEquilibriumCache(64)
	if err != nil {
		t.Fatal(err)
	}
	first := prepared(t, 0, cache)
	_, missesAfterFirst, _ := cache.Stats()
	second := prepared(t, 0, cache)
	equilibriaEqual(t, first, second)
	_, misses, _ := cache.Stats()
	if misses != missesAfterFirst {
		t.Errorf("second identical epoch missed the cache %d times", misses-missesAfterFirst)
	}
	hits, _, _ := cache.Stats()
	if hits == 0 {
		t.Errorf("second identical epoch recorded no cache hits")
	}
	// The cached solve must be byte-identical to an uncached one.
	equilibriaEqual(t, prepared(t, 0, nil), second)
}

// Package surrogate is the tier-0 serving layer of the MFG-CP daemon: a
// precomputed interpolation table over the quantised workload space that
// answers in-region equilibrium queries in microseconds, with a measured
// per-cell error bound attached, instead of the ~tens-of-milliseconds PDE
// solve.
//
// The construction follows the mean-field caching literature (Kim/Park/
// Bennis; Hamidouche et al.): the equilibrium is a smooth function of the
// slowly-drifting workload descriptor (Requests, Pop, Timeliness), so a
// lattice of offline solves plus multilinear interpolation covers the bulk
// of serving traffic. Correctness is framed as a trust region, not a hope:
//
//   - the lattice axes reuse engine.CacheKey's 9-significant-digit float
//     quantisation, so a table node and a cache key never disagree about
//     which workload they describe;
//   - every cell carries an error bound measured against a held-out
//     off-lattice solve at its midpoint (scaled by a safety factor); a cell
//     whose corners did not converge, or whose bound exceeds the caller's
//     SurrogateConfig.MaxErrorBound, is outside the trust region and the
//     request falls through to the real solver ladder;
//   - the table file is CRC-framed like the store/checkpoint envelopes: no
//     byte is trusted before the frame around it checks out.
package surrogate

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strconv"

	"repro/internal/engine"
	"repro/internal/numerics"
)

// File envelope (little endian): the table is one framed gob blob.
//
//	magic   uint32  tableMagic ("MFGT")
//	version uint8   tableVersion
//	blobLen uint32  length of the gob payload
//	crc     uint32  CRC32 (IEEE) over the payload
//	blob    blobLen bytes
const (
	tableMagic   uint32 = 0x4d464754 // "MFGT"
	tableVersion byte   = 1
	tableHeader         = 4 + 1 + 4 + 4

	// maxTableBlob bounds the payload length a header may claim before the
	// loader declares the frame implausible (a million-node table of 64-sample
	// summaries is ~2 GB of solves upstream; 256 MiB of gob is far past any
	// sane sweep).
	maxTableBlob = 256 << 20

	// maxTableNodes bounds the lattice size accepted by Validate, protecting
	// the loader from allocation bombs in hostile headers.
	maxTableNodes = 1 << 20
)

// maxPathSamples is the per-node time-sample budget, matching the serving
// layer's response summaries so a surrogate answer and an engine answer carry
// the same sample grid.
const maxPathSamples = 64

// Axis is one lattice dimension over a workload coordinate: strictly
// increasing node positions, quantised at 9 significant digits (the
// engine.CacheKey quantum). A single-node axis freezes its coordinate —
// requests are in-region only when they match the node exactly (after
// quantisation).
type Axis struct {
	Name  string
	Nodes []float64
}

// Node is one solved lattice point: convergence diagnostics plus the
// downsampled equilibrium observables on the shared Time grid.
type Node struct {
	Converged  bool
	Iterations int
	Residual   float64

	Price         []float64
	MeanControl   []float64
	MeanRemaining []float64
	SharerFrac    []float64
}

// Table is a precomputed equilibrium surrogate: a lattice of solved nodes
// over (Requests, Pop, Timeliness) for one fixed solver configuration, plus
// one measured interpolation-error bound per lattice cell. Tables are
// immutable after Load/Build and safe for concurrent Lookup.
type Table struct {
	// BaseKey is engine.CacheKey(Config, Workload{}) — the canonical
	// configuration identity. A lookup whose config resolves to a different
	// base key is out of region regardless of its workload.
	BaseKey string
	// Config is the solver configuration every node was solved under
	// (runtime fields stripped).
	Config engine.Config
	// Axes are the lattice dimensions in workload order: Requests, Pop,
	// Timeliness.
	Axes [3]Axis
	// Time is the shared sample grid of every node's observable series.
	Time []float64
	// Nodes holds the solved lattice row-major (Timeliness fastest).
	Nodes []Node
	// Bounds holds one declared error bound per lattice cell, row-major over
	// cells (∏ max(len(Axes[k].Nodes)−1, 1) entries): SafetyFactor × the
	// observable error measured at the cell midpoint against a held-out
	// solve, in the verify-differential metric (sup over time of price/p̂,
	// mean control, q̄/Qk deviations). +Inf marks a cell outside the trust
	// region (a non-converged corner or midpoint).
	Bounds []float64
	// SafetyFactor is the multiplier Build applied to the measured midpoint
	// errors (recorded for provenance).
	SafetyFactor float64
}

// Summary is one interpolated surrogate answer, shaped like the serving
// layer's solve response plus the cell's declared error bound.
type Summary struct {
	Converged  bool
	Iterations int
	Residual   float64

	Time          []float64
	Price         []float64
	MeanControl   []float64
	MeanRemaining []float64
	SharerFrac    []float64

	ErrorBound float64
}

// Quantise rounds v to the engine.CacheKey quantum (9 significant digits),
// the resolution at which two workload coordinates are the same coordinate.
func Quantise(v float64) float64 {
	q, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 9, 64), 64)
	if err != nil {
		return v
	}
	return q
}

// nodeCount returns the lattice size ∏ len(Axes[k].Nodes).
func (t *Table) nodeCount() int {
	n := 1
	for _, ax := range t.Axes {
		n *= len(ax.Nodes)
	}
	return n
}

// cellCount returns the number of lattice cells ∏ max(len−1, 1).
func (t *Table) cellCount() int {
	n := 1
	for _, ax := range t.Axes {
		c := len(ax.Nodes) - 1
		if c < 1 {
			c = 1
		}
		n *= c
	}
	return n
}

// cellIndex flattens per-axis cell coordinates row-major.
func (t *Table) cellIndex(ci [3]int) int {
	idx := 0
	for k, ax := range t.Axes {
		c := len(ax.Nodes) - 1
		if c < 1 {
			c = 1
		}
		idx = idx*c + ci[k]
	}
	return idx
}

// Validate checks the table's structural integrity: sorted quantised axes,
// consistent lattice/series/bound shapes, finite-or-+Inf non-negative bounds.
// Load runs it on every decode, so a table that passes framing but carries an
// inconsistent shape is rejected before any lookup can index out of range.
func (t *Table) Validate() error {
	if t.BaseKey == "" {
		return fmt.Errorf("surrogate: table has no base key")
	}
	names := [3]string{"Requests", "Pop", "Timeliness"}
	nodes := 1
	for k, ax := range t.Axes {
		if ax.Name != names[k] {
			return fmt.Errorf("surrogate: axis %d named %q, want %q", k, ax.Name, names[k])
		}
		if len(ax.Nodes) == 0 {
			return fmt.Errorf("surrogate: axis %s has no nodes", ax.Name)
		}
		for i, v := range ax.Nodes {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("surrogate: axis %s node %d is not finite", ax.Name, i)
			}
			if v != Quantise(v) {
				return fmt.Errorf("surrogate: axis %s node %d (%g) is not quantised", ax.Name, i, v)
			}
			if i > 0 && v <= ax.Nodes[i-1] {
				return fmt.Errorf("surrogate: axis %s nodes not strictly increasing at %d", ax.Name, i)
			}
		}
		nodes *= len(ax.Nodes)
	}
	if nodes > maxTableNodes {
		return fmt.Errorf("surrogate: %d lattice nodes exceed the %d limit", nodes, maxTableNodes)
	}
	if len(t.Nodes) != nodes {
		return fmt.Errorf("surrogate: %d solved nodes for a %d-node lattice", len(t.Nodes), nodes)
	}
	if len(t.Time) == 0 {
		return fmt.Errorf("surrogate: table has no time samples")
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		for _, s := range [][]float64{n.Price, n.MeanControl, n.MeanRemaining, n.SharerFrac} {
			if len(s) != len(t.Time) {
				return fmt.Errorf("surrogate: node %d series length %d, want %d", i, len(s), len(t.Time))
			}
		}
	}
	if want := t.cellCount(); len(t.Bounds) != want {
		return fmt.Errorf("surrogate: %d cell bounds for %d cells", len(t.Bounds), want)
	}
	for i, b := range t.Bounds {
		if math.IsNaN(b) || b < 0 {
			return fmt.Errorf("surrogate: cell %d bound %g must be non-negative (or +Inf)", i, b)
		}
	}
	return nil
}

// Lookup answers one equilibrium query from the table when it lies inside
// the trust region: the config's base key matches, every workload coordinate
// is inside its axis range (exactly on it, for frozen axes), and the
// enclosing cell's declared error bound is finite and within
// cfg.Surrogate.MaxErrorBound (when set). The returned summary carries the
// cell's bound; ok=false means the caller must fall through to a real solve.
func (t *Table) Lookup(cfg engine.Config, w engine.Workload) (*Summary, bool) {
	if engine.CacheKey(cfg, engine.Workload{}) != t.BaseKey {
		return nil, false
	}
	coords := [3]float64{w.Requests, w.Pop, w.Timeliness}
	var cell [3]int
	axes := make([][]float64, 3)
	x := make([]float64, 3)
	for k, ax := range t.Axes {
		axes[k], x[k] = ax.Nodes, coords[k]
		if len(ax.Nodes) == 1 {
			// Frozen axis: in-region only at the node itself (quantised).
			if Quantise(coords[k]) != ax.Nodes[0] {
				return nil, false
			}
			cell[k] = 0
			continue
		}
		if coords[k] < ax.Nodes[0] || coords[k] > ax.Nodes[len(ax.Nodes)-1] {
			return nil, false
		}
		i, _, err := numerics.LocateNodes(ax.Nodes, coords[k])
		if err != nil {
			return nil, false
		}
		cell[k] = i
	}
	bound := t.Bounds[t.cellIndex(cell)]
	if math.IsInf(bound, 1) {
		return nil, false
	}
	if limit := cfg.Surrogate.MaxErrorBound; limit > 0 && bound > limit {
		return nil, false
	}

	sum := &Summary{
		Converged:  true,
		Time:       t.Time,
		ErrorBound: bound,
	}
	series := [4]struct {
		dst   *[]float64
		field func(*Node) []float64
	}{
		{&sum.Price, func(n *Node) []float64 { return n.Price }},
		{&sum.MeanControl, func(n *Node) []float64 { return n.MeanControl }},
		{&sum.MeanRemaining, func(n *Node) []float64 { return n.MeanRemaining }},
		{&sum.SharerFrac, func(n *Node) []float64 { return n.SharerFrac }},
	}
	// Interpolate sample by sample: the lattice is tiny (≤ 8 corners per
	// cell), so one InterpMultilinear per (series, time sample) keeps the
	// code on the shared numerics path at microsecond cost.
	vals := make([]float64, t.nodeCount())
	for _, s := range series {
		out := make([]float64, len(t.Time))
		for j := range t.Time {
			for i := range t.Nodes {
				vals[i] = s.field(&t.Nodes[i])[j]
			}
			v, err := numerics.InterpMultilinear(axes, vals, x)
			if err != nil {
				return nil, false
			}
			out[j] = v
		}
		*s.dst = out
	}
	// Diagnostics: the most pessimistic corner of the cell (the interpolated
	// answer is no better-converged than its worst ingredient).
	for _, i := range t.cellCorners(cell) {
		n := &t.Nodes[i]
		if n.Iterations > sum.Iterations {
			sum.Iterations = n.Iterations
		}
		if n.Residual > sum.Residual {
			sum.Residual = n.Residual
		}
	}
	return sum, true
}

// cellCorners returns the flat node indices of a cell's corners (1, 2, 4 or
// 8 of them, depending on how many axes are frozen).
func (t *Table) cellCorners(cell [3]int) []int {
	out := make([]int, 0, 8)
	for corner := 0; corner < 8; corner++ {
		flat, skip := 0, false
		for k, ax := range t.Axes {
			bit := (corner >> k) & 1
			if bit == 1 && len(ax.Nodes) == 1 {
				skip = true
				break
			}
			flat = flat*len(ax.Nodes) + cell[k] + bit
		}
		if !skip {
			out = append(out, flat)
		}
	}
	return out
}

// SampleEquilibrium downsamples a solved equilibrium onto the table's
// fixed-budget sample grid (the same stride rule as the serving layer's
// response summaries) and returns the node plus its time vector.
func SampleEquilibrium(eq *engine.Equilibrium) (Node, []float64) {
	n := Node{
		Converged:  eq.Converged,
		Iterations: eq.Iterations,
	}
	if r := len(eq.Residuals); r > 0 {
		n.Residual = eq.Residuals[r-1]
	}
	count := len(eq.Snapshots)
	if count == 0 {
		return n, nil
	}
	stride := 1
	if count > maxPathSamples {
		stride = (count + maxPathSamples - 1) / maxPathSamples
	}
	var times []float64
	push := func(i int) {
		snap := eq.Snapshots[i]
		times = append(times, snap.T)
		n.Price = append(n.Price, snap.Price)
		n.MeanControl = append(n.MeanControl, snap.MeanControl)
		n.MeanRemaining = append(n.MeanRemaining, snap.QBar)
		n.SharerFrac = append(n.SharerFrac, snap.SharerFrac)
	}
	for i := 0; i < count; i += stride {
		push(i)
	}
	if times[len(times)-1] != eq.Snapshots[count-1].T {
		push(count - 1)
	}
	return n, times
}

// tablePayload is the gob shape inside the CRC frame.
type tablePayload struct {
	Table *Table
}

// Encode renders the table into its framed file format.
func (t *Table) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	clean := *t
	cfg := clean.Config
	cfg.Obs = nil
	cfg.WarmStart = nil
	clean.Config = cfg
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(tablePayload{Table: &clean}); err != nil {
		return nil, fmt.Errorf("surrogate: encode table: %w", err)
	}
	out := make([]byte, tableHeader, tableHeader+blob.Len())
	binary.LittleEndian.PutUint32(out[0:4], tableMagic)
	out[4] = tableVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(blob.Len()))
	binary.LittleEndian.PutUint32(out[9:13], crc32.ChecksumIEEE(blob.Bytes()))
	return append(out, blob.Bytes()...), nil
}

// Save writes the framed table atomically (temp file + rename), so a crashed
// precompute never leaves a torn table where a daemon would look for one.
func (t *Table) Save(path string) error {
	data, err := t.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("surrogate: write table: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("surrogate: commit table: %w", err)
	}
	return nil
}

// Decode parses and validates one framed table. It never panics on hostile
// input: the frame is checked before the payload is touched, the payload is
// CRC-verified before gob sees it, and the decoded structure is re-validated
// before anything can index it (FuzzTableDecode pins this).
func Decode(data []byte) (*Table, error) {
	if len(data) < tableHeader {
		return nil, fmt.Errorf("surrogate: table file truncated at %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != tableMagic {
		return nil, fmt.Errorf("surrogate: bad table magic %#x", m)
	}
	if v := data[4]; v != tableVersion {
		return nil, fmt.Errorf("surrogate: table version %d, want %d", v, tableVersion)
	}
	blobLen := binary.LittleEndian.Uint32(data[5:9])
	if blobLen > maxTableBlob {
		return nil, fmt.Errorf("surrogate: implausible table payload length %d", blobLen)
	}
	if int64(len(data)) != int64(tableHeader)+int64(blobLen) {
		return nil, fmt.Errorf("surrogate: table payload length %d does not match file size %d", blobLen, len(data))
	}
	blob := data[tableHeader:]
	if crc := crc32.ChecksumIEEE(blob); crc != binary.LittleEndian.Uint32(data[9:13]) {
		return nil, fmt.Errorf("surrogate: table checksum mismatch (corrupt file)")
	}
	var payload tablePayload
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("surrogate: decode table: %w", err)
	}
	if payload.Table == nil {
		return nil, fmt.Errorf("surrogate: table payload is empty")
	}
	if err := payload.Table.Validate(); err != nil {
		return nil, err
	}
	return payload.Table, nil
}

// Load reads and decodes a table file.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("surrogate: read table: %w", err)
	}
	return Decode(data)
}

package surrogate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// AxisSpec describes one lattice dimension of a sweep: N nodes spread
// uniformly over [Min, Max] (then quantised to the cache-key quantum). N = 1
// freezes the dimension at Min.
type AxisSpec struct {
	Min, Max float64
	N        int
}

// validate checks one axis specification.
func (a AxisSpec) validate(name string) error {
	if a.N < 1 {
		return fmt.Errorf("surrogate: axis %s needs at least 1 node, got %d", name, a.N)
	}
	if math.IsNaN(a.Min) || math.IsInf(a.Min, 0) || math.IsNaN(a.Max) || math.IsInf(a.Max, 0) {
		return fmt.Errorf("surrogate: axis %s bounds must be finite", name)
	}
	if a.N == 1 {
		if a.Max != a.Min && a.Max != 0 {
			return fmt.Errorf("surrogate: axis %s has 1 node but a range [%g, %g]", name, a.Min, a.Max)
		}
		return nil
	}
	if !(a.Max > a.Min) {
		return fmt.Errorf("surrogate: axis %s needs Max > Min, got [%g, %g]", name, a.Min, a.Max)
	}
	return nil
}

// nodes materialises the quantised lattice positions.
func (a AxisSpec) nodes() []float64 {
	out := make([]float64, a.N)
	if a.N == 1 {
		out[0] = Quantise(a.Min)
		return out
	}
	step := (a.Max - a.Min) / float64(a.N-1)
	for i := range out {
		out[i] = Quantise(a.Min + float64(i)*step)
	}
	return out
}

// BuildConfig parametrises one offline sweep.
type BuildConfig struct {
	// Config is the solver configuration every lattice node is solved under.
	Config engine.Config
	// Requests, Pop, Timeliness are the lattice axes over the workload space.
	Requests   AxisSpec
	Pop        AxisSpec
	Timeliness AxisSpec
	// Workers bounds the parallel solve pool (default GOMAXPROCS). Each
	// worker owns one warm engine.Session reused across its nodes.
	Workers int
	// SafetyFactor scales the measured midpoint error into the declared
	// per-cell bound (default 2): the midpoint of a cell is where multilinear
	// interpolation of a smooth field errs most, and the factor buys margin
	// against off-midpoint excursions.
	SafetyFactor float64
	// Obs receives surrogate.build.* telemetry. Nil means no-op.
	Obs obs.Recorder
}

// Build runs the offline sweep: it solves every lattice node with a parallel
// warm-session pool, then solves every cell's held-out midpoint and measures
// the interpolation error there to declare the cell's error bound. A node
// that fails to converge poisons its adjoining cells (+Inf bound — outside
// the trust region) rather than the build; a diverged or errored solve aborts
// the build, because it means the configuration cannot cover the requested
// region at all.
func Build(ctx context.Context, bc BuildConfig) (*Table, error) {
	if err := bc.Config.Validate(); err != nil {
		return nil, fmt.Errorf("surrogate: build config: %w", err)
	}
	for _, a := range []struct {
		name string
		spec AxisSpec
	}{{"Requests", bc.Requests}, {"Pop", bc.Pop}, {"Timeliness", bc.Timeliness}} {
		if err := a.spec.validate(a.name); err != nil {
			return nil, err
		}
	}
	if bc.SafetyFactor == 0 {
		bc.SafetyFactor = 2
	}
	if math.IsNaN(bc.SafetyFactor) || math.IsInf(bc.SafetyFactor, 0) || bc.SafetyFactor < 1 {
		return nil, fmt.Errorf("surrogate: SafetyFactor must be ≥ 1, got %g", bc.SafetyFactor)
	}
	workers := bc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := obs.OrNop(bc.Obs)

	cfg := bc.Config
	cfg.WarmStart = nil
	t := &Table{
		BaseKey:      engine.CacheKey(cfg, engine.Workload{}),
		Config:       cfg,
		SafetyFactor: bc.SafetyFactor,
		Axes: [3]Axis{
			{Name: "Requests", Nodes: bc.Requests.nodes()},
			{Name: "Pop", Nodes: bc.Pop.nodes()},
			{Name: "Timeliness", Nodes: bc.Timeliness.nodes()},
		},
	}
	total := t.nodeCount()
	if total > maxTableNodes {
		return nil, fmt.Errorf("surrogate: %d lattice nodes exceed the %d limit", total, maxTableNodes)
	}
	for k, ax := range t.Axes {
		for _, v := range ax.Nodes {
			w := engine.Workload{Requests: 1, Pop: 0.5, Timeliness: 1}
			switch k {
			case 0:
				w.Requests = v
			case 1:
				w.Pop = v
			case 2:
				w.Timeliness = v
			}
			if err := w.Validate(); err != nil {
				return nil, fmt.Errorf("surrogate: axis %s node %g: %w", ax.Name, v, err)
			}
		}
	}

	// Phase 1: the lattice nodes.
	t.Nodes = make([]Node, total)
	workloads := make([]engine.Workload, total)
	for i := range workloads {
		workloads[i] = t.workloadAt(i)
	}
	times := make([][]float64, total)
	start := time.Now()
	if err := solveAll(ctx, cfg, workers, workloads, func(i int, eq *engine.Equilibrium) {
		t.Nodes[i], times[i] = SampleEquilibrium(eq)
	}); err != nil {
		return nil, err
	}
	rec.Add("surrogate.build.nodes", float64(total))
	for i, tm := range times {
		if i == 0 {
			t.Time = tm
			continue
		}
		if len(tm) != len(t.Time) {
			return nil, fmt.Errorf("surrogate: node %d sampled %d times, node 0 sampled %d (mesh drift)", i, len(tm), len(t.Time))
		}
	}

	// Phase 2: held-out midpoints → per-cell error bounds.
	cells := t.cellCount()
	t.Bounds = make([]float64, cells)
	mids := make([]engine.Workload, cells)
	skip := make([]bool, cells)
	for c := 0; c < cells; c++ {
		ci := t.cellAt(c)
		for _, corner := range t.cellCorners(ci) {
			if !t.Nodes[corner].Converged {
				skip[c] = true
				t.Bounds[c] = math.Inf(1)
				break
			}
		}
		mids[c] = t.cellMidpoint(ci)
	}
	midErr := make([]float64, cells)
	if err := solveEach(ctx, cfg, workers, mids, skip, func(c int, eq *engine.Equilibrium) error {
		if !eq.Converged {
			midErr[c] = math.Inf(1)
			return nil
		}
		d, err := t.summaryError(mids[c], eq)
		if err != nil {
			return err
		}
		midErr[c] = d
		return nil
	}); err != nil {
		return nil, err
	}
	for c := 0; c < cells; c++ {
		if skip[c] {
			continue
		}
		if math.IsInf(midErr[c], 1) {
			t.Bounds[c] = math.Inf(1)
			continue
		}
		t.Bounds[c] = bc.SafetyFactor * midErr[c]
	}
	rec.Add("surrogate.build.cells", float64(cells))
	rec.Observe("surrogate.build.seconds", time.Since(start).Seconds())

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("surrogate: built table failed validation: %w", err)
	}
	return t, nil
}

// workloadAt maps a flat lattice index onto its workload.
func (t *Table) workloadAt(flat int) engine.Workload {
	np, nt := len(t.Axes[1].Nodes), len(t.Axes[2].Nodes)
	it := flat % nt
	ip := (flat / nt) % np
	ir := flat / (nt * np)
	return engine.Workload{
		Requests:   t.Axes[0].Nodes[ir],
		Pop:        t.Axes[1].Nodes[ip],
		Timeliness: t.Axes[2].Nodes[it],
	}
}

// cellAt maps a flat cell index onto per-axis cell coordinates.
func (t *Table) cellAt(flat int) [3]int {
	var dims [3]int
	for k, ax := range t.Axes {
		dims[k] = len(ax.Nodes) - 1
		if dims[k] < 1 {
			dims[k] = 1
		}
	}
	var ci [3]int
	ci[2] = flat % dims[2]
	ci[1] = (flat / dims[2]) % dims[1]
	ci[0] = flat / (dims[2] * dims[1])
	return ci
}

// cellMidpoint is the held-out probe workload of one cell: the midpoint on
// every free axis, the frozen node on degenerate ones.
func (t *Table) cellMidpoint(ci [3]int) engine.Workload {
	var coord [3]float64
	for k, ax := range t.Axes {
		if len(ax.Nodes) == 1 {
			coord[k] = ax.Nodes[0]
			continue
		}
		coord[k] = (ax.Nodes[ci[k]] + ax.Nodes[ci[k]+1]) / 2
	}
	return engine.Workload{Requests: coord[0], Pop: coord[1], Timeliness: coord[2]}
}

// SummaryError measures how far an interpolated surrogate answer lies from a
// reference solve of the same workload, in the verify-differential metric:
// the sup over time of the price deviation (relative to p̂), the mean-control
// deviation and the mean-remaining deviation (relative to Qk). It is the
// metric the declared cell bounds promise to dominate.
func (t *Table) SummaryError(w engine.Workload, eq *engine.Equilibrium) (float64, error) {
	return t.summaryError(w, eq)
}

func (t *Table) summaryError(w engine.Workload, eq *engine.Equilibrium) (float64, error) {
	// Bypass the bound gate: the bound is what this measurement defines.
	probe := *t
	probe.Bounds = make([]float64, len(t.Bounds))
	cfg := t.Config
	cfg.Surrogate = engine.SurrogateConfig{}
	got, ok := probe.Lookup(cfg, w)
	if !ok {
		return 0, fmt.Errorf("surrogate: probe workload %+v is outside the lattice", w)
	}
	ref, refTimes := SampleEquilibrium(eq)
	if len(refTimes) != len(t.Time) {
		return 0, fmt.Errorf("surrogate: probe sampled %d times, table has %d", len(refTimes), len(t.Time))
	}
	p := t.Config.Params
	var worst float64
	for j := range t.Time {
		for _, d := range []float64{
			math.Abs(got.Price[j]-ref.Price[j]) / p.PHat,
			math.Abs(got.MeanControl[j] - ref.MeanControl[j]),
			math.Abs(got.MeanRemaining[j]-ref.MeanRemaining[j]) / p.Qk,
		} {
			if math.IsNaN(d) {
				return 0, fmt.Errorf("surrogate: non-finite probe deviation at sample %d", j)
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// solveAll solves every workload with a warm-session worker pool, requiring
// each solve to produce an equilibrium (converged or not). ErrNotConverged
// keeps the partial result (the node is later excluded from the trust region
// through its cells); any other failure aborts.
func solveAll(ctx context.Context, cfg engine.Config, workers int, ws []engine.Workload, sink func(int, *engine.Equilibrium)) error {
	return solveEach(ctx, cfg, workers, ws, nil, func(i int, eq *engine.Equilibrium) error {
		sink(i, eq)
		return nil
	})
}

// solveEach is the shared pool: one warm engine.Session per worker, indices
// with skip[i] omitted. sink runs on the worker goroutine; it must only
// touch index-i state.
func solveEach(ctx context.Context, cfg engine.Config, workers int, ws []engine.Workload, skip []bool, sink func(int, *engine.Equilibrium) error) error {
	if workers > len(ws) {
		workers = len(ws)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := engine.NewSession(cfg)
			if err != nil {
				errCh <- err
				return
			}
			for i := range jobs {
				eq, err := sess.SolveContext(ctx, ws[i], nil)
				if err != nil && !errors.Is(err, engine.ErrNotConverged) {
					errCh <- fmt.Errorf("surrogate: solve %+v: %w", ws[i], err)
					return
				}
				if eq == nil {
					errCh <- fmt.Errorf("surrogate: solve %+v returned no equilibrium", ws[i])
					return
				}
				if err := sink(i, eq); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
feed:
	for i := range ws {
		if skip != nil && skip[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		case err := <-errCh:
			close(jobs)
			wg.Wait()
			return err
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return ctx.Err()
}

package surrogate

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/mec"
)

// buildConfig is a cheap but real sweep configuration: a coarse grid that
// converges in a few iterations, a 2×2 lattice over (Requests, Pop) with
// Timeliness frozen — 4 node solves plus 1 midpoint solve.
func buildConfig() BuildConfig {
	cfg := engine.DefaultConfig(mec.Default())
	cfg.NH, cfg.NQ, cfg.Steps = 5, 15, 16
	return BuildConfig{
		Config:     cfg,
		Requests:   AxisSpec{Min: 8, Max: 12, N: 2},
		Pop:        AxisSpec{Min: 0.2, Max: 0.4, N: 2},
		Timeliness: AxisSpec{Min: 2, N: 1},
		Workers:    2,
	}
}

// builtTable memoises one real Build across the tests in this package.
var builtTable *Table

func testTable(t *testing.T) *Table {
	t.Helper()
	if builtTable != nil {
		return builtTable
	}
	tab, err := Build(context.Background(), buildConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	builtTable = tab
	return tab
}

func TestBuildProducesConsistentTable(t *testing.T) {
	tab := testTable(t)
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(tab.Nodes); got != 4 {
		t.Fatalf("node count = %d, want 4", got)
	}
	if got := len(tab.Bounds); got != 1 {
		t.Fatalf("cell count = %d, want 1", got)
	}
	for i, n := range tab.Nodes {
		if !n.Converged {
			t.Fatalf("node %d did not converge", i)
		}
	}
	if b := tab.Bounds[0]; math.IsInf(b, 1) || b <= 0 {
		t.Fatalf("cell bound = %g, want finite positive", b)
	}
	if tab.SafetyFactor != 2 {
		t.Fatalf("SafetyFactor defaulted to %g, want 2", tab.SafetyFactor)
	}
	if tab.BaseKey != engine.CacheKey(tab.Config, engine.Workload{}) {
		t.Fatal("BaseKey does not match the config-only cache key")
	}
}

func TestLookupInteriorAndTrustRegion(t *testing.T) {
	tab := testTable(t)
	cfg := tab.Config
	in := engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

	sum, ok := tab.Lookup(cfg, in)
	if !ok {
		t.Fatal("interior workload rejected")
	}
	if sum.ErrorBound != tab.Bounds[0] {
		t.Fatalf("ErrorBound = %g, want the cell bound %g", sum.ErrorBound, tab.Bounds[0])
	}
	if len(sum.Price) != len(tab.Time) || len(sum.MeanControl) != len(tab.Time) {
		t.Fatal("summary series do not match the table's time grid")
	}
	// Interpolation at a lattice corner must reproduce the corner node.
	corner := engine.Workload{Requests: tab.Axes[0].Nodes[0], Pop: tab.Axes[1].Nodes[0], Timeliness: 2}
	cs, ok := tab.Lookup(cfg, corner)
	if !ok {
		t.Fatal("lattice corner rejected")
	}
	for j := range tab.Time {
		if math.Abs(cs.Price[j]-tab.Nodes[0].Price[j]) > 1e-12 {
			t.Fatalf("corner price[%d] = %g, node has %g", j, cs.Price[j], tab.Nodes[0].Price[j])
		}
	}

	cases := []struct {
		name string
		cfg  engine.Config
		w    engine.Workload
	}{
		{"requests out of range", cfg, engine.Workload{Requests: 20, Pop: 0.3, Timeliness: 2}},
		{"pop out of range", cfg, engine.Workload{Requests: 10, Pop: 0.9, Timeliness: 2}},
		{"frozen axis mismatch", cfg, engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 3}},
		{"different config", func() engine.Config {
			c := cfg
			c.Tol = cfg.Tol / 2
			return c
		}(), in},
		{"bound over request limit", func() engine.Config {
			c := cfg
			c.Surrogate.MaxErrorBound = tab.Bounds[0] / 2
			return c
		}(), in},
	}
	for _, tc := range cases {
		if _, ok := tab.Lookup(tc.cfg, tc.w); ok {
			t.Errorf("%s: lookup accepted, want fall-through", tc.name)
		}
	}

	// A request-level limit above the declared bound still accepts, and a
	// Surrogate config difference alone must not change the base key.
	loose := cfg
	loose.Surrogate = engine.SurrogateConfig{Path: "/elsewhere", MaxErrorBound: tab.Bounds[0] * 10}
	if _, ok := tab.Lookup(loose, in); !ok {
		t.Fatal("loose MaxErrorBound rejected an in-bound cell")
	}
}

func TestFrozenAxisMismatchVsQuantisedMatch(t *testing.T) {
	tab := testTable(t)
	w := engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2 + 1e-13}
	// Sub-quantum jitter on the frozen axis still matches the node.
	if _, ok := tab.Lookup(tab.Config, w); !ok {
		t.Fatal("sub-quantum jitter on frozen axis rejected")
	}
	w.Timeliness = 2.001
	if _, ok := tab.Lookup(tab.Config, w); ok {
		t.Fatal("real perturbation on frozen axis accepted")
	}
}

func TestMidpointErrorWithinDeclaredBound(t *testing.T) {
	if testing.Short() {
		t.Skip("midpoint solve in -short mode")
	}
	tab := testTable(t)
	mid := tab.cellMidpoint([3]int{0, 0, 0})
	sess, err := engine.NewSession(tab.Config)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	eq, err := sess.Solve(mid, nil)
	if err != nil {
		t.Fatalf("midpoint solve: %v", err)
	}
	got, err := tab.SummaryError(mid, eq)
	if err != nil {
		t.Fatalf("SummaryError: %v", err)
	}
	// Build declared SafetyFactor × this exact measurement.
	if got > tab.Bounds[0] {
		t.Fatalf("midpoint error %g exceeds declared bound %g", got, tab.Bounds[0])
	}
	if got < tab.Bounds[0]/tab.SafetyFactor*0.99 {
		t.Fatalf("midpoint error %g is not ~bound/safety (%g): measurement drifted", got, tab.Bounds[0]/tab.SafetyFactor)
	}
}

func TestNonConvergedCornerPoisonsCell(t *testing.T) {
	tab := testTable(t)
	clone := *tab
	clone.Nodes = append([]Node(nil), tab.Nodes...)
	clone.Bounds = append([]float64(nil), tab.Bounds...)
	clone.Nodes[0].Converged = false
	clone.Bounds[0] = math.Inf(1)
	if _, ok := clone.Lookup(clone.Config, engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}); ok {
		t.Fatal("lookup accepted a cell with an infinite bound")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := testTable(t)
	path := filepath.Join(t.TempDir(), "table.mfgt")
	if err := tab.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.BaseKey != tab.BaseKey {
		t.Fatal("round trip changed the base key")
	}
	if len(got.Nodes) != len(tab.Nodes) || len(got.Bounds) != len(tab.Bounds) {
		t.Fatal("round trip changed the lattice shape")
	}
	for j := range tab.Time {
		if got.Nodes[0].Price[j] != tab.Nodes[0].Price[j] {
			t.Fatalf("round trip changed node 0 price[%d]", j)
		}
	}
	sum, ok := got.Lookup(got.Config, engine.Workload{Requests: 10, Pop: 0.3, Timeliness: 2})
	if !ok || sum.ErrorBound != tab.Bounds[0] {
		t.Fatal("loaded table does not answer like the built one")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tab := testTable(t)
	good, err := tab.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:tableHeader-2] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future version", func(b []byte) []byte { b[4] = tableVersion + 1; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[tableHeader+10] ^= 0x40; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xaa) }},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), good...))
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", tc.name)
		}
	}
	if _, err := Decode(append([]byte(nil), good...)); err != nil {
		t.Fatalf("pristine copy rejected: %v", err)
	}
}

func TestSaveIsAtomic(t *testing.T) {
	tab := testTable(t)
	path := filepath.Join(t.TempDir(), "table.mfgt")
	if err := tab.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after Save")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	base := buildConfig()
	cases := []struct {
		name   string
		mutate func(*BuildConfig)
	}{
		{"zero nodes", func(b *BuildConfig) { b.Requests.N = 0 }},
		{"inverted range", func(b *BuildConfig) { b.Pop = AxisSpec{Min: 0.5, Max: 0.2, N: 3} }},
		{"non-finite bound", func(b *BuildConfig) { b.Requests.Max = math.Inf(1) }},
		{"safety below one", func(b *BuildConfig) { b.SafetyFactor = 0.5 }},
		{"workload out of model range", func(b *BuildConfig) { b.Pop = AxisSpec{Min: 0.5, Max: 1.5, N: 2} }},
	}
	for _, tc := range cases {
		bc := base
		tc.mutate(&bc)
		if _, err := Build(context.Background(), bc); err == nil {
			t.Errorf("%s: Build accepted", tc.name)
		}
	}
}

func TestQuantiseMatchesCacheKeyQuantum(t *testing.T) {
	// Two values that collide at 9 significant digits must quantise equally.
	a, b := 10.0000000001, 10.0000000002
	if Quantise(a) != Quantise(b) {
		t.Fatal("sub-quantum values did not collapse")
	}
	if Quantise(10.0001) == Quantise(10.0002) {
		t.Fatal("distinct values collapsed")
	}
}

// FuzzTableDecode pins the loader's hostile-input contract: Decode never
// panics, and whatever it accepts re-encodes.
func FuzzTableDecode(f *testing.F) {
	cfg := engine.DefaultConfig(mec.Default())
	cfg.NH, cfg.NQ, cfg.Steps = 5, 15, 16
	tab := &Table{
		BaseKey: engine.CacheKey(cfg, engine.Workload{}),
		Config:  cfg,
		Axes: [3]Axis{
			{Name: "Requests", Nodes: []float64{8, 12}},
			{Name: "Pop", Nodes: []float64{0.2}},
			{Name: "Timeliness", Nodes: []float64{2}},
		},
		Time:         []float64{0, 1},
		SafetyFactor: 2,
		Bounds:       []float64{0.25},
	}
	tab.Nodes = make([]Node, 2)
	for i := range tab.Nodes {
		tab.Nodes[i] = Node{
			Converged:     true,
			Price:         []float64{1, 2},
			MeanControl:   []float64{0.1, 0.2},
			MeanRemaining: []float64{3, 2},
			SharerFrac:    []float64{0, 0.5},
		}
	}
	if good, err := tab.Encode(); err == nil {
		f.Add(good)
		f.Add(good[:tableHeader])
		f.Add(good[:len(good)-3])
	} else {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x47, 0x46, 0x4d, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Decode(data)
		if err != nil {
			return
		}
		if tab == nil {
			t.Fatal("Decode returned nil table without error")
		}
		if _, err := tab.Encode(); err != nil {
			t.Fatalf("accepted table does not re-encode: %v", err)
		}
	})
}

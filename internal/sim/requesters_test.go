package sim

import (
	"math"
	"testing"

	"repro/internal/mec"
	"repro/internal/policy"
	"repro/internal/sde"
)

func TestRequesterConfigValidate(t *testing.T) {
	if err := (RequesterConfig{}).Validate(); err != nil {
		t.Errorf("disabled requester level should validate: %v", err)
	}
	good := RequesterConfig{J: 10, Speed: 1, RequestsPerRequester: 2, TimelinessNoise: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.J = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative J should be rejected")
	}
	bad = good
	bad.Speed = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative speed should be rejected")
	}
	bad = good
	bad.RequestsPerRequester = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative request rate should be rejected")
	}
	bad = good
	bad.TimelinessNoise = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative noise should be rejected")
	}
}

func testOU() sde.OU { return sde.OU{Rate: 2, Mean: 5, Sigma: 0.5} }

func TestRequesterMobilityStaysInArea(t *testing.T) {
	rng := sde.NewRNG(3)
	pop := newRequesterPopulation(RequesterConfig{J: 50, Speed: 30}, 100, testOU(), 1, 10, rng)
	for step := 0; step < 200; step++ {
		pop.move(rng)
		for i, r := range pop.rs {
			if r.x < 0 || r.x > 100 || r.y < 0 || r.y > 100 {
				t.Fatalf("requester %d escaped the area at step %d: (%g, %g)", i, step, r.x, r.y)
			}
		}
	}
}

func TestNearestEDPAssociation(t *testing.T) {
	rng := sde.NewRNG(4)
	pop := newRequesterPopulation(RequesterConfig{J: 3}, 100, testOU(), 1, 10, rng)
	// Pin requesters and agents to known positions.
	pop.rs[0] = requester{x: 10, y: 10}
	pop.rs[1] = requester{x: 90, y: 90}
	pop.rs[2] = requester{x: 52, y: 50}
	agents := []edp{
		{id: 0, x: 0, y: 0},
		{id: 1, x: 100, y: 100},
		{id: 2, x: 50, y: 50},
	}
	counts := pop.associate(agents)
	if pop.rs[0].home != 0 || pop.rs[1].home != 1 || pop.rs[2].home != 2 {
		t.Fatalf("association wrong: homes %d, %d, %d", pop.rs[0].home, pop.rs[1].home, pop.rs[2].home)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts wrong: %v", counts)
	}
}

func TestRequesterDemandRouting(t *testing.T) {
	rng := sde.NewRNG(5)
	cfg := RequesterConfig{J: 200, Speed: 0, RequestsPerRequester: 3, TimelinessNoise: 0.3}
	pop := newRequesterPopulation(cfg, 100, testOU(), 1, 10, rng)
	agents := []edp{
		{id: 0, x: 25, y: 50},
		{id: 1, x: 75, y: 50},
	}
	shares := []float64{0.7, 0.3}
	base := []float64{4, 1}
	reqs, lvl := pop.demand(agents, shares, base, 5, rng)

	var total0, total1, all float64
	for i := range reqs {
		for k := range reqs[i] {
			all += reqs[i][k]
		}
		total0 += reqs[i][0]
		total1 += reqs[i][1]
	}
	if all == 0 {
		t.Fatal("no requests generated")
	}
	// Content shares respected within sampling noise.
	if frac := total0 / all; math.Abs(frac-0.7) > 0.06 {
		t.Errorf("content-0 share %g, want ≈0.7", frac)
	}
	_ = total1
	// Declared timeliness stays within [0, lmax] and centres near the base.
	for i := range lvl {
		for k, l := range lvl[i] {
			if l < 0 || l > 5 {
				t.Fatalf("timeliness %g outside [0,5]", l)
			}
			if reqs[i][k] > 20 && math.Abs(l-base[k]) > 1 {
				t.Errorf("EDP %d content %d: mean declared timeliness %g far from base %g", i, k, l, base[k])
			}
		}
	}
	// Without requests, the base level is reported.
	empty := newRequesterPopulation(RequesterConfig{J: 0}, 100, testOU(), 1, 10, rng)
	r2, l2 := empty.demand(agents, shares, base, 5, rng)
	for i := range r2 {
		for k := range r2[i] {
			if r2[i][k] != 0 {
				t.Fatal("empty population generated requests")
			}
			if l2[i][k] != base[k] {
				t.Errorf("fallback timeliness %g, want base %g", l2[i][k], base[k])
			}
		}
	}
}

func TestRunWithRequesterLevel(t *testing.T) {
	cfg := quickConfig(t, policy.NewMPC())
	cfg.Requesters = RequesterConfig{
		J:                    60,
		Speed:                5,
		RequestsPerRequester: 4,
		TimelinessNoise:      0.5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with requesters: %v", err)
	}
	if math.IsNaN(res.MeanUtility()) {
		t.Fatal("NaN utility under requester-level demand")
	}
	// Demand routed through associations is uneven across EDPs: at least
	// two EDPs should have materially different trading incomes.
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, l := range res.Ledgers {
		lo = math.Min(lo, l.Trading)
		hi = math.Max(hi, l.Trading)
	}
	if hi-lo < 1e-6 {
		t.Error("requester routing should create per-EDP demand differences")
	}
	// Deterministic under the same seed.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanUtility() != res2.MeanUtility() {
		t.Error("requester-level run is not deterministic")
	}
}

func TestRunRejectsBadRequesterConfig(t *testing.T) {
	cfg := quickConfig(t, policy.NewRR())
	cfg.Requesters = RequesterConfig{J: -5}
	if _, err := Run(cfg); err == nil {
		t.Error("negative requester count should be rejected")
	}
}

func TestSampleShareDistribution(t *testing.T) {
	rng := sde.NewRNG(11)
	shares := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[sampleShare(shares, rng)]++
	}
	for k, want := range shares {
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("share[%d] sampled at %g, want ≈%g", k, got, want)
		}
	}
	// Degenerate numeric tail falls into the last bucket.
	if got := sampleShare([]float64{0, 0}, rng); got != 1 {
		t.Errorf("degenerate shares should return the last index, got %d", got)
	}
}

func TestRequesterLevelFeedsWorkloadTimeliness(t *testing.T) {
	// With requester-level demand the catalogue timeliness seen by the
	// policy comes from the declarations; verify the run completes with a
	// policy that actually consumes timeliness (UDCS drift depends on it).
	p := mec.Default()
	p.M = 8
	p.K = 3
	cfg := DefaultConfig(p, policy.NewUDCS())
	cfg.Epochs = 2
	cfg.StepsPerEpoch = 10
	cfg.Requesters = RequesterConfig{J: 40, Speed: 10, RequestsPerRequester: 5, TimelinessNoise: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("expected 2 epoch stats, got %d", len(res.Stats))
	}
}

func TestPerLinkFading(t *testing.T) {
	rng := sde.NewRNG(8)
	ou := testOU()
	pop := newRequesterPopulation(RequesterConfig{J: 100, Speed: 0, RequestsPerRequester: 1}, 100, ou, 1, 10, rng)
	// Initial fading in range.
	for i, r := range pop.rs {
		if r.h < 1 || r.h > 10 {
			t.Fatalf("requester %d initial fading %g out of range", i, r.h)
		}
	}
	// Fading stays in range and moves under the OU step.
	before := make([]float64, len(pop.rs))
	for i, r := range pop.rs {
		before[i] = r.h
	}
	for s := 0; s < 50; s++ {
		pop.stepFading(ou, 1, 10, 0.02, rng)
	}
	var moved int
	for i, r := range pop.rs {
		if r.h < 1 || r.h > 10 {
			t.Fatalf("requester %d fading %g escaped range", i, r.h)
		}
		if math.Abs(r.h-before[i]) > 1e-12 {
			moved++
		}
	}
	if moved < len(pop.rs)/2 {
		t.Errorf("only %d/%d fading coefficients moved", moved, len(pop.rs))
	}
	// meanInvRate: populated EDPs use their requesters' links, empty EDPs
	// fall back to their own fading.
	p := mec.Default()
	ch, err := mec.NewChannelModel(p)
	if err != nil {
		t.Fatal(err)
	}
	agents := []edp{{id: 0, x: 50, y: 50, h: 5}, {id: 1, x: 1e6, y: 1e6, h: 2}}
	pop.associate(agents)
	inv := pop.meanInvRate(ch, agents)
	if inv[0] <= 0 {
		t.Fatalf("mean inverse rate should be positive, got %g", inv[0])
	}
	// Agent 1 is unreachable (no requesters): fallback to its own rate.
	if want := 1 / ch.Rate(2); math.Abs(inv[1]-want) > 1e-12 {
		t.Errorf("fallback inverse rate %g, want %g", inv[1], want)
	}
}

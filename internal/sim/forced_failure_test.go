package sim

import (
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
)

var errInjectedPrepare = errors.New("injected prepare failure")

// flakyPolicy delegates to its embedded policy but fails Prepare on the
// scheduled epochs, giving tests deterministic control over which strategy
// determinations fail (FaultPlan.SolverFail only offers a probability).
type flakyPolicy struct {
	policy.Policy
	failOn map[int]bool
}

func (f *flakyPolicy) Prepare(ctx *policy.EpochContext) error {
	if f.failOn[ctx.Epoch] {
		return errInjectedPrepare
	}
	return f.Policy.Prepare(ctx)
}

// prepareOnce prepares its embedded policy at most once and then freezes —
// the reference behaviour for "keep serving the last-good strategy".
type prepareOnce struct {
	policy.Policy
	done bool
}

func (p *prepareOnce) Prepare(ctx *policy.EpochContext) error {
	if p.done {
		return nil
	}
	if err := p.Policy.Prepare(ctx); err != nil {
		return err
	}
	p.done = true
	return nil
}

// assertSameDynamics compares everything but the policy identity: the market
// dynamics (ledgers, epoch stats, final states) must match bit-for-bit.
func assertSameDynamics(t *testing.T, want, got *Result) {
	t.Helper()
	if got.M != want.M || got.Epochs != want.Epochs {
		t.Fatalf("metadata differs: %d/%d vs %d/%d", got.M, got.Epochs, want.M, want.Epochs)
	}
	if len(got.Ledgers) != len(want.Ledgers) {
		t.Fatalf("ledger count %d vs %d", len(got.Ledgers), len(want.Ledgers))
	}
	for i := range want.Ledgers {
		if got.Ledgers[i] != want.Ledgers[i] {
			t.Fatalf("ledger %d differs:\n got %+v\nwant %+v", i, got.Ledgers[i], want.Ledgers[i])
		}
	}
	for e := range want.Stats {
		a, b := got.Stats[e], want.Stats[e]
		a.StrategyTime, b.StrategyTime = 0, 0
		if a != b {
			t.Fatalf("epoch %d stats differ:\n got %+v\nwant %+v", e, a, b)
		}
	}
	for i := range want.FinalQ {
		for k := range want.FinalQ[i] {
			if got.FinalQ[i][k] != want.FinalQ[i][k] {
				t.Fatalf("FinalQ[%d][%d]: %g vs %g", i, k, got.FinalQ[i][k], want.FinalQ[i][k])
			}
		}
		if got.FinalH[i] != want.FinalH[i] {
			t.Fatalf("FinalH[%d]: %g vs %g", i, got.FinalH[i], want.FinalH[i])
		}
	}
}

// TestForcedFailureFallbacks pins the two degradation contracts of a failed
// strategy determination under a fault plan, differentially: with no strategy
// ever prepared the run must behave exactly like the RR baseline, and with an
// earlier epoch prepared it must keep serving that last-good strategy (not
// the fallback). Each case's expected dynamics come from an independent
// fault-free run that realises the contract directly.
func TestForcedFailureFallbacks(t *testing.T) {
	const epochs = 3
	tests := []struct {
		name        string
		failOn      map[int]bool
		wantErrors  float64 // sim.fault.solver_errors
		wantDegrade float64 // sim.fault.degraded_epochs
		reference   func(t *testing.T) *Result
	}{
		{
			name:        "never-prepared-degrades-to-rr",
			failOn:      map[int]bool{0: true, 1: true, 2: true},
			wantErrors:  3,
			wantDegrade: 3,
			reference: func(t *testing.T) *Result {
				cfg := quickConfig(t, policy.NewRR())
				cfg.Epochs = epochs
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("reference RR run: %v", err)
				}
				return res
			},
		},
		{
			name:        "later-failures-reuse-last-good",
			failOn:      map[int]bool{1: true, 2: true},
			wantErrors:  2,
			wantDegrade: 2,
			reference: func(t *testing.T) *Result {
				cfg := quickConfig(t, &prepareOnce{Policy: policy.NewMFGCP()})
				cfg.Epochs = epochs
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("reference last-good run: %v", err)
				}
				return res
			},
		},
		{
			name:        "recovers-after-initial-fallback",
			failOn:      map[int]bool{0: true},
			wantErrors:  1,
			wantDegrade: 1,
			reference:   nil, // epoch 0 on RR, 1–2 on fresh MFG-CP: counters only
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			reg := obs.NewRegistry(nil)
			cfg := quickConfig(t, &flakyPolicy{Policy: policy.NewMFGCP(), failOn: tt.failOn})
			cfg.Epochs = epochs
			cfg.Faults = &FaultPlan{} // enables degradation, injects nothing itself
			cfg.Obs = reg

			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("forced-failure run aborted: %v", err)
			}
			if len(got.Stats) != epochs {
				t.Fatalf("run incomplete: %d of %d epochs", len(got.Stats), epochs)
			}
			s := reg.Snapshot()
			if c := s.Counters["sim.fault.solver_errors"]; c != tt.wantErrors {
				t.Errorf("sim.fault.solver_errors = %g, want %g", c, tt.wantErrors)
			}
			if c := s.Counters["sim.fault.degraded_epochs"]; c != tt.wantDegrade {
				t.Errorf("sim.fault.degraded_epochs = %g, want %g", c, tt.wantDegrade)
			}
			if c := s.Counters["resilience.fallbacks"]; c != tt.wantDegrade {
				t.Errorf("resilience.fallbacks = %g, want %g", c, tt.wantDegrade)
			}
			if tt.reference != nil {
				assertSameDynamics(t, tt.reference(t), got)
			}
		})
	}
}

// TestForcedFailureAbortsWithoutFaultPlan pins the contract boundary: the
// degradation paths exist only under a fault plan; without one a failed
// strategy determination aborts the run.
func TestForcedFailureAbortsWithoutFaultPlan(t *testing.T) {
	cfg := quickConfig(t, &flakyPolicy{Policy: policy.NewMFGCP(), failOn: map[int]bool{0: true}})
	if _, err := Run(cfg); !errors.Is(err, errInjectedPrepare) {
		t.Fatalf("got %v, want the injected prepare failure to abort the run", err)
	}
}

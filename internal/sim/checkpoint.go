package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// Checkpointing makes a market run restartable: at every epoch boundary the
// simulator snapshots the complete mutable state — agent positions and cache
// levels, the RNG stream position (as seed + draw count), the accumulated
// ledgers and statistics, the policy's prepared strategy and the equilibrium
// cache — into one file, written atomically (write-temp-then-rename) so a
// kill at any instant leaves either the previous or the new snapshot intact,
// never a torn one. A resumed run replays bit-for-bit: its final Result
// (utilities, densities, ledgers) is identical to an uninterrupted run of the
// same seed.

// CheckpointConfig configures epoch-boundary snapshots of a market run.
type CheckpointConfig struct {
	// Dir is the snapshot directory; empty disables checkpointing.
	Dir string
	// Every writes a snapshot after every Every-th completed epoch
	// (default 1 = every epoch). The final epoch is always snapshotted.
	Every int
	// Resume restores the run from the snapshot in Dir before the first
	// epoch. A missing snapshot starts fresh; a corrupt or mismatched one
	// fails the run with a structured error.
	Resume bool
}

// Validate checks the checkpoint configuration.
func (c CheckpointConfig) Validate() error {
	if c.Every < 0 {
		return fmt.Errorf("sim: checkpoint Every must be non-negative, got %d", c.Every)
	}
	if c.Dir == "" && c.Resume {
		return fmt.Errorf("sim: checkpoint Resume requires a checkpoint Dir")
	}
	return nil
}

const (
	checkpointFile    = "market.ckpt"
	checkpointMagic   = "mfgcp-market-checkpoint"
	checkpointVersion = 1
)

var (
	// ErrCheckpointCorrupt wraps snapshot files that fail to decode or whose
	// checksum does not match (truncated writes, bit rot, foreign files).
	ErrCheckpointCorrupt = errors.New("sim: checkpoint corrupt")
	// ErrCheckpointVersion flags snapshots written by an incompatible layout.
	ErrCheckpointVersion = errors.New("sim: checkpoint version unsupported")
	// ErrCheckpointMismatch flags snapshots whose run configuration (seed,
	// population, policy, epoch geometry) differs from the resuming run's.
	ErrCheckpointMismatch = errors.New("sim: checkpoint does not match configuration")
)

// AgentState is one EDP's snapshotted state.
type AgentState struct {
	X, Y, H float64
	Q       []float64
}

// RequesterState is one requester's snapshotted state.
type RequesterState struct {
	X, Y, H float64
	Home    int
}

// Checkpoint is an epoch-boundary snapshot of a market run.
type Checkpoint struct {
	// Identity of the run; resume validates these against the configuration.
	Seed          int64
	PolicyName    string
	M, K          int
	Epochs        int
	StepsPerEpoch int
	RequesterJ    int

	// NextEpoch is the first epoch a resumed run executes.
	NextEpoch int
	// RNGDraws is the simulation stream position: a resumed run re-seeds the
	// stream and skips this many draws, reproducing it bit-exactly.
	RNGDraws uint64
	// Prepared records whether any epoch successfully prepared a strategy
	// (the fault-degradation fallback decision depends on it).
	Prepared bool
	// DegradedEpochs is the fault error budget consumed so far.
	DegradedEpochs int

	Agents       []AgentState
	Requesters   []RequesterState
	Ledgers      []Ledger
	Stats        []EpochStats
	StrategyTime time.Duration

	// PolicyState is the policy's opaque prepared-strategy snapshot (nil for
	// stateless policies); CacheKeys/CacheBlobs persist the equilibrium cache
	// in LRU order.
	PolicyState []byte
	CacheKeys   []string
	CacheBlobs  [][]byte
}

// checkpointEnvelope is the on-disk frame: a magic string, a format version
// and a CRC over the gob-encoded Checkpoint, so truncation and corruption are
// detected before any field is trusted.
type checkpointEnvelope struct {
	Magic   string
	Version int
	Sum     uint32
	Data    []byte
}

// WriteCheckpoint atomically writes ck into dir: the snapshot is encoded and
// fsynced to a temporary file in the same directory and then renamed over the
// previous one, so readers observe either the old or the new snapshot.
func WriteCheckpoint(dir string, ck *Checkpoint) (retErr error) {
	if dir == "" {
		return fmt.Errorf("sim: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sim: create checkpoint dir: %w", err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	env := checkpointEnvelope{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		Sum:     crc32.ChecksumIEEE(payload.Bytes()),
		Data:    payload.Bytes(),
	}
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(env); err != nil {
		return fmt.Errorf("sim: encode checkpoint envelope: %w", err)
	}

	tmp, err := os.CreateTemp(dir, ".market.ckpt.tmp-*")
	if err != nil {
		return fmt.Errorf("sim: create checkpoint temp file: %w", err)
	}
	defer func() {
		if retErr != nil {
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(frame.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("sim: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sim: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sim: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, checkpointFile)); err != nil {
		return fmt.Errorf("sim: publish checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the snapshot in dir. A missing snapshot returns an
// error satisfying errors.Is(err, fs.ErrNotExist); corrupt or truncated files
// return ErrCheckpointCorrupt, incompatible layouts ErrCheckpointVersion.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	f, err := os.Open(filepath.Join(dir, checkpointFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeCheckpoint(f)
}

// decodeCheckpoint decodes and verifies one snapshot stream. It never
// panics: any malformed input maps onto a structured error (the fuzz target
// FuzzCheckpointDecode pins this contract).
func decodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: decode envelope: %v", ErrCheckpointCorrupt, err)
	}
	if env.Magic != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, env.Magic)
	}
	if env.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCheckpointVersion, env.Version, checkpointVersion)
	}
	if sum := crc32.ChecksumIEEE(env.Data); sum != env.Sum {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCheckpointCorrupt, sum, env.Sum)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(env.Data)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: decode payload: %v", ErrCheckpointCorrupt, err)
	}
	if err := ck.sane(); err != nil {
		return nil, err
	}
	return &ck, nil
}

// sane cross-checks the internal consistency of a decoded snapshot.
func (ck *Checkpoint) sane() error {
	switch {
	case ck.M < 1 || ck.K < 1:
		return fmt.Errorf("%w: population %d×%d", ErrCheckpointCorrupt, ck.M, ck.K)
	case len(ck.Agents) != ck.M:
		return fmt.Errorf("%w: %d agents for M=%d", ErrCheckpointCorrupt, len(ck.Agents), ck.M)
	case len(ck.Ledgers) != ck.M:
		return fmt.Errorf("%w: %d ledgers for M=%d", ErrCheckpointCorrupt, len(ck.Ledgers), ck.M)
	case ck.NextEpoch < 0 || ck.NextEpoch > ck.Epochs:
		return fmt.Errorf("%w: next epoch %d of %d", ErrCheckpointCorrupt, ck.NextEpoch, ck.Epochs)
	case len(ck.Requesters) != ck.RequesterJ:
		return fmt.Errorf("%w: %d requesters for J=%d", ErrCheckpointCorrupt, len(ck.Requesters), ck.RequesterJ)
	case len(ck.CacheKeys) != len(ck.CacheBlobs):
		return fmt.Errorf("%w: %d cache keys for %d blobs", ErrCheckpointCorrupt, len(ck.CacheKeys), len(ck.CacheBlobs))
	}
	for i, a := range ck.Agents {
		if len(a.Q) != ck.K {
			return fmt.Errorf("%w: agent %d has %d contents for K=%d", ErrCheckpointCorrupt, i, len(a.Q), ck.K)
		}
	}
	return nil
}

// snapshotRun captures the complete mutable run state after a completed
// epoch: nextEpoch is the first epoch a resumed run executes and draws the
// simulation-stream position at that boundary.
func snapshotRun(cfg *Config, agents []edp, requesters *requesterPopulation, res *Result,
	cache *core.EquilibriumCache, nextEpoch int, draws uint64, prepared bool, degraded int) (*Checkpoint, error) {
	p := cfg.Params
	ck := &Checkpoint{
		Seed:           cfg.Seed,
		PolicyName:     cfg.Policy.Name(),
		M:              p.M,
		K:              p.K,
		Epochs:         cfg.Epochs,
		StepsPerEpoch:  cfg.StepsPerEpoch,
		RequesterJ:     cfg.Requesters.J,
		NextEpoch:      nextEpoch,
		RNGDraws:       draws,
		Prepared:       prepared,
		DegradedEpochs: degraded,
		Agents:         make([]AgentState, len(agents)),
		Ledgers:        append([]Ledger(nil), res.Ledgers...),
		Stats:          append([]EpochStats(nil), res.Stats...),
		StrategyTime:   res.StrategyTime,
	}
	for i, a := range agents {
		ck.Agents[i] = AgentState{X: a.x, Y: a.y, H: a.h, Q: append([]float64(nil), a.q...)}
	}
	if requesters != nil {
		ck.Requesters = make([]RequesterState, len(requesters.rs))
		for i, r := range requesters.rs {
			ck.Requesters[i] = RequesterState{X: r.x, Y: r.y, H: r.h, Home: r.home}
		}
	}
	if pc, ok := cfg.Policy.(policyCheckpointer); ok {
		st, err := pc.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint policy state: %w", err)
		}
		ck.PolicyState = st
	}
	if cache != nil {
		for _, e := range cache.Export() {
			blob, err := core.MarshalEquilibrium(e.Eq)
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint cache entry %q: %w", e.Key, err)
			}
			ck.CacheKeys = append(ck.CacheKeys, e.Key)
			ck.CacheBlobs = append(ck.CacheBlobs, blob)
		}
	}
	return ck, nil
}

// restoreRun applies a validated snapshot onto freshly initialised run state.
// The RNG stream is restored separately by the caller (re-seed + skip).
func restoreRun(ck *Checkpoint, cfg *Config, agents []edp, requesters *requesterPopulation,
	res *Result, cache *core.EquilibriumCache) error {
	for i := range agents {
		a := ck.Agents[i]
		agents[i].x, agents[i].y, agents[i].h = a.X, a.Y, a.H
		copy(agents[i].q, a.Q)
	}
	if requesters != nil {
		for i := range requesters.rs {
			r := ck.Requesters[i]
			requesters.rs[i] = requester{x: r.X, y: r.Y, h: r.H, home: r.Home}
		}
	}
	copy(res.Ledgers, ck.Ledgers)
	res.Stats = append([]EpochStats(nil), ck.Stats...)
	res.StrategyTime = ck.StrategyTime
	if len(ck.PolicyState) > 0 {
		pc, ok := cfg.Policy.(policyCheckpointer)
		if !ok {
			return fmt.Errorf("%w: snapshot carries policy state but policy %q cannot restore it",
				ErrCheckpointMismatch, cfg.Policy.Name())
		}
		if err := pc.RestoreState(ck.PolicyState); err != nil {
			return err
		}
	}
	if cache != nil && len(ck.CacheKeys) > 0 {
		entries := make([]core.CacheExportEntry, len(ck.CacheKeys))
		for i := range ck.CacheKeys {
			eq, err := core.UnmarshalEquilibrium(ck.CacheBlobs[i])
			if err != nil {
				return fmt.Errorf("sim: restore cache entry %q: %w", ck.CacheKeys[i], err)
			}
			entries[i] = core.CacheExportEntry{Key: ck.CacheKeys[i], Eq: eq}
		}
		cache.Restore(entries)
	}
	return nil
}

// matches validates the snapshot against the resuming run's configuration.
func (ck *Checkpoint) matches(cfg *Config) error {
	p := cfg.Params
	switch {
	case ck.Seed != cfg.Seed:
		return fmt.Errorf("%w: seed %d vs %d", ErrCheckpointMismatch, ck.Seed, cfg.Seed)
	case ck.PolicyName != cfg.Policy.Name():
		return fmt.Errorf("%w: policy %q vs %q", ErrCheckpointMismatch, ck.PolicyName, cfg.Policy.Name())
	case ck.M != p.M || ck.K != p.K:
		return fmt.Errorf("%w: population %d×%d vs %d×%d", ErrCheckpointMismatch, ck.M, ck.K, p.M, p.K)
	case ck.Epochs != cfg.Epochs:
		return fmt.Errorf("%w: %d epochs vs %d", ErrCheckpointMismatch, ck.Epochs, cfg.Epochs)
	case ck.StepsPerEpoch != cfg.StepsPerEpoch:
		return fmt.Errorf("%w: %d steps/epoch vs %d", ErrCheckpointMismatch, ck.StepsPerEpoch, cfg.StepsPerEpoch)
	case ck.RequesterJ != cfg.Requesters.J:
		return fmt.Errorf("%w: %d requesters vs %d", ErrCheckpointMismatch, ck.RequesterJ, cfg.Requesters.J)
	}
	return nil
}

package sim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
)

// TestRunRecordsTelemetry checks that the market simulation feeds the
// recorder: epoch spans, service-case counters, and income tallies, and that
// the solver inherits the recorder when none is set explicitly.
func TestRunRecordsTelemetry(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Obs = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := reg.Snapshot()
	if got := s.Counters["sim.epochs"]; got != float64(cfg.Epochs) {
		t.Errorf("sim.epochs = %g, want %d", got, cfg.Epochs)
	}
	served := s.Counters["sim.serve.local_hit"] + s.Counters["sim.serve.peer_share"] + s.Counters["sim.serve.cloud_fetch"]
	if served <= 0 {
		t.Errorf("no service events recorded: %+v", s.Counters)
	}
	if s.Histograms["sim.epoch.seconds"].Count != uint64(cfg.Epochs) {
		t.Errorf("epoch span count = %d, want %d", s.Histograms["sim.epoch.seconds"].Count, cfg.Epochs)
	}
	// The MFG-CP policy solves the mean-field game during Prepare; the solver
	// must have inherited the simulation recorder.
	if s.Counters["core.solver.solves"] <= 0 {
		t.Errorf("solver did not inherit recorder: %+v", s.Counters)
	}
	if len(res.Stats) != cfg.Epochs {
		t.Fatalf("unexpected result shape: %d epochs", len(res.Stats))
	}
}

// TestRunTelemetryNoObserverEffect pins that attaching a recorder leaves the
// seeded simulation byte-for-byte deterministic.
func TestRunTelemetryNoObserverEffect(t *testing.T) {
	plain, err := Run(quickConfig(t, policy.NewMFGCP()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Obs = obs.NewRegistry(nil)
	recorded, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with recorder: %v", err)
	}
	for i := range plain.Stats {
		if plain.Stats[i].MeanUtility != recorded.Stats[i].MeanUtility {
			t.Errorf("epoch %d mean utility differs: %g vs %g",
				i, plain.Stats[i].MeanUtility, recorded.Stats[i].MeanUtility)
		}
		if plain.Stats[i].MeanPrice != recorded.Stats[i].MeanPrice {
			t.Errorf("epoch %d mean price differs: %g vs %g",
				i, plain.Stats[i].MeanPrice, recorded.Stats[i].MeanPrice)
		}
	}
}

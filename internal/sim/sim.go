// Package sim is the agent-based MEC market simulator implementing
// Algorithm 1 of the paper: M EDP agents with stochastic channel and cache
// dynamics serve per-epoch content requests, set prices under the
// supply–demand rule (Eq. 5), trade with requesters under the three service
// cases, and settle paid peer sharing. The caching strategy of each EDP is
// supplied by a policy (MFG-CP or one of the baselines).
//
// Beyond regenerating the paper's comparison figures, the simulator
// cross-validates the mean-field approximation: the empirical distribution of
// the EDPs' remaining cache space is compared against the FPK density of the
// solved equilibrium.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sde"
	"repro/internal/trace"
)

// Config parametrises one market run.
type Config struct {
	Params mec.Params
	Policy policy.Policy
	Solver core.Config // passed to MFG policies via the epoch context

	Epochs        int
	StepsPerEpoch int
	// RequestsPerEDP is the mean number of content requests arriving at one
	// EDP per epoch, split across contents by the trace's view shares.
	RequestsPerEDP float64
	Seed           int64

	// Trace supplies the demand process; when nil a default synthetic trace
	// is generated from Seed.
	Trace *trace.Dataset

	// HeterogeneousDemand adds per-EDP Poisson noise to the request counts.
	// The default (false) gives every EDP the epoch's mean demand, matching
	// the homogeneity assumption of the mean-field model — required by the
	// FPK cross-validation test.
	HeterogeneousDemand bool

	// Requesters enables the requester-level demand model of the paper's
	// Section II: J mobile requesters associated with their nearest EDP,
	// issuing requests routed through the association map and declaring
	// per-request timeliness requirements (Definition 2). When J > 0 this
	// supersedes HeterogeneousDemand and RequestsPerEDP.
	Requesters RequesterConfig

	// ExactInterference computes each EDP's transmission rate from the
	// pairwise SINR with its actual neighbours (Eq. 2) instead of the
	// mean-field interference approximation. Kept as an ablation.
	ExactInterference bool

	// EqCacheSize, when positive, installs a bounded equilibrium cache of
	// that capacity on the policy (if it accepts one — see the
	// equilibriumCaching interface) before the epoch loop. Epochs whose
	// (params, workload) repeat then reuse the solved equilibrium instead of
	// re-running Algorithm 2, which trace-driven demand with recurring daily
	// shares hits often.
	EqCacheSize int

	// Area is the side length of the square deployment region.
	Area float64

	// Obs receives market telemetry — per-epoch spans, service-case counters
	// (local hit / peer share / cloud fetch), trading income and cache
	// occupancy gauges ("sim.*" names). Nil means no-op. When the solver
	// config carries no recorder of its own it inherits this one, so one
	// injection instruments the whole Algorithm-1 pipeline.
	Obs obs.Recorder

	// Faults, when set, injects deterministic seeded faults (EDP churn,
	// dropped peer shares, forced solver failures) and switches the epoch
	// loop from abort-on-error to graceful degradation under the plan's
	// error budget.
	Faults *FaultPlan

	// Recovery, when set, is installed on policies that support divergence
	// recovery (see the recoverySetting interface): failing equilibrium
	// solves are retried under the bounded escalation ladder before the
	// epoch is declared failed.
	Recovery *resilience.Escalation

	// Checkpoint configures epoch-boundary snapshots and resume (zero value
	// disables both).
	Checkpoint CheckpointConfig

	// Context, when set, bounds Run with cancellation or a deadline; the
	// epoch loop checks it at step granularity and the solver at iteration
	// granularity. RunContext's argument takes precedence. Nil means
	// context.Background().
	Context context.Context
}

// DefaultConfig returns the simulation settings used by the experiments.
func DefaultConfig(p mec.Params, pol policy.Policy) Config {
	solver := core.DefaultConfig(p)
	solver.NH = 9
	solver.NQ = 41
	solver.Steps = 60
	return Config{
		Params:         p,
		Policy:         pol,
		Solver:         solver,
		Epochs:         3,
		StepsPerEpoch:  40,
		RequestsPerEDP: 30,
		Seed:           1,
		Area:           100,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: nil policy")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("sim: Epochs must be ≥ 1, got %d", c.Epochs)
	}
	if c.StepsPerEpoch < 1 {
		return fmt.Errorf("sim: StepsPerEpoch must be ≥ 1, got %d", c.StepsPerEpoch)
	}
	// NaN compares false against every bound, so "x < 0" guards alone would
	// wave NaN configurations through into the epoch loop; reject non-finite
	// rates and geometry explicitly (mirroring the mec.Params checks).
	if math.IsNaN(c.RequestsPerEDP) || math.IsInf(c.RequestsPerEDP, 0) || c.RequestsPerEDP < 0 {
		return fmt.Errorf("sim: RequestsPerEDP must be non-negative and finite, got %g", c.RequestsPerEDP)
	}
	if math.IsNaN(c.Area) || math.IsInf(c.Area, 0) || !(c.Area > 0) {
		return fmt.Errorf("sim: Area must be positive and finite, got %g", c.Area)
	}
	if err := c.Requesters.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.Recovery != nil {
		if err := c.Recovery.Validate(); err != nil {
			return err
		}
	}
	return c.Checkpoint.Validate()
}

// Ledger accumulates the economic account of one EDP over the whole run.
// Utility = Trading + Sharing − Placement − Staleness − ShareCost.
type Ledger struct {
	Trading   float64
	Sharing   float64
	Placement float64
	Staleness float64
	ShareCost float64
}

// Utility returns the net profit of the ledger.
func (l Ledger) Utility() float64 {
	return l.Trading + l.Sharing - l.Placement - l.Staleness - l.ShareCost
}

func (l *Ledger) add(o Ledger) {
	l.Trading += o.Trading
	l.Sharing += o.Sharing
	l.Placement += o.Placement
	l.Staleness += o.Staleness
	l.ShareCost += o.ShareCost
}

// EpochStats aggregates one epoch across the population.
type EpochStats struct {
	Epoch        int
	MeanUtility  float64 // per-EDP utility accumulated during the epoch
	MeanTrading  float64
	MeanSharing  float64
	MeanStale    float64
	MeanPrice    float64 // population-and-time average trading price
	MeanRate     float64 // population-and-time average caching rate
	MeanRemain   float64 // population average remaining space (end of epoch)
	StrategyTime time.Duration
}

// Result is the outcome of a market run.
type Result struct {
	PolicyName string
	M          int
	Epochs     int

	Ledgers []Ledger // per EDP, whole run
	Stats   []EpochStats

	// StrategyTime is the total strategy-determination time across epochs
	// (the quantity Table II compares across policies and M).
	StrategyTime time.Duration

	// FinalQ[i][k] is EDP i's remaining space for content k at the end.
	FinalQ [][]float64
	// FinalH[i] is EDP i's final channel fading coefficient.
	FinalH []float64
}

// MeanUtility returns the population-average accumulated utility.
func (r *Result) MeanUtility() float64 {
	var s float64
	for _, l := range r.Ledgers {
		s += l.Utility()
	}
	return s / float64(len(r.Ledgers))
}

// MeanLedger returns the population-average ledger.
func (r *Result) MeanLedger() Ledger {
	var sum Ledger
	for _, l := range r.Ledgers {
		sum.add(l)
	}
	m := float64(len(r.Ledgers))
	return Ledger{
		Trading:   sum.Trading / m,
		Sharing:   sum.Sharing / m,
		Placement: sum.Placement / m,
		Staleness: sum.Staleness / m,
		ShareCost: sum.ShareCost / m,
	}
}

// EmpiricalQDensity histograms the final remaining space of content k across
// the population into bins cells over [0, Qk], normalised to unit integral.
func (r *Result) EmpiricalQDensity(k, bins int, qk float64) ([]float64, error) {
	if len(r.FinalQ) == 0 {
		return nil, fmt.Errorf("sim: empty result")
	}
	if k < 0 || k >= len(r.FinalQ[0]) {
		return nil, fmt.Errorf("sim: content %d out of range", k)
	}
	h, err := numerics.NewHistogram(0, qk, bins)
	if err != nil {
		return nil, err
	}
	for i := range r.FinalQ {
		h.Add(r.FinalQ[i][k])
	}
	return h.Density(), nil
}

// edp is one agent.
type edp struct {
	id   int
	x, y float64
	h    float64
	q    []float64
}

// ErrInterrupted wraps the context error when a run is cancelled or times
// out mid-flight. The partial Result accumulated so far is returned alongside
// it, and — when checkpointing is configured — the last epoch-boundary
// snapshot is already on disk, so the run can resume where it left off.
var ErrInterrupted = errors.New("sim: run interrupted")

// Run executes the market simulation under Config.Context (or no deadline
// when it is nil).
func Run(cfg Config) (*Result, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return RunContext(ctx, cfg)
}

// RunContext executes the market simulation under ctx: cancellation and
// deadlines are honoured at simulation-step granularity (and forwarded to the
// strategy-determination solves at best-response-iteration granularity). On
// interruption the partial Result is returned with ErrInterrupted.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rec := obs.OrNop(cfg.Obs)
	if cfg.Solver.Obs == nil {
		cfg.Solver.Obs = cfg.Obs
	}
	var eqCache *core.EquilibriumCache
	if cfg.EqCacheSize > 0 {
		if ec, ok := cfg.Policy.(equilibriumCaching); ok {
			cache, err := core.NewEquilibriumCache(cfg.EqCacheSize)
			if err != nil {
				return nil, err
			}
			ec.SetEquilibriumCache(cache)
			eqCache = cache
		}
	}
	if cfg.Recovery != nil {
		if rs, ok := cfg.Policy.(recoverySetting); ok {
			rs.SetRecovery(cfg.Recovery)
		}
	}
	p := cfg.Params
	channel, err := mec.NewChannelModel(p)
	if err != nil {
		return nil, err
	}
	catalog, err := mec.NewCatalog(p)
	if err != nil {
		return nil, err
	}
	ds := cfg.Trace
	if ds == nil {
		gen := trace.DefaultGenConfig()
		gen.K = p.K
		gen.Seed = cfg.Seed
		ds, err = trace.Generate(gen)
		if err != nil {
			return nil, err
		}
	}
	if ds.K != p.K {
		return nil, fmt.Errorf("sim: trace has %d categories, params expect %d", ds.K, p.K)
	}
	timeliness := ds.Timeliness(p.LMax)

	// Population initialisation. The draw-counting source makes the stream
	// position checkpointable: a resumed run re-seeds and skips the recorded
	// number of draws, reproducing the stream bit-exactly.
	src := sde.NewCountingSource(cfg.Seed)
	rng := rand.New(src)
	ou := channel.OU()
	sdH := math.Sqrt(ou.StationaryVar())
	agents := make([]edp, p.M)
	for i := range agents {
		a := &agents[i]
		a.id = i
		a.x = rng.Float64() * cfg.Area
		a.y = rng.Float64() * cfg.Area
		a.h = sde.ReflectInto(p.ChMean+sdH*rng.NormFloat64(), p.HMin, p.HMax)
		a.q = make([]float64, p.K)
		for k := range a.q {
			a.q[k] = sde.ReflectInto(p.InitMeanFrac*p.Qk+p.InitStdFrac*p.Qk*rng.NormFloat64(), 0, p.Qk)
		}
	}

	res := &Result{
		PolicyName: cfg.Policy.Name(),
		M:          p.M,
		Epochs:     cfg.Epochs,
		Ledgers:    make([]Ledger, p.M),
	}
	dt := p.Horizon / float64(cfg.StepsPerEpoch)
	sqDt := math.Sqrt(dt)
	alphaQ := p.AlphaQ()

	var requesters *requesterPopulation
	if cfg.Requesters.J > 0 {
		requesters = newRequesterPopulation(cfg.Requesters, cfg.Area, ou, p.HMin, p.HMax, rng)
	}

	// --- Resume from an epoch-boundary snapshot, if one exists.
	startEpoch := 0
	prepared := false   // has any epoch successfully prepared a strategy?
	degradedEpochs := 0 // fault error budget consumed
	if cfg.Checkpoint.Resume {
		ck, err := LoadCheckpoint(cfg.Checkpoint.Dir)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// No snapshot yet: a resume-requested run starts fresh.
		case err != nil:
			return nil, err
		default:
			if err := ck.matches(&cfg); err != nil {
				return nil, err
			}
			if err := restoreRun(ck, &cfg, agents, requesters, res, eqCache); err != nil {
				return nil, err
			}
			src = sde.NewCountingSource(cfg.Seed)
			src.Skip(ck.RNGDraws)
			rng = rand.New(src)
			startEpoch = ck.NextEpoch
			prepared = ck.Prepared
			degradedEpochs = ck.DegradedEpochs
			rec.Add("sim.checkpoint.resumes", 1)
			rec.Event("sim.resumed", slog.Int("next_epoch", startEpoch))
		}
	}

	finish := func() {
		res.FinalQ = make([][]float64, p.M)
		res.FinalH = make([]float64, p.M)
		for i := range agents {
			res.FinalQ[i] = append([]float64(nil), agents[i].q...)
			res.FinalH[i] = agents[i].h
		}
	}
	interrupted := func(epoch, step int) (*Result, error) {
		finish()
		rec.Add("sim.interrupted", 1)
		return res, fmt.Errorf("%w at epoch %d step %d: %w", ErrInterrupted, epoch, step, context.Cause(ctx))
	}

	var fallback policy.Policy // lazily built RR baseline for degraded epochs

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if ctx.Err() != nil {
			return interrupted(epoch, 0)
		}
		epochSpan := rec.Start("sim.epoch")
		// --- Demand refresh (Algorithm 1, lines 4–5 and 8).
		shares, err := ds.DayShares(epoch % ds.Days)
		if err != nil {
			return nil, err
		}
		var reqs [][]float64          // per-EDP, per-content request counts
		var reqTimeliness [][]float64 // per-EDP, per-content declared L (requester level)
		meanReqs := make([]float64, p.K)
		epochTimeliness := append([]float64(nil), timeliness...)
		if requesters != nil {
			// Requester-level demand: mobility, nearest-EDP association,
			// per-request content draws and timeliness declarations.
			requesters.move(rng)
			reqs, reqTimeliness = requesters.demand(agents, shares, timeliness, p.LMax, rng)
			for k := 0; k < p.K; k++ {
				var total, lSum float64
				for i := 0; i < p.M; i++ {
					total += reqs[i][k]
					lSum += reqs[i][k] * reqTimeliness[i][k]
				}
				meanReqs[k] = total / float64(p.M)
				if total > 0 {
					epochTimeliness[k] = lSum / total
				}
			}
		} else {
			for k := range meanReqs {
				meanReqs[k] = cfg.RequestsPerEDP * shares[k]
			}
			reqs = make([][]float64, p.M)
			for i := range reqs {
				reqs[i] = make([]float64, p.K)
				for k := range reqs[i] {
					if cfg.HeterogeneousDemand {
						lam := meanReqs[k]
						noisy := lam + math.Sqrt(math.Max(lam, 0))*rng.NormFloat64()
						reqs[i][k] = math.Max(0, math.Round(noisy))
					} else {
						reqs[i][k] = meanReqs[k]
					}
				}
			}
		}
		if err := catalog.UpdatePopularity(meanReqs); err != nil {
			return nil, err
		}
		workloads := make([]core.Workload, p.K)
		for k := range workloads {
			workloads[k] = core.Workload{
				Requests:   meanReqs[k],
				Pop:        catalog.Contents[k].Pop,
				Timeliness: epochTimeliness[k],
			}
		}

		// --- Fault schedule for the epoch (deterministic from the plan seed,
		// independent of the simulation stream).
		var ef *epochFaults
		if cfg.Faults != nil {
			ef = cfg.Faults.epochFaults(epoch, p.M, cfg.StepsPerEpoch)
			if ef.churned > 0 {
				rec.Add("sim.fault.churned_edps", float64(ef.churned))
			}
		}

		// --- Strategy determination (Algorithm 1 line 9 / Table II timing).
		// Under a fault plan a failed (or fault-forced-to-fail) solve degrades
		// the epoch — reusing the last prepared strategy, or the RR baseline
		// when no epoch ever prepared — instead of aborting the run.
		pctx := &policy.EpochContext{
			Params:    p,
			Catalog:   catalog,
			Workloads: workloads,
			Solver:    cfg.Solver,
			Epoch:     epoch,
			Seed:      cfg.Seed,
			M:         p.M,
			Ctx:       ctx,
		}
		activePol := cfg.Policy
		degraded := false
		start := time.Now()
		if ef != nil && ef.solverFail {
			rec.Add("sim.fault.solver_forced", 1)
			degraded = true
		} else if err := cfg.Policy.Prepare(pctx); err != nil {
			if ctx.Err() != nil {
				return interrupted(epoch, 0)
			}
			if cfg.Faults == nil {
				return nil, fmt.Errorf("sim: epoch %d: %w", epoch, err)
			}
			rec.Add("sim.fault.solver_errors", 1)
			rec.Event("sim.degraded", slog.Int("epoch", epoch), slog.String("cause", err.Error()))
			degraded = true
		} else {
			prepared = true
		}
		if degraded {
			degradedEpochs++
			rec.Add("resilience.fallbacks", 1)
			rec.Add("sim.fault.degraded_epochs", 1)
			if cfg.Faults != nil && cfg.Faults.ErrorBudget > 0 && degradedEpochs > cfg.Faults.ErrorBudget {
				return nil, fmt.Errorf("sim: epoch %d: %w (%d degraded epochs, budget %d)",
					epoch, ErrBudgetExceeded, degradedEpochs, cfg.Faults.ErrorBudget)
			}
			if !prepared {
				// No strategy has ever been prepared, so there is nothing
				// stale to fall back on: degrade to the RR baseline.
				if fallback == nil {
					fallback = policy.NewRR()
				}
				if err := fallback.Prepare(pctx); err != nil {
					return nil, fmt.Errorf("sim: epoch %d: fallback: %w", epoch, err)
				}
				activePol = fallback
			}
		}
		prepTime := time.Since(start)
		res.StrategyTime += prepTime

		// --- Trading and state evolution (Algorithm 1 lines 10–14).
		es := EpochStats{Epoch: epoch, StrategyTime: prepTime}
		var priceAcc, rateAcc float64
		var priceN int
		epochLedgers := make([]Ledger, p.M)
		xs := make([]float64, p.M) // caching rates of one content this step

		for s := 0; s < cfg.StepsPerEpoch; s++ {
			if ctx.Err() != nil {
				return interrupted(epoch, s)
			}
			t := float64(s) * dt
			// Per-link fading and the per-EDP mean reciprocal rate that the
			// Eq. 9 staleness sum needs, when the requester level is on.
			var invRates []float64
			if requesters != nil {
				requesters.stepFading(ou, p.HMin, p.HMax, dt, rng)
				invRates = requesters.meanInvRate(channel, agents)
			}
			for k := 0; k < p.K; k++ {
				if workloads[k].Requests <= 0 {
					continue
				}
				// Collect rates and their sum for the Eq. (5) price. Churned
				// (absent) EDPs contribute a zero rate to the supply term.
				var sumX float64
				for i := range agents {
					if ef != nil && !ef.active(i, s) {
						xs[i] = 0
						continue
					}
					x, err := activePol.Rate(i, k, t, agents[i].h, agents[i].q[k])
					if err != nil {
						return nil, fmt.Errorf("sim: epoch %d step %d: %w", epoch, s, err)
					}
					xs[i] = x
					sumX += x
				}
				for i := range agents {
					if ef != nil && !ef.active(i, s) {
						continue // absent EDPs neither trade nor evolve
					}
					a := &agents[i]
					x := xs[i]
					// Price (Eq. 5).
					var price float64
					if p.M == 1 {
						price = p.PHat
					} else {
						price = p.PHat - p.Eta1*p.Qk*(sumX-x)/float64(p.M-1)
						if price < 0 {
							price = 0
						}
					}
					priceAcc += price
					rateAcc += x
					priceN++

					// Service case: own hit, else probe a peer.
					led := &epochLedgers[i]
					r := reqs[i][k]
					var rate float64
					if invRates != nil {
						rate = 1 / invRates[i]
					} else {
						rate = transmissionRate(channel, agents, i, cfg.ExactInterference)
					}
					rec.Add("sim.requests.served", r*dt)
					switch {
					case a.q[k] <= alphaQ: // Case 1: sell own cache
						rec.Add("sim.serve.local_hit", 1)
						led.Trading += r * price * (p.Qk - a.q[k]) * dt
						led.Staleness += p.Eta2 * r * (p.Qk - a.q[k]) / rate * dt
					default:
						j := peerIndex(rng, p.M, i)
						peer := &agents[j]
						peerQualified := activePol.SharingEnabled() && peer.q[k] <= alphaQ &&
							(ef == nil || ef.active(j, s))
						if peerQualified && ef != nil && ef.dropShare() {
							// The share transaction is dropped on the wire: the
							// buyer degrades to the cloud-fetch service case.
							rec.Add("sim.fault.shares_dropped", 1)
							peerQualified = false
						}
						if peerQualified {
							// Case 2: buy the gap from the peer, sell on.
							rec.Add("sim.serve.peer_share", 1)
							led.Trading += r * price * (p.Qk - peer.q[k]) * dt
							led.Staleness += p.Eta2 * r * (p.Qk - peer.q[k]) / rate * dt
							pay := p.SharePrice * (a.q[k] - peer.q[k]) * dt
							if pay > 0 {
								led.ShareCost += pay
								epochLedgers[j].Sharing += pay
							}
						} else {
							// Case 3: fetch the uncached part from the centre.
							rec.Add("sim.serve.cloud_fetch", 1)
							led.Trading += r * price * p.Qk * dt
							led.Staleness += p.Eta2 * r * (a.q[k]/p.HubRate + p.Qk/rate) * dt
						}
					}
					// Placement cost and download-from-centre delay (Eq. 8, 9).
					led.Placement += (p.W4*x + p.W5*x*x) * dt
					led.Staleness += p.Eta2 * p.Qk * x / p.HubRate * dt

					// Cache dynamics (Eq. 4), with the EDP's own requesters'
					// declared timeliness when the requester level is on.
					lvl := workloads[k].Timeliness
					if reqTimeliness != nil {
						lvl = reqTimeliness[i][k]
					}
					drift := p.Qk * (-p.W1*x - p.W2*workloads[k].Pop + p.W3*math.Pow(p.Xi, lvl))
					a.q[k] = sde.ReflectInto(a.q[k]+drift*dt+p.SigmaQ*sqDt*rng.NormFloat64(), 0, p.Qk)
				}
			}
			// Channel dynamics (Eq. 1) once per step per EDP. Absent EDPs'
			// channels are frozen (their draw is skipped, which is what makes
			// the fault stream independent of the simulation stream matter).
			for i := range agents {
				if ef != nil && !ef.active(i, s) {
					continue
				}
				a := &agents[i]
				a.h = sde.ReflectInto(a.h+ou.Drift(t, a.h)*dt+ou.Diffusion(t, a.h)*sqDt*rng.NormFloat64(), p.HMin, p.HMax)
			}
		}

		// Epoch aggregation.
		var remain float64
		for i := range agents {
			res.Ledgers[i].add(epochLedgers[i])
			es.MeanUtility += epochLedgers[i].Utility()
			es.MeanTrading += epochLedgers[i].Trading
			es.MeanSharing += epochLedgers[i].Sharing
			es.MeanStale += epochLedgers[i].Staleness
			for k := range agents[i].q {
				remain += agents[i].q[k]
			}
		}
		m := float64(p.M)
		es.MeanUtility /= m
		es.MeanTrading /= m
		es.MeanSharing /= m
		es.MeanStale /= m
		es.MeanRemain = remain / (m * float64(p.K))
		if priceN > 0 {
			es.MeanPrice = priceAcc / float64(priceN)
			es.MeanRate = rateAcc / float64(priceN)
		}
		res.Stats = append(res.Stats, es)

		rec.Add("sim.epochs", 1)
		rec.Add("sim.trading.income", es.MeanTrading*m)
		rec.Add("sim.sharing.income", es.MeanSharing*m)
		rec.Gauge("sim.cache.mean_remaining", es.MeanRemain)
		rec.Gauge("sim.price.mean", es.MeanPrice)
		epochSpan.End(
			slog.Int("epoch", epoch),
			slog.String("policy", res.PolicyName),
			slog.Float64("mean_utility", es.MeanUtility),
			slog.Float64("mean_price", es.MeanPrice),
			slog.Float64("mean_remaining", es.MeanRemain),
			slog.Duration("strategy_time", prepTime))

		// --- Epoch-boundary snapshot.
		if cfg.Checkpoint.Dir != "" {
			every := cfg.Checkpoint.Every
			if every < 1 {
				every = 1
			}
			if (epoch+1)%every == 0 || epoch == cfg.Epochs-1 {
				ck, err := snapshotRun(&cfg, agents, requesters, res, eqCache,
					epoch+1, src.Draws(), prepared, degradedEpochs)
				if err != nil {
					return nil, fmt.Errorf("sim: epoch %d: %w", epoch, err)
				}
				if err := WriteCheckpoint(cfg.Checkpoint.Dir, ck); err != nil {
					return nil, fmt.Errorf("sim: epoch %d: %w", epoch, err)
				}
				rec.Add("sim.checkpoint.writes", 1)
			}
		}
	}

	finish()
	return res, nil
}

// equilibriumCaching is implemented by policies that can consult a shared
// equilibrium cache across epochs (policy.MFGCP). The simulator feature-tests
// for it so cache plumbing stays optional for the baseline policies.
type equilibriumCaching interface {
	SetEquilibriumCache(*core.EquilibriumCache)
}

// recoverySetting is implemented by policies that accept a divergence-recovery
// escalation ladder for their equilibrium solves (policy.MFGCP).
type recoverySetting interface {
	SetRecovery(*resilience.Escalation)
}

// policyCheckpointer is implemented by policies whose prepared strategy must
// survive checkpoint/resume bit-for-bit (policy.MFGCP, whose warm starts make
// later epochs depend on earlier solves). Stateless policies re-derive their
// strategy from (Seed, Epoch) in Prepare and need no snapshot.
type policyCheckpointer interface {
	CheckpointState() ([]byte, error)
	RestoreState([]byte) error
}

// peerIndex draws a uniformly random peer distinct from i (the paper assumes
// the centre assigns a random qualified EDP to respond to sharing requests).
// It takes the concrete *rand.Rand every other sampling helper in this
// package uses, so all randomness flows from the run's single seeded stream.
func peerIndex(rng *rand.Rand, m, i int) int {
	if m == 1 {
		return i
	}
	j := rng.Intn(m - 1)
	if j >= i {
		j++
	}
	return j
}

// transmissionRate returns EDP i's rate to its requesters: mean-field by
// default, exact pairwise SINR with the nearest Interfer agents when the
// ablation flag is set.
func transmissionRate(ch *mec.ChannelModel, agents []edp, i int, exact bool) float64 {
	if !exact {
		return ch.Rate(agents[i].h)
	}
	// Exact: the closest neighbours act as interferers at their true
	// distances.
	type cand struct {
		d float64
		h float64
	}
	self := &agents[i]
	best := make([]cand, 0, 8)
	for j := range agents {
		if j == i {
			continue
		}
		dx := agents[j].x - self.x
		dy := agents[j].y - self.y
		d := math.Hypot(dx, dy)
		best = append(best, cand{d: d, h: agents[j].h})
	}
	// Partial selection of the 4 nearest.
	n := 4
	if len(best) < n {
		n = len(best)
	}
	for a := 0; a < n; a++ {
		min := a
		for b := a + 1; b < len(best); b++ {
			if best[b].d < best[min].d {
				min = b
			}
		}
		best[a], best[min] = best[min], best[a]
	}
	hs := make([]float64, n)
	ds := make([]float64, n)
	for a := 0; a < n; a++ {
		hs[a] = best[a].h
		ds[a] = math.Max(best[a].d, 1)
	}
	r, err := ch.RateExact(self.h, 10, hs, ds)
	if err != nil {
		return ch.Rate(self.h)
	}
	return r
}
